package repro_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// MVCC snapshot-read regressions: sum-conserving read-only snapshots
// against concurrent pair-writers and inserts, on all four engines,
// under -race; plus the WAL visibility rule (snapshot readers never see
// unacknowledged writes) and loud knob validation.

const (
	snapSpan = 128 // versioned account records
	snapHot  = 32  // transfer hot prefix (forces write-write conflicts)
)

// snapEngines builds the four systems over one database.
func snapEngines() []struct {
	name  string
	build func(db *repro.DB) repro.Runtime
} {
	return []struct {
		name  string
		build func(db *repro.DB) repro.Runtime
	}{
		{"2pl-waitdie", func(db *repro.DB) repro.Runtime {
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: 4})
		}},
		{"dlfree", func(db *repro.DB) repro.Runtime {
			return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: 4})
		}},
		{"partstore", func(db *repro.DB) repro.Runtime {
			return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: 4})
		}},
		{"orthrus", func(db *repro.DB) repro.Runtime {
			return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
		}},
	}
}

// snapTransferTxn moves one unit between two hot accounts, keeping the
// table sum invariant (mod 2⁶⁴) at every committed prefix.
func snapTransferTxn(tbl int, i int) *repro.Txn {
	a := uint64(i) % snapHot
	b := (uint64(i)*7 + 1) % snapHot
	if b == a {
		b = (b + 1) % snapHot
	}
	t := &repro.Txn{Ops: []repro.Op{
		{Table: tbl, Key: a, Mode: repro.Write},
		{Table: tbl, Key: b, Mode: repro.Write},
	}}
	t.Logic = func(ctx repro.Ctx) error {
		src, err := ctx.Write(tbl, a)
		if err != nil {
			return err
		}
		dst, err := ctx.Write(tbl, b)
		if err != nil {
			return err
		}
		repro.AddU64(src, 0, ^uint64(0)) // -1
		repro.AddU64(dst, 0, 1)
		return nil
	}
	return t
}

// snapScanTxn is a read-only snapshot scan of the whole account table.
// Each transfer commits -1/+1 atomically, so any snapshot that exposed a
// half-applied or unacknowledged transfer would break sum == 0.
func snapScanTxn(tbl int, violations *atomic.Int64) *repro.Txn {
	t := &repro.Txn{
		Ranges:   []repro.RangeOp{{Table: tbl, Lo: 0, Hi: snapSpan, Mode: repro.Read}},
		ReadOnly: true,
	}
	t.Logic = func(ctx repro.Ctx) error {
		var sum uint64
		if err := ctx.Scan(tbl, 0, snapSpan, func(_ uint64, rec []byte) error {
			sum += repro.GetU64(rec, 0)
			return nil
		}); err != nil {
			return err
		}
		if sum != 0 {
			violations.Add(1)
		}
		return nil
	}
	return t
}

// snapInsertTxn grows a separate ordered table while snapshots run, so
// version pruning and snapshot registration are exercised alongside the
// insert path they must not disturb.
func snapInsertTxn(tbl int, k uint64) *repro.Txn {
	t := &repro.Txn{Ranges: []repro.RangeOp{{Table: tbl, Lo: k, Hi: k + 1, Mode: repro.Write}}}
	t.Logic = func(ctx repro.Ctx) error {
		var buf [16]byte
		repro.PutU64(buf[:], 0, k)
		return ctx.Insert(tbl, k, buf[:])
	}
	return t
}

func TestSnapshotConservationAllEngines(t *testing.T) {
	const (
		writers      = 3
		perWriter    = 60
		readers      = 2
		perReader    = 30
		inserts      = 40
		versionDepth = 4 // small, so pruning actually runs under load
	)
	for _, tc := range snapEngines() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db := repro.NewDB()
			acct := db.Create(repro.Layout{
				Name: "accounts", NumRecords: snapSpan, RecordSize: 16,
				Versioned: true, VersionDepth: versionDepth,
			})
			grow := db.Create(repro.Layout{
				Name: "audit", NumRecords: 64, RecordSize: 16,
				Growable: true, Ordered: true,
			})
			eng := tc.build(db)
			ses := eng.Start()
			var violations atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := w; i < writers*perWriter; i += writers {
						ses.Submit(snapTransferTxn(acct, i), nil)
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := uint64(0); k < inserts; k++ {
					ses.Submit(snapInsertTxn(grow, k), nil)
				}
			}()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perReader; i++ {
						ses.Submit(snapScanTxn(acct, &violations), nil)
					}
				}()
			}
			wg.Wait()
			ses.Drain()
			res := ses.Close()

			if n := violations.Load(); n != 0 {
				t.Fatalf("%d snapshot scans observed a non-conserved sum", n)
			}
			if res.Totals.SnapTxns == 0 {
				t.Fatal("no transaction took the snapshot path")
			}
			if res.Totals.Installed == 0 {
				t.Fatal("no versions were installed at commit")
			}
			// Quiesced: the live arena must conserve the sum too.
			var sum uint64
			db.Table(acct).Scan(0, snapSpan, func(_ uint64, rec []byte) bool {
				sum += repro.GetU64(rec, 0)
				return true
			})
			if sum != 0 {
				t.Fatalf("final arena sum = %d, want 0", sum)
			}
			if got := db.Table(grow).Len(); got != inserts {
				t.Fatalf("audit table holds %d records, want %d", got, inserts)
			}
		})
	}
}

// The closed-loop driver path: a YCSB mix with ReadOnlyPct on a
// versioned table must route the read-only fraction through snapshots
// (SnapTxns) on every engine, and snapshot transactions never abort.
func TestSnapshotStatsOnRun(t *testing.T) {
	for _, tc := range snapEngines() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db := repro.NewDB()
			tbl := db.Create(repro.Layout{
				Name: "ycsb", NumRecords: 4096, RecordSize: 64, Versioned: true,
			})
			src := &repro.YCSB{Table: tbl, NumRecords: 4096, OpsPerTxn: 4,
				HotRecords: 64, HotOps: 2, ReadOnlyPct: 50}
			if err := src.Validate(); err != nil {
				t.Fatal(err)
			}
			eng, ok := tc.build(db).(repro.Engine)
			if !ok {
				t.Fatalf("%s does not implement Engine", tc.name)
			}
			res := eng.Run(src, 30*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("nothing committed")
			}
			if res.Totals.SnapTxns == 0 {
				t.Fatal("ReadOnlyPct mix produced no snapshot transactions")
			}
			if res.Totals.SnapRecords == 0 {
				t.Fatal("snapshot transactions read no records")
			}
			if res.Totals.Installed == 0 {
				t.Fatal("writers installed no versions")
			}
		})
	}
}

// With a WAL attached, a snapshot is the *acknowledged* frontier: a
// write that has committed locally but whose group-commit flush has not
// fired is invisible to snapshot readers, and becomes visible once the
// log drains (acknowledgment order = LSN order).
func TestSnapshotReadsSeeOnlyAckedWrites(t *testing.T) {
	db := repro.NewDB()
	tbl := db.Create(repro.Layout{Name: "t", NumRecords: 8, RecordSize: 16, Versioned: true})
	log := repro.NewWAL(repro.NewWALMemDevice(), repro.WALGroup(1<<20, time.Hour))
	eng := repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: 2, Wal: log})
	ses := eng.Start()

	var acked atomic.Int64
	wtx := &repro.Txn{Ops: []repro.Op{{Table: tbl, Key: 0, Mode: repro.Write}}}
	wtx.Logic = func(ctx repro.Ctx) error {
		rec, err := ctx.Write(tbl, 0)
		if err != nil {
			return err
		}
		repro.PutU64(rec, 0, 7)
		return nil
	}
	ses.Submit(wtx, func(bool) { acked.Add(1) })

	// Wait until the writer has appended its redo record (LSN 1 assigned)
	// but before any flush: the huge group size and hour-long interval
	// keep it unacknowledged until Drain forces the flush.
	deadline := time.Now().Add(5 * time.Second)
	for log.LastLSN() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never appended its redo record")
		}
	}

	read := func() uint64 {
		var got uint64
		done := make(chan struct{})
		rtx := &repro.Txn{
			Ops:      []repro.Op{{Table: tbl, Key: 0, Mode: repro.Read}},
			ReadOnly: true,
		}
		rtx.Logic = func(ctx repro.Ctx) error {
			rec, err := ctx.Read(tbl, 0)
			if err != nil {
				return err
			}
			got = repro.GetU64(rec, 0)
			return nil
		}
		ses.Submit(rtx, func(bool) { close(done) })
		<-done
		return got
	}

	if got := read(); got != 0 {
		t.Fatalf("snapshot read saw unacknowledged write: %d", got)
	}
	if acked.Load() != 0 {
		t.Fatal("write was acknowledged before any flush")
	}
	log.Drain() // forces the group-commit flush; acknowledgment fires
	if acked.Load() != 1 {
		t.Fatal("log drain did not acknowledge the write")
	}
	ses.Drain()
	if got := read(); got != 7 {
		t.Fatalf("post-drain snapshot read = %d, want 7", got)
	}
	ses.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// Knob validation is loud: a negative Snapshots prune interval panics at
// Start, not silently misbehaving mid-run.
func TestSnapshotPruneEveryValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		start func(db *repro.DB)
	}{
		{"2pl", func(db *repro.DB) {
			repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: 2,
				Snapshot: repro.SnapshotConfig{PruneEvery: -1}}).Start()
		}},
		{"orthrus", func(db *repro.DB) {
			repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 1, ExecThreads: 1,
				Snapshot: repro.SnapshotConfig{PruneEvery: -1}}).Start()
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db := repro.NewDB()
			db.Create(repro.Layout{Name: "t", NumRecords: 8, RecordSize: 16, Versioned: true})
			defer func() {
				if recover() == nil {
					t.Fatal("negative PruneEvery did not panic at Start")
				}
			}()
			tc.start(db)
		})
	}
}
