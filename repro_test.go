package repro_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro"
)

// These tests exercise the library exclusively through the public facade,
// the same surface the examples use.

func newAccountDB(t testing.TB, n uint64, balance int64) (*repro.DB, int) {
	t.Helper()
	db := repro.NewDB()
	tbl := db.Create(repro.Layout{Name: "accounts", NumRecords: n, RecordSize: 64})
	for k := uint64(0); k < n; k++ {
		repro.PutI64(db.Table(tbl).Get(k), 0, balance)
	}
	return db, tbl
}

func sumBalances(db *repro.DB, tbl int, n uint64) int64 {
	var sum int64
	for k := uint64(0); k < n; k++ {
		sum += repro.GetI64(db.Table(tbl).Get(k), 0)
	}
	return sum
}

// allEngines builds the complete system lineup against a fresh database
// each, plus the matching table id.
func allEngines(t testing.TB) []struct {
	eng repro.Engine
	db  *repro.DB
	tbl int
} {
	t.Helper()
	const n, threads = 64, 4
	type entry = struct {
		eng repro.Engine
		db  *repro.DB
		tbl int
	}
	var out []entry
	build := func(f func(db *repro.DB) repro.Engine) {
		db, tbl := newAccountDB(t, n, 1000)
		out = append(out, entry{f(db), db, tbl})
	}
	build(func(db *repro.DB) repro.Engine {
		return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
	})
	build(func(db *repro.DB) repro.Engine {
		return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads})
	})
	build(func(db *repro.DB) repro.Engine {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads})
	})
	build(func(db *repro.DB) repro.Engine {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitForGraph(threads), Threads: threads})
	})
	build(func(db *repro.DB) repro.Engine {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.Dreadlocks(threads), Threads: threads})
	})
	build(func(db *repro.DB) repro.Engine {
		return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads})
	})
	return out
}

// Every engine, via the public API, conserves balances under contended
// transfers: the repository's one-line statement of serializable isolation.
func TestPublicAPIConservationOnAllEngines(t *testing.T) {
	for _, e := range allEngines(t) {
		e := e
		t.Run(e.eng.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			res := e.eng.Run(src, 100*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("sum = %d, want %d", got, 64*1000)
			}
		})
	}
}

// Latency histograms are populated through the public Result type.
func TestPublicAPILatencyReporting(t *testing.T) {
	db, tbl := newAccountDB(t, 1024, 0)
	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
	src := &repro.YCSB{Table: tbl, NumRecords: 1024, OpsPerTxn: 4}
	res := eng.Run(src, 60*time.Millisecond)
	lat := &res.Totals.Latency
	if lat.Count() != res.Totals.Committed {
		t.Fatalf("latency samples %d != commits %d", lat.Count(), res.Totals.Committed)
	}
	if lat.Mean() <= 0 || lat.Percentile(99) < lat.Percentile(50) {
		t.Fatalf("implausible latencies: %v", lat)
	}
}

// Custom hand-built transactions run on every engine unchanged.
func TestPublicAPICustomTxn(t *testing.T) {
	for _, e := range allEngines(t) {
		e := e
		t.Run(e.eng.Name(), func(t *testing.T) {
			tblID := e.tbl
			src := customSource(func(rng *rand.Rand) *repro.Txn {
				k := uint64(rng.Intn(64))
				tx := &repro.Txn{Ops: []repro.Op{{Table: tblID, Key: k, Mode: repro.Write}}}
				tx.Logic = func(ctx repro.Ctx) error {
					rec, err := ctx.Write(tblID, k)
					if err != nil {
						return err
					}
					repro.AddI64(rec, 8, 1) // second field: op counter
					return nil
				}
				return tx
			})
			res := e.eng.Run(src, 60*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			var total int64
			for k := uint64(0); k < 64; k++ {
				total += repro.GetI64(e.db.Table(e.tbl).Get(k), 8)
			}
			if total != int64(res.Totals.Committed) {
				t.Fatalf("counter total %d != commits %d", total, res.Totals.Committed)
			}
		})
	}
}

type customSource func(rng *rand.Rand) *repro.Txn

func (f customSource) Next(_ int, rng *rand.Rand) *repro.Txn { return f(rng) }

// The error sentinels are visible and distinguishable.
func TestPublicAPIErrors(t *testing.T) {
	if errors.Is(repro.ErrAborted, repro.ErrEstimateMiss) {
		t.Fatal("sentinels alias")
	}
	if repro.ErrAborted.Error() == "" || repro.ErrEstimateMiss.Error() == "" {
		t.Fatal("empty error strings")
	}
}

// TPC-C through the facade: load, run the paper mix, audit.
func TestPublicAPITPCC(t *testing.T) {
	s, err := repro.LoadTPCC(repro.TPCCConfig{Warehouses: 2, Items: 100, CustomersPerDistrict: 20})
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewOrthrus(repro.OrthrusConfig{
		DB: s.DB, CCThreads: 2, ExecThreads: 2, Partition: s.PartitionByWarehouse(2),
	})
	res := eng.Run(&repro.TPCCMix{S: s}, 100*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Mode constants and helpers round-trip as documented.
func TestPublicAPIHelpers(t *testing.T) {
	if repro.Read.Conflicts(repro.Read) || !repro.Read.Conflicts(repro.Write) {
		t.Fatal("mode conflict matrix wrong")
	}
	rec := make([]byte, 16)
	repro.PutU64(rec, 0, 7)
	repro.AddU64(rec, 0, 2)
	if repro.GetU64(rec, 0) != 9 {
		t.Fatal("u64 helpers broken")
	}
	if repro.HashPartitioner(4)(0, 6) != 2 {
		t.Fatal("HashPartitioner broken")
	}
	ix := repro.NewSecondaryIndex()
	ix.Add(1, 10)
	if pk, _, ok := ix.Middle(1); !ok || pk != 10 {
		t.Fatal("secondary index broken")
	}
}

// ExampleYCSB demonstrates the quickstart flow (durations kept tiny so
// the example is fast under go test).
func Example() {
	db := repro.NewDB()
	tbl := db.Create(repro.Layout{Name: "accounts", NumRecords: 1 << 12, RecordSize: 100})
	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 1, ExecThreads: 1})
	src := &repro.YCSB{Table: tbl, NumRecords: 1 << 12, OpsPerTxn: 10, HotRecords: 64, HotOps: 2}
	res := eng.Run(src, 20*time.Millisecond)
	fmt.Println(res.Totals.Committed > 0)
	// Output: true
}
