// Package repro is a from-scratch Go reproduction of
//
//	Kun Ren, Jose M. Faleiro, Daniel J. Abadi.
//	"Design Principles for Scaling Multi-core OLTP Under High Contention."
//	SIGMOD 2016 (arXiv:1512.06168).
//
// It provides the paper's system — ORTHRUS, a transaction manager that
// partitions concurrency-control and execution functionality across
// threads communicating by message passing, with planned data access for
// deadlock freedom — together with every baseline and substrate the
// paper's evaluation depends on:
//
//   - conventional two-phase locking with three dynamic deadlock handlers
//     (wait-die, wait-for graph, Dreadlocks);
//   - Deadlock-free ordered locking (planned access on a shared table);
//   - an H-Store-style Partitioned-store;
//   - an in-memory storage engine, YCSB-style workload generators, and a
//     five-transaction TPC-C implementation.
//
// This root package is the public facade: it re-exports the library's
// types and constructors so downstream users never import internal
// packages (which the Go toolchain would refuse anyway). The examples/
// directory exercises exactly this surface.
//
// # Quick start
//
//	db := repro.NewDB()
//	tbl := db.Create(repro.Layout{Name: "accounts", NumRecords: 1 << 20, RecordSize: 100})
//	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 12})
//	src := &repro.YCSB{Table: tbl, NumRecords: 1 << 20, OpsPerTxn: 10, HotRecords: 64, HotOps: 2}
//	res := eng.Run(src, 2*time.Second)
//	fmt.Println(res)
//
// Engines also expose a long-lived service lifecycle (Runtime/Session):
// Start the engine once, Submit transactions from any caller with
// per-transaction completion callbacks, Drain and Close. RunClosedLoop
// and RunOpenLoop are the two bundled load drivers over that lifecycle;
// examples/server shows direct submission.
//
// See README.md for the architecture, the Runtime/Session API, and how
// to regenerate the paper's figures with the experiment harness.
package repro

import (
	"time"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/engine/twopl"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/orthrus"
	"repro/internal/partstore"
	"repro/internal/storage"
	"repro/internal/tpcc"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// --- storage --------------------------------------------------------------

// DB is an in-memory database: a registry of tables and secondary indexes.
type DB = storage.DB

// Layout describes a table to create.
type Layout = storage.Layout

// Table is the storage access interface.
type Table = storage.Table

// SecondaryIndex maps secondary keys to sorted primary-key posting lists.
type SecondaryIndex = storage.SecondaryIndex

// NewDB returns an empty database.
func NewDB() *DB { return storage.NewDB() }

// NewSecondaryIndex returns an empty secondary index.
func NewSecondaryIndex() *SecondaryIndex { return storage.NewSecondaryIndex() }

// Fixed-width record field helpers.
var (
	GetU64 = storage.GetU64
	PutU64 = storage.PutU64
	GetI64 = storage.GetI64
	PutI64 = storage.PutI64
	AddU64 = storage.AddU64
	AddI64 = storage.AddI64
)

// --- MVCC snapshot reads ----------------------------------------------------

// SnapshotConfig tunes the MVCC snapshot-read machinery every engine
// config embeds (field Snapshot): read-only transactions (Txn.ReadOnly)
// on databases with versioned tables (Layout.Versioned) run against an
// immutable snapshot with zero locks and zero CC-plane traffic. See
// README.md "MVCC snapshot reads".
type SnapshotConfig = engine.SnapshotConfig

// Analytics generates long read-only range scans — the analytical half
// of an HTAP mix; with Snapshot set the scans take the MVCC path.
type Analytics = workload.Analytics

// --- durability -------------------------------------------------------------

// WAL is the redo-only write-ahead log every engine can commit through:
// per-execution-thread append buffers, a group-commit flusher, and
// acknowledgment in LSN order. Attach one to an engine config's Wal
// field; see internal/wal for the protocol and README.md "Durability and
// group commit".
type WAL = wal.Log

// WALDevice is the append-only byte sink a WAL writes to.
type WALDevice = wal.Device

// WALMemDevice is the in-memory device used by tests, benchmarks and
// crash simulation (Contents/SyncedContents expose the crash images).
type WALMemDevice = wal.MemDevice

// SyncPolicy is a WAL's durability discipline; build one with WALOff,
// WALAsync or WALGroup.
type SyncPolicy = wal.SyncPolicy

// WALStats counts the flusher's work: records vs flush batches is the
// achieved group-commit amortization.
type WALStats = wal.Stats

// WALReplayStats reports what a crash-recovery replay found and applied.
type WALReplayStats = wal.ReplayStats

// NewWAL opens a log over dev and starts its group-commit flusher. A nil
// *WAL (or one opened with WALOff) is inert and costs engines nothing.
func NewWAL(dev WALDevice, policy SyncPolicy) *WAL { return wal.NewLog(dev, policy) }

// NewWALMemDevice returns an empty in-memory log device.
func NewWALMemDevice() *WALMemDevice { return wal.NewMemDevice() }

// OpenWALFileDevice opens (creating if absent) an fsync'd log file.
func OpenWALFileDevice(path string) (WALDevice, error) { return wal.OpenFileDevice(path) }

// WALOff disables durability (the paper's instant acknowledgment).
func WALOff() SyncPolicy { return wal.Off() }

// WALAsync appends and flushes in the background but acknowledges at
// pre-commit (synchronous_commit=off semantics).
func WALAsync() SyncPolicy { return wal.Async() }

// WALGroup acknowledges after the redo record is synced, syncing when k
// commits are pending or after interval (zeros mean package defaults).
func WALGroup(k int, interval time.Duration) SyncPolicy { return wal.Group(k, interval) }

// ReplayWAL rebuilds committed state from a (possibly torn) log image
// onto db, which must hold the run's initial contents: it applies the
// longest contiguous LSN prefix — exactly the set of transactions whose
// acknowledgment could have fired before the crash.
func ReplayWAL(data []byte, db *DB) WALReplayStats { return wal.Replay(data, db) }

// --- checkpoints and recovery ----------------------------------------------

// WALSegmentDevice is a WALDevice rotated across segments so the log can
// be truncated below a durable checkpoint; see README.md "Checkpointing
// and parallel recovery".
type WALSegmentDevice = wal.SegmentDevice

// WALMemSegments is the in-memory segment device (tests, experiments).
type WALMemSegments = wal.MemSegments

// NewWALMemSegments returns an empty in-memory segment device rotating
// at segmentBytes (non-positive means the package default, 1 MiB).
func NewWALMemSegments(segmentBytes int) *WALMemSegments { return wal.NewMemSegments(segmentBytes) }

// OpenWALFileSegments opens a directory of fsync'd, rotated segment
// files as a WAL device.
func OpenWALFileSegments(dir string, segmentBytes int) (*wal.FileSegments, error) {
	return wal.OpenFileSegments(dir, segmentBytes)
}

// LoadWALFileSegments reads the segment images under dir in sequence
// order — the recovery input matching OpenWALFileSegments.
func LoadWALFileSegments(dir string) ([][]byte, error) { return wal.LoadFileSegments(dir) }

// CheckpointStore persists fuzzy checkpoint images; Load returns the
// newest checkpoint that validates, falling back past a torn or corrupt
// one to its predecessor.
type CheckpointStore = wal.CheckpointStore

// CheckpointManifest is a committed checkpoint's metadata: the StartLSN/
// TailLSN window of the fuzzy walk and the per-table page CRC folds.
type CheckpointManifest = wal.Manifest

// NewMemCheckpointStore returns an in-memory checkpoint store (tests,
// experiments); it offers crash-simulation helpers for torn manifests.
func NewMemCheckpointStore() *wal.MemCheckpointStore { return wal.NewMemCheckpointStore() }

// OpenDirCheckpointStore opens a directory-backed checkpoint store whose
// commit point is an fsync'd manifest rename.
func OpenDirCheckpointStore(dir string) (*wal.DirCheckpointStore, error) {
	return wal.OpenDirCheckpointStore(dir)
}

// CheckpointConfig configures the background fuzzy checkpointer every
// engine config embeds (field Checkpoint); a nil Store disables it.
type CheckpointConfig = engine.CheckpointConfig

// CheckpointStats counts a session's checkpointer work.
type CheckpointStats = engine.CheckpointStats

// CheckpointedSession is a Session running a checkpointer: Checkpoint()
// forces one synchronously, CheckpointStats() reports progress.
type CheckpointedSession = engine.CheckpointedSession

// ForceCheckpoint runs one synchronous checkpoint on a session started
// from a config with Checkpoint.Store set; it errors on sessions
// without a checkpointer.
func ForceCheckpoint(ses Session) error { return engine.ForceCheckpoint(ses) }

// RecoverStats reports one recovery: the checkpoint restored and the
// log-tail replay on top.
type RecoverStats = wal.RecoverStats

// RecoverWAL rebuilds committed state onto db from the newest valid
// checkpoint in store (nil means none) plus the committed prefix of the
// segmented log tail, using up to workers goroutines (<=0 means
// GOMAXPROCS) for both the page restore and the partitioned replay.
func RecoverWAL(store CheckpointStore, segments [][]byte, db *DB, workers int) (RecoverStats, error) {
	return wal.Recover(store, segments, db, workers)
}

// ReplayWALSegments replays the committed prefix of a segmented log
// above LSN after onto db with workers goroutines — ReplayWAL
// generalized to rotated segments and partition-parallel application.
func ReplayWALSegments(segments [][]byte, after uint64, workers int, db *DB) WALReplayStats {
	return wal.ReplaySegments(segments, after, workers, db)
}

// --- transactions -----------------------------------------------------------

// Txn is one transaction: a declared access set plus a logic closure.
type Txn = txn.Txn

// Op names one record in a transaction's declared access set.
type Op = txn.Op

// RangeOp names one key interval in a transaction's declared access set:
// a range the transaction scans (Read) or may insert into (Write).
// Engines protect declared ranges against phantoms with stripe (gap)
// locks; see README.md "Range scans and phantom protection".
type RangeOp = txn.RangeOp

// Stripe (gap) lock geometry: one stripe lock covers StripeSize adjacent
// record keys; StripeKey maps a record key to its covering stripe lock
// key. Record keys must stay below 1<<63 (bit 63 marks stripe keys).
const (
	StripeShift = txn.StripeShift
	StripeSize  = txn.StripeSize
)

// StripeKey returns the stripe lock key covering a record key.
func StripeKey(key uint64) uint64 { return txn.StripeKey(key) }

// Ctx is the engine-supplied access context transaction logic runs against.
type Ctx = txn.Ctx

// Mode is a record access mode.
type Mode = txn.Mode

// Access modes.
const (
	Read  = txn.Read
	Write = txn.Write
)

// PartitionFunc maps records to partitions (ORTHRUS CC threads,
// Partitioned-store partitions).
type PartitionFunc = txn.PartitionFunc

// HashPartitioner spreads keys round-robin over n partitions.
func HashPartitioner(n int) PartitionFunc { return txn.HashPartitioner(n) }

// RangePartitioner splits the key space [0, span) into n contiguous
// equal-width ranges — the static routing level under which spatially
// concentrated hot sets land on few logical partitions (what elastic
// CC routing rebalances).
func RangePartitioner(n int, span uint64) PartitionFunc { return txn.RangePartitioner(n, span) }

// ErrAborted is returned through Ctx when a deadlock handler victimizes
// the transaction; ErrEstimateMiss when an OLLP access estimate was wrong.
var (
	ErrAborted      = txn.ErrAborted
	ErrEstimateMiss = txn.ErrEstimateMiss
)

// --- engines ----------------------------------------------------------------

// Engine runs workloads for a fixed duration and reports metrics. All six
// systems (ORTHRUS and its variants, 2PL with each handler, Deadlock-free,
// Partitioned-store) implement it; Run is the shared closed-loop driver
// over the Runtime lifecycle.
type Engine = engine.Engine

// Runtime is the service-style lifecycle every engine implements: Start
// the engine's threads once, then Submit transactions through the
// returned Session.
type Runtime = engine.Runtime

// Session accepts transactions for a started Runtime: Submit with a
// per-transaction completion callback, Drain, Close.
type Session = engine.Session

// System is the full engine surface: Engine plus Runtime. Every
// constructor below returns an implementation.
type System = engine.System

// RunClosedLoop drives a Runtime with self-generated closed-loop load —
// the generic implementation behind Engine.Run.
func RunClosedLoop(rt Runtime, src Source, duration time.Duration) Result {
	return engine.RunClosedLoop(rt, src, duration)
}

// RunOpenLoop drives a Runtime with Poisson arrivals at a fixed rate and
// reports commit-latency percentiles measured from each transaction's
// scheduled arrival (latency under offered, not self-regulated, load).
func RunOpenLoop(rt Runtime, src Source, rate float64, duration time.Duration) OpenLoopResult {
	return engine.RunOpenLoop(rt, src, rate, duration)
}

// OpenLoopResult is an open-loop run's outcome: engine totals plus the
// scheduled-arrival-to-commit latency histogram.
type OpenLoopResult = engine.OpenLoopResult

// Result is a timed run's outcome; Result.Throughput() is committed
// transactions per second.
type Result = metrics.Result

// Totals is the aggregate counter/time-breakdown block inside a Result
// (execute/lock/wait plus the durability flush-stall Log component).
type Totals = metrics.Totals

// Histogram is the log₂-bucketed latency histogram used throughout.
type Histogram = metrics.Histogram

// OrthrusConfig configures the paper's system (see internal/orthrus docs).
type OrthrusConfig = orthrus.Config

// Orthrus is the paper's engine; beyond Engine/Runtime it reports
// message-plane statistics (Messages).
type Orthrus = orthrus.Engine

// MessageStats counts ORTHRUS message-plane traffic (the quantity §3.3's
// forwarding optimization reduces from 2·Ncc to Ncc+1 per acquisition).
type MessageStats = orthrus.MessageStats

// CCStats is one CC thread's share of the message plane (per-thread load
// breakdown inside MessageStats.PerCC).
type CCStats = orthrus.CCStats

// ControllerConfig tunes ORTHRUS's adaptive controller: sampled live
// partition migration that re-provisions concurrency-control capacity
// as the workload shifts (OrthrusConfig.Controller).
type ControllerConfig = orthrus.ControllerConfig

// ControllerStats reports the adaptive controller's activity over a
// session (Orthrus.ControllerStats).
type ControllerStats = orthrus.ControllerStats

// NewOrthrus builds an ORTHRUS engine.
func NewOrthrus(cfg OrthrusConfig) *Orthrus { return orthrus.New(cfg) }

// AutotuneOrthrus probes candidate CC/exec splits for a total thread
// budget against the given workload and returns the best configuration
// (the paper's §4.2 allocation trade-off, resolved empirically; see
// internal/orthrus Autotune docs for caveats).
func AutotuneOrthrus(db *DB, totalThreads int, pf PartitionFunc, src Source, probe time.Duration) OrthrusConfig {
	return orthrus.Autotune(db, totalThreads, pf, src, probe)
}

// TwoPLConfig configures conventional dynamic two-phase locking.
type TwoPLConfig = twopl.Config

// TwoPL is the conventional dynamic-2PL engine.
type TwoPL = twopl.Engine

// NewTwoPL builds a 2PL engine with the given deadlock handler.
func NewTwoPL(cfg TwoPLConfig) *TwoPL { return twopl.New(cfg) }

// DeadlockFreeConfig configures ordered-acquisition locking.
type DeadlockFreeConfig = dlfree.Config

// DeadlockFree is the ordered-acquisition locking engine.
type DeadlockFree = dlfree.Engine

// NewDeadlockFree builds the Deadlock-free locking engine.
func NewDeadlockFree(cfg DeadlockFreeConfig) *DeadlockFree { return dlfree.New(cfg) }

// PartitionedStoreConfig configures the H-Store-style baseline.
type PartitionedStoreConfig = partstore.Config

// PartitionedStore is the H-Store-style baseline engine.
type PartitionedStore = partstore.Engine

// NewPartitionedStore builds the Partitioned-store engine.
func NewPartitionedStore(cfg PartitionedStoreConfig) *PartitionedStore { return partstore.New(cfg) }

// Handler is a pluggable 2PL deadlock policy.
type Handler = lock.Handler

// WaitDie returns the timestamp-based wait-die policy.
func WaitDie() Handler { return deadlock.WaitDie{} }

// WaitForGraph returns the partitioned waits-for-graph policy for nthreads
// worker threads.
func WaitForGraph(nthreads int) Handler { return deadlock.NewWaitForGraph(nthreads) }

// Dreadlocks returns the digest-based policy for nthreads worker threads.
func Dreadlocks(nthreads int) Handler { return deadlock.NewDreadlocks(nthreads) }

// NoWait returns the abort-on-any-conflict policy (extension beyond the
// paper's lineup; see internal/deadlock).
func NoWait() Handler { return deadlock.NoWait{} }

// WoundWait returns the wound-wait policy for nthreads worker threads
// (extension beyond the paper's lineup; older requesters abort younger
// holders instead of waiting).
func WoundWait(nthreads int) Handler { return deadlock.NewWoundWait(nthreads) }

// --- workloads ---------------------------------------------------------------

// Source produces transactions for worker threads.
type Source = workload.Source

// YCSB is the configurable YCSB-style generator (read-only or RMW,
// hot/cold contention, partition-locality constraints).
type YCSB = workload.YCSB

// Transfer is the balance-conservation workload used for isolation
// testing.
type Transfer = workload.Transfer

// Zipf draws keys from a Zipfian distribution.
type Zipf = workload.Zipf

// Phased is a non-stationary source: a schedule of phases, each an inner
// source served for a wall-clock duration (the last runs open-ended).
type Phased = workload.Phased

// Phase is one stretch of a Phased schedule.
type Phase = workload.Phase

// --- TPC-C --------------------------------------------------------------------

// TPCCConfig sizes a TPC-C database.
type TPCCConfig = tpcc.Config

// TPCCSchema is a loaded TPC-C database (tables, keys, generators).
type TPCCSchema = tpcc.Schema

// TPCCMix is the weighted TPC-C transaction source (paper default:
// 50% NewOrder / 50% Payment).
type TPCCMix = tpcc.Mix

// LoadTPCC builds and populates a TPC-C database.
func LoadTPCC(cfg TPCCConfig) (*TPCCSchema, error) { return tpcc.Load(cfg) }

// Mixed generates per-operation read/update mixes (the standard YCSB
// A/B/C shapes); see the preset constructors below.
type Mixed = workload.Mixed

// YCSB preset mixes: A (50% reads), B (95% reads), C (read-only).
var (
	YCSBMixA = workload.YCSBA
	YCSBMixB = workload.YCSBB
	YCSBMixC = workload.YCSBC
)
