//go:build !race

package repro_test

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops a fraction of Puts (to shake out unsound
// reuse), so exact allocation counts are meaningless there and the strict
// zero-alloc assertions skip themselves.
const raceEnabled = false
