package repro_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro"
)

// checkpointedEngine bundles one engine built over a segmented WAL and an
// in-memory checkpoint store, ready for crash-recovery tests.
type checkpointedEngine struct {
	name  string
	sys   repro.System
	db    *repro.DB
	tbl   int
	dev   *repro.WALMemSegments
	log   *repro.WAL
	store interface {
		repro.CheckpointStore
		Count() int
		Manifests() []repro.CheckpointManifest
		DropNewest()
		CorruptNewestManifest()
		CorruptNewestPage()
	}
}

// checkpointedEngines builds every system over a fresh 64-account database
// with a small-segment WAL (so rotation and truncation actually happen) and
// a checkpointer configured for manual ForceCheckpoint control.
func checkpointedEngines(t testing.TB) []*checkpointedEngine {
	t.Helper()
	const threads = 4
	var out []*checkpointedEngine
	build := func(name string, f func(db *repro.DB, log *repro.WAL, ck repro.CheckpointConfig) repro.System) {
		db, tbl := newAccountDB(t, 64, 1000)
		dev := repro.NewWALMemSegments(4 << 10)
		log := repro.NewWAL(dev, repro.WALGroup(16, 100*time.Microsecond))
		store := repro.NewMemCheckpointStore()
		ck := repro.CheckpointConfig{Store: store, Interval: time.Hour, ChunkRecords: 7}
		out = append(out, &checkpointedEngine{
			name: name, sys: f(db, log, ck), db: db, tbl: tbl, dev: dev, log: log, store: store,
		})
	}
	build("orthrus", func(db *repro.DB, log *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2, Wal: log, Checkpoint: ck})
	})
	build("dlfree", func(db *repro.DB, log *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads, Wal: log, Checkpoint: ck})
	})
	build("twopl", func(db *repro.DB, log *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads, Wal: log, Checkpoint: ck})
	})
	build("partstore", func(db *repro.DB, log *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads, Wal: log, Checkpoint: ck})
	})
	return out
}

// submitTransfers pushes n random two-account transfers through the session
// and waits for every acknowledgment, so the caller knows exactly which
// transactions are committed when it returns.
func submitTransfers(ses repro.Session, tbl, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		a := uint64(rng.Intn(64))
		b := uint64(rng.Intn(64))
		for b == a {
			b = uint64(rng.Intn(64))
		}
		tx := &repro.Txn{Ops: []repro.Op{
			{Table: tbl, Key: a, Mode: repro.Write},
			{Table: tbl, Key: b, Mode: repro.Write},
		}}
		tx.SortOps()
		tx.Logic = func(ctx repro.Ctx) error {
			ra, err := ctx.Write(tbl, a)
			if err != nil {
				return err
			}
			rb, err := ctx.Write(tbl, b)
			if err != nil {
				return err
			}
			repro.AddI64(ra, 0, -1)
			repro.AddI64(rb, 0, 1)
			return nil
		}
		ses.Submit(tx, func(bool) { wg.Done() })
	}
	wg.Wait()
}

// requireTableEqual asserts two databases hold byte-identical account tables.
func requireTableEqual(t *testing.T, label string, want *repro.DB, wtbl int, got *repro.DB, gtbl int) {
	t.Helper()
	for k := uint64(0); k < 64; k++ {
		if !bytes.Equal(want.Table(wtbl).Get(k), got.Table(gtbl).Get(k)) {
			t.Fatalf("%s: key %d differs from live state", label, k)
		}
	}
}

// runCheckpointedPhases drives three 200-transfer phases with a fuzzy
// checkpoint forced after phases 1 and 2 (the checkpointer walks the table
// while later submissions are in flight on phase boundaries is not required —
// forcing between phases keeps the LSN bounds deterministic for assertions),
// then closes the session and log, returning the checkpointer's stats.
func runCheckpointedPhases(t *testing.T, e *checkpointedEngine) repro.CheckpointStats {
	t.Helper()
	ses := e.sys.Start()
	submitTransfers(ses, e.tbl, 200, 1)
	if err := repro.ForceCheckpoint(ses); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	submitTransfers(ses, e.tbl, 200, 2)
	if err := repro.ForceCheckpoint(ses); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	submitTransfers(ses, e.tbl, 200, 3)
	ses.Drain()
	stats := ses.(repro.CheckpointedSession).CheckpointStats()
	ses.Close()
	if err := e.log.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
		t.Fatalf("live sum = %d, want %d", got, 64*1000)
	}
	return stats
}

// Parallel and serial recovery must produce byte-identical state equal to
// the live database, on every engine; recovery must actually use the
// checkpoint, and the second checkpoint must have truncated log segments
// below the first checkpoint's start.
func TestCheckpointRecoveryParallelMatchesSerialOnAllEngines(t *testing.T) {
	for _, e := range checkpointedEngines(t) {
		e := e
		t.Run(e.name, func(t *testing.T) {
			stats := runCheckpointedPhases(t, e)
			if stats.Checkpoints != 2 {
				t.Fatalf("checkpoints = %d, want 2", stats.Checkpoints)
			}
			if stats.TruncatedSegments == 0 {
				t.Fatal("second checkpoint truncated no segments")
			}
			if e.dev.Truncated() == 0 {
				t.Fatal("device reports no truncated segments")
			}
			segs := e.dev.CrashSegments()

			dbSerial, tblSerial := newAccountDB(t, 64, 1000)
			stSerial, err := repro.RecoverWAL(e.store, segs, dbSerial, 1)
			if err != nil {
				t.Fatalf("serial recovery: %v", err)
			}
			dbPar, tblPar := newAccountDB(t, 64, 1000)
			stPar, err := repro.RecoverWAL(e.store, segs, dbPar, runtime.GOMAXPROCS(0))
			if err != nil {
				t.Fatalf("parallel recovery: %v", err)
			}

			for _, r := range []struct {
				label string
				st    repro.RecoverStats
				db    *repro.DB
				tbl   int
			}{{"serial", stSerial, dbSerial, tblSerial}, {"parallel", stPar, dbPar, tblPar}} {
				if !r.st.UsedCheckpoint {
					t.Fatalf("%s recovery ignored the checkpoint", r.label)
				}
				if r.st.Replay.Torn {
					t.Fatalf("%s recovery saw a torn log", r.label)
				}
				// The checkpoint bounds the replay tail: only the phase-3
				// transfers (plus any records the second walk raced past)
				// replay, never the full 600-transaction history.
				if r.st.Replay.Applied >= 600 {
					t.Fatalf("%s recovery replayed %d records; checkpoint did not bound the tail", r.label, r.st.Replay.Applied)
				}
				if got := sumBalances(r.db, r.tbl, 64); got != 64*1000 {
					t.Fatalf("%s recovered sum = %d, want %d", r.label, got, 64*1000)
				}
				requireTableEqual(t, r.label, e.db, e.tbl, r.db, r.tbl)
			}
			if stSerial.Replay.Applied != stPar.Replay.Applied ||
				stSerial.Replay.AppliedLSN != stPar.Replay.AppliedLSN {
				t.Fatalf("serial applied (%d, lsn %d) != parallel applied (%d, lsn %d)",
					stSerial.Replay.Applied, stSerial.Replay.AppliedLSN,
					stPar.Replay.Applied, stPar.Replay.AppliedLSN)
			}
		})
	}
}

// A crash that tears the newest checkpoint — manifest missing, manifest
// corrupt, or a page corrupt — must fall back to the previous checkpoint
// and a longer log tail, never to wrong data. Log truncation only ever
// drops segments below the PREVIOUS checkpoint's start, so the tail the
// fallback needs is still on disk.
func TestTornCheckpointFallsBackToPreviousCheckpoint(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(e *checkpointedEngine)
	}{
		{"manifest-missing", func(e *checkpointedEngine) { e.store.DropNewest() }},
		{"manifest-corrupt", func(e *checkpointedEngine) { e.store.CorruptNewestManifest() }},
		{"page-corrupt", func(e *checkpointedEngine) { e.store.CorruptNewestPage() }},
	}
	for _, c := range corruptions {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e := checkpointedEngines(t)[0] // orthrus; engine choice is irrelevant to store fallback
			runCheckpointedPhases(t, e)
			segs := e.dev.CrashSegments()

			dbIntact, tblIntact := newAccountDB(t, 64, 1000)
			stIntact, err := repro.RecoverWAL(e.store, segs, dbIntact, 2)
			if err != nil {
				t.Fatalf("intact recovery: %v", err)
			}
			manifests := e.store.Manifests()
			if len(manifests) != 2 {
				t.Fatalf("retained %d manifests, want 2", len(manifests))
			}

			c.corrupt(e)
			dbFall, tblFall := newAccountDB(t, 64, 1000)
			stFall, err := repro.RecoverWAL(e.store, segs, dbFall, 2)
			if err != nil {
				t.Fatalf("fallback recovery: %v", err)
			}
			if !stFall.UsedCheckpoint {
				t.Fatal("fallback recovery found no usable checkpoint")
			}
			if stFall.StartLSN != manifests[0].StartLSN {
				t.Fatalf("fallback started at LSN %d, want previous checkpoint's %d", stFall.StartLSN, manifests[0].StartLSN)
			}
			// Falling back one checkpoint means replaying a strictly longer
			// log tail to reach the same state.
			if stFall.Replay.Applied <= stIntact.Replay.Applied {
				t.Fatalf("fallback applied %d records, intact applied %d; fallback tail should be longer",
					stFall.Replay.Applied, stIntact.Replay.Applied)
			}
			if got := sumBalances(dbFall, tblFall, 64); got != 64*1000 {
				t.Fatalf("fallback sum = %d, want %d", got, 64*1000)
			}
			requireTableEqual(t, "intact", e.db, e.tbl, dbIntact, tblIntact)
			requireTableEqual(t, "fallback", e.db, e.tbl, dbFall, tblFall)
		})
	}
}

// A crash in the middle of log truncation leaves an arbitrary subset of the
// truncatable segments deleted. Recovery must not care: every record at or
// below the checkpoint's start LSN is skipped regardless of whether its
// segment survived, so any subset yields the same state.
func TestCrashMidTruncationStillRecovers(t *testing.T) {
	e := checkpointedEngines(t)[0]
	ses := e.sys.Start()
	submitTransfers(ses, e.tbl, 300, 7)
	// One checkpoint only: truncation fires on the NEXT checkpoint, so the
	// full log survives and the test can delete eligible segments itself.
	if err := repro.ForceCheckpoint(ses); err != nil {
		t.Fatal(err)
	}
	submitTransfers(ses, e.tbl, 300, 8)
	ses.Drain()
	ses.Close()
	if err := e.log.Close(); err != nil {
		t.Fatal(err)
	}
	manifests := e.store.Manifests()
	if len(manifests) != 1 {
		t.Fatalf("retained %d manifests, want 1", len(manifests))
	}
	cut := manifests[0].StartLSN

	// Pair each non-empty segment with its LSN bound. After Close all
	// written bytes are synced, so CrashSegments aligns with the non-empty
	// entries of Segments.
	segs := e.dev.CrashSegments()
	var infos []struct {
		maxLSN uint64
		sealed bool
	}
	for _, in := range e.dev.Segments() {
		if in.Bytes > 0 {
			infos = append(infos, struct {
				maxLSN uint64
				sealed bool
			}{in.MaxLSN, in.Sealed})
		}
	}
	if len(infos) != len(segs) {
		t.Fatalf("segment info mismatch: %d infos, %d crash segments", len(infos), len(segs))
	}

	// Simulate a truncation crash: delete every other eligible segment.
	var kept [][]byte
	eligible, dropped := 0, 0
	for i, in := range infos {
		if in.sealed && in.maxLSN <= cut {
			eligible++
			if eligible%2 == 1 {
				dropped++
				continue
			}
		}
		kept = append(kept, segs[i])
	}
	if dropped == 0 {
		t.Fatalf("no truncatable segments below LSN %d; test needs a longer phase 1", cut)
	}

	for _, workers := range []int{1, 4} {
		db, tbl := newAccountDB(t, 64, 1000)
		st, err := repro.RecoverWAL(e.store, kept, db, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !st.UsedCheckpoint {
			t.Fatalf("workers=%d: recovery ignored the checkpoint", workers)
		}
		if st.Replay.Torn {
			t.Fatalf("workers=%d: recovery saw a torn log", workers)
		}
		if got := sumBalances(db, tbl, 64); got != 64*1000 {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, 64*1000)
		}
		requireTableEqual(t, "mid-truncation", e.db, e.tbl, db, tbl)
	}
}

// Checkpointing through the on-disk store and segmented file device must
// survive a process "restart": load segments and checkpoint from disk into
// a fresh database and reach the live state.
func TestFileCheckpointAndSegmentsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dev, err := repro.OpenWALFileSegments(dir+"/wal", 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	log := repro.NewWAL(dev, repro.WALGroup(16, 100*time.Microsecond))
	store, err := repro.OpenDirCheckpointStore(dir + "/ck")
	if err != nil {
		t.Fatal(err)
	}
	db, tbl := newAccountDB(t, 64, 1000)
	eng := repro.NewOrthrus(repro.OrthrusConfig{
		DB: db, CCThreads: 2, ExecThreads: 2, Wal: log,
		Checkpoint: repro.CheckpointConfig{Store: store, Interval: time.Hour},
	})
	ses := eng.Start()
	submitTransfers(ses, tbl, 200, 11)
	if err := repro.ForceCheckpoint(ses); err != nil {
		t.Fatal(err)
	}
	submitTransfers(ses, tbl, 200, 12)
	if err := repro.ForceCheckpoint(ses); err != nil {
		t.Fatal(err)
	}
	submitTransfers(ses, tbl, 200, 13)
	ses.Drain()
	stats := ses.(repro.CheckpointedSession).CheckpointStats()
	ses.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.TruncatedSegments == 0 {
		t.Fatal("no segment files truncated")
	}

	segs, err := repro.LoadWALFileSegments(dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	store2, err := repro.OpenDirCheckpointStore(dir + "/ck")
	if err != nil {
		t.Fatal(err)
	}
	db2, tbl2 := newAccountDB(t, 64, 1000)
	st, err := repro.RecoverWAL(store2, segs, db2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsedCheckpoint {
		t.Fatal("recovery ignored the on-disk checkpoint")
	}
	if got := sumBalances(db2, tbl2, 64); got != 64*1000 {
		t.Fatalf("recovered sum = %d, want %d", got, 64*1000)
	}
	requireTableEqual(t, "file-roundtrip", db, tbl, db2, tbl2)
}

// The checkpointer must handle every table class: versioned fixed tables
// (snapshot copy-out), plain fixed tables, ordered grow tables (key
// enumeration), and unordered grow tables (latched copy-out). Build one
// database with all four, run inserts and updates, checkpoint fuzzily,
// and verify recovery reproduces every table byte for byte.
func TestCheckpointCoversAllTableClasses(t *testing.T) {
	build := func() (*repro.DB, [4]int) {
		db := repro.NewDB()
		var ids [4]int
		ids[0] = db.Create(repro.Layout{Name: "fixed", NumRecords: 64, RecordSize: 32})
		ids[1] = db.Create(repro.Layout{Name: "versioned", NumRecords: 64, RecordSize: 32, Versioned: true})
		ids[2] = db.Create(repro.Layout{Name: "ordered", RecordSize: 32, Growable: true, Ordered: true})
		ids[3] = db.Create(repro.Layout{Name: "unordered", RecordSize: 32, Growable: true})
		for k := uint64(0); k < 64; k++ {
			repro.PutI64(db.Table(ids[0]).Get(k), 0, 100)
			repro.PutI64(db.Table(ids[1]).Get(k), 0, 100)
		}
		return db, ids
	}
	db, ids := build()
	dev := repro.NewWALMemSegments(4 << 10)
	log := repro.NewWAL(dev, repro.WALGroup(16, 100*time.Microsecond))
	store := repro.NewMemCheckpointStore()
	eng := repro.NewTwoPL(repro.TwoPLConfig{
		DB: db, Handler: repro.WaitDie(), Threads: 4, Wal: log,
		Checkpoint: repro.CheckpointConfig{Store: store, Interval: time.Hour, ChunkRecords: 7},
	})
	ses := eng.Start()

	phase := func(round int) {
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			i := i
			key := uint64(round*64 + i)
			wg.Add(1)
			tx := &repro.Txn{Ops: []repro.Op{
				{Table: ids[0], Key: uint64(i), Mode: repro.Write},
				{Table: ids[1], Key: uint64(i), Mode: repro.Write},
			}}
			tx.SortOps()
			tx.Logic = func(ctx repro.Ctx) error {
				ra, err := ctx.Write(ids[0], uint64(i))
				if err != nil {
					return err
				}
				repro.AddI64(ra, 0, 1)
				rb, err := ctx.Write(ids[1], uint64(i))
				if err != nil {
					return err
				}
				repro.AddI64(rb, 0, 1)
				rec := make([]byte, 32)
				repro.PutI64(rec, 0, int64(key))
				if err := ctx.Insert(ids[2], key, rec); err != nil {
					return err
				}
				return ctx.Insert(ids[3], key, rec)
			}
			ses.Submit(tx, func(bool) { wg.Done() })
		}
		wg.Wait()
	}
	phase(0)
	if err := repro.ForceCheckpoint(ses); err != nil {
		t.Fatal(err)
	}
	phase(1)
	ses.Drain()
	ses.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	db2, ids2 := build()
	st, err := repro.RecoverWAL(store, dev.CrashSegments(), db2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsedCheckpoint {
		t.Fatal("recovery ignored the checkpoint")
	}
	for c := 0; c < 4; c++ {
		if got, want := db2.Table(ids2[c]).Len(), db.Table(ids[c]).Len(); got != want {
			t.Fatalf("table %d: recovered %d records, live has %d", c, got, want)
		}
	}
	for k := uint64(0); k < 64; k++ {
		for c := 0; c < 2; c++ {
			if !bytes.Equal(db.Table(ids[c]).Get(k), db2.Table(ids2[c]).Get(k)) {
				t.Fatalf("table %d key %d differs after recovery", c, k)
			}
		}
	}
	for k := uint64(0); k < 128; k++ {
		for c := 2; c < 4; c++ {
			if !bytes.Equal(db.Table(ids[c]).Get(k), db2.Table(ids2[c]).Get(k)) {
				t.Fatalf("table %d key %d differs after recovery", c, k)
			}
		}
	}
}

// Versioned-table chunks are imaged through snapshot reads at the WAL's
// DURABLE frontier, which lags assigned LSNs under async/group commit.
// The checkpointer must force the frontier up to StartLSN before walking:
// a chunk snapshotted below StartLSN omits durable updates that replay —
// which starts past StartLSN — never re-applies, silently losing
// acknowledged transactions. This test pins the lag deterministically: an
// async policy whose group trigger and fill window are unreachable keeps
// the durable frontier at 0 until the checkpoint itself forces it.
func TestCheckpointStartLSNCoversDurableFrontierLag(t *testing.T) {
	build := func() (*repro.DB, int) {
		db := repro.NewDB()
		tbl := db.Create(repro.Layout{Name: "accounts", NumRecords: 64, RecordSize: 64, Versioned: true})
		// Populate through Insert — the load path — so each row's base
		// version holds the loaded image and snapshot reads of keys no
		// transfer ever touches resolve to it, not to the zero image.
		rec := make([]byte, 64)
		repro.PutI64(rec, 0, 1000)
		for k := uint64(0); k < 64; k++ {
			if err := db.Table(tbl).Insert(k, rec); err != nil {
				t.Fatal(err)
			}
		}
		return db, tbl
	}
	db, tbl := build()
	dev := repro.NewWALMemSegments(4 << 10)
	policy := repro.WALAsync()
	policy.GroupSize = 1 << 30
	policy.Interval = time.Hour
	log := repro.NewWAL(dev, policy)
	store := repro.NewMemCheckpointStore()
	eng := repro.NewTwoPL(repro.TwoPLConfig{
		DB: db, Handler: repro.WaitDie(), Threads: 4, Wal: log,
		Checkpoint: repro.CheckpointConfig{Store: store, Interval: time.Hour, ChunkRecords: 7},
	})
	ses := eng.Start()
	submitTransfers(ses, tbl, 100, 21)
	if got, last := log.DurableLSN(), log.LastLSN(); got != 0 || last == 0 {
		t.Fatalf("durable frontier %d (last assigned %d); the lag this test pins is gone", got, last)
	}
	if err := repro.ForceCheckpoint(ses); err != nil {
		t.Fatal(err)
	}
	ses.Drain()
	ses.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	manifests := store.Manifests()
	if len(manifests) != 1 {
		t.Fatalf("retained %d manifests, want 1", len(manifests))
	}
	db2, tbl2 := build()
	st, err := repro.RecoverWAL(store, dev.CrashSegments(), db2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsedCheckpoint {
		t.Fatal("recovery ignored the checkpoint")
	}
	if got := sumBalances(db2, tbl2, 64); got != 64*1000 {
		t.Fatalf("recovered sum = %d, want %d", got, 64*1000)
	}
	requireTableEqual(t, "frontier-lag", db, tbl, db2, tbl2)
}
