package repro_test

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// Single-thread determinism: every engine executing the same scripted
// serial transaction sequence must drive the database to the identical
// final state. This catches any engine applying, dropping, duplicating or
// corrupting effects — independent of timing.

// boundedSource serves exactly stopAt scripted transactions, then serves
// effect-free no-ops until the engine's stop timer fires.
type boundedSource struct {
	script []func() *repro.Txn
	stopAt int64
	next   atomic.Int64
}

func (s *boundedSource) Next(int, *rand.Rand) *repro.Txn {
	i := s.next.Add(1) - 1
	if i < s.stopAt {
		return s.script[i]()
	}
	t := &repro.Txn{}
	t.Logic = func(repro.Ctx) error { return nil }
	return t
}

func buildScript(tbl int, n int) []func() *repro.Txn {
	rng := rand.New(rand.NewSource(99))
	script := make([]func() *repro.Txn, n)
	for i := range script {
		a := uint64(rng.Intn(32))
		b := uint64(rng.Intn(31))
		if b >= a {
			b++
		}
		delta := int64(1 + rng.Intn(9))
		script[i] = func() *repro.Txn {
			t := &repro.Txn{Ops: []repro.Op{
				{Table: tbl, Key: a, Mode: repro.Write},
				{Table: tbl, Key: b, Mode: repro.Write},
			}}
			t.Logic = func(ctx repro.Ctx) error {
				src, err := ctx.Write(tbl, a)
				if err != nil {
					return err
				}
				dst, err := ctx.Write(tbl, b)
				if err != nil {
					return err
				}
				repro.AddI64(src, 0, -delta)
				repro.AddI64(dst, 0, delta)
				return nil
			}
			return t
		}
	}
	return script
}

func stateHash(db *repro.DB, tbl int, rows uint64) string {
	h := sha256.New()
	for k := uint64(0); k < rows; k++ {
		h.Write(db.Table(tbl).Get(k))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestSingleThreadDeterminismAcrossEngines(t *testing.T) {
	const rows, scripted = 32, 200
	builders := []struct {
		name  string
		build func(db *repro.DB) repro.Engine
	}{
		{"orthrus", func(db *repro.DB) repro.Engine {
			return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 1, ExecThreads: 1, Inflight: 1})
		}},
		{"dlfree", func(db *repro.DB) repro.Engine {
			return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: 1})
		}},
		{"2pl-waitdie", func(db *repro.DB) repro.Engine {
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: 1})
		}},
		{"2pl-woundwait", func(db *repro.DB) repro.Engine {
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WoundWait(1), Threads: 1})
		}},
		{"2pl-nowait", func(db *repro.DB) repro.Engine {
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.NoWait(), Threads: 1})
		}},
		{"partstore", func(db *repro.DB) repro.Engine {
			return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: 1, Threads: 1})
		}},
	}

	var want string
	for _, b := range builders {
		db := repro.NewDB()
		tbl := db.Create(repro.Layout{Name: "t", NumRecords: rows, RecordSize: 16})
		for k := uint64(0); k < rows; k++ {
			repro.PutI64(db.Table(tbl).Get(k), 0, 1000)
		}
		src := &boundedSource{script: buildScript(tbl, scripted), stopAt: scripted}
		res := b.build(db).Run(src, 120*time.Millisecond)
		if res.Totals.Committed < scripted {
			t.Fatalf("%s: committed %d < %d scripted txns", b.name, res.Totals.Committed, scripted)
		}
		h := stateHash(db, tbl, rows)
		if want == "" {
			want = h
		} else if h != want {
			t.Fatalf("%s reached a different final state", b.name)
		}
	}
}
