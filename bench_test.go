package repro

import (
	"testing"
	"time"
)

// Whole-system throughput benchmarks, one per paper figure. Each benchmark
// runs its figure's headline data point for a duration proportional to
// b.N and reports committed transactions per second as a custom metric, so
//
//	go test -bench=. -benchmem
//
// produces a row per (figure, system) pair. The full parameter sweeps —
// every axis value of every figure — live in cmd/orthrus-bench; these
// benchmarks pin the headline comparisons. Thread counts are logical
// (README.md "Scale and fidelity") and sized for a small machine; raise benchDuration and
// the table sizes for a closer match to the paper's configuration.

// benchRecords is the YCSB table size (paper: 10M; scaled for CI).
const benchRecords = 1 << 16

func benchDuration(b *testing.B) time.Duration {
	d := time.Duration(b.N) * time.Millisecond
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func newBenchDB() (*DB, int) {
	db := NewDB()
	tbl := db.Create(Layout{Name: "ycsb", NumRecords: benchRecords, RecordSize: 100})
	return db, tbl
}

func reportRun(b *testing.B, eng Engine, src Source) {
	b.Helper()
	res := eng.Run(src, benchDuration(b))
	b.ReportMetric(res.Throughput(), "txns/sec")
	b.ReportMetric(res.Totals.AbortRate()*100, "abort%")
}

// BenchmarkFig1TwoPLReadOnly: Figure 1 — read-only 2PL on a 64-record hot
// set; the paper's demonstration that conflict-free workloads still
// contend physically on the shared lock table.
func BenchmarkFig1TwoPLReadOnly(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewTwoPL(TwoPLConfig{DB: db, Handler: WaitDie(), Threads: threads})
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				ReadOnly: true, HotRecords: 64, HotOps: 2}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkFig4DeadlockHandlers: Figure 4(b) headline — hot set 64,
// 10-RMW, all four deadlock policies.
func BenchmarkFig4DeadlockHandlers(b *testing.B) {
	const threads = 16
	handlers := []struct {
		name string
		h    func() Handler
	}{
		{"deadlock-free", nil},
		{"waitdie", func() Handler { return WaitDie() }},
		{"waitfor", func() Handler { return WaitForGraph(threads) }},
		{"dreadlocks", func() Handler { return Dreadlocks(threads) }},
	}
	for _, hc := range handlers {
		b.Run(hc.name, func(b *testing.B) {
			db, tbl := newBenchDB()
			var eng Engine
			if hc.h == nil {
				eng = NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: threads})
			} else {
				eng = NewTwoPL(TwoPLConfig{DB: db, Handler: hc.h(), Threads: threads})
			}
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkFig5ThreadAllocation: Figure 5 — fixed CC thread counts,
// growing execution threads, single-partition uniform 10-RMW.
func BenchmarkFig5ThreadAllocation(b *testing.B) {
	for _, cc := range []int{2, 4} {
		for _, ex := range []int{2, 8, 16} {
			b.Run(benchName2("cc", cc, "exec", ex), func(b *testing.B) {
				db, tbl := newBenchDB()
				eng := NewOrthrus(OrthrusConfig{DB: db, CCThreads: cc, ExecThreads: ex})
				src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
					Partitions: cc, Spread: 1, MultiPartitionPct: 100}
				reportRun(b, eng, src)
			})
		}
	}
}

// BenchmarkFig6MultiPartition: Figure 6 — partitions per transaction.
func BenchmarkFig6MultiPartition(b *testing.B) {
	const parts = 8
	for _, spread := range []int{1, 2, 4, 8} {
		b.Run(benchName("parts", spread), func(b *testing.B) {
			for _, sys := range []string{"partstore", "orthrus", "dlfree"} {
				b.Run(sys, func(b *testing.B) {
					db, tbl := newBenchDB()
					src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
						Partitions: parts, Spread: spread, MultiPartitionPct: 100}
					var eng Engine
					switch sys {
					case "partstore":
						eng = NewPartitionedStore(PartitionedStoreConfig{DB: db, Partitions: parts})
					case "orthrus":
						eng = NewOrthrus(OrthrusConfig{DB: db, CCThreads: parts, ExecThreads: 8})
					case "dlfree":
						eng = NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: 16})
					}
					reportRun(b, eng, src)
				})
			}
		})
	}
}

// BenchmarkFig7MultiPartitionPct: Figure 7 — fraction of two-partition
// transactions.
func BenchmarkFig7MultiPartitionPct(b *testing.B) {
	const parts = 8
	for _, pct := range []int{0, 50, 100} {
		b.Run(benchName("mp", pct), func(b *testing.B) {
			for _, sys := range []string{"partstore", "orthrus", "dlfree"} {
				b.Run(sys, func(b *testing.B) {
					db, tbl := newBenchDB()
					src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
						Partitions: parts, Spread: 2, MultiPartitionPct: pct}
					var eng Engine
					switch sys {
					case "partstore":
						eng = NewPartitionedStore(PartitionedStoreConfig{DB: db, Partitions: parts})
					case "orthrus":
						eng = NewOrthrus(OrthrusConfig{DB: db, CCThreads: parts, ExecThreads: 8})
					case "dlfree":
						eng = NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: 16})
					}
					reportRun(b, eng, src)
				})
			}
		})
	}
}

func newBenchTPCC(b *testing.B, warehouses int) *TPCCSchema {
	b.Helper()
	s, err := LoadTPCC(TPCCConfig{Warehouses: warehouses, Items: 500, CustomersPerDistrict: 60})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func tpccBenchEngines(s *TPCCSchema, threads int) map[string]Engine {
	cc := threads / 5
	if cc < 1 {
		cc = 1
	}
	return map[string]Engine{
		"orthrus": NewOrthrus(OrthrusConfig{DB: s.DB, CCThreads: cc, ExecThreads: threads - cc,
			Partition: s.PartitionByWarehouse(cc)}),
		"dlfree":         NewDeadlockFree(DeadlockFreeConfig{DB: s.DB, Threads: threads}),
		"2pl-dreadlocks": NewTwoPL(TwoPLConfig{DB: s.DB, Handler: Dreadlocks(threads), Threads: threads}),
	}
}

// BenchmarkFig8TPCCWarehouses: Figure 8 — TPC-C 50/50 mix across
// warehouse counts (contention decreases as warehouses grow).
func BenchmarkFig8TPCCWarehouses(b *testing.B) {
	const threads = 16
	for _, w := range []int{4, 16, 64} {
		b.Run(benchName("wh", w), func(b *testing.B) {
			for _, sys := range []string{"orthrus", "dlfree", "2pl-dreadlocks"} {
				b.Run(sys, func(b *testing.B) {
					s := newBenchTPCC(b, w)
					eng := tpccBenchEngines(s, threads)[sys]
					reportRun(b, eng, &TPCCMix{S: s})
				})
			}
		})
	}
}

// BenchmarkFig9TPCCScalability: Figure 9 — TPC-C at 16 warehouses,
// growing thread counts.
func BenchmarkFig9TPCCScalability(b *testing.B) {
	for _, threads := range []int{4, 8, 16} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			for _, sys := range []string{"orthrus", "dlfree", "2pl-dreadlocks"} {
				b.Run(sys, func(b *testing.B) {
					s := newBenchTPCC(b, 16)
					eng := tpccBenchEngines(s, threads)[sys]
					reportRun(b, eng, &TPCCMix{S: s})
				})
			}
		})
	}
}

// BenchmarkFig10Breakdown: Figure 10 — execution-thread time breakdown;
// the exec% metric is the paper's "useful work" fraction.
func BenchmarkFig10Breakdown(b *testing.B) {
	const threads = 16
	for _, cfg := range []struct {
		name string
		w    int
	}{{"low-contention-64wh", 64}, {"high-contention-4wh", 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			for _, sys := range []string{"orthrus", "dlfree", "2pl-dreadlocks"} {
				b.Run(sys, func(b *testing.B) {
					s := newBenchTPCC(b, cfg.w)
					eng := tpccBenchEngines(s, threads)[sys]
					res := eng.Run(&TPCCMix{S: s}, benchDuration(b))
					e, l, w, _ := res.Totals.Breakdown()
					b.ReportMetric(res.Throughput(), "txns/sec")
					b.ReportMetric(e, "exec%")
					b.ReportMetric(l, "lock%")
					b.ReportMetric(w, "wait%")
				})
			}
		})
	}
}

// appendix-style YCSB scalability benches (Figures 11 and 12).
func benchYCSBScal(b *testing.B, readOnly bool, hot uint64) {
	const threads = 16
	cc, ex := threads/5, threads-threads/5
	if cc < 1 {
		cc = 1
	}
	systems := []string{"orthrus-single", "orthrus-dual", "orthrus-random", "dlfree", "2pl-waitdie"}
	for _, sys := range systems {
		b.Run(sys, func(b *testing.B) {
			db, tbl := newBenchDB()
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				ReadOnly: readOnly, HotRecords: hot}
			if hot > 0 {
				src.HotOps = 2
			}
			var eng Engine
			switch sys {
			case "orthrus-single":
				src.Partitions, src.Spread, src.MultiPartitionPct = cc, 1, 100
				eng = NewOrthrus(OrthrusConfig{DB: db, CCThreads: cc, ExecThreads: ex})
			case "orthrus-dual":
				src.Partitions, src.MultiPartitionPct = cc, 100
				src.Spread = 2
				if cc < 2 {
					src.Spread = 1
				}
				eng = NewOrthrus(OrthrusConfig{DB: db, CCThreads: cc, ExecThreads: ex})
			case "orthrus-random":
				eng = NewOrthrus(OrthrusConfig{DB: db, CCThreads: cc, ExecThreads: ex})
			case "dlfree":
				eng = NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: threads})
			case "2pl-waitdie":
				eng = NewTwoPL(TwoPLConfig{DB: db, Handler: WaitDie(), Threads: threads})
			}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkFig11ReadOnly: Figure 11 — YCSB read-only, low (a) and high
// (b) contention.
func BenchmarkFig11ReadOnly(b *testing.B) {
	b.Run("low", func(b *testing.B) { benchYCSBScal(b, true, 0) })
	b.Run("high", func(b *testing.B) { benchYCSBScal(b, true, 64) })
}

// BenchmarkFig12RMW: Figure 12 — YCSB 10RMW, low (a) and high (b)
// contention.
func BenchmarkFig12RMW(b *testing.B) {
	b.Run("low", func(b *testing.B) { benchYCSBScal(b, false, 0) })
	b.Run("high", func(b *testing.B) { benchYCSBScal(b, false, 64) })
}

// --- ablation benches (design choices called out in README.md "Ablations") -----------

// BenchmarkAblationTransport compares the SPSC-ring message plane against
// buffered Go channels at identical configuration.
func BenchmarkAblationTransport(b *testing.B) {
	for _, chans := range []bool{false, true} {
		name := "spsc"
		if chans {
			name = "channels"
		}
		b.Run(name, func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewOrthrus(OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 8, UseChannels: chans})
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkAblationSharedTable compares private per-CC lock tables against
// the §3.4 shared latched table.
func BenchmarkAblationSharedTable(b *testing.B) {
	for _, shared := range []bool{false, true} {
		name := "private"
		if shared {
			name = "shared"
		}
		b.Run(name, func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewOrthrus(OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 8, SharedTable: shared})
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkAblationInflight varies the execution threads' asynchronous
// window (§3.3): 1 approximates synchronous waiting.
func BenchmarkAblationInflight(b *testing.B) {
	for _, window := range []int{1, 4, 16} {
		b.Run(benchName("window", window), func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewOrthrus(OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 8, Inflight: window})
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkAblationBatchSize compares the batched message plane against
// the unbatched baseline (BatchSize=1) on the high-contention YCSB mix:
// the same messages cross the rings, in ~1/k as many atomic operations.
// The adaptive row is the AIMD per-exec-thread controller (BatchSize=0,
// the default); it must hold the static default's throughput here while
// shrinking its batch — and hence its queueing delay — under light load.
func BenchmarkAblationBatchSize(b *testing.B) {
	run := func(name string, bs int) {
		b.Run(name, func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewOrthrus(OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 8, BatchSize: bs})
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
			reportRun(b, eng, src)
		})
	}
	for _, bs := range []int{1, 4, 8, 32} {
		run(benchName("batch", bs), bs)
	}
	run("batch=adaptive", 0)
}

// BenchmarkAblationBatchSizeTransfer is the same comparison on the
// short-transaction transfer workload, where per-message overhead is the
// largest fraction of the work.
func BenchmarkAblationBatchSizeTransfer(b *testing.B) {
	for _, bs := range []int{1, 8} {
		b.Run(benchName("batch", bs), func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewOrthrus(OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 8, BatchSize: bs})
			src := &Transfer{Table: tbl, NumRecords: benchRecords}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkAblationZipf runs the skew extension: Zipfian access instead of
// the paper's hot/cold mix.
func BenchmarkAblationZipf(b *testing.B) {
	for _, sys := range []string{"orthrus", "dlfree", "2pl-waitdie"} {
		b.Run(sys, func(b *testing.B) {
			db, tbl := newBenchDB()
			src := &Zipf{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10, Theta: 1.2}
			var eng Engine
			switch sys {
			case "orthrus":
				eng = NewOrthrus(OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 12})
			case "dlfree":
				eng = NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: 16})
			case "2pl-waitdie":
				eng = NewTwoPL(TwoPLConfig{DB: db, Handler: WaitDie(), Threads: 16})
			}
			reportRun(b, eng, src)
		})
	}
}

func benchName(k string, v int) string { return k + "=" + itoa(v) }

func benchName2(k1 string, v1 int, k2 string, v2 int) string {
	return benchName(k1, v1) + "/" + benchName(k2, v2)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationHandlers extends Figure 4's lineup with the two
// extension policies (no-wait, wound-wait) at the headline contention
// point.
func BenchmarkAblationHandlers(b *testing.B) {
	const threads = 16
	handlers := []struct {
		name string
		h    func() Handler
	}{
		{"nowait", func() Handler { return NoWait() }},
		{"woundwait", func() Handler { return WoundWait(threads) }},
		{"waitdie", func() Handler { return WaitDie() }},
	}
	for _, hc := range handlers {
		b.Run(hc.name, func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewTwoPL(TwoPLConfig{DB: db, Handler: hc.h(), Threads: threads})
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkAblationForwarding quantifies §3.3 directly: the Ncc+1
// forwarding protocol against the naive 2·Ncc exec-mediated protocol on
// transactions spanning all CC threads.
func BenchmarkAblationForwarding(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := "forwarding"
		if naive {
			name = "exec-mediated"
		}
		b.Run(name, func(b *testing.B) {
			db, tbl := newBenchDB()
			eng := NewOrthrus(OrthrusConfig{DB: db, CCThreads: 4, ExecThreads: 8,
				DisableForwarding: naive})
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 8,
				Partitions: 4, Spread: 4, MultiPartitionPct: 100}
			reportRun(b, eng, src)
		})
	}
}

// BenchmarkLatency reports commit-latency percentiles alongside
// throughput for the headline high-contention comparison.
func BenchmarkLatency(b *testing.B) {
	const threads = 16
	for _, sys := range []string{"orthrus", "dlfree", "2pl-dreadlocks"} {
		b.Run(sys, func(b *testing.B) {
			db, tbl := newBenchDB()
			var eng Engine
			switch sys {
			case "orthrus":
				eng = NewOrthrus(OrthrusConfig{DB: db, CCThreads: 3, ExecThreads: threads - 3})
			case "dlfree":
				eng = NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: threads})
			case "2pl-dreadlocks":
				eng = NewTwoPL(TwoPLConfig{DB: db, Handler: Dreadlocks(threads), Threads: threads})
			}
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
			res := eng.Run(src, benchDuration(b))
			b.ReportMetric(res.Throughput(), "txns/sec")
			b.ReportMetric(float64(res.Totals.Latency.Percentile(50).Microseconds()), "p50-µs")
			b.ReportMetric(float64(res.Totals.Latency.Percentile(99).Microseconds()), "p99-µs")
		})
	}
}

// BenchmarkScanMix: the range-scan extension's headline — a YCSB-E mix
// (20% scans, max length 64) on all four engines, so the per-design cost
// of phantom-safe scans (lazy stripe+record locks vs up-front declaration
// vs partition footprint) is pinned as a benchmark.
func BenchmarkScanMix(b *testing.B) {
	systems := []struct {
		name  string
		build func(db *DB) Engine
	}{
		{"orthrus", func(db *DB) Engine {
			return NewOrthrus(OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 6})
		}},
		{"dlfree", func(db *DB) Engine {
			return NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: 8})
		}},
		{"2pl-waitdie", func(db *DB) Engine {
			return NewTwoPL(TwoPLConfig{DB: db, Handler: WaitDie(), Threads: 8})
		}},
		{"partstore", func(db *DB) Engine {
			return NewPartitionedStore(PartitionedStoreConfig{DB: db, Partitions: 8})
		}},
	}
	for _, sys := range systems {
		b.Run(sys.name, func(b *testing.B) {
			db, tbl := newBenchDB()
			src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
				ScanPct: 20, MaxScanLen: 64}
			if err := src.Validate(); err != nil {
				b.Fatal(err)
			}
			reportRun(b, sys.build(db), src)
		})
	}
}

// BenchmarkReadMostly: the MVCC snapshot-read extension's headline — a
// read-mostly YCSB mix on the contended hot set, comparing the locking
// read path (ReadOnly, plain table) against the snapshot path
// (ReadOnlyPct, versioned table) on all four engines. The acceptance bar
// is snapshot ≥ 1.5× locking at 95% reads on the contended point.
func BenchmarkReadMostly(b *testing.B) {
	systems := []struct {
		name  string
		build func(db *DB) Engine
	}{
		{"orthrus", func(db *DB) Engine {
			return NewOrthrus(OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 6})
		}},
		{"dlfree", func(db *DB) Engine {
			return NewDeadlockFree(DeadlockFreeConfig{DB: db, Threads: 8})
		}},
		{"2pl-waitdie", func(db *DB) Engine {
			return NewTwoPL(TwoPLConfig{DB: db, Handler: WaitDie(), Threads: 8})
		}},
		{"partstore", func(db *DB) Engine {
			return NewPartitionedStore(PartitionedStoreConfig{DB: db, Partitions: 8})
		}},
	}
	for _, pct := range []int{50, 95} {
		b.Run(benchName("read", pct), func(b *testing.B) {
			for _, mode := range []string{"locking", "snapshot"} {
				b.Run(mode, func(b *testing.B) {
					for _, sys := range systems {
						b.Run(sys.name, func(b *testing.B) {
							db := NewDB()
							tbl := db.Create(Layout{Name: "ycsb", NumRecords: benchRecords,
								RecordSize: 100, Versioned: mode == "snapshot"})
							// Identical mix both ways: on the plain table the
							// ReadOnly-flagged transactions fall back to their
							// declared locking reads; on the versioned table
							// they take the snapshot path.
							src := &YCSB{Table: tbl, NumRecords: benchRecords, OpsPerTxn: 10,
								HotRecords: 64, HotOps: 2, ReadOnlyPct: pct}
							if err := src.Validate(); err != nil {
								b.Fatal(err)
							}
							reportRun(b, sys.build(db), src)
						})
					}
				})
			}
		})
	}
}
