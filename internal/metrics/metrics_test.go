package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTotalsAggregation(t *testing.T) {
	s := NewSet(3)
	for i := 0; i < 3; i++ {
		th := s.Thread(i)
		th.Committed = uint64(i + 1)
		th.Aborted = uint64(i)
		th.AddExec(time.Duration(i+1) * time.Millisecond)
		th.AddLock(2 * time.Millisecond)
		th.AddWait(time.Millisecond)
	}
	tot := s.Totals()
	if tot.Committed != 6 || tot.Aborted != 3 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.Exec != 6*time.Millisecond || tot.Lock != 6*time.Millisecond || tot.Wait != 3*time.Millisecond {
		t.Fatalf("time totals = %+v", tot)
	}
}

func TestBreakdownPercentages(t *testing.T) {
	tot := Totals{Exec: 20, Lock: 30, Wait: 50}
	e, l, w, lg := tot.Breakdown()
	if math.Abs(e-20) > 1e-9 || math.Abs(l-30) > 1e-9 || math.Abs(w-50) > 1e-9 || lg != 0 {
		t.Fatalf("breakdown = %v %v %v %v", e, l, w, lg)
	}
	if math.Abs(e+l+w-100) > 1e-9 {
		t.Fatal("percentages do not sum to 100")
	}
	// With a durability flush stall the log share joins the split.
	e, l, w, lg = Totals{Exec: 25, Lock: 25, Wait: 25, Log: 25}.Breakdown()
	if math.Abs(lg-25) > 1e-9 || math.Abs(e+l+w+lg-100) > 1e-9 {
		t.Fatalf("log breakdown = %v %v %v %v", e, l, w, lg)
	}
	e, l, w, lg = Totals{}.Breakdown()
	if e != 0 || l != 0 || w != 0 || lg != 0 {
		t.Fatal("empty totals breakdown not zero")
	}
}

func TestAbortRate(t *testing.T) {
	if r := (Totals{Committed: 3, Aborted: 1}).AbortRate(); math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("AbortRate = %v", r)
	}
	if (Totals{}).AbortRate() != 0 {
		t.Fatal("empty AbortRate != 0")
	}
}

func TestResultThroughputAndString(t *testing.T) {
	r := Result{System: "orthrus", Totals: Totals{Committed: 1000}, Duration: 2 * time.Second}
	if r.Throughput() != 500 {
		t.Fatalf("Throughput = %v", r.Throughput())
	}
	if (Result{}).Throughput() != 0 {
		t.Fatal("zero-duration throughput not 0")
	}
	s := r.String()
	if !strings.Contains(s, "orthrus") || !strings.Contains(s, "txns/s") {
		t.Fatalf("String = %q", s)
	}
}

// Concurrent per-thread updates must not race (validated by -race in CI)
// and must aggregate exactly.
func TestPerThreadIsolation(t *testing.T) {
	const threads, per = 8, 10000
	s := NewSet(threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := s.Thread(i)
			for j := 0; j < per; j++ {
				th.Committed++
				th.AddExec(time.Nanosecond)
			}
		}(i)
	}
	wg.Wait()
	tot := s.Totals()
	if tot.Committed != threads*per {
		t.Fatalf("Committed = %d", tot.Committed)
	}
	if tot.Exec != threads*per {
		t.Fatalf("Exec = %d", tot.Exec)
	}
}
