// Package metrics collects per-thread throughput counters and the
// execute/lock/wait wall-time breakdown reported in the paper's Figure 10.
//
// Each worker thread owns one cache-line-padded ThreadStats slot and
// updates it without synchronization; aggregation happens after the run.
// The three-way time classification follows the paper:
//
//   - Execute: running transaction logic against storage.
//   - Lock:    performing locking work (manipulating the lock table,
//     running deadlock-handler logic, building/sending lock messages).
//   - Wait:    blocked on a conflicting lock, or idle waiting for grants.
//
// A fourth component — Log — extends the paper's three-way split for the
// durable commit pipeline: the flush stall between a transaction's
// pre-commit WAL append and its group-commit acknowledgment. It is zero
// whenever durability is off, keeping the paper-faithful breakdown
// intact.
package metrics

import (
	"fmt"
	"time"
)

// ThreadStats is one worker thread's counters. Padded to its own cache
// lines so concurrent updates from different threads never false-share.
type ThreadStats struct {
	Committed uint64
	Aborted   uint64 // deadlock-handler aborts (each is later retried)
	Misses    uint64 // OLLP estimate misses (subset of restarts)
	Scanned   uint64 // rows delivered through Ctx.Scan (committed or not)

	// MVCC snapshot-read counters (zero unless the database has
	// versioned tables and the workload marks transactions ReadOnly).
	SnapTxns     uint64 // read-only transactions served from a snapshot
	SnapRecords  uint64 // records resolved through version chains (reads + scan rows)
	SnapHops     uint64 // version-chain nodes traversed resolving them
	SnapStaleLSN uint64 // summed snapshot lag behind the log tail, in LSNs, at begin
	Installed    uint64 // committed after-images pushed onto version chains

	ExecNanos int64
	LockNanos int64
	WaitNanos int64
	// LogNanos is the durability flush stall: pre-commit append →
	// group-commit acknowledgment. Accrued by the WAL flusher goroutine
	// (never by the worker itself), so it is a separate field from the
	// worker-owned three above; the Go memory model keeps distinct fields
	// race-free, and the session's drain barrier orders the final writes
	// before aggregation.
	LogNanos int64

	// Latency records committed-transaction latency: first submission to
	// commit, retries included.
	Latency Histogram

	// Padded to 128 bytes, not 64: the adjacent-line prefetcher pulls
	// cache lines in pairs, so neighbouring slots in a Set's slice would
	// still false-share across a single-line pad.
	_ [128]byte
}

// AddExec accrues execution time.
func (s *ThreadStats) AddExec(d time.Duration) { s.ExecNanos += int64(d) }

// AddLock accrues locking time.
func (s *ThreadStats) AddLock(d time.Duration) { s.LockNanos += int64(d) }

// AddWait accrues waiting time.
func (s *ThreadStats) AddWait(d time.Duration) { s.WaitNanos += int64(d) }

// AddLog accrues durability flush-stall time.
func (s *ThreadStats) AddLog(d time.Duration) { s.LogNanos += int64(d) }

// Set is a fixed group of per-thread slots.
type Set struct {
	threads []ThreadStats
}

// NewSet returns a Set with n thread slots.
func NewSet(n int) *Set { return &Set{threads: make([]ThreadStats, n)} }

// Thread returns thread i's slot.
func (s *Set) Thread(i int) *ThreadStats { return &s.threads[i] }

// Threads returns the slot count.
func (s *Set) Threads() int { return len(s.threads) }

// Totals aggregates all slots.
func (s *Set) Totals() Totals {
	var t Totals
	for i := range s.threads {
		th := &s.threads[i]
		t.Committed += th.Committed
		t.Aborted += th.Aborted
		t.Misses += th.Misses
		t.Scanned += th.Scanned
		t.SnapTxns += th.SnapTxns
		t.SnapRecords += th.SnapRecords
		t.SnapHops += th.SnapHops
		t.SnapStaleLSN += th.SnapStaleLSN
		t.Installed += th.Installed
		t.Exec += time.Duration(th.ExecNanos)
		t.Lock += time.Duration(th.LockNanos)
		t.Wait += time.Duration(th.WaitNanos)
		t.Log += time.Duration(th.LogNanos)
		t.Latency.Merge(&th.Latency)
	}
	return t
}

// Totals is an aggregate over threads.
type Totals struct {
	Committed    uint64
	Aborted      uint64
	Misses       uint64
	Scanned      uint64
	SnapTxns     uint64
	SnapRecords  uint64
	SnapHops     uint64
	SnapStaleLSN uint64
	Installed    uint64
	Exec         time.Duration
	Lock         time.Duration
	Wait         time.Duration
	Log          time.Duration
	Latency      Histogram
}

// Breakdown returns the execute/lock/wait/log percentages of accounted
// time. Log is the durability flush stall, zero when the WAL is off —
// in which case the first three are exactly the paper's three-way split.
// All zeros when nothing was recorded.
func (t Totals) Breakdown() (execPct, lockPct, waitPct, logPct float64) {
	total := t.Exec + t.Lock + t.Wait + t.Log
	if total <= 0 {
		return 0, 0, 0, 0
	}
	f := 100 / float64(total)
	return float64(t.Exec) * f, float64(t.Lock) * f, float64(t.Wait) * f, float64(t.Log) * f
}

// AbortRate returns aborts per commit attempt.
func (t Totals) AbortRate() float64 {
	att := t.Committed + t.Aborted
	if att == 0 {
		return 0
	}
	return float64(t.Aborted) / float64(att)
}

// SnapStaleness returns the mean snapshot lag behind the log tail in
// LSNs across snapshot-served transactions, or 0 when none ran.
func (t Totals) SnapStaleness() float64 {
	if t.SnapTxns == 0 {
		return 0
	}
	return float64(t.SnapStaleLSN) / float64(t.SnapTxns)
}

// Result is the outcome of one timed engine run.
type Result struct {
	System   string
	Totals   Totals
	Duration time.Duration
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Totals.Committed) / r.Duration.Seconds()
}

// String implements fmt.Stringer with the harness's standard row format.
// The log column appears only when a durability flush stall was recorded,
// so WAL-off output is unchanged.
func (r Result) String() string {
	e, l, w, lg := r.Totals.Breakdown()
	s := fmt.Sprintf("%-22s %12.0f txns/s  commits=%-9d aborts=%-7d exec=%4.1f%% lock=%4.1f%% wait=%4.1f%%",
		r.System, r.Throughput(), r.Totals.Committed, r.Totals.Aborted, e, l, w)
	if r.Totals.Log > 0 {
		s += fmt.Sprintf(" log=%4.1f%%", lg)
	}
	if r.Totals.SnapTxns > 0 {
		s += fmt.Sprintf(" snap=%d", r.Totals.SnapTxns)
	}
	return s
}
