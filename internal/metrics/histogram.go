package metrics

import (
	"fmt"
	"math/bits"
	"time"
)

// Histogram is a log₂-bucketed latency histogram: bucket i counts samples
// in [2^i, 2^(i+1)) nanoseconds. One lives per worker thread (inside
// ThreadStats), updated without synchronization, and they are merged at
// aggregation time — the same discipline as the counters.
type Histogram struct {
	buckets [48]uint64 // 2^47ns ≈ 39h: more than any transaction takes
	count   uint64
	sum     uint64 // nanoseconds
	max     uint64
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d)
	if d <= 0 {
		ns = 1
	}
	idx := bits.Len64(ns) - 1
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average latency, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Percentile returns an upper bound on the p-th percentile latency
// (0 < p <= 100): the upper edge of the bucket containing that rank.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			upper := time.Duration(uint64(1) << (i + 1))
			if upper > time.Duration(h.max) && h.max > 0 {
				return time.Duration(h.max)
			}
			return upper
		}
	}
	return time.Duration(h.max)
}

// String implements fmt.Stringer with the common latency summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}
