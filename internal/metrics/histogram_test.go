package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 100*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
	// Percentiles of a single sample are bounded by the sample itself
	// (bucket upper edge clamped to max).
	if p := h.Percentile(99); p != 100*time.Microsecond {
		t.Fatalf("P99 = %v", p)
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50, p90, p99 := h.Percentile(50), h.Percentile(90), h.Percentile(99)
	if p50 > p90 || p90 > p99 {
		t.Fatalf("percentiles not monotone: %v %v %v", p50, p90, p99)
	}
	// The bucketed p50 upper bound must be within 2x of the true median.
	if p50 < 500*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Fatalf("p50 = %v, want within (500µs, 1024µs]", p50)
	}
}

func TestHistogramNonPositiveSample(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1 { // clamped to 1ns
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(time.Microsecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Max() != 3*time.Millisecond {
		t.Fatalf("Max = %v", a.Max())
	}
	wantMean := (time.Millisecond + 3*time.Millisecond + time.Microsecond) / 3
	if a.Mean() != wantMean {
		t.Fatalf("Mean = %v, want %v", a.Mean(), wantMean)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.String()
	if s == "" || h.Count() != 1 {
		t.Fatal("String/Count broken")
	}
}

// Properties: count equals samples recorded; max is an upper bound for
// every percentile; mean lies between min sample floor and max.
func TestHistogramProperties(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		var max time.Duration
		for _, s := range samples {
			d := time.Duration(s%1_000_000 + 1)
			h.Record(d)
			if d > max {
				max = d
			}
		}
		if h.Count() != uint64(len(samples)) {
			return false
		}
		if h.Max() != max {
			return false
		}
		for _, p := range []float64{1, 50, 90, 99, 100} {
			if h.Percentile(p) > max {
				return false
			}
		}
		return h.Mean() <= max && h.Mean() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetMergesLatencies(t *testing.T) {
	s := NewSet(2)
	s.Thread(0).Latency.Record(time.Millisecond)
	s.Thread(1).Latency.Record(2 * time.Millisecond)
	tot := s.Totals()
	if tot.Latency.Count() != 2 {
		t.Fatalf("merged count = %d", tot.Latency.Count())
	}
	if tot.Latency.Max() != 2*time.Millisecond {
		t.Fatalf("merged max = %v", tot.Latency.Max())
	}
}
