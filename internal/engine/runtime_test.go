package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/txn"
)

// The MPMC queue must neither lose nor duplicate submissions under
// concurrent producers and consumers.
func TestMPMCConcurrentSum(t *testing.T) {
	const producers, consumers, perProducer = 4, 3, 5000
	q := newMPMC(64)
	var want, got atomic.Int64
	var wg sync.WaitGroup
	var remaining atomic.Int64
	remaining.Store(producers * perProducer)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := int64(p*perProducer + i + 1)
				want.Add(v)
				sub := Submission{Txn: &txn.Txn{ID: uint64(v)}}
				var idle IdleWaiter
				for !q.tryEnqueue(sub) {
					idle.Wait()
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var idle IdleWaiter
			for remaining.Load() > 0 {
				sub, ok := q.tryDequeue()
				if !ok {
					idle.Wait()
					continue
				}
				idle.Reset()
				got.Add(int64(sub.Txn.ID))
				remaining.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got.Load() != want.Load() {
		t.Fatalf("sum %d, want %d (lost or duplicated submissions)", got.Load(), want.Load())
	}
	if _, ok := q.tryDequeue(); ok {
		t.Fatal("queue should be empty")
	}
}

// A single producer/consumer pair must observe FIFO order.
func TestMPMCFIFO(t *testing.T) {
	q := newMPMC(8)
	for i := 1; i <= 8; i++ {
		if !q.tryEnqueue(Submission{Txn: &txn.Txn{ID: uint64(i)}}) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	if q.tryEnqueue(Submission{Txn: &txn.Txn{}}) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	for i := 1; i <= 8; i++ {
		sub, ok := q.tryDequeue()
		if !ok || sub.Txn.ID != uint64(i) {
			t.Fatalf("dequeue %d: got %v ok=%v", i, sub.Txn, ok)
		}
	}
}

// Regression: a non-positive capacity used to make the power-of-two
// doubling loop compare against a huge unsigned value and spin forever
// once n overflowed to zero. newMPMC must clamp instead.
func TestMPMCNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		q := newMPMC(capacity)
		if got := len(q.cells); got != 1 {
			t.Fatalf("newMPMC(%d) capacity = %d, want 1", capacity, got)
		}
		if !q.tryEnqueue(Submission{Txn: &txn.Txn{ID: 42}}) {
			t.Fatalf("newMPMC(%d): enqueue refused on empty queue", capacity)
		}
		sub, ok := q.tryDequeue()
		if !ok || sub.Txn.ID != 42 {
			t.Fatalf("newMPMC(%d): dequeue = (%v,%v)", capacity, sub.Txn, ok)
		}
	}
}

// A negative gauge means unbalanced Done calls; Wait must fail loudly
// instead of spinning past zero forever.
func TestGaugeNegativePanics(t *testing.T) {
	var g Gauge
	g.Done()
	defer func() {
		if recover() == nil {
			t.Fatal("Wait on a negative gauge did not panic")
		}
	}()
	g.Wait()
}

// Submit on a closed WorkerSession must panic with a descriptive error
// instead of spinning forever against the stopped worker pool.
func TestWorkerSessionSubmitAfterClosePanics(t *testing.T) {
	ws := NewWorkerSession("test", 1, 4, nil, nil, func(int, *metrics.ThreadStats) func(*txn.Txn, *Completion) {
		return func(_ *txn.Txn, c *Completion) { c.Finish(true) }
	})
	ws.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	ws.Submit(&txn.Txn{}, nil)
}

// The InUseGuard contract: concurrent double-Start panics, sequential
// Start→Close→Start reuse works.
func TestInUseGuard(t *testing.T) {
	newWS := func(g *InUseGuard) *WorkerSession {
		return NewWorkerSession("test", 1, 4, g, nil, func(int, *metrics.ThreadStats) func(*txn.Txn, *Completion) {
			return func(_ *txn.Txn, c *Completion) { c.Finish(true) }
		})
	}
	var g InUseGuard
	ws := newWS(&g)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second concurrent session did not panic")
			}
		}()
		newWS(&g)
	}()
	ws.Close()
	ws2 := newWS(&g) // sequential reuse after Close must succeed
	ws2.Submit(&txn.Txn{}, nil)
	ws2.Drain()
	ws2.Close()
}

func TestGaugeWaitsForZero(t *testing.T) {
	var g Gauge
	g.Add(2)
	done := make(chan struct{})
	go func() {
		g.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned with items in flight")
	case <-time.After(5 * time.Millisecond):
	}
	g.Done()
	g.Done()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not return at zero")
	}
}

// WorkerSession plumbing: every submission executes exactly once, the
// completion callback fires, commit latency is recorded only for commits,
// and Close aggregates across workers.
func TestWorkerSessionLifecycle(t *testing.T) {
	var executed atomic.Int64
	ws := NewWorkerSession("test", 3, 16, nil, nil, func(thread int, stats *metrics.ThreadStats) func(*txn.Txn, *Completion) {
		return func(tx *txn.Txn, c *Completion) {
			executed.Add(1)
			if tx.ID == 7 { // marker: "gave up", must not record latency
				c.Finish(false)
				return
			}
			stats.Committed++
			c.Finish(true)
		}
	})

	var callbacks, gaveUp atomic.Int64
	const n = 200
	for i := 0; i < n; i++ {
		tx := &txn.Txn{}
		if i == 0 {
			tx.ID = 7
		}
		ws.Submit(tx, func(committed bool) {
			callbacks.Add(1)
			if !committed {
				gaveUp.Add(1)
			}
		})
	}
	ws.Drain()
	if got := executed.Load(); got != n {
		t.Fatalf("executed %d, want %d", got, n)
	}
	if got := callbacks.Load(); got != n {
		t.Fatalf("callbacks %d, want %d", got, n)
	}
	if got := gaveUp.Load(); got != 1 {
		t.Fatalf("committed=false callbacks %d, want 1", got)
	}
	res := ws.Close()
	if res.Totals.Committed != n-1 {
		t.Fatalf("committed %d, want %d", res.Totals.Committed, n-1)
	}
	if res.Totals.Latency.Count() != n-1 {
		t.Fatalf("latency samples %d, want %d (abandoned txn must not record)",
			res.Totals.Latency.Count(), n-1)
	}
	if res.System != "test" || res.Duration <= 0 {
		t.Fatalf("bad result envelope: %+v", res)
	}
}
