package engine

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
)

func TestUndoLogRollback(t *testing.T) {
	var u UndoLog
	a := []byte{1, 2, 3, 4}
	b := []byte{5, 6, 7, 8}
	u.Record(a)
	copy(a, []byte{9, 9, 9, 9})
	u.Record(b)
	copy(b, []byte{8, 8, 8, 8})
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
	u.Rollback()
	if !bytes.Equal(a, []byte{1, 2, 3, 4}) || !bytes.Equal(b, []byte{5, 6, 7, 8}) {
		t.Fatalf("rollback failed: a=%v b=%v", a, b)
	}
	if u.Len() != 0 {
		t.Fatal("log not reset after rollback")
	}
}

func TestUndoLogDoubleRecordRestoresFirstImage(t *testing.T) {
	var u UndoLog
	rec := []byte{1}
	u.Record(rec)
	rec[0] = 2
	u.Record(rec) // second image (value 2)
	rec[0] = 3
	u.Rollback() // reverse order: restore 2, then 1
	if rec[0] != 1 {
		t.Fatalf("rec = %d, want 1", rec[0])
	}
}

func TestUndoLogResetOnCommit(t *testing.T) {
	var u UndoLog
	rec := []byte{1}
	u.Record(rec)
	rec[0] = 2
	u.Reset()
	u.Rollback() // must be a no-op
	if rec[0] != 2 {
		t.Fatal("Rollback after Reset modified record")
	}
}

func TestUndoLogArenaGrowth(t *testing.T) {
	var u UndoLog
	big := make([]byte, 1<<17) // larger than the default arena chunk
	big[0] = 7
	u.Record(big)
	big[0] = 8
	u.Rollback()
	if big[0] != 7 {
		t.Fatal("large record not restored")
	}
}

func TestIDSourceUniqueAcrossThreads(t *testing.T) {
	a, b := NewIDSource(1), NewIDSource(2)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		for _, id := range []uint64{a.Next(), b.Next()} {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestTimestampMonotonicPerThread(t *testing.T) {
	prev := Timestamp(3)
	for i := 0; i < 100; i++ {
		ts := Timestamp(3)
		if ts < prev {
			t.Fatal("timestamp went backwards")
		}
		prev = ts
	}
	// Thread id occupies the low bits.
	if Timestamp(5)&0x3FF != 5 {
		t.Fatal("thread id not embedded")
	}
}

func TestRunWorkersStopsAndDrains(t *testing.T) {
	var iterations atomic.Int64
	elapsed := RunWorkers(4, 20*time.Millisecond, func(thread int, stop *atomic.Bool) {
		for !stop.Load() {
			iterations.Add(1)
			time.Sleep(time.Millisecond)
		}
	})
	if elapsed < 20*time.Millisecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
	if iterations.Load() == 0 {
		t.Fatal("workers never ran")
	}
}

func newPlannedTestDB(t *testing.T) (*storage.DB, int) {
	t.Helper()
	db := storage.NewDB()
	id := db.Create(storage.Layout{Name: "t", NumRecords: 16, RecordSize: 8})
	return db, id
}

func TestPlannedCtxEnforcesDeclaredSet(t *testing.T) {
	db, tbl := newPlannedTestDB(t)
	tx := &txn.Txn{Ops: []txn.Op{
		{Table: tbl, Key: 1, Mode: txn.Read},
		{Table: tbl, Key: 2, Mode: txn.Write},
	}}
	tx.SortOps()
	ctx := &PlannedCtx{DB: db}
	ctx.Begin(tx)

	if _, err := ctx.Read(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Read(tbl, 2); err != nil {
		t.Fatal("read of write-declared key refused:", err)
	}
	if _, err := ctx.Write(tbl, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Write(tbl, 1); !errors.Is(err, txn.ErrEstimateMiss) {
		t.Fatalf("write on read-declared key: err = %v", err)
	}
	if _, err := ctx.Read(tbl, 9); !errors.Is(err, txn.ErrEstimateMiss) {
		t.Fatalf("undeclared read: err = %v", err)
	}
}

func TestPlannedCtxAbortRollsBack(t *testing.T) {
	db, tbl := newPlannedTestDB(t)
	tx := &txn.Txn{Ops: []txn.Op{{Table: tbl, Key: 3, Mode: txn.Write}}}
	tx.SortOps()
	ctx := &PlannedCtx{DB: db}
	ctx.Begin(tx)
	rec, err := ctx.Write(tbl, 3)
	if err != nil {
		t.Fatal(err)
	}
	storage.PutU64(rec, 0, 42)
	ctx.Abort()
	if storage.GetU64(db.Table(tbl).Get(3), 0) != 0 {
		t.Fatal("abort did not roll back")
	}

	ctx.Begin(tx)
	rec, _ = ctx.Write(tbl, 3)
	storage.PutU64(rec, 0, 7)
	ctx.Commit()
	if storage.GetU64(db.Table(tbl).Get(3), 0) != 7 {
		t.Fatal("commit lost the write")
	}
}

func TestPlannedCtxInsert(t *testing.T) {
	db := storage.NewDB()
	tbl := db.Create(storage.Layout{Name: "g", NumRecords: 0, RecordSize: 8, Growable: true})
	ctx := &PlannedCtx{DB: db}
	ctx.Begin(&txn.Txn{})
	if err := ctx.Insert(tbl, 5, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if db.Table(tbl).Get(5) == nil {
		t.Fatal("insert not visible")
	}
}
