package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Fuzzy checkpointer.
//
// The checkpointer walks every table and streams a checkpoint image to a
// wal.CheckpointStore without ever quiescing writers. The image is fuzzy
// — different records are copied at different moments — but each record
// individually is a committed state from the LSN window the manifest
// records:
//
//   - StartLSN is the last assigned LSN when the walk begins. Before
//     copying anything the checkpointer forces the WAL's durable
//     frontier up to StartLSN, so even the snapshot copy path — which
//     reads at the durable frontier, a frontier that lags assigned LSNs
//     under group/async commit — observes at least the state as of
//     StartLSN. Every record copied thereafter reflects at least
//     everything committed to it by StartLSN, so replaying the log from
//     StartLSN+1 cannot miss an update the image lacks.
//   - TailLSN is the last assigned LSN when the walk ends. No copied
//     record can reflect a commit past TailLSN, and the checkpointer
//     waits for the WAL's durable frontier to reach TailLSN before
//     committing the manifest — so any LSN the image may already embody
//     is itself on the device, and replaying it again over the image
//     just re-applies the same full after-image (redo records carry no
//     deltas, so re-application is idempotent).
//
// Per-record committedness is what requires care, and it is obtained per
// table class:
//
//   - Versioned tables: chunks of keys are read through a ReadOnly
//     transaction submitted to the engine session — the PR 6 snapshot
//     path — so each chunk is a committed snapshot at some LSN in
//     [StartLSN, durable frontier], lock-free.
//   - Unversioned fixed tables and ordered growable tables: chunks are
//     read through ordinary transactions with declared per-key Read ops;
//     the engine's record locks guarantee each value read is a committed
//     image (no writer holds the record mid-transaction). Ordered
//     growable tables are enumerated first (storage.GrowTable.AppendKeys)
//     so the chunk transactions declare exact access sets; keys inserted
//     during the walk are simply absent from the image and covered by
//     the replayed tail.
//   - Unordered growable tables (HISTORY — insert-only by construction):
//     latched per-shard copy-out (storage.GrowTable.CopyOut). Inserts
//     publish complete records under the shard latch, and nothing
//     updates them afterwards, so no engine transaction is needed.
//
// Truncation rule: the store retains the two newest committed
// checkpoints, and after committing checkpoint N the log is truncated
// below checkpoint N−1's StartLSN — never below N's own. If N's manifest
// turns out torn or corrupt at recovery, the store falls back to N−1,
// whose full tail (everything above N−1's StartLSN) is still intact.

// Checkpointer defaults.
const (
	DefaultCheckpointInterval = time.Second
	DefaultChunkRecords       = 256
)

// ErrCheckpointerStopped is returned by Checkpoint after Stop.
var ErrCheckpointerStopped = errors.New("engine: checkpointer stopped")

// CheckpointConfig configures the fuzzy checkpointer. A nil Store
// disables checkpointing entirely (the session is returned unwrapped).
type CheckpointConfig struct {
	// Store receives checkpoint images. Nil disables the checkpointer.
	Store wal.CheckpointStore
	// Interval between automatic checkpoints (0 → DefaultCheckpointInterval).
	Interval time.Duration
	// ChunkRecords bounds how many records one chunk transaction reads
	// and one checkpoint page holds (0 → DefaultChunkRecords). Smaller
	// chunks hold engine locks for shorter windows; larger chunks
	// amortize submission overhead.
	ChunkRecords int
}

// Validate panics on nonsensical knob values (negative durations or
// chunk sizes); zero values mean defaults.
func (c CheckpointConfig) Validate() {
	if c.Interval < 0 {
		panic(fmt.Sprintf("engine: CheckpointConfig.Interval %v is negative", c.Interval))
	}
	if c.ChunkRecords < 0 {
		panic(fmt.Sprintf("engine: CheckpointConfig.ChunkRecords %d is negative", c.ChunkRecords))
	}
}

// CheckpointStats counts the checkpointer's work.
type CheckpointStats struct {
	Checkpoints       uint64 // manifests committed
	Failed            uint64 // checkpoint attempts that errored
	Pages             uint64 // pages written
	Records           uint64 // records imaged
	Bytes             uint64 // page bytes written
	ChunkRetries      uint64 // chunk transactions resubmitted after give-up
	TruncatedSegments uint64 // log segments dropped by the truncation rule
	LastStartLSN      uint64 // newest committed manifest's StartLSN
	LastTailLSN       uint64 // newest committed manifest's TailLSN
}

// Checkpointer runs fuzzy checkpoints against a session, either on a
// ticker (StartCheckpointer) or on demand (Checkpoint). One checkpoint
// runs at a time; Checkpoint serializes callers.
type Checkpointer struct {
	ses Session
	db  *storage.DB
	log *wal.Log
	cfg CheckpointConfig

	// mu serializes checkpoints and guards stopped/prevStart.
	mu        sync.Mutex
	stopped   bool
	hasPrev   bool
	prevStart uint64

	// Reused across chunks and checkpoints: one in-flight chunk
	// transaction, its completion channel, the page builder, and the key
	// enumeration buffer. All cold-path state — the hot Submit→ack path
	// of foreground transactions never touches any of it.
	chunk  *chunkTxn
	donech chan bool
	doneFn func(bool)
	page   wal.PageBuilder
	keyBuf []uint64

	stopOnce sync.Once
	stopc    chan struct{}
	donec    chan struct{}

	stCheckpoints, stFailed, stPages, stRecords atomic.Uint64
	stBytes, stChunkRetries, stTruncated        atomic.Uint64
	stLastStart, stLastTail                     atomic.Uint64
}

// StartCheckpointer builds a checkpointer over ses and starts its ticker
// goroutine. The session must outlive the checkpointer: Stop (or the
// WithCheckpointer wrapper's Close, which calls it) must complete before
// the session closes, because chunk transactions go through ses.Submit.
// Checkpointing requires an enabled WAL — a checkpoint is only usable
// together with the log tail that completes it.
func StartCheckpointer(ses Session, db *storage.DB, log *wal.Log, cfg CheckpointConfig) *Checkpointer {
	cfg.Validate()
	if cfg.Store == nil {
		panic("engine: StartCheckpointer requires a CheckpointConfig.Store")
	}
	if !log.Enabled() {
		panic("engine: checkpointing requires an enabled WAL")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultCheckpointInterval
	}
	if cfg.ChunkRecords == 0 {
		cfg.ChunkRecords = DefaultChunkRecords
	}
	cp := &Checkpointer{
		ses:    ses,
		db:     db,
		log:    log,
		cfg:    cfg,
		donech: make(chan bool, 1),
		stopc:  make(chan struct{}),
		donec:  make(chan struct{}),
	}
	cp.doneFn = func(committed bool) { cp.donech <- committed }
	cp.chunk = &chunkTxn{cp: cp}
	cp.chunk.Logic = cp.chunk.logic
	go cp.loop()
	return cp
}

// loop is the background ticker goroutine.
func (cp *Checkpointer) loop() {
	defer close(cp.donec)
	tick := time.NewTicker(cp.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-cp.stopc:
			return
		case <-tick.C:
			if err := cp.Checkpoint(); err != nil && err != ErrCheckpointerStopped {
				cp.stFailed.Add(1)
			}
		}
	}
}

// Stop halts the ticker and waits for any in-flight checkpoint to
// finish. Subsequent Checkpoint calls return ErrCheckpointerStopped.
// Stop must be called before the underlying session closes.
func (cp *Checkpointer) Stop() {
	cp.stopOnce.Do(func() {
		close(cp.stopc)
		<-cp.donec
		cp.mu.Lock()
		cp.stopped = true
		cp.mu.Unlock()
	})
}

// Stats snapshots the checkpointer's counters.
func (cp *Checkpointer) Stats() CheckpointStats {
	return CheckpointStats{
		Checkpoints:       cp.stCheckpoints.Load(),
		Failed:            cp.stFailed.Load(),
		Pages:             cp.stPages.Load(),
		Records:           cp.stRecords.Load(),
		Bytes:             cp.stBytes.Load(),
		ChunkRetries:      cp.stChunkRetries.Load(),
		TruncatedSegments: cp.stTruncated.Load(),
		LastStartLSN:      cp.stLastStart.Load(),
		LastTailLSN:       cp.stLastTail.Load(),
	}
}

// Checkpoint runs one complete fuzzy checkpoint: walk every table, wait
// for the tail to be durable, commit the manifest, then apply the
// truncation rule. Serialized with the ticker's own checkpoints.
func (cp *Checkpointer) Checkpoint() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.stopped {
		return ErrCheckpointerStopped
	}
	w, err := cp.cfg.Store.Begin()
	if err != nil {
		return err
	}
	startLSN := cp.log.LastLSN()
	// Versioned-table chunks are imaged through snapshot reads at the
	// WAL's durable frontier, which lags assigned LSNs under group/async
	// commit. Force the frontier up to startLSN before the walk so every
	// copy path reflects state at least as new as StartLSN — a chunk
	// snapshotted below StartLSN would omit durable, acknowledged updates
	// that replay (which starts past StartLSN) never re-applies.
	cp.log.WaitDurable(startLSN)
	manifest := &wal.Manifest{StartLSN: startLSN}
	for tid := 0; tid < cp.db.NumTables(); tid++ {
		img, err := cp.copyTable(w, tid)
		if err != nil {
			w.Abort()
			return err
		}
		manifest.Tables = append(manifest.Tables, img)
	}
	manifest.TailLSN = cp.log.LastLSN()
	// Durability barrier: every LSN the image may embody must hit the
	// device before the manifest can authorize dropping log history.
	cp.log.WaitDurable(manifest.TailLSN)
	if err := w.Commit(manifest); err != nil {
		return err
	}
	cp.stCheckpoints.Add(1)
	cp.stLastStart.Store(startLSN)
	cp.stLastTail.Store(manifest.TailLSN)
	// Truncation rule: drop segments only below the PREVIOUS committed
	// checkpoint's StartLSN, so a torn newest manifest still leaves the
	// previous checkpoint plus its full tail recoverable.
	if cp.hasPrev {
		cp.stTruncated.Add(uint64(cp.log.Truncate(cp.prevStart)))
	}
	cp.hasPrev, cp.prevStart = true, startLSN
	return nil
}

// copyTable images one table, dispatching on its layout; see the package
// comment for why each class uses the walk it does.
func (cp *Checkpointer) copyTable(w wal.CheckpointWriter, tid int) (wal.TableImage, error) {
	switch t := cp.db.Table(tid).(type) {
	case *storage.VersionedTable:
		cp.denseKeys(t.Len())
		return cp.copyChunks(w, tid, cp.keyBuf, true)
	case *storage.GrowTable:
		if t.ScanProtected() {
			cp.keyBuf = t.AppendKeys(cp.keyBuf[:0])
			return cp.copyChunks(w, tid, cp.keyBuf, false)
		}
		return cp.copyLatched(w, tid, t)
	case *storage.FixedTable:
		cp.denseKeys(t.Len())
		return cp.copyChunks(w, tid, cp.keyBuf, false)
	default:
		return wal.TableImage{}, fmt.Errorf("engine: cannot checkpoint table %q of unknown layout", cp.db.Table(tid).Name())
	}
}

// denseKeys fills the key buffer with 0..n-1.
func (cp *Checkpointer) denseKeys(n uint64) {
	cp.keyBuf = cp.keyBuf[:0]
	for k := uint64(0); k < n; k++ {
		cp.keyBuf = append(cp.keyBuf, k)
	}
}

// copyChunks images keys of table tid through chunk transactions,
// sealing one page per chunk. snapshot selects the ReadOnly snapshot
// path (versioned tables).
func (cp *Checkpointer) copyChunks(w wal.CheckpointWriter, tid int, keys []uint64, snapshot bool) (wal.TableImage, error) {
	img := wal.TableImage{Table: tid}
	for len(keys) > 0 {
		n := cp.cfg.ChunkRecords
		if n > len(keys) {
			n = len(keys)
		}
		cp.runChunk(tid, keys[:n], snapshot)
		keys = keys[n:]
		if err := cp.sealPage(w, &img); err != nil {
			return img, err
		}
	}
	return img, nil
}

// runChunk submits one chunk transaction and waits for it, resubmitting
// if the engine gives up (2PL past MaxRetries). The chunk's Logic resets
// the page builder on entry, so engine-level retries and resubmissions
// are idempotent.
func (cp *Checkpointer) runChunk(tid int, keys []uint64, snapshot bool) {
	t := cp.chunk
	for {
		t.reset(tid, keys, snapshot)
		cp.ses.Submit(&t.Txn, cp.doneFn)
		if <-cp.donech {
			return
		}
		cp.stChunkRetries.Add(1)
	}
}

// copyLatched images an unordered (insert-only) growable table by
// latched per-shard copy-out, splitting the stream into pages of at most
// ChunkRecords records.
func (cp *Checkpointer) copyLatched(w wal.CheckpointWriter, tid int, t *storage.GrowTable) (wal.TableImage, error) {
	img := wal.TableImage{Table: tid}
	cp.page.Reset(tid)
	var err error
	t.CopyOut(func(key uint64, rec []byte) {
		if err != nil {
			return
		}
		if cp.page.Count() >= cp.cfg.ChunkRecords {
			err = cp.sealPage(w, &img)
			if err != nil {
				return
			}
			cp.page.Reset(tid)
		}
		cp.page.Add(key, rec)
	})
	if err != nil {
		return img, err
	}
	if cp.page.Count() > 0 {
		if err := cp.sealPage(w, &img); err != nil {
			return img, err
		}
	}
	return img, nil
}

// sealPage seals the current page, hands it to the writer, and folds it
// into the table image. Empty pages are skipped (a chunk transaction
// can legitimately image zero records only for an empty table).
func (cp *Checkpointer) sealPage(w wal.CheckpointWriter, img *wal.TableImage) error {
	if cp.page.Count() == 0 {
		return nil
	}
	page := cp.page.Seal()
	if err := w.Page(page); err != nil {
		return err
	}
	img.Pages++
	img.Records += uint64(cp.page.Count())
	img.CRC = wal.FoldPageCRC(img.CRC, page)
	cp.stPages.Add(1)
	cp.stRecords.Add(uint64(cp.page.Count()))
	cp.stBytes.Add(uint64(len(page)))
	return nil
}

// chunkTxn is the checkpointer's reusable chunk transaction: one
// instance, resubmitted for every chunk (the checkpointer waits for each
// completion before reusing it, so the engine never sees it twice
// concurrently). Free stays nil — engines must not recycle it.
type chunkTxn struct {
	txn.Txn
	cp   *Checkpointer
	tid  int
	keys []uint64
}

// logic reads the chunk's keys into the page builder. It restarts from a
// clean page on every (re)execution, making engine aborts and give-up
// resubmissions idempotent. Values are copied into the builder while the
// engine guarantees their consistency (record lock or snapshot), never
// referenced afterwards.
func (t *chunkTxn) logic(ctx txn.Ctx) error {
	b := &t.cp.page
	b.Reset(t.tid)
	for _, k := range t.keys {
		rec, err := ctx.Read(t.tid, k)
		if err != nil {
			return err
		}
		b.Add(k, rec)
	}
	return nil
}

// reset prepares the chunk transaction for (re)submission: fresh engine
// scratch state, and — for the locked path — a declared Read op per key
// so planned-access engines can acquire exactly the chunk's records.
func (t *chunkTxn) reset(tid int, keys []uint64, snapshot bool) {
	t.tid, t.keys = tid, keys
	t.ID = 0
	t.Restarts = 0
	t.ReadOnly = snapshot
	t.Partitions = t.Partitions[:0]
	t.Ops = t.Ops[:0]
	if !snapshot {
		for _, k := range keys {
			t.Ops = append(t.Ops, txn.Op{Table: tid, Key: k, Mode: txn.Read})
		}
	}
	t.ResetScratch()
}

// CheckpointedSession is a Session owning a background checkpointer:
// Checkpoint forces one synchronously, CheckpointStats reports progress,
// and Close stops the checkpointer before closing the engine session.
type CheckpointedSession interface {
	Session
	Checkpoint() error
	CheckpointStats() CheckpointStats
}

// checkpointedSession wires a Checkpointer's lifecycle to a Session's.
type checkpointedSession struct {
	Session
	cp *Checkpointer
}

// Checkpoint implements CheckpointedSession.
func (s *checkpointedSession) Checkpoint() error { return s.cp.Checkpoint() }

// CheckpointStats implements CheckpointedSession.
func (s *checkpointedSession) CheckpointStats() CheckpointStats { return s.cp.Stats() }

// Close stops the checkpointer first — chunk transactions go through the
// inner session, which must still be open while they drain.
func (s *checkpointedSession) Close() metrics.Result {
	s.cp.Stop()
	return s.Session.Close()
}

// WithCheckpointer wraps ses with a running checkpointer when cfg.Store
// is set; with a nil Store it returns ses unchanged. This is the single
// wiring point every engine's Start calls.
func WithCheckpointer(ses Session, db *storage.DB, log *wal.Log, cfg CheckpointConfig) Session {
	if cfg.Store == nil {
		return ses
	}
	return &checkpointedSession{Session: ses, cp: StartCheckpointer(ses, db, log, cfg)}
}

// ForceCheckpoint triggers one synchronous checkpoint on a session
// wrapped by WithCheckpointer; it returns ErrCheckpointerStopped-style
// errors from the checkpointer and an error for sessions without one.
func ForceCheckpoint(ses Session) error {
	cs, ok := ses.(CheckpointedSession)
	if !ok {
		return errors.New("engine: session has no checkpointer")
	}
	return cs.Checkpoint()
}
