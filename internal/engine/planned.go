package engine

import (
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// PlannedCtx is the txn.Ctx used by the planned-access engines (ORTHRUS
// and Deadlock-free locking): every lock was acquired before Logic runs,
// so accessors only validate the access against the declared set and
// record undo images. An access outside the declared set returns
// txn.ErrEstimateMiss — the OLLP signal that the reconnaissance estimate
// was wrong and the transaction must be re-planned (paper §3.2).
//
// When Wal is set, accessors also capture the redo write set: each
// written or inserted record is noted on the appender, so the engine can
// seal a redo record at pre-commit with Wal.Commit. Abort discards the
// capture along with the undo images.
type PlannedCtx struct {
	DB   *storage.DB
	T    *txn.Txn
	Undo UndoLog
	Wal  *wal.Appender // redo capture; nil when durability is off
}

// Begin attaches the context to a transaction attempt.
func (c *PlannedCtx) Begin(t *txn.Txn) {
	c.T = t
	c.Undo.Reset()
	if c.Wal != nil {
		c.Wal.Abort() // drop any capture a panicked/failed attempt left
	}
}

// Read implements txn.Ctx.
func (c *PlannedCtx) Read(table int, key uint64) ([]byte, error) {
	if !c.T.Declared(table, key, txn.Read) {
		return nil, txn.ErrEstimateMiss
	}
	return c.DB.Table(table).Get(key), nil
}

// Write implements txn.Ctx.
func (c *PlannedCtx) Write(table int, key uint64) ([]byte, error) {
	if !c.T.Declared(table, key, txn.Write) {
		return nil, txn.ErrEstimateMiss
	}
	rec := c.DB.Table(table).Get(key)
	c.Undo.Record(rec)
	if c.Wal != nil {
		c.Wal.Note(table, key, rec)
	}
	return rec, nil
}

// Insert implements txn.Ctx. The redo note references the table's own
// copy of the value, so the caller may reuse its buffer immediately.
func (c *PlannedCtx) Insert(table int, key uint64, value []byte) error {
	if err := Insert(c.DB, table, key, value); err != nil {
		return err
	}
	if c.Wal != nil {
		c.Wal.Note(table, key, c.DB.Table(table).Get(key))
	}
	return nil
}

// Commit discards undo state. The redo capture stays: the engine seals it
// with Wal.Commit at pre-commit, while the transaction still holds its
// locks.
func (c *PlannedCtx) Commit() { c.Undo.Reset() }

// Abort rolls back in-place writes and discards the redo capture.
func (c *PlannedCtx) Abort() {
	c.Undo.Rollback()
	if c.Wal != nil {
		c.Wal.Abort()
	}
}
