package engine

import (
	"repro/internal/storage"
	"repro/internal/txn"
)

// PlannedCtx is the txn.Ctx used by the planned-access engines (ORTHRUS
// and Deadlock-free locking): every lock was acquired before Logic runs,
// so accessors only validate the access against the declared set and
// record undo images. An access outside the declared set returns
// txn.ErrEstimateMiss — the OLLP signal that the reconnaissance estimate
// was wrong and the transaction must be re-planned (paper §3.2).
type PlannedCtx struct {
	DB   *storage.DB
	T    *txn.Txn
	Undo UndoLog
}

// Begin attaches the context to a transaction attempt.
func (c *PlannedCtx) Begin(t *txn.Txn) {
	c.T = t
	c.Undo.Reset()
}

// Read implements txn.Ctx.
func (c *PlannedCtx) Read(table int, key uint64) ([]byte, error) {
	if !c.T.Declared(table, key, txn.Read) {
		return nil, txn.ErrEstimateMiss
	}
	return c.DB.Table(table).Get(key), nil
}

// Write implements txn.Ctx.
func (c *PlannedCtx) Write(table int, key uint64) ([]byte, error) {
	if !c.T.Declared(table, key, txn.Write) {
		return nil, txn.ErrEstimateMiss
	}
	rec := c.DB.Table(table).Get(key)
	c.Undo.Record(rec)
	return rec, nil
}

// Insert implements txn.Ctx.
func (c *PlannedCtx) Insert(table int, key uint64, value []byte) error {
	return Insert(c.DB, table, key, value)
}

// Commit discards undo state.
func (c *PlannedCtx) Commit() { c.Undo.Reset() }

// Abort rolls back in-place writes.
func (c *PlannedCtx) Abort() { c.Undo.Rollback() }
