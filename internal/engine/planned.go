package engine

import (
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// PlannedCtx is the txn.Ctx used by the planned-access engines (ORTHRUS
// and Deadlock-free locking): every lock was acquired before Logic runs,
// so accessors only validate the access against the declared set and
// record undo images. An access outside the declared set returns
// txn.ErrEstimateMiss — the OLLP signal that the reconnaissance estimate
// was wrong and the transaction must be re-planned (paper §3.2).
//
// Range scans follow the same discipline: Scan validates that the range
// was declared (so its covering stripe locks are held) and that every
// record the ordered storage yields was individually declared (so its
// record lock is held). A key the reconnaissance did not see — an insert
// that committed between planning and lock acquisition — surfaces as an
// estimate miss and the transaction re-plans, exactly like a stale
// secondary-index read.
//
// When Wal is set, accessors also capture the redo write set: each
// written or inserted record is noted on the appender, so the engine can
// seal a redo record at pre-commit with Wal.Commit. Abort discards the
// capture along with the undo images.
type PlannedCtx struct {
	DB    *storage.DB
	T     *txn.Txn
	Undo  UndoLog
	Wal   *wal.Appender        // redo capture; nil when durability is off
	Stats *metrics.ThreadStats // scan-row accounting; may be nil (tests)
	// Versions is VersionedView(DB): writes to versioned tables are
	// noted in VSet so the engine can install their after-images at
	// pre-commit (CommitVersions). Nil when the database has none.
	Versions []*storage.VersionedTable
	VSet     VersionSet
}

// Begin attaches the context to a transaction attempt.
func (c *PlannedCtx) Begin(t *txn.Txn) {
	c.T = t
	c.Undo.Reset()
	c.VSet.Reset()
	if c.Wal != nil {
		c.Wal.Abort() // drop any capture a panicked/failed attempt left
	}
}

// Read implements txn.Ctx.
func (c *PlannedCtx) Read(table int, key uint64) ([]byte, error) {
	if !c.T.Declared(table, key, txn.Read) {
		return nil, txn.ErrEstimateMiss
	}
	return c.DB.Table(table).Get(key), nil
}

// Write implements txn.Ctx. A missing record yields nil with nothing
// recorded — no before-image to undo, no after-image to replay.
func (c *PlannedCtx) Write(table int, key uint64) ([]byte, error) {
	if !c.T.Declared(table, key, txn.Write) {
		return nil, txn.ErrEstimateMiss
	}
	rec := c.DB.Table(table).Get(key)
	if rec == nil {
		return nil, nil
	}
	c.Undo.Record(rec)
	if c.Wal != nil {
		c.Wal.Note(table, key, rec)
	}
	c.VSet.Note(c.Versions, table, key)
	return rec, nil
}

// Insert implements txn.Ctx. On a scan-protected table the insert is
// phantom-fenced: the key's stripe lock must have been declared in Write
// mode (and is therefore held), else the plan's key estimate drifted past
// its declared stripes and the transaction must re-plan. The redo note
// references the table's own copy of the value, so the caller may reuse
// its buffer immediately.
func (c *PlannedCtx) Insert(table int, key uint64, value []byte) error {
	if c.Versions != nil && table < len(c.Versions) && c.Versions[table] != nil {
		panic("engine: in-transaction Insert on a versioned table (versioned layouts are fixed-size and load-populated)")
	}
	if c.DB.Table(table).ScanProtected() && !c.T.Declared(table, txn.StripeKey(key), txn.Write) {
		return txn.ErrEstimateMiss
	}
	if err := Insert(c.DB, table, key, value); err != nil {
		return err
	}
	if c.Wal != nil {
		c.Wal.Note(table, key, c.DB.Table(table).Get(key))
	}
	return nil
}

// Scan implements txn.Ctx. The whole range must have been declared (its
// stripe locks are then held, freezing the key population on protected
// tables) and every yielded record must be individually declared (its
// record lock is then held); either check failing is an OLLP estimate
// miss.
func (c *PlannedCtx) Scan(table int, lo, hi uint64, fn func(key uint64, rec []byte) error) error {
	if hi <= lo {
		return nil
	}
	if !c.T.DeclaredRange(table, lo, hi, txn.Read) {
		return txn.ErrEstimateMiss
	}
	var err error
	c.DB.Table(table).Scan(lo, hi, func(key uint64, rec []byte) bool {
		if !c.T.Declared(table, key, txn.Read) {
			err = txn.ErrEstimateMiss
			return false
		}
		if c.Stats != nil {
			c.Stats.Scanned++
		}
		err = fn(key, rec)
		return err == nil
	})
	return err
}

// Commit discards undo state. The redo capture stays: the engine seals it
// with Wal.Commit at pre-commit, while the transaction still holds its
// locks.
func (c *PlannedCtx) Commit() { c.Undo.Reset() }

// Abort rolls back in-place writes and discards the redo capture along
// with the noted version installs.
func (c *PlannedCtx) Abort() {
	c.Undo.Rollback()
	c.VSet.Reset()
	if c.Wal != nil {
		c.Wal.Abort()
	}
}
