// Package engine defines the interfaces every system implements (ORTHRUS,
// 2PL with each deadlock handler, Deadlock-free locking, Partitioned-
// store) plus machinery they share: the Runtime/Session service lifecycle
// and its generic load drivers, undo logging for in-place writes, and
// per-thread transaction identities.
//
// Engines expose two surfaces. Runtime/Session (runtime.go) is the
// long-lived serving lifecycle: Start the engine's threads once, Submit
// transactions from any caller, observe per-transaction completion, Drain
// and Close. Engine is the legacy one-shot benchmarking surface; its
// Run(src, duration) is implemented exactly once, by the shared
// closed-loop driver RunClosedLoop over Runtime. RunOpenLoop is the
// second driver: Poisson arrivals at a fixed rate, measuring commit
// latency under offered — not self-regulated — load.
//
// Every engine runs the same workload Sources against the same storage.DB,
// so measured differences come from concurrency control alone — the
// paper's methodology (§4: all systems are implemented "within the same
// ORTHRUS transaction management codebase").
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Engine runs a workload for a fixed duration with its configured thread
// counts and reports throughput and time-breakdown metrics.
type Engine interface {
	// Name identifies the system in harness output.
	Name() string
	// Run drives src closed-loop for roughly the given duration.
	Run(src workload.Source, duration time.Duration) metrics.Result
}

// System is the full surface every engine in the repository implements:
// the one-shot benchmark contract plus the service lifecycle.
type System interface {
	Engine
	Runtime
}

// RunWorkers starts n workers, lets them run for duration, then signals
// stop and waits for them to drain. It returns the measured elapsed time
// (from start until the last worker exits, which includes drain time for
// in-flight transactions). The closed-loop driver uses it to run its
// submitter goroutines.
func RunWorkers(n int, duration time.Duration, worker func(thread int, stop *atomic.Bool)) time.Duration {
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker(i, &stop)
		}(i)
	}
	timer := time.AfterFunc(duration, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	return time.Since(start)
}

// IDSource hands out transaction ids unique across threads without shared
// state: the thread id lives in the top 16 bits.
type IDSource struct {
	next uint64
}

// NewIDSource returns an id source for the given thread.
func NewIDSource(thread int) *IDSource {
	return &IDSource{next: uint64(thread) << 48}
}

// Next returns a fresh transaction id.
func (s *IDSource) Next() uint64 {
	s.next++
	return s.next
}

// tsEpoch anchors wait-die timestamps so the nanosecond count fits in 54
// bits (decades of uptime); shifting a raw UnixNano by 10 would overflow
// uint64 and scramble the age order wait-die depends on.
var tsEpoch = time.Now()

// Timestamp returns a wait-die timestamp: monotonic nanoseconds since
// process start with the thread id in the low bits — the software
// analogue of the paper's core-local timestamp counters (cheap,
// contention-free, totally ordered, roughly arrival-ordered across
// threads).
func Timestamp(thread int) uint64 {
	return uint64(time.Since(tsEpoch))<<10 | uint64(thread&0x3FF)
}

// UndoLog captures before-images of records mutated in place so an aborted
// transaction's writes can be rolled back. One log lives per worker
// thread and is reused across transactions; image bytes come from an
// arena whose write offset rewinds on Reset — after commit or rollback no
// image is referenced, so the same bytes serve every transaction and
// steady state performs no allocation (the old consume-only arena leaked
// its capacity and re-allocated every 64KB of images).
type UndoLog struct {
	recs [][]byte // the live record slices
	imgs [][]byte // before-images (arena-backed)
	buf  []byte   // image arena; off..len(buf) is free
	off  int
}

// Record saves rec's current contents. Call before the first mutation of
// each record.
func (u *UndoLog) Record(rec []byte) {
	n := len(rec)
	if len(u.buf)-u.off < n {
		sz := 1 << 16
		if n > sz {
			sz = n
		}
		// A transaction whose images outgrow one arena keeps the full old
		// buffer alive through imgs until Reset; that transient is the
		// price of rewinding instead of consuming.
		//orthrus:allow(noalloc) arena growth: first transaction (or an outsized one) only; the buffer is reused afterwards
		u.buf = make([]byte, sz)
		u.off = 0
	}
	img := u.buf[u.off : u.off+n : u.off+n]
	u.off += n
	copy(img, rec)
	u.recs = append(u.recs, rec)
	u.imgs = append(u.imgs, img)
}

// Rollback restores all recorded before-images in reverse order and
// resets the log. Eight-byte-aligned records are restored with word-wise
// atomic stores so the restore cannot race OLLP reconnaissance readers,
// which read individual fields atomically without locks (see
// storage.AtomicGetU64).
func (u *UndoLog) Rollback() {
	for i := len(u.recs) - 1; i >= 0; i-- {
		rec, img := u.recs[i], u.imgs[i]
		if len(rec)%8 == 0 {
			for off := 0; off < len(rec); off += 8 {
				storage.AtomicPutU64(rec, off, storage.GetU64(img, off))
			}
		} else {
			copy(rec, img)
		}
	}
	u.Reset()
}

// Reset forgets recorded images (after commit) and rewinds the arena.
func (u *UndoLog) Reset() {
	u.recs = u.recs[:0]
	u.imgs = u.imgs[:0]
	u.off = 0
}

// Len returns the number of recorded images.
func (u *UndoLog) Len() int { return len(u.recs) }

// Insert applies an insert through to storage. Inserts are not undone on
// abort: in this reproduction (as in the paper's prototype) aborted
// transactions are always retried until commit, and the TPC-C insert keys
// are derived from counters read under locks, so a retried transaction
// simply overwrites its earlier insert.
func Insert(db *storage.DB, table int, key uint64, value []byte) error {
	return db.Table(table).Insert(key, value)
}

// MaterializeRanges expands a transaction's declared ranges into the
// stripe (gap) lock Ops that protect them, appending to t.Ops. Planned
// engines call it before SortOps on every (re)plan: scan ranges add
// stripe locks in the range's mode (Read blocks inserts into the scanned
// interval), insert ranges add Write stripe locks (fencing the keys the
// plan expects to create against concurrent scans). Only scan-protected
// tables take stripe locks — fixed tables cannot grow phantoms. The
// append may duplicate stripes across overlapping ranges or repeated
// calls; SortOps dedupes, widening Read to Write where both appear.
func MaterializeRanges(db *storage.DB, t *txn.Txn) {
	for _, r := range t.Ranges {
		if r.Empty() || !db.Table(r.Table).ScanProtected() {
			continue
		}
		first, last := txn.StripeSpan(r.Lo, r.Hi)
		for s := first; s <= last; s++ {
			t.Ops = append(t.Ops, txn.Op{Table: r.Table, Key: s, Mode: r.Mode})
		}
	}
}
