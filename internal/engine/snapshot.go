package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// MVCC snapshot reads: the read-only fast path shared by all four
// engines. A transaction declared txn.Txn.ReadOnly takes a snapshot LSN
// from the commit frontier and resolves every record through its version
// chain (storage.VersionedTable) — zero locks, zero CC messages, no gap
// locks. The snapshot is immutable, so scans are phantom-free by
// construction and the read-only path can never block or abort a writer.
//
// The frontier is chosen so the snapshot is always a committed — and,
// with a WAL, durable — prefix:
//
//   - WAL on: the snapshot is wal.Log.DurableLSN(), the group-commit
//     acknowledgment frontier. Writers install versions inside
//     Appender.CommitWith, under the appender mutex, before the record
//     can be collected by the flusher — so the durable frontier cannot
//     reach an LSN whose versions are not yet installed. A snapshot
//     reader therefore sees only acked writes, preserving PR 4's
//     committed-prefix guarantee, and skips the WAL entirely (everything
//     it observed is already durable, so it acknowledges inline).
//
//   - WAL off: the snapshot comes from the engine's CommitClock, whose
//     frontier advances past a stamp only after that transaction's
//     versions are fully installed (publish-after-install below).

// CommitClock stamps versioned commits when no WAL is configured and
// tracks the fully-installed frontier. Reserve hands out a dense stamp
// sequence; each committer installs its versions and then Publishes its
// stamp; Frontier returns the largest S such that every stamp ≤ S has
// been published. A reader snapshotting at Frontier() can never observe
// a half-applied transaction: all writes of every stamp it covers are
// installed, and (because writers install before releasing their locks,
// and lock conflicts order dependent commits) every transaction it
// depends on has a smaller stamp.
type CommitClock struct {
	next     atomic.Uint64
	frontier atomic.Uint64
	// slots is a ring of published stamps: slot s%N holds s once s is
	// published. The ring is far larger than any engine's in-flight
	// commit window (installs are synchronous on worker threads), and
	// Reserve guards the wrap explicitly.
	slots [clockSlots]atomic.Uint64
}

const clockSlots = 1 << 14

// Reserve assigns the next commit stamp.
func (c *CommitClock) Reserve() uint64 {
	s := c.next.Add(1)
	for s-c.frontier.Load() >= clockSlots {
		// Unreachable in practice (would need 16k commits between a
		// worker's Reserve and Publish); spin rather than corrupt the ring.
	}
	return s
}

// Publish marks stamp s fully installed and advances the frontier over
// the contiguous published prefix.
func (c *CommitClock) Publish(s uint64) {
	c.slots[s&(clockSlots-1)].Store(s)
	for {
		f := c.frontier.Load()
		if c.slots[(f+1)&(clockSlots-1)].Load() != f+1 {
			return
		}
		c.frontier.CompareAndSwap(f, f+1)
	}
}

// Frontier returns the fully-installed commit stamp frontier.
func (c *CommitClock) Frontier() uint64 { return c.frontier.Load() }

// Last returns the highest stamp reserved so far (the clock's tail, used
// for staleness accounting).
func (c *CommitClock) Last() uint64 { return c.next.Load() }

// SnapshotConfig tunes the snapshot tracker. The zero value is ready to
// use.
type SnapshotConfig struct {
	// PruneEvery recomputes the version-chain watermark (the oldest
	// active snapshot) once per this many snapshot begins and pushes it
	// to every versioned table. 0 means the default (64); negative
	// panics.
	PruneEvery int
}

const defaultPruneEvery = 64

// Validate panics on a negative PruneEvery (zero means the default).
func (c SnapshotConfig) Validate() {
	if c.PruneEvery < 0 {
		panic(fmt.Sprintf("engine: SnapshotConfig.PruneEvery %d is negative", c.PruneEvery))
	}
}

// snapSlot is one worker's active-snapshot announcement, padded so
// concurrent Begin/End on different workers never false-share.
type snapSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// snapIdle marks a worker with no snapshot in flight.
const snapIdle = ^uint64(0)

// Snapshots is the per-session snapshot tracker: it hands out snapshot
// LSNs, tracks which are active (one per worker), and periodically
// computes the watermark — the oldest LSN any active or future snapshot
// can need — pushing it to every versioned table as the prune floor.
//
// Registration is announce-then-verify: Begin stores the candidate
// snapshot in the worker's slot and then checks the tracker's barrier.
// The pruner publishes its candidate watermark to the barrier between
// two walks of the slots and takes the min of both walks; under the
// total order of the atomics, a registering reader is either seen by the
// second walk (so the watermark stays ≤ its snapshot) or sees the
// barrier and retries with a fresher frontier. Either way no prune ever
// cuts history a registered snapshot still needs, which is exactly the
// invariant storage.VersionedTable.ReadVersion panics on.
type Snapshots struct {
	frontier func() uint64 // snapshot source: durable WAL frontier or CommitClock frontier
	tail     func() uint64 // newest assigned LSN/stamp, for staleness accounting
	tables   []*storage.VersionedTable
	byID     []*storage.VersionedTable // table id → versioned table, nil when unversioned
	slots    []snapSlot
	barrier  atomic.Uint64
	begins   atomic.Uint64
	every    uint64
	pruneMu  sync.Mutex
}

// VersionedView returns db's versioned tables indexed by table id (nil
// entries for unversioned tables), or nil when the database has none.
// Engines capture it at Start to note writes for version installation.
func VersionedView(db *storage.DB) []*storage.VersionedTable {
	view := make([]*storage.VersionedTable, db.NumTables())
	any := false
	for i := range view {
		if vt, ok := db.Table(i).(*storage.VersionedTable); ok {
			view[i] = vt
			any = true
		}
	}
	if !any {
		return nil
	}
	return view
}

// NewSnapshots builds the tracker for a session with the given worker
// count. It validates cfg even when it returns nil — which it does when
// db has no versioned tables (the engine then has no snapshot path and
// ReadOnly transactions fall back to its locking path).
func NewSnapshots(db *storage.DB, log *wal.Log, clock *CommitClock, workers int, cfg SnapshotConfig) *Snapshots {
	cfg.Validate()
	byID := VersionedView(db)
	if byID == nil {
		return nil
	}
	every := uint64(cfg.PruneEvery)
	if every == 0 {
		every = defaultPruneEvery
	}
	s := &Snapshots{byID: byID, slots: make([]snapSlot, workers), every: every}
	for _, vt := range byID {
		if vt != nil {
			s.tables = append(s.tables, vt)
		}
	}
	if log.Enabled() {
		s.frontier, s.tail = log.DurableLSN, log.LastLSN
	} else {
		s.frontier, s.tail = clock.Frontier, clock.Last
	}
	for i := range s.slots {
		s.slots[i].v.Store(snapIdle)
	}
	return s
}

// Begin registers a snapshot for worker and returns its LSN. At most one
// snapshot per worker may be active; End must follow.
func (s *Snapshots) Begin(worker int) uint64 {
	slot := &s.slots[worker].v
	var f uint64
	for {
		f = s.frontier()
		slot.Store(f)
		if s.barrier.Load() <= f {
			break
		}
		// A concurrent prune may already have cut below f; retry with a
		// fresher frontier (monotonic, so this terminates).
	}
	if s.begins.Add(1)%s.every == 0 {
		s.prune()
	}
	return f
}

// End releases worker's active snapshot.
func (s *Snapshots) End(worker int) { s.slots[worker].v.Store(snapIdle) }

// prune recomputes the watermark and pushes it to every versioned table.
// Serialized by pruneMu; concurrent callers skip rather than queue.
func (s *Snapshots) prune() {
	if !s.pruneMu.TryLock() {
		return
	}
	defer s.pruneMu.Unlock()
	min1 := s.frontier()
	for i := range s.slots {
		if v := s.slots[i].v.Load(); v < min1 {
			min1 = v
		}
	}
	// Announce the candidate, then re-walk: a reader registering between
	// the walks either shows up in the second walk (min2 ≤ its snapshot)
	// or observes the barrier and retries in Begin.
	s.barrier.Store(min1)
	w := min1
	for i := range s.slots {
		if v := s.slots[i].v.Load(); v < w {
			w = v
		}
	}
	for _, vt := range s.tables {
		vt.SetWatermark(w)
	}
}

// Exec runs one ReadOnly transaction at a stable snapshot on worker's
// slot, accounting it in stats. Snapshot reads cannot conflict, so a
// Logic error is a bug in the transaction body, not an abort — it
// panics.
func (s *Snapshots) Exec(worker int, t *txn.Txn, ctx *SnapshotCtx, stats *metrics.ThreadStats) {
	snap := s.Begin(worker)
	ctx.snaps, ctx.stats, ctx.snap = s, stats, snap
	stats.SnapTxns++
	stats.SnapStaleLSN += s.tail() - snap
	err := t.Logic(ctx)
	s.End(worker)
	if err != nil {
		panic(fmt.Sprintf("engine: read-only snapshot transaction failed: %v", err))
	}
	stats.Committed++
}

// SnapshotCtx implements txn.Ctx against an immutable snapshot. Reads
// and scans resolve through version chains; writes panic — the caller
// declared the transaction ReadOnly.
type SnapshotCtx struct {
	snaps *Snapshots
	stats *metrics.ThreadStats
	snap  uint64
}

func (c *SnapshotCtx) table(table int) *storage.VersionedTable {
	if table < len(c.snaps.byID) {
		if vt := c.snaps.byID[table]; vt != nil {
			return vt
		}
	}
	panic(fmt.Sprintf("engine: ReadOnly transaction read unversioned table %d (declare it Layout.Versioned or drop the ReadOnly flag)", table))
}

// Read implements txn.Ctx.
func (c *SnapshotCtx) Read(table int, key uint64) ([]byte, error) {
	rec, hops := c.table(table).ReadVersion(key, c.snap)
	if rec == nil {
		return nil, fmt.Errorf("engine: snapshot read of out-of-range key %d", key)
	}
	c.stats.SnapRecords++
	c.stats.SnapHops += uint64(hops)
	return rec, nil
}

// Write implements txn.Ctx.
func (c *SnapshotCtx) Write(table int, key uint64) ([]byte, error) {
	panic("engine: ReadOnly transaction attempted a write")
}

// Insert implements txn.Ctx.
func (c *SnapshotCtx) Insert(table int, key uint64, value []byte) error {
	panic("engine: ReadOnly transaction attempted an insert")
}

// Scan implements txn.Ctx: an in-order walk of [lo, hi) at the
// snapshot. No gap locks and no reconnaissance — versioned tables are
// fixed layouts, and the snapshot is immutable, so the scan is
// phantom-free by construction.
func (c *SnapshotCtx) Scan(table int, lo, hi uint64, fn func(key uint64, rec []byte) error) error {
	vt := c.table(table)
	var err error
	rows := uint64(0)
	hops := vt.ScanVersions(lo, hi, c.snap, func(key uint64, rec []byte) bool {
		rows++
		err = fn(key, rec)
		return err == nil
	})
	c.stats.Scanned += rows
	c.stats.SnapRecords += rows
	c.stats.SnapHops += uint64(hops)
	return err
}

// VersionSet records which versioned records a transaction wrote, so the
// engine can install their after-images at pre-commit. Deduplicated the
// same way wal.Appender.Note is: linear scan over the (short) set.
type VersionSet struct {
	writes []versionWrite
}

type versionWrite struct {
	vt  *storage.VersionedTable
	key uint64
}

// Note records a write to vt's key. view is the engine's VersionedView
// slice (nil-safe); unversioned tables are ignored.
func (v *VersionSet) Note(view []*storage.VersionedTable, table int, key uint64) {
	if view == nil || table >= len(view) || view[table] == nil {
		return
	}
	vt := view[table]
	for _, w := range v.writes {
		if w.vt == vt && w.key == key {
			return
		}
	}
	v.writes = append(v.writes, versionWrite{vt: vt, key: key})
}

// Len returns the number of distinct versioned records written.
func (v *VersionSet) Len() int { return len(v.writes) }

// Install publishes every noted record's current bytes as the committed
// image for lsn. Caller holds the transaction's locks.
func (v *VersionSet) Install(lsn uint64) {
	for _, w := range v.writes {
		w.vt.InstallVersion(w.key, lsn)
	}
}

// Reset clears the set (begin and abort paths).
func (v *VersionSet) Reset() { v.writes = v.writes[:0] }

// CommitVersions stamps and installs a transaction's versioned
// after-images at pre-commit, while the caller still holds its locks,
// then hands the commit to the WAL (ack runs when durable). With an
// appender, the stamp is the WAL LSN and installation happens inside
// CommitWith (see the package comment for why that orders against the
// durable frontier); without one, the stamp comes from clock, whose
// frontier advances only after installation completes. With neither
// versions nor a WAL it is a no-op. ack is ignored when a is nil.
func CommitVersions(a *wal.Appender, clock *CommitClock, vs *VersionSet, stats *metrics.ThreadStats, ack func()) {
	n := vs.Len()
	if a != nil {
		if n > 0 {
			a.CommitWith(vs.Install, ack)
			vs.Reset()
		} else {
			a.Commit(ack)
		}
		stats.Installed += uint64(n)
		return
	}
	if n > 0 {
		lsn := clock.Reserve()
		vs.Install(lsn)
		clock.Publish(lsn)
		vs.Reset()
		stats.Installed += uint64(n)
	}
}
