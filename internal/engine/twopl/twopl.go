// Package twopl implements the conventional architecture the paper
// critiques (§2): every worker thread interleaves transaction logic with
// concurrency control, acquiring locks from the shared lock table at the
// moment each record is first touched ("dynamic lock acquisition"), with
// deadlocks handled by a pluggable policy (wait-die, wait-for graph,
// Dreadlocks). Aborted transactions roll back their in-place writes and
// retry with the same wait-die timestamp, so old transactions eventually
// win (no starvation).
package twopl

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// DefaultBuckets is the default lock-table bucket count.
const DefaultBuckets = 1 << 16

// Config configures a 2PL engine.
type Config struct {
	DB      *storage.DB
	Handler lock.Handler
	Threads int
	// Buckets overrides the lock-table bucket count (default 1<<16).
	Buckets int
	// MaxRetries bounds per-transaction retries; <=0 means retry until
	// commit (the paper's behaviour — throughput counts commits only).
	MaxRetries int
	// Wal, when enabled, makes commit acknowledgment durable: workers
	// append a redo record at pre-commit and the completion callback
	// fires from the group-commit flusher. Nil or Off = the paper's
	// instant acknowledgment.
	Wal *wal.Log
	// Snapshot tunes the MVCC snapshot-read path, active when DB has
	// versioned tables: ReadOnly transactions then bypass the lock table
	// entirely and read at the commit frontier.
	Snapshot engine.SnapshotConfig
	// Checkpoint, when its Store is set, runs a background fuzzy
	// checkpointer over the session (requires an enabled Wal); see
	// engine.CheckpointConfig.
	Checkpoint engine.CheckpointConfig
}

// Engine is a conventional dynamic-2PL execution engine.
type Engine struct {
	cfg   Config
	table *lock.Table
	inUse engine.InUseGuard
	clock engine.CommitClock // stamps versioned commits when Wal is off
}

// Validate panics on nonsensical knobs. Zero values that mean "use the
// default" pass; New fills them afterwards.
func (c Config) Validate() {
	if c.Threads <= 0 {
		panic("twopl: Threads must be positive")
	}
	if c.Buckets < 0 {
		panic(fmt.Sprintf("twopl: Buckets must not be negative (got %d; 0 means default)", c.Buckets))
	}
	_ = c.MaxRetries // every value is legal: <=0 means retry until commit
	c.Snapshot.Validate()
	c.Checkpoint.Validate()
}

// New builds the engine and its shared lock table.
func New(cfg Config) *Engine {
	cfg.Validate()
	buckets := cfg.Buckets
	if buckets == 0 {
		buckets = DefaultBuckets
	}
	return &Engine{cfg: cfg, table: lock.NewTable(buckets, cfg.Handler)}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("%s(%dt)", e.cfg.Handler.Name(), e.cfg.Threads)
}

// Table exposes the lock table (tests).
func (e *Engine) Table() *lock.Table { return e.table }

// Run implements engine.Engine via the shared closed-loop driver.
func (e *Engine) Run(src workload.Source, duration time.Duration) metrics.Result {
	return engine.RunClosedLoop(e, src, duration)
}

// Start implements engine.Runtime.
func (e *Engine) Start() engine.Session {
	snaps := engine.NewSnapshots(e.cfg.DB, e.cfg.Wal, &e.clock, e.cfg.Threads, e.cfg.Snapshot)
	ses := engine.NewWorkerSession(e.Name(), e.cfg.Threads, e.Clients(), &e.inUse, e.cfg.Wal,
		func(thread int, stats *metrics.ThreadStats) func(*txn.Txn, *engine.Completion) {
			ids := engine.NewIDSource(thread)
			ctx := &execCtx{eng: e, thread: thread, stats: stats,
				vts: engine.VersionedView(e.cfg.DB)}
			if e.cfg.Wal.Enabled() {
				ctx.wal = e.cfg.Wal.NewAppender(stats)
			}
			var sctx engine.SnapshotCtx
			return func(t *txn.Txn, comp *engine.Completion) {
				t.ID = ids.Next()
				if t.ReadOnly && snaps != nil {
					// Snapshot fast path: no lock table, no wait-die
					// timestamp, no WAL round-trip (reads are durable).
					start := time.Now()
					snaps.Exec(thread, t, &sctx, stats)
					stats.AddExec(time.Since(start))
					comp.Finish(true)
					return
				}
				e.execute(ctx, t, stats, comp)
			}
		})
	return engine.WithCheckpointer(ses, e.cfg.DB, e.cfg.Wal, e.cfg.Checkpoint)
}

// Clients implements engine.Runtime: two submitters per worker keep the
// queue stocked while each worker runs a transaction.
func (e *Engine) Clients() int { return 2 * e.cfg.Threads }

// execute runs one transaction to commit (or until MaxRetries gives up),
// discharging comp exactly once — inline at pre-commit without a WAL,
// from the group-commit flusher with one. The wait-die timestamp is
// fixed across retries so old transactions eventually win (no
// starvation).
func (e *Engine) execute(ctx *execCtx, t *txn.Txn, stats *metrics.ThreadStats, comp *engine.Completion) {
	t.TS = engine.Timestamp(ctx.thread)
	retries := 0
	for {
		start := time.Now()
		ctx.begin(t)
		err := t.Logic(ctx)
		if err == nil {
			ctx.commit(comp)
			total := time.Since(start)
			stats.Committed++
			stats.AddWait(ctx.waited)
			stats.AddLock(ctx.locked)
			stats.AddExec(total - ctx.waited - ctx.locked)
			if ctx.wal == nil {
				comp.Finish(true)
			}
			return
		}
		ctx.abort()
		total := time.Since(start)
		stats.Aborted++
		stats.AddWait(ctx.waited)
		stats.AddLock(ctx.locked)
		stats.AddExec(total - ctx.waited - ctx.locked)
		if !errors.Is(err, txn.ErrAborted) {
			panic(fmt.Sprintf("twopl: transaction logic failed: %v", err))
		}
		retries++
		if e.cfg.MaxRetries > 0 && retries >= e.cfg.MaxRetries {
			comp.Finish(false)
			return
		}
		// Yield before retrying so the conflicting holder can finish;
		// retry storms otherwise starve holders when logical threads
		// outnumber hardware threads.
		runtime.Gosched()
	}
}

// execCtx is the txn.Ctx for dynamic 2PL: locks are acquired on first
// touch; an undo log backs out in-place writes on abort; a non-nil wal
// appender captures the redo write set for durable commit.
type execCtx struct {
	eng    *Engine
	thread int
	wal    *wal.Appender
	stats  *metrics.ThreadStats

	t      *txn.Txn
	held   []*lock.Request
	undo   engine.UndoLog
	vts    []*storage.VersionedTable // VersionedView(DB); nil without versioned tables
	vset   engine.VersionSet
	fl     lock.Freelist
	waited time.Duration // lock-wait time this attempt
	locked time.Duration // lock-manager work time this attempt
}

func (c *execCtx) begin(t *txn.Txn) {
	c.t = t
	c.held = c.held[:0]
	c.undo.Reset()
	c.vset.Reset()
	c.waited, c.locked = 0, 0
}

// heldMode returns the existing request for (table,key), if any.
func (c *execCtx) heldReq(table int, key uint64) *lock.Request {
	for _, r := range c.held {
		if r.Table == table && r.Key == key {
			return r
		}
	}
	return nil
}

func (c *execCtx) acquire(table int, key uint64, mode txn.Mode) ([]byte, error) {
	if r := c.heldReq(table, key); r != nil {
		if r.Mode == txn.Read && mode == txn.Write {
			// Lock upgrades are deadlock bait and unnecessary for the
			// paper's workloads: writers must declare Write on first touch.
			return nil, fmt.Errorf("twopl: unsupported read→write upgrade on t%d/%d", table, key)
		}
		return c.eng.cfg.DB.Table(table).Get(key), nil
	}
	start := time.Now()
	r := c.fl.Get(c.t.ID, c.t.TS, c.thread)
	waited, err := c.eng.table.Acquire(r, table, key, mode)
	c.waited += waited
	c.locked += time.Since(start) - waited
	if err != nil {
		c.fl.Put(r)
		return nil, err
	}
	c.held = append(c.held, r)
	return c.eng.cfg.DB.Table(table).Get(key), nil
}

// Read implements txn.Ctx.
func (c *execCtx) Read(table int, key uint64) ([]byte, error) {
	return c.acquire(table, key, txn.Read)
}

// Write implements txn.Ctx. A missing record (possible only on growable
// tables, e.g. Delivery write-locking an order a raced NewOrder has not
// published) yields rec nil with the lock held; nothing is noted for
// redo — there is no after-image to replay.
func (c *execCtx) Write(table int, key uint64) ([]byte, error) {
	rec, err := c.acquire(table, key, txn.Write)
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, nil
	}
	c.undo.Record(rec)
	if c.wal != nil {
		c.wal.Note(table, key, rec)
	}
	c.vset.Note(c.vts, table, key)
	return rec, nil
}

// Insert implements txn.Ctx. On a scan-protected table the key's stripe
// lock is acquired in Write mode first — the dynamic-2PL form of next-key
// locking: the insert conflicts with any concurrent scan whose range
// covers the key, and the stripe is held to commit like every other lock.
func (c *execCtx) Insert(table int, key uint64, value []byte) error {
	if c.vts != nil && table < len(c.vts) && c.vts[table] != nil {
		panic("twopl: in-transaction Insert on a versioned table (versioned layouts are fixed-size and load-populated)")
	}
	if c.eng.cfg.DB.Table(table).ScanProtected() {
		if _, err := c.acquire(table, txn.StripeKey(key), txn.Write); err != nil {
			return err
		}
	}
	if err := engine.Insert(c.eng.cfg.DB, table, key, value); err != nil {
		return err
	}
	if c.wal != nil {
		c.wal.Note(table, key, c.eng.cfg.DB.Table(table).Get(key))
	}
	return nil
}

// Scan implements txn.Ctx: the dynamic-2PL scan locks lazily, like every
// other access. On a scan-protected table it first read-locks each stripe
// covering [lo, hi) — freezing the range's key population against
// inserts — then walks the ordered storage, read-locking each record
// before yielding it. Records scanned in Read mode cannot later be
// written by the same transaction (the upgrade guard in acquire).
func (c *execCtx) Scan(table int, lo, hi uint64, fn func(key uint64, rec []byte) error) error {
	if hi <= lo {
		return nil
	}
	tbl := c.eng.cfg.DB.Table(table)
	if tbl.ScanProtected() {
		first, last := txn.StripeSpan(lo, hi)
		for s := first; s <= last; s++ {
			if _, err := c.acquire(table, s, txn.Read); err != nil {
				return err
			}
		}
	}
	var err error
	tbl.Scan(lo, hi, func(key uint64, rec []byte) bool {
		// The stripe-then-record inversion below is deliberate: dynamic 2PL
		// acquires lazily in touch order, so this is the same wait-for edge
		// any lazy acquisition can create, and the configured deadlock
		// handler (wait-die / no-wait / detection) resolves it.
		//orthrus:allow(lockorder) lazy 2PL acquires in touch order; the deadlock handler resolves inversions
		if _, err = c.acquire(table, key, txn.Read); err != nil {
			return false
		}
		c.stats.Scanned++
		err = fn(key, rec)
		return err == nil
	})
	return err
}

func (c *execCtx) releaseAll() {
	start := time.Now()
	for i := len(c.held) - 1; i >= 0; i-- {
		c.eng.table.Release(c.held[i])
		c.fl.Put(c.held[i])
	}
	c.held = c.held[:0]
	c.locked += time.Since(start)
}

// commit seals the redo record — and installs versioned after-images —
// before releasing a single lock: the LSN assigned inside Wal.Commit
// must order before any dependent transaction's, and dependents can only
// run after the release below. Early lock release is safe — the
// redo-only log never exposes uncommitted data (writes are already
// applied in place), and snapshot readers resolve through version
// chains, never the live record bytes.
func (c *execCtx) commit(comp *engine.Completion) {
	c.undo.Reset()
	var ack func()
	if c.wal != nil {
		// Ownership transfer: once the flusher holds the ack it may fire —
		// and recycle t — any time; everything after this line (releaseAll)
		// iterates worker-owned c.held, never t's slices.
		ack = comp.Defer()
	}
	engine.CommitVersions(c.wal, &c.eng.clock, &c.vset, c.stats, ack)
	c.releaseAll()
}

func (c *execCtx) abort() {
	c.undo.Rollback()
	c.vset.Reset()
	if c.wal != nil {
		c.wal.Abort()
	}
	c.releaseAll()
}
