package twopl

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/deadlock"
	"repro/internal/storage"
	"repro/internal/txn"
)

type oneShotSource struct{ build func() *txn.Txn }

func (s oneShotSource) Next(int, *rand.Rand) *txn.Txn { return s.build() }

// Reacquiring a key already held in a sufficient mode reuses the request;
// a read→write upgrade is refused with a diagnostic (documented
// limitation: writers must declare Write on first touch).
func TestHeldLockReuseAndUpgradeGuard(t *testing.T) {
	db, tbl := newDB(8)
	eng := New(Config{DB: db, Handler: deadlock.WaitDie{}, Threads: 1})
	ctx := &execCtx{eng: eng, thread: 0}
	tx := &txn.Txn{ID: 1, TS: 1}
	ctx.begin(tx)

	if _, err := ctx.Write(tbl, 3); err != nil {
		t.Fatal(err)
	}
	// Write-then-read and write-then-write reuse the held X lock.
	if _, err := ctx.Read(tbl, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Write(tbl, 3); err != nil {
		t.Fatal(err)
	}
	if len(ctx.held) != 1 {
		t.Fatalf("held %d locks, want 1", len(ctx.held))
	}
	// Read-then-write upgrade is refused.
	if _, err := ctx.Read(tbl, 5); err != nil {
		t.Fatal(err)
	}
	_, err := ctx.Write(tbl, 5)
	if err == nil || !strings.Contains(err.Error(), "upgrade") {
		t.Fatalf("upgrade err = %v", err)
	}
	ctx.commit(nil) // comp is only consulted when a WAL is attached
}

// Undo restores exactly the pre-transaction image after a mid-logic abort.
func TestAbortRollsBackPartialWrites(t *testing.T) {
	db, tbl := newDB(8)
	storage.PutU64(db.Table(tbl).Get(2), 0, 77)
	eng := New(Config{DB: db, Handler: deadlock.WaitDie{}, Threads: 1, MaxRetries: 1})
	src := oneShotSource{build: func() *txn.Txn {
		tx := &txn.Txn{}
		tx.Logic = func(ctx txn.Ctx) error {
			rec, err := ctx.Write(tbl, 2)
			if err != nil {
				return err
			}
			storage.PutU64(rec, 0, 999)
			return txn.ErrAborted // simulate a handler victimization mid-logic
		}
		return tx
	}}
	res := eng.Run(src, 30*time.Millisecond)
	if res.Totals.Aborted == 0 {
		t.Fatal("no aborts recorded")
	}
	if got := storage.GetU64(db.Table(tbl).Get(2), 0); got != 77 {
		t.Fatalf("record = %d after aborts, want 77", got)
	}
}
