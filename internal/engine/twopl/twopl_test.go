package twopl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/deadlock"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func newDB(n uint64) (*storage.DB, int) {
	db := storage.NewDB()
	id := db.Create(storage.Layout{Name: "main", NumRecords: n, RecordSize: 64})
	return db, id
}

func sumTable(db *storage.DB, tbl int, n uint64) uint64 {
	var sum uint64
	for k := uint64(0); k < n; k++ {
		sum += storage.GetU64(db.Table(tbl).Get(k), 0)
	}
	return sum
}

func handlers(threads int) []lock.Handler {
	return []lock.Handler{
		deadlock.WaitDie{},
		deadlock.NewWaitForGraph(threads),
		deadlock.NewDreadlocks(threads),
	}
}

// Conservation under heavy conflict: the transfer workload's total balance
// is invariant iff isolation holds and aborts roll back completely.
func TestTransferConservationAllHandlers(t *testing.T) {
	const threads, records = 4, 8
	for _, h := range handlers(threads) {
		h := h
		t.Run(h.Name(), func(t *testing.T) {
			db, tbl := newDB(records)
			for k := uint64(0); k < records; k++ {
				storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
			}
			eng := New(Config{DB: db, Handler: h, Threads: threads})
			src := &workload.Transfer{Table: tbl, NumRecords: records}
			res := eng.Run(src, 150*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			if got := sumTable(db, tbl, records); got != records*1000 {
				t.Fatalf("sum = %d, want %d (isolation violated)", got, records*1000)
			}
		})
	}
}

// RMW on a tiny hot set: every committed increment must be present.
func TestRMWIncrementsAccountedAllHandlers(t *testing.T) {
	const threads, records = 4, 64
	for _, h := range handlers(threads) {
		h := h
		t.Run(h.Name(), func(t *testing.T) {
			db, tbl := newDB(records)
			eng := New(Config{DB: db, Handler: h, Threads: threads})
			src := &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 4, HotRecords: 8, HotOps: 2}
			if err := src.Validate(); err != nil {
				t.Fatal(err)
			}
			res := eng.Run(src, 150*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			// Each committed txn performs exactly 4 increments.
			want := res.Totals.Committed * 4
			if got := sumTable(db, tbl, records); got != want {
				t.Fatalf("increments = %d, want %d (commits=%d aborts=%d)",
					got, want, res.Totals.Committed, res.Totals.Aborted)
			}
		})
	}
}

func TestReadOnlyNeverAborts(t *testing.T) {
	const threads = 4
	db, tbl := newDB(1024)
	eng := New(Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads})
	src := &workload.YCSB{Table: tbl, NumRecords: 1024, OpsPerTxn: 10, ReadOnly: true, HotRecords: 16, HotOps: 2}
	res := eng.Run(src, 100*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Aborted != 0 {
		t.Fatalf("read-only workload aborted %d txns", res.Totals.Aborted)
	}
}

func TestTimeBreakdownAccounted(t *testing.T) {
	db, tbl := newDB(64)
	eng := New(Config{DB: db, Handler: deadlock.WaitDie{}, Threads: 4})
	src := &workload.YCSB{Table: tbl, NumRecords: 64, OpsPerTxn: 4, HotRecords: 8, HotOps: 2}
	res := eng.Run(src, 100*time.Millisecond)
	tot := res.Totals
	if tot.Exec <= 0 || tot.Lock <= 0 {
		t.Fatalf("breakdown missing components: %+v", tot)
	}
	e, l, w, lg := tot.Breakdown()
	if e+l+w+lg < 99.9 || e+l+w+lg > 100.1 {
		t.Fatalf("breakdown sums to %v", e+l+w+lg)
	}
	if lg != 0 {
		t.Fatalf("log share %v without a WAL", lg)
	}
}

func TestEngineName(t *testing.T) {
	db, _ := newDB(8)
	eng := New(Config{DB: db, Handler: deadlock.WaitDie{}, Threads: 3})
	if !strings.Contains(eng.Name(), "waitdie") || !strings.Contains(eng.Name(), "3t") {
		t.Fatalf("Name = %q", eng.Name())
	}
}

func TestMaxRetriesBoundsWork(t *testing.T) {
	// With MaxRetries=1 a permanently-conflicting workload still returns.
	const threads, records = 4, 2
	db, tbl := newDB(records)
	eng := New(Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads, MaxRetries: 1})
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, 50*time.Millisecond)
	_ = res // termination is the assertion
}

var _ = metrics.Result{} // referenced in doc comments

// The extension handlers (no-wait, wound-wait) preserve isolation under
// the same conflict-heavy workloads as the paper's three.
func TestTransferConservationExtensionHandlers(t *testing.T) {
	const threads, records = 4, 8
	for _, h := range []lock.Handler{deadlock.NoWait{}, deadlock.NewWoundWait(threads)} {
		h := h
		t.Run(h.Name(), func(t *testing.T) {
			db, tbl := newDB(records)
			for k := uint64(0); k < records; k++ {
				storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
			}
			eng := New(Config{DB: db, Handler: h, Threads: threads})
			src := &workload.Transfer{Table: tbl, NumRecords: records}
			res := eng.Run(src, 200*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			if got := sumTable(db, tbl, records); got != records*1000 {
				t.Fatalf("sum = %d, want %d", got, records*1000)
			}
		})
	}
}

// A no-wait engine running against an externally held lock must abort and
// retry (never block) until the lock clears, then commit. Deterministic:
// the conflict is guaranteed, not scheduler-dependent.
func TestNoWaitAbortsUnderForcedConflict(t *testing.T) {
	const records = 4
	db, tbl := newDB(records)
	eng := New(Config{DB: db, Handler: deadlock.NoWait{}, Threads: 2})

	// Hold an exclusive lock on key 0 in the engine's own table for the
	// first half of the run; every transfer touching key 0 must die.
	var fl lock.Freelist
	blocker := fl.Get(1<<60, 1, 63)
	if _, err := eng.Table().Acquire(blocker, tbl, 0, txn.Write); err != nil {
		t.Fatal(err)
	}
	release := time.AfterFunc(60*time.Millisecond, func() { eng.Table().Release(blocker) })
	defer release.Stop()

	for k := uint64(0); k < records; k++ {
		storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
	}
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, 150*time.Millisecond)
	if res.Totals.Aborted == 0 {
		t.Fatal("no-wait never aborted against a held conflicting lock")
	}
	if res.Totals.Committed == 0 {
		t.Fatal("no commits after the blocker released")
	}
	if got := sumTable(db, tbl, records); got != records*1000 {
		t.Fatalf("sum = %d, want %d", got, records*1000)
	}
}

// The YCSB standard mixes run on the dynamic engine with shared and
// exclusive ops interleaved.
func TestStandardMixes(t *testing.T) {
	const threads, records = 4, 4096
	for _, src := range []*workload.Mixed{
		workload.YCSBA(0, records), workload.YCSBB(0, records), workload.YCSBC(0, records),
	} {
		db, tbl := newDB(records)
		src.Table = tbl
		if err := src.Validate(); err != nil {
			t.Fatal(err)
		}
		eng := New(Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads})
		res := eng.Run(src, 100*time.Millisecond)
		if res.Totals.Committed == 0 {
			t.Fatalf("ReadPct=%d: no commits", src.ReadPct)
		}
	}
}
