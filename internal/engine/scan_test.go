package engine

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/txn"
)

func scanTestDB(t *testing.T) (*storage.DB, int, int) {
	t.Helper()
	db := storage.NewDB()
	ord := db.Create(storage.Layout{Name: "ordered", NumRecords: 0, RecordSize: 8, Growable: true, Ordered: true})
	fix := db.Create(storage.Layout{Name: "fixed", NumRecords: 128, RecordSize: 8})
	for k := uint64(0); k < 100; k += 10 {
		var v [8]byte
		storage.PutU64(v[:], 0, k)
		if err := db.Table(ord).Insert(k, v[:]); err != nil {
			t.Fatal(err)
		}
	}
	return db, ord, fix
}

// MaterializeRanges expands declared ranges into stripe ops on
// scan-protected tables only, in the range's mode.
func TestMaterializeRanges(t *testing.T) {
	db, ord, fix := scanTestDB(t)
	tx := &txn.Txn{Ranges: []txn.RangeOp{
		{Table: ord, Lo: 0, Hi: 100, Mode: txn.Read},
		{Table: ord, Lo: 5, Hi: 6, Mode: txn.Write},
		{Table: fix, Lo: 0, Hi: 100, Mode: txn.Read}, // fixed: no stripes
		{Table: ord, Lo: 9, Hi: 9, Mode: txn.Write},  // empty: nothing
	}}
	MaterializeRanges(db, tx)
	first, last := txn.StripeSpan(0, 100)
	wantStripes := int(last-first) + 1
	if len(tx.Ops) != wantStripes+1 {
		t.Fatalf("ops = %v (want %d read stripes + 1 write stripe)", tx.Ops, wantStripes)
	}
	tx.SortOps()
	// The write stripe for key 5 overlaps the read range's first stripe:
	// dedupe must widen it to Write.
	if !tx.Declared(ord, txn.StripeKey(5), txn.Write) {
		t.Fatal("write stripe lost in dedupe")
	}
	if !tx.Declared(ord, txn.StripeKey(99), txn.Read) {
		t.Fatal("read stripe missing")
	}
	for _, op := range tx.Ops {
		if op.Table == fix {
			t.Fatal("fixed table got stripe ops")
		}
	}
}

// PlannedCtx.Scan enforces the OLLP discipline: the range and every
// yielded record must be declared; anything else is an estimate miss.
func TestPlannedCtxScan(t *testing.T) {
	db, ord, _ := scanTestDB(t)
	tx := &txn.Txn{Ranges: []txn.RangeOp{{Table: ord, Lo: 0, Hi: 50, Mode: txn.Read}}}
	for k := uint64(0); k < 50; k += 10 {
		tx.Ops = append(tx.Ops, txn.Op{Table: ord, Key: k, Mode: txn.Read})
	}
	MaterializeRanges(db, tx)
	tx.SortOps()
	ctx := &PlannedCtx{DB: db}
	ctx.Begin(tx)

	var got []uint64
	if err := ctx.Scan(ord, 0, 50, func(key uint64, rec []byte) error {
		if storage.GetU64(rec, 0) != key {
			t.Fatalf("payload mismatch at %d", key)
		}
		got = append(got, key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 0 || got[4] != 40 {
		t.Fatalf("scan = %v", got)
	}

	// Undeclared range: miss.
	if err := ctx.Scan(ord, 0, 60, func(uint64, []byte) error { return nil }); err != txn.ErrEstimateMiss {
		t.Fatalf("undeclared range: err = %v", err)
	}

	// A record the plan did not see (insert raced reconnaissance): miss.
	var v [8]byte
	storage.PutU64(v[:], 0, 25)
	if err := db.Table(ord).Insert(25, v[:]); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Scan(ord, 0, 50, func(uint64, []byte) error { return nil }); err != txn.ErrEstimateMiss {
		t.Fatalf("undeclared record: err = %v", err)
	}

	// fn errors propagate.
	boom := errors.New("boom")
	if err := ctx.Scan(ord, 0, 20, func(uint64, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("fn error: %v", err)
	}
}

// PlannedCtx.Insert on a scan-protected table requires the key's stripe
// declared in Write mode.
func TestPlannedCtxInsertStripeFence(t *testing.T) {
	db, ord, _ := scanTestDB(t)
	var v [8]byte

	tx := &txn.Txn{Ranges: []txn.RangeOp{{Table: ord, Lo: 200, Hi: 201, Mode: txn.Write}}}
	MaterializeRanges(db, tx)
	tx.SortOps()
	ctx := &PlannedCtx{DB: db}
	ctx.Begin(tx)
	if err := ctx.Insert(ord, 200, v[:]); err != nil {
		t.Fatalf("declared insert: %v", err)
	}
	// 201 shares 200's stripe — covered. A key in a different stripe is
	// outside the fence: estimate miss.
	far := uint64(200 + 2*txn.StripeSize)
	if err := ctx.Insert(ord, far, v[:]); err != txn.ErrEstimateMiss {
		t.Fatalf("undeclared insert: err = %v", err)
	}
	// A Read-mode range does not license inserts.
	tx2 := &txn.Txn{Ranges: []txn.RangeOp{{Table: ord, Lo: 300, Hi: 301, Mode: txn.Read}}}
	MaterializeRanges(db, tx2)
	tx2.SortOps()
	ctx.Begin(tx2)
	if err := ctx.Insert(ord, 300, v[:]); err != txn.ErrEstimateMiss {
		t.Fatalf("read-range insert: err = %v", err)
	}
}
