package engine

import (
	"runtime"
	"sync/atomic"
	"time"
)

// mpmc is a bounded multi-producer multi-consumer queue of Submissions
// (Vyukov's array-based design): every slot carries a sequence number that
// tickets exactly one producer and one consumer per lap, so an enqueue or
// dequeue is one CAS plus one release store — no mutex, no goroutine
// parking. It is the submission plane of WorkerSession, where a Go
// channel's lock and park/unpark cycle would dominate short transactions.
// The enqueue and dequeue cursors are padded 128 bytes apart (two cache
// lines, clearing the adjacent-line prefetcher) so producers CASing enq
// never invalidate the line consumers CAS deq on.
type mpmc struct {
	mask  uint64
	cells []mpmcCell
	_     [128]byte
	enq   atomic.Uint64
	_     [128]byte
	deq   atomic.Uint64
	_     [128]byte
}

type mpmcCell struct {
	seq atomic.Uint64
	sub Submission
}

// newMPMC returns a queue with capacity rounded up to a power of two.
// Capacity is clamped to at least 1: a negative value converted to uint64
// would otherwise send the doubling loop past overflow (n becomes 0 and
// never terminates).
func newMPMC(capacity int) *mpmc {
	if capacity < 1 {
		capacity = 1
	}
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	q := &mpmc{mask: n - 1, cells: make([]mpmcCell, n)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// tryEnqueue appends sub and reports whether there was room.
func (q *mpmc) tryEnqueue(sub Submission) bool {
	pos := q.enq.Load()
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				cell.sub = sub
				cell.seq.Store(pos + 1) // release: publishes sub
				return true
			}
			pos = q.enq.Load()
		case diff < 0:
			return false // full (consumer has not freed the slot)
		default:
			pos = q.enq.Load() // raced with another producer
		}
	}
}

// tryDequeue removes the oldest submission.
func (q *mpmc) tryDequeue() (Submission, bool) {
	pos := q.deq.Load()
	for {
		cell := &q.cells[pos&q.mask]
		seq := cell.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				sub := cell.sub
				cell.sub = Submission{} // drop references for GC
				cell.seq.Store(pos + q.mask + 1)
				return sub, true
			}
			pos = q.deq.Load()
		case diff < 0:
			return Submission{}, false // empty
		default:
			pos = q.deq.Load() // raced with another consumer
		}
	}
}

// IdleWaiter is the backoff an engine thread applies while polling
// without progress: pure yields while the idle period is shorter than
// spinFor — so under any sustained load the poll loops never sleep and
// measured latency stays free of wakeup delay — then brief sleeps so a
// truly idle session does not burn a core (at the price of up to one
// sleepFor of pickup delay on the first arrival after a long lull).
type IdleWaiter struct {
	idleSince time.Time
}

const (
	spinFor  = 500 * time.Microsecond
	sleepFor = 50 * time.Microsecond
)

// Wait backs off once; call it per failed poll.
//
//orthrus:coldpath idle backoff: reached only when a poll made no progress, and the sleep is the whole point — an idle session must not pin a core
func (w *IdleWaiter) Wait() {
	if w.idleSince.IsZero() {
		w.idleSince = time.Now()
		runtime.Gosched()
		return
	}
	if time.Since(w.idleSince) < spinFor {
		runtime.Gosched()
		return
	}
	time.Sleep(sleepFor)
}

// Reset marks progress, returning the waiter to the spinning regime.
func (w *IdleWaiter) Reset() {
	w.idleSince = time.Time{}
}
