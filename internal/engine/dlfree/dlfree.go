// Package dlfree implements "Deadlock free locking", the paper's strongest
// conventional baseline (§4): a shared-everything 2PL system that analyzes
// each transaction's read- and write-sets in advance and acquires all
// locks in lexicographical order before execution. Ordered acquisition
// makes deadlock impossible, so the engine carries no deadlock-handling
// machinery at all — the Figure 4 comparison against the dynamic handlers
// isolates exactly that cost.
//
// If a transaction's declared access set turns out to be wrong (possible
// only for OLLP-planned transactions such as TPC-C Payment-by-last-name),
// the access returns txn.ErrEstimateMiss, the engine rolls back, re-plans
// via the transaction's Replan hook and retries — the OLLP protocol of
// §3.2.
package dlfree

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Config configures the engine.
type Config struct {
	DB      *storage.DB
	Threads int
	// Buckets overrides the lock-table bucket count (default 1<<16).
	Buckets int
	// Split marks the "Split Deadlock-free" variant of Figures 6/7. The
	// concurrency-control behaviour is identical (shared lock table); the
	// paper's split variant partitions *indexes* for cache locality, a
	// physical effect outside this reproduction's reach, so the flag only
	// changes the reported name. See README.md "Scale and fidelity".
	Split bool
	// Wal, when enabled, makes commit acknowledgment durable (redo append
	// at pre-commit, acknowledgment from the group-commit flusher).
	Wal *wal.Log
	// Snapshot tunes the MVCC snapshot-read path, active when DB has
	// versioned tables: ReadOnly transactions then skip declared-set
	// lock acquisition entirely and read at the commit frontier.
	Snapshot engine.SnapshotConfig
	// Checkpoint, when its Store is set, runs a background fuzzy
	// checkpointer over the session (requires an enabled Wal); see
	// engine.CheckpointConfig.
	Checkpoint engine.CheckpointConfig
}

// Engine is the deadlock-free ordered-locking engine.
type Engine struct {
	cfg   Config
	table *lock.Table
	inUse engine.InUseGuard
	clock engine.CommitClock // stamps versioned commits when Wal is off
}

// Validate panics on nonsensical knobs. Zero values that mean "use the
// default" pass; New fills them afterwards.
func (c Config) Validate() {
	if c.Threads <= 0 {
		panic("dlfree: Threads must be positive")
	}
	if c.Buckets < 0 {
		panic(fmt.Sprintf("dlfree: Buckets must not be negative (got %d; 0 means default)", c.Buckets))
	}
	c.Snapshot.Validate()
	c.Checkpoint.Validate()
}

// New builds the engine.
func New(cfg Config) *Engine {
	cfg.Validate()
	buckets := cfg.Buckets
	if buckets == 0 {
		buckets = 1 << 16
	}
	return &Engine{cfg: cfg, table: lock.NewTable(buckets, deadlock.Block{})}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.cfg.Split {
		return fmt.Sprintf("split-dlfree(%dt)", e.cfg.Threads)
	}
	return fmt.Sprintf("dlfree(%dt)", e.cfg.Threads)
}

// Run implements engine.Engine via the shared closed-loop driver.
func (e *Engine) Run(src workload.Source, duration time.Duration) metrics.Result {
	return engine.RunClosedLoop(e, src, duration)
}

// Start implements engine.Runtime.
func (e *Engine) Start() engine.Session {
	snaps := engine.NewSnapshots(e.cfg.DB, e.cfg.Wal, &e.clock, e.cfg.Threads, e.cfg.Snapshot)
	ses := engine.NewWorkerSession(e.Name(), e.cfg.Threads, e.Clients(), &e.inUse, e.cfg.Wal,
		func(thread int, stats *metrics.ThreadStats) func(*txn.Txn, *engine.Completion) {
			w := &dlfreeWorker{
				eng:    e,
				thread: thread,
				snaps:  snaps,
				ids:    engine.NewIDSource(thread),
				ctx:    engine.PlannedCtx{DB: e.cfg.DB, Stats: stats, Versions: engine.VersionedView(e.cfg.DB)},
				held:   make([]*lock.Request, 0, 32),
			}
			if e.cfg.Wal.Enabled() {
				w.ctx.Wal = e.cfg.Wal.NewAppender(stats)
			}
			return w.execute
		})
	return engine.WithCheckpointer(ses, e.cfg.DB, e.cfg.Wal, e.cfg.Checkpoint)
}

// Clients implements engine.Runtime.
func (e *Engine) Clients() int { return 2 * e.cfg.Threads }

// dlfreeWorker is one worker's reusable execution state.
type dlfreeWorker struct {
	eng    *Engine
	thread int
	snaps  *engine.Snapshots
	sctx   engine.SnapshotCtx
	ids    *engine.IDSource
	ctx    engine.PlannedCtx
	fl     lock.Freelist
	held   []*lock.Request
}

// execute runs one transaction to commit, re-planning on OLLP misses,
// and discharges comp exactly once — inline, or from the WAL flusher
// when durability is on.
func (w *dlfreeWorker) execute(t *txn.Txn, comp *engine.Completion) {
	e := w.eng
	stats := comp.Stats()
	t.ID = w.ids.Next()
	if t.ReadOnly && w.snaps != nil {
		// Snapshot fast path: no declared-set acquisition at all — the
		// snapshot is immutable, so ordered locking has nothing to order.
		start := time.Now()
		w.snaps.Exec(w.thread, t, &w.sctx, stats)
		stats.AddExec(time.Since(start))
		comp.Finish(true)
		return
	}
	for {
		// Declared ranges become stripe (gap) locks, acquired in the same
		// global (table, key) order as every other lock: stripe keys carry
		// bit 63, so within a table they sort after all record keys, and
		// the total order — hence the deadlock-freedom argument — is
		// unchanged. A concurrent insert into a scanned range needs the
		// same stripe in Write mode, so phantoms are excluded for exactly
		// the duration the scan's locks are held.
		engine.MaterializeRanges(e.cfg.DB, t)
		t.SortOps()

		// Phase 1: acquire every declared lock in global key order.
		// Chained timestamps: each phase boundary is read once.
		t0 := time.Now()
		var waited time.Duration
		held := w.held[:0]
		for _, op := range t.Ops {
			r := w.fl.Get(t.ID, 0, w.thread)
			wt, err := e.table.Acquire(r, op.Table, op.Key, op.Mode)
			waited += wt
			if err != nil {
				// Block handler never aborts.
				panic(fmt.Sprintf("dlfree: unexpected acquire error: %v", err))
			}
			held = append(held, r)
		}
		t1 := time.Now()

		// Phase 2: run logic with locking settled.
		w.ctx.Begin(t)
		err := t.Logic(&w.ctx)
		t2 := time.Now()

		// Phase 3: seal the redo record (before any release — the LSN
		// must order before every dependent transaction's), then release
		// in reverse order.
		if err == nil {
			w.ctx.Commit()
			var ack func()
			if w.ctx.Wal != nil {
				// Ownership transfer: the flusher may fire the ack — and
				// recycle t — before the release loop below finishes; the
				// loop iterates worker-owned held, never t.Ops.
				ack = comp.Defer()
			}
			engine.CommitVersions(w.ctx.Wal, &e.clock, &w.ctx.VSet, stats, ack)
		} else {
			w.ctx.Abort()
		}
		for i := len(held) - 1; i >= 0; i-- {
			e.table.Release(held[i])
			w.fl.Put(held[i])
		}
		w.held = held[:0]
		t3 := time.Now()

		stats.AddWait(waited)
		stats.AddLock(t1.Sub(t0) - waited + t3.Sub(t2))
		stats.AddExec(t2.Sub(t1))

		if err == nil {
			stats.Committed++
			if w.ctx.Wal == nil {
				comp.Finish(true)
			}
			return
		}
		if !errors.Is(err, txn.ErrEstimateMiss) {
			panic(fmt.Sprintf("dlfree: transaction logic failed: %v", err))
		}
		// OLLP estimate miss: re-plan and retry (paper §3.2).
		stats.Aborted++
		stats.Misses++
		if t.Replan == nil {
			panic("dlfree: estimate miss without Replan hook")
		}
		t.Replan(t)
	}
}

var _ engine.System = (*Engine)(nil)
