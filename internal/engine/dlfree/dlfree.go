// Package dlfree implements "Deadlock free locking", the paper's strongest
// conventional baseline (§4): a shared-everything 2PL system that analyzes
// each transaction's read- and write-sets in advance and acquires all
// locks in lexicographical order before execution. Ordered acquisition
// makes deadlock impossible, so the engine carries no deadlock-handling
// machinery at all — the Figure 4 comparison against the dynamic handlers
// isolates exactly that cost.
//
// If a transaction's declared access set turns out to be wrong (possible
// only for OLLP-planned transactions such as TPC-C Payment-by-last-name),
// the access returns txn.ErrEstimateMiss, the engine rolls back, re-plans
// via the transaction's Replan hook and retries — the OLLP protocol of
// §3.2.
package dlfree

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Config configures the engine.
type Config struct {
	DB      *storage.DB
	Threads int
	// Buckets overrides the lock-table bucket count (default 1<<16).
	Buckets int
	// Split marks the "Split Deadlock-free" variant of Figures 6/7. The
	// concurrency-control behaviour is identical (shared lock table); the
	// paper's split variant partitions *indexes* for cache locality, a
	// physical effect outside this reproduction's reach, so the flag only
	// changes the reported name. See DESIGN.md §3.
	Split bool
}

// Engine is the deadlock-free ordered-locking engine.
type Engine struct {
	cfg   Config
	table *lock.Table
}

// New builds the engine.
func New(cfg Config) *Engine {
	if cfg.Threads <= 0 {
		panic("dlfree: Threads must be positive")
	}
	buckets := cfg.Buckets
	if buckets == 0 {
		buckets = 1 << 16
	}
	return &Engine{cfg: cfg, table: lock.NewTable(buckets, deadlock.Block{})}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.cfg.Split {
		return fmt.Sprintf("split-dlfree(%dt)", e.cfg.Threads)
	}
	return fmt.Sprintf("dlfree(%dt)", e.cfg.Threads)
}

// Run implements engine.Engine.
func (e *Engine) Run(src workload.Source, duration time.Duration) metrics.Result {
	set := metrics.NewSet(e.cfg.Threads)
	elapsed := engine.RunWorkers(e.cfg.Threads, duration, func(thread int, stop *atomic.Bool) {
		e.worker(thread, stop, src, set.Thread(thread))
	})
	return metrics.Result{System: e.Name(), Totals: set.Totals(), Duration: elapsed}
}

func (e *Engine) worker(thread int, stop *atomic.Bool, src workload.Source, stats *metrics.ThreadStats) {
	rng := rand.New(rand.NewSource(int64(thread)*104729 + 1))
	ids := engine.NewIDSource(thread)
	ctx := &engine.PlannedCtx{DB: e.cfg.DB}
	var fl lock.Freelist
	held := make([]*lock.Request, 0, 32)

	for !stop.Load() {
		t := src.Next(thread, rng)
		t.ID = ids.Next()
		txStart := time.Now()
		for {
			t.SortOps()

			// Phase 1: acquire every declared lock in global key order.
			lockStart := time.Now()
			var waited time.Duration
			held = held[:0]
			for _, op := range t.Ops {
				r := fl.Get(t.ID, 0, thread)
				w, err := e.table.Acquire(r, op.Table, op.Key, op.Mode)
				waited += w
				if err != nil {
					// Block handler never aborts.
					panic(fmt.Sprintf("dlfree: unexpected acquire error: %v", err))
				}
				held = append(held, r)
			}
			locked := time.Since(lockStart) - waited

			// Phase 2: run logic with locking settled.
			execStart := time.Now()
			ctx.Begin(t)
			err := t.Logic(ctx)
			execDur := time.Since(execStart)

			// Phase 3: release in reverse order.
			relStart := time.Now()
			if err == nil {
				ctx.Commit()
			} else {
				ctx.Abort()
			}
			for i := len(held) - 1; i >= 0; i-- {
				e.table.Release(held[i])
				fl.Put(held[i])
			}
			held = held[:0]
			locked += time.Since(relStart)

			stats.AddWait(waited)
			stats.AddLock(locked)
			stats.AddExec(execDur)

			if err == nil {
				stats.Committed++
				stats.Latency.Record(time.Since(txStart))
				break
			}
			if !errors.Is(err, txn.ErrEstimateMiss) {
				panic(fmt.Sprintf("dlfree: transaction logic failed: %v", err))
			}
			// OLLP estimate miss: re-plan and retry (paper §3.2).
			stats.Aborted++
			stats.Misses++
			if t.Replan == nil {
				panic("dlfree: estimate miss without Replan hook")
			}
			t.Replan(t)
			if stop.Load() {
				break
			}
		}
	}
}

var _ engine.Engine = (*Engine)(nil)
