package dlfree

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func newDB(n uint64) (*storage.DB, int) {
	db := storage.NewDB()
	id := db.Create(storage.Layout{Name: "main", NumRecords: n, RecordSize: 64})
	return db, id
}

func sumTable(db *storage.DB, tbl int, n uint64) uint64 {
	var sum uint64
	for k := uint64(0); k < n; k++ {
		sum += storage.GetU64(db.Table(tbl).Get(k), 0)
	}
	return sum
}

func TestTransferConservation(t *testing.T) {
	const threads, records = 4, 8
	db, tbl := newDB(records)
	for k := uint64(0); k < records; k++ {
		storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
	}
	eng := New(Config{DB: db, Threads: threads})
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, 150*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Aborted != 0 {
		t.Fatalf("deadlock-free engine aborted %d txns", res.Totals.Aborted)
	}
	if got := sumTable(db, tbl, records); got != records*1000 {
		t.Fatalf("sum = %d, want %d", got, records*1000)
	}
}

// Exact-access-set workloads must complete with zero aborts: ordered
// acquisition removes deadlocks and the Block handler never dies.
func TestHighContentionZeroAborts(t *testing.T) {
	const threads, records = 4, 64
	db, tbl := newDB(records)
	eng := New(Config{DB: db, Threads: threads})
	src := &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 4, HotRecords: 4, HotOps: 2}
	res := eng.Run(src, 150*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Aborted != 0 {
		t.Fatalf("aborts = %d, want 0", res.Totals.Aborted)
	}
	want := res.Totals.Committed * 4
	if got := sumTable(db, tbl, records); got != want {
		t.Fatalf("increments = %d, want %d", got, want)
	}
}

// workloadFunc adapts a plain constructor to workload.Source.
type workloadFunc func() *txn.Txn

func (f workloadFunc) Next(int, *rand.Rand) *txn.Txn { return f() }

// estimateMissSource emits transactions whose first plan is deliberately
// wrong; Replan fixes them. Exercises the OLLP miss path end to end.
type estimateMissSource struct {
	table  int
	misses atomic.Int64
}

func (s *estimateMissSource) next() *txn.Txn {
	t := &txn.Txn{Ops: []txn.Op{{Table: s.table, Key: 0, Mode: txn.Write}}}
	planned := uint64(0) // wrong: logic wants key 1
	t.Logic = func(ctx txn.Ctx) error {
		rec, err := ctx.Write(s.table, 1)
		if err != nil {
			return err
		}
		storage.PutU64(rec, 0, storage.GetU64(rec, 0)+1)
		_ = planned
		return nil
	}
	t.Replan = func(t *txn.Txn) {
		s.misses.Add(1)
		t.Ops = []txn.Op{{Table: s.table, Key: 1, Mode: txn.Write}}
	}
	return t
}

func TestOLLPEstimateMissReplans(t *testing.T) {
	db, tbl := newDB(4)
	eng := New(Config{DB: db, Threads: 1})
	s := &estimateMissSource{table: tbl}

	// Run one transaction through the worker loop manually: build it, let
	// the engine's Run drive it via a tiny adapter source.
	src := workloadFunc(func() *txn.Txn { return s.next() })
	res := eng.Run(src, 30*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Misses == 0 || s.misses.Load() == 0 {
		t.Fatal("estimate misses not recorded")
	}
	// Every commit wrote key 1 exactly once (after replanning).
	if got := storage.GetU64(db.Table(tbl).Get(1), 0); got != res.Totals.Committed {
		t.Fatalf("key1 = %d, want %d", got, res.Totals.Committed)
	}
	if got := storage.GetU64(db.Table(tbl).Get(0), 0); got != 0 {
		t.Fatalf("key0 modified: %d", got)
	}
}

func TestSplitVariantName(t *testing.T) {
	db, _ := newDB(8)
	if n := New(Config{DB: db, Threads: 2, Split: true}).Name(); !strings.Contains(n, "split") {
		t.Fatalf("Name = %q", n)
	}
	if n := New(Config{DB: db, Threads: 2}).Name(); strings.Contains(n, "split") {
		t.Fatalf("Name = %q", n)
	}
}
