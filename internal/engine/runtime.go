package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Runtime is the service-style lifecycle every system implements: the
// engine's threads are started once and then serve transactions submitted
// by outside callers, instead of self-generating closed-loop load. The
// benchmark drivers below (RunClosedLoop, RunOpenLoop) are ordinary
// Runtime clients; a network server would be another.
type Runtime interface {
	// Name identifies the system in harness output.
	Name() string
	// Start launches the engine's threads and returns a live Session.
	// One live session per engine at a time.
	Start() Session
	// Clients returns the natural closed-loop concurrency: the number of
	// submitters (each with one transaction outstanding) that saturates
	// the engine's workers without starving or drowning them.
	Clients() int
}

// Session accepts transactions for a started Runtime.
//
// Submissions are executed to completion — an engine retries aborted
// transactions until they commit (or, for 2PL with MaxRetries, gives up) —
// and the completion callback fires exactly once per submission. Submit
// may block for backpressure when the engine's input queue is full. No
// Submit may be issued concurrently with or after Close.
//
// The latency histogram in the session's Result records service latency:
// from the moment an engine worker picks the transaction up to its
// commit, retries included — the same quantity the engines measured
// before the Runtime split, so cross-engine comparisons are unaffected
// by driver-side queueing. Callers who want request latency (queueing
// included) measure at the completion callback, as RunOpenLoop does.
type Session interface {
	// Submit hands t to the engine. done, if non-nil, is invoked exactly
	// once from an engine worker thread when t completes; committed
	// reports whether it committed (false only for engines that can give
	// up, e.g. 2PL past MaxRetries). The callback must be cheap and must
	// not block, or it will stall the worker.
	Submit(t *txn.Txn, done func(committed bool))
	// Drain blocks until every submitted transaction has completed.
	Drain()
	// Close drains, stops the engine's threads, and returns the session's
	// aggregated metrics. The session is dead afterwards; the Runtime may
	// be started again. Submit or Close on a closed session panics.
	Close() metrics.Result
}

// Submission is one queued transaction: the unit engine workers consume.
type Submission struct {
	Txn  *txn.Txn
	Done func(committed bool) // completion callback; may be nil
}

// Gauge counts in-flight submissions. Add/Done are single atomics so they
// add no contention to the per-transaction hot path; Wait polls, which is
// plenty for drain/shutdown precision.
type Gauge struct {
	n atomic.Int64
}

// Add registers d new in-flight items.
func (g *Gauge) Add(d int) { g.n.Add(int64(d)) }

// Done retires one in-flight item.
func (g *Gauge) Done() { g.n.Add(-1) }

// Wait blocks until the gauge reaches zero. A negative count means Done
// was called without a matching Add — Wait would otherwise spin forever
// past zero, so it panics instead of hanging.
func (g *Gauge) Wait() {
	for {
		n := g.n.Load()
		if n == 0 {
			return
		}
		if n < 0 {
			panic("engine: Gauge count went negative (Done without matching Add)")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// InUseGuard enforces the documented "one live session per engine at a
// time" Runtime contract: Start acquires it, Session.Close releases it,
// and a second concurrent Start panics instead of silently racing two
// sessions on the engine's threads and metrics. Sequential
// Start→Close→Start reuse is explicitly supported.
type InUseGuard struct {
	busy atomic.Bool
}

// Acquire marks the engine in use; name labels the panic.
func (g *InUseGuard) Acquire(name string) {
	if !g.busy.CompareAndSwap(false, true) {
		panic("engine: " + name + ": Start while a previous session is still open (one live session per engine at a time; Close it first)")
	}
}

// Release marks the engine reusable; called from Session.Close.
func (g *InUseGuard) Release() {
	g.busy.Store(false)
}

// Completion carries one submission's completion duties — commit-latency
// recording, the session callback, in-flight retirement, recycling the
// transaction — as a first-class value, so an engine can either discharge
// them inline at pre-commit (the paper's instant acknowledgment, when
// durability is off) or defer them behind a WAL group-commit flush. The
// worker loop reuses one Completion per thread; Defer copies it into a
// pooled carrier, so a deferred acknowledgment survives the worker moving
// on to the next transaction without a per-commit closure allocation.
type Completion struct {
	ses   *WorkerSession
	stats *metrics.ThreadStats
	t     *txn.Txn // recycled via t.Free once the completion fires
	done  func(bool)
	start time.Time
}

// Finish discharges the completion: exactly one Finish (or one deferred
// callback from Defer) must run per submission. When committed, the
// service latency recorded spans dequeue to this call — including the
// durability flush stall if the engine deferred past one. Finish is the
// transaction's last observer: it fires t.Free afterwards, so the worker
// must not touch t again — the paths that do cleanup after Finish (lock
// release loops) must operate on worker-owned state, never on t's slices
// (see the //orthrus:recycle audit notes at each Defer call site).
func (c *Completion) Finish(committed bool) {
	if committed {
		c.stats.Latency.Record(time.Since(c.start))
	}
	if c.done != nil {
		c.done(committed)
	}
	t := c.t
	c.t = nil
	c.ses.inflight.Done()
	if t != nil && t.Free != nil {
		t.Free()
	}
}

// deferredAck carries a snapshotted Completion to the WAL flusher. Its
// fire func is bound once at pool insertion, so deferring a commit costs
// no allocation in steady state.
type deferredAck struct {
	c    Completion
	fire func()
}

var deferredAcks sync.Pool

func init() {
	// Assigned in init, not the composite literal: New references
	// deferredAck.run, which references the pool back (an initialization
	// cycle the compiler rejects at package scope).
	deferredAcks.New = func() interface{} {
		d := &deferredAck{}
		d.fire = d.run
		return d
	}
}

// run fires the deferred completion once and returns the carrier to the
// pool. The Completion is copied out first so the recycled carrier can be
// reused by another commit immediately.
//
//orthrus:recycle the carrier returns to the pool before the one-shot fire consumes its snapshot copy
func (d *deferredAck) run() {
	c := d.c
	d.c = Completion{}
	deferredAcks.Put(d)
	c.Finish(true)
}

// Defer returns Finish(true) as a standalone callback for a WAL appender:
// it snapshots the (worker-reused) Completion so the acknowledgment can
// fire from the flusher goroutine after the record is durable. From this
// point the flusher owns the completion — and, transitively, the
// transaction's recycling — so the worker must not touch t afterwards.
func (c *Completion) Defer() func() {
	d := deferredAcks.Get().(*deferredAck)
	d.c = *c
	c.t = nil // ownership transferred to the deferred ack
	return d.fire
}

// Stats returns the executing worker's stats slot.
func (c *Completion) Stats() *metrics.ThreadStats { return c.stats }

// WorkerSession is the shared Session implementation for the synchronous
// engines (2PL, Deadlock-free, Partitioned-store): n workers poll a
// lock-free submission queue and run each transaction to completion
// inline. Engines supply only the per-worker execution closure — the
// queueing, completion notification, latency accounting and lifecycle
// are defined once here.
type WorkerSession struct {
	name     string
	set      *metrics.Set
	queue    *mpmc
	inflight Gauge
	stop     atomic.Bool
	wg       sync.WaitGroup
	start    time.Time
	guard    *InUseGuard // released on Close; may be nil (tests)
	wal      *wal.Log    // log tail Drain/Close wait on; may be nil
}

// NewWorkerSession starts n workers. newWorker builds each worker's
// execution closure (per-worker contexts, freelists, id sources live in
// the closure); the closure runs one submission to completion and must
// discharge the passed Completion exactly once — inline via Finish, or
// from a WAL flush via Defer. log, when enabled, is the engine's commit
// log: Drain and Close wait for its tail so a drained session's
// acknowledged work is durable. A non-nil guard is acquired now and
// released on Close, enforcing the one-live-session contract for the
// owning engine.
func NewWorkerSession(name string, workers, queueCap int, guard *InUseGuard, log *wal.Log,
	newWorker func(thread int, stats *metrics.ThreadStats) func(*txn.Txn, *Completion)) *WorkerSession {
	if guard != nil {
		guard.Acquire(name)
	}
	s := &WorkerSession{
		name:  name,
		set:   metrics.NewSet(workers),
		queue: newMPMC(queueCap),
		start: time.Now(),
		guard: guard,
		wal:   log,
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func(i int) {
			defer s.wg.Done()
			stats := s.set.Thread(i)
			exec := newWorker(i, stats)
			comp := Completion{ses: s, stats: stats}
			var idle IdleWaiter
			for {
				sub, ok := s.queue.tryDequeue()
				if !ok {
					// Close drains all submissions before setting stop,
					// so an empty queue after stop is final.
					if s.stop.Load() {
						return
					}
					idle.Wait()
					continue
				}
				idle.Reset()
				comp.t, comp.done, comp.start = sub.Txn, sub.Done, time.Now()
				exec(sub.Txn, &comp)
			}
		}(i)
	}
	return s
}

// Submit implements Session. It spins politely when the queue is full —
// backpressure from saturated workers. Submitting to a closed session
// panics: the worker pool is stopped, so the enqueue (or the drain the
// submission would need) would otherwise spin forever.
func (s *WorkerSession) Submit(t *txn.Txn, done func(committed bool)) {
	if s.stop.Load() {
		panic("engine: " + s.name + ": Submit on a closed session")
	}
	s.inflight.Add(1)
	sub := Submission{Txn: t, Done: done}
	var idle IdleWaiter
	for !s.queue.tryEnqueue(sub) {
		if s.stop.Load() {
			panic("engine: " + s.name + ": Submit on a closed session")
		}
		idle.Wait()
	}
}

// Drain implements Session: all submissions completed and the log tail
// durable (under Async acknowledgments run ahead of the device, so the
// extra wait is what makes a clean drain lose nothing).
func (s *WorkerSession) Drain() {
	s.inflight.Wait()
	s.wal.Drain()
}

// Close implements Session. A second Close panics: it would release the
// engine's in-use guard out from under a newer session.
func (s *WorkerSession) Close() metrics.Result {
	s.inflight.Wait()
	s.wal.Drain()
	if !s.stop.CompareAndSwap(false, true) {
		panic("engine: " + s.name + ": Close on a closed session")
	}
	s.wg.Wait()
	if s.guard != nil {
		s.guard.Release()
	}
	return metrics.Result{System: s.name, Totals: s.set.Totals(), Duration: time.Since(s.start)}
}

var _ Session = (*WorkerSession)(nil)

// clientWindow is each closed-loop client's pipeline depth. Completions
// are acknowledged with a single atomic increment and clients replenish
// whole windows at a time, so the per-transaction cost a client adds to
// the engine's workers is one channel send and one atomic — no parking,
// no per-transaction scheduler round-trip (which would dominate on
// few-core machines).
const clientWindow = 16

// RunClosedLoop drives rt with self-generated closed-loop load for
// roughly the given duration, keeping exactly rt.Clients() transactions
// outstanding across a pool of pipelined submitter goroutines (the last
// client takes the remainder window, so the engine's declared saturation
// point is honored, not rounded up). This is the single implementation
// behind every engine's Engine.Run.
func RunClosedLoop(rt Runtime, src workload.Source, duration time.Duration) metrics.Result {
	ses := rt.Start()
	outstanding := rt.Clients()
	clients := (outstanding + clientWindow - 1) / clientWindow
	RunWorkers(clients, duration, func(client int, stop *atomic.Bool) {
		window := clientWindow
		if rem := outstanding - client*clientWindow; rem < window {
			window = rem
		}
		rng := rand.New(rand.NewSource(int64(client)*2654435761 + 99991))
		var completed atomic.Int64
		var waiting atomic.Bool
		wake := make(chan struct{}, 1)
		notify := func(bool) {
			completed.Add(1)
			// Acknowledge-count first, then check the parked flag: the
			// client re-checks the count after raising the flag, so under
			// sequentially consistent atomics one side always observes the
			// other — a wakeup cannot be lost (a stale token only causes a
			// harmless spurious wake).
			if waiting.Load() {
				select {
				case wake <- struct{}{}:
				default:
				}
			}
		}
		var submitted int64
		full := func() bool { return submitted-completed.Load() >= int64(window) }
		for {
			for !full() && !stop.Load() {
				ses.Submit(src.Next(client, rng), notify)
				submitted++
			}
			if stop.Load() {
				break
			}
			// Window full: spin briefly (completions are normally
			// microseconds away), then park so waiting clients do not
			// steal scheduler passes from the engine's threads.
			for spins := 0; full(); spins++ {
				if spins < 16 {
					runtime.Gosched()
					continue
				}
				waiting.Store(true)
				if full() {
					<-wake
				}
				waiting.Store(false)
			}
		}
		for completed.Load() < submitted {
			runtime.Gosched()
		}
	})
	return ses.Close()
}

// OpenLoopResult reports an open-loop run: engine-side totals plus the
// driver-side latency histogram, measured from each transaction's
// scheduled arrival time — so when the system falls behind the offered
// rate, the backlog shows up as latency rather than being coordinated
// away (the usual open-loop discipline).
type OpenLoopResult struct {
	metrics.Result
	// TargetRate is the offered Poisson arrival rate (txns/sec).
	TargetRate float64
	// Submitted counts transactions offered (all complete before the
	// result is returned).
	Submitted uint64
	// Latency is scheduled-arrival-to-commit latency over committed
	// transactions only — submissions an engine gave up on (2PL past
	// MaxRetries) complete without contributing a sample, so
	// Latency.Count() can be below Submitted.
	Latency metrics.Histogram
	// MaxLag is the largest distance the generator itself fell behind
	// its arrival timeline (engine backpressure or generation cost). A
	// MaxLag comparable to the reported percentiles means the driver,
	// not the engine, set them — raise the window or lower the rate.
	MaxLag time.Duration
}

// AchievedRate returns completed transactions per second of wall time.
func (r OpenLoopResult) AchievedRate() float64 { return r.Result.Throughput() }

// RunOpenLoop drives rt with Poisson arrivals at rate transactions per
// second for roughly the given duration and reports commit-latency
// percentiles. Arrivals are generated on a single timeline goroutine:
// each transaction is generated ahead of its arrival (during the
// inter-arrival gap, off the latency-critical path) and submitted at
// its scheduled instant; when the engine exerts backpressure the
// generator falls behind and subsequent transactions go out late but
// are measured from their scheduled arrival, so queueing delay is
// charged to latency. MaxLag reports how far the generator itself
// trailed the timeline — the honesty check on single-goroutine
// generation at high rates.
func RunOpenLoop(rt Runtime, src workload.Source, rate float64, duration time.Duration) OpenLoopResult {
	if rate <= 0 {
		panic("engine: open-loop rate must be positive")
	}
	ses := rt.Start()
	// Completion callbacks run on engine worker threads inside the
	// measured commit path, so recording is sharded across independently
	// locked histograms (assigned round-robin at submit time) instead of
	// serializing every worker on one mutex; shards merge after Drain.
	type latShard struct {
		mu sync.Mutex
		h  metrics.Histogram
		_  [64]byte
	}
	shards := make([]latShard, 16)
	var (
		submitted uint64
		maxLag    time.Duration
	)
	rng := rand.New(rand.NewSource(7_654_321))
	start := time.Now()
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.Sub(start) >= duration {
			break
		}
		t := src.Next(0, rng) // generate during the gap, before the deadline
		if d := time.Until(next); d > 0 {
			sleep(d)
		} else if lag := -d; lag > maxLag {
			maxLag = lag
		}
		sched := next
		shard := &shards[submitted%uint64(len(shards))]
		submitted++
		ses.Submit(t, func(committed bool) {
			if !committed {
				return
			}
			d := time.Since(sched)
			shard.mu.Lock()
			shard.h.Record(d)
			shard.mu.Unlock()
		})
	}
	ses.Drain()
	res := ses.Close()
	var lat metrics.Histogram
	for i := range shards {
		lat.Merge(&shards[i].h)
	}
	return OpenLoopResult{Result: res, TargetRate: rate, Submitted: submitted, Latency: lat, MaxLag: maxLag}
}

// sleep waits for d with sub-millisecond precision: coarse time.Sleep for
// the bulk, then a yielding spin for the tail the OS timer cannot hit.
func sleep(d time.Duration) {
	deadline := time.Now().Add(d)
	if d > time.Millisecond {
		time.Sleep(d - 500*time.Microsecond)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
