package wal

import (
	"os"
	"sync"
)

// Device is the append-only byte sink a Log writes to. Write appends;
// Sync makes every byte written so far durable. The two in-tree
// implementations are MemDevice (tests, benchmarks, crash simulation)
// and FileDevice (a real fsync'd file).
type Device interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// MemDevice is an in-memory Device that models crash semantics: bytes
// written but not yet synced may be lost or torn at any byte boundary,
// so SyncedContents is the image a crash is guaranteed to preserve and
// Contents truncated at an arbitrary point is the image a crash might
// leave. The recovery tests replay exactly those images.
type MemDevice struct {
	mu     sync.Mutex
	buf    []byte
	synced int
	syncs  uint64
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// Write implements Device.
func (d *MemDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	d.buf = append(d.buf, p...)
	d.mu.Unlock()
	return len(p), nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	d.synced = len(d.buf)
	d.syncs++
	d.mu.Unlock()
	return nil
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Contents returns a copy of every byte written, synced or not.
func (d *MemDevice) Contents() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf...)
}

// SyncedContents returns a copy of the durable prefix: the bytes covered
// by the last Sync, which a crash cannot lose.
func (d *MemDevice) SyncedContents() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf[:d.synced]...)
}

// Len returns the total bytes written; SyncedLen the durable prefix.
func (d *MemDevice) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

// SyncedLen returns the length of the durable prefix.
func (d *MemDevice) SyncedLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.synced
}

// Syncs returns the number of Sync calls observed.
func (d *MemDevice) Syncs() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// syncDir fsyncs a directory, making the file creations, renames and
// removals inside it durable — fsyncing a file persists its contents,
// not the directory entry that names it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// FileDevice is a Device over an append-mode file; Sync is fsync.
type FileDevice struct {
	f *os.File
}

// OpenFileDevice opens (creating if absent) path for appending.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

// Write implements Device.
func (d *FileDevice) Write(p []byte) (int, error) { return d.f.Write(p) }

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }
