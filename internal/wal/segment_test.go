package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/storage"
)

// rec builds one single-write record for table 0 carrying lsn in its value.
func rec(lsn uint64, key uint64) []byte {
	val := make([]byte, 8)
	storage.PutI64(val, 0, int64(lsn))
	return appendRecord(nil, lsn, []redoWrite{{table: 0, key: key, val: val}})
}

func segDB(n uint64) *storage.DB {
	db := storage.NewDB()
	db.Create(storage.Layout{Name: "t", NumRecords: n, RecordSize: 8})
	return db
}

// The log must rotate segments at the configured size, and only at sync
// boundaries: every sealed segment is a self-contained stream of whole,
// durable records.
func TestMemSegmentsRotateAtSyncBoundaries(t *testing.T) {
	dev := NewMemSegments(256)
	l := NewLog(dev, Group(4, 100*time.Microsecond))
	a := l.NewAppender(nil)
	for i := uint64(0); i < 64; i++ {
		val := make([]byte, 8)
		storage.PutI64(val, 0, int64(i))
		a.Note(0, i%8, val)
		done := make(chan struct{})
		a.Commit(func() { close(done) })
		<-done
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	infos := dev.Segments()
	sealed := 0
	for _, in := range infos {
		if in.Sealed {
			sealed++
			if in.Bytes < 256 {
				t.Fatalf("sealed segment holds %d bytes, below the rotation threshold", in.Bytes)
			}
		}
	}
	if sealed < 2 {
		t.Fatalf("expected multiple sealed segments, got %d of %d", sealed, len(infos))
	}
	// Every segment must decode cleanly end to end — rotation never
	// splits a record.
	total := 0
	for i, seg := range dev.CrashSegments() {
		for len(seg) > 0 {
			_, n, ok := decodeRecord(seg)
			if !ok {
				t.Fatalf("segment %d holds a torn record", i)
			}
			seg = seg[n:]
			total++
		}
	}
	if total != 64 {
		t.Fatalf("segments hold %d records, want 64", total)
	}
	// And replay across the segments must rebuild all 64 commits.
	db := segDB(8)
	st := ReplaySegments(dev.CrashSegments(), 0, 2, db)
	if st.Applied != 64 || st.AppliedLSN != 64 || st.Torn {
		t.Fatalf("replay: %+v", st)
	}
}

// Truncate drops exactly the sealed segments whose every record is at or
// below the cut; the active segment and segments straddling the cut stay.
func TestMemSegmentsTruncateOnlyWhollyBelow(t *testing.T) {
	dev := NewMemSegments(64)
	// Three sealed segments with max LSNs 2, 4, 6 and an active tail.
	for _, lsns := range [][]uint64{{1, 2}, {3, 4}, {5, 6}} {
		for _, l := range lsns {
			dev.Write(rec(l, l))
		}
		dev.Sync()
		dev.Mark(lsns[1])
	}
	dev.Write(rec(7, 7))
	dev.Sync()
	dev.Mark(7) // active: below threshold only if 7's record < 64B; force check below
	infos := dev.Segments()
	if len(infos) < 3 {
		t.Fatalf("expected at least 3 segments, got %d", len(infos))
	}
	if n := dev.Truncate(4); n != 2 {
		t.Fatalf("Truncate(4) dropped %d segments, want 2 (maxLSN 2 and 4)", n)
	}
	if n := dev.Truncate(4); n != 0 {
		t.Fatalf("second Truncate(4) dropped %d segments, want 0", n)
	}
	if dev.Truncated() != 2 {
		t.Fatalf("Truncated() = %d, want 2", dev.Truncated())
	}
	// The surviving segments still replay LSNs 5..7 after a checkpoint at 4.
	db := segDB(8)
	st := ReplaySegments(dev.CrashSegments(), 4, 1, db)
	if st.Applied != 3 || st.AppliedLSN != 7 {
		t.Fatalf("replay after truncation: %+v", st)
	}
}

// Replay must skip records at or below the checkpoint LSN even when they
// sit in surviving segments (the flusher writes buffers in steal order,
// so late segments can carry early LSNs), and the frontier must continue
// exactly from the checkpoint.
func TestReplaySegmentsSkipsBelowCheckpoint(t *testing.T) {
	// Segment A: LSNs 2, 5; segment B: 1, 4; segment C: 3, 6.
	segA := append(rec(2, 2), rec(5, 5)...)
	segB := append(rec(1, 1), rec(4, 4)...)
	segC := append(rec(3, 3), rec(6, 6)...)
	segs := [][]byte{segA, segB, segC}

	for _, workers := range []int{1, 3} {
		db := segDB(8)
		st := ReplaySegments(segs, 3, workers, db)
		if st.Scanned != 6 || st.Skipped != 3 || st.Applied != 3 {
			t.Fatalf("workers=%d: %+v", workers, st)
		}
		if st.AppliedLSN != 3+uint64(st.Applied) {
			t.Fatalf("workers=%d: frontier %d does not continue from checkpoint", workers, st.AppliedLSN)
		}
		// Keys 1..3 (LSN ≤ 3) must stay untouched; keys 4..6 replayed.
		for k := uint64(1); k <= 3; k++ {
			if got := storage.GetI64(db.Table(0).Get(k), 0); got != 0 {
				t.Fatalf("workers=%d: key %d replayed below the checkpoint (val %d)", workers, k, got)
			}
		}
		for k := uint64(4); k <= 6; k++ {
			if got := storage.GetI64(db.Table(0).Get(k), 0); got != int64(k) {
				t.Fatalf("workers=%d: key %d = %d, want %d", workers, k, got, k)
			}
		}
	}
}

// A gap above the checkpoint ends the applied prefix: records beyond the
// gap were never acknowledged.
func TestReplaySegmentsStopsAtGap(t *testing.T) {
	segs := [][]byte{append(rec(4, 4), rec(6, 6)...)} // 5 missing
	db := segDB(8)
	st := ReplaySegments(segs, 3, 4, db)
	if st.Applied != 1 || st.AppliedLSN != 4 {
		t.Fatalf("%+v", st)
	}
	if got := storage.GetI64(db.Table(0).Get(6), 0); got != 0 {
		t.Fatal("record beyond the LSN gap was applied")
	}
}

// Parallel replay must produce byte-identical state to serial replay on a
// log with heavy per-key rewrite traffic (per-key order is the invariant
// the (table,key)-hash partitioning must preserve).
func TestReplaySegmentsParallelMatchesSerial(t *testing.T) {
	var segs [][]byte
	var seg []byte
	lsn := uint64(0)
	for i := 0; i < 400; i++ {
		lsn++
		seg = append(seg, rec(lsn, lsn%16)...) // 16 keys, each rewritten ~25×
		if len(seg) > 512 {
			segs = append(segs, seg)
			seg = nil
		}
	}
	segs = append(segs, seg)

	serial, par := segDB(16), segDB(16)
	stS := ReplaySegments(segs, 0, 1, serial)
	stP := ReplaySegments(segs, 0, 8, par)
	if stS != stP {
		t.Fatalf("stats diverge: serial %+v parallel %+v", stS, stP)
	}
	if stS.Applied != 400 {
		t.Fatalf("applied %d, want 400", stS.Applied)
	}
	for k := uint64(0); k < 16; k++ {
		if !bytes.Equal(serial.Table(0).Get(k), par.Table(0).Get(k)) {
			t.Fatalf("key %d differs between serial and parallel replay", k)
		}
	}
}

// FileSegments must persist rotation across writes, reload in order, and
// physically delete truncated segment files.
func TestFileSegmentsRoundTripAndTruncate(t *testing.T) {
	dir := t.TempDir()
	dev, err := OpenFileSegments(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, lsns := range [][]uint64{{1, 2}, {3, 4}, {5, 6}} {
		for _, l := range lsns {
			if _, err := dev.Write(rec(l, l)); err != nil {
				t.Fatal(err)
			}
		}
		if err := dev.Sync(); err != nil {
			t.Fatal(err)
		}
		dev.Mark(lsns[1])
	}
	before, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(before) < 3 {
		t.Fatalf("expected at least 3 segment files, got %d", len(before))
	}
	if n := dev.Truncate(4); n != 2 {
		t.Fatalf("Truncate(4) removed %d files, want 2", n)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(after) != len(before)-2 {
		t.Fatalf("%d files remain, want %d", len(after), len(before)-2)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := LoadFileSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := segDB(8)
	st := ReplaySegments(segs, 4, 2, db)
	if st.Applied != 2 || st.AppliedLSN != 6 {
		t.Fatalf("replay from reloaded files: %+v", st)
	}

	// A fresh open must continue after the highest surviving sequence
	// number, never overwrite an existing segment.
	dev2, err := OpenFileSegments(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev2.Write(rec(7, 7)); err != nil {
		t.Fatal(err)
	}
	if err := dev2.Sync(); err != nil {
		t.Fatal(err)
	}
	dev2.Mark(7)
	if err := dev2.Close(); err != nil {
		t.Fatal(err)
	}
	segs2, err := LoadFileSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2 := segDB(8)
	st2 := ReplaySegments(segs2, 4, 2, db2)
	if st2.Applied != 3 || st2.AppliedLSN != 7 {
		t.Fatalf("replay after reopen: %+v", st2)
	}
	// Sanity: the directory holds only .wal files plus whatever Glob saw.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".wal" {
			t.Fatalf("unexpected file %q in segment dir", e.Name())
		}
	}
}

// A matching-but-unparseable segment name must fail Open rather than
// silently restarting the sequence at 0 over existing segment files.
func TestOpenFileSegmentsRejectsUnparseableNames(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-garbage.wal"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileSegments(dir, 0); err == nil {
		t.Fatal("OpenFileSegments accepted an unparseable segment name")
	}
}
