package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildPage seals one page holding count records for table.
func buildPage(t *testing.T, table, count int, salt byte) []byte {
	t.Helper()
	var b PageBuilder
	b.Reset(table)
	for i := 0; i < count; i++ {
		val := bytes.Repeat([]byte{salt + byte(i)}, 8)
		b.Add(uint64(i), val)
	}
	page := append([]byte(nil), b.Seal()...)
	if page == nil {
		t.Fatal("Seal returned nil for a non-empty page")
	}
	return page
}

func TestPageRoundTrip(t *testing.T) {
	page := buildPage(t, 3, 5, 0x10)
	table, count, crc, ok := verifyPage(page)
	if !ok || table != 3 || count != 5 || crc == 0 {
		t.Fatalf("verify: table=%d count=%d crc=%d ok=%v", table, count, crc, ok)
	}
	var keys []uint64
	_, n, err := DecodePage(page, func(key uint64, val []byte) error {
		keys = append(keys, key)
		if want := bytes.Repeat([]byte{0x10 + byte(key)}, 8); !bytes.Equal(val, want) {
			t.Fatalf("key %d: val %x, want %x", key, val, want)
		}
		return nil
	})
	if err != nil || n != 5 || len(keys) != 5 {
		t.Fatalf("decode: n=%d err=%v keys=%v", n, err, keys)
	}
}

// Any single-byte corruption of a page must fail verification — the CRC
// covers the header fields and the payload; the magic and the CRC field
// itself are checked structurally.
func TestPageCorruptionDetectedAtEveryByte(t *testing.T) {
	page := buildPage(t, 1, 3, 0x20)
	for i := range page {
		mut := append([]byte(nil), page...)
		mut[i] ^= 0xFF
		if _, _, _, ok := verifyPage(mut); ok {
			t.Fatalf("corruption at byte %d verified", i)
		}
	}
	for cut := 0; cut < len(page); cut++ {
		if _, _, _, ok := verifyPage(page[:cut]); ok {
			t.Fatalf("truncation at %d verified", cut)
		}
	}
}

func TestManifestRoundTripAndCorruption(t *testing.T) {
	m := &Manifest{StartLSN: 42, TailLSN: 99, Tables: []TableImage{
		{Table: 0, Pages: 2, Records: 11, CRC: 0xDEAD},
		{Table: 3, Pages: 1, Records: 7, CRC: 0xBEEF},
	}}
	enc := EncodeManifest(m)
	dec, err := DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.StartLSN != 42 || dec.TailLSN != 99 || len(dec.Tables) != 2 ||
		dec.Tables[1] != m.Tables[1] {
		t.Fatalf("roundtrip mismatch: %+v", dec)
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xFF
		if _, err := DecodeManifest(mut); err == nil {
			t.Fatalf("corruption at byte %d decoded", i)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeManifest(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

// The per-table CRC folds page CRCs in order, so page reordering — which
// individual page CRCs cannot see — must change the fold.
func TestFoldPageCRCDetectsReordering(t *testing.T) {
	a := buildPage(t, 0, 2, 0x30)
	b := buildPage(t, 0, 2, 0x40)
	ab := FoldPageCRC(FoldPageCRC(0, a), b)
	ba := FoldPageCRC(FoldPageCRC(0, b), a)
	if ab == ba {
		t.Fatal("fold CRC is order-insensitive")
	}
}

// commitCheckpoint writes one single-page checkpoint through the store.
func commitCheckpoint(t *testing.T, s CheckpointStore, start, tail uint64, salt byte) {
	t.Helper()
	w, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	page := buildPage(t, 0, 4, salt)
	if err := w.Page(page); err != nil {
		t.Fatal(err)
	}
	m := &Manifest{StartLSN: start, TailLSN: tail, Tables: []TableImage{
		{Table: 0, Pages: 1, Records: 4, CRC: FoldPageCRC(0, page)},
	}}
	if err := w.Commit(m); err != nil {
		t.Fatal(err)
	}
}

func TestMemCheckpointStoreRetainsTwoAndFallsBack(t *testing.T) {
	s := NewMemCheckpointStore()
	if ck, err := s.Load(); err != nil || ck != nil {
		t.Fatalf("empty store: ck=%v err=%v", ck, err)
	}
	commitCheckpoint(t, s, 10, 12, 0x01)
	commitCheckpoint(t, s, 20, 22, 0x02)
	commitCheckpoint(t, s, 30, 33, 0x03)
	if s.Count() != 2 {
		t.Fatalf("retained %d, want 2", s.Count())
	}
	ck, err := s.Load()
	if err != nil || ck == nil || ck.Manifest.StartLSN != 30 {
		t.Fatalf("load newest: %+v err=%v", ck, err)
	}
	s.CorruptNewestManifest()
	ck, err = s.Load()
	if err != nil || ck == nil || ck.Manifest.StartLSN != 20 {
		t.Fatalf("fallback after manifest corruption: %+v err=%v", ck, err)
	}
	s.DropNewest() // drops the corrupted one
	ck, err = s.Load()
	if err != nil || ck == nil || ck.Manifest.StartLSN != 20 {
		t.Fatalf("load after drop: %+v err=%v", ck, err)
	}
	s.CorruptNewestPage()
	if ck, err := s.Load(); err != nil || ck != nil {
		t.Fatalf("store with only a page-corrupt checkpoint must load none: %+v err=%v", ck, err)
	}
}

func TestDirCheckpointStoreRetainsTwoAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDirCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck, err := s.Load(); err != nil || ck != nil {
		t.Fatalf("empty store: ck=%v err=%v", ck, err)
	}
	commitCheckpoint(t, s, 10, 12, 0x01)
	commitCheckpoint(t, s, 20, 22, 0x02)
	commitCheckpoint(t, s, 30, 33, 0x03)
	manifests, _ := filepath.Glob(filepath.Join(dir, "ck-*.manifest"))
	if len(manifests) != 2 {
		t.Fatalf("%d manifest files on disk, want 2", len(manifests))
	}
	// Reopen — committed checkpoints must survive the "restart".
	s2, err := OpenDirCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := s2.Load()
	if err != nil || ck == nil || ck.Manifest.StartLSN != 30 {
		t.Fatalf("load newest after reopen: %+v err=%v", ck, err)
	}
	// Crash between pages and manifest: delete the newest manifest —
	// recovery must fall back to the previous checkpoint.
	newest := manifests[len(manifests)-1]
	if err := os.Remove(newest); err != nil {
		t.Fatal(err)
	}
	ck, err = s2.Load()
	if err != nil || ck == nil || ck.Manifest.StartLSN != 20 {
		t.Fatalf("fallback after manifest removal: %+v err=%v", ck, err)
	}
	// A torn manifest (partial write, no rename) must be invisible: the
	// .tmp file is not a committed checkpoint.
	if err := os.WriteFile(filepath.Join(dir, "ck-00000099.manifest.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err = s2.Load()
	if err != nil || ck == nil || ck.Manifest.StartLSN != 20 {
		t.Fatalf("tmp manifest changed recovery: %+v err=%v", ck, err)
	}
	// An aborted checkpoint leaves no manifest behind.
	w, err := s2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Page(buildPage(t, 0, 1, 0x09)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	ck, err = s2.Load()
	if err != nil || ck == nil || ck.Manifest.StartLSN != 20 {
		t.Fatalf("aborted checkpoint changed recovery: %+v err=%v", ck, err)
	}
}

// A manifest whose page set does not match — wrong fold CRC, wrong record
// count, or extra pages — must fail validation as a unit.
func TestValidateCheckpointRejectsMismatchedPages(t *testing.T) {
	page := buildPage(t, 0, 4, 0x05)
	good := &Manifest{StartLSN: 1, TailLSN: 2, Tables: []TableImage{
		{Table: 0, Pages: 1, Records: 4, CRC: FoldPageCRC(0, page)},
	}}
	if err := validateCheckpoint(good, [][]byte{page}); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	badCRC := *good
	badCRC.Tables = []TableImage{{Table: 0, Pages: 1, Records: 4, CRC: good.Tables[0].CRC + 1}}
	if err := validateCheckpoint(&badCRC, [][]byte{page}); err == nil {
		t.Fatal("wrong fold CRC accepted")
	}
	badCount := *good
	badCount.Tables = []TableImage{{Table: 0, Pages: 1, Records: 5, CRC: good.Tables[0].CRC}}
	if err := validateCheckpoint(&badCount, [][]byte{page}); err == nil {
		t.Fatal("wrong record count accepted")
	}
	if err := validateCheckpoint(good, [][]byte{page, page}); err == nil {
		t.Fatal("extra page accepted")
	}
	if err := validateCheckpoint(good, nil); err == nil {
		t.Fatal("missing page accepted")
	}
}

// A matching-but-unparseable manifest name must fail Open: silently
// treating it as sequence 0 would let Begin's O_TRUNC overwrite a live
// checkpoint's pages file while its manifest remains, invalidating it.
func TestOpenDirCheckpointStoreRejectsUnparseableNames(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ck-garbage.manifest"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDirCheckpointStore(dir); err == nil {
		t.Fatal("OpenDirCheckpointStore accepted an unparseable manifest name")
	}
}
