package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Redo record wire format (little-endian):
//
//	magic      uint16  — recMagic, cheap torn-tail detector
//	nWrites    uint16  — entries in the payload
//	payloadLen uint32  — payload bytes following the header
//	lsn        uint64  — commit sequence number, assigned at pre-commit
//	crc        uint32  — CRC-32C over header[2:16] + payload
//	payload    — nWrites × (table uint32 | key uint64 | valLen uint32 | val)
//
// The CRC covers the counts and the LSN, so a record whose tail was torn
// by a crash — or whose header bytes are garbage from a partial write —
// fails validation instead of decoding into a wrong-but-plausible redo.
const (
	recMagic  = 0x57A1
	recHeader = 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// redoWrite is one captured after-image: the record payload of (table,
// key) as it stands at pre-commit. val aliases live table memory between
// Note and encode; the encode happens while the transaction still holds
// its locks, so the bytes are the transaction's own committed images.
type redoWrite struct {
	table int32
	key   uint64
	val   []byte
}

// appendRecord encodes one redo record onto buf and returns the extended
// slice. Capped at 65535 writes per transaction by the uint16 count —
// orders of magnitude beyond any workload in this repository.
func appendRecord(buf []byte, lsn uint64, writes []redoWrite) []byte {
	if len(writes) > 0xFFFF {
		panic("wal: transaction write set exceeds 65535 records")
	}
	payload := 0
	for _, w := range writes {
		payload += 16 + len(w.val)
	}
	base := len(buf)
	//orthrus:allow(noalloc) append-of-make is the compiler-recognized zero-extension idiom; buf growth amortizes
	buf = append(buf, make([]byte, recHeader+payload)...)
	h := buf[base:]
	binary.LittleEndian.PutUint16(h[0:2], recMagic)
	binary.LittleEndian.PutUint16(h[2:4], uint16(len(writes)))
	binary.LittleEndian.PutUint32(h[4:8], uint32(payload))
	binary.LittleEndian.PutUint64(h[8:16], lsn)
	p := h[recHeader:]
	for _, w := range writes {
		binary.LittleEndian.PutUint32(p[0:4], uint32(w.table))
		binary.LittleEndian.PutUint64(p[4:12], w.key)
		binary.LittleEndian.PutUint32(p[12:16], uint32(len(w.val)))
		copy(p[16:], w.val)
		p = p[16+len(w.val):]
	}
	crc := crc32.Checksum(h[2:16], crcTable)
	crc = crc32.Update(crc, crcTable, h[recHeader:recHeader+payload])
	binary.LittleEndian.PutUint32(h[16:20], crc)
	return buf
}

// decoded is one validated record scanned out of a log image.
type decoded struct {
	lsn    uint64
	writes []redoWrite // val aliases the scanned data
}

// decodeRecord validates and decodes the record at the head of data,
// returning the record and the bytes it consumed. ok is false when the
// head is not a complete, checksum-valid record — the torn-tail (or
// torn-middle) signal that stops a replay scan.
func decodeRecord(data []byte) (rec decoded, n int, ok bool) {
	if len(data) < recHeader {
		return decoded{}, 0, false
	}
	if binary.LittleEndian.Uint16(data[0:2]) != recMagic {
		return decoded{}, 0, false
	}
	nw := int(binary.LittleEndian.Uint16(data[2:4]))
	payload := int(binary.LittleEndian.Uint32(data[4:8]))
	if payload < 0 || len(data) < recHeader+payload {
		return decoded{}, 0, false
	}
	if nw*16 > payload {
		// Each write needs at least its 16-byte entry header; reject
		// before allocating the write slice an impossible count asks for.
		return decoded{}, 0, false
	}
	crc := crc32.Checksum(data[2:16], crcTable)
	crc = crc32.Update(crc, crcTable, data[recHeader:recHeader+payload])
	if crc != binary.LittleEndian.Uint32(data[16:20]) {
		return decoded{}, 0, false
	}
	rec.lsn = binary.LittleEndian.Uint64(data[8:16])
	rec.writes = make([]redoWrite, 0, nw)
	p := data[recHeader : recHeader+payload]
	for i := 0; i < nw; i++ {
		if len(p) < 16 {
			return decoded{}, 0, false
		}
		vlen := int(binary.LittleEndian.Uint32(p[12:16]))
		if len(p) < 16+vlen {
			return decoded{}, 0, false
		}
		rec.writes = append(rec.writes, redoWrite{
			table: int32(binary.LittleEndian.Uint32(p[0:4])),
			key:   binary.LittleEndian.Uint64(p[4:12]),
			val:   p[16 : 16+vlen : 16+vlen],
		})
		p = p[16+vlen:]
	}
	if len(p) != 0 {
		return decoded{}, 0, false
	}
	return rec, recHeader + payload, true
}
