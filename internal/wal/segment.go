package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Log segmentation.
//
// A single append-only device grows without bound: recovery cost and disk
// footprint scale with uptime, not with the distance from the last
// checkpoint. A SegmentDevice splits the log across rotated segments so
// that, once a checkpoint manifest is durable, the log can drop every
// segment that lies wholly below the checkpoint's start LSN.
//
// The flusher drives segmentation with one extra call per flush pass:
// after Sync it calls Mark with the highest LSN written in that pass.
// Rotation happens only inside Mark — between flush passes, after a sync —
// so every segment is a self-contained stream of whole records and its
// recorded MaxLSN bounds every LSN it contains. Because the flusher writes
// appender buffers in steal order, not LSN order, a later segment may
// still contain records with *smaller* LSNs than an earlier segment's
// MaxLSN; truncation therefore drops a segment only when its own MaxLSN
// is at or below the cut, and replay (ReplaySegments) skips any surviving
// record at or below a checkpoint's start LSN rather than assuming the
// remaining segments start past it.

// DefaultSegmentBytes is the rotation threshold when a segment device is
// built with a non-positive size.
const DefaultSegmentBytes = 1 << 20

// SegmentDevice is a Device that rotates the log across segments and can
// drop segments below a checkpoint LSN. Mark is called by the flusher
// after each synced flush pass with the highest LSN that pass wrote;
// Truncate removes every sealed segment whose MaxLSN is at or below
// belowLSN and reports how many it dropped.
type SegmentDevice interface {
	Device
	Mark(maxLSN uint64)
	Truncate(belowLSN uint64) int
}

// SegmentInfo describes one live segment of a segment device.
type SegmentInfo struct {
	Bytes  int
	MaxLSN uint64
	Sealed bool
}

// memSegment is one in-memory segment; sealed segments are fully synced
// by construction (sealing happens in Mark, which follows a Sync).
type memSegment struct {
	buf    []byte
	synced int
	maxLSN uint64
	sealed bool
}

// MemSegments is an in-memory SegmentDevice with the same crash
// semantics as MemDevice: bytes written but not synced may be lost, so
// CrashSegments is the per-segment image a crash is guaranteed to
// preserve. It backs the checkpoint/recovery tests and the recovery
// experiment.
type MemSegments struct {
	mu           sync.Mutex
	segmentBytes int
	segs         []*memSegment // segs[len-1] is the active segment
	truncated    int
}

// NewMemSegments returns an empty in-memory segment device rotating at
// segmentBytes (non-positive means DefaultSegmentBytes).
func NewMemSegments(segmentBytes int) *MemSegments {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	return &MemSegments{segmentBytes: segmentBytes, segs: []*memSegment{{}}}
}

// Write implements Device: append to the active segment.
func (d *MemSegments) Write(p []byte) (int, error) {
	d.mu.Lock()
	s := d.segs[len(d.segs)-1]
	s.buf = append(s.buf, p...)
	d.mu.Unlock()
	return len(p), nil
}

// Sync implements Device.
func (d *MemSegments) Sync() error {
	d.mu.Lock()
	s := d.segs[len(d.segs)-1]
	s.synced = len(s.buf)
	d.mu.Unlock()
	return nil
}

// Close implements Device.
func (d *MemSegments) Close() error { return nil }

// Mark implements SegmentDevice: record the pass's highest LSN on the
// active segment and rotate it once it reaches the size threshold. Mark
// runs after Sync, so a sealed segment is always fully synced.
func (d *MemSegments) Mark(maxLSN uint64) {
	d.mu.Lock()
	s := d.segs[len(d.segs)-1]
	if maxLSN > s.maxLSN {
		s.maxLSN = maxLSN
	}
	if len(s.buf) >= d.segmentBytes && s.synced == len(s.buf) {
		s.sealed = true
		d.segs = append(d.segs, &memSegment{})
	}
	d.mu.Unlock()
}

// Truncate implements SegmentDevice.
func (d *MemSegments) Truncate(belowLSN uint64) int {
	d.mu.Lock()
	kept := d.segs[:0]
	dropped := 0
	for _, s := range d.segs {
		if s.sealed && s.maxLSN <= belowLSN {
			dropped++
			continue
		}
		kept = append(kept, s)
	}
	d.segs = kept
	d.truncated += dropped
	d.mu.Unlock()
	return dropped
}

// CrashSegments returns the per-segment images a crash is guaranteed to
// preserve: each surviving segment's synced prefix, in segment order,
// with empty segments elided. This is the input ReplaySegments and
// Recover take.
func (d *MemSegments) CrashSegments() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][]byte, 0, len(d.segs))
	for _, s := range d.segs {
		if s.synced == 0 {
			continue
		}
		out = append(out, append([]byte(nil), s.buf[:s.synced]...))
	}
	return out
}

// Segments reports the live segments (tests and experiments).
func (d *MemSegments) Segments() []SegmentInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]SegmentInfo, len(d.segs))
	for i, s := range d.segs {
		out[i] = SegmentInfo{Bytes: len(s.buf), MaxLSN: s.maxLSN, Sealed: s.sealed}
	}
	return out
}

// Truncated reports how many segments have been dropped so far.
func (d *MemSegments) Truncated() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.truncated
}

// fileSegment is one sealed on-disk segment this process wrote.
type fileSegment struct {
	path   string
	maxLSN uint64
}

// FileSegments is a file-backed SegmentDevice: each segment is one
// fsync'd append-only file seg-<seq>.wal under a directory, rotated at
// the size threshold. Only segments sealed by this process are eligible
// for Truncate — segments inherited from a previous process have unknown
// MaxLSNs until recovery scans them, and recovery (not the device)
// decides their fate.
type FileSegments struct {
	dir          string
	segmentBytes int

	mu      sync.Mutex
	f       *os.File
	written int
	maxLSN  uint64
	seq     int
	sealed  []fileSegment
}

// segName formats the file name of segment seq; the fixed-width decimal
// keeps lexicographic order equal to numeric order.
func segName(seq int) string { return fmt.Sprintf("seg-%08d.wal", seq) }

// OpenFileSegments opens (creating the directory if needed) a file-backed
// segment device. New segments continue after the highest existing
// sequence number, so a reopened log never overwrites old segments.
func OpenFileSegments(dir string, segmentBytes int) (*FileSegments, error) {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := listSegmentFiles(dir)
	if err != nil {
		return nil, err
	}
	// Continue past the highest existing sequence number. An unparseable
	// matching name fails Open outright: silently treating it as seq 0
	// would reopen (and append to) an existing segment file.
	seq := 0
	for _, name := range names {
		base := filepath.Base(name)
		var n int
		if _, err := fmt.Sscanf(base, "seg-%d.wal", &n); err != nil {
			return nil, fmt.Errorf("wal: unparseable segment file name %q", base)
		}
		if n+1 > seq {
			seq = n + 1
		}
	}
	d := &FileSegments{dir: dir, segmentBytes: segmentBytes, seq: seq}
	if err := d.openActive(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *FileSegments) openActive() error {
	f, err := os.OpenFile(filepath.Join(d.dir, segName(d.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// Make the segment's directory entry durable now: its records are
	// fsync'd to the file before acknowledgment, but a file-content fsync
	// does not persist the entry that names the file, and losing that
	// entry loses every acknowledged record in the segment.
	if err := syncDir(d.dir); err != nil {
		f.Close()
		return err
	}
	d.f, d.written, d.maxLSN = f, 0, 0
	return nil
}

// Write implements Device.
func (d *FileSegments) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := d.f.Write(p)
	d.written += n
	return n, err
}

// Sync implements Device.
func (d *FileSegments) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// Close implements Device.
func (d *FileSegments) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// Mark implements SegmentDevice; see MemSegments.Mark.
func (d *FileSegments) Mark(maxLSN uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if maxLSN > d.maxLSN {
		d.maxLSN = maxLSN
	}
	if d.written < d.segmentBytes {
		return
	}
	// The pass's bytes are already synced (Mark follows Sync), so the
	// sealed file is durable as written.
	if err := d.f.Close(); err != nil {
		panic(fmt.Sprintf("wal: sealing segment: %v", err))
	}
	d.sealed = append(d.sealed, fileSegment{path: filepath.Join(d.dir, segName(d.seq)), maxLSN: d.maxLSN})
	d.seq++
	if err := d.openActive(); err != nil {
		panic(fmt.Sprintf("wal: rotating segment: %v", err))
	}
}

// Truncate implements SegmentDevice.
func (d *FileSegments) Truncate(belowLSN uint64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	kept := d.sealed[:0]
	dropped := 0
	for _, s := range d.sealed {
		if s.maxLSN <= belowLSN {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				panic(fmt.Sprintf("wal: truncating segment: %v", err))
			}
			dropped++
			continue
		}
		kept = append(kept, s)
	}
	d.sealed = kept
	// Sync the directory so the unlinks are durable: a crash must not
	// resurrect segments the truncation rule already dropped.
	if dropped > 0 {
		if err := syncDir(d.dir); err != nil {
			panic(fmt.Sprintf("wal: syncing directory after truncation: %v", err))
		}
	}
	return dropped
}

// listSegmentFiles returns the segment file paths under dir in sequence
// order.
func listSegmentFiles(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// LoadFileSegments reads every segment under dir, in sequence order — the
// recovery input matching a FileSegments device.
func LoadFileSegments(dir string) ([][]byte, error) {
	names, err := listSegmentFiles(dir)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		if len(data) == 0 {
			continue
		}
		out = append(out, data)
	}
	return out, nil
}

var (
	_ SegmentDevice = (*MemSegments)(nil)
	_ SegmentDevice = (*FileSegments)(nil)
)
