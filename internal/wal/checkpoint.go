package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Checkpoint image format.
//
// A checkpoint is a set of CRC'd pages — each page a run of (key, value)
// records for one table — plus a manifest committed atomically last. The
// manifest carries the two LSNs that make a fuzzy image usable:
//
//   - StartLSN: the last assigned LSN when the walk began. The
//     checkpointer forces the durable frontier up to StartLSN before
//     copying anything, so every record in the image — including chunks
//     read through the snapshot path, which snapshots at the durable
//     frontier — reflects a committed state at some LSN ≥ the state as
//     of StartLSN, and replaying the log tail from StartLSN+1 cannot
//     miss an update the image lacks.
//   - TailLSN: the last assigned LSN when the walk ended. Every record in
//     the image reflects a committed state at some LSN ≤ TailLSN, and the
//     checkpointer waits for the durable frontier to reach TailLSN before
//     committing the manifest — so every LSN the image may already
//     include is on the device, and replaying it again over the image is
//     the idempotent re-application of a full after-image.
//
// The manifest also records, per table, the page count, record count and
// a CRC folded over the pages' CRCs, so a checkpoint whose pages were
// torn or reordered fails validation as a unit and recovery falls back
// to the previous checkpoint.

// Page wire format (little-endian):
//
//	magic      uint16  — pageMagic
//	reserved   uint16
//	table      uint32  — DB table index
//	count      uint32  — records in the payload
//	payloadLen uint32  — payload bytes following the header
//	crc        uint32  — CRC-32C over header[2:16] + payload
//	payload    — count × (key uint64 | valLen uint32 | val)
const (
	pageMagic  = 0x57A2
	pageHeader = 20
)

// manifestMagic/manifestVersion head the manifest encoding.
const (
	manifestMagic   = 0x4F434B50 // "OCKP"
	manifestVersion = 1
	manifestHeader  = 28 // magic + version + startLSN + tailLSN + nTables
	tableImageSize  = 20 // table + pages + records + crc
)

// TableImage is one table's slice of a checkpoint: how many pages and
// records the image holds for it, and a CRC folded over those pages'
// CRCs in order.
type TableImage struct {
	Table   int
	Pages   int
	Records uint64
	CRC     uint32
}

// Manifest describes one committed checkpoint; see the package-section
// comment above for the StartLSN/TailLSN contract.
type Manifest struct {
	StartLSN uint64
	TailLSN  uint64
	Tables   []TableImage
}

// Checkpoint is a loaded, validated checkpoint image.
type Checkpoint struct {
	Manifest Manifest
	Pages    [][]byte
}

// CheckpointWriter receives one checkpoint's pages and then either
// commits them under a manifest or abandons them. Commit is the atomic
// publication point: a checkpoint with no durable manifest does not
// exist as far as Load is concerned.
type CheckpointWriter interface {
	Page(p []byte) error
	Commit(m *Manifest) error
	Abort()
}

// CheckpointStore persists checkpoints. Load returns the newest
// checkpoint that validates (manifest decodes, page CRCs match, per-table
// folds match) — falling back past a torn or corrupt newest checkpoint to
// the previous one — or (nil, nil) when no valid checkpoint exists.
// Stores retain the two newest committed checkpoints so that truncating
// the log against the previous checkpoint's StartLSN (see the truncation
// rule in engine.Checkpointer) never strands recovery without a usable
// image.
type CheckpointStore interface {
	Begin() (CheckpointWriter, error)
	Load() (*Checkpoint, error)
}

// checkpointsRetained is the store retention count; see CheckpointStore.
const checkpointsRetained = 2

// PageBuilder accumulates records for one table into a page. The zero
// value is unusable; call Reset first. The builder reuses one internal
// buffer across pages, so the slice returned by Seal is valid only until
// the next Reset — stores copy it.
type PageBuilder struct {
	buf   []byte
	table int
	count int
}

// Reset starts a fresh page for table, discarding any unsealed content.
func (b *PageBuilder) Reset(table int) {
	b.buf = append(b.buf[:0], make([]byte, pageHeader)...)
	b.table = table
	b.count = 0
}

// Add appends one record to the page, copying val.
func (b *PageBuilder) Add(key uint64, val []byte) {
	var entry [12]byte
	binary.LittleEndian.PutUint64(entry[0:8], key)
	binary.LittleEndian.PutUint32(entry[8:12], uint32(len(val)))
	b.buf = append(b.buf, entry[:]...)
	b.buf = append(b.buf, val...)
	b.count++
}

// Count reports how many records the current page holds.
func (b *PageBuilder) Count() int { return b.count }

// Seal fills in the header and CRC and returns the encoded page. The
// returned slice aliases the builder's buffer.
func (b *PageBuilder) Seal() []byte {
	h := b.buf
	payload := len(b.buf) - pageHeader
	binary.LittleEndian.PutUint16(h[0:2], pageMagic)
	binary.LittleEndian.PutUint16(h[2:4], 0)
	binary.LittleEndian.PutUint32(h[4:8], uint32(b.table))
	binary.LittleEndian.PutUint32(h[8:12], uint32(b.count))
	binary.LittleEndian.PutUint32(h[12:16], uint32(payload))
	crc := crc32.Checksum(h[2:16], crcTable)
	crc = crc32.Update(crc, crcTable, h[pageHeader:])
	binary.LittleEndian.PutUint32(h[16:20], crc)
	return b.buf
}

// FoldPageCRC folds a sealed page's CRC into a per-table running fold —
// the value Manifest.Tables[i].CRC records. Folding the page CRCs in
// order (rather than summing them) makes the fold sensitive to page
// reordering as well as corruption.
func FoldPageCRC(fold uint32, page []byte) uint32 {
	return crc32.Update(fold, crcTable, page[16:20])
}

// verifyPage checks a page's structure and CRC without decoding entries.
// It never panics on arbitrary input.
func verifyPage(p []byte) (table int, count int, crc uint32, ok bool) {
	if len(p) < pageHeader {
		return 0, 0, 0, false
	}
	if binary.LittleEndian.Uint16(p[0:2]) != pageMagic {
		return 0, 0, 0, false
	}
	payload := int(binary.LittleEndian.Uint32(p[12:16]))
	if payload < 0 || len(p) != pageHeader+payload {
		return 0, 0, 0, false
	}
	count = int(binary.LittleEndian.Uint32(p[8:12]))
	if count*12 > payload {
		return 0, 0, 0, false
	}
	crc = crc32.Checksum(p[2:16], crcTable)
	crc = crc32.Update(crc, crcTable, p[pageHeader:])
	if crc != binary.LittleEndian.Uint32(p[16:20]) {
		return 0, 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(p[4:8])), count, crc, true
}

// DecodePage validates a page and calls fn for each record. val aliases
// the page buffer. It never panics on arbitrary input.
func DecodePage(p []byte, fn func(key uint64, val []byte) error) (table int, count int, err error) {
	table, count, _, ok := verifyPage(p)
	if !ok {
		return 0, 0, errors.New("wal: invalid checkpoint page")
	}
	data := p[pageHeader:]
	for i := 0; i < count; i++ {
		if len(data) < 12 {
			return 0, 0, errors.New("wal: truncated checkpoint page entry")
		}
		key := binary.LittleEndian.Uint64(data[0:8])
		vlen := int(binary.LittleEndian.Uint32(data[8:12]))
		if vlen < 0 || len(data) < 12+vlen {
			return 0, 0, errors.New("wal: truncated checkpoint page value")
		}
		if err := fn(key, data[12:12+vlen:12+vlen]); err != nil {
			return 0, 0, err
		}
		data = data[12+vlen:]
	}
	if len(data) != 0 {
		return 0, 0, errors.New("wal: trailing bytes in checkpoint page")
	}
	return table, count, nil
}

// EncodeManifest serializes m. Layout: magic u32, version u32, startLSN
// u64, tailLSN u64, nTables u32, nTables × TableImage, crc u32 over all
// preceding bytes.
func EncodeManifest(m *Manifest) []byte {
	buf := make([]byte, manifestHeader+len(m.Tables)*tableImageSize+4)
	binary.LittleEndian.PutUint32(buf[0:4], manifestMagic)
	binary.LittleEndian.PutUint32(buf[4:8], manifestVersion)
	binary.LittleEndian.PutUint64(buf[8:16], m.StartLSN)
	binary.LittleEndian.PutUint64(buf[16:24], m.TailLSN)
	binary.LittleEndian.PutUint32(buf[24:28], uint32(len(m.Tables)))
	p := buf[manifestHeader:]
	for _, t := range m.Tables {
		binary.LittleEndian.PutUint32(p[0:4], uint32(t.Table))
		binary.LittleEndian.PutUint32(p[4:8], uint32(t.Pages))
		binary.LittleEndian.PutUint64(p[8:16], t.Records)
		binary.LittleEndian.PutUint32(p[16:20], t.CRC)
		p = p[tableImageSize:]
	}
	crc := crc32.Checksum(buf[:len(buf)-4], crcTable)
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc)
	return buf
}

// DecodeManifest parses and validates a manifest encoding. It never
// panics on arbitrary input; any structural or checksum mismatch returns
// an error.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < manifestHeader+4 {
		return nil, errors.New("wal: manifest too short")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != manifestMagic {
		return nil, errors.New("wal: bad manifest magic")
	}
	if binary.LittleEndian.Uint32(data[4:8]) != manifestVersion {
		return nil, errors.New("wal: unknown manifest version")
	}
	n := int(binary.LittleEndian.Uint32(data[24:28]))
	if n < 0 || len(data) != manifestHeader+n*tableImageSize+4 {
		return nil, errors.New("wal: manifest length mismatch")
	}
	crc := crc32.Checksum(data[:len(data)-4], crcTable)
	if crc != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, errors.New("wal: manifest checksum mismatch")
	}
	m := &Manifest{
		StartLSN: binary.LittleEndian.Uint64(data[8:16]),
		TailLSN:  binary.LittleEndian.Uint64(data[16:24]),
		Tables:   make([]TableImage, 0, n),
	}
	p := data[manifestHeader:]
	for i := 0; i < n; i++ {
		m.Tables = append(m.Tables, TableImage{
			Table:   int(binary.LittleEndian.Uint32(p[0:4])),
			Pages:   int(binary.LittleEndian.Uint32(p[4:8])),
			Records: binary.LittleEndian.Uint64(p[8:16]),
			CRC:     binary.LittleEndian.Uint32(p[16:20]),
		})
		p = p[tableImageSize:]
	}
	return m, nil
}

// validateCheckpoint cross-checks a manifest against its pages: page
// sequence grouped by table in manifest order, per-page CRCs valid, and
// per-table folds and record counts matching the manifest.
func validateCheckpoint(m *Manifest, pages [][]byte) error {
	idx := 0
	for _, t := range m.Tables {
		var fold uint32
		var records uint64
		for i := 0; i < t.Pages; i++ {
			if idx >= len(pages) {
				return errors.New("wal: checkpoint missing pages")
			}
			p := pages[idx]
			table, count, _, ok := verifyPage(p)
			if !ok {
				return errors.New("wal: corrupt checkpoint page")
			}
			if table != t.Table {
				return errors.New("wal: checkpoint page table mismatch")
			}
			fold = FoldPageCRC(fold, p)
			records += uint64(count)
			idx++
		}
		if fold != t.CRC {
			return errors.New("wal: checkpoint table CRC mismatch")
		}
		if records != t.Records {
			return errors.New("wal: checkpoint table record count mismatch")
		}
	}
	if idx != len(pages) {
		return errors.New("wal: checkpoint has extra pages")
	}
	return nil
}

// SplitPages re-splits a concatenation of sealed pages (the on-disk
// layout of DirCheckpointStore's pages file) into individual pages. It
// never panics on arbitrary input.
func SplitPages(data []byte) ([][]byte, error) {
	var pages [][]byte
	for len(data) > 0 {
		if len(data) < pageHeader {
			return nil, errors.New("wal: truncated page stream")
		}
		payload := int(binary.LittleEndian.Uint32(data[12:16]))
		if payload < 0 || len(data) < pageHeader+payload {
			return nil, errors.New("wal: truncated page stream")
		}
		pages = append(pages, data[:pageHeader+payload:pageHeader+payload])
		data = data[pageHeader+payload:]
	}
	return pages, nil
}

// memCheckpoint is one committed checkpoint held by MemCheckpointStore,
// kept in encoded form so Load exercises the same decode/validate path a
// disk store does.
type memCheckpoint struct {
	manifest []byte
	pages    [][]byte
}

// MemCheckpointStore is an in-memory CheckpointStore for tests and
// experiments. Its crash-simulation helpers mutate the newest checkpoint
// the way a torn or corrupted commit would.
type MemCheckpointStore struct {
	mu        sync.Mutex
	committed []*memCheckpoint // oldest → newest, at most checkpointsRetained
}

// NewMemCheckpointStore returns an empty in-memory store.
func NewMemCheckpointStore() *MemCheckpointStore { return &MemCheckpointStore{} }

// Begin implements CheckpointStore.
func (s *MemCheckpointStore) Begin() (CheckpointWriter, error) {
	return &memCkWriter{store: s}, nil
}

// Load implements CheckpointStore.
func (s *MemCheckpointStore) Load() (*Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.committed) - 1; i >= 0; i-- {
		ck := s.committed[i]
		m, err := DecodeManifest(ck.manifest)
		if err != nil {
			continue
		}
		if validateCheckpoint(m, ck.pages) != nil {
			continue
		}
		return &Checkpoint{Manifest: *m, Pages: ck.pages}, nil
	}
	return nil, nil
}

// Count reports how many committed checkpoints the store retains.
func (s *MemCheckpointStore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.committed)
}

// Manifests decodes the retained manifests, oldest → newest, skipping
// any that no longer decode (after crash-simulation corruption).
func (s *MemCheckpointStore) Manifests() []Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Manifest, 0, len(s.committed))
	for _, ck := range s.committed {
		if m, err := DecodeManifest(ck.manifest); err == nil {
			out = append(out, *m)
		}
	}
	return out
}

// DropNewest simulates a crash after the newest checkpoint's pages were
// written but before its manifest: the checkpoint vanishes as a unit
// (pages without a manifest are invisible to Load).
func (s *MemCheckpointStore) DropNewest() {
	s.mu.Lock()
	if n := len(s.committed); n > 0 {
		s.committed = s.committed[:n-1]
	}
	s.mu.Unlock()
}

// CorruptNewestManifest simulates a torn manifest write by flipping a
// byte in the newest checkpoint's manifest.
func (s *MemCheckpointStore) CorruptNewestManifest() {
	s.mu.Lock()
	if n := len(s.committed); n > 0 {
		man := append([]byte(nil), s.committed[n-1].manifest...)
		man[len(man)/2] ^= 0xFF
		s.committed[n-1].manifest = man
	}
	s.mu.Unlock()
}

// CorruptNewestPage simulates page corruption in the newest checkpoint.
func (s *MemCheckpointStore) CorruptNewestPage() {
	s.mu.Lock()
	if n := len(s.committed); n > 0 && len(s.committed[n-1].pages) > 0 {
		ck := s.committed[n-1]
		p := append([]byte(nil), ck.pages[0]...)
		p[len(p)/2] ^= 0xFF
		ck.pages[0] = p
	}
	s.mu.Unlock()
}

// memCkWriter accumulates one checkpoint for a MemCheckpointStore.
type memCkWriter struct {
	store *MemCheckpointStore
	pages [][]byte
}

// Page implements CheckpointWriter, copying p.
func (w *memCkWriter) Page(p []byte) error {
	w.pages = append(w.pages, append([]byte(nil), p...))
	return nil
}

// Commit implements CheckpointWriter.
func (w *memCkWriter) Commit(m *Manifest) error {
	s := w.store
	s.mu.Lock()
	s.committed = append(s.committed, &memCheckpoint{manifest: EncodeManifest(m), pages: w.pages})
	if len(s.committed) > checkpointsRetained {
		s.committed = s.committed[len(s.committed)-checkpointsRetained:]
	}
	s.mu.Unlock()
	w.pages = nil
	return nil
}

// Abort implements CheckpointWriter.
func (w *memCkWriter) Abort() { w.pages = nil }

// DirCheckpointStore persists checkpoints under a directory: checkpoint
// N is a pages file ck-<N>.pages (sealed pages concatenated) plus a
// manifest ck-<N>.manifest written and renamed into place last — the
// rename is the atomic commit point. The two newest committed
// checkpoints are retained; older ones are deleted at commit.
type DirCheckpointStore struct {
	dir string

	mu  sync.Mutex
	seq int
}

// ckName formats a checkpoint file name; fixed-width decimal keeps
// lexicographic order equal to numeric order.
func ckName(seq int, ext string) string { return fmt.Sprintf("ck-%08d.%s", seq, ext) }

// OpenDirCheckpointStore opens (creating if needed) a directory-backed
// store, continuing after the highest existing sequence number.
func OpenDirCheckpointStore(dir string) (*DirCheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	manifests, err := filepath.Glob(filepath.Join(dir, "ck-*.manifest"))
	if err != nil {
		return nil, err
	}
	// Continue past the highest existing sequence number. An unparseable
	// matching name fails Open outright: silently treating it as seq 0
	// would let Begin's O_TRUNC overwrite a live checkpoint's pages file
	// while its manifest remains, invalidating that checkpoint.
	seq := 0
	for _, name := range manifests {
		base := filepath.Base(name)
		var n int
		if _, err := fmt.Sscanf(base, "ck-%d.manifest", &n); err != nil {
			return nil, fmt.Errorf("wal: unparseable checkpoint manifest name %q", base)
		}
		if n+1 > seq {
			seq = n + 1
		}
	}
	return &DirCheckpointStore{dir: dir, seq: seq}, nil
}

// Begin implements CheckpointStore.
func (s *DirCheckpointStore) Begin() (CheckpointWriter, error) {
	s.mu.Lock()
	seq := s.seq
	s.seq++
	s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.dir, ckName(seq, "pages")), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &dirCkWriter{store: s, seq: seq, pages: f}, nil
}

// Load implements CheckpointStore.
func (s *DirCheckpointStore) Load() (*Checkpoint, error) {
	manifests, err := filepath.Glob(filepath.Join(s.dir, "ck-*.manifest"))
	if err != nil {
		return nil, err
	}
	sort.Strings(manifests)
	for i := len(manifests) - 1; i >= 0; i-- {
		manData, err := os.ReadFile(manifests[i])
		if err != nil {
			continue
		}
		m, err := DecodeManifest(manData)
		if err != nil {
			continue
		}
		pageData, err := os.ReadFile(pagesPathFor(manifests[i]))
		if err != nil {
			continue
		}
		pages, err := SplitPages(pageData)
		if err != nil {
			continue
		}
		if validateCheckpoint(m, pages) != nil {
			continue
		}
		return &Checkpoint{Manifest: *m, Pages: pages}, nil
	}
	return nil, nil
}

// pagesPathFor maps a manifest path to its pages file path.
func pagesPathFor(manifestPath string) string {
	return manifestPath[:len(manifestPath)-len("manifest")] + "pages"
}

// dirCkWriter streams one checkpoint's pages to disk for a
// DirCheckpointStore.
type dirCkWriter struct {
	store *DirCheckpointStore
	seq   int
	pages *os.File
}

// Page implements CheckpointWriter.
func (w *dirCkWriter) Page(p []byte) error {
	_, err := w.pages.Write(p)
	return err
}

// Commit implements CheckpointWriter: sync the pages, then publish the
// manifest via write-to-temp + fsync + rename, then prune to the
// retention count.
func (w *dirCkWriter) Commit(m *Manifest) error {
	if err := w.pages.Sync(); err != nil {
		return err
	}
	if err := w.pages.Close(); err != nil {
		return err
	}
	dir := w.store.dir
	tmp := filepath.Join(dir, ckName(w.seq, "manifest.tmp"))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(EncodeManifest(m)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckName(w.seq, "manifest"))); err != nil {
		return err
	}
	// The rename is the commit point, but it is durable only once the
	// directory itself is synced — and the caller treats a nil return as
	// authorization to truncate the log below this checkpoint's
	// predecessor, so durability must be established before returning.
	// The same sync persists the pages file's directory entry (created
	// in Begin).
	if err := syncDir(dir); err != nil {
		return err
	}
	// Prune: keep the newest checkpointsRetained committed checkpoints,
	// syncing the directory again so the unlinks are durable too.
	manifests, err := filepath.Glob(filepath.Join(dir, "ck-*.manifest"))
	if err != nil {
		return err
	}
	sort.Strings(manifests)
	pruned := false
	for i := 0; i < len(manifests)-checkpointsRetained; i++ {
		os.Remove(manifests[i])
		os.Remove(pagesPathFor(manifests[i]))
		pruned = true
	}
	if pruned {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// Abort implements CheckpointWriter.
func (w *dirCkWriter) Abort() {
	w.pages.Close()
	os.Remove(filepath.Join(w.store.dir, ckName(w.seq, "pages")))
}

var (
	_ CheckpointStore = (*MemCheckpointStore)(nil)
	_ CheckpointStore = (*DirCheckpointStore)(nil)
)
