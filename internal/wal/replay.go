package wal

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/storage"
)

// ReplayStats reports what a replay scan found and applied.
type ReplayStats struct {
	// Scanned counts well-formed records in the image; Applied those
	// actually replayed (the contiguous LSN prefix above the checkpoint);
	// Skipped those at or below the checkpoint LSN, already covered by
	// the checkpoint image.
	Scanned int
	Applied int
	Skipped int
	// AppliedLSN is the highest LSN replayed (0 when nothing was).
	AppliedLSN uint64
	// Torn reports that the scan stopped before the end of the image —
	// a truncated or corrupted tail, the expected shape after a crash.
	Torn bool
}

// Replay rebuilds committed state from a log image onto db, which must
// hold the same initial (pre-run) contents the logged run started from.
//
// The image may be torn anywhere: the scan stops at the first record
// that is incomplete or fails its checksum. Because the flusher writes
// appender buffers in steal order, not LSN order, a torn image can also
// hold an LSN with a missing predecessor; those records were never
// acknowledged (acknowledgment is in LSN order), so Replay applies only
// the longest contiguous LSN prefix starting at 1. The result equals the
// state produced by running exactly that prefix of the commit order —
// a dependency-closed set, since any transaction a record depends on has
// a smaller LSN — and it contains every transaction the log's owner
// acknowledged under the Group policy.
//
// Replay assumes the image is a whole log (first LSN is 1); replaying a
// log continued across engine restarts onto the matching base state
// works identically because LSNs keep ascending across sessions.
func Replay(data []byte, db *storage.DB) ReplayStats {
	return ReplaySegments([][]byte{data}, 0, 1, db)
}

// ReplaySegments is Replay over a segmented log: it scans every segment
// (in parallel when workers > 1), merges the records, and applies the
// contiguous LSN prefix starting at after+1 — skipping records at or
// below after, which a checkpoint image already covers. Segment
// rotation happens only at sync boundaries, so each segment is a
// self-contained stream of whole records; a torn tail in any segment
// marks the stats Torn, and records above a torn point are excluded the
// same way the single-image scan excludes them.
//
// Records with LSN ≤ after can appear in surviving segments even after
// truncation (the flusher writes in steal order, so a late segment can
// carry early LSNs); skipping them — rather than re-applying — matters
// only for economy, since every log record is a full after-image that
// the image-covered prefix already reflects, but it keeps AppliedLSN an
// exact continuation: AppliedLSN == after + Applied whenever anything
// applies.
//
// With workers > 1, the applied writes are partitioned by (table, key)
// hash across workers — per-key application order is preserved, and
// since redo records are full after-images with no cross-key reads, the
// final state is byte-identical to the serial replay. A merge barrier
// joins the workers before returning. Which records to apply (the
// contiguous, validated prefix) is decided serially before any write
// lands, so parallel and serial replay always pick the same prefix.
func ReplaySegments(segs [][]byte, after uint64, workers int, db *storage.DB) ReplayStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st ReplayStats

	// Scan: each segment independently, stopping that segment at its
	// first malformed record. Results are merged in segment order so the
	// merged sequence is deterministic regardless of worker count.
	scanned := make([][]decoded, len(segs))
	torn := make([]bool, len(segs))
	scanOne := func(i int) {
		data := segs[i]
		var recs []decoded
		for len(data) > 0 {
			rec, n, ok := decodeRecord(data)
			if !ok {
				torn[i] = true
				break
			}
			recs = append(recs, rec)
			data = data[n:]
		}
		scanned[i] = recs
	}
	if workers > 1 && len(segs) > 1 {
		var wg sync.WaitGroup
		next := make(chan int, len(segs))
		for i := range segs {
			next <- i
		}
		close(next)
		n := workers
		if n > len(segs) {
			n = len(segs)
		}
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					scanOne(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range segs {
			scanOne(i)
		}
	}

	var recs []decoded
	for i := range scanned {
		recs = append(recs, scanned[i]...)
		st.Torn = st.Torn || torn[i]
	}
	st.Scanned = len(recs)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].lsn < recs[j].lsn })

	// Select and validate the applicable prefix serially: contiguous
	// LSNs from after+1, every write landable. A record that cannot be
	// applied (wrong schema, corruption that survived the CRC) ends the
	// prefix exactly where the serial replay would have stopped.
	next := after + 1
	apply := recs[:0]
	for _, rec := range recs {
		if rec.lsn <= after {
			st.Skipped++
			continue
		}
		if rec.lsn != next {
			break
		}
		bad := false
		for _, w := range rec.writes {
			t := int(w.table)
			if t < 0 || t >= db.NumTables() || storage.CheckInsert(db.Table(t), w.key, w.val) != nil {
				bad = true
				break
			}
		}
		if bad {
			st.Torn = true
			break
		}
		apply = append(apply, rec)
		next++
	}
	if len(apply) == 0 {
		return st
	}
	st.Applied = len(apply)
	st.AppliedLSN = apply[len(apply)-1].lsn

	if workers <= 1 {
		for _, rec := range apply {
			applyRecord(db, rec)
		}
		return st
	}

	// Partition writes by (table, key) hash, iterating records in LSN
	// order so each partition sees its keys' writes in LSN order.
	buckets := make([][]redoWrite, workers)
	for _, rec := range apply {
		for _, w := range rec.writes {
			b := int(writeHash(w.table, w.key) % uint64(workers))
			buckets[b] = append(buckets[b], w)
		}
	}
	var wg sync.WaitGroup
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(bucket []redoWrite) {
			defer wg.Done()
			for _, w := range bucket {
				if err := db.Table(int(w.table)).Insert(w.key, w.val); err != nil {
					// CheckInsert validated this exact write above.
					panic(fmt.Sprintf("wal: replay insert failed after validation: %v", err))
				}
			}
		}(bucket)
	}
	wg.Wait()
	return st
}

// applyRecord lands one validated record's writes.
func applyRecord(db *storage.DB, rec decoded) {
	for _, w := range rec.writes {
		if err := db.Table(int(w.table)).Insert(w.key, w.val); err != nil {
			panic(fmt.Sprintf("wal: replay insert failed after validation: %v", err))
		}
	}
}

// writeHash mixes (table, key) into the partition hash. The same mix
// storage.GrowTable uses for shard selection, salted with the table.
func writeHash(table int32, key uint64) uint64 {
	return (key ^ (uint64(uint32(table)) * 0xA24BAED4963EE407)) * 0x9E3779B97F4A7C15
}

// RecoverStats reports one recovery: what the checkpoint restored and
// what the log tail replayed on top.
type RecoverStats struct {
	// UsedCheckpoint reports that a valid checkpoint was loaded; when
	// false, recovery was a full log replay from LSN 1.
	UsedCheckpoint bool
	// StartLSN/TailLSN echo the loaded manifest (0 when none).
	StartLSN uint64
	TailLSN  uint64
	// PagesRestored/RecordsRestored count the checkpoint image.
	PagesRestored   int
	RecordsRestored int
	// Replay is the log-tail replay on top of the image.
	Replay ReplayStats
}

// Recover rebuilds committed state onto db: load the newest valid
// checkpoint from store (nil store, or a store with no valid
// checkpoint, means none), restore its pages in parallel, then replay
// the committed prefix of the log tail above the checkpoint's StartLSN
// with ReplaySegments. db must hold the same initial (pre-run) contents
// the logged run started from — checkpoint pages and redo records both
// overwrite, so restoring onto the base schema is idempotent.
//
// Restoring pages in parallel is safe because a checkpoint image holds
// each (table, key) at most once: pages never conflict on a record.
func Recover(store CheckpointStore, segs [][]byte, db *storage.DB, workers int) (RecoverStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st RecoverStats
	if store != nil {
		ck, err := store.Load()
		if err != nil {
			return st, err
		}
		if ck != nil {
			st.UsedCheckpoint = true
			st.StartLSN = ck.Manifest.StartLSN
			st.TailLSN = ck.Manifest.TailLSN
			st.PagesRestored = len(ck.Pages)
			counts := make([]int, len(ck.Pages))
			errs := make([]error, len(ck.Pages))
			var wg sync.WaitGroup
			n := workers
			if n > len(ck.Pages) {
				n = len(ck.Pages)
			}
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(ck.Pages); i += n {
						counts[i], errs[i] = restorePage(db, ck.Pages[i])
					}
				}(w)
			}
			wg.Wait()
			for i := range errs {
				if errs[i] != nil {
					return st, errs[i]
				}
				st.RecordsRestored += counts[i]
			}
		}
	}
	st.Replay = ReplaySegments(segs, st.StartLSN, workers, db)
	return st, nil
}

// restorePage lands one checkpoint page's records onto db.
func restorePage(db *storage.DB, p []byte) (int, error) {
	table, _, _, ok := verifyPage(p)
	if !ok || table < 0 || table >= db.NumTables() {
		return 0, fmt.Errorf("wal: checkpoint page for unknown table %d", table)
	}
	t := db.Table(table)
	_, count, err := DecodePage(p, func(key uint64, val []byte) error {
		return t.Insert(key, val)
	})
	return count, err
}
