package wal

import (
	"sort"

	"repro/internal/storage"
)

// ReplayStats reports what a replay scan found and applied.
type ReplayStats struct {
	// Scanned counts well-formed records in the image; Applied those
	// actually replayed (the contiguous LSN prefix).
	Scanned int
	Applied int
	// AppliedLSN is the highest LSN replayed (0 when nothing was).
	AppliedLSN uint64
	// Torn reports that the scan stopped before the end of the image —
	// a truncated or corrupted tail, the expected shape after a crash.
	Torn bool
}

// Replay rebuilds committed state from a log image onto db, which must
// hold the same initial (pre-run) contents the logged run started from.
//
// The image may be torn anywhere: the scan stops at the first record
// that is incomplete or fails its checksum. Because the flusher writes
// appender buffers in steal order, not LSN order, a torn image can also
// hold an LSN with a missing predecessor; those records were never
// acknowledged (acknowledgment is in LSN order), so Replay applies only
// the longest contiguous LSN prefix starting at 1. The result equals the
// state produced by running exactly that prefix of the commit order —
// a dependency-closed set, since any transaction a record depends on has
// a smaller LSN — and it contains every transaction the log's owner
// acknowledged under the Group policy.
//
// Replay assumes the image is a whole log (first LSN is 1); replaying a
// log continued across engine restarts onto the matching base state
// works identically because LSNs keep ascending across sessions.
func Replay(data []byte, db *storage.DB) ReplayStats {
	var st ReplayStats
	var recs []decoded
	for len(data) > 0 {
		rec, n, ok := decodeRecord(data)
		if !ok {
			st.Torn = true
			break
		}
		recs = append(recs, rec)
		data = data[n:]
	}
	st.Scanned = len(recs)
	sort.Slice(recs, func(i, j int) bool { return recs[i].lsn < recs[j].lsn })
	next := uint64(1)
	for _, rec := range recs {
		if rec.lsn != next {
			break
		}
		// A checksum-valid record can still carry contents this database
		// has no home for — a log from a different schema, or corruption
		// that survived the CRC. That is torn-tail territory, not a
		// programming error: stop the scan at the boundary of what can be
		// applied instead of panicking, so recovery keeps the contiguous
		// prefix applied so far. Table ids are checked before any of the
		// record's writes land, keeping the applied prefix whole-record.
		for _, w := range rec.writes {
			if t := int(w.table); t < 0 || t >= db.NumTables() {
				st.Torn = true
				return st
			}
		}
		for _, w := range rec.writes {
			if err := db.Table(int(w.table)).Insert(w.key, w.val); err != nil {
				st.Torn = true
				return st
			}
		}
		st.Applied++
		st.AppliedLSN = rec.lsn
		next++
	}
	return st
}
