package wal

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

// fuzzImage builds a small valid log image to seed the corpus: three
// records with in-range and out-of-range contents, so mutations start
// from bytes that exercise the full decode path.
func fuzzImage() []byte {
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	img := appendRecord(nil, 1, []redoWrite{{table: 0, key: 0, val: val}})
	img = appendRecord(img, 2, []redoWrite{
		{table: 0, key: 1, val: val},
		{table: 0, key: 2, val: nil},
	})
	img = appendRecord(img, 3, []redoWrite{{table: 1, key: 99, val: val}})
	return img
}

// FuzzWALReplay feeds arbitrary (truncated, bit-flipped, synthesized)
// log images to Replay and asserts the recovery contract: it never
// panics, never applies more records than it scanned, keeps the applied
// count and frontier consistent, and a clean full image of n records
// applies exactly n. Corruption may surface as a torn scan, never as a
// crash — recovery runs on exactly the bytes a crash left behind.
func FuzzWALReplay(f *testing.F) {
	img := fuzzImage()
	f.Add(img)
	f.Add(img[:len(img)-3])   // torn tail
	f.Add(img[recHeader:])    // missing head record: LSN prefix gap
	f.Add([]byte{})           // empty image
	f.Add([]byte{0xA1, 0x57}) // magic fragment
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// Valid manifest bytes, so mutations explore the manifest decoder too.
	f.Add(EncodeManifest(&Manifest{StartLSN: 3, TailLSN: 5, Tables: []TableImage{
		{Table: 0, Pages: 1, Records: 2, CRC: 7},
	}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		db := storage.NewDB()
		db.Create(storage.Layout{Name: "t", NumRecords: 8, RecordSize: 8})
		st := Replay(data, db)
		if st.Applied > st.Scanned {
			t.Fatalf("applied %d of %d scanned", st.Applied, st.Scanned)
		}
		if st.Applied < 0 || st.Scanned < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
		// LSNs start at 1 and the applied set is the contiguous prefix,
		// so the frontier always equals the applied count.
		if st.AppliedLSN != uint64(st.Applied) {
			t.Fatalf("frontier %d does not match applied count %d", st.AppliedLSN, st.Applied)
		}

		// Segmented replay above an arbitrary checkpoint LSN: chop the
		// same bytes into segments at arbitrary points (harsher than
		// production, where rotation only happens at record boundaries)
		// and replay in parallel. The contract is unchanged: never panic,
		// and the frontier is an exact continuation of the checkpoint.
		var after uint64
		if len(data) > 0 {
			after = uint64(data[0] % 5)
		}
		var segs [][]byte
		for beg := 0; beg < len(data); beg += 37 {
			end := beg + 37
			if end > len(data) {
				end = len(data)
			}
			segs = append(segs, data[beg:end])
		}
		db2 := storage.NewDB()
		db2.Create(storage.Layout{Name: "t", NumRecords: 8, RecordSize: 8})
		st2 := ReplaySegments(segs, after, 2, db2)
		if st2.Applied > st2.Scanned || st2.Skipped > st2.Scanned {
			t.Fatalf("segmented stats inconsistent: %+v", st2)
		}
		if st2.Applied > 0 && st2.AppliedLSN != after+uint64(st2.Applied) {
			t.Fatalf("segmented frontier %d does not continue from %d with %d applied",
				st2.AppliedLSN, after, st2.Applied)
		}
		if st2.Applied == 0 && st2.AppliedLSN != 0 {
			t.Fatalf("nothing applied but frontier is %d", st2.AppliedLSN)
		}

		// Manifest decoding on arbitrary bytes: never panics, and success
		// implies a structurally consistent result.
		if m, err := DecodeManifest(data); err == nil {
			if m == nil {
				t.Fatal("DecodeManifest returned nil manifest without error")
			}
			if reenc := EncodeManifest(m); !bytes.Equal(reenc, data) {
				t.Fatal("decoded manifest does not re-encode to its input")
			}
		}
	})
}
