package wal

import (
	"testing"

	"repro/internal/storage"
)

// fuzzImage builds a small valid log image to seed the corpus: three
// records with in-range and out-of-range contents, so mutations start
// from bytes that exercise the full decode path.
func fuzzImage() []byte {
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	img := appendRecord(nil, 1, []redoWrite{{table: 0, key: 0, val: val}})
	img = appendRecord(img, 2, []redoWrite{
		{table: 0, key: 1, val: val},
		{table: 0, key: 2, val: nil},
	})
	img = appendRecord(img, 3, []redoWrite{{table: 1, key: 99, val: val}})
	return img
}

// FuzzWALReplay feeds arbitrary (truncated, bit-flipped, synthesized)
// log images to Replay and asserts the recovery contract: it never
// panics, never applies more records than it scanned, keeps the applied
// count and frontier consistent, and a clean full image of n records
// applies exactly n. Corruption may surface as a torn scan, never as a
// crash — recovery runs on exactly the bytes a crash left behind.
func FuzzWALReplay(f *testing.F) {
	img := fuzzImage()
	f.Add(img)
	f.Add(img[:len(img)-3])   // torn tail
	f.Add(img[recHeader:])    // missing head record: LSN prefix gap
	f.Add([]byte{})           // empty image
	f.Add([]byte{0xA1, 0x57}) // magic fragment
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		db := storage.NewDB()
		db.Create(storage.Layout{Name: "t", NumRecords: 8, RecordSize: 8})
		st := Replay(data, db)
		if st.Applied > st.Scanned {
			t.Fatalf("applied %d of %d scanned", st.Applied, st.Scanned)
		}
		if st.Applied < 0 || st.Scanned < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
		// LSNs start at 1 and the applied set is the contiguous prefix,
		// so the frontier always equals the applied count.
		if st.AppliedLSN != uint64(st.Applied) {
			t.Fatalf("frontier %d does not match applied count %d", st.AppliedLSN, st.Applied)
		}
	})
}
