// Package wal is the durable commit pipeline shared by every engine in
// this repository: a redo-only write-ahead log with per-execution-thread
// append buffers, a group-commit flusher, and crash recovery by replay.
//
// The paper's prototype scopes durability out entirely (§3: commits are
// acknowledged the instant execution finishes). This package makes
// acknowledgment durable without serializing engines on I/O, reusing the
// batching discipline of the ORTHRUS message plane: one expensive device
// sync is amortized across a group of commits, the way one ring publish
// is amortized across a batch of messages.
//
// # Protocol
//
// Commit is split in two stages. At pre-commit — transaction logic done,
// locks still held — the executing thread encodes the transaction's
// after-images into its private Appender buffer and is assigned a log
// sequence number (LSN); then it releases its locks and moves on. Early
// lock release is safe under redo-only logging: in-place writes are
// already applied, nothing exposes uncommitted data, and any dependent
// transaction that reads those writes necessarily commits with a higher
// LSN (its LSN is assigned after acquiring the conflicting lock, which
// happens after this release, which happens after this LSN assignment).
// The flusher goroutine sweeps all appender buffers, writes them to the
// Device, syncs per policy, and fires completion acknowledgments in LSN
// order — an acknowledgment never outruns the durability of any earlier
// LSN, so the set of acknowledged transactions is always a
// dependency-closed prefix of the commit order.
//
// # Sync policies
//
//   - Off:   the log is inert. Engines skip capture and acknowledge at
//     pre-commit, exactly the paper's behaviour; the pipeline costs
//     nothing.
//   - Async: records are appended and flushed in the background, but
//     acknowledgment fires at pre-commit. A crash can lose acknowledged
//     work (PostgreSQL synchronous_commit=off semantics); Drain still
//     waits for the tail, so a clean shutdown loses nothing.
//   - Group(k, interval): acknowledgment fires after the record is
//     synced. The flusher syncs when k commits are pending or after
//     interval, whichever comes first — the classic group-commit
//     trade-off between commit latency and syncs per second.
//
// Replay rebuilds a storage.DB from a (possibly torn) log image: it
// scans records until the first corruption, then applies the longest
// contiguous LSN prefix, which is exactly the committed-prefix guarantee
// the acknowledgment order establishes.
package wal

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// SyncMode selects how commit acknowledgment relates to device syncs.
type SyncMode uint8

// Sync modes; see the package comment.
const (
	SyncOff SyncMode = iota
	SyncAsync
	SyncGroup
)

// Defaults for Group policy knobs left zero.
const (
	DefaultGroupSize = 64
	DefaultInterval  = 200 * time.Microsecond
)

// SyncPolicy is a log's durability discipline.
type SyncPolicy struct {
	Mode SyncMode
	// GroupSize is the pending-commit count that triggers an immediate
	// flush (default 64). Also used by Async to pace background flushes.
	GroupSize int
	// Interval bounds how long a pending commit waits for its group to
	// fill before the flusher syncs anyway (default 200µs).
	Interval time.Duration
}

// Off returns the inert policy.
func Off() SyncPolicy { return SyncPolicy{Mode: SyncOff} }

// Async returns the background-flush policy.
func Async() SyncPolicy { return SyncPolicy{Mode: SyncAsync} }

// Group returns the group-commit policy; zero k or interval means the
// package default.
func Group(k int, interval time.Duration) SyncPolicy {
	return SyncPolicy{Mode: SyncGroup, GroupSize: k, Interval: interval}
}

func (p SyncPolicy) withDefaults() SyncPolicy {
	if p.GroupSize <= 0 {
		p.GroupSize = DefaultGroupSize
	}
	if p.Interval <= 0 {
		p.Interval = DefaultInterval
	}
	return p
}

// String implements fmt.Stringer ("off", "async", "group(64,200µs)").
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncOff:
		return "off"
	case SyncAsync:
		return "async"
	default:
		p = p.withDefaults()
		return fmt.Sprintf("group(%d,%v)", p.GroupSize, p.Interval)
	}
}

// Stats counts the flusher's work — the MessageStats analogue for the
// commit pipeline: records vs flush batches quantifies the achieved
// group-commit amortization the same way messages vs ring ops quantifies
// message batching.
type Stats struct {
	Records uint64 // redo records written to the device
	Bytes   uint64 // bytes written
	Flushes uint64 // flush passes that wrote at least one record
	Syncs   uint64 // device sync operations
	// MaxFlushRecords is the largest single flush pass in records.
	MaxFlushRecords uint64
}

// RecordsPerFlush reports the achieved group-commit batching factor.
func (s Stats) RecordsPerFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Flushes)
}

// ack is one pending acknowledgment: fired by the flusher, in LSN order,
// once the record's durability requirement is met.
type ack struct {
	lsn   uint64
	enq   time.Time
	fn    func()
	stats *metrics.ThreadStats
}

// ackHeap is a min-heap of pending acks by LSN.
type ackHeap []ack

func (h ackHeap) Len() int            { return len(h) }
func (h ackHeap) Less(i, j int) bool  { return h[i].lsn < h[j].lsn }
func (h ackHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ackHeap) Push(x interface{}) { *h = append(*h, x.(ack)) }
func (h *ackHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Log is a redo log: a set of per-thread Appenders feeding one flusher
// goroutine that owns the Device. A nil *Log (or one opened with the Off
// policy) is inert: Enabled reports false and Drain/Close are no-ops, so
// engines hold a *Log unconditionally and pay a nil check when off.
type Log struct {
	dev    Device
	segdev SegmentDevice // dev when it supports segmentation, else nil
	policy SyncPolicy

	// nextLSN is the last assigned LSN; durableLSN the acknowledged
	// frontier (every LSN ≤ durableLSN is synced per policy and acked).
	nextLSN    atomic.Uint64
	durableLSN atomic.Uint64

	// pending counts commits enqueued but not yet stolen by the flusher —
	// the group-trigger gauge.
	pending atomic.Int64
	force   atomic.Bool // Drain: skip the interval wait
	wake    chan struct{}
	stopc   chan struct{}
	donec   chan struct{}
	closed  atomic.Bool

	mu        sync.Mutex // guards appenders
	appenders []*Appender

	// flusher-owned. acks holds write commits keyed by their own LSN;
	// waiters holds read-only commits keyed by the log tail they observed
	// (fired once the frontier reaches it — see Appender.Commit).
	acks     ackHeap
	waiters  ackHeap
	frontier uint64

	stRecords, stBytes, stFlushes, stSyncs atomic.Uint64
	stMaxFlush                             atomic.Uint64
}

// NewLog opens a log over dev with the given policy and starts its
// flusher. With the Off policy no flusher runs and dev may be nil.
func NewLog(dev Device, policy SyncPolicy) *Log {
	l := &Log{dev: dev, policy: policy.withDefaults()}
	if policy.Mode == SyncOff {
		return l
	}
	if dev == nil {
		panic("wal: NewLog needs a Device unless the policy is Off")
	}
	l.segdev, _ = dev.(SegmentDevice)
	l.wake = make(chan struct{}, 1)
	l.stopc = make(chan struct{})
	l.donec = make(chan struct{})
	go l.flusher()
	return l
}

// Enabled reports whether commits must pass through the log. Safe on a
// nil receiver.
func (l *Log) Enabled() bool { return l != nil && l.policy.Mode != SyncOff }

// Policy returns the log's sync policy (zero value on a nil receiver).
func (l *Log) Policy() SyncPolicy {
	if l == nil {
		return SyncPolicy{Mode: SyncOff}
	}
	return l.policy
}

// LastLSN returns the highest LSN assigned so far.
func (l *Log) LastLSN() uint64 { return l.nextLSN.Load() }

// DurableLSN returns the acknowledged frontier: every LSN up to and
// including it has been written and synced per policy.
func (l *Log) DurableLSN() uint64 { return l.durableLSN.Load() }

// Stats returns a snapshot of the flusher's counters.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		Records:         l.stRecords.Load(),
		Bytes:           l.stBytes.Load(),
		Flushes:         l.stFlushes.Load(),
		Syncs:           l.stSyncs.Load(),
		MaxFlushRecords: l.stMaxFlush.Load(),
	}
}

// NewAppender registers a per-thread append buffer. stats, when non-nil,
// receives the flush-stall time of this appender's commits (LogNanos).
// Appenders live for the log's lifetime; a session that restarts simply
// registers fresh ones, and drained stale appenders cost the flusher an
// empty-buffer check per pass.
func (l *Log) NewAppender(stats *metrics.ThreadStats) *Appender {
	if !l.Enabled() {
		panic("wal: NewAppender on a disabled log")
	}
	a := &Appender{log: l, stats: stats}
	l.mu.Lock()
	l.appenders = append(l.appenders, a)
	l.mu.Unlock()
	return a
}

// Drain blocks until every assigned LSN is durable and acknowledged —
// the log-tail barrier session Drain/Close sits on. No-op when disabled.
func (l *Log) Drain() {
	if !l.Enabled() {
		return
	}
	l.WaitDurable(l.nextLSN.Load())
}

// WaitDurable blocks until the durable frontier reaches lsn, forcing
// flusher passes rather than waiting out group-fill windows. The fuzzy
// checkpointer sits on this barrier before committing a manifest: every
// record the checkpoint image may depend on must be on the device before
// the manifest authorizes truncating the log below it. No-op when the
// log is disabled or lsn is already durable.
func (l *Log) WaitDurable(lsn uint64) {
	if !l.Enabled() {
		return
	}
	for l.durableLSN.Load() < lsn {
		l.force.Store(true)
		select {
		case l.wake <- struct{}{}:
		default:
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// Truncate drops log segments whose contents lie wholly at or below
// belowLSN, returning how many segments were dropped. It is a no-op
// (returning 0) when the log's device is not segmented — truncation is
// an optimization, never a correctness requirement, so callers need not
// care which device backs the log. The caller is responsible for the
// truncation rule: only truncate below an LSN from which a durably
// committed checkpoint can rebuild the database.
func (l *Log) Truncate(belowLSN uint64) int {
	if l == nil || l.segdev == nil {
		return 0
	}
	return l.segdev.Truncate(belowLSN)
}

// Close drains the log, stops the flusher and closes the device. Safe on
// a disabled log; a second Close is a no-op.
func (l *Log) Close() error {
	if !l.Enabled() {
		return nil
	}
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	l.Drain()
	close(l.stopc)
	<-l.donec
	return l.dev.Close()
}

// flusher is the group-commit daemon: it sleeps until work is pending,
// gives the group its interval to fill (unless the group-size trigger or
// a Drain fires first), then sweeps, writes, syncs and acknowledges.
// Wake tokens mean only "re-evaluate" — a stale token must not cut a
// group's fill window short, so every wake re-checks the actual trigger.
func (l *Log) flusher() {
	defer close(l.donec)
	for {
		for l.pending.Load() == 0 && !l.force.Load() {
			select {
			case <-l.stopc:
				l.flushPass()
				return
			case <-l.wake:
			}
		}
		if !l.force.Swap(false) && l.pending.Load() < int64(l.policy.GroupSize) {
			deadline := time.NewTimer(l.policy.Interval)
		fill:
			for {
				select {
				case <-l.stopc:
					deadline.Stop()
					l.flushPass()
					return
				case <-l.wake:
					if l.force.Swap(false) || l.pending.Load() >= int64(l.policy.GroupSize) {
						break fill
					}
				case <-deadline.C:
					break fill
				}
			}
			deadline.Stop()
		}
		l.flushPass()
	}
}

// flushPass steals every appender's buffer and pending acks, writes the
// stolen bytes, syncs (group mode), and fires acknowledgments up to the
// contiguous-LSN frontier. Records whose LSN has a not-yet-stolen
// predecessor stay queued; the predecessor arrives in a later pass and
// the frontier catches up — acknowledgment order is LSN order, always.
func (l *Log) flushPass() {
	l.mu.Lock()
	apps := l.appenders
	l.mu.Unlock()

	var stolen int
	var wroteRecords, wroteBytes uint64
	var passMaxLSN uint64 // highest LSN among records written this pass
	for _, a := range apps {
		a.mu.Lock()
		buf, acks, waiters := a.buf, a.acks, a.waiters
		if len(buf) == 0 && len(acks) == 0 && len(waiters) == 0 {
			a.mu.Unlock()
			continue
		}
		a.buf, a.acks = a.spareBuf, a.spareAcks
		a.spareBuf, a.spareAcks = nil, nil
		a.waiters = nil
		a.mu.Unlock()
		for _, k := range waiters {
			heap.Push(&l.waiters, k)
		}
		stolen += len(waiters)

		if len(buf) > 0 {
			if _, err := l.dev.Write(buf); err != nil {
				panic(fmt.Sprintf("wal: device write failed: %v", err))
			}
			wroteBytes += uint64(len(buf))
		}
		wroteRecords += uint64(len(acks))
		stolen += len(acks)
		for _, k := range acks {
			if k.lsn > passMaxLSN {
				passMaxLSN = k.lsn
			}
			heap.Push(&l.acks, k)
		}
		// Recycle the stolen slices so steady state reuses two buffers
		// per appender instead of allocating per flush.
		a.mu.Lock()
		a.spareBuf, a.spareAcks = buf[:0], acks[:0]
		a.mu.Unlock()
	}

	// Async differs from Group in when acknowledgments fire, not in
	// whether the device is synced: the background sync here is what
	// makes Drain's log-tail barrier a durability guarantee under both.
	if wroteBytes > 0 {
		if err := l.dev.Sync(); err != nil {
			panic(fmt.Sprintf("wal: device sync failed: %v", err))
		}
		l.stSyncs.Add(1)
		// Segment bookkeeping sits strictly after the sync: rotation only
		// ever seals fully-synced bytes, so a sealed segment's MaxLSN
		// bound and its contents are durable together.
		if l.segdev != nil {
			l.segdev.Mark(passMaxLSN)
		}
	}
	if wroteRecords > 0 {
		l.stRecords.Add(wroteRecords)
		l.stBytes.Add(wroteBytes)
		l.stFlushes.Add(1)
		if wroteRecords > l.stMaxFlush.Load() {
			l.stMaxFlush.Store(wroteRecords)
		}
	}
	if stolen > 0 {
		l.pending.Add(-int64(stolen))
	}

	now := time.Now()
	for l.acks.Len() > 0 && l.acks[0].lsn == l.frontier+1 {
		k := heap.Pop(&l.acks).(ack)
		l.frontier++
		if k.stats != nil {
			k.stats.AddLog(now.Sub(k.enq))
		}
		if k.fn != nil {
			k.fn()
		}
	}
	// Read-only waiters fire once the log tail they observed is durable —
	// after the write acks above, so a reader is never acknowledged ahead
	// of a writer it depends on.
	for l.waiters.Len() > 0 && l.waiters[0].lsn <= l.frontier {
		k := heap.Pop(&l.waiters).(ack)
		if k.stats != nil {
			k.stats.AddLog(now.Sub(k.enq))
		}
		if k.fn != nil {
			k.fn()
		}
	}
	l.durableLSN.Store(l.frontier)
}

// Appender is one execution thread's append buffer. Note/Abort/Commit
// are called only by the owning thread; the internal mutex exists solely
// for the flusher's steal, so it is all but uncontended.
type Appender struct {
	log   *Log
	stats *metrics.ThreadStats

	mu        sync.Mutex
	buf       []byte // encoded records awaiting the flusher
	acks      []ack
	waiters   []ack  // read-only commits awaiting the frontier
	spareBuf  []byte // recycled by the flusher after writing
	spareAcks []ack

	writes []redoWrite // current transaction's captured after-images
}

// Note captures one write's after-image: rec is the live record slice of
// (table, key), read at encode time — which happens at Commit, while the
// transaction still holds its locks, so the bytes are this transaction's
// images. Duplicate (table, key) notes collapse.
//
//orthrus:hotpath
func (a *Appender) Note(table int, key uint64, rec []byte) {
	for i := range a.writes {
		if a.writes[i].key == key && a.writes[i].table == int32(table) {
			a.writes[i].val = rec
			return
		}
	}
	a.writes = append(a.writes, redoWrite{table: int32(table), key: key, val: rec})
}

// Pending returns the number of writes captured for the current
// transaction.
func (a *Appender) Pending() int { return len(a.writes) }

// Abort discards the current transaction's captured writes.
//
//orthrus:hotpath
func (a *Appender) Abort() { a.writes = a.writes[:0] }

// Commit seals the current transaction: it assigns the next LSN, encodes
// the captured after-images into the append buffer, and schedules fn to
// run once the record is durable (group mode) — in LSN order relative to
// every other commit. Under Async, fn runs inline before Commit returns.
//
// A transaction with no captured writes (read-only) consumes no LSN, but
// under Group it may still have observed another transaction's writes
// before they were synced (locks release at pre-commit), so it must not
// be acknowledged ahead of them: its acknowledgment waits for the log
// tail it observed — the current last assigned LSN — unless that tail is
// already durable, in which case it fires inline. The inline path cannot
// race the flusher on this appender's stats: every earlier commit of
// this appender has a smaller LSN, whose acknowledgment the flusher
// fired before it advanced the durable frontier past our observed tail.
//
// Commit must be called at pre-commit, before the transaction releases
// its locks: the LSN order is the committed-prefix order only because
// conflicting transactions are serialized across this call by the locks
// they contend on.
//
//orthrus:hotpath
func (a *Appender) Commit(fn func()) { a.CommitWith(nil, fn) }

// CommitWith is Commit with a version-install hook: when install is
// non-nil it runs synchronously with the assigned LSN while the record
// is still unstealable — inside the appender mutex, before the flusher
// can collect it — so the durable frontier (the snapshot point for
// read-only transactions) cannot reach this LSN before its versions are
// installed. install must not block and must not call back into the log.
// A commit with no captured writes has no LSN to stamp, so a non-nil
// install there panics — versioned writers always capture after-images.
//
//orthrus:hotpath
func (a *Appender) CommitWith(install func(lsn uint64), fn func()) {
	l := a.log
	if len(a.writes) == 0 {
		if install != nil {
			panic("wal: CommitWith install hook on a commit with no captured writes")
		}
		tail := l.nextLSN.Load()
		if l.policy.Mode != SyncGroup || tail <= l.durableLSN.Load() {
			if fn != nil {
				fn()
			}
			return
		}
		a.mu.Lock()
		a.waiters = append(a.waiters, ack{lsn: tail, enq: time.Now(), fn: fn, stats: a.stats})
		a.mu.Unlock()
		if n := l.pending.Add(1); n == 1 || n >= int64(l.policy.GroupSize) {
			select {
			case l.wake <- struct{}{}:
			default:
			}
		}
		return
	}
	now := time.Now()
	inline := l.policy.Mode == SyncAsync
	a.mu.Lock()
	lsn := l.nextLSN.Add(1)
	a.buf = appendRecord(a.buf, lsn, a.writes)
	if install != nil {
		install(lsn)
	}
	if inline {
		a.acks = append(a.acks, ack{lsn: lsn})
	} else {
		a.acks = append(a.acks, ack{lsn: lsn, enq: now, fn: fn, stats: a.stats})
	}
	a.mu.Unlock()
	a.writes = a.writes[:0]
	if inline && fn != nil {
		fn()
	}
	n := l.pending.Add(1)
	if n == 1 || n >= int64(l.policy.GroupSize) {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
}
