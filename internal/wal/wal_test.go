package wal

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	writes := []redoWrite{
		{table: 0, key: 7, val: []byte("hello")},
		{table: 3, key: 1 << 40, val: make([]byte, 100)},
		{table: 1, key: 0, val: nil},
	}
	buf := appendRecord(nil, 42, writes)
	rec, n, ok := decodeRecord(buf)
	if !ok || n != len(buf) {
		t.Fatalf("decode failed: ok=%v n=%d len=%d", ok, n, len(buf))
	}
	if rec.lsn != 42 || len(rec.writes) != len(writes) {
		t.Fatalf("lsn=%d writes=%d", rec.lsn, len(rec.writes))
	}
	for i, w := range rec.writes {
		if w.table != writes[i].table || w.key != writes[i].key || !bytes.Equal(w.val, writes[i].val) {
			t.Fatalf("write %d mismatch: %+v vs %+v", i, w, writes[i])
		}
	}
}

// A record truncated at any byte boundary must fail decoding cleanly —
// never panic, never decode into a wrong record.
func TestRecordTornAtEveryByte(t *testing.T) {
	buf := appendRecord(nil, 9, []redoWrite{{table: 2, key: 5, val: []byte("payload")}})
	for cut := 0; cut < len(buf); cut++ {
		if _, _, ok := decodeRecord(buf[:cut]); ok {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(buf))
		}
	}
	// Corrupt each byte in turn: decoding must fail (or, for bytes past
	// the checksummed region, never misreport the LSN or writes).
	for i := 0; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		if rec, _, ok := decodeRecord(mut); ok {
			t.Fatalf("corruption at byte %d decoded: %+v", i, rec)
		}
	}
}

func TestGroupCommitSizeTrigger(t *testing.T) {
	dev := NewMemDevice()
	l := NewLog(dev, Group(4, time.Hour)) // interval never fires
	defer l.Close()
	a := l.NewAppender(nil)
	var acked atomic.Int64
	rec := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 3; i++ {
		a.Note(0, uint64(i), rec)
		a.Commit(func() { acked.Add(1) })
	}
	time.Sleep(20 * time.Millisecond)
	if n := acked.Load(); n != 0 {
		t.Fatalf("acks before the group filled: %d", n)
	}
	a.Note(0, 3, rec)
	a.Commit(func() { acked.Add(1) })
	waitFor(t, "group of 4 acks", func() bool { return acked.Load() == 4 })
	if dev.SyncedLen() != dev.Len() || dev.Len() == 0 {
		t.Fatalf("acks fired without full sync: synced=%d len=%d", dev.SyncedLen(), dev.Len())
	}
}

func TestGroupCommitIntervalTrigger(t *testing.T) {
	dev := NewMemDevice()
	l := NewLog(dev, Group(1<<20, time.Millisecond)) // size never fires
	defer l.Close()
	a := l.NewAppender(nil)
	var acked atomic.Int64
	a.Note(0, 1, []byte{1})
	start := time.Now()
	a.Commit(func() { acked.Add(1) })
	waitFor(t, "interval ack", func() bool { return acked.Load() == 1 })
	if d := time.Since(start); d > time.Second {
		t.Fatalf("interval flush took %v", d)
	}
}

// Acknowledgments fire in LSN order even when appender buffers reach the
// device out of LSN order.
func TestAcksInLSNOrder(t *testing.T) {
	dev := NewMemDevice()
	l := NewLog(dev, Group(8, 500*time.Microsecond))
	defer l.Close()
	const threads, perThread = 4, 200
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := l.NewAppender(nil)
			for j := 0; j < perThread; j++ {
				a.Note(0, uint64(j), []byte{byte(i), byte(j)})
				a.Commit(func() {
					// Runs on the flusher goroutine, which has already
					// advanced its frontier to this commit's LSN; the
					// recorded sequence must therefore be ascending.
					mu.Lock()
					order = append(order, l.frontier)
					mu.Unlock()
				})
			}
		}(i)
	}
	wg.Wait()
	l.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != threads*perThread {
		t.Fatalf("acks = %d, want %d", len(order), threads*perThread)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("ack %d saw frontier %d after %d — out of LSN order", i, order[i], order[i-1])
		}
	}
	if got := l.DurableLSN(); got != uint64(threads*perThread) {
		t.Fatalf("durable LSN %d, want %d", got, threads*perThread)
	}
}

func TestAsyncAcksInlineAndDrainWaits(t *testing.T) {
	dev := NewMemDevice()
	l := NewLog(dev, Async())
	defer l.Close()
	a := l.NewAppender(nil)
	fired := false
	a.Note(0, 1, []byte{9})
	a.Commit(func() { fired = true })
	if !fired {
		t.Fatal("async ack did not fire inline")
	}
	l.Drain()
	if l.DurableLSN() != 1 {
		t.Fatalf("drain returned with durable LSN %d", l.DurableLSN())
	}
	if dev.Len() == 0 {
		t.Fatal("drain returned before the record reached the device")
	}
}

// A read-only transaction that may have observed a not-yet-durable
// write (early lock release) must not be acknowledged ahead of it: its
// ack waits for the log tail it saw at commit, and fires after the
// writer's.
func TestReadOnlyAckWaitsForObservedWrites(t *testing.T) {
	dev := NewMemDevice()
	l := NewLog(dev, Group(1<<20, time.Hour)) // flushes only when forced
	defer l.Close()
	a := l.NewAppender(nil)
	var mu sync.Mutex
	var order []string
	record := func(tag string) func() {
		return func() {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	a.Note(0, 1, []byte{1})
	a.Commit(record("write"))
	a.Commit(record("read-only")) // no writes captured: observed tail = LSN 1
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if len(order) != 0 {
		t.Fatalf("acks fired before the observed write was durable: %v", order)
	}
	mu.Unlock()
	l.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "write" || order[1] != "read-only" {
		t.Fatalf("ack order = %v, want [write read-only]", order)
	}
}

// Once the log tail is durable, a read-only commit acknowledges inline —
// the fast path that keeps read-mostly workloads off the flush cadence.
func TestReadOnlyAckInlineWhenTailDurable(t *testing.T) {
	l := NewLog(NewMemDevice(), Group(4, time.Millisecond))
	defer l.Close()
	a := l.NewAppender(nil)
	a.Note(0, 1, []byte{1})
	var wrote atomic.Bool
	a.Commit(func() { wrote.Store(true) })
	l.Drain()
	fired := false
	a.Commit(func() { fired = true })
	if !fired || !wrote.Load() {
		t.Fatalf("read-only ack not inline on a durable tail (fired=%v)", fired)
	}
}

func TestReadOnlyCommitSkipsLog(t *testing.T) {
	l := NewLog(NewMemDevice(), Group(4, time.Millisecond))
	defer l.Close()
	a := l.NewAppender(nil)
	fired := false
	a.Commit(func() { fired = true })
	if !fired {
		t.Fatal("read-only commit did not ack inline")
	}
	if l.LastLSN() != 0 {
		t.Fatalf("read-only commit consumed LSN %d", l.LastLSN())
	}
}

func TestAbortDiscardsCapture(t *testing.T) {
	l := NewLog(NewMemDevice(), Group(1, time.Millisecond))
	defer l.Close()
	a := l.NewAppender(nil)
	a.Note(0, 1, []byte{1})
	if a.Pending() != 1 {
		t.Fatal("note not captured")
	}
	a.Abort()
	if a.Pending() != 0 {
		t.Fatal("abort kept captures")
	}
	a.Commit(nil) // read-only now
	l.Drain()
	if l.LastLSN() != 0 {
		t.Fatal("aborted writes were logged")
	}
}

func TestDuplicateNoteCollapses(t *testing.T) {
	l := NewLog(NewMemDevice(), Group(1, time.Millisecond))
	defer l.Close()
	a := l.NewAppender(nil)
	rec := []byte{1}
	a.Note(3, 7, rec)
	a.Note(3, 7, rec)
	a.Note(2, 7, rec)
	if a.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", a.Pending())
	}
}

func TestFlushStallAccounting(t *testing.T) {
	var stats metrics.ThreadStats
	l := NewLog(NewMemDevice(), Group(1<<20, 2*time.Millisecond))
	defer l.Close()
	a := l.NewAppender(&stats)
	var done atomic.Bool
	a.Note(0, 1, []byte{1})
	a.Commit(func() { done.Store(true) })
	waitFor(t, "ack", done.Load)
	l.Drain()
	if stats.LogNanos <= 0 {
		t.Fatalf("LogNanos = %d, want > 0 (flush stall of ~interval)", stats.LogNanos)
	}
}

func TestStatsCountersAndAmortization(t *testing.T) {
	dev := NewMemDevice()
	l := NewLog(dev, Group(64, time.Hour))
	a := l.NewAppender(nil)
	for i := 0; i < 256; i++ {
		a.Note(0, uint64(i), []byte{byte(i)})
		a.Commit(nil)
	}
	l.Drain()
	st := l.Stats()
	if st.Records != 256 {
		t.Fatalf("records = %d", st.Records)
	}
	if st.Flushes == 0 || st.RecordsPerFlush() < 2 {
		t.Fatalf("no group amortization: flushes=%d recs/flush=%.1f", st.Flushes, st.RecordsPerFlush())
	}
	if st.Syncs == 0 || st.Syncs != dev.Syncs() {
		t.Fatalf("sync accounting: stats=%d dev=%d", st.Syncs, dev.Syncs())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // second Close is a no-op
		t.Fatal(err)
	}
}

func TestDisabledLogIsInert(t *testing.T) {
	var l *Log
	if l.Enabled() {
		t.Fatal("nil log enabled")
	}
	l.Drain()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	off := NewLog(nil, Off())
	if off.Enabled() {
		t.Fatal("off log enabled")
	}
	off.Drain()
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- replay ------------------------------------------------------------

func replayDB(t *testing.T, rows uint64) (*storage.DB, int) {
	t.Helper()
	db := storage.NewDB()
	tbl := db.Create(storage.Layout{Name: "t", NumRecords: rows, RecordSize: 8})
	return db, tbl
}

func TestReplayAppliesContiguousPrefix(t *testing.T) {
	db, tbl := replayDB(t, 16)
	val := func(v byte) []byte { return []byte{v, 0, 0, 0, 0, 0, 0, 0} }
	// Device order 2, 1, 4: LSN 3 missing (stuck in a crashed appender's
	// buffer). Only 1..2 may apply; 4 was never acknowledged.
	img := appendRecord(nil, 2, []redoWrite{{table: int32(tbl), key: 1, val: val(2)}})
	img = appendRecord(img, 1, []redoWrite{{table: int32(tbl), key: 0, val: val(1)}})
	img = appendRecord(img, 4, []redoWrite{{table: int32(tbl), key: 2, val: val(4)}})
	st := Replay(img, db)
	if st.Scanned != 3 || st.Applied != 2 || st.AppliedLSN != 2 || st.Torn {
		t.Fatalf("stats = %+v", st)
	}
	if got := db.Table(tbl).Get(0)[0]; got != 1 {
		t.Fatalf("key 0 = %d", got)
	}
	if got := db.Table(tbl).Get(1)[0]; got != 2 {
		t.Fatalf("key 1 = %d", got)
	}
	if got := db.Table(tbl).Get(2)[0]; got != 0 {
		t.Fatalf("unacknowledged LSN 4 applied: key 2 = %d", got)
	}
}

func TestReplayTornTail(t *testing.T) {
	img := appendRecord(nil, 1, []redoWrite{{table: 0, key: 0, val: []byte{1, 0, 0, 0, 0, 0, 0, 0}}})
	whole := len(img)
	img = appendRecord(img, 2, []redoWrite{{table: 0, key: 1, val: []byte{2, 0, 0, 0, 0, 0, 0, 0}}})
	for cut := 0; cut <= len(img); cut++ {
		db, _ := replayDB(t, 4)
		st := Replay(img[:cut], db)
		wantApplied := 0
		if cut >= whole {
			wantApplied = 1
		}
		if cut == len(img) {
			wantApplied = 2
		}
		if st.Applied != wantApplied {
			t.Fatalf("cut %d: applied %d, want %d", cut, st.Applied, wantApplied)
		}
		wantTorn := cut != whole && cut != len(img) && cut != 0
		if st.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v want %v", cut, st.Torn, wantTorn)
		}
	}
}

// End-to-end: log through appenders, crash at the synced boundary, replay.
func TestReplayFromDeviceImage(t *testing.T) {
	dev := NewMemDevice()
	l := NewLog(dev, Group(8, 100*time.Microsecond))
	live, tbl := replayDB(t, 64)
	a := l.NewAppender(nil)
	for i := uint64(0); i < 64; i++ {
		rec := live.Table(tbl).Get(i)
		storage.PutU64(rec, 0, i*3)
		a.Note(tbl, i, rec)
		a.Commit(nil)
	}
	l.Drain()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rebuilt, tbl2 := replayDB(t, 64)
	st := Replay(dev.SyncedContents(), rebuilt)
	if st.Applied != 64 || st.Torn {
		t.Fatalf("stats = %+v", st)
	}
	for i := uint64(0); i < 64; i++ {
		if got := storage.GetU64(rebuilt.Table(tbl2).Get(i), 0); got != i*3 {
			t.Fatalf("key %d = %d, want %d", i, got, i*3)
		}
	}
}
