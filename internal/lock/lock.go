// Package lock implements the shared-memory lock manager used by the
// conventional baselines (2PL with dynamic deadlock handling, and
// Deadlock-free ordered locking). It follows the paper's description of
// its 2PL implementation (§4):
//
//   - a hash table of lock-request queues keyed by record;
//   - per-bucket latches ("per-bucket latches instead of a single latch to
//     protect the entire table");
//   - no intention locks — only fine-grained record locks in shared (S) or
//     exclusive (X) mode;
//   - request structures recycled through per-thread freelists so the hot
//     path never calls the memory allocator.
//
// Requests queue FIFO per record. A request is granted when every request
// ahead of it is compatible; on release the longest compatible prefix is
// granted. Strict FIFO means readers do not overtake waiting writers, so
// writers cannot starve.
//
// Deadlock policy is delegated to a Handler: when a request conflicts, the
// handler decides whether it may wait or must die, and supplies the wait
// mechanics (block on a channel for wait-die/wait-for-graph, spin on
// digests for Dreadlocks). The Block handler never aborts and is safe only
// under ordered acquisition (the Deadlock-free engine and ORTHRUS).
package lock

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/txn"
)

// Request state values.
const (
	stateWaiting int32 = iota
	stateGranted
)

// Request is one transaction's request for one record lock. Requests are
// owned by the requesting thread and recycled via Freelist.
type Request struct {
	TxnID  uint64
	TS     uint64 // wait-die timestamp (assigned once; survives restarts)
	Thread int    // requesting worker thread id
	Table  int
	Key    uint64
	Mode   txn.Mode

	state atomic.Int32
	ready chan struct{} // capacity 1; a token is sent on grant

	prev, next *Request // intrusive queue links, guarded by bucket latch
}

// Granted reports whether the request has been granted.
func (r *Request) Granted() bool { return r.state.Load() == stateGranted }

// Ready exposes the grant channel for handlers that need to select on it
// alongside timers (wait-for graph's periodic recheck).
func (r *Request) Ready() <-chan struct{} { return r.ready }

// AwaitToken blocks until the grant token arrives.
func (r *Request) AwaitToken() { <-r.ready }

// DrainToken consumes a grant token that is known to have been sent.
func (r *Request) DrainToken() { <-r.ready }

// Decision is a Handler's verdict on a conflicting request.
type Decision int

// Handler verdicts.
const (
	Wait Decision = iota
	Die
)

// Handler plugs a deadlock policy into the table.
type Handler interface {
	// Name identifies the policy in harness output.
	Name() string
	// OnConflict is called with the bucket latch held when req conflicts
	// with the requests ahead of it in the queue. Returning Die rejects
	// the acquisition before req is enqueued.
	OnConflict(req *Request, ahead []*Request) Decision
	// Wait blocks until req is granted or the policy decides req must
	// abort. It is called without the bucket latch. Returning false means
	// the handler wants req aborted; the table then cancels the request
	// (unless a concurrent grant won the race).
	Wait(t *Table, req *Request) bool
	// OnGranted is called (without latches) after req is granted, so the
	// handler can clear wait-tracking state.
	OnGranted(req *Request)
	// OnAborted is called (without latches) after req was cancelled.
	OnAborted(req *Request)
}

// PreAcquirer is an optional Handler extension: PreAcquire runs at the
// top of every Acquire, before the bucket latch is taken. Policies that
// abort transactions from *other* threads (wound-wait) use it as the
// victim's poison check — a wounded transaction discovers its fate at its
// next lock request.
type PreAcquirer interface {
	// PreAcquire returns false when req's transaction has been chosen as
	// a victim and must abort instead of acquiring.
	PreAcquire(req *Request) bool
}

// lockKey identifies a record across tables.
type lockKey struct {
	table int
	key   uint64
}

// entry is one record's request queue.
type entry struct {
	head, tail *Request
	waiters    int // requests not yet granted
}

type bucket struct {
	mu      sync.Mutex
	entries map[lockKey]*entry
	// entryPool recycles entry structs for this bucket.
	entryPool []*entry
	_         [24]byte // pad to reduce adjacent-bucket false sharing
}

// Table is the shared lock table.
type Table struct {
	buckets []bucket
	mask    uint64
	handler Handler
}

// NewTable returns a table with the given bucket count (rounded up to a
// power of two) and deadlock policy.
func NewTable(buckets int, h Handler) *Table {
	n := 1
	for n < buckets {
		n <<= 1
	}
	t := &Table{buckets: make([]bucket, n), mask: uint64(n - 1), handler: h}
	for i := range t.buckets {
		t.buckets[i].entries = make(map[lockKey]*entry)
	}
	return t
}

// Handler returns the table's deadlock policy.
func (t *Table) Handler() Handler { return t.handler }

// Buckets returns the bucket count.
func (t *Table) Buckets() int { return len(t.buckets) }

func (t *Table) bucketFor(k lockKey) *bucket {
	h := k.key*0x9E3779B97F4A7C15 + uint64(k.table)*0xBF58476D1CE4E5B9
	h ^= h >> 32
	return &t.buckets[h&t.mask]
}

// Acquire requests the (table,key) lock in mode for req's transaction.
// It blocks according to the handler's policy and returns the time spent
// waiting (for the execute/lock/wait breakdown) and txn.ErrAborted if the
// policy chose this transaction as a victim.
//
// The fields TxnID, TS, Thread and Mode of req must be set; Table/Key are
// filled in here.
func (t *Table) Acquire(req *Request, table int, key uint64, mode txn.Mode) (waited time.Duration, err error) {
	req.Table, req.Key, req.Mode = table, key, mode
	req.state.Store(stateWaiting)

	if pa, ok := t.handler.(PreAcquirer); ok && !pa.PreAcquire(req) {
		t.handler.OnAborted(req)
		return 0, txn.ErrAborted
	}

	k := lockKey{table, key}
	b := t.bucketFor(k)
	b.mu.Lock()
	e := b.entries[k]
	if e == nil {
		e = b.getEntry()
		b.entries[k] = e
	}

	conflict := e.conflictsAhead(req.Mode, nil)
	if conflict == nil {
		req.state.Store(stateGranted)
		e.push(req)
		b.mu.Unlock()
		return 0, nil
	}

	if t.handler.OnConflict(req, conflict) == Die {
		if e.head == nil {
			b.putEntry(k, e)
		}
		b.mu.Unlock()
		t.handler.OnAborted(req)
		return 0, txn.ErrAborted
	}

	e.push(req)
	e.waiters++
	b.mu.Unlock()

	start := time.Now()
	ok := t.handler.Wait(t, req)
	waited = time.Since(start)
	if ok {
		t.handler.OnGranted(req)
		return waited, nil
	}
	// Handler wants an abort; cancel unless a concurrent grant won.
	if t.cancel(req) {
		t.handler.OnAborted(req)
		return waited, txn.ErrAborted
	}
	t.handler.OnGranted(req)
	return waited, nil
}

// Release drops req's lock and grants newly compatible requests.
// req must have been granted.
func (t *Table) Release(req *Request) {
	k := lockKey{req.Table, req.Key}
	b := t.bucketFor(k)
	b.mu.Lock()
	e := b.entries[k]
	e.remove(req)
	e.grantPrefix()
	if e.head == nil {
		b.putEntry(k, e)
	}
	b.mu.Unlock()
}

// cancel removes a waiting request. It returns false when the request was
// granted before the latch was taken (the caller then owns a granted lock
// and a pending token).
func (t *Table) cancel(req *Request) bool {
	k := lockKey{req.Table, req.Key}
	b := t.bucketFor(k)
	b.mu.Lock()
	if req.Granted() {
		b.mu.Unlock()
		req.DrainToken()
		return false
	}
	e := b.entries[k]
	e.remove(req)
	e.waiters--
	// Removing a waiter can unblock requests queued behind it.
	e.grantPrefix()
	if e.head == nil {
		b.putEntry(k, e)
	}
	b.mu.Unlock()
	return true
}

// Blockers returns the thread ids of requests ahead of req that conflict
// with it, and whether req is still waiting. Dreadlocks polls this.
func (t *Table) Blockers(req *Request, out []int) (blockers []int, waiting bool) {
	if req.Granted() {
		return out[:0], false
	}
	k := lockKey{req.Table, req.Key}
	b := t.bucketFor(k)
	b.mu.Lock()
	if req.Granted() {
		b.mu.Unlock()
		return out[:0], false
	}
	out = out[:0]
	e := b.entries[k]
	if e == nil {
		// The request is not enqueued under this key (caller raced with
		// its own Acquire); report "still waiting, no known blockers".
		b.mu.Unlock()
		return out, true
	}
	for cur := e.head; cur != nil && cur != req; cur = cur.next {
		if cur.Mode.Conflicts(req.Mode) {
			out = append(out, cur.Thread)
		}
	}
	b.mu.Unlock()
	return out, true
}

// --- entry operations (bucket latch held) -------------------------------

func (b *bucket) getEntry() *entry {
	if n := len(b.entryPool); n > 0 {
		e := b.entryPool[n-1]
		b.entryPool = b.entryPool[:n-1]
		return e
	}
	return &entry{}
}

func (b *bucket) putEntry(k lockKey, e *entry) {
	delete(b.entries, k)
	e.head, e.tail, e.waiters = nil, nil, 0
	if len(b.entryPool) < 32 {
		b.entryPool = append(b.entryPool, e)
	}
}

// conflictsAhead returns the requests that conflict with a new request of
// the given mode under strict FIFO (nil when none, meaning immediate
// grant). Appends into scratch to avoid allocation when provided.
func (e *entry) conflictsAhead(mode txn.Mode, scratch []*Request) []*Request {
	out := scratch[:0]
	for cur := e.head; cur != nil; cur = cur.next {
		// Any waiting request ahead blocks a conflicting newcomer; strict
		// FIFO additionally blocks a newcomer behind any waiter it
		// conflicts with even if current holders are compatible.
		if cur.Mode.Conflicts(mode) {
			out = append(out, cur)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (e *entry) push(r *Request) {
	r.prev, r.next = e.tail, nil
	if e.tail != nil {
		e.tail.next = r
	} else {
		e.head = r
	}
	e.tail = r
}

func (e *entry) remove(r *Request) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		e.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		e.tail = r.prev
	}
	r.prev, r.next = nil, nil
}

// grantPrefix grants the longest compatible prefix of waiting requests.
func (e *entry) grantPrefix() {
	if e.waiters == 0 {
		return
	}
	var grantedWrite, grantedRead bool
	for cur := e.head; cur != nil; cur = cur.next {
		if cur.Granted() {
			if cur.Mode == txn.Write {
				grantedWrite = true
			} else {
				grantedRead = true
			}
			continue
		}
		if cur.Mode == txn.Write {
			if grantedWrite || grantedRead {
				return
			}
			grantedWrite = true
		} else {
			if grantedWrite {
				return
			}
			grantedRead = true
		}
		cur.state.Store(stateGranted)
		e.waiters--
		cur.ready <- struct{}{}
	}
}

// --- freelist ------------------------------------------------------------

// Freelist recycles Requests for one worker thread.
type Freelist struct {
	free []*Request
}

// Get returns a fresh or recycled request with identity fields set.
func (f *Freelist) Get(txnID, ts uint64, thread int) *Request {
	var r *Request
	if n := len(f.free); n > 0 {
		r = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		r = &Request{ready: make(chan struct{}, 1)}
	}
	r.TxnID, r.TS, r.Thread = txnID, ts, thread
	return r
}

// Put recycles a request whose lock has been released or cancelled.
func (f *Freelist) Put(r *Request) {
	r.prev, r.next = nil, nil
	f.free = append(f.free, r)
}
