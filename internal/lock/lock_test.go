package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/txn"
)

// blockHandler is a local copy of the no-abort policy so this package's
// tests do not import internal/deadlock (which imports this package).
type blockHandler struct{}

func (blockHandler) Name() string                             { return "block" }
func (blockHandler) OnConflict(*Request, []*Request) Decision { return Wait }
func (blockHandler) Wait(_ *Table, r *Request) bool           { r.AwaitToken(); return true }
func (blockHandler) OnGranted(*Request)                       {}
func (blockHandler) OnAborted(*Request)                       {}

// dieHandler aborts every conflicting request immediately.
type dieHandler struct{}

func (dieHandler) Name() string                             { return "die" }
func (dieHandler) OnConflict(*Request, []*Request) Decision { return Die }
func (dieHandler) Wait(*Table, *Request) bool               { return true }
func (dieHandler) OnGranted(*Request)                       {}
func (dieHandler) OnAborted(*Request)                       {}

func newReq(f *Freelist, id uint64, thread int) *Request {
	return f.Get(id, id, thread)
}

func TestSharedLocksCoexist(t *testing.T) {
	tbl := NewTable(16, blockHandler{})
	var f Freelist
	r1, r2 := newReq(&f, 1, 0), newReq(&f, 2, 1)
	if _, err := tbl.Acquire(r1, 0, 7, txn.Read); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Acquire(r2, 0, 7, txn.Read); err != nil {
		t.Fatal(err)
	}
	if !r1.Granted() || !r2.Granted() {
		t.Fatal("shared locks not both granted")
	}
	tbl.Release(r1)
	tbl.Release(r2)
}

func TestExclusiveConflictDies(t *testing.T) {
	tbl := NewTable(16, dieHandler{})
	var f Freelist
	r1, r2 := newReq(&f, 1, 0), newReq(&f, 2, 1)
	if _, err := tbl.Acquire(r1, 0, 7, txn.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Acquire(r2, 0, 7, txn.Write); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if _, err := tbl.Acquire(r2, 0, 7, txn.Read); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("read/write conflict err = %v", err)
	}
	tbl.Release(r1)
	// After release the same key is free again.
	if _, err := tbl.Acquire(r2, 0, 7, txn.Write); err != nil {
		t.Fatal(err)
	}
	tbl.Release(r2)
}

func TestWriterWaitsForReader(t *testing.T) {
	tbl := NewTable(16, blockHandler{})
	var f Freelist
	rd := newReq(&f, 1, 0)
	if _, err := tbl.Acquire(rd, 0, 1, txn.Read); err != nil {
		t.Fatal(err)
	}
	var wrGranted atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		var f2 Freelist
		wr := newReq(&f2, 2, 1)
		if _, err := tbl.Acquire(wr, 0, 1, txn.Write); err != nil {
			t.Error(err)
			return
		}
		wrGranted.Store(true)
		tbl.Release(wr)
	}()
	time.Sleep(5 * time.Millisecond)
	if wrGranted.Load() {
		t.Fatal("writer granted while reader holds lock")
	}
	tbl.Release(rd)
	<-done
	if !wrGranted.Load() {
		t.Fatal("writer never granted after release")
	}
}

// Strict FIFO: a reader arriving behind a waiting writer must queue, not
// overtake, so writers cannot starve.
func TestReaderDoesNotOvertakeWaitingWriter(t *testing.T) {
	tbl := NewTable(16, blockHandler{})
	var f Freelist
	r1 := newReq(&f, 1, 0)
	if _, err := tbl.Acquire(r1, 0, 5, txn.Read); err != nil {
		t.Fatal(err)
	}
	writerIn := make(chan struct{})
	var order []string
	var mu sync.Mutex
	record := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		var fw Freelist
		w := newReq(&fw, 2, 1)
		close(writerIn)
		if _, err := tbl.Acquire(w, 0, 5, txn.Write); err != nil {
			t.Error(err)
			return
		}
		record("writer")
		tbl.Release(w)
	}()
	<-writerIn
	time.Sleep(2 * time.Millisecond) // let the writer enqueue
	go func() {
		defer wg.Done()
		var fr Freelist
		r2 := newReq(&fr, 3, 2)
		if _, err := tbl.Acquire(r2, 0, 5, txn.Read); err != nil {
			t.Error(err)
			return
		}
		record("reader2")
		tbl.Release(r2)
	}()
	time.Sleep(2 * time.Millisecond) // let reader2 enqueue behind writer
	tbl.Release(r1)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "writer" || order[1] != "reader2" {
		t.Fatalf("grant order = %v, want [writer reader2]", order)
	}
}

func TestReleaseGrantsCompatiblePrefix(t *testing.T) {
	tbl := NewTable(16, blockHandler{})
	var f Freelist
	w := newReq(&f, 1, 0)
	if _, err := tbl.Acquire(w, 0, 3, txn.Write); err != nil {
		t.Fatal(err)
	}
	const readers = 4
	var granted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var fr Freelist
			r := newReq(&fr, uint64(10+i), 1+i)
			if _, err := tbl.Acquire(r, 0, 3, txn.Read); err != nil {
				t.Error(err)
				return
			}
			granted.Add(1)
			// Hold briefly so all readers coexist.
			for granted.Load() < readers {
				time.Sleep(100 * time.Microsecond)
			}
			tbl.Release(r)
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	if granted.Load() != 0 {
		t.Fatal("reader granted under exclusive holder")
	}
	tbl.Release(w)
	wg.Wait()
	if granted.Load() != readers {
		t.Fatalf("granted = %d, want %d", granted.Load(), readers)
	}
}

// probeHandler records what Blockers reports from inside Wait — the same
// calling context Dreadlocks uses in production (the waiting thread itself).
type probeHandler struct {
	sawBlockers chan []int
	unblock     chan struct{}
}

func (probeHandler) Name() string                             { return "probe" }
func (probeHandler) OnConflict(*Request, []*Request) Decision { return Wait }
func (h probeHandler) Wait(tbl *Table, r *Request) bool {
	bl, waiting := tbl.Blockers(r, nil)
	if waiting {
		h.sawBlockers <- append([]int(nil), bl...)
		<-h.unblock
	}
	r.AwaitToken()
	// After the grant, Blockers must report not-waiting with no blockers.
	bl, waiting = tbl.Blockers(r, bl)
	if waiting || len(bl) != 0 {
		h.sawBlockers <- []int{-1}
	} else {
		h.sawBlockers <- nil
	}
	return true
}
func (probeHandler) OnGranted(*Request) {}
func (probeHandler) OnAborted(*Request) {}

func TestBlockersReportsConflictingThreads(t *testing.T) {
	h := probeHandler{sawBlockers: make(chan []int, 2), unblock: make(chan struct{})}
	tbl := NewTable(16, h)
	var f Freelist
	holder := newReq(&f, 1, 7)
	if _, err := tbl.Acquire(holder, 0, 9, txn.Write); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var fw Freelist
		w := fw.Get(2, 2, 3)
		if _, err := tbl.Acquire(w, 0, 9, txn.Write); err != nil {
			t.Error(err)
			return
		}
		tbl.Release(w)
	}()
	bl := <-h.sawBlockers
	if len(bl) != 1 || bl[0] != 7 {
		t.Fatalf("Blockers while waiting = %v, want [7]", bl)
	}
	tbl.Release(holder)
	close(h.unblock)
	if after := <-h.sawBlockers; after != nil {
		t.Fatalf("Blockers after grant reported waiting: %v", after)
	}
	<-done
}

func TestFreelistRecycles(t *testing.T) {
	var f Freelist
	r1 := f.Get(1, 10, 0)
	f.Put(r1)
	r2 := f.Get(2, 20, 1)
	if r1 != r2 {
		t.Fatal("freelist did not recycle")
	}
	if r2.TxnID != 2 || r2.TS != 20 || r2.Thread != 1 {
		t.Fatalf("recycled request keeps stale identity: %+v", r2)
	}
}

func TestEntryPoolCleansUp(t *testing.T) {
	tbl := NewTable(4, blockHandler{})
	var f Freelist
	// Touch many keys; after release all entries must be deleted.
	for key := uint64(0); key < 100; key++ {
		r := newReq(&f, key, 0)
		if _, err := tbl.Acquire(r, 0, key, txn.Write); err != nil {
			t.Fatal(err)
		}
		tbl.Release(r)
		f.Put(r)
	}
	for i := range tbl.buckets {
		if n := len(tbl.buckets[i].entries); n != 0 {
			t.Fatalf("bucket %d retains %d entries", i, n)
		}
	}
}

// Mutual exclusion property under concurrency: counter increments under an
// exclusive lock are never lost.
func TestMutualExclusionCounter(t *testing.T) {
	tbl := NewTable(64, blockHandler{})
	const workers, per = 8, 500
	var counter int64 // protected by the logical lock, not by atomics
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var f Freelist
			for i := 0; i < per; i++ {
				r := f.Get(uint64(w*per+i), uint64(w*per+i), w)
				if _, err := tbl.Acquire(r, 0, 0, txn.Write); err != nil {
					t.Error(err)
					return
				}
				counter++
				tbl.Release(r)
				f.Put(r)
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, workers*per)
	}
}

// Property: any single-threaded sequence of acquire/release on a small key
// space with a die handler leaves the table empty and never blocks.
func TestAcquireReleaseProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tbl := NewTable(8, dieHandler{})
		var fl Freelist
		held := map[uint64]*Request{}
		id := uint64(0)
		for _, op := range ops {
			key := uint64(op % 8)
			if r, ok := held[key]; ok {
				tbl.Release(r)
				fl.Put(r)
				delete(held, key)
				continue
			}
			id++
			r := fl.Get(id, id, 0)
			mode := txn.Read
			if op%2 == 0 {
				mode = txn.Write
			}
			if _, err := tbl.Acquire(r, 0, key, mode); err != nil {
				fl.Put(r)
				return false // single thread: conflicts are impossible
			}
			held[key] = r
		}
		for key, r := range held {
			tbl.Release(r)
			fl.Put(r)
			delete(held, key)
		}
		for i := range tbl.buckets {
			if len(tbl.buckets[i].entries) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireReportsWaitTime(t *testing.T) {
	tbl := NewTable(16, blockHandler{})
	var f Freelist
	h := newReq(&f, 1, 0)
	if _, err := tbl.Acquire(h, 0, 2, txn.Write); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		tbl.Release(h)
	}()
	var f2 Freelist
	w := newReq(&f2, 2, 1)
	waited, err := tbl.Acquire(w, 0, 2, txn.Write)
	if err != nil {
		t.Fatal(err)
	}
	if waited < 5*time.Millisecond {
		t.Fatalf("waited = %v, want >= 5ms", waited)
	}
	tbl.Release(w)
}
