package orthrus

import (
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Autotune picks the CC/exec thread split for a fixed total thread budget
// by probing candidate allocations against the actual workload — the
// paper's §4.2 observation operationalized: "too few execution threads
// causes under-utilization of concurrency control threads, and
// vice-versa", and SEDA-style systems can allocate threads from measured
// load. This implementation probes statically before the run (a dynamic
// in-flight reallocator would need thread migration, which Go's scheduler
// does not expose); each probe runs the workload for probe duration on a
// freshly configured engine and the best-throughput split wins.
//
// The probes run against db, mutating it exactly as a real run would, so
// callers should autotune on a scratch copy or accept warmup mutations
// (the bundled workloads only increment counters, so this is benign).
func Autotune(db *storage.DB, totalThreads int, pf txn.PartitionFunc, src workload.Source, probe time.Duration) Config {
	if totalThreads < 2 {
		return Config{DB: db, CCThreads: 1, ExecThreads: 1, Partition: pf}
	}
	if probe <= 0 {
		probe = 50 * time.Millisecond
	}

	candidates := candidateSplits(totalThreads)
	best := candidates[0]
	bestTput := -1.0
	for _, cand := range candidates {
		cfg := Config{DB: db, CCThreads: cand, ExecThreads: totalThreads - cand, Partition: pf}
		res := New(cfg).Run(src, probe)
		if tput := res.Throughput(); tput > bestTput {
			bestTput = tput
			best = cand
		}
	}
	return Config{DB: db, CCThreads: best, ExecThreads: totalThreads - best, Partition: pf}
}

// candidateSplits returns distinct CC-thread counts worth probing for a
// given budget: 1, 1/8, 1/5 (the paper's §4.4 choice), 1/3 and 1/2.
func candidateSplits(total int) []int {
	raw := []int{1, total / 8, total / 5, total / 3, total / 2}
	out := raw[:0]
	for _, v := range raw {
		if v < 1 {
			v = 1
		}
		if v >= total {
			v = total - 1
		}
		dup := false
		for _, x := range out {
			if x == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}
