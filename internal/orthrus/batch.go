package orthrus

// Adaptive message-plane batching (Config.BatchSize = 0).
//
// A static batch size is the wrong constant at both ends of the load
// range: under saturation a large batch amortizes ring traffic (k
// messages per atomic publish), but at low load the same batch holds a
// lone transaction's acquire in the outbox until the end-of-iteration
// flushAll pushes it out, inflating latency for no amortization gain.
// Instead of asking the operator to pick, each execution thread runs a
// small AIMD controller driven by the one signal that actually predicts
// whether batching pays: how many messages the thread publishes per loop
// pass.
//
//   - If a majority of active passes in a decision window fill the
//     current batch before the end-of-pass flush, the batch is the
//     binding constraint on amortization: additive increase, +1 per
//     window, toward maxAdaptiveBatch.
//   - If a majority of active passes publish no more than half a batch,
//     the batch is pure publish delay: multiplicative decrease, halve
//     toward 1 (where every message publishes immediately — the
//     unbatched plane).
//   - The band in between is hysteresis: hold.
//
// Only passes that made progress contribute samples. Idle polls are two
// orders of magnitude faster than work passes, so on a busy host a
// pass-count majority over all passes is dominated by how the OS
// scheduler interleaves threads, not by traffic; and a pass that moved
// no messages says nothing about whether the batch is sized right.
// Queue depth is equally misleading as a signal: a closed-loop driver
// keeps the shared submission queue near-empty (clients block on
// completion), and a thread waking from an idle sleep always sees a
// transient backlog — both invert the truth.
//
// Decisions are taken once per batchWindow samples so a single burst or
// stall cannot whip the batch around. The controller starts at
// DefaultBatchSize, so a saturated run behaves like the historical
// static default from the first pass and adapts from there.
//
// CC threads keep a fixed batch (ccBatchSize): their drain loops consume
// whatever is available and their outboxes are flushed every pass, so
// batch size barely affects their latency contribution; the adaptive
// signal (per-pass publish volume) is only meaningful on the exec side,
// where transactions enter the message plane.

const (
	// maxAdaptiveBatch caps additive growth. The static sweep (the
	// batching experiment) shows per-message amortization is flat past
	// the default, while worst-case publish delay keeps growing with the
	// batch — so the ceiling stays modest.
	maxAdaptiveBatch = 32
	// batchWindow is the number of active-pass samples per AIMD decision.
	batchWindow = 32
)

// batchController is the per-exec-thread AIMD governor. It is a pure
// state machine — observe is the only entry point — so its convergence
// behaviour is unit-testable without an engine.
type batchController struct {
	batch   int
	samples int
	hi      int // active passes that filled the batch before the flush
	lo      int // active passes that published at most half a batch
}

func newBatchController() *batchController {
	return &batchController{batch: DefaultBatchSize}
}

// observe records one loop pass — pushed is the number of messages the
// pass published, progress whether it did any work at all — and returns
// the batch size to use next. Idle passes are not samples. At each
// window boundary: a filled-batch majority grows the batch by one, a
// half-empty majority halves it; the hysteresis band holds.
func (b *batchController) observe(pushed int, progress bool) int {
	if !progress {
		return b.batch
	}
	if pushed >= b.batch {
		b.hi++
	} else if 2*pushed <= b.batch {
		b.lo++
	}
	b.samples++
	if b.samples < batchWindow {
		return b.batch
	}
	hi, lo := b.hi, b.lo
	b.samples, b.hi, b.lo = 0, 0, 0
	switch {
	case hi > batchWindow/2:
		if b.batch < maxAdaptiveBatch {
			b.batch++
		}
	case lo > batchWindow/2:
		b.batch /= 2
		if b.batch < 1 {
			b.batch = 1
		}
	}
	return b.batch
}

// ccBatchSize is the CC threads' (always static) drain/publish batch.
func ccBatchSize(cfg Config) int {
	if cfg.BatchSize > 0 {
		return cfg.BatchSize
	}
	return DefaultBatchSize
}
