package orthrus

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/workload"
)

// Driver equivalence: a fixed set of transfer transactions submitted
// through the Session surface must commit exactly once each — identical
// transaction counts — whether the message plane runs unbatched
// (BatchSize=1) or batched (BatchSize=k), and balances must be conserved
// in both.
func TestBatchDriverEquivalence(t *testing.T) {
	const records, submitters, perSubmitter = 16, 4, 250
	for _, batch := range []int{1, DefaultBatchSize} {
		db, tbl := newDB(records)
		for k := uint64(0); k < records; k++ {
			storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
		}
		eng := New(Config{DB: db, CCThreads: 3, ExecThreads: 3, BatchSize: batch})
		src := &workload.Transfer{Table: tbl, NumRecords: records}
		ses := eng.Start()
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(s)))
				for i := 0; i < perSubmitter; i++ {
					ses.Submit(src.Next(s, rng), nil)
				}
			}(s)
		}
		wg.Wait()
		ses.Drain()
		res := ses.Close()
		if got, want := res.Totals.Committed, uint64(submitters*perSubmitter); got != want {
			t.Fatalf("BatchSize=%d: committed %d, want %d", batch, got, want)
		}
		if got := sumTable(db, tbl, records); got != records*1000 {
			t.Fatalf("BatchSize=%d: sum = %d, want %d", batch, got, records*1000)
		}
	}
}

// Batching must change only how many ring operations carry the traffic,
// never the §3.3 message counts themselves: the Ncc+1 forwarding
// accounting holds at every batch size, and with BatchSize=1 each ring
// operation carries exactly one message (the unbatched ablation is
// bit-identical in its accounting).
func TestBatchPreservesMessageCounts(t *testing.T) {
	const ncc = 4
	for _, batch := range []int{1, DefaultBatchSize} {
		db, tbl := newDB(1 << 12)
		eng := New(Config{DB: db, CCThreads: ncc, ExecThreads: 2, BatchSize: batch})
		src := &fixedSpreadSource{table: tbl, k: ncc, cc: ncc, n: 1 << 12}
		res := eng.Run(src, 80*time.Millisecond)
		if res.Totals.Committed == 0 {
			t.Fatalf("BatchSize=%d: no commits", batch)
		}
		m := eng.Messages()
		perTxn := float64(m.AcquisitionMessages()) / float64(res.Totals.Committed)
		if perTxn != float64(ncc+1) {
			t.Fatalf("BatchSize=%d: acquisition messages per txn = %v, want %d (stats %+v)",
				batch, perTxn, ncc+1, m)
		}
		if batch == 1 {
			if m.EnqueueOps != m.TotalMessages() || m.DequeueOps != m.TotalMessages() {
				t.Fatalf("BatchSize=1: ring ops (enq %d, deq %d) must equal messages (%d)",
					m.EnqueueOps, m.DequeueOps, m.TotalMessages())
			}
		}
	}
}

// The acceptance check for the batched message plane: under saturated
// closed-loop load with the default BatchSize, the ring-operation
// counters must show measurably fewer atomic ring operations than
// messages sent — the cost amortization the batching exists for.
func TestBatchingReducesRingOps(t *testing.T) {
	db, tbl := newDB(1 << 12)
	eng := New(Config{DB: db, CCThreads: 4, ExecThreads: 4})
	src := &workload.YCSB{Table: tbl, NumRecords: 1 << 12, OpsPerTxn: 8,
		Partitions: 4, Spread: 4, MultiPartitionPct: 100}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	res := eng.Run(src, 200*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	m := eng.Messages()
	total := m.TotalMessages()
	if m.EnqueueOps == 0 || m.DequeueOps == 0 {
		t.Fatalf("ring-operation counters not populated: %+v", m)
	}
	// Each message is published once and consumed once; without batching
	// that is exactly `total` operations on each side. Require a
	// measurable saving, not a marginal one.
	if m.EnqueueOps+m.DequeueOps >= (2*total*9)/10 {
		t.Fatalf("batching saved too little: %d enqueue + %d dequeue ops for %d messages (%+v)",
			m.EnqueueOps, m.DequeueOps, total, m)
	}
	if m.MessagesPerEnqueue() <= 1 {
		t.Fatalf("messages per enqueue op = %v, want > 1", m.MessagesPerEnqueue())
	}
}

// Convergence of the AIMD controller as a pure state machine: sustained
// high publish volume grows additively to the cap; trickle volume decays
// multiplicatively toward 1; the hysteresis band (between half a batch
// and a full batch) holds; and idle passes — however many the OS
// scheduler interleaves — contribute no samples and so cannot move the
// batch at all.
func TestBatchControllerConvergence(t *testing.T) {
	// window feeds one full decision window of active passes, each
	// publishing `pushed` messages.
	window := func(b *batchController, pushed int) {
		for i := 0; i < batchWindow; i++ {
			b.observe(pushed, true)
		}
	}

	b := newBatchController()
	if b.batch != DefaultBatchSize {
		t.Fatalf("start batch = %d, want the static default %d", b.batch, DefaultBatchSize)
	}
	// Saturation: every active pass fills whatever the batch grows to.
	for i := 0; i < 4*maxAdaptiveBatch; i++ {
		window(b, maxAdaptiveBatch)
	}
	if b.batch != maxAdaptiveBatch {
		t.Fatalf("saturated batch = %d, want cap %d", b.batch, maxAdaptiveBatch)
	}
	// Light load: a lone message per active pass halves per window to 1.
	for i := 0; i < 10; i++ {
		window(b, 1)
	}
	if b.batch <= 0 || b.batch > 2 {
		t.Fatalf("trickle batch = %d, want 1 (or the 1<->2 boundary oscillation)", b.batch)
	}
	// Hysteresis: volume above half a batch but below a full one holds.
	b = newBatchController()
	for i := 0; i < 50; i++ {
		window(b, DefaultBatchSize-1)
	}
	if b.batch != DefaultBatchSize {
		t.Fatalf("hysteresis-band batch = %d, want unchanged %d", b.batch, DefaultBatchSize)
	}
	// Idle passes are not samples: no run of them moves the batch.
	for i := 0; i < 10_000; i++ {
		if got := b.observe(0, false); got != DefaultBatchSize {
			t.Fatalf("idle pass moved batch to %d", got)
		}
	}
	// Volume converges just above the natural per-pass traffic: from the
	// default 8, sustained volume 4 halves (2*4 <= 8) to 4, fills once
	// (4 >= 4) to 5, then parks in the hold band — one above the volume,
	// so a steady flow never quite fills the batch and every message
	// still publishes by the end-of-pass flush.
	b = newBatchController()
	for i := 0; i < 50; i++ {
		window(b, 4)
	}
	if b.batch != 5 {
		t.Fatalf("batch = %d after sustained volume 4, want 5", b.batch)
	}
}

// Correctness sweep across batch sizes, including batches larger than the
// ring capacity (partial publishes) and the channel-transport and
// exec-mediated ablations.
func TestBatchSizeSweepConservation(t *testing.T) {
	const records = 8
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"batch2", Config{CCThreads: 3, ExecThreads: 3, BatchSize: 2}},
		{"batch64-smallring", Config{CCThreads: 3, ExecThreads: 3, BatchSize: 64, QueueCap: 4}},
		{"batch8-channels", Config{CCThreads: 3, ExecThreads: 3, BatchSize: 8, UseChannels: true}},
		{"batch8-naive", Config{CCThreads: 3, ExecThreads: 3, BatchSize: 8, DisableForwarding: true}},
		{"batch8-shared", Config{CCThreads: 3, ExecThreads: 3, BatchSize: 8, SharedTable: true}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db, tbl := newDB(records)
			for k := uint64(0); k < records; k++ {
				storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
			}
			cfg := tc.cfg
			cfg.DB = db
			eng := New(cfg)
			src := &workload.Transfer{Table: tbl, NumRecords: records}
			res := eng.Run(src, 120*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			if got := sumTable(db, tbl, records); got != records*1000 {
				t.Fatalf("sum = %d, want %d", got, records*1000)
			}
		})
	}
}
