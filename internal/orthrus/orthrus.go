// Package orthrus implements the paper's system: a transaction manager
// that partitions functionality across threads (§3.1) and plans data
// access for deadlock freedom (§3.2).
//
// # Architecture
//
// A fixed set of concurrency-control (CC) threads each own a disjoint
// slice of the lock space (Partition maps every record to exactly one CC
// thread). Each CC thread keeps a private lock table — a plain map with no
// latches, because no other thread ever reads or writes it. A fixed set of
// execution threads run transaction logic and never touch lock state.
//
// The two groups share no data structures; they communicate through
// single-producer single-consumer rings (internal/spsc), one per ordered
// thread pair, exactly the paper's "N physical queues per logical input
// queue" construction:
//
//	exec e → CC c   : acquire and release messages
//	CC i   → CC j   : forwarded acquires (only i < j, see below)
//	CC c   → exec e : grant notifications
//
// # Lock acquisition
//
// An execution thread sorts a transaction's declared access set by CC
// thread id, then sends one acquire message to the lowest CC involved.
// Each CC inserts its local requests, and once all are granted forwards
// the transaction to the next CC in the chain; the last CC notifies the
// owning execution thread — Ncc+1 messages instead of 2·Ncc (§3.3,
// Figure 3). Because every transaction visits CC threads in ascending id
// order, and each CC thread admits transactions one message at a time,
// the waits-for relation cannot form a cycle: deadlock is impossible.
//
// Execution threads are asynchronous (§3.3): each keeps a window of
// in-flight transactions and keeps submitting new ones while waiting for
// grants, so queueing delay extends lock hold times but never idles a
// core.
//
// # Lifecycle
//
// The engine implements engine.Runtime: Start launches the CC and
// execution threads and returns a Session whose Submit feeds transactions
// from any caller — a benchmark driver or a server front-end — into the
// execution threads' asynchronous windows. Engine.Run is just the shared
// closed-loop driver over that session.
package orthrus

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/spsc"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Defaults.
const (
	DefaultQueueCap  = 256
	DefaultInflight  = 8
	DefaultBatchSize = 8
)

// Config configures an ORTHRUS engine.
type Config struct {
	DB *storage.DB
	// CCThreads and ExecThreads partition the machine's threads between
	// the two roles (Figure 5 explores this trade-off).
	CCThreads   int
	ExecThreads int
	// Partition maps records to CC threads. Defaults to
	// txn.HashPartitioner(CCThreads).
	Partition txn.PartitionFunc
	// QueueCap is the ring capacity (default 256).
	QueueCap int
	// Inflight is each execution thread's asynchronous window (default 8).
	Inflight int
	// BatchSize coalesces message-plane traffic: execution threads buffer
	// the acquires and releases they generate within one loop iteration
	// per destination CC thread and publish each group with a single ring
	// operation, CC threads do the same for forwards and grants, and both
	// sides drain their input rings in batches — so the per-message cost
	// of an atomic release-store plus a consumer load drops to ~1/k of
	// one. 1 reverts to per-message transfer (the unbatched ablation);
	// defaults to DefaultBatchSize. FIFO order per ring is unaffected —
	// batches are published and consumed in send order.
	BatchSize int
	// UseChannels swaps the SPSC rings for buffered Go channels — the
	// transport ablation.
	UseChannels bool
	// SharedTable switches to the §3.4 alternative: CC threads operate on
	// a single latched lock table instead of private partitions. Request
	// routing is unchanged, so the variant isolates the cost of sharing
	// the concurrency-control data structure itself.
	SharedTable bool
	// Split marks the "SPLIT ORTHRUS" variant of Figures 6/7 (physically
	// partitioned indexes). As with split deadlock-free, the benefit the
	// paper measures is cache locality, which this reproduction cannot
	// exhibit; the flag changes only the reported name. See README.md
	// "Scale and fidelity".
	Split bool
	// DisableForwarding reverts to the naive protocol of §3.3/Figure 2:
	// the execution thread mediates every CC interaction itself, paying
	// 2·Ncc messages per acquisition instead of Ncc+1. Exists to ablate
	// the forwarding optimization; MessageStats quantifies the saving.
	DisableForwarding bool
}

// MessageStats counts message-plane traffic for one Run (the quantity
// §3.3 optimizes: forwarding reduces per-acquisition messages from 2·Ncc
// to Ncc+1).
type MessageStats struct {
	Acquires uint64 // exec → CC acquire messages
	Forwards uint64 // CC → CC forwarded acquires
	Grants   uint64 // CC → exec grant/partial-grant messages
	Releases uint64 // exec → CC release messages

	// EnqueueOps and DequeueOps count transport operations — one per
	// batch publish on the producer side and one per batch consume on
	// the consumer side. On the SPSC ring each operation is a single
	// atomic store, so with BatchSize=1 each counter equals
	// TotalMessages() and with batching they fall toward
	// TotalMessages()/k — the saving the batched message plane exists
	// for. On the UseChannels ablation the counters keep the same
	// batch-structure meaning, but a channel "batch" is a convenience
	// loop that still pays one channel send/receive per message, so
	// MessagesPerEnqueue does NOT measure an achieved cost amortization
	// there.
	EnqueueOps uint64
	DequeueOps uint64
}

// AcquisitionMessages returns the messages spent acquiring locks
// (everything except releases, which both protocols pay identically).
func (m MessageStats) AcquisitionMessages() uint64 {
	return m.Acquires + m.Forwards + m.Grants
}

// TotalMessages returns all messages that crossed the message plane.
func (m MessageStats) TotalMessages() uint64 {
	return m.Acquires + m.Forwards + m.Grants + m.Releases
}

// MessagesPerEnqueue reports the achieved producer-side batching factor:
// messages sent per ring publish operation (1 when unbatched).
func (m MessageStats) MessagesPerEnqueue() float64 {
	if m.EnqueueOps == 0 {
		return 0
	}
	return float64(m.TotalMessages()) / float64(m.EnqueueOps)
}

// message kinds.
const (
	msgAcquire uint8 = iota
	msgRelease
)

// message is the unit exchanged on rings. Forwarded acquires and grants
// reuse msgAcquire: the receiver's role disambiguates.
type message struct {
	kind uint8
	w    *wrapper
}

// wrapper carries a transaction through the CC chain. Field ownership:
//
//   - owner, hops, opsByCC, t, done: written by the owning exec thread
//     before submission, read-only afterwards.
//   - hopIdx, pending: touched only by the CC thread currently processing
//     the wrapper (exactly one at any time — the chain is sequential).
//   - reqs[i]: written and read only by CC thread hops[i].
//
// Ring transfer provides the happens-before edges between owners.
type wrapper struct {
	t     *txn.Txn
	owner int
	start time.Time  // window-entry time, for commit-latency measurement
	done  func(bool) // session completion callback; may be nil

	hops    []int      // CC ids, ascending
	opsByCC [][]txn.Op // parallel to hops
	reqs    [][]*localReq

	hopIdx  int
	pending int
}

// hopOf returns the index of CC thread c in the wrapper's chain.
func (w *wrapper) hopOf(c int) int {
	for i, h := range w.hops {
		if h == c {
			return i
		}
	}
	panic("orthrus: CC thread received message for foreign transaction")
}

// Engine is an ORTHRUS instance.
type Engine struct {
	cfg   Config
	msgs  MessageStats // populated when a session closes
	inUse engine.InUseGuard
}

// Messages returns the message-plane traffic of the last closed session
// (every Run closes its session before returning).
func (e *Engine) Messages() MessageStats { return e.msgs }

// New validates the configuration and returns an engine.
func New(cfg Config) *Engine {
	if cfg.CCThreads <= 0 || cfg.ExecThreads <= 0 {
		panic("orthrus: CCThreads and ExecThreads must be positive")
	}
	if cfg.Partition == nil {
		cfg.Partition = txn.HashPartitioner(cfg.CCThreads)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = DefaultInflight
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	return &Engine{cfg: cfg}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	base := "orthrus"
	if e.cfg.Split {
		base = "split-orthrus"
	}
	if e.cfg.SharedTable {
		base += "-shared"
	}
	if e.cfg.UseChannels {
		base += "-chan"
	}
	return fmt.Sprintf("%s(%dcc/%dex)", base, e.cfg.CCThreads, e.cfg.ExecThreads)
}

// runState is per-Run message-plane state.
type runState struct {
	cfg      Config
	execToCC [][]spsc.Queue[message] // [exec][cc]
	ccToCC   [][]spsc.Queue[message] // [from][to], used only for from < to
	ccToExec [][]spsc.Queue[message] // [cc][exec]
	shared   *sharedTable            // non-nil in SharedTable mode
	ccStop   atomic.Bool

	// message-plane counters (MessageStats after the run)
	nAcquires atomic.Uint64
	nForwards atomic.Uint64
	nGrants   atomic.Uint64
	nReleases atomic.Uint64
	// ring-operation counters, accumulated per thread and flushed once at
	// thread exit (an atomic add per ring op would cost what batching
	// saves).
	nEnqOps atomic.Uint64
	nDeqOps atomic.Uint64
}

// opCounter is a thread-local tally of ring operations, flushed to the
// runState atomics when the owning thread exits.
type opCounter struct {
	enq, deq uint64
}

func (o *opCounter) flush(s *runState) {
	s.nEnqOps.Add(o.enq)
	s.nDeqOps.Add(o.deq)
	o.enq, o.deq = 0, 0
}

func (e *Engine) newRunState() *runState {
	cfg := e.cfg
	s := &runState{cfg: cfg}
	grantCap := cfg.QueueCap
	if grantCap < cfg.Inflight {
		// A CC thread must never block sending grants (liveness of the
		// message plane relies on it), so grant rings hold the whole
		// in-flight window.
		grantCap = cfg.Inflight
	}
	newQ := func(capacity int) spsc.Queue[message] {
		if cfg.UseChannels {
			return spsc.NewChan[message](capacity)
		}
		return spsc.New[message](capacity)
	}
	s.execToCC = make([][]spsc.Queue[message], cfg.ExecThreads)
	for i := range s.execToCC {
		s.execToCC[i] = make([]spsc.Queue[message], cfg.CCThreads)
		for j := range s.execToCC[i] {
			s.execToCC[i][j] = newQ(cfg.QueueCap)
		}
	}
	s.ccToCC = make([][]spsc.Queue[message], cfg.CCThreads)
	s.ccToExec = make([][]spsc.Queue[message], cfg.CCThreads)
	for i := range s.ccToCC {
		s.ccToCC[i] = make([]spsc.Queue[message], cfg.CCThreads)
		for j := range s.ccToCC[i] {
			if i != j {
				s.ccToCC[i][j] = newQ(cfg.QueueCap)
			}
		}
		s.ccToExec[i] = make([]spsc.Queue[message], cfg.ExecThreads)
		for j := range s.ccToExec[i] {
			s.ccToExec[i][j] = newQ(grantCap)
		}
	}
	if cfg.SharedTable {
		s.shared = newSharedTable(1 << 12)
	}
	return s
}

// Run implements engine.Engine via the shared closed-loop driver.
func (e *Engine) Run(src workload.Source, duration time.Duration) metrics.Result {
	return engine.RunClosedLoop(e, src, duration)
}

// Clients implements engine.Runtime: enough submitters to fill every
// execution thread's asynchronous window, plus one queued transaction per
// thread so a completed window slot refills without waiting on a client.
func (e *Engine) Clients() int { return e.cfg.ExecThreads * (e.cfg.Inflight + 1) }

// session is the live engine: CC threads plus execution threads serving a
// shared submission queue. Execution threads pull submissions to top up
// their asynchronous windows, so an outside caller's transactions flow
// into the same CC message plane the closed-loop benchmarks exercise.
type session struct {
	e   *Engine
	s   *runState
	set *metrics.Set

	submit   chan engine.Submission
	inflight engine.Gauge
	execStop atomic.Bool
	closed   atomic.Bool
	execWg   sync.WaitGroup
	ccWg     sync.WaitGroup
	start    time.Time
}

// Start implements engine.Runtime. A second Start while a previous
// session is still open panics (engine.InUseGuard): two live sessions
// would race on the engine's message statistics. Sequential
// Start→Close→Start reuse is supported — every Run does it.
func (e *Engine) Start() engine.Session {
	e.inUse.Acquire(e.Name())
	ses := &session{
		e:      e,
		s:      e.newRunState(),
		set:    metrics.NewSet(e.cfg.ExecThreads),
		submit: make(chan engine.Submission, e.Clients()),
		start:  time.Now(),
	}
	for c := 0; c < e.cfg.CCThreads; c++ {
		ses.ccWg.Add(1)
		go func(c int) {
			defer ses.ccWg.Done()
			newCCThread(ses.s, c).loop()
		}(c)
	}
	for x := 0; x < e.cfg.ExecThreads; x++ {
		ses.execWg.Add(1)
		go func(x int) {
			defer ses.execWg.Done()
			newExecThread(ses, x, ses.set.Thread(x)).loop()
		}(x)
	}
	return ses
}

// Submit implements engine.Session. It blocks only when the submission
// queue is full — backpressure from saturated execution threads.
// Submitting to a closed session panics: the execution threads are
// stopped, so the transaction would sit in the queue forever.
func (ses *session) Submit(t *txn.Txn, done func(committed bool)) {
	if ses.closed.Load() {
		panic("orthrus: " + ses.e.Name() + ": Submit on a closed session")
	}
	ses.inflight.Add(1)
	ses.submit <- engine.Submission{Txn: t, Done: done}
}

// Drain implements engine.Session.
func (ses *session) Drain() { ses.inflight.Wait() }

// Close implements engine.Session. It drains outstanding submissions,
// retires the execution threads, lets the CC threads take a final pass
// over straggling releases, and reports the session's metrics. A second
// Close panics: it would release the engine's in-use guard out from
// under a newer session.
func (ses *session) Close() metrics.Result {
	if !ses.closed.CompareAndSwap(false, true) {
		panic("orthrus: " + ses.e.Name() + ": Close on a closed session")
	}
	ses.inflight.Wait()
	ses.execStop.Store(true)
	ses.execWg.Wait()
	ses.s.ccStop.Store(true)
	ses.ccWg.Wait()

	ses.e.msgs = MessageStats{
		Acquires:   ses.s.nAcquires.Load(),
		Forwards:   ses.s.nForwards.Load(),
		Grants:     ses.s.nGrants.Load(),
		Releases:   ses.s.nReleases.Load(),
		EnqueueOps: ses.s.nEnqOps.Load(),
		DequeueOps: ses.s.nDeqOps.Load(),
	}
	ses.e.inUse.Release()
	return metrics.Result{System: ses.e.Name(), Totals: ses.set.Totals(), Duration: time.Since(ses.start)}
}

// ---------------------------------------------------------------------
// Execution threads
// ---------------------------------------------------------------------

type execThread struct {
	s     *runState
	ses   *session
	id    int
	stats *metrics.ThreadStats
	ids   *engine.IDSource
	ctx   engine.PlannedCtx

	window   int
	inflight int
	// logicTime accumulates pure transaction-logic time within the
	// current loop iteration, so the iteration remainder can be
	// classified as locking overhead.
	logicTime time.Duration

	// Batched message plane: acquires and releases generated within one
	// loop iteration are coalesced per destination CC thread in out and
	// published with one ring operation per batch. scratch is the batched
	// grant-drain buffer; it is safe to reuse across handleGrant calls
	// because flushing never consumes messages (see flushOutbox), so
	// drainGrants can never re-enter while iterating it.
	batch   int
	out     [][]message
	scratch []message
	ops     opCounter
}

func newExecThread(ses *session, id int, stats *metrics.ThreadStats) *execThread {
	cfg := ses.s.cfg
	return &execThread{
		s:       ses.s,
		ses:     ses,
		id:      id,
		stats:   stats,
		ids:     engine.NewIDSource(id),
		ctx:     engine.PlannedCtx{DB: cfg.DB},
		window:  cfg.Inflight,
		batch:   cfg.BatchSize,
		out:     make([][]message, cfg.CCThreads),
		scratch: make([]message, cfg.BatchSize),
	}
}

func (x *execThread) loop() {
	defer x.ops.flush(x.s)
	var idle engine.IdleWaiter
	for {
		progress := false
		t0 := time.Now()
		x.logicTime = 0

		// Drain grants from every CC thread.
		if x.drainGrants() {
			progress = true
		}

		// Top up the asynchronous window from the submission queue.
		for x.inflight < x.window {
			var sub engine.Submission
			select {
			case sub = <-x.ses.submit:
			default:
			}
			if sub.Txn == nil {
				break
			}
			sub.Txn.ID = x.ids.Next()
			x.submit(sub.Txn, sub.Done, time.Now())
			progress = true
		}

		// Publish everything this iteration coalesced before deciding to
		// idle or exit: a buffered acquire must not wait on traffic that
		// may never come, and a buffered release may be the one unblocking
		// another thread's transaction.
		x.flushAll()

		if x.inflight == 0 && x.ses.execStop.Load() && len(x.ses.submit) == 0 {
			// Close drains all submissions before setting execStop, so
			// nothing can arrive after this check; flushAll above has
			// published any straggling releases.
			return
		}
		if progress {
			idle.Reset()
			// Everything in this iteration that was not transaction logic
			// is messaging/planning overhead: the locking bucket.
			x.stats.AddLock(time.Since(t0) - x.logicTime)
		} else {
			// Idle: window full (or queue empty) and no grants ready.
			// Yield-then-sleep so an idle serving session does not burn a
			// core; the wait is measured so the descheduled period lands
			// in the wait bucket.
			idle.Wait()
			x.stats.AddWait(time.Since(t0))
		}
	}
}

// drainGrants batch-consumes every CC→exec grant ring and reports whether
// any grant was handled.
func (x *execThread) drainGrants() bool {
	progress := false
	for c := 0; c < x.s.cfg.CCThreads; c++ {
		q := x.s.ccToExec[c][x.id]
		for {
			n := q.DequeueBatch(x.scratch)
			if n == 0 {
				break
			}
			x.ops.deq++
			for i := 0; i < n; i++ {
				x.handleGrant(x.scratch[i].w)
			}
			progress = true
			if n < len(x.scratch) {
				break
			}
		}
	}
	return progress
}

// submit plans the transaction's CC chain and sends the first acquire.
// start is when this execution thread accepted the transaction into its
// window (preserved across OLLP restarts so latency covers the whole
// retry chain), done its session completion callback.
func (x *execThread) submit(t *txn.Txn, done func(bool), start time.Time) {
	t.SortOps()
	w := &wrapper{t: t, owner: x.id, start: start, done: done}

	// Group ops by home CC thread, emitting hops in ascending CC id — the
	// deadlock-avoidance order (§3.2). Partition ids are folded modulo the
	// CC thread count so a partitioner with a wider range than the engine
	// (e.g. an Autotune probe of a smaller candidate split) can never
	// silently drop an op — every declared lock must be acquired.
	pf := x.s.cfg.Partition
	n := x.s.cfg.CCThreads
	for c := 0; c < n; c++ {
		var ops []txn.Op
		for _, op := range t.Ops {
			if pf(op.Table, op.Key)%n == c {
				ops = append(ops, op)
			}
		}
		if len(ops) > 0 {
			w.hops = append(w.hops, c)
			w.opsByCC = append(w.opsByCC, ops)
			w.reqs = append(w.reqs, nil)
		}
	}

	if len(w.hops) == 0 {
		// No declared ops: nothing to lock, run immediately.
		x.finish(w)
		return
	}

	x.inflight++
	x.s.nAcquires.Add(1)
	x.push(w.hops[0], message{kind: msgAcquire, w: w})
}

// push buffers m for CC thread c, publishing the destination's outbox
// once it reaches the batch size. With BatchSize=1 every message is
// published immediately — exactly the unbatched message plane.
func (x *execThread) push(c int, m message) {
	x.out[c] = append(x.out[c], m)
	if len(x.out[c]) >= x.batch {
		x.flushDest(c)
	}
}

// flushAll publishes every outbox. Flushing never handles messages, so
// no new pushes can occur mid-sweep and a single pass reaches empty.
func (x *execThread) flushAll() {
	for c := range x.out {
		if len(x.out[c]) > 0 {
			x.flushDest(c)
		}
	}
}

// flushDest publishes the outbox for CC thread c, spinning while the
// target ring is full. Blocking here is live: a CC thread always returns
// to draining its input rings, because its own sends cannot block
// indefinitely — grants always fit (see flushGrant) and forwards flow
// acyclically toward the highest CC thread, which only sends grants
// (see flushForward).
func (x *execThread) flushDest(c int) {
	flushOutbox(x.s.execToCC[x.id][c], &x.out[c], &x.ops)
}

// flushOutbox publishes *buf to q in batches, spinning politely while
// the ring is full, counting one ring operation per successful publish.
// It consumes nothing and calls no handlers, so it is safe to invoke
// from inside any drain loop — the caller's scratch buffers and outboxes
// cannot be mutated underneath it.
func flushOutbox(q spsc.Queue[message], buf *[]message, ops *opCounter) {
	for len(*buf) > 0 {
		n := q.TryEnqueueBatch(*buf)
		if n > 0 {
			ops.enq++
			*buf = append((*buf)[:0], (*buf)[n:]...)
			continue
		}
		runtime.Gosched()
	}
}

// handleGrant processes a CC-thread notification. With forwarding enabled
// a grant means the whole chain completed; in the §3.3 naive mode
// (DisableForwarding) intermediate hops also notify the owner, which must
// mediate the next hop itself — the 2·Ncc-message protocol of Figure 2.
func (x *execThread) handleGrant(w *wrapper) {
	if x.s.cfg.DisableForwarding && w.hopIdx+1 < len(w.hops) {
		w.hopIdx++
		x.s.nAcquires.Add(1)
		x.push(w.hops[w.hopIdx], message{kind: msgAcquire, w: w})
		return
	}
	x.finish(w)
}

// finish runs a fully-locked transaction's logic, then commits and
// releases (or re-plans after an OLLP estimate miss).
func (x *execThread) finish(w *wrapper) {
	t := w.t
	start := time.Now()
	x.ctx.Begin(t)
	err := t.Logic(&x.ctx)
	d := time.Since(start)
	x.stats.AddExec(d)
	x.logicTime += d

	locked := len(w.hops) > 0
	if err == nil {
		x.ctx.Commit()
		x.release(w)
		x.stats.Committed++
		x.stats.Latency.Record(time.Since(w.start))
		if locked {
			x.inflight--
		}
		if w.done != nil {
			w.done(true)
		}
		x.ses.inflight.Done()
		return
	}
	if err != txn.ErrEstimateMiss {
		panic(fmt.Sprintf("orthrus: transaction logic failed: %v", err))
	}
	// OLLP estimate miss (§3.2): roll back, release, re-plan, restart.
	// The session completion fires only on the final commit.
	x.ctx.Abort()
	x.release(w)
	if locked {
		x.inflight--
	}
	x.stats.Aborted++
	x.stats.Misses++
	if t.Replan == nil {
		panic("orthrus: estimate miss without Replan hook")
	}
	t.Replan(t)
	t.Partitions = nil
	x.submit(t, w.done, w.start)
}

// release notifies every CC thread in the chain. Fire-and-forget: release
// requests are satisfied unconditionally (§3.1).
func (x *execThread) release(w *wrapper) {
	for _, c := range w.hops {
		x.s.nReleases.Add(1)
		x.push(c, message{kind: msgRelease, w: w})
	}
}

var (
	_ engine.System  = (*Engine)(nil)
	_ engine.Session = (*session)(nil)
)
