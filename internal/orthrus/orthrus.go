// Package orthrus implements the paper's system: a transaction manager
// that partitions functionality across threads (§3.1) and plans data
// access for deadlock freedom (§3.2).
//
// # Architecture
//
// A fixed set of concurrency-control (CC) threads own disjoint slices of
// the lock space. Routing is two-level: a static hash maps every record
// to one of P fixed logical partitions (P ≫ CC threads), and an
// epoch-versioned routing table maps each logical partition to its
// current owning CC thread (routing.go). Each CC thread keeps one private
// lock table per owned partition — plain maps with no latches, because
// no other thread ever reads or writes them — and ownership of a
// partition can be handed to another CC thread at runtime (live
// migration, controller.go), which is what lets concurrency-control
// capacity be re-provisioned to follow a shifting workload: the paper's
// Figure 5 observation that the right CC:exec ratio is workload-dependent,
// made adjustable while the engine serves. A fixed set of execution
// threads run transaction logic and never touch lock state.
//
// The two groups share no data structures; they communicate through
// single-producer single-consumer rings (internal/spsc), one per ordered
// thread pair, exactly the paper's "N physical queues per logical input
// queue" construction:
//
//	exec e → CC c   : acquire and release messages
//	CC i   → CC j   : forwarded acquires (only i < j, see below)
//	CC c   → exec e : grant notifications
//
// # Lock acquisition
//
// An execution thread resolves a transaction's declared access set
// through the current routing table, sorts the owning CC threads by id,
// then sends one acquire message to the lowest CC involved. Each CC
// inserts its local requests, and once all are granted forwards the
// transaction to the next CC in the chain; the last CC notifies the
// owning execution thread — Ncc+1 messages instead of 2·Ncc (§3.3,
// Figure 3). Because every transaction visits CC threads in ascending id
// order under the routing epoch it was planned in, and ownership changes
// only after every chain from older epochs has drained (see the
// migration protocol in controller.go), the waits-for relation cannot
// form a cycle: deadlock is impossible.
//
// Execution threads are asynchronous (§3.3): each keeps a window of
// in-flight transactions and keeps submitting new ones while waiting for
// grants, so queueing delay extends lock hold times but never idles a
// core.
//
// # Lifecycle
//
// The engine implements engine.Runtime: Start launches the CC and
// execution threads (and, when enabled, the adaptive controller) and
// returns a Session whose Submit feeds transactions from any caller — a
// benchmark driver or a server front-end — into the execution threads'
// asynchronous windows. Engine.Run is just the shared closed-loop driver
// over that session.
package orthrus

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/spsc"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Defaults.
const (
	DefaultQueueCap = 256
	DefaultInflight = 8
	// DefaultBatchSize is the CC threads' static message-plane batching
	// factor and the adaptive exec-side controller's starting point
	// (see batch.go); exec threads only pin it when BatchSize is set.
	DefaultBatchSize = 8
	// DefaultPartitionFactor sizes the logical partition space relative to
	// the CC thread count: LogicalPartitions defaults to this many
	// partitions per CC thread, so ownership can move at sub-thread
	// granularity.
	DefaultPartitionFactor = 4
)

// Config configures an ORTHRUS engine.
type Config struct {
	DB *storage.DB
	// CCThreads and ExecThreads partition the machine's threads between
	// the two roles (Figure 5 explores this trade-off). CCThreads is the
	// ceiling on concurrency-control provisioning; the adaptive controller
	// may concentrate ownership on fewer threads (the rest idle).
	CCThreads   int
	ExecThreads int
	// Partition is the static level of two-level routing: record →
	// logical partition. Its result is folded modulo LogicalPartitions.
	// Defaults to txn.HashPartitioner(LogicalPartitions).
	Partition txn.PartitionFunc
	// LogicalPartitions is the size P of the fixed logical partition
	// space. Defaults to DefaultPartitionFactor × CCThreads. With the
	// default Partition and Routing the composed record → CC mapping is
	// identical to the historical HashPartitioner(CCThreads).
	LogicalPartitions int
	// Routing is the initial logical partition → CC thread assignment
	// (len LogicalPartitions, entries in [0, CCThreads)). Defaults to
	// pid mod CCThreads.
	Routing []int
	// Controller configures the adaptive controller that samples per-CC
	// load and migrates partitions at runtime. Zero value = disabled.
	Controller ControllerConfig
	// QueueCap is the ring capacity (default 256).
	QueueCap int
	// Inflight is each execution thread's asynchronous window (default 8).
	Inflight int
	// BatchSize coalesces message-plane traffic: execution threads buffer
	// the acquires and releases they generate within one loop iteration
	// per destination CC thread and publish each group with a single ring
	// operation, CC threads do the same for forwards and grants, and both
	// sides drain their input rings in batches — so the per-message cost
	// of an atomic release-store plus a consumer load drops to ~1/k of
	// one. 1 reverts to per-message transfer (the unbatched ablation).
	// FIFO order per ring is unaffected — batches are published and
	// consumed in send order.
	//
	// 0 (the default) makes each execution thread's batch adaptive: an
	// AIMD controller grows it while the thread's per-pass publish volume
	// keeps filling it and halves it when active passes publish half a
	// batch or less, so saturated runs amortize ring traffic like a large
	// static batch while lightly loaded runs publish (and so acknowledge)
	// almost immediately, like BatchSize=1. A positive value pins the
	// historical static behaviour. See batch.go.
	BatchSize int
	// UseChannels swaps the SPSC rings for buffered Go channels — the
	// transport ablation.
	UseChannels bool
	// SharedTable switches to the §3.4 alternative: CC threads operate on
	// a single latched lock table instead of private partitions. Request
	// routing is unchanged, so the variant isolates the cost of sharing
	// the concurrency-control data structure itself.
	SharedTable bool
	// Split marks the "SPLIT ORTHRUS" variant of Figures 6/7 (physically
	// partitioned indexes). As with split deadlock-free, the benefit the
	// paper measures is cache locality, which this reproduction cannot
	// exhibit; the flag changes only the reported name. See README.md
	// "Scale and fidelity".
	Split bool
	// DisableForwarding reverts to the naive protocol of §3.3/Figure 2:
	// the execution thread mediates every CC interaction itself, paying
	// 2·Ncc messages per acquisition instead of Ncc+1. Exists to ablate
	// the forwarding optimization; MessageStats quantifies the saving.
	DisableForwarding bool
	// Wal, when enabled, makes commit acknowledgment durable: execution
	// threads pipeline redo records into per-thread append buffers at
	// pre-commit — inside the existing asynchronous in-flight window, so
	// CC threads never stall on I/O — and the session completion fires
	// from the group-commit flusher in LSN order. Nil or Off = the
	// paper's instant acknowledgment.
	Wal *wal.Log
	// Snapshot tunes the MVCC snapshot-read path, active when DB has
	// versioned tables: ReadOnly transactions are then served inline on
	// the execution thread at the commit frontier — zero CC messages,
	// the purest form of the paper's separation argument (the CC plane
	// never hears about read-only traffic at all).
	Snapshot engine.SnapshotConfig
	// Checkpoint, when its Store is set, runs a background fuzzy
	// checkpointer over the session (requires an enabled Wal); see
	// engine.CheckpointConfig.
	Checkpoint engine.CheckpointConfig
	// Transport selects the message-plane backend: the zero value is
	// the in-process ring plane; Kind "tcp" splits CC and execution
	// threads across two OS processes (see TransportConfig).
	Transport TransportConfig
}

// CCStats is one CC thread's share of the message plane — the per-thread
// load breakdown the adaptive controller steers by and the batching
// experiment reports. Acquires, Forwards and Releases count messages this
// thread handled (received and processed); Grants counts grants it
// issued. Summed across threads they equal the corresponding MessageStats
// totals — a conservation check the test suite asserts.
type CCStats struct {
	Acquires uint64 // exec → this CC acquire messages handled
	Forwards uint64 // CC → this CC forwarded acquires handled
	Releases uint64 // release messages handled
	Grants   uint64 // grant messages issued by this CC
	// QueueHighWater is the largest number of messages drained in one
	// pass over this thread's input rings — a backlog proxy: a thread
	// that keeps up drains small batches, a bottleneck thread finds its
	// rings full.
	QueueHighWater int
	// Partitions is the number of logical partitions the thread owned
	// when the session closed.
	Partitions int
}

// Handled returns the messages this CC thread processed.
func (s CCStats) Handled() uint64 { return s.Acquires + s.Forwards + s.Releases }

// MessageStats counts message-plane traffic for one Run (the quantity
// §3.3 optimizes: forwarding reduces per-acquisition messages from 2·Ncc
// to Ncc+1).
type MessageStats struct {
	Acquires uint64 // exec → CC acquire messages
	Forwards uint64 // CC → CC forwarded acquires
	Grants   uint64 // CC → exec grant/partial-grant messages
	Releases uint64 // exec → CC release messages

	// EnqueueOps and DequeueOps count transport operations — one per
	// batch publish on the producer side and one per batch consume on
	// the consumer side. On the SPSC ring each operation is a single
	// atomic store, so with BatchSize=1 each counter equals
	// TotalMessages() and with batching they fall toward
	// TotalMessages()/k — the saving the batched message plane exists
	// for. On the UseChannels ablation the counters keep the same
	// batch-structure meaning, but a channel "batch" is a convenience
	// loop that still pays one channel send/receive per message, so
	// MessagesPerEnqueue does NOT measure an achieved cost amortization
	// there.
	EnqueueOps uint64
	DequeueOps uint64

	// PerCC is the per-CC-thread breakdown (receive-side counted, so
	// summing a field across PerCC cross-checks the send-side totals
	// above).
	PerCC []CCStats

	// ExecBatch is each execution thread's batch size when the session
	// closed: the configured static value, or wherever the adaptive
	// controller (Config.BatchSize=0) had converged.
	ExecBatch []int

	// Net counts the session's wire traffic — zero on the in-process
	// plane, per-node frame/message/byte counters on the tcp transport.
	Net NetStats
}

// AcquisitionMessages returns the messages spent acquiring locks
// (everything except releases, which both protocols pay identically).
func (m MessageStats) AcquisitionMessages() uint64 {
	return m.Acquires + m.Forwards + m.Grants
}

// TotalMessages returns all messages that crossed the message plane.
func (m MessageStats) TotalMessages() uint64 {
	return m.Acquires + m.Forwards + m.Grants + m.Releases
}

// MessagesPerEnqueue reports the achieved producer-side batching factor:
// messages sent per ring publish operation (1 when unbatched).
func (m MessageStats) MessagesPerEnqueue() float64 {
	if m.EnqueueOps == 0 {
		return 0
	}
	return float64(m.TotalMessages()) / float64(m.EnqueueOps)
}

// message kinds.
const (
	msgAcquire uint8 = iota
	msgRelease
)

// message is the unit exchanged on rings. Forwarded acquires and grants
// reuse msgAcquire: the receiver's role disambiguates. id mirrors
// wrapper.id at push time so the networked transport can serialize a
// release after its wrapper was recycled (releases cross the wire as
// the id alone) and deliver a grant whose wrapper lives in another
// process (w is then nil and the owning exec thread resolves the id);
// the in-process plane ignores it.
type message struct {
	kind uint8
	w    *wrapper
	id   uint64
}

// wrapper carries a transaction through the CC chain. Field ownership:
//
//   - owner, hops, opsByCC, epoch, t, done: written by the owning exec
//     thread before submission, read-only afterwards.
//   - hopIdx, pending: touched only by the CC thread currently processing
//     the wrapper (exactly one at any time — the chain is sequential).
//   - reqs[i]: written and read only by CC thread hops[i].
//   - releasesLeft: atomically decremented by each CC thread processing
//     one of the wrapper's release messages; the thread that takes it to
//     zero retires the wrapper's routing epoch (see epochGauge).
//   - refs: one reference per observer — each CC hop, the owning exec
//     thread, and (when durable) the WAL commit ack. The last decrement
//     recycles the wrapper and its transaction (runState.dropRef), so
//     neither can be reused while any thread may still touch them.
//
// Ring transfer provides the happens-before edges between owners.
//
// Wrappers are pooled (runState.wraps): hops, opsByCC and reqs keep
// their backing arrays across lives, so steady-state planning performs
// no allocation.
type wrapper struct {
	t     *txn.Txn
	owner int
	start time.Time  // window-entry time, for commit-latency measurement
	done  func(bool) // session completion callback; may be nil

	// id is the transaction's wire identity on the networked transport:
	// unique per submission attempt (tcp mode draws a fresh id for each
	// OLLP replan, so one id never names two generations of lock
	// state). The in-process plane carries it but never reads it.
	id uint64

	epoch   uint64     // routing epoch the chain was planned under
	hops    []int      // CC ids, ascending
	opsByCC [][]txn.Op // parallel to hops
	reqs    [][]*localReq

	hopIdx       int
	pending      int
	releasesLeft atomic.Int32
	refs         atomic.Int32

	// wireReleases is the CC node's reader-private countdown of release
	// messages still expected for this wrapper's wire id (touched only
	// by the transport's single reader goroutine; see
	// tcpTransport.materialize).
	wireReleases int
}

// resetPlan truncates the planning slices, keeping every backing array
// (including the inner opsByCC/reqs buffers, which plan and cc.acquire
// re-extend within capacity) for the wrapper's next plan or life.
func (w *wrapper) resetPlan() {
	w.hops = w.hops[:0]
	w.opsByCC = w.opsByCC[:0]
	w.reqs = w.reqs[:0]
}

// hopOf returns the index of CC thread c in the wrapper's chain.
func (w *wrapper) hopOf(c int) int {
	for i, h := range w.hops {
		if h == c {
			return i
		}
	}
	panic("orthrus: CC thread received message for foreign transaction")
}

// Engine is an ORTHRUS instance.
type Engine struct {
	cfg   Config
	msgs  MessageStats    // populated when a session closes
	ctrl  ControllerStats // populated when a session closes
	inUse engine.InUseGuard
	clock engine.CommitClock // stamps versioned commits when Wal is off
}

// Messages returns the message-plane traffic of the last closed session
// (every Run closes its session before returning).
func (e *Engine) Messages() MessageStats { return e.msgs }

// ControllerStats returns the adaptive controller's activity during the
// last closed session (zero when the controller was disabled).
func (e *Engine) ControllerStats() ControllerStats { return e.ctrl }

// Validate panics on nonsensical knobs: thread counts must be positive,
// and fields whose zero value means "use the default" (QueueCap,
// Inflight, BatchSize, LogicalPartitions, and the controller's knobs)
// are rejected when negative with a clear panic rather than surfacing as
// a hang or an index fault deep inside ring or table construction.
func (c Config) Validate() {
	if c.CCThreads <= 0 || c.ExecThreads <= 0 {
		panic("orthrus: CCThreads and ExecThreads must be positive")
	}
	if c.QueueCap < 0 {
		panic(fmt.Sprintf("orthrus: QueueCap must not be negative (got %d; 0 means default)", c.QueueCap))
	}
	if c.Inflight < 0 {
		panic(fmt.Sprintf("orthrus: Inflight must not be negative (got %d; 0 means default)", c.Inflight))
	}
	if c.BatchSize < 0 {
		panic(fmt.Sprintf("orthrus: BatchSize must not be negative (got %d; 0 means adaptive)", c.BatchSize))
	}
	if c.LogicalPartitions < 0 {
		panic(fmt.Sprintf("orthrus: LogicalPartitions must not be negative (got %d; 0 means default)", c.LogicalPartitions))
	}
	c.Controller.Validate()
	c.Snapshot.Validate()
	c.Checkpoint.Validate()
	c.Transport.Validate()
	if c.Transport.remote() {
		if c.Controller.Enable {
			panic("orthrus: the adaptive controller requires the in-process transport (live migration is node-local)")
		}
		if c.UseChannels {
			panic("orthrus: UseChannels is an in-process ring ablation; incompatible with Transport.Kind \"tcp\"")
		}
	}
}

// New validates the configuration and returns an engine.
func New(cfg Config) *Engine {
	cfg.Validate()
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.Inflight == 0 {
		cfg.Inflight = DefaultInflight
	}
	// BatchSize 0 stays 0: it selects the adaptive per-exec-thread
	// controller (see batch.go); CC threads fall back to DefaultBatchSize.
	if cfg.LogicalPartitions == 0 {
		cfg.LogicalPartitions = DefaultPartitionFactor * cfg.CCThreads
	}
	if cfg.Partition == nil {
		cfg.Partition = txn.HashPartitioner(cfg.LogicalPartitions)
	}
	if cfg.Routing != nil {
		owner := make([]int32, len(cfg.Routing))
		for i, o := range cfg.Routing {
			owner[i] = int32(o)
		}
		validateRouting(owner, cfg.LogicalPartitions, cfg.CCThreads)
	}
	cfg.Controller = cfg.Controller.withDefaults(cfg.QueueCap)
	return &Engine{cfg: cfg}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	base := "orthrus"
	if e.cfg.Split {
		base = "split-orthrus"
	}
	if e.cfg.SharedTable {
		base += "-shared"
	}
	if e.cfg.UseChannels {
		base += "-chan"
	}
	if e.cfg.Controller.Enable {
		base += "-elastic"
	}
	if e.cfg.Transport.remote() {
		base += "-tcp/" + e.cfg.Transport.Role
	}
	return fmt.Sprintf("%s(%dcc/%dex)", base, e.cfg.CCThreads, e.cfg.ExecThreads)
}

// ccLiveStats is one CC thread's live observability slot: flushed to by
// the owning thread once per drain pass, sampled by the controller while
// the session runs, harvested into CCStats at close. Padded so slots of
// adjacent threads never false-share.
type ccLiveStats struct {
	acquires atomic.Uint64
	forwards atomic.Uint64
	releases atomic.Uint64
	grants   atomic.Uint64
	// hiWater is the per-pass drained-message high-water mark since the
	// controller's last sample (the controller resets it each tick);
	// hiWaterRun is the same mark over the whole session.
	hiWater    atomic.Int64
	hiWaterRun atomic.Int64
	// Pads the six 8-byte atomics above to 128 bytes — two cache lines,
	// clearing the adjacent-line prefetcher between neighbouring slots.
	_ [80]byte
}

// pidCounter is one logical partition's op-load tally. Neighbouring
// partitions are usually owned by different CC threads, so the counters
// are padded apart rather than packed into a plain []atomic.Uint64.
type pidCounter struct {
	n atomic.Uint64
	_ [120]byte
}

// runState is per-Run message-plane state.
type runState struct {
	cfg Config
	// tr is the message-plane backend; it populates the three queue
	// planes below (install) and owns any cross-process machinery.
	tr       Transport
	execToCC [][]spsc.Queue[message] // [exec][cc]
	ccToCC   [][]spsc.Queue[message] // [from][to], used only for from < to
	ccToExec [][]spsc.Queue[message] // [cc][exec]
	shared   *sharedTable            // non-nil in SharedTable mode
	ccStop   atomic.Bool

	// Two-level routing: rt is the current epoch's logical-partition →
	// CC-thread table; epochs tracks in-flight transactions per routing
	// epoch (the migration drain barrier); ccCtrl carries shard handoffs.
	rt     atomic.Pointer[routingTable]
	epochs epochGauge
	ccCtrl []chan ccCtrl

	// Controller inputs: per-logical-partition op load and per-CC-thread
	// live counters.
	pidLoad []pidCounter
	ccLive  []ccLiveStats

	// wraps pools wrappers and acks pools WAL commit-ack closures; both
	// are shared across exec and CC threads because any of a wrapper's
	// observers may be the one dropping the final reference.
	wraps sync.Pool
	acks  sync.Pool

	// execBatch[x] is exec thread x's final (possibly adaptive) batch
	// size, written when the thread exits and read after execWg.Wait().
	execBatch []int

	// message-plane counters (MessageStats after the run)
	nAcquires atomic.Uint64
	nForwards atomic.Uint64
	nGrants   atomic.Uint64
	nReleases atomic.Uint64
	// ring-operation counters, accumulated per thread and flushed once at
	// thread exit (an atomic add per ring op would cost what batching
	// saves).
	nEnqOps atomic.Uint64
	nDeqOps atomic.Uint64
}

// pidOf resolves the static routing level: record → logical partition.
// The raw partitioner is folded modulo the logical partition count so a
// partitioner with a wider range than the engine (e.g. an Autotune probe
// of a smaller candidate split) can never silently drop an op — every
// declared lock must be acquired.
func (s *runState) pidOf(table int, key uint64) int {
	return s.cfg.Partition(table, key) % s.cfg.LogicalPartitions
}

// opCounter is a thread-local tally of ring operations, flushed to the
// runState atomics when the owning thread exits.
type opCounter struct {
	enq, deq uint64
}

func (o *opCounter) flush(s *runState) {
	s.nEnqOps.Add(o.enq)
	s.nDeqOps.Add(o.deq)
	o.enq, o.deq = 0, 0
}

func (e *Engine) newRunState() *runState {
	cfg := e.cfg
	s := &runState{cfg: cfg}
	if cfg.SharedTable {
		s.shared = newSharedTable(1 << 12)
	}

	owner := defaultRouting(cfg.LogicalPartitions, cfg.CCThreads)
	if cfg.Routing != nil {
		for i, o := range cfg.Routing {
			owner[i] = int32(o)
		}
	}
	s.rt.Store(&routingTable{epoch: 0, owner: owner})
	s.ccCtrl = make([]chan ccCtrl, cfg.CCThreads)
	for i := range s.ccCtrl {
		s.ccCtrl[i] = make(chan ccCtrl, 2)
	}
	s.pidLoad = make([]pidCounter, cfg.LogicalPartitions)
	s.ccLive = make([]ccLiveStats, cfg.CCThreads)
	s.wraps.New = func() interface{} { return &wrapper{} }
	s.acks.New = func() interface{} {
		a := &commitAck{}
		a.fire = a.run
		return a
	}
	s.execBatch = make([]int, cfg.ExecThreads)
	// The backend builds the queue planes last: the tcp transport's
	// handshake ships the routing table stored above, and its reader
	// goroutine touches the pools and gauges once installed.
	s.tr = newTransport(cfg)
	s.tr.install(s)
	return s
}

// dropRef releases one reference to w. The holder that drops the last
// reference — a CC thread's release processing, the owning exec thread,
// or the WAL commit ack — recycles the transaction (via its Free hook)
// and returns the wrapper to the pool. The refs atomic orders every
// holder's prior work before the recycle, so a pooled transaction can
// never alias a live completion.
//
//orthrus:recycle the final reference holder frees the txn and wrapper; all other observers have decremented first
func (s *runState) dropRef(w *wrapper) {
	if w.refs.Add(-1) != 0 {
		return
	}
	if t := w.t; t != nil && t.Free != nil {
		t.Free()
	}
	s.putWrapper(w)
}

// putWrapper returns a wrapper whose references are all gone (or that
// was never published to the CC plane) to the pool.
//
//orthrus:recycle caller guarantees no thread still holds the wrapper
func (s *runState) putWrapper(w *wrapper) {
	w.t, w.done = nil, nil
	w.hopIdx, w.pending = 0, 0
	w.id, w.wireReleases = 0, 0
	w.resetPlan()
	s.wraps.Put(w)
}

// commitAck is the pooled durable-commit acknowledgment: it replaces the
// per-commit closure deferCommit used to allocate. fire is bound once
// (to run) when the ack is created, so reuse costs nothing.
type commitAck struct {
	x    *execThread
	w    *wrapper
	fire func()
}

// run fires the completion from the WAL flusher: latency (honestly
// including the flush stall), the session callback, the in-flight gauge.
// It holds one of the wrapper's references, dropped last — so the
// transaction cannot be recycled before this, its final observer, is
// done with w.start and w.done.
//
//orthrus:recycle the ack returns to the pool after its one-shot fire; the wrapper reference is dropped after the ack no longer holds it
func (a *commitAck) run() {
	x, w := a.x, a.w
	a.x, a.w = nil, nil
	x.s.acks.Put(a)
	x.stats.Latency.Record(time.Since(w.start))
	if w.done != nil {
		w.done(true)
	}
	x.ses.inflight.Done()
	x.s.dropRef(w)
}

// Run implements engine.Engine via the shared closed-loop driver.
func (e *Engine) Run(src workload.Source, duration time.Duration) metrics.Result {
	return engine.RunClosedLoop(e, src, duration)
}

// Clients implements engine.Runtime: enough submitters to fill every
// execution thread's asynchronous window, plus one queued transaction per
// thread so a completed window slot refills without waiting on a client.
func (e *Engine) Clients() int { return e.cfg.ExecThreads * (e.cfg.Inflight + 1) }

// session is the live engine: CC threads plus execution threads serving a
// shared submission queue. Execution threads pull submissions to top up
// their asynchronous windows, so an outside caller's transactions flow
// into the same CC message plane the closed-loop benchmarks exercise.
type session struct {
	e   *Engine
	s   *runState
	set *metrics.Set

	submit   chan engine.Submission
	inflight engine.Gauge
	snaps    *engine.Snapshots // MVCC snapshot tracker; nil without versioned tables
	execStop atomic.Bool
	closed   atomic.Bool
	execWg   sync.WaitGroup
	ccWg     sync.WaitGroup
	start    time.Time

	ctrl *controller // non-nil when Config.Controller.Enable
	// migrateMu serializes migrations: the controller and any direct
	// Migrate callers must not overlap quiesce windows.
	migrateMu sync.Mutex
}

// Start implements engine.Runtime. A second Start while a previous
// session is still open panics (engine.InUseGuard): two live sessions
// would race on the engine's message statistics. Sequential
// Start→Close→Start reuse is supported — every Run does it.
func (e *Engine) Start() engine.Session {
	snaps := engine.NewSnapshots(e.cfg.DB, e.cfg.Wal, &e.clock, e.cfg.ExecThreads, e.cfg.Snapshot)
	e.inUse.Acquire(e.Name())
	ses := &session{
		e:      e,
		s:      e.newRunState(),
		set:    metrics.NewSet(e.cfg.ExecThreads),
		submit: make(chan engine.Submission, e.Clients()),
		snaps:  snaps,
		start:  time.Now(),
	}
	// On the tcp transport only this node's role runs threads; the
	// peer process hosts the other role's.
	if ses.s.tr.hostsCC() {
		for c := 0; c < e.cfg.CCThreads; c++ {
			ses.ccWg.Add(1)
			go func(c int) {
				defer ses.ccWg.Done()
				newCCThread(ses.s, c).loop()
			}(c)
		}
	}
	if ses.s.tr.hostsExec() {
		for x := 0; x < e.cfg.ExecThreads; x++ {
			ses.execWg.Add(1)
			go func(x int) {
				defer ses.execWg.Done()
				newExecThread(ses, x, ses.set.Thread(x)).loop()
			}(x)
		}
	}
	if e.cfg.Controller.Enable {
		ses.ctrl = newController(ses, e.cfg.Controller)
		go ses.ctrl.loop()
	}
	return engine.WithCheckpointer(ses, e.cfg.DB, e.cfg.Wal, e.cfg.Checkpoint)
}

// Submit implements engine.Session. It blocks only when the submission
// queue is full — backpressure from saturated execution threads.
// Submitting to a closed session panics: the execution threads are
// stopped, so the transaction would sit in the queue forever.
func (ses *session) Submit(t *txn.Txn, done func(committed bool)) {
	if ses.closed.Load() {
		panic("orthrus: " + ses.e.Name() + ": Submit on a closed session")
	}
	if !ses.s.tr.hostsExec() {
		panic("orthrus: " + ses.e.Name() + ": Submit on a node with no execution threads (submit to the exec node)")
	}
	ses.inflight.Add(1)
	ses.submit <- engine.Submission{Txn: t, Done: done}
}

// Drain implements engine.Session: all submissions acknowledged and the
// log tail durable.
func (ses *session) Drain() {
	ses.inflight.Wait()
	ses.e.cfg.Wal.Drain()
}

// Close implements engine.Session. It stops the adaptive controller
// (completing any in-progress migration, so no partition stays quiesced),
// drains outstanding submissions, retires the execution threads, lets the
// CC threads take a final pass over straggling releases, and reports the
// session's metrics. A second Close panics: it would release the engine's
// in-use guard out from under a newer session.
func (ses *session) Close() metrics.Result {
	if !ses.closed.CompareAndSwap(false, true) {
		panic("orthrus: " + ses.e.Name() + ": Close on a closed session")
	}
	if ses.ctrl != nil {
		ses.ctrl.stop()
	}
	ses.inflight.Wait()
	ses.e.cfg.Wal.Drain() // log tail: Async acks run ahead of the device
	ses.execStop.Store(true)
	ses.execWg.Wait()
	// Networked shutdown barrier: the exec node flushes its last frames
	// and says goodbye; the cc node holds here until that goodbye, so
	// its CC threads' final drain pass below sees every release.
	ses.s.tr.execDone()
	ses.s.tr.ccGate()
	ses.s.ccStop.Store(true)
	ses.ccWg.Wait()
	netStats := ses.s.tr.shutdown()

	ses.e.msgs = MessageStats{
		Acquires:   ses.s.nAcquires.Load(),
		Forwards:   ses.s.nForwards.Load(),
		Grants:     ses.s.nGrants.Load(),
		Releases:   ses.s.nReleases.Load(),
		EnqueueOps: ses.s.nEnqOps.Load(),
		DequeueOps: ses.s.nDeqOps.Load(),
		PerCC:      ses.perCCStats(),
		ExecBatch:  append([]int(nil), ses.s.execBatch...),
		Net:        netStats,
	}
	if ses.ctrl != nil {
		ses.e.ctrl = ses.ctrl.stats
	} else {
		ses.e.ctrl = ControllerStats{}
	}
	ses.e.inUse.Release()
	return metrics.Result{System: ses.e.Name(), Totals: ses.set.Totals(), Duration: time.Since(ses.start)}
}

// perCCStats harvests the live per-thread slots into the public
// breakdown, attributing each logical partition to its final owner.
func (ses *session) perCCStats() []CCStats {
	rt := ses.s.rt.Load()
	owned := make([]int, ses.s.cfg.CCThreads)
	for _, o := range rt.owner {
		owned[o]++
	}
	out := make([]CCStats, ses.s.cfg.CCThreads)
	for i := range out {
		live := &ses.s.ccLive[i]
		out[i] = CCStats{
			Acquires:       live.acquires.Load(),
			Forwards:       live.forwards.Load(),
			Releases:       live.releases.Load(),
			Grants:         live.grants.Load(),
			QueueHighWater: int(live.hiWaterRun.Load()),
			Partitions:     owned[i],
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Execution threads
// ---------------------------------------------------------------------

// parkedTxn is a submission held back because its plan touched a
// quiesced (mid-migration) logical partition; it is replayed when the
// next routing epoch publishes.
type parkedTxn struct {
	t     *txn.Txn
	done  func(bool)
	start time.Time
}

type execThread struct {
	s     *runState
	ses   *session
	id    int
	stats *metrics.ThreadStats
	ids   *engine.IDSource
	ctx   engine.PlannedCtx
	sctx  engine.SnapshotCtx

	window   int
	inflight int
	// logicTime accumulates pure transaction-logic time within the
	// current loop iteration, so the iteration remainder can be
	// classified as locking overhead.
	logicTime time.Duration

	// Two-level routing state: lastEpoch is the newest routing epoch this
	// thread has observed (an epoch bump replays parked transactions),
	// pidBuf is per-plan scratch holding each op's logical partition,
	// countBuf the per-CC op-count scratch for engines wider than plan's
	// stack array, and parked holds submissions quiesced by an
	// in-progress migration.
	lastEpoch uint64
	pidBuf    []int32
	countBuf  []int
	parked    []parkedTxn

	// Batched message plane: acquires and releases generated within one
	// loop iteration are coalesced per destination CC thread in out and
	// published with one ring operation per batch. scratch is the batched
	// grant-drain buffer; it is safe to reuse across handleGrant calls
	// because flushing never consumes messages (see flushOutbox), so
	// drainGrants can never re-enter while iterating it. bc, when
	// non-nil (Config.BatchSize=0), retunes batch each loop pass.
	batch   int
	bc      *batchController
	pushed  int // messages pushed in the current loop pass (bc's volume signal)
	out     [][]message
	scratch []message
	ops     opCounter

	// pend maps in-flight wire ids to their wrappers — non-nil only
	// when the CC threads live in another process (tcp transport), so
	// grants arrive as bare ids this thread must resolve. Private to
	// this thread: entries are added in submit and removed in finish.
	pend map[uint64]*wrapper

	// wal is this thread's redo append buffer (nil when durability is
	// off). Commits pipeline into it at pre-commit and the window slot
	// frees immediately, so flush latency overlaps new transactions the
	// same way lock-wait does.
	wal *wal.Appender
}

func newExecThread(ses *session, id int, stats *metrics.ThreadStats) *execThread {
	cfg := ses.s.cfg
	batch, maxBatch := cfg.BatchSize, cfg.BatchSize
	var bc *batchController
	if cfg.BatchSize == 0 {
		bc = newBatchController()
		batch, maxBatch = bc.batch, maxAdaptiveBatch
	}
	x := &execThread{
		s:         ses.s,
		ses:       ses,
		id:        id,
		stats:     stats,
		ids:       engine.NewIDSource(id),
		ctx:       engine.PlannedCtx{DB: cfg.DB, Stats: stats, Versions: engine.VersionedView(cfg.DB)},
		window:    cfg.Inflight,
		lastEpoch: ses.s.rt.Load().epoch,
		batch:     batch,
		bc:        bc,
		out:       make([][]message, cfg.CCThreads),
		scratch:   make([]message, maxBatch),
	}
	if cfg.CCThreads > 64 {
		x.countBuf = make([]int, cfg.CCThreads)
	}
	if !ses.s.tr.hostsCC() {
		x.pend = make(map[uint64]*wrapper, cfg.Inflight*2)
	}
	if cfg.Wal.Enabled() {
		x.wal = cfg.Wal.NewAppender(stats)
		x.ctx.Wal = x.wal
	}
	return x
}

// loop is the execution thread's main loop: admit submissions, run
// transaction logic, pipeline redo into the WAL's append buffers, and
// exchange messages with the CC plane — all without blocking or I/O
// (the group-commit flusher does the writing).
//
//orthrus:hotpath
func (x *execThread) loop() {
	defer x.ops.flush(x.s)
	var idle engine.IdleWaiter
	for {
		progress := false
		t0 := time.Now()
		x.logicTime = 0

		// A new routing epoch unblocks transactions parked by a
		// migration's quiesce window: replay them under the new table.
		if rt := x.s.rt.Load(); rt.epoch != x.lastEpoch {
			x.lastEpoch = rt.epoch
			if len(x.parked) > 0 {
				held := x.parked
				x.parked = nil
				for _, p := range held {
					x.submit(p.t, p.done, p.start)
				}
				progress = true
			}
		}

		// Drain grants from every CC thread.
		if x.drainGrants() {
			progress = true
		}

		// Top up the asynchronous window from the submission queue.
		// Parked transactions occupy window slots: they are committed
		// work this thread owes, just not yet admissible.
		for x.inflight+len(x.parked) < x.window {
			var sub engine.Submission
			select {
			case sub = <-x.ses.submit:
			default:
			}
			if sub.Txn == nil {
				break
			}
			sub.Txn.ID = x.ids.Next()
			x.submit(sub.Txn, sub.Done, time.Now())
			progress = true
		}

		// Publish everything this iteration coalesced before deciding to
		// idle or exit: a buffered acquire must not wait on traffic that
		// may never come, and a buffered release may be the one unblocking
		// another thread's transaction.
		x.flushAll()

		// Retune the adaptive batch from this pass's publish volume: if
		// active passes keep filling the batch before this flush, grow to
		// amortize more ring traffic; if they publish half a batch or
		// less, the batch is pure delay — shrink toward the unbatched
		// plane so a lone acquire publishes — and acknowledges — sooner.
		if x.bc != nil {
			x.batch = x.bc.observe(x.pushed, progress)
			x.pushed = 0
		}

		if x.inflight == 0 && len(x.parked) == 0 && x.ses.execStop.Load() && len(x.ses.submit) == 0 {
			// Close drains all submissions before setting execStop, so
			// nothing can arrive after this check; flushAll above has
			// published any straggling releases. Parked transactions
			// cannot be stranded: Close stops the controller first, and
			// every migration ends by publishing an epoch with no held
			// partitions.
			x.s.execBatch[x.id] = x.batch
			return
		}
		if progress {
			idle.Reset()
			// Everything in this iteration that was not transaction logic
			// is messaging/planning overhead: the locking bucket.
			x.stats.AddLock(time.Since(t0) - x.logicTime)
		} else {
			// Idle: window full (or queue empty) and no grants ready.
			// Yield-then-sleep so an idle serving session does not burn a
			// core; the wait is measured so the descheduled period lands
			// in the wait bucket.
			idle.Wait()
			x.stats.AddWait(time.Since(t0))
		}
	}
}

// drainGrants batch-consumes every CC→exec grant ring and reports whether
// any grant was handled.
func (x *execThread) drainGrants() bool {
	progress := false
	for c := 0; c < x.s.cfg.CCThreads; c++ {
		q := x.s.ccToExec[c][x.id]
		for {
			n := q.DequeueBatch(x.scratch)
			if n == 0 {
				break
			}
			x.ops.deq++
			for i := 0; i < n; i++ {
				w := x.scratch[i].w
				if w == nil {
					// Remote grant: the CC node sent only the wire id.
					w = x.pend[x.scratch[i].id]
					if w == nil {
						panic("orthrus: grant for unknown wire transaction id")
					}
				}
				x.handleGrant(w)
			}
			progress = true
			if n < len(x.scratch) {
				break
			}
		}
	}
	return progress
}

// submit plans the transaction's CC chain under the current routing
// epoch and sends the first acquire. start is when this execution thread
// accepted the transaction into its window (preserved across OLLP
// restarts and migration parking so latency covers the whole retry
// chain), done its session completion callback.
//
// Planning races with epoch publication: the thread registers the
// wrapper in the epoch gauge and then re-checks that the routing table
// is still current before sending anything. If a migration published in
// between, the registration is rolled back and the plan redone — so the
// migration drain barrier can never miss a chain that goes on to acquire
// locks under a superseded epoch.
func (x *execThread) submit(t *txn.Txn, done func(bool), start time.Time) {
	if t.ReadOnly && x.ses.snaps != nil {
		// Snapshot fast path: served inline on this execution thread at
		// the commit frontier. No planning, no chain, no CC messages —
		// the CC plane never learns the transaction existed. The reads
		// are already durable (the snapshot is the acked frontier), so
		// the acknowledgment skips the WAL too.
		s0 := time.Now()
		x.ses.snaps.Exec(x.id, t, &x.sctx, x.stats)
		d := time.Since(s0)
		x.stats.AddExec(d)
		x.logicTime += d
		x.stats.Latency.Record(time.Since(start))
		if done != nil {
			done(true)
		}
		x.ses.inflight.Done()
		if t.Free != nil {
			// Last observer done (the snapshot read set copies out of
			// storage, so nothing retains t): recycle it.
			t.Free()
		}
		return
	}
	// Declared ranges decompose into stripe (gap) lock ops here, before
	// sorting: each stripe routes through the same two-level record →
	// logical partition → CC thread mapping as a record lock, so a range
	// becomes per-logical-partition interval requests grouped into the
	// chain's per-CC batches — phantom protection rides the existing
	// message plane. Re-materializing on a replayed submission only adds
	// duplicates SortOps removes.
	engine.MaterializeRanges(x.s.cfg.DB, t)
	t.SortOps()
	w := x.s.wraps.Get().(*wrapper)
	w.t, w.owner, w.start, w.done = t, x.id, start, done
	w.id = t.ID

	for {
		rt := x.s.rt.Load()
		if !x.plan(w, rt) {
			// A quiesced partition: hold the transaction until the
			// migration publishes its new epoch. The wrapper was never
			// published, so this thread is its only holder.
			x.parked = append(x.parked, parkedTxn{t: t, done: done, start: start})
			x.s.putWrapper(w)
			return
		}
		if len(w.hops) == 0 {
			// No declared ops: nothing to lock, run immediately. The only
			// references are this thread's and, when durable, the ack's.
			w.refs.Store(1)
			x.finish(w)
			return
		}
		if x.pend != nil {
			// Remote CC plane: migrations are impossible (Validate
			// forbids the controller with tcp), so the routing table is
			// immutable and the epoch registration dance is unnecessary
			// — the CC node registers its twin wrapper in its own epoch
			// gauge. Release processing also happens entirely over
			// there, so the only local references are this thread's
			// and, when durable, the ack's. The wire id is fresh per
			// attempt: an OLLP replan must not alias the previous
			// generation's in-flight releases on the CC node.
			w.epoch = rt.epoch
			w.releasesLeft.Store(0)
			w.refs.Store(1)
			w.id = x.ids.Next()
			x.pend[w.id] = w
			break
		}
		x.s.epochs.add(rt.epoch, 1)
		if x.s.rt.Load() != rt {
			// Epoch changed between planning and registration; the drain
			// barrier may already have passed this slot. Replan.
			x.s.epochs.add(rt.epoch, -1)
			w.resetPlan()
			continue
		}
		w.epoch = rt.epoch
		w.releasesLeft.Store(int32(len(w.hops)))
		// One reference per CC hop (dropped as each processes its
		// release) plus this thread's, dropped at the end of finish.
		w.refs.Store(int32(len(w.hops)) + 1)
		break
	}

	x.inflight++
	x.s.nAcquires.Add(1)
	x.push(w.hops[0], message{kind: msgAcquire, w: w, id: w.id})
}

// plan groups the transaction's ops by owning CC thread under rt,
// emitting hops in ascending CC id — the deadlock-avoidance order (§3.2)
// within the epoch. It returns false (and leaves the wrapper unplanned)
// when any touched logical partition is quiesced by an in-progress
// migration. The derived chain is cached on the transaction with the
// epoch it was computed under (txn.RouteEpoch) — the dynamic level of
// routing, unlike txn.Partitions, is only valid for that epoch.
func (x *execThread) plan(w *wrapper, rt *routingTable) bool {
	t := w.t
	ncc := x.s.cfg.CCThreads
	if cap(x.pidBuf) < len(t.Ops) {
		//orthrus:allow(noalloc) per-thread scratch growth: reaches the largest op count seen, then stabilizes
		x.pidBuf = make([]int32, len(t.Ops))
	}
	pids := x.pidBuf[:len(t.Ops)]
	var counts [64]int
	countSlice := counts[:]
	if ncc > len(countSlice) {
		countSlice = x.countBuf // preallocated for engines wider than 64 CC
	} else {
		countSlice = countSlice[:ncc]
	}
	for i, op := range t.Ops {
		pid := x.s.pidOf(op.Table, op.Key)
		if rt.blocked(pid) {
			return false
		}
		pids[i] = int32(pid)
		countSlice[rt.owner[pid]]++
	}
	for c := 0; c < ncc; c++ {
		if countSlice[c] == 0 {
			continue
		}
		// Re-extend opsByCC within capacity where a previous life (or
		// plan attempt) left an inner buffer to reuse; append only when
		// the wrapper has never been this wide.
		n := len(w.hops)
		w.hops = append(w.hops, c)
		if n < cap(w.opsByCC) {
			w.opsByCC = w.opsByCC[:n+1]
		} else {
			w.opsByCC = append(w.opsByCC, nil)
		}
		buf := w.opsByCC[n][:0]
		for i, op := range t.Ops {
			if int(rt.owner[pids[i]]) == c {
				buf = append(buf, op)
			}
		}
		w.opsByCC[n] = buf
		if n < cap(w.reqs) {
			w.reqs = w.reqs[:n+1]
			w.reqs[n] = w.reqs[n][:0]
		} else {
			w.reqs = append(w.reqs, nil)
		}
		countSlice[c] = 0
	}
	// Copy, not alias: the wrapper is recycled at the last release while
	// a pooled transaction may outlive it (e.g. across an OLLP replan).
	t.Hops = append(t.Hops[:0], w.hops...)
	t.RouteEpoch = rt.epoch
	return true
}

// push buffers m for CC thread c, publishing the destination's outbox
// once it reaches the batch size. With BatchSize=1 every message is
// published immediately — exactly the unbatched message plane.
func (x *execThread) push(c int, m message) {
	x.out[c] = append(x.out[c], m)
	x.pushed++
	if len(x.out[c]) >= x.batch {
		x.flushDest(c)
	}
}

// flushAll publishes every outbox. Flushing never handles messages, so
// no new pushes can occur mid-sweep and a single pass reaches empty.
func (x *execThread) flushAll() {
	for c := range x.out {
		if len(x.out[c]) > 0 {
			x.flushDest(c)
		}
	}
}

// flushDest publishes the outbox for CC thread c, spinning while the
// target ring is full. Blocking here is live: a CC thread always returns
// to draining its input rings, because its own sends cannot block
// indefinitely — grants always fit (see flushGrant) and forwards flow
// acyclically toward the highest CC thread, which only sends grants
// (see flushForward).
func (x *execThread) flushDest(c int) {
	flushOutbox(x.s.execToCC[x.id][c], &x.out[c], &x.ops)
}

// flushOutbox publishes *buf to q in batches, spinning politely while
// the ring is full, counting one ring operation per successful publish.
// It consumes nothing and calls no handlers, so it is safe to invoke
// from inside any drain loop — the caller's scratch buffers and outboxes
// cannot be mutated underneath it.
func flushOutbox(q spsc.Queue[message], buf *[]message, ops *opCounter) {
	for len(*buf) > 0 {
		n := q.TryEnqueueBatch(*buf)
		if n > 0 {
			ops.enq++
			*buf = append((*buf)[:0], (*buf)[n:]...)
			continue
		}
		runtime.Gosched()
	}
}

// handleGrant processes a CC-thread notification. With forwarding enabled
// a grant means the whole chain completed; in the §3.3 naive mode
// (DisableForwarding) intermediate hops also notify the owner, which must
// mediate the next hop itself — the 2·Ncc-message protocol of Figure 2.
func (x *execThread) handleGrant(w *wrapper) {
	if x.s.cfg.DisableForwarding && w.hopIdx+1 < len(w.hops) {
		w.hopIdx++
		x.s.nAcquires.Add(1)
		x.push(w.hops[w.hopIdx], message{kind: msgAcquire, w: w, id: w.id})
		return
	}
	x.finish(w)
}

// finish runs a fully-locked transaction's logic, then commits and
// releases (or re-plans after an OLLP estimate miss).
func (x *execThread) finish(w *wrapper) {
	t := w.t
	if x.pend != nil {
		// The chain is complete; the wire id is no longer grantable.
		// (DisableForwarding's intermediate grants go through
		// handleGrant without reaching here, keeping the id live.)
		delete(x.pend, w.id)
	}
	start := time.Now()
	x.ctx.Begin(t)
	err := t.Logic(&x.ctx)
	d := time.Since(start)
	x.stats.AddExec(d)
	x.logicTime += d

	locked := len(w.hops) > 0
	if err == nil {
		x.ctx.Commit()
		// Seal the redo record — and install versioned after-images —
		// before sending a single release: the LSN must order before any
		// dependent transaction's, and dependents can only be granted
		// after these releases. The append is a buffer write — the
		// device I/O happens on the flusher — so the window slot frees
		// immediately and CC threads never wait on a sync.
		var ack func()
		if x.wal != nil {
			// The ack observes w.start/w.done from the flusher goroutine;
			// its reference keeps the wrapper (and transaction) alive
			// until after it fires.
			w.refs.Add(1)
			ack = x.deferCommit(w)
		}
		engine.CommitVersions(x.wal, &x.ses.e.clock, &x.ctx.VSet, x.stats, ack)
		x.release(w)
		x.stats.Committed++
		if locked {
			x.inflight--
		}
		if x.wal == nil {
			x.stats.Latency.Record(time.Since(w.start))
			if w.done != nil {
				w.done(true)
			}
			x.ses.inflight.Done()
		}
		x.s.dropRef(w)
		return
	}
	if err != txn.ErrEstimateMiss {
		panic(fmt.Sprintf("orthrus: transaction logic failed: %v", err))
	}
	// OLLP estimate miss (§3.2): roll back, release, re-plan, restart.
	// The session completion fires only on the final commit.
	x.ctx.Abort()
	x.release(w)
	if locked {
		x.inflight--
	}
	x.stats.Aborted++
	x.stats.Misses++
	if t.Replan == nil {
		panic("orthrus: estimate miss without Replan hook")
	}
	t.Replan(t)
	t.Partitions = t.Partitions[:0] // invalidate the cached partition set
	done, start := w.done, w.start
	// The transaction travels to a fresh wrapper; clear t so the final
	// reference drop recycles only the wrapper. CC release processing
	// never reads w.t, and dropRef's zero-reader is ordered after this
	// store by the refs decrement chain.
	w.t = nil
	x.s.dropRef(w)
	x.submit(t, done, start)
}

// deferCommit returns the durable-commit acknowledgment for w: run by
// the WAL flusher once the redo record is synced, in LSN order. Latency
// then honestly includes the flush stall. Latency.Record is safe from
// the flusher goroutine: while a WAL is on, this thread's histogram is
// written by the flusher's acks plus the rare read-only inline fast
// path, which wal.Appender.Commit takes only when every earlier ack of
// this appender has already fired (see its comment); the gauges are
// atomics. The ack comes from a pool (commitAck) with its fire func
// pre-bound, so the steady-state commit path allocates nothing.
func (x *execThread) deferCommit(w *wrapper) func() {
	a := x.s.acks.Get().(*commitAck)
	a.x, a.w = x, w
	return a.fire
}

// release notifies every CC thread in the chain. Fire-and-forget: release
// requests are satisfied unconditionally (§3.1). The chain's CC threads
// retire the wrapper's routing epoch as they process these messages, so
// a migration cannot proceed while any of them is still in a ring.
func (x *execThread) release(w *wrapper) {
	for _, c := range w.hops {
		x.s.nReleases.Add(1)
		x.push(c, message{kind: msgRelease, w: w, id: w.id})
	}
}

var (
	_ engine.System  = (*Engine)(nil)
	_ engine.Session = (*session)(nil)
)
