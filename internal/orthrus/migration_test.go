package orthrus

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// The default two-level configuration must reproduce the historical
// record → CC mapping bit for bit: key % P % cc == key % cc when P is a
// multiple of cc.
func TestDefaultRoutingMatchesLegacyHash(t *testing.T) {
	db, _ := newDB(8)
	for _, cc := range []int{1, 2, 3, 5, 8} {
		eng := New(Config{DB: db, CCThreads: cc, ExecThreads: 1})
		s := eng.newRunState()
		rt := s.rt.Load()
		if rt.epoch != 0 {
			t.Fatalf("fresh engine at epoch %d", rt.epoch)
		}
		for key := uint64(0); key < 4096; key++ {
			pid := s.pidOf(0, key)
			if got, want := int(rt.owner[pid]), int(key%uint64(cc)); got != want {
				t.Fatalf("cc=%d key=%d routed to %d, legacy hash says %d", cc, key, got, want)
			}
		}
	}
}

// A quiet-session migration must publish the epoch pair, hand the shard
// over, and leave the engine fully functional under the new table.
func TestMigrateDirect(t *testing.T) {
	const records = 256
	db, tbl := newDB(records)
	eng := New(Config{DB: db, CCThreads: 2, ExecThreads: 2, LogicalPartitions: 8})
	ses := eng.Start().(*session)

	rt := ses.s.rt.Load()
	if int(rt.owner[0]) != 0 {
		t.Fatalf("partition 0 initially owned by %d", rt.owner[0])
	}
	if n := ses.migrate([]int{0, 3}, []int{1, 1}); n != 1 {
		// pid 3 is already owned by thread 1 (3 mod 2), so only pid 0 moves.
		t.Fatalf("migrate moved %d partitions, want 1", n)
	}
	rt = ses.s.rt.Load()
	if rt.epoch != 2 {
		t.Fatalf("epoch = %d after one migration, want 2 (quiesce+publish)", rt.epoch)
	}
	if int(rt.owner[0]) != 1 || rt.held != nil {
		t.Fatalf("post-migration table wrong: owner[0]=%d held=%v", rt.owner[0], rt.held)
	}
	// Re-migrating to the same owner is a no-op and publishes nothing.
	if n := ses.migrate([]int{0}, []int{1}); n != 0 {
		t.Fatalf("no-op migrate moved %d", n)
	}
	if e := ses.s.rt.Load().epoch; e != 2 {
		t.Fatalf("no-op migrate bumped epoch to %d", e)
	}

	// Traffic over the migrated table must still be exact.
	var done sync.WaitGroup
	rng := rand.New(rand.NewSource(1))
	const n, k = 400, 4
	for i := 0; i < n; i++ {
		tx := incrementTxn(tbl, records, k, rng)
		done.Add(1)
		ses.Submit(tx, func(bool) { done.Done() })
	}
	done.Wait()
	res := ses.Close()
	if res.Totals.Committed != n {
		t.Fatalf("committed %d, want %d", res.Totals.Committed, n)
	}
	if got := sumTable(db, tbl, records); got != n*k {
		t.Fatalf("increments = %d, want %d", got, n*k)
	}
}

// incrementTxn builds a transaction writing k distinct uniformly random
// keys, incrementing each record's counter — exact access set, so it can
// never abort, and every commit is observable in the table sum.
func incrementTxn(tbl int, records uint64, k int, rng *rand.Rand) *txn.Txn {
	ops := make([]txn.Op, 0, k)
	used := make(map[uint64]bool, k)
	for len(ops) < k {
		key := uint64(rng.Int63n(int64(records)))
		if used[key] {
			continue
		}
		used[key] = true
		ops = append(ops, txn.Op{Table: tbl, Key: key, Mode: txn.Write})
	}
	t := &txn.Txn{Ops: ops}
	t.Logic = func(ctx txn.Ctx) error {
		for _, op := range t.Ops {
			rec, err := ctx.Write(op.Table, op.Key)
			if err != nil {
				return err
			}
			storage.PutU64(rec, 0, storage.GetU64(rec, 0)+1)
		}
		return nil
	}
	return t
}

// The migration correctness test the refactor hangs on: routing epochs
// flip continuously while transactions are in flight, and every
// submitted transaction must complete exactly once, with no lost or
// duplicate grants (the table sum counts every increment) and no
// deadlock (the test terminates). Run under -race this also checks the
// quiesce/drain/handoff handshake for data races.
func TestMigrationEpochFlipConservation(t *testing.T) {
	const (
		records    = 256
		parts      = 12
		ccThreads  = 3
		submitters = 4
		perSub     = 300
		k          = 4
	)
	db, tbl := newDB(records)
	eng := New(Config{DB: db, CCThreads: ccThreads, ExecThreads: 3, LogicalPartitions: parts})
	ses := eng.Start().(*session)

	var (
		commits   atomic.Int64
		perTxn    [submitters * perSub]atomic.Int32
		submitted sync.WaitGroup
	)
	for s := 0; s < submitters; s++ {
		submitted.Add(1)
		go func(s int) {
			defer submitted.Done()
			rng := rand.New(rand.NewSource(int64(s) + 42))
			for i := 0; i < perSub; i++ {
				idx := s*perSub + i
				ses.Submit(incrementTxn(tbl, records, k, rng), func(committed bool) {
					if !committed {
						t.Error("transaction reported uncommitted")
					}
					if perTxn[idx].Add(1) != 1 {
						t.Errorf("txn %d completed more than once", idx)
					}
					commits.Add(1)
				})
			}
		}(s)
	}

	// Migrator: shuffle ownership as fast as the protocol allows until
	// all submitters are done.
	stopMig := make(chan struct{})
	var migrated atomic.Int64
	var migWg sync.WaitGroup
	migWg.Add(1)
	go func() {
		defer migWg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stopMig:
				return
			default:
			}
			pid := rng.Intn(parts)
			dst := rng.Intn(ccThreads)
			migrated.Add(int64(ses.migrate([]int{pid}, []int{dst})))
		}
	}()

	submitted.Wait()
	ses.Drain()
	close(stopMig)
	migWg.Wait()
	res := ses.Close()

	const total = submitters * perSub
	if commits.Load() != total || res.Totals.Committed != total {
		t.Fatalf("commits: callback=%d engine=%d, want %d", commits.Load(), res.Totals.Committed, total)
	}
	for i := range perTxn {
		if got := perTxn[i].Load(); got != 1 {
			t.Fatalf("txn %d completed %d times", i, got)
		}
	}
	if got := sumTable(db, tbl, records); got != total*k {
		t.Fatalf("increments = %d, want %d (lost or duplicated grants)", got, total*k)
	}
	if migrated.Load() == 0 {
		t.Fatal("migrator never moved a partition; test exercised nothing")
	}
	if e := ses.s.rt.Load().epoch; e < 2 {
		t.Fatalf("final epoch %d, want >= 2", e)
	}
}

// The adaptive controller must detect a skewed partition load and move
// ownership, without breaking conservation.
func TestControllerRebalancesSkew(t *testing.T) {
	const records = 1 << 14
	db, tbl := newDB(records)
	eng := New(Config{
		DB: db, CCThreads: 2, ExecThreads: 4,
		LogicalPartitions: 8,
		Partition:         txn.RangePartitioner(8, records),
		Controller:        ControllerConfig{Enable: true, Interval: time.Millisecond},
	})
	// Half the ops hammer the first range partition; the controller
	// should shed cold partitions off its owner.
	src := &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 10,
		HotRecords: records / 8, HotOps: 5}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	res := eng.Run(src, 300*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	want := res.Totals.Committed * 10
	if got := sumTable(db, tbl, records); got != want {
		t.Fatalf("increments = %d, want %d", got, want)
	}
	cs := eng.ControllerStats()
	if cs.Samples == 0 {
		t.Fatal("controller never sampled")
	}
	if cs.Migrations == 0 || cs.PartitionsMoved == 0 {
		t.Fatalf("controller never migrated under heavy skew: %+v", cs)
	}
	if cs.FinalEpoch == 0 {
		t.Fatalf("routing epoch never advanced: %+v", cs)
	}
}

// Per-CC-thread message breakdowns must sum to the send-side totals, and
// final partition ownership must cover the whole logical space.
func TestPerCCStatsConservation(t *testing.T) {
	const records = 1 << 12
	db, tbl := newDB(records)
	eng := New(Config{DB: db, CCThreads: 3, ExecThreads: 3})
	src := &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 8, HotRecords: 64, HotOps: 2}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	if res := eng.Run(src, 150*time.Millisecond); res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	m := eng.Messages()
	if len(m.PerCC) != 3 {
		t.Fatalf("PerCC has %d entries, want 3", len(m.PerCC))
	}
	var acq, fwd, rel, grants uint64
	parts := 0
	hiWaterSeen := false
	for _, cs := range m.PerCC {
		acq += cs.Acquires
		fwd += cs.Forwards
		rel += cs.Releases
		grants += cs.Grants
		parts += cs.Partitions
		if cs.QueueHighWater > 0 {
			hiWaterSeen = true
		}
		if cs.Handled() != cs.Acquires+cs.Forwards+cs.Releases {
			t.Fatalf("Handled() inconsistent: %+v", cs)
		}
	}
	if acq != m.Acquires || fwd != m.Forwards || rel != m.Releases || grants != m.Grants {
		t.Fatalf("per-CC sums (acq=%d fwd=%d rel=%d grant=%d) != totals (%d %d %d %d)",
			acq, fwd, rel, grants, m.Acquires, m.Forwards, m.Releases, m.Grants)
	}
	if parts != 4*3 {
		t.Fatalf("owned partitions sum to %d, want LogicalPartitions=%d", parts, 4*3)
	}
	if !hiWaterSeen {
		t.Fatal("no CC thread recorded a queue high-water mark")
	}
}

// New must reject malformed configuration up front with a clear panic
// instead of failing deep inside ring or table construction.
func TestConfigValidationPanics(t *testing.T) {
	db, _ := newDB(8)
	base := func() Config { return Config{DB: db, CCThreads: 2, ExecThreads: 2} }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-threads", func(c *Config) { c.CCThreads = 0 }},
		{"negative-queuecap", func(c *Config) { c.QueueCap = -1 }},
		{"negative-inflight", func(c *Config) { c.Inflight = -8 }},
		{"negative-batchsize", func(c *Config) { c.BatchSize = -2 }},
		{"negative-partitions", func(c *Config) { c.LogicalPartitions = -4 }},
		{"routing-wrong-len", func(c *Config) { c.Routing = []int{0, 1} }},
		{"routing-out-of-range", func(c *Config) {
			c.LogicalPartitions = 4
			c.Routing = []int{0, 1, 2, 1} // CC thread 2 does not exist
		}},
		{"negative-controller-knob", func(c *Config) {
			c.Controller = ControllerConfig{Enable: true, MaxMoves: -1}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			defer func() {
				if recover() == nil {
					t.Fatal("New accepted invalid config")
				}
			}()
			New(cfg)
		})
	}
}

// An explicit Routing table equal to the default must behave like the
// default (smoke check that the Routing plumbing is wired through).
func TestExplicitRoutingHonored(t *testing.T) {
	const records = 64
	db, tbl := newDB(records)
	// Invert the default assignment: pid i → cc (P-1-i) mod cc.
	routing := make([]int, 8)
	for i := range routing {
		routing[i] = (len(routing) - 1 - i) % 2
	}
	eng := New(Config{DB: db, CCThreads: 2, ExecThreads: 2,
		LogicalPartitions: 8, Routing: routing})
	ses := eng.Start().(*session)
	rt := ses.s.rt.Load()
	for i, want := range routing {
		if int(rt.owner[i]) != want {
			t.Fatalf("owner[%d] = %d, want %d", i, rt.owner[i], want)
		}
	}
	var done sync.WaitGroup
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		done.Add(1)
		ses.Submit(incrementTxn(tbl, records, 3, rng), func(bool) { done.Done() })
	}
	done.Wait()
	res := ses.Close()
	if res.Totals.Committed != 200 {
		t.Fatalf("committed %d, want 200", res.Totals.Committed)
	}
	if got := sumTable(db, tbl, records); got != 200*3 {
		t.Fatalf("increments = %d, want %d", got, 200*3)
	}
}
