package orthrus

import (
	"fmt"
	"net"
	"runtime"

	"repro/internal/spsc"
	wire "repro/internal/transport"
)

// TransportConfig selects the message-plane backend. The zero value is
// the in-process plane (SPSC ring matrices), behaviourally identical to
// the engine before the Transport extraction.
//
// Kind "tcp" splits the engine across two OS processes: a "cc" node
// hosting every CC thread and an "exec" node hosting every execution
// thread, connected by one TCP connection carrying batched frames (see
// internal/transport and README "Distributed message plane"). Both
// processes construct the same Config apart from this struct; the
// handshake verifies they agree on thread counts, logical partitions,
// the routing table and its epoch before any message flows.
type TransportConfig struct {
	// Kind is "" or "inproc" for the in-process plane, "tcp" for the
	// networked plane.
	Kind string
	// Role is this process's half of the tcp split: "cc" or "exec".
	Role string
	// Listen is the cc node's host:port accept address. Ignored when
	// Listener is set.
	Listen string
	// Listener, when non-nil, is a pre-bound listener the cc node
	// accepts on (so callers can bind :0 and learn the port first).
	Listener net.Listener
	// Peer is the exec node's target: the cc node's address.
	Peer string
	// Net are the wire-level knobs (frame cap, writer depth, dial and
	// accept timeouts).
	Net wire.Config
}

// remote reports whether the plane crosses a process boundary.
func (c TransportConfig) remote() bool { return c.Kind == "tcp" }

// Validate panics on malformed transport configuration: unknown kinds
// or roles, a role without its required endpoint, endpoints that do not
// parse as host:port, or tcp-role fields set on the in-process plane.
func (c TransportConfig) Validate() {
	switch c.Kind {
	case "", "inproc":
		if c.Role != "" || c.Listen != "" || c.Listener != nil || c.Peer != "" {
			panic("orthrus: Transport.Role/Listen/Listener/Peer require Transport.Kind \"tcp\"")
		}
	case "tcp":
		switch c.Role {
		case "cc":
			if c.Listen == "" && c.Listener == nil {
				panic("orthrus: Transport.Role \"cc\" requires Listen or Listener")
			}
			if c.Listen != "" {
				if _, _, err := net.SplitHostPort(c.Listen); err != nil {
					panic(fmt.Sprintf("orthrus: Transport.Listen %q is not host:port: %v", c.Listen, err))
				}
			}
			if c.Peer != "" {
				panic("orthrus: Transport.Peer is the exec role's knob; the cc role listens")
			}
		case "exec":
			if c.Peer == "" {
				panic("orthrus: Transport.Role \"exec\" requires Peer (the cc node's address)")
			}
			if _, _, err := net.SplitHostPort(c.Peer); err != nil {
				panic(fmt.Sprintf("orthrus: Transport.Peer %q is not host:port: %v", c.Peer, err))
			}
			if c.Listen != "" || c.Listener != nil {
				panic("orthrus: Transport.Listen/Listener are the cc role's knobs; the exec role dials")
			}
		default:
			panic(fmt.Sprintf("orthrus: Transport.Role %q unknown (want \"cc\" or \"exec\" with Kind \"tcp\")", c.Role))
		}
	default:
		panic(fmt.Sprintf("orthrus: Transport.Kind %q unknown (want \"inproc\" or \"tcp\")", c.Kind))
	}
	c.Net.Validate()
}

// NetStats counts the session's wire traffic (zero on the in-process
// plane). Frames and bytes include the two control frames of the
// shutdown barrier; Messages counts data messages only, so MessagesSent
// here equals MessagesReceived on the peer node.
type NetStats struct {
	FramesSent, FramesReceived     uint64
	MessagesSent, MessagesReceived uint64
	BytesSent, BytesReceived       uint64
}

// Remote reports whether any wire traffic occurred (i.e. the session
// ran on the tcp transport).
func (n NetStats) Remote() bool { return n.FramesSent+n.FramesReceived > 0 }

// MessagesPerFrame reports the achieved wire batching factor on the
// send side.
func (n NetStats) MessagesPerFrame() float64 {
	if n.FramesSent == 0 {
		return 0
	}
	return float64(n.MessagesSent) / float64(n.FramesSent)
}

// Transport is the pluggable message-plane backend behind the three
// queue planes (exec→CC acquires/releases, CC→CC forwards, CC→exec
// grants). install populates runState's queue matrices; the lifecycle
// hooks are called from session.Close in this order, mirroring the
// drain protocol:
//
//	execDone()  after the execution threads exit (exec side flushed)
//	ccGate()    before CC threads are told to stop (inbound flushed)
//	shutdown()  after the CC threads exit (plane torn down)
//
// The in-process backend implements all three as no-ops; the tcp
// backend maps them onto the goodbye barrier exchange.
type Transport interface {
	name() string
	// hostsCC / hostsExec report which thread roles run in this
	// process; the other role's threads live on the peer node.
	hostsCC() bool
	hostsExec() bool
	install(s *runState)
	execDone()
	ccGate()
	shutdown() NetStats
}

// newTransport selects the backend for a validated Config.
func newTransport(cfg Config) Transport {
	tc := cfg.Transport
	if !tc.remote() {
		return inprocTransport{}
	}
	role := wire.RoleExec
	if tc.Role == "cc" {
		role = wire.RoleCC
	}
	return &tcpTransport{cfg: cfg, role: role}
}

// --- in-process backend ---------------------------------------------------

// inprocTransport is the historical message plane: full SPSC ring (or,
// under the UseChannels ablation, buffered channel) matrices for all
// three planes, every thread in one process.
type inprocTransport struct{}

func (inprocTransport) name() string    { return "inproc" }
func (inprocTransport) hostsCC() bool   { return true }
func (inprocTransport) hostsExec() bool { return true }

func (inprocTransport) install(s *runState) {
	cfg := s.cfg
	grantCap := cfg.QueueCap
	if grantCap < cfg.Inflight {
		// A CC thread must never block sending grants (liveness of the
		// message plane relies on it), so grant rings hold the whole
		// in-flight window.
		grantCap = cfg.Inflight
	}
	newQ := func(capacity int) spsc.Queue[message] {
		if cfg.UseChannels {
			return spsc.NewChan[message](capacity)
		}
		return spsc.New[message](capacity)
	}
	s.execToCC = make([][]spsc.Queue[message], cfg.ExecThreads)
	for i := range s.execToCC {
		s.execToCC[i] = make([]spsc.Queue[message], cfg.CCThreads)
		for j := range s.execToCC[i] {
			s.execToCC[i][j] = newQ(cfg.QueueCap)
		}
	}
	s.ccToCC = make([][]spsc.Queue[message], cfg.CCThreads)
	s.ccToExec = make([][]spsc.Queue[message], cfg.CCThreads)
	for i := range s.ccToCC {
		s.ccToCC[i] = make([]spsc.Queue[message], cfg.CCThreads)
		for j := range s.ccToCC[i] {
			if i != j {
				s.ccToCC[i][j] = newQ(cfg.QueueCap)
			}
		}
		s.ccToExec[i] = make([]spsc.Queue[message], cfg.ExecThreads)
		for j := range s.ccToExec[i] {
			s.ccToExec[i][j] = newQ(grantCap)
		}
	}
}

func (inprocTransport) execDone()          {}
func (inprocTransport) ccGate()            {}
func (inprocTransport) shutdown() NetStats { return NetStats{} }

// --- tcp backend ----------------------------------------------------------

// tcpTransport is one node's half of the networked message plane. The
// two-node split keeps every CC thread on one process and every exec
// thread on the other, so exactly two planes cross the wire — exec→CC
// (acquires, releases) and CC→exec (grants) — while CC→CC forwards stay
// node-local: the ascending-CC-id forwarding chains that carry the
// paper's deadlock-freedom argument never leave the CC node, and the
// wire adds no new cycle to the acyclic forwarding graph (see README).
//
// Outbound, each remote queue slot is a netQueue: the sending thread
// coalesces one flushOutbox pass into one frame and hands it to the
// peer's writer goroutine. Inbound, a single reader goroutine decodes
// frames and republishes them into ordinary local rings, preserving the
// single-producer discipline (the reader is the sole producer for every
// wire-fed ring) and per-queue FIFO order end to end.
type tcpTransport struct {
	cfg  Config
	role uint8
	s    *runState

	peer  *wire.Peer
	conn  net.Conn
	ln    net.Listener
	ownLn bool

	// queues lists every outbound netQueue so shutdown can drain
	// frames left pending by a full writer channel (safe: called only
	// after the owning threads have exited).
	queues []*netQueue

	// Reader-goroutine private state (no locks: single reader). reg
	// maps live wire transaction ids to this CC node's materialized
	// wrappers; each entry dies with its last release (wireReleases).
	reg     map[uint64]*wrapper
	scratch []message
	ops     opCounter

	readerDone chan struct{}
}

func (t *tcpTransport) name() string    { return "tcp/" + t.cfg.Transport.Role }
func (t *tcpTransport) hostsCC() bool   { return t.role == wire.RoleCC }
func (t *tcpTransport) hostsExec() bool { return t.role == wire.RoleExec }

func (t *tcpTransport) install(s *runState) {
	t.s = s
	cfg := s.cfg
	tc := cfg.Transport
	nc := tc.Net.WithDefaults()

	// Establish the connection: the cc node accepts, the exec node
	// dials with retry (the two processes may start in either order).
	var conn net.Conn
	var err error
	if t.role == wire.RoleCC {
		ln := tc.Listener
		if ln == nil {
			ln, err = net.Listen("tcp", tc.Listen)
			if err != nil {
				panic(fmt.Sprintf("orthrus: tcp transport: listen %s: %v", tc.Listen, err))
			}
			t.ownLn = true
		}
		t.ln = ln
		conn, err = wire.Accept(ln, nc.AcceptTimeout)
		if err != nil {
			panic(fmt.Sprintf("orthrus: tcp transport: accept: %v", err))
		}
	} else {
		conn, err = wire.Dial(tc.Peer, nc.DialTimeout)
		if err != nil {
			panic(fmt.Sprintf("orthrus: tcp transport: %v", err))
		}
	}
	t.conn = conn

	// Handshake: both processes derived their topology and routing
	// table independently from their own Config; refuse to run unless
	// they are byte-identical — a mismatched routing table would send
	// acquires to CC threads that do not own the partition, which
	// tallyAndInsert would only catch one transaction at a time.
	rt := s.rt.Load()
	local := wire.Hello{
		Role:              t.role,
		CCThreads:         uint16(cfg.CCThreads),
		ExecThreads:       uint16(cfg.ExecThreads),
		LogicalPartitions: uint16(cfg.LogicalPartitions),
		Epoch:             rt.epoch,
		Routing:           make([]uint16, len(rt.owner)),
	}
	for i, o := range rt.owner {
		local.Routing[i] = uint16(o)
	}
	peerHello, err := wire.Exchange(conn, &local, nc.DialTimeout)
	if err != nil {
		conn.Close()
		panic(fmt.Sprintf("orthrus: tcp transport: handshake: %v", err))
	}
	wantRole := wire.RoleCC
	if t.role == wire.RoleCC {
		wantRole = wire.RoleExec
	}
	if peerHello.Role != wantRole {
		conn.Close()
		panic(fmt.Sprintf("orthrus: tcp transport: both nodes claim the %s role", tc.Role))
	}
	if peerHello.CCThreads != local.CCThreads || peerHello.ExecThreads != local.ExecThreads ||
		peerHello.LogicalPartitions != local.LogicalPartitions {
		conn.Close()
		panic(fmt.Sprintf("orthrus: tcp transport: topology mismatch: local %dcc/%dex/%dp, peer %dcc/%dex/%dp",
			local.CCThreads, local.ExecThreads, local.LogicalPartitions,
			peerHello.CCThreads, peerHello.ExecThreads, peerHello.LogicalPartitions))
	}
	if peerHello.Epoch != local.Epoch || len(peerHello.Routing) != len(local.Routing) {
		conn.Close()
		panic("orthrus: tcp transport: routing epoch mismatch between nodes")
	}
	for i := range local.Routing {
		if peerHello.Routing[i] != local.Routing[i] {
			conn.Close()
			panic(fmt.Sprintf("orthrus: tcp transport: routing tables differ at partition %d", i))
		}
	}

	// The cc node's writer carries only grants; a depth covering the
	// whole grant window (≤ ExecThreads×Inflight outstanding) means CC
	// threads never spin on a full writer channel, preserving the
	// always-return-to-draining liveness argument over the wire.
	if t.role == wire.RoleCC {
		if min := cfg.ExecThreads*cfg.Inflight + 1; nc.WriterDepth < min {
			nc.WriterDepth = min
		}
	}
	t.peer = wire.NewPeer(conn, nc)

	// Queue planes: real rings where this node consumes, netQueues
	// where the consumer is remote. The reader goroutine is the single
	// producer for every wire-fed ring.
	s.execToCC = make([][]spsc.Queue[message], cfg.ExecThreads)
	s.ccToCC = make([][]spsc.Queue[message], cfg.CCThreads)
	s.ccToExec = make([][]spsc.Queue[message], cfg.CCThreads)
	for x := range s.execToCC {
		s.execToCC[x] = make([]spsc.Queue[message], cfg.CCThreads)
		for c := range s.execToCC[x] {
			if t.role == wire.RoleCC {
				s.execToCC[x][c] = spsc.New[message](cfg.QueueCap)
			} else {
				s.execToCC[x][c] = t.newNetQueue(wire.PlaneExecCC, x, c)
			}
		}
	}
	grantCap := cfg.QueueCap
	if grantCap < cfg.Inflight {
		grantCap = cfg.Inflight
	}
	for c := range s.ccToCC {
		s.ccToCC[c] = make([]spsc.Queue[message], cfg.CCThreads)
		if t.role == wire.RoleCC {
			// Forwards stay node-local.
			for j := range s.ccToCC[c] {
				if c != j {
					s.ccToCC[c][j] = spsc.New[message](cfg.QueueCap)
				}
			}
		}
		s.ccToExec[c] = make([]spsc.Queue[message], cfg.ExecThreads)
		for x := range s.ccToExec[c] {
			if t.role == wire.RoleCC {
				s.ccToExec[c][x] = t.newNetQueue(wire.PlaneCCExec, c, x)
			} else {
				s.ccToExec[c][x] = spsc.New[message](grantCap)
			}
		}
	}

	if t.role == wire.RoleCC {
		t.reg = make(map[uint64]*wrapper, cfg.ExecThreads*cfg.Inflight*2)
	}
	t.readerDone = make(chan struct{})
	go t.readLoop()
}

func (t *tcpTransport) newNetQueue(plane uint8, from, to int) *netQueue {
	q := &netQueue{t: t, plane: plane, from: uint16(from), to: uint16(to)}
	t.queues = append(t.queues, q)
	return q
}

// drainPending force-sends frames stranded by a full writer channel.
// Only called from the shutdown sequence, after the threads that own
// the netQueues have exited (WaitGroup-ordered), so the pending fields
// are safe to touch.
func (t *tcpTransport) drainPending() {
	for _, q := range t.queues {
		if q.pending != nil {
			t.peer.Send(q.pending)
			q.pending = nil
		}
	}
}

// execDone: the exec node's threads have exited, so every message this
// node will ever send has been pushed; flush stragglers and send the
// goodbye barrier (FIFO after all data frames).
func (t *tcpTransport) execDone() {
	if t.role != wire.RoleExec {
		return
	}
	t.drainPending()
	t.peer.SendGoodbye()
}

// ccGate holds the cc node's shutdown until the exec node's goodbye:
// at that point the peer's complete send history has been decoded and
// republished into the local rings (the reader dispatches frames in
// order, before marking the goodbye), so the CC threads' final drain
// pass observes every release.
func (t *tcpTransport) ccGate() {
	if t.role == wire.RoleCC {
		<-t.peer.GoodbyeReceived()
	}
}

func (t *tcpTransport) shutdown() NetStats {
	if t.role == wire.RoleCC {
		// CC threads have exited; flush their straggling grants, then
		// announce completion to release the exec node's shutdown.
		t.drainPending()
		t.peer.SendGoodbye()
	}
	t.peer.CloseSend()
	<-t.peer.GoodbyeReceived()
	t.peer.Close()
	<-t.readerDone
	if t.ownLn {
		t.ln.Close()
	}
	st := t.peer.Stats()
	return NetStats{
		FramesSent:       st.FramesSent,
		FramesReceived:   st.FramesRecv,
		MessagesSent:     st.MsgsSent,
		MessagesReceived: st.MsgsRecv,
		BytesSent:        st.BytesSent,
		BytesReceived:    st.BytesRecv,
	}
}

// readLoop is the node's single inbound goroutine: decode one frame at
// a time and republish it into the local ring the frame addresses. It
// exits when the connection closes after the goodbye exchange; a
// connection failure before the peer's goodbye is a hard fault (a node
// died mid-run) and panics loudly rather than hanging the session.
//
//orthrus:coldpath dedicated peer reader: socket reads block by design; hot threads only ever touch the local rings this goroutine feeds
func (t *tcpTransport) readLoop() {
	defer close(t.readerDone)
	defer t.ops.flush(t.s)
	var f wire.Frame
	for {
		if err := t.peer.Recv(&f); err != nil {
			select {
			case <-t.peer.GoodbyeReceived():
				return // orderly shutdown: nothing can follow the goodbye
			default:
			}
			panic(fmt.Sprintf("orthrus: tcp transport: connection lost before peer goodbye: %v", err))
		}
		if f.Plane == wire.PlaneControl {
			continue
		}
		t.dispatch(&f)
	}
}

// dispatch republishes one decoded data frame into its local ring,
// preserving intra-frame order. Publishing may spin when the ring is
// full — the reader is the wire's backpressure point, exactly as a
// sending thread is on the in-process plane.
func (t *tcpTransport) dispatch(f *wire.Frame) {
	var q spsc.Queue[message]
	switch {
	case t.role == wire.RoleCC && f.Plane == wire.PlaneExecCC:
		if int(f.From) >= t.cfg.ExecThreads || int(f.To) >= t.cfg.CCThreads {
			panic(fmt.Sprintf("orthrus: tcp transport: frame addresses unknown queue %d->%d", f.From, f.To))
		}
		q = t.s.execToCC[f.From][f.To]
		for i := range f.Msgs {
			m := &f.Msgs[i]
			switch m.Kind {
			case wire.KindAcquire:
				t.scratch = append(t.scratch, message{kind: msgAcquire, w: t.materialize(m), id: m.TxnID})
			case wire.KindRelease:
				w := t.reg[m.TxnID]
				if w == nil {
					panic("orthrus: tcp transport: release for unknown wire transaction")
				}
				w.wireReleases--
				if w.wireReleases == 0 {
					// Last release: the id dies here. The wrapper itself
					// is recycled by the CC threads' refcount as usual.
					delete(t.reg, m.TxnID)
				}
				t.scratch = append(t.scratch, message{kind: msgRelease, w: w, id: m.TxnID})
			default:
				panic("orthrus: tcp transport: unexpected message kind on the exec->cc plane")
			}
		}
	case t.role == wire.RoleExec && f.Plane == wire.PlaneCCExec:
		if int(f.From) >= t.cfg.CCThreads || int(f.To) >= t.cfg.ExecThreads {
			panic(fmt.Sprintf("orthrus: tcp transport: frame addresses unknown queue %d->%d", f.From, f.To))
		}
		q = t.s.ccToExec[f.From][f.To]
		for i := range f.Msgs {
			m := &f.Msgs[i]
			if m.Kind != wire.KindGrant {
				panic("orthrus: tcp transport: unexpected message kind on the cc->exec plane")
			}
			// The wrapper lives on the owning exec thread; it resolves
			// the id through its pending map (drainGrants).
			t.scratch = append(t.scratch, message{kind: msgAcquire, w: nil, id: m.TxnID})
		}
	default:
		panic("orthrus: tcp transport: frame plane does not match node role")
	}
	flushOutbox(q, &t.scratch, &t.ops)
}

// materialize builds (or, under DisableForwarding's re-acquires,
// refreshes) the CC node's wrapper for a wire acquire. The wrapper is
// the same pooled structure the in-process plane uses — the CC threads
// cannot tell the transaction's owner is in another process. Wire ids
// are unique per submission attempt (OLLP replans draw a fresh id), so
// an existing entry always means a DisableForwarding hop advance, never
// a stale generation.
func (t *tcpTransport) materialize(m *wire.Msg) *wrapper {
	if w := t.reg[m.TxnID]; w != nil {
		w.hopIdx = int(m.HopIdx)
		return w
	}
	s := t.s
	w := s.wraps.Get().(*wrapper)
	w.t, w.done = nil, nil
	w.id = m.TxnID
	w.owner = int(m.Owner)
	w.epoch = m.Epoch
	w.hopIdx = int(m.HopIdx)
	w.pending = 0
	w.resetPlan()
	for i := range m.Hops {
		h := &m.Hops[i]
		n := len(w.hops)
		w.hops = append(w.hops, int(h.CC))
		if n < cap(w.opsByCC) {
			w.opsByCC = w.opsByCC[:n+1]
		} else {
			w.opsByCC = append(w.opsByCC, nil)
		}
		w.opsByCC[n] = append(w.opsByCC[n][:0], h.Ops...)
		if n < cap(w.reqs) {
			w.reqs = w.reqs[:n+1]
			w.reqs[n] = w.reqs[n][:0]
		} else {
			w.reqs = append(w.reqs, nil)
		}
	}
	nh := len(w.hops)
	w.wireReleases = nh
	w.releasesLeft.Store(int32(nh))
	// One reference per CC hop and nothing else on this node: the
	// owning exec thread and any WAL ack hold references to the exec
	// node's twin wrapper, not this one.
	w.refs.Store(int32(nh))
	// Balance releaseTxn's unconditional epoch retirement.
	s.epochs.add(w.epoch, 1)
	t.reg[m.TxnID] = w
	return w
}

// netQueue adapts one remote (plane, from, to) queue slot to the
// spsc.Queue interface: the producing thread's flushOutbox pass becomes
// one wire frame handed to the peer's writer goroutine. Send-only — the
// consuming side of a wire queue is a real ring fed by the reader.
//
// Message payloads are copied into the frame at enqueue time, so a
// wrapper recycled immediately after (releases carry only the wire id)
// can never be read by the writer. A frame the writer channel cannot
// accept parks in pending — the messages it holds are already consumed
// from the caller's outbox, and per-queue FIFO is preserved because the
// next TryEnqueueBatch refuses to ship anything until pending leaves.
type netQueue struct {
	t        *tcpTransport
	plane    uint8
	from, to uint16
	pending  *wire.Frame
}

// TryEnqueueBatch coalesces vs into one frame (bounded by the MaxFrame
// soft cap) and hands it to the writer, returning how many messages it
// consumed. Returns 0 without consuming anything when the writer
// channel is full and a pending frame is already parked — flushOutbox
// then spins politely, the same backpressure a full ring applies.
//
//orthrus:hotpath
func (q *netQueue) TryEnqueueBatch(vs []message) int {
	p := q.t.peer
	if q.pending != nil {
		if !p.TrySend(q.pending) {
			return 0
		}
		q.pending = nil
	}
	if len(vs) == 0 {
		return 0
	}
	f := p.Get()
	f.Plane, f.From, f.To = q.plane, q.from, q.to
	max := p.MaxFrame()
	size := wire.FrameHeaderSize
	n := 0
	for i := range vs {
		m := f.AddMsg()
		q.fill(m, &vs[i])
		sz := m.EncodedSize()
		if n > 0 && size+sz > max {
			f.Msgs = f.Msgs[:n] // roll the overflow message back
			break
		}
		size += sz
		n++
	}
	if !p.TrySend(f) {
		q.pending = f
	}
	return n
}

// fill copies one in-process message into its wire form. Acquires
// snapshot the wrapper's plan here, on the owning thread, so the frame
// is self-contained no matter when the writer serializes it.
//
//orthrus:hotpath
func (q *netQueue) fill(wm *wire.Msg, m *message) {
	wm.TxnID = m.id
	switch {
	case q.plane == wire.PlaneCCExec:
		wm.Kind = wire.KindGrant
	case m.kind == msgRelease:
		wm.Kind = wire.KindRelease
	default:
		wm.Kind = wire.KindAcquire
		w := m.w
		wm.Owner = uint16(w.owner)
		wm.HopIdx = uint16(w.hopIdx)
		wm.Epoch = w.epoch
		for i, c := range w.hops {
			h := wm.AddHop(uint16(c))
			h.Ops = append(h.Ops[:0], w.opsByCC[i]...)
		}
	}
}

//orthrus:hotpath
func (q *netQueue) TryEnqueue(v message) bool {
	var vs [1]message
	vs[0] = v
	return q.TryEnqueueBatch(vs[:]) == 1
}

//orthrus:hotpath
func (q *netQueue) Enqueue(v message) bool {
	for !q.TryEnqueue(v) {
		runtime.Gosched()
	}
	return true
}

func (q *netQueue) TryDequeue() (message, bool) {
	panic("orthrus: netQueue is send-only (the peer's reader feeds local rings)")
}

func (q *netQueue) Dequeue() (message, bool) {
	panic("orthrus: netQueue is send-only (the peer's reader feeds local rings)")
}

func (q *netQueue) DequeueBatch([]message) int {
	panic("orthrus: netQueue is send-only (the peer's reader feeds local rings)")
}

func (q *netQueue) Close() {}

// Len reports only what is locally observable (a parked frame's
// messages); in-flight wire traffic is not countable here.
func (q *netQueue) Len() int {
	if q.pending != nil {
		return len(q.pending.Msgs)
	}
	return 0
}

var _ spsc.Queue[message] = (*netQueue)(nil)
