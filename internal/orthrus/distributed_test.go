package orthrus

import (
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/workload"
)

// runTCPPair runs one closed-loop session across the two-node tcp split
// inside a single test process: the cc node accepts on a loopback
// listener and sits in Close (gated on the exec node's goodbye) while
// the exec node drives src for the given duration. Both engines'
// Messages() are valid on return.
func runTCPPair(t *testing.T, ccCfg, execCfg Config, src workload.Source, d time.Duration) metrics.Result {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ccCfg.Transport = TransportConfig{Kind: "tcp", Role: "cc", Listener: ln}
	execCfg.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: ln.Addr().String()}
	ccEng := New(ccCfg)
	execEng := New(execCfg)
	ccDone := make(chan struct{})
	go func() {
		defer close(ccDone)
		ses := ccEng.Start()
		ses.Close() // blocks on the goodbye barrier until the exec node drains
	}()
	res := execEng.Run(src, d)
	select {
	case <-ccDone:
	case <-time.After(30 * time.Second):
		t.Fatal("cc node did not shut down after the exec node finished")
	}
	return res
}

// The fundamental distributed correctness test: the transfer workload
// over the wire must conserve the total balance and terminate cleanly.
func TestDistributedTransferConservation(t *testing.T) {
	const records = 8
	ccDB, _ := newDB(records)
	execDB, tbl := newDB(records)
	for k := uint64(0); k < records; k++ {
		storage.PutU64(execDB.Table(tbl).Get(k), 0, 1000)
	}
	ccCfg := Config{DB: ccDB, CCThreads: 2, ExecThreads: 3}
	execCfg := Config{DB: execDB, CCThreads: 2, ExecThreads: 3}
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := runTCPPair(t, ccCfg, execCfg, src, 150*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Aborted != 0 {
		t.Fatalf("aborts = %d (exact access sets must never abort)", res.Totals.Aborted)
	}
	if got := sumTable(execDB, tbl, records); got != records*1000 {
		t.Fatalf("sum = %d, want %d", got, records*1000)
	}
}

// The naive no-forwarding protocol re-acquires from the exec node at
// every hop; all of that extra traffic crosses the wire and must still
// be exactly correct.
func TestDistributedDisableForwarding(t *testing.T) {
	const records = 64
	ccDB, _ := newDB(records)
	execDB, tbl := newDB(records)
	mk := func(db *storage.DB) Config {
		return Config{DB: db, CCThreads: 3, ExecThreads: 2, DisableForwarding: true}
	}
	src := &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 8, HotRecords: 8, HotOps: 2}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	res := runTCPPair(t, mk(ccDB), mk(execDB), src, 150*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	want := res.Totals.Committed * 8
	if got := sumTable(execDB, tbl, records); got != want {
		t.Fatalf("increments = %d, want %d", got, want)
	}
}

// TestPerCCStatsConservationTCP extends TestPerCCStatsConservation
// across the process split: every message the exec node sends must be
// received and handled on the cc node (and vice versa for grants), the
// frame counters must be symmetric, and the wire batching must be
// consistent with the exec threads' batch sizes.
func TestPerCCStatsConservationTCP(t *testing.T) {
	const records = 1 << 12
	ccDB, _ := newDB(records)
	execDB, tbl := newDB(records)
	mk := func(db *storage.DB) Config { return Config{DB: db, CCThreads: 3, ExecThreads: 3} }
	src := &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 8, HotRecords: 64, HotOps: 2}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ccCfg, execCfg := mk(ccDB), mk(execDB)
	ccCfg.Transport = TransportConfig{Kind: "tcp", Role: "cc", Listener: ln}
	execCfg.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: ln.Addr().String()}
	ccEng := New(ccCfg)
	execEng := New(execCfg)
	ccDone := make(chan struct{})
	go func() {
		defer close(ccDone)
		ccEng.Start().Close()
	}()
	if res := execEng.Run(src, 150*time.Millisecond); res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	<-ccDone

	ccM, exM := ccEng.Messages(), execEng.Messages()

	// Send-side counters live on the exec node (acquires, releases);
	// handled-side counters live on the cc node (per-CC breakdown,
	// grants). Conservation across the wire must be exact.
	var acq, fwd, rel, grants uint64
	for _, cs := range ccM.PerCC {
		acq += cs.Acquires
		fwd += cs.Forwards
		rel += cs.Releases
		grants += cs.Grants
	}
	if acq != exM.Acquires {
		t.Fatalf("cc handled %d acquires, exec sent %d", acq, exM.Acquires)
	}
	if rel != exM.Releases {
		t.Fatalf("cc handled %d releases, exec sent %d", rel, exM.Releases)
	}
	if fwd != ccM.Forwards {
		t.Fatalf("per-CC forwards %d != node total %d (forwards are cc-node-local)", fwd, ccM.Forwards)
	}
	if grants != ccM.Grants {
		t.Fatalf("per-CC grants %d != node total %d", grants, ccM.Grants)
	}

	// Wire conservation: sent == received per peer pair, both planes.
	cn, en := ccM.Net, exM.Net
	if !cn.Remote() || !en.Remote() {
		t.Fatalf("sessions did not report wire traffic: cc %+v exec %+v", cn, en)
	}
	if en.MessagesSent != cn.MessagesReceived || cn.MessagesSent != en.MessagesReceived {
		t.Fatalf("message conservation violated: exec sent %d / cc recv %d; cc sent %d / exec recv %d",
			en.MessagesSent, cn.MessagesReceived, cn.MessagesSent, en.MessagesReceived)
	}
	if en.FramesSent != cn.FramesReceived || cn.FramesSent != en.FramesReceived {
		t.Fatalf("frame conservation violated: exec sent %d / cc recv %d; cc sent %d / exec recv %d",
			en.FramesSent, cn.FramesReceived, cn.FramesSent, en.FramesReceived)
	}
	if en.BytesSent != cn.BytesReceived || cn.BytesSent != en.BytesReceived {
		t.Fatalf("byte conservation violated: exec sent %d / cc recv %d; cc sent %d / exec recv %d",
			en.BytesSent, cn.BytesReceived, cn.BytesSent, en.BytesReceived)
	}

	// The wire totals decompose exactly onto the message-plane totals:
	// the exec node sends acquires and releases, the cc node sends
	// grants; forwards never cross the wire.
	if en.MessagesSent != exM.Acquires+exM.Releases {
		t.Fatalf("exec wire messages %d != acquires %d + releases %d",
			en.MessagesSent, exM.Acquires, exM.Releases)
	}
	if cn.MessagesSent != ccM.Grants {
		t.Fatalf("cc wire messages %d != grants %d", cn.MessagesSent, ccM.Grants)
	}

	// Every non-empty flush produced at least one frame, and the only
	// empty frame either side sends is its goodbye.
	if en.FramesSent < 2 || cn.FramesSent < 2 {
		t.Fatalf("too few frames: exec %d, cc %d", en.FramesSent, cn.FramesSent)
	}
	if en.MessagesSent < en.FramesSent-1 || cn.MessagesSent < cn.FramesSent-1 {
		t.Fatalf("empty data frames on the wire: exec %d msgs / %d frames, cc %d msgs / %d frames",
			en.MessagesSent, en.FramesSent, cn.MessagesSent, cn.FramesSent)
	}

	// Batching coherence: the exec node's wire batching factor cannot
	// exceed what its outbox coalescing could have produced — each frame
	// carries at most one flushOutbox pass, whose size is bounded by the
	// whole in-flight window's worth of messages per pass.
	if len(exM.ExecBatch) != 3 {
		t.Fatalf("ExecBatch has %d entries, want 3", len(exM.ExecBatch))
	}
	for i, b := range exM.ExecBatch {
		if b < 1 {
			t.Fatalf("exec thread %d reports batch size %d", i, b)
		}
	}
	if mpf := en.MessagesPerFrame(); mpf <= 0 {
		t.Fatalf("MessagesPerFrame = %v", mpf)
	}
}

// TestTransportConfigValidationPanics covers the new transport knobs the
// same way TestConfigValidationPanics covers the engine's.
func TestTransportConfigValidationPanics(t *testing.T) {
	db, _ := newDB(8)
	base := func() Config { return Config{DB: db, CCThreads: 2, ExecThreads: 2} }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown-kind", func(c *Config) { c.Transport.Kind = "udp" }},
		{"role-without-tcp", func(c *Config) { c.Transport.Role = "cc" }},
		{"peer-without-tcp", func(c *Config) { c.Transport.Peer = "127.0.0.1:9" }},
		{"tcp-unknown-role", func(c *Config) { c.Transport = TransportConfig{Kind: "tcp", Role: "both"} }},
		{"tcp-cc-no-listen", func(c *Config) { c.Transport = TransportConfig{Kind: "tcp", Role: "cc"} }},
		{"tcp-cc-with-peer", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "cc", Listen: "127.0.0.1:0", Peer: "127.0.0.1:9"}
		}},
		{"tcp-cc-bad-listen", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "cc", Listen: "no-port"}
		}},
		{"tcp-exec-no-peer", func(c *Config) { c.Transport = TransportConfig{Kind: "tcp", Role: "exec"} }},
		{"tcp-exec-bad-peer", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "no-port"}
		}},
		{"tcp-exec-with-listen", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9", Listen: "127.0.0.1:0"}
		}},
		{"tcp-negative-maxframe", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9"}
			c.Transport.Net.MaxFrame = -1
		}},
		{"tcp-tiny-maxframe", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9"}
			c.Transport.Net.MaxFrame = 16
		}},
		{"tcp-negative-writerdepth", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9"}
			c.Transport.Net.WriterDepth = -1
		}},
		{"tcp-negative-dial-timeout", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9"}
			c.Transport.Net.DialTimeout = -time.Second
		}},
		{"tcp-negative-accept-timeout", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9"}
			c.Transport.Net.AcceptTimeout = -time.Second
		}},
		{"tcp-with-controller", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9"}
			c.Controller = ControllerConfig{Enable: true}
		}},
		{"tcp-with-channels", func(c *Config) {
			c.Transport = TransportConfig{Kind: "tcp", Role: "exec", Peer: "127.0.0.1:9"}
			c.UseChannels = true
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("New accepted malformed transport configuration")
				}
			}()
			cfg := base()
			tc.mutate(&cfg)
			New(cfg)
		})
	}
}

// A topology mismatch between the two processes must be refused at
// handshake time, on both nodes, before any message flows.
func TestDistributedHandshakeRejectsMismatch(t *testing.T) {
	ccDB, _ := newDB(8)
	execDB, _ := newDB(8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ccCfg := Config{DB: ccDB, CCThreads: 2, ExecThreads: 3,
		Transport: TransportConfig{Kind: "tcp", Role: "cc", Listener: ln}}
	execCfg := Config{DB: execDB, CCThreads: 3, ExecThreads: 3, // CCThreads differs
		Transport: TransportConfig{Kind: "tcp", Role: "exec", Peer: ln.Addr().String()}}
	panics := make(chan interface{}, 2)
	for _, cfg := range []Config{ccCfg, execCfg} {
		cfg := cfg
		go func() {
			defer func() { panics <- recover() }()
			New(cfg).Start()
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case p := <-panics:
			if p == nil {
				t.Fatal("node accepted a mismatched topology")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("handshake neither succeeded nor refused")
		}
	}
}
