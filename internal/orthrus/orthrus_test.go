package orthrus

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func newDB(n uint64) (*storage.DB, int) {
	db := storage.NewDB()
	id := db.Create(storage.Layout{Name: "main", NumRecords: n, RecordSize: 64})
	return db, id
}

func sumTable(db *storage.DB, tbl int, n uint64) uint64 {
	var sum uint64
	for k := uint64(0); k < n; k++ {
		sum += storage.GetU64(db.Table(tbl).Get(k), 0)
	}
	return sum
}

func TestNameVariants(t *testing.T) {
	db, _ := newDB(8)
	cases := []struct {
		cfg  Config
		want []string
	}{
		{Config{DB: db, CCThreads: 2, ExecThreads: 3}, []string{"orthrus(2cc/3ex)"}},
		{Config{DB: db, CCThreads: 1, ExecThreads: 1, Split: true}, []string{"split-orthrus"}},
		{Config{DB: db, CCThreads: 1, ExecThreads: 1, SharedTable: true}, []string{"-shared"}},
		{Config{DB: db, CCThreads: 1, ExecThreads: 1, UseChannels: true}, []string{"-chan"}},
	}
	for _, c := range cases {
		name := New(c.cfg).Name()
		for _, want := range c.want {
			if !strings.Contains(name, want) {
				t.Errorf("Name = %q, want substring %q", name, want)
			}
		}
	}
}

// The fundamental correctness test: transfers on a tiny hot set conserve
// the total balance (isolation) and the engine terminates (no deadlock).
func TestTransferConservation(t *testing.T) {
	const records = 8
	db, tbl := newDB(records)
	for k := uint64(0); k < records; k++ {
		storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
	}
	eng := New(Config{DB: db, CCThreads: 2, ExecThreads: 3})
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, 150*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Aborted != 0 {
		t.Fatalf("aborts = %d (exact access sets must never abort)", res.Totals.Aborted)
	}
	if got := sumTable(db, tbl, records); got != records*1000 {
		t.Fatalf("sum = %d, want %d", got, records*1000)
	}
}

// Multi-CC transactions under extreme contention: every transaction spans
// all CC threads; increments must all be accounted for.
func TestMultiPartitionRMWAccounted(t *testing.T) {
	const records = 64
	for _, variant := range []struct {
		name string
		cfg  Config
	}{
		{"private-spsc", Config{CCThreads: 4, ExecThreads: 4}},
		{"shared-table", Config{CCThreads: 4, ExecThreads: 4, SharedTable: true}},
		{"channels", Config{CCThreads: 4, ExecThreads: 4, UseChannels: true}},
	} {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			db, tbl := newDB(records)
			cfg := variant.cfg
			cfg.DB = db
			eng := New(cfg)
			src := &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 8, HotRecords: 8, HotOps: 2}
			if err := src.Validate(); err != nil {
				t.Fatal(err)
			}
			res := eng.Run(src, 150*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			want := res.Totals.Committed * 8
			if got := sumTable(db, tbl, records); got != want {
				t.Fatalf("increments = %d, want %d", got, want)
			}
		})
	}
}

// Single-partition transactions take the 2-message path and must also be
// correct when many exec threads hammer one CC thread.
func TestSinglePartitionLocality(t *testing.T) {
	const records = 1 << 12
	db, tbl := newDB(records)
	eng := New(Config{DB: db, CCThreads: 4, ExecThreads: 4})
	src := &workload.YCSB{
		Table: tbl, NumRecords: records, OpsPerTxn: 10,
		Partitions: 4, Spread: 1, MultiPartitionPct: 100,
	}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	res := eng.Run(src, 100*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	want := res.Totals.Committed * 10
	if got := sumTable(db, tbl, records); got != want {
		t.Fatalf("increments = %d, want %d", got, want)
	}
}

// Read-only workloads must never abort and must scale past one exec thread.
func TestReadOnlyNoAborts(t *testing.T) {
	db, tbl := newDB(1024)
	eng := New(Config{DB: db, CCThreads: 2, ExecThreads: 4})
	src := &workload.YCSB{Table: tbl, NumRecords: 1024, OpsPerTxn: 10, ReadOnly: true, HotRecords: 64, HotOps: 2}
	res := eng.Run(src, 100*time.Millisecond)
	if res.Totals.Committed == 0 || res.Totals.Aborted != 0 {
		t.Fatalf("committed=%d aborted=%d", res.Totals.Committed, res.Totals.Aborted)
	}
}

// The OLLP path: a source whose first estimate is always wrong must still
// commit every transaction exactly once, via Replan.
type missSource struct {
	table  int
	misses atomic.Int64
}

func (s *missSource) Next(int, *rand.Rand) *txn.Txn {
	t := &txn.Txn{Ops: []txn.Op{{Table: s.table, Key: 0, Mode: txn.Write}}}
	t.Logic = func(ctx txn.Ctx) error {
		rec, err := ctx.Write(s.table, 1)
		if err != nil {
			return err
		}
		storage.PutU64(rec, 0, storage.GetU64(rec, 0)+1)
		return nil
	}
	t.Replan = func(t *txn.Txn) {
		s.misses.Add(1)
		t.Ops = []txn.Op{{Table: s.table, Key: 1, Mode: txn.Write}}
	}
	return t
}

func TestOLLPEstimateMissRestarts(t *testing.T) {
	db, tbl := newDB(4)
	eng := New(Config{DB: db, CCThreads: 2, ExecThreads: 2})
	src := &missSource{table: tbl}
	res := eng.Run(src, 50*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Misses != res.Totals.Committed {
		t.Fatalf("misses = %d, commits = %d (every txn must miss exactly once)",
			res.Totals.Misses, res.Totals.Committed)
	}
	if got := storage.GetU64(db.Table(tbl).Get(1), 0); got != res.Totals.Committed {
		t.Fatalf("key1 = %d, want %d", got, res.Totals.Committed)
	}
}

// Property: for any access set, the submit-time chain visits CC threads
// in strictly ascending order and covers exactly the partition set — the
// deadlock-avoidance invariant of §3.2.
func TestChainOrderingInvariant(t *testing.T) {
	const ccThreads = 8
	pf := txn.HashPartitioner(ccThreads)
	f := func(rawKeys []uint16) bool {
		if len(rawKeys) == 0 {
			return true
		}
		tx := &txn.Txn{}
		for _, k := range rawKeys {
			tx.Ops = append(tx.Ops, txn.Op{Table: 0, Key: uint64(k), Mode: txn.Write})
		}
		tx.SortOps()
		// Reproduce submit's grouping logic.
		var hops []int
		covered := 0
		for c := 0; c < ccThreads; c++ {
			n := 0
			for _, op := range tx.Ops {
				if pf(op.Table, op.Key) == c {
					n++
				}
			}
			if n > 0 {
				hops = append(hops, c)
				covered += n
			}
		}
		if covered != len(tx.Ops) {
			return false
		}
		for i := 1; i < len(hops); i++ {
			if hops[i-1] >= hops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A 1-CC/1-exec configuration is the smallest legal engine and must work.
func TestMinimalConfiguration(t *testing.T) {
	db, tbl := newDB(32)
	eng := New(Config{DB: db, CCThreads: 1, ExecThreads: 1, Inflight: 1, QueueCap: 1})
	src := &workload.YCSB{Table: tbl, NumRecords: 32, OpsPerTxn: 4}
	res := eng.Run(src, 50*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	want := res.Totals.Committed * 4
	if got := sumTable(db, tbl, 32); got != want {
		t.Fatalf("increments = %d, want %d", got, want)
	}
}

// Time breakdown must be populated and exec threads must report waiting
// when CC threads are the bottleneck.
func TestBreakdownPopulated(t *testing.T) {
	db, tbl := newDB(64)
	eng := New(Config{DB: db, CCThreads: 1, ExecThreads: 3})
	src := &workload.YCSB{Table: tbl, NumRecords: 64, OpsPerTxn: 8, HotRecords: 4, HotOps: 2}
	res := eng.Run(src, 100*time.Millisecond)
	tot := res.Totals
	if tot.Exec <= 0 || tot.Lock <= 0 {
		t.Fatalf("breakdown missing: %+v", tot)
	}
}

// Local lock-table unit tests (the latch-free FIFO queue inside CC
// threads) — exercised directly, without the message plane.
func TestPrivateTableFIFO(t *testing.T) {
	tbl := newPrivateTable()
	w := &wrapper{}
	mk := func(mode txn.Mode, key uint64) *localReq {
		return &localReq{w: w, mode: mode, key: lockKey{0, key}}
	}

	r1 := mk(txn.Read, 1)
	r2 := mk(txn.Read, 1)
	w1 := mk(txn.Write, 1)
	r3 := mk(txn.Read, 1)

	if !tbl.insert(r1) || !tbl.insert(r2) {
		t.Fatal("shared locks must coexist")
	}
	if tbl.insert(w1) {
		t.Fatal("write granted alongside reads")
	}
	if tbl.insert(r3) {
		t.Fatal("read overtook waiting writer (FIFO violation)")
	}

	var out []*localReq
	out = tbl.release(r1, out)
	if len(out) != 0 {
		t.Fatal("premature grant")
	}
	out = tbl.release(r2, out)
	if len(out) != 1 || out[0] != w1 {
		t.Fatalf("expected writer grant, got %v", out)
	}
	out = tbl.release(w1, out[:0])
	if len(out) != 1 || out[0] != r3 {
		t.Fatalf("expected reader grant, got %v", out)
	}
	out = tbl.release(r3, out[:0])
	if len(out) != 0 {
		t.Fatal("grant from empty queue")
	}
	if len(tbl.entries) != 0 {
		t.Fatal("entry leaked")
	}
}

func TestSharedTableMirrorsPrivateSemantics(t *testing.T) {
	st := newSharedTable(16)
	v := sharedView{st}
	w := &wrapper{}
	a := &localReq{w: w, mode: txn.Write, key: lockKey{0, 5}}
	b := &localReq{w: w, mode: txn.Write, key: lockKey{0, 5}}
	if !v.insert(a) {
		t.Fatal("first writer refused")
	}
	if v.insert(b) {
		t.Fatal("second writer granted")
	}
	out := v.release(a, nil)
	if len(out) != 1 || out[0] != b {
		t.Fatal("release did not grant waiter")
	}
	v.release(b, out[:0])
}

// Stress: run long enough under -race to surface ownership violations in
// the message plane.
func TestStressMixedSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const records = 256
	db, tbl := newDB(records)
	eng := New(Config{DB: db, CCThreads: 3, ExecThreads: 5, Inflight: 4})
	src := &workload.YCSB{
		Table: tbl, NumRecords: records, OpsPerTxn: 6,
		HotRecords: 16, HotOps: 2,
		Partitions: 3, Spread: 2, MultiPartitionPct: 50,
	}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	res := eng.Run(src, 400*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	want := res.Totals.Committed * 6
	if got := sumTable(db, tbl, records); got != want {
		t.Fatalf("increments = %d, want %d", got, want)
	}
}

// fixedSpreadSource emits transactions touching exactly one key in each
// of k fixed partitions — the footprint is deterministic, so message
// counts can be verified exactly.
type fixedSpreadSource struct {
	table int
	k     int
	cc    int
	n     uint64
}

func (s *fixedSpreadSource) Next(_ int, rng *rand.Rand) *txn.Txn {
	ops := make([]txn.Op, s.k)
	base := uint64(rng.Int63n(int64(s.n/uint64(s.cc)-1))) * uint64(s.cc)
	for i := 0; i < s.k; i++ {
		ops[i] = txn.Op{Table: s.table, Key: base + uint64(i), Mode: txn.Write}
	}
	t := &txn.Txn{Ops: ops}
	t.Logic = func(ctx txn.Ctx) error {
		for _, op := range t.Ops {
			rec, err := ctx.Write(op.Table, op.Key)
			if err != nil {
				return err
			}
			storage.PutU64(rec, 0, storage.GetU64(rec, 0)+1)
		}
		return nil
	}
	return t
}

// TestMessageCountNccPlusOne verifies the §3.3 claim directly: with
// forwarding, acquiring a transaction's locks across Ncc CC threads costs
// exactly Ncc+1 messages; the naive protocol costs 2·Ncc.
func TestMessageCountNccPlusOne(t *testing.T) {
	const ncc = 4
	for _, naive := range []bool{false, true} {
		name := "forwarding"
		if naive {
			name = "exec-mediated"
		}
		t.Run(name, func(t *testing.T) {
			db, tbl := newDB(1 << 12)
			eng := New(Config{DB: db, CCThreads: ncc, ExecThreads: 2, DisableForwarding: naive})
			src := &fixedSpreadSource{table: tbl, k: ncc, cc: ncc, n: 1 << 12}
			res := eng.Run(src, 80*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			m := eng.Messages()
			perTxn := float64(m.AcquisitionMessages()) / float64(res.Totals.Committed)
			want := float64(ncc + 1)
			if naive {
				want = float64(2 * ncc)
			}
			if perTxn != want {
				t.Fatalf("acquisition messages per txn = %v, want %v (stats %+v, commits %d)",
					perTxn, want, m, res.Totals.Committed)
			}
			if got := float64(m.Releases) / float64(res.Totals.Committed); got != float64(ncc) {
				t.Fatalf("release messages per txn = %v, want %d", got, ncc)
			}
			// Increment accounting still exact in both modes.
			want2 := res.Totals.Committed * ncc
			if got := sumTable(db, tbl, 1<<12); got != want2 {
				t.Fatalf("increments = %d, want %d", got, want2)
			}
		})
	}
}

// TestDisableForwardingConservation: the naive protocol must be just as
// correct, only chattier.
func TestDisableForwardingConservation(t *testing.T) {
	const records = 8
	db, tbl := newDB(records)
	for k := uint64(0); k < records; k++ {
		storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
	}
	eng := New(Config{DB: db, CCThreads: 3, ExecThreads: 3, DisableForwarding: true})
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, 120*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if got := sumTable(db, tbl, records); got != records*1000 {
		t.Fatalf("sum = %d, want %d", got, records*1000)
	}
}

// A partitioner whose range exceeds the CC thread count must still lock
// every declared op (partitions fold modulo CC count); no op may be
// silently dropped. Regression test for the Autotune-probe bug.
func TestWidePartitionerFoldsSafely(t *testing.T) {
	const records = 8
	db, tbl := newDB(records)
	for k := uint64(0); k < records; k++ {
		storage.PutU64(db.Table(tbl).Get(k), 0, 1000)
	}
	// 8-way partitioner on a 2-CC engine.
	eng := New(Config{DB: db, CCThreads: 2, ExecThreads: 3, Partition: txn.HashPartitioner(8)})
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, 120*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if got := sumTable(db, tbl, records); got != records*1000 {
		t.Fatalf("sum = %d, want %d (ops escaped locking)", got, records*1000)
	}
}
