package orthrus

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/spsc"
	"repro/internal/txn"
)

// localReq is one record-lock request inside a CC thread's table. It is
// created, queued, granted and released by the single CC thread that owns
// the record's logical partition, so it carries no synchronization
// whatsoever — the core of the paper's argument that partitioned
// functionality makes concurrency-control metadata contention-free (§3.1).
type localReq struct {
	w       *wrapper
	mode    txn.Mode
	granted bool
	key     lockKey
	pid     int32 // logical partition, selects the owning shard

	prev, next *localReq
}

type lockKey struct {
	table int
	key   uint64
}

// lentry is one record's FIFO request queue.
type lentry struct {
	head, tail *localReq
	waiters    int
}

func (e *lentry) push(r *localReq) {
	r.prev, r.next = e.tail, nil
	if e.tail != nil {
		e.tail.next = r
	} else {
		e.head = r
	}
	e.tail = r
}

func (e *lentry) remove(r *localReq) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		e.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		e.tail = r.prev
	}
	r.prev, r.next = nil, nil
}

// compatible reports whether a new request of the given mode can be
// granted immediately (strict FIFO: any conflicting request ahead —
// granted or waiting — blocks it).
func (e *lentry) compatible(mode txn.Mode) bool {
	for cur := e.head; cur != nil; cur = cur.next {
		if cur.mode.Conflicts(mode) {
			return false
		}
	}
	return true
}

// grantPrefix grants the longest compatible prefix of waiting requests,
// appending newly granted requests to out.
func (e *lentry) grantPrefix(out []*localReq) []*localReq {
	if e.waiters == 0 {
		return out
	}
	var grantedWrite, grantedRead bool
	for cur := e.head; cur != nil; cur = cur.next {
		if cur.granted {
			if cur.mode == txn.Write {
				grantedWrite = true
			} else {
				grantedRead = true
			}
			continue
		}
		if cur.mode == txn.Write {
			if grantedWrite || grantedRead {
				return out
			}
			grantedWrite = true
		} else {
			if grantedWrite {
				return out
			}
			grantedRead = true
		}
		cur.granted = true
		e.waiters--
		out = append(out, cur)
	}
	return out
}

// ccTable abstracts the lock-table layout: private per-partition maps (the
// ORTHRUS design) or one latched shared table (the §3.4 alternative).
// Either way every key is operated on by exactly one CC thread at a time,
// so the grant bookkeeping stays single-owner.
type ccTable interface {
	// insert queues r and reports whether it was granted immediately.
	insert(r *localReq) bool
	// release dequeues a granted r and appends any newly granted
	// requests to out.
	release(r *localReq, out []*localReq) []*localReq
}

// privateTable is a latch-free map owned — via its logical partition — by
// exactly one CC thread at a time. It is the unit of migration: the whole
// structure (entries and entry pool) is handed to the new owner over the
// control plane, preserving its allocated capacity.
type privateTable struct {
	entries map[lockKey]*lentry
	pool    []*lentry
}

func newPrivateTable() *privateTable {
	//orthrus:allow(noalloc) once per logical partition's first lock request; the table then lives (and migrates) forever
	return &privateTable{entries: make(map[lockKey]*lentry, 256)}
}

func (t *privateTable) insert(r *localReq) bool {
	e := t.entries[r.key]
	if e == nil {
		e = t.getEntry()
		t.entries[r.key] = e
	}
	if e.compatible(r.mode) {
		r.granted = true
		e.push(r)
		return true
	}
	r.granted = false
	e.push(r)
	e.waiters++
	return false
}

func (t *privateTable) release(r *localReq, out []*localReq) []*localReq {
	e := t.entries[r.key]
	e.remove(r)
	out = e.grantPrefix(out)
	if e.head == nil {
		delete(t.entries, r.key)
		t.putEntry(e)
	}
	return out
}

func (t *privateTable) getEntry() *lentry {
	if n := len(t.pool); n > 0 {
		e := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return e
	}
	return &lentry{}
}

func (t *privateTable) putEntry(e *lentry) {
	e.head, e.tail, e.waiters = nil, nil, 0
	if len(t.pool) < 64 {
		t.pool = append(t.pool, e)
	}
}

// sharedTable is the §3.4 alternative: one bucketed, latched table that
// all CC threads operate on. Routing still sends each key to a single CC
// thread, so correctness is unchanged; what the variant adds back is
// synchronization and data movement on the table structure itself.
type sharedTable struct {
	buckets []sharedBucket
	mask    uint64
}

type sharedBucket struct {
	mu      sync.Mutex
	entries map[lockKey]*lentry
	_       [40]byte
}

func newSharedTable(buckets int) *sharedTable {
	n := 1
	for n < buckets {
		n <<= 1
	}
	t := &sharedTable{buckets: make([]sharedBucket, n), mask: uint64(n - 1)}
	for i := range t.buckets {
		t.buckets[i].entries = make(map[lockKey]*lentry)
	}
	return t
}

func (t *sharedTable) bucket(k lockKey) *sharedBucket {
	h := k.key*0x9E3779B97F4A7C15 + uint64(k.table)*0xBF58476D1CE4E5B9
	h ^= h >> 32
	return &t.buckets[h&t.mask]
}

// view adapts the shared table to the ccTable interface.
type sharedView struct{ t *sharedTable }

func (v sharedView) insert(r *localReq) bool {
	b := v.t.bucket(r.key)
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[r.key]
	if e == nil {
		e = &lentry{}
		b.entries[r.key] = e
	}
	if e.compatible(r.mode) {
		r.granted = true
		e.push(r)
		return true
	}
	r.granted = false
	e.push(r)
	e.waiters++
	return false
}

func (v sharedView) release(r *localReq, out []*localReq) []*localReq {
	b := v.t.bucket(r.key)
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[r.key]
	e.remove(r)
	out = e.grantPrefix(out)
	if e.head == nil {
		delete(b.entries, r.key)
	}
	return out
}

// ---------------------------------------------------------------------
// CC thread
// ---------------------------------------------------------------------

// ccThread runs the tight request-processing loop of §3.3: drain input
// rings round-robin, inserting lock requests, forwarding transactions up
// the chain, granting completed ones, and releasing on commit.
//
// Lock state is held as one privateTable per owned logical partition
// (shards), so ownership of a partition — its lock table, waiter queues
// and entry pool — can be detached and handed to another CC thread over
// the control channel during a live migration (controller.go). Shards are
// only ever touched by their current owner: the migration protocol drains
// every in-flight chain before a handoff, so a detached shard is
// guaranteed empty of requests.
//
// The message plane is batched (Config.BatchSize): each input ring is
// drained into inbuf and acknowledged with one ring operation per batch,
// and the forwards and grants generated while handling a drain pass are
// coalesced per destination (fwdOut/grantOut) and published with one
// ring operation per batch. Order within each ring is untouched — a
// batch is published and consumed in send order — so the FIFO grant
// order CC threads rely on is preserved.
type ccThread struct {
	s  *runState
	id int
	// shards[pid] is the lock table for logical partition pid, non-nil
	// only while this thread owns pid (created lazily on first use).
	shards []*privateTable
	shared ccTable // non-nil in SharedTable mode, used for every pid
	ctrl   chan ccCtrl

	batch    int
	inbuf    []message   // batched drain buffer
	fwdOut   [][]message // per-CC forward outbox (only ids > c.id used)
	grantOut [][]message // per-exec grant outbox
	ops      opCounter

	// Per-pass accumulation of observability counters, flushed to the
	// runState's per-thread atomics at the end of each drain pass so the
	// hot path pays local increments, not shared atomic traffic, while
	// the controller still sees near-live values.
	nAcq, nFwd, nRel, nGrant uint64
	passMsgs                 int
	pidAcc                   []uint64 // per-pid op tally this pass
	pidTouched               []int    // pids with nonzero pidAcc

	reqPool []*localReq
	granted []*localReq // scratch for release-time grants
}

func newCCThread(s *runState, id int) *ccThread {
	batch := ccBatchSize(s.cfg)
	c := &ccThread{
		s:        s,
		id:       id,
		shards:   make([]*privateTable, s.cfg.LogicalPartitions),
		ctrl:     s.ccCtrl[id],
		batch:    batch,
		inbuf:    make([]message, batch),
		fwdOut:   make([][]message, s.cfg.CCThreads),
		grantOut: make([][]message, s.cfg.ExecThreads),
		pidAcc:   make([]uint64, s.cfg.LogicalPartitions),
	}
	if s.shared != nil {
		c.shared = sharedView{s.shared}
	}
	return c
}

// table returns the lock table for logical partition pid.
func (c *ccThread) table(pid int32) ccTable {
	if c.shared != nil {
		return c.shared
	}
	sh := c.shards[pid]
	if sh == nil {
		sh = newPrivateTable()
		c.shards[pid] = sh
	}
	return sh
}

// loop is the CC thread's drain loop — the latency-critical half of the
// paper's separation: it must never block or touch I/O, only drain
// rings, mutate its private lock shards, and publish grants.
//
//orthrus:hotpath
func (c *ccThread) loop() {
	defer c.ops.flush(c.s)
	var idle engine.IdleWaiter
	for {
		progress := c.drainAll()
		// The control plane is rare-path: poll it between drain passes so
		// shard handoffs interleave with — never interrupt — message
		// handling.
		select {
		case m := <-c.ctrl:
			c.handleCtrl(m)
			progress = true
		default:
		}
		if progress {
			idle.Reset()
			continue
		}
		if c.s.ccStop.Load() {
			// No new messages can arrive once execution threads exited;
			// one final pass drains straggling releases.
			c.drainAll()
			return
		}
		// Yield-then-sleep: an idle serving session must not pin a core
		// per CC thread.
		idle.Wait()
	}
}

// drainAll processes every currently available message, publishes the
// output it generated, flushes observability counters, and reports
// progress. Outboxes are always empty when drainAll returns, so the
// thread never idles or exits on buffered output.
func (c *ccThread) drainAll() bool {
	progress := false
	for e := range c.s.execToCC {
		if c.drainRing(c.s.execToCC[e][c.id], true) {
			progress = true
		}
	}
	for i := range c.s.ccToCC {
		q := c.s.ccToCC[i][c.id]
		if q == nil {
			continue
		}
		if c.drainRing(q, false) {
			progress = true
		}
	}
	c.flushAll()
	if progress {
		c.flushStats()
	}
	return progress
}

// drainRing batch-consumes one input ring until it is empty. fromExec
// distinguishes exec→CC rings (acquires and releases) from CC→CC rings
// (forwarded acquires) for the per-thread message breakdown.
func (c *ccThread) drainRing(q spsc.Queue[message], fromExec bool) bool {
	progress := false
	for {
		n := q.DequeueBatch(c.inbuf)
		if n == 0 {
			return progress
		}
		c.ops.deq++
		c.passMsgs += n
		for i := 0; i < n; i++ {
			c.handle(c.inbuf[i], fromExec)
		}
		progress = true
		if n < len(c.inbuf) {
			return true
		}
	}
}

func (c *ccThread) handle(m message, fromExec bool) {
	switch m.kind {
	case msgAcquire:
		if fromExec {
			c.nAcq++
		} else {
			c.nFwd++
		}
		c.acquire(m.w)
	case msgRelease:
		c.nRel++
		c.releaseTxn(m.w)
	}
}

// flushStats publishes this pass's locally accumulated counters to the
// thread's live-stats slot and per-partition load tallies (what the
// adaptive controller samples), and records the pass's message count as
// a queue-backlog high-water mark.
func (c *ccThread) flushStats() {
	live := &c.s.ccLive[c.id]
	if c.nAcq > 0 {
		live.acquires.Add(c.nAcq)
		c.nAcq = 0
	}
	if c.nFwd > 0 {
		live.forwards.Add(c.nFwd)
		c.nFwd = 0
	}
	if c.nRel > 0 {
		live.releases.Add(c.nRel)
		c.nRel = 0
	}
	if c.nGrant > 0 {
		live.grants.Add(c.nGrant)
		c.nGrant = 0
	}
	if hw := int64(c.passMsgs); hw > live.hiWater.Load() {
		live.hiWater.Store(hw)
	}
	if int64(c.passMsgs) > live.hiWaterRun.Load() {
		live.hiWaterRun.Store(int64(c.passMsgs))
	}
	c.passMsgs = 0
	for _, pid := range c.pidTouched {
		c.s.pidLoad[pid].n.Add(c.pidAcc[pid])
		c.pidAcc[pid] = 0
	}
	c.pidTouched = c.pidTouched[:0]
}

// acquire inserts the wrapper's local lock requests. If all are granted
// immediately the transaction advances down the chain; otherwise it parks
// until releases drain the conflicts.
func (c *ccThread) acquire(w *wrapper) {
	hop := w.hopIdx
	ops := w.opsByCC[hop]
	pending := 0
	for _, op := range ops {
		pid := c.s.pidOf(op.Table, op.Key)
		r := c.getReq()
		r.w = w
		r.mode = op.Mode
		r.key = lockKey{op.Table, op.Key}
		r.pid = int32(pid)
		if !c.tallyAndInsert(pid, r) {
			pending++
		}
		w.reqs[hop] = append(w.reqs[hop], r)
	}
	w.pending = pending
	if pending == 0 {
		c.advance(w)
	}
}

// tallyAndInsert records per-partition load and inserts the request into
// the partition's shard, asserting this thread owns the partition under
// the current routing epoch. The assertion cannot misfire during a
// migration: ownership changes only after every chain planned under
// older epochs has fully drained, so any acquire that reaches this
// thread was routed by a table in which it is the owner — and the ring
// transfer orders the routing-table load here after the publish the
// sender observed.
func (c *ccThread) tallyAndInsert(pid int, r *localReq) bool {
	if c.pidAcc[pid] == 0 {
		c.pidTouched = append(c.pidTouched, pid)
	}
	c.pidAcc[pid]++
	if c.shared == nil {
		if own := c.s.rt.Load().owner[pid]; int(own) != c.id {
			panic(fmt.Sprintf("orthrus: CC thread %d received acquire for partition %d owned by %d", c.id, pid, own))
		}
	}
	return c.table(r.pid).insert(r)
}

// advance forwards the transaction to the next CC thread in its chain
// (the Ncc+1-message path), or — at the end of the chain, or always in
// the DisableForwarding ablation — notifies the owning execution thread.
func (c *ccThread) advance(w *wrapper) {
	if !c.s.cfg.DisableForwarding && w.hopIdx+1 < len(w.hops) {
		w.hopIdx++
		next := w.hops[w.hopIdx]
		c.s.nForwards.Add(1)
		c.pushForward(next, message{kind: msgAcquire, w: w, id: w.id})
		return
	}
	c.s.nGrants.Add(1)
	c.nGrant++
	c.pushGrant(w.owner, message{kind: msgAcquire, w: w, id: w.id})
}

// releaseTxn drops this CC thread's locks for w; newly granted requests
// may complete other transactions' chains. Processing the wrapper's final
// release message retires its routing epoch — the signal the migration
// protocol's drain barrier waits on — and drops this thread's wrapper
// reference, which on the last holder recycles the wrapper and its
// transaction (runState.dropRef).
func (c *ccThread) releaseTxn(w *wrapper) {
	hop := w.hopOf(c.id)
	c.granted = c.granted[:0]
	for _, r := range w.reqs[hop] {
		c.granted = c.table(r.pid).release(r, c.granted)
		c.putReq(r)
	}
	// Truncate, keeping capacity: this hop slot is reused when the pooled
	// wrapper plans its next chain.
	w.reqs[hop] = w.reqs[hop][:0]
	for _, g := range c.granted {
		g.w.pending--
		if g.w.pending == 0 {
			c.advance(g.w)
		}
	}
	if w.releasesLeft.Add(-1) == 0 {
		c.s.epochs.add(w.epoch, -1)
	}
	c.s.dropRef(w)
}

// handleCtrl executes one control-plane request on this thread, so shard
// structures never have two owners.
//
//orthrus:coldpath migration control plane: a shard handoff happens per controller tick at most, and the controller is the only reply reader, so the blocking sends cannot stall the drain loop meaningfully
func (c *ccThread) handleCtrl(m ccCtrl) {
	switch m.kind {
	case ctrlDetach:
		out := make([]*privateTable, len(m.pids))
		for i, pid := range m.pids {
			sh := c.shards[pid]
			if sh != nil && len(sh.entries) != 0 {
				panic(fmt.Sprintf("orthrus: detaching partition %d with %d live lock entries (migration before drain)", pid, len(sh.entries)))
			}
			out[i] = sh
			c.shards[pid] = nil
		}
		m.reply <- out
	case ctrlInstall:
		for i, pid := range m.pids {
			if c.shards[pid] != nil {
				panic(fmt.Sprintf("orthrus: installing partition %d over a live shard", pid))
			}
			c.shards[pid] = m.shards[i]
		}
		m.reply <- nil
	}
}

// pushForward buffers a forwarded acquire for CC thread `to`, publishing
// the outbox once it reaches the batch size.
func (c *ccThread) pushForward(to int, m message) {
	c.fwdOut[to] = append(c.fwdOut[to], m)
	if len(c.fwdOut[to]) >= c.batch {
		c.flushForward(to)
	}
}

// flushForward publishes buffered forwards, spinning while the target
// ring is full. Blocking here is safe: forwards flow strictly from lower
// to higher CC ids, so the wait chain is acyclic and the highest CC
// thread always makes progress — the same liveness argument the
// unbatched plane relied on, since batching changes when messages are
// published but not which rings can block.
func (c *ccThread) flushForward(to int) {
	flushOutbox(c.s.ccToCC[c.id][to], &c.fwdOut[to], &c.ops)
}

// pushGrant buffers a grant for exec thread `to`, publishing the outbox
// once it reaches the batch size.
func (c *ccThread) pushGrant(to int, m message) {
	c.grantOut[to] = append(c.grantOut[to], m)
	if len(c.grantOut[to]) >= c.batch {
		c.flushGrant(to)
	}
}

// flushGrant publishes buffered grants. Grant rings are sized for the
// owner's full in-flight window and a transaction has at most one grant
// outstanding anywhere, so buffered grants plus ring occupancy never
// exceed capacity: the flush cannot block the liveness chain.
func (c *ccThread) flushGrant(to int) {
	flushOutbox(c.s.ccToExec[c.id][to], &c.grantOut[to], &c.ops)
}

// flushAll publishes every outbox. Handling happens only inside drain
// passes, so a single sweep reaches empty.
func (c *ccThread) flushAll() {
	for to := range c.fwdOut {
		if len(c.fwdOut[to]) > 0 {
			c.flushForward(to)
		}
	}
	for to := range c.grantOut {
		if len(c.grantOut[to]) > 0 {
			c.flushGrant(to)
		}
	}
}

func (c *ccThread) getReq() *localReq {
	if n := len(c.reqPool); n > 0 {
		r := c.reqPool[n-1]
		c.reqPool = c.reqPool[:n-1]
		return r
	}
	//orthrus:allow(noalloc) pool backstop: only until the per-thread free list reaches its high-water mark
	return &localReq{}
}

func (c *ccThread) putReq(r *localReq) {
	r.w = nil
	r.granted = false
	r.prev, r.next = nil, nil
	if len(c.reqPool) < 4096 {
		c.reqPool = append(c.reqPool, r)
	}
}
