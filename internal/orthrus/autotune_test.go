package orthrus

import (
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/workload"
)

func TestCandidateSplitsDistinctAndBounded(t *testing.T) {
	for _, total := range []int{2, 3, 8, 16, 80} {
		cands := candidateSplits(total)
		if len(cands) == 0 {
			t.Fatalf("no candidates for %d", total)
		}
		seen := map[int]bool{}
		for _, c := range cands {
			if c < 1 || c >= total {
				t.Fatalf("candidate %d out of (0,%d)", c, total)
			}
			if seen[c] {
				t.Fatalf("duplicate candidate %d", c)
			}
			seen[c] = true
		}
	}
}

func TestAutotuneReturnsRunnableConfig(t *testing.T) {
	db, tbl := newDB(1 << 10)
	src := &workload.YCSB{Table: tbl, NumRecords: 1 << 10, OpsPerTxn: 4}
	cfg := Autotune(db, 4, txn.HashPartitioner(4), src, 10*time.Millisecond)
	if cfg.CCThreads+cfg.ExecThreads != 4 {
		t.Fatalf("split %d+%d != 4", cfg.CCThreads, cfg.ExecThreads)
	}
	// The tuned config must actually run.
	res := New(cfg).Run(src, 30*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("tuned engine committed nothing")
	}
}

func TestAutotuneDegenerateBudget(t *testing.T) {
	db, tbl := newDB(64)
	src := &workload.YCSB{Table: tbl, NumRecords: 64, OpsPerTxn: 2}
	cfg := Autotune(db, 1, txn.HashPartitioner(1), src, time.Millisecond)
	if cfg.CCThreads != 1 || cfg.ExecThreads != 1 {
		t.Fatalf("degenerate split = %d/%d", cfg.CCThreads, cfg.ExecThreads)
	}
}
