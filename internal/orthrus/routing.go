package orthrus

import (
	"fmt"
	"sync/atomic"
)

// Two-level partition routing
//
// The record → CC-thread mapping that used to be a single hash is split
// into two levels:
//
//	record            → logical partition   static (Config.Partition,
//	                                        folded modulo LogicalPartitions)
//	logical partition → CC thread           routingTable, epoch-versioned
//
// The static level never changes for the lifetime of an engine, so
// anything derived from it alone (e.g. txn.PartitionSet) caches freely.
// The dynamic level is an immutable routingTable behind an atomic
// pointer: execution threads load it when planning a transaction's CC
// chain, and the migration protocol (controller.go) publishes successor
// tables with a bumped epoch. P is chosen larger than the CC thread
// count (default 4×) so ownership can move at sub-thread granularity —
// the provisioning knob the paper's Figure 5 argues for, made adjustable
// at runtime.

// routingTable is one immutable epoch of the dynamic level. A table is
// never mutated after publication; session.migrate builds each successor
// table fresh (the quiesce epoch shares the predecessor's owner slice,
// the publish epoch carries a new one) and atomically swaps the pointer.
type routingTable struct {
	epoch uint64
	// owner[pid] is the CC thread owning logical partition pid.
	owner []int32
	// held, when non-nil, marks logical partitions whose intake is
	// quiesced: execution threads must park (not submit) transactions
	// touching them until a later epoch clears the mark. Held partitions
	// exist only during the quiesce phase of a migration.
	held []bool
}

// blocked reports whether any of the transaction's ops (by logical
// partition) are quiesced in this epoch.
func (rt *routingTable) blocked(pid int) bool {
	return rt.held != nil && rt.held[pid]
}

// defaultRouting spreads logical partitions round-robin over the CC
// threads: owner[pid] = pid mod cc. When LogicalPartitions is a multiple
// of CCThreads and the static level is HashPartitioner(LogicalPartitions),
// the composed record → CC mapping equals the pre-two-level
// HashPartitioner(CCThreads) exactly (key%P%cc == key%cc), so the default
// configuration reproduces the original engine's routing bit for bit.
func defaultRouting(parts, cc int) []int32 {
	owner := make([]int32, parts)
	for pid := range owner {
		owner[pid] = int32(pid % cc)
	}
	return owner
}

// epochSlots bounds how many routing epochs can have live transactions
// simultaneously. Migrations serialize and each waits for every older
// epoch to drain before changing ownership, so at most two consecutive
// epochs are ever live; eight slots leaves generous slack.
const epochSlots = 8

// epochGauge counts in-flight lock-holding transactions per routing
// epoch. An execution thread increments the slot of the epoch a wrapper
// was planned under before sending its first acquire; the CC thread that
// processes the wrapper's final release decrements it. A zero slot
// therefore means no transaction planned under that epoch holds locks
// *and* no message referencing one is still in any ring — the guarantee
// the migration protocol's shard handoff rests on.
// Each slot is padded to 128 bytes: adjacent epochs' counters are bumped
// by different threads (exec threads increment the current epoch while CC
// threads decrement the draining one), and packed atomics would
// false-share across the migration window.
type epochGauge struct {
	slots [epochSlots]struct {
		n atomic.Int64
		_ [120]byte
	}
}

func (g *epochGauge) add(epoch uint64, d int64) {
	g.slots[epoch%epochSlots].n.Add(d)
}

// drainedExcept reports whether every epoch slot other than the given
// (current) epoch's is zero.
func (g *epochGauge) drainedExcept(epoch uint64) bool {
	cur := epoch % epochSlots
	for i := range g.slots {
		if uint64(i) == cur {
			continue
		}
		if g.slots[i].n.Load() != 0 {
			return false
		}
	}
	return true
}

// ccCtrl message kinds: the rare-path control plane CC threads poll
// between drain passes. Unlike the SPSC data rings, the control channel
// is a plain Go channel (multi-producer: the controller and tests), which
// is fine at migration frequency.
const (
	ctrlDetach uint8 = iota
	ctrlInstall
)

// ccCtrl asks a CC thread to hand over (detach) or adopt (install) lock
// shards. The receiving CC thread executes it between drain passes, so
// shard structures are only ever touched by their current owner.
type ccCtrl struct {
	kind   uint8
	pids   []int
	shards []*privateTable      // parallel to pids (install)
	reply  chan []*privateTable // detach: the shards; install: nil ack
}

// validateRouting panics unless owner is a legal routing for the config.
func validateRouting(owner []int32, parts, cc int) {
	if len(owner) != parts {
		panic(fmt.Sprintf("orthrus: Routing has %d entries, want LogicalPartitions=%d", len(owner), parts))
	}
	for pid, o := range owner {
		if o < 0 || int(o) >= cc {
			panic(fmt.Sprintf("orthrus: Routing[%d]=%d outside [0,%d)", pid, o, cc))
		}
	}
}
