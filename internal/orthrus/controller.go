package orthrus

import (
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Live partition migration and the adaptive controller.
//
// # Migration protocol
//
// Ownership of a logical partition moves between CC threads in three
// steps, all driven from a single migrating goroutine (the controller, or
// a test) under session.migrateMu:
//
//  1. Quiesce. Publish epoch E+1: same ownership as E, but the moving
//     partitions are marked held. Execution threads that plan a
//     transaction touching a held partition park it instead of
//     submitting; everything else proceeds. A submit that raced the
//     publish is caught by the register-then-recheck handshake in
//     execThread.submit, so no chain can slip into flight under E after
//     the barrier below has inspected E's slot.
//  2. Drain. Wait until the epoch gauge shows zero in-flight
//     lock-holding transactions for every epoch other than E+1. A
//     wrapper's slot is only decremented when the CC thread processing
//     its final release message retires it, so a zero slot means no
//     transaction planned under that epoch holds locks and no message
//     referencing one sits in any ring. Transactions planned under E+1
//     cannot touch the held partitions, so the moving partitions' lock
//     shards are now provably empty.
//  3. Handoff + publish. Detach each moving shard from its owner and
//     install it on the new owner over the per-CC control channels
//     (executed by the owning threads between drain passes, so a shard
//     never has two owners), then publish epoch E+2 with the new
//     ownership and no held marks. Execution threads observing E+2
//     replay their parked transactions under the new table.
//
// # Why deadlock freedom survives
//
// Within any single epoch, every transaction visits CC threads in
// ascending id order, so the waits-for relation is acyclic — the paper's
// §3.2 argument. Across epochs the argument needs one more step: a lock
// can only be *waited on* by a transaction planned under the epoch that
// routed it, and ownership changes only after the drain barrier has
// emptied every older epoch. Chains from epoch E and chains from epoch
// E+2 therefore never coexist inside the lock tables; chains from E+1
// and E+2 share tables but also share the ownership view for every
// partition E+2 did not move — and the moved partitions entered E+2
// empty. So at every instant the waits-for graph is ordered by a single
// consistent CC-id order, and no cycle can form.
//
// # Adaptive controller
//
// The controller samples per-logical-partition op counts (runState.
// pidLoad) and per-CC-thread drain-pass high-water marks (ccLiveStats)
// every Interval, then: (a) grows the active CC set when a backlogged
// thread shows a drain pass at least GrowWater messages deep, (b)
// shrinks it when every active thread's deepest pass is under
// ShrinkWater, and (c) rebalances partitions so no active thread's
// sampled load exceeds Slack× the active-set mean, moving at most
// MaxMoves partitions per tick (hottest first). This is the paper's
// Figure 5 provisioning argument made continuous: CC capacity follows
// the workload instead of being fixed at Start.

// ControllerConfig tunes the adaptive controller. The zero value leaves
// the controller disabled; Enable with everything else zero uses the
// defaults noted per field.
type ControllerConfig struct {
	// Enable turns the controller on.
	Enable bool
	// Interval is the sampling period (default 2ms).
	Interval time.Duration
	// Slack is the tolerated per-thread load imbalance: a rebalance
	// triggers when some active thread's sampled load exceeds Slack ×
	// the active-set mean (default 1.3).
	Slack float64
	// MaxMoves caps the partitions migrated per tick (default 4).
	MaxMoves int
	// MinSample is the minimum sampled op count per tick worth acting
	// on; quieter ticks are ignored (default 64).
	MinSample int
	// MinActive floors the active CC thread count when shrinking
	// (default 1).
	MinActive int
	// GrowWater: a drain pass this deep (messages handled in one pass
	// over a thread's input rings) marks the thread backlogged and grows
	// the active set (default QueueCap/2).
	GrowWater int
	// ShrinkWater: when every active thread's deepest pass stays below
	// this for ShrinkPatience consecutive ticks, one thread is retired
	// from the active set (default QueueCap/8).
	ShrinkWater int
	// ShrinkPatience is the consecutive quiet ticks required before a
	// shrink — hysteresis so a momentary lull does not concentrate a
	// busy lock space onto fewer threads (default 25).
	ShrinkPatience int
}

// Validate panics on negative knobs (zero always means "use the
// default" here, so negative is the only nonsensical shape).
func (c ControllerConfig) Validate() {
	if c.Interval < 0 || c.Slack < 0 || c.MaxMoves < 0 || c.MinSample < 0 ||
		c.MinActive < 0 || c.GrowWater < 0 || c.ShrinkWater < 0 || c.ShrinkPatience < 0 {
		panic(fmt.Sprintf("orthrus: ControllerConfig knobs must not be negative (got %+v; 0 means default)", c))
	}
}

// withDefaults validates the knobs and fills zeros. queueCap is the
// engine's (already defaulted) ring capacity, which anchors the
// backlog water marks.
func (c ControllerConfig) withDefaults(queueCap int) ControllerConfig {
	c.Validate()
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.Slack == 0 {
		c.Slack = 1.3
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 4
	}
	if c.MinSample == 0 {
		c.MinSample = 64
	}
	if c.MinActive == 0 {
		c.MinActive = 1
	}
	if c.GrowWater == 0 {
		c.GrowWater = queueCap / 2
	}
	if c.ShrinkWater == 0 {
		c.ShrinkWater = queueCap / 8
	}
	if c.ShrinkPatience == 0 {
		c.ShrinkPatience = 25
	}
	return c
}

// ControllerStats reports the adaptive controller's activity over one
// session.
type ControllerStats struct {
	Samples         uint64 // sampling ticks taken
	Migrations      uint64 // migrations executed (epoch pairs published)
	PartitionsMoved uint64 // logical partitions that changed owner
	Grows           uint64 // active-set growth events
	Shrinks         uint64 // active-set shrink events
	ActiveCC        int    // active CC threads when the session closed
	FinalEpoch      uint64 // routing epoch when the session closed
}

// controller is the per-session adaptive controller goroutine.
type controller struct {
	ses *session
	cfg ControllerConfig

	stopCh chan struct{}
	doneCh chan struct{}

	active   int      // CC threads load is currently packed onto: ids [0, active)
	quiet    int      // consecutive ticks below ShrinkWater (shrink hysteresis)
	lastLoad []uint64 // pidLoad snapshot at the previous tick
	stats    ControllerStats
}

func newController(ses *session, cfg ControllerConfig) *controller {
	// Start with the full CC set active: the active-set model is the id
	// prefix [0, active), so anything narrower would mark threads the
	// user's initial Routing may deliberately use as deactivated and
	// evacuate them on the first tick. Shrinking from full strength is
	// the controller's job, on load evidence.
	return &controller{
		ses:      ses,
		cfg:      cfg,
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		active:   ses.s.cfg.CCThreads,
		lastLoad: make([]uint64, ses.s.cfg.LogicalPartitions),
	}
}

// stop halts the controller, waiting for any in-progress migration to
// complete — so no partition is left quiesced and the final routing
// table has no held marks. Called from session.Close before the
// execution threads are retired (they must keep running for a mid-flight
// migration's drain barrier to pass).
func (ct *controller) stop() {
	close(ct.stopCh)
	<-ct.doneCh
}

func (ct *controller) loop() {
	defer close(ct.doneCh)
	ticker := time.NewTicker(ct.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ct.stopCh:
			ct.stats.ActiveCC = ct.active
			ct.stats.FinalEpoch = ct.ses.s.rt.Load().epoch
			return
		case <-ticker.C:
			ct.tick()
		}
	}
}

// tick takes one load sample and, when warranted, resizes the active set
// and rebalances partition ownership.
func (ct *controller) tick() {
	s := ct.ses.s
	ct.stats.Samples++

	// Per-partition load delta since the last tick.
	delta := make([]uint64, len(ct.lastLoad))
	var total uint64
	for pid := range delta {
		cur := s.pidLoad[pid].n.Load()
		delta[pid] = cur - ct.lastLoad[pid]
		ct.lastLoad[pid] = cur
		total += delta[pid]
	}

	// Per-CC backlog high-water marks since the last tick (reset on read).
	deepest := 0
	for i := range s.ccLive {
		if hw := int(s.ccLive[i].hiWater.Swap(0)); hw > deepest {
			deepest = hw
		}
	}

	if total < uint64(ct.cfg.MinSample) {
		return // too quiet to steer on
	}

	// Grow or shrink the active set on backlog evidence. Growth is
	// immediate (a backlogged thread is losing throughput right now);
	// shrinking waits for a sustained lull so a busy lock space is never
	// concentrated on momentary evidence.
	switch {
	case deepest >= ct.cfg.GrowWater:
		ct.quiet = 0
		if ct.active < s.cfg.CCThreads {
			ct.active++
			ct.stats.Grows++
		}
	case deepest < ct.cfg.ShrinkWater:
		ct.quiet++
		if ct.quiet >= ct.cfg.ShrinkPatience && ct.active > ct.cfg.MinActive {
			ct.quiet = 0
			ct.active--
			ct.stats.Shrinks++
		}
	default:
		ct.quiet = 0
	}

	moves := ct.plan(delta, total)
	if len(moves) == 0 {
		return
	}
	pids := make([]int, 0, len(moves))
	dests := make([]int, 0, len(moves))
	for _, m := range moves {
		pids = append(pids, m.pid)
		dests = append(dests, m.to)
	}
	if n := ct.ses.migrate(pids, dests); n > 0 {
		ct.stats.Migrations++
		ct.stats.PartitionsMoved += uint64(n)
	}
}

type move struct {
	pid, to int
	load    uint64
}

// plan computes at most MaxMoves ownership changes that (a) evacuate
// partitions owned by threads outside the active set and (b) cut the
// load of any thread exceeding Slack× the active-set mean, moving the
// most-loaded partitions first.
func (ct *controller) plan(delta []uint64, total uint64) []move {
	s := ct.ses.s
	rt := s.rt.Load()
	active := ct.active

	loads := make([]uint64, s.cfg.CCThreads)
	owned := make([][]int, s.cfg.CCThreads) // pids per owner, for donor picks
	for pid, o := range rt.owner {
		loads[o] += delta[pid]
		owned[o] = append(owned[o], pid)
	}
	argminActive := func() int {
		best := 0
		for c := 1; c < active; c++ {
			if loads[c] < loads[best] {
				best = c
			}
		}
		return best
	}

	var moves []move
	// Evacuate deactivated threads, heaviest partitions first so load
	// lands where it balances best.
	for c := active; c < s.cfg.CCThreads; c++ {
		sort.Slice(owned[c], func(i, j int) bool { return delta[owned[c][i]] > delta[owned[c][j]] })
		for _, pid := range owned[c] {
			if len(moves) >= ct.cfg.MaxMoves {
				break
			}
			to := argminActive()
			moves = append(moves, move{pid: pid, to: to, load: delta[pid]})
			loads[to] += delta[pid]
			loads[c] -= delta[pid]
		}
	}

	// Rebalance within the active set: shave the most loaded thread by
	// handing its hottest movable partition to the least loaded, as long
	// as the move actually reduces the pairwise maximum.
	mean := float64(total) / float64(active)
	for len(moves) < ct.cfg.MaxMoves {
		src := 0
		for c := 1; c < active; c++ {
			if loads[c] > loads[src] {
				src = c
			}
		}
		if float64(loads[src]) <= ct.cfg.Slack*mean {
			break
		}
		dst := argminActive()
		if dst == src {
			break
		}
		gap := loads[src] - loads[dst]
		// Best donor: the hottest partition still smaller than the gap
		// (moving anything bigger would just swap the imbalance).
		best, bestLoad := -1, uint64(0)
		for _, pid := range owned[src] {
			l := delta[pid]
			if l < gap && l > bestLoad {
				best, bestLoad = pid, l
			}
		}
		if best < 0 {
			break // src's load is one indivisible hot partition
		}
		moves = append(moves, move{pid: best, to: dst, load: bestLoad})
		loads[src] -= bestLoad
		loads[dst] += bestLoad
		// Remove the donor pid from src's owned list.
		for i, pid := range owned[src] {
			if pid == best {
				owned[src] = append(owned[src][:i], owned[src][i+1:]...)
				break
			}
		}
	}
	return moves
}

// migrate executes the three-step migration protocol, handing ownership
// of each pids[i] to CC thread dests[i]. No-op moves (already owned by
// the destination) are filtered; the epoch pair is published only when
// at least one partition actually moves. Returns the number of
// partitions that changed owner. Safe to call from any single goroutine
// at a time per session; concurrent callers serialize on migrateMu.
func (ses *session) migrate(pids []int, dests []int) int {
	if len(pids) != len(dests) {
		panic("orthrus: migrate pids/dests length mismatch")
	}
	ses.migrateMu.Lock()
	defer ses.migrateMu.Unlock()

	s := ses.s
	rt := s.rt.Load()
	held := make([]bool, s.cfg.LogicalPartitions)
	moved := 0
	byOwner := make(map[int][]int) // current owner → moving pids
	newOwner := make([]int32, len(rt.owner))
	copy(newOwner, rt.owner)
	for i, pid := range pids {
		if pid < 0 || pid >= s.cfg.LogicalPartitions {
			panic(fmt.Sprintf("orthrus: migrate of partition %d outside [0,%d)", pid, s.cfg.LogicalPartitions))
		}
		to := dests[i]
		if to < 0 || to >= s.cfg.CCThreads {
			panic(fmt.Sprintf("orthrus: migrate of partition %d to CC thread %d outside [0,%d)", pid, to, s.cfg.CCThreads))
		}
		from := int(rt.owner[pid])
		if from == to || held[pid] {
			continue
		}
		held[pid] = true
		newOwner[pid] = int32(to)
		byOwner[from] = append(byOwner[from], pid)
		moved++
	}
	if moved == 0 {
		return 0
	}

	// 1. Quiesce: same ownership, moving partitions held.
	quiesce := &routingTable{epoch: rt.epoch + 1, owner: rt.owner, held: held}
	s.rt.Store(quiesce)

	// 2. Drain: wait for every chain planned under an older epoch to
	// fully retire (final release processed ⇒ nothing referencing it in
	// any ring). Execution and CC threads keep running, so this
	// terminates; spin politely.
	for spins := 0; !s.epochs.drainedExcept(quiesce.epoch); spins++ {
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}

	// 3. Handoff: detach the now-empty shards from their owners, install
	// them on the destinations, then publish the new ownership.
	owners := make([]int, 0, len(byOwner))
	for from := range byOwner {
		owners = append(owners, from)
	}
	sort.Ints(owners)
	reply := make(chan []*privateTable, 1)
	for _, from := range owners {
		group := byOwner[from]
		s.ccCtrl[from] <- ccCtrl{kind: ctrlDetach, pids: group, reply: reply}
		shards := <-reply
		for i, pid := range group {
			to := int(newOwner[pid])
			s.ccCtrl[to] <- ccCtrl{kind: ctrlInstall, pids: []int{pid}, shards: []*privateTable{shards[i]}, reply: reply}
			<-reply
		}
	}
	s.rt.Store(&routingTable{epoch: quiesce.epoch + 1, owner: newOwner})
	return moved
}
