package spsc

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// unpaddedRing is the control for BenchmarkRingPingPong: the exact Ring
// algorithm with every index packed onto adjacent cache lines, so the
// producer's tail store invalidates the consumer's head line (and both
// sides' peer caches) on every operation. Comparing the two quantifies
// what the padding in Ring buys.
type unpaddedRing[T any] struct {
	buf        []T
	mask       uint64
	closed     atomic.Bool
	tail       atomic.Uint64
	cachedHead uint64
	head       atomic.Uint64
	cachedTail uint64
}

func newUnpadded[T any](capacity int) *unpaddedRing[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &unpaddedRing[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

func (r *unpaddedRing[T]) TryEnqueue(v T) bool {
	tail := r.tail.Load()
	if tail-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if tail-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

func (r *unpaddedRing[T]) TryDequeue() (v T, ok bool) {
	head := r.head.Load()
	if head >= r.cachedTail {
		r.cachedTail = r.tail.Load()
		if head >= r.cachedTail {
			return v, false
		}
	}
	v = r.buf[head&r.mask]
	var zero T
	r.buf[head&r.mask] = zero
	r.head.Store(head + 1)
	return v, true
}

// pingPongQueue is the slice of the Queue surface the ping-pong exercise
// needs, satisfied by both Ring and the unpadded control.
type pingPongQueue interface {
	TryEnqueue(uint64) bool
	TryDequeue() (uint64, bool)
}

// benchPingPong bounces one token between the bench goroutine and an echo
// goroutine through a request and a response queue — the tightest possible
// cross-core index traffic, which is exactly the pattern false sharing
// slows down. Gosched in every spin keeps it live at GOMAXPROCS=1.
func benchPingPong(b *testing.B, req, resp pingPongQueue) {
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, ok := req.TryDequeue()
			if !ok {
				if stop.Load() {
					return
				}
				runtime.Gosched()
				continue
			}
			for !resp.TryEnqueue(v) {
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !req.TryEnqueue(uint64(i)) {
			runtime.Gosched()
		}
		for {
			if _, ok := resp.TryDequeue(); ok {
				break
			}
			runtime.Gosched()
		}
	}
	b.StopTimer()
	stop.Store(true)
	<-done
}

// BenchmarkRingPingPong compares the cache-line-grouped Ring layout
// against an unpadded control running the identical algorithm. The gap is
// the cost of false sharing on the message plane; the benchgate CI job
// tracks the padded number against bench-baseline.txt.
func BenchmarkRingPingPong(b *testing.B) {
	b.Run("padded", func(b *testing.B) {
		benchPingPong(b, New[uint64](256), New[uint64](256))
	})
	b.Run("unpadded", func(b *testing.B) {
		benchPingPong(b, newUnpadded[uint64](256), newUnpadded[uint64](256))
	})
}
