// Package spsc provides a latch-free single-producer single-consumer ring
// buffer, the message transport between ORTHRUS execution threads and
// concurrency-control threads (paper §3.1).
//
// Each ring has exactly one producer goroutine and one consumer goroutine.
// Under that discipline the head and tail indices are each written by only
// one side, so the ring needs no compare-and-swap and no mutual exclusion:
// the producer publishes a slot with a release store of the tail, and the
// consumer acknowledges it with a release store of the head. This mirrors
// the "standard latch-free circular buffer" the paper cites [31], and it is
// the reason ORTHRUS's message passing does not re-introduce the very
// synchronization overhead it is designed to remove.
package spsc

import (
	"runtime"
	"sync/atomic"
)

// cacheLinePad separates hot fields written by different goroutines so the
// producer's tail and the consumer's head do not share a cache line. 128
// bytes, not 64: the adjacent-line prefetcher on common x86 parts pulls
// cache lines in aligned pairs, so a single-line pad still ping-pongs.
type cacheLinePad struct{ _ [128]byte }

// Ring is a bounded SPSC queue of T. The zero value is not usable; call New.
//
// TryEnqueue/TryDequeue never block. Enqueue/Dequeue spin politely
// (runtime.Gosched per iteration) so the package is safe at GOMAXPROCS=1.
//
// The field layout groups by writer, not by role: each side's index and
// its private peer-cache share a line (one goroutine owns both, so that
// sharing is free), and the two groups are padded apart so neither side's
// stores invalidate the other's line. Cold fields — written at
// construction or at Close — live on their own shared read-mostly line.
// BenchmarkRingPingPong in this package measures the layout against an
// unpadded control.
type Ring[T any] struct {
	// Cold line: buf/mask are written once in New; closed rarely.
	buf    []T
	mask   uint64
	closed atomic.Bool

	_ cacheLinePad
	// Producer line. cachedHead is the producer's last observed head,
	// avoiding an atomic load on every enqueue.
	tail       atomic.Uint64 // next slot to write; written only by producer
	cachedHead uint64

	_ cacheLinePad
	// Consumer line. cachedTail is the consumer's mirror image.
	head       atomic.Uint64 // next slot to read; written only by consumer
	cachedTail uint64

	_ cacheLinePad
}

// New returns a ring with capacity rounded up to the next power of two.
// Capacity must be at least 1.
func New[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns a point-in-time element count. It is exact only when called
// by the producer or consumer; concurrent callers see a snapshot.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryEnqueue appends v and reports whether there was room.
// Must be called only from the producer goroutine.
//
//orthrus:hotpath
func (r *Ring[T]) TryEnqueue(v T) bool {
	tail := r.tail.Load()
	if tail-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if tail-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1) // release: publishes buf write
	return true
}

// Enqueue appends v, spinning politely while the ring is full.
// It returns false only if the ring was closed while waiting.
//
//orthrus:hotpath
func (r *Ring[T]) Enqueue(v T) bool {
	for !r.TryEnqueue(v) {
		if r.closed.Load() {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// TryEnqueueBatch appends as many elements of vs as fit and returns the
// count, publishing them all with a single tail store — the batched
// producer operation the ORTHRUS message plane amortizes ring traffic
// with: k messages cost one atomic release instead of k. A short return
// (including 0) means the ring filled; the caller retries the remainder.
// Must be called only from the producer goroutine.
//
//orthrus:hotpath
func (r *Ring[T]) TryEnqueueBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.cachedHead)
	if free < uint64(len(vs)) {
		r.cachedHead = r.head.Load()
		free = uint64(len(r.buf)) - (tail - r.cachedHead)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = vs[i]
	}
	r.tail.Store(tail + n) // release: publishes all n buf writes
	return int(n)
}

// TryDequeue removes the oldest element. Must be called only from the
// consumer goroutine.
//
//orthrus:hotpath
func (r *Ring[T]) TryDequeue() (v T, ok bool) {
	head := r.head.Load()
	if head >= r.cachedTail {
		r.cachedTail = r.tail.Load()
		if head >= r.cachedTail {
			return v, false
		}
	}
	v = r.buf[head&r.mask]
	var zero T
	r.buf[head&r.mask] = zero // drop reference for GC
	r.head.Store(head + 1)    // release: frees the slot
	return v, true
}

// DequeueBatch removes up to len(buf) of the oldest elements into buf and
// returns the count, acknowledging them all with a single head store —
// the consumer mirror of TryEnqueueBatch. It never blocks; 0 means the
// ring was empty. Must be called only from the consumer goroutine.
//
//orthrus:hotpath
func (r *Ring[T]) DequeueBatch(buf []T) int {
	if len(buf) == 0 {
		return 0
	}
	head := r.head.Load()
	var avail uint64
	if r.cachedTail > head {
		avail = r.cachedTail - head
	}
	if avail < uint64(len(buf)) {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - head
	}
	n := uint64(len(buf))
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		buf[i] = r.buf[idx]
		r.buf[idx] = zero // drop reference for GC
	}
	r.head.Store(head + n) // release: frees all n slots
	return int(n)
}

// Dequeue removes the oldest element, spinning politely while the ring is
// empty. It returns ok=false only if the ring was closed and drained.
//
//orthrus:hotpath
func (r *Ring[T]) Dequeue() (v T, ok bool) {
	for {
		if v, ok = r.TryDequeue(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Re-check after observing close: the producer may have
			// enqueued between our failed TryDequeue and the close.
			if v, ok = r.TryDequeue(); ok {
				return v, true
			}
			return v, false
		}
		runtime.Gosched()
	}
}

// Close marks the ring closed. Blocked Enqueue callers return false;
// Dequeue callers drain remaining elements, then return false.
func (r *Ring[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// Queue is the transport abstraction shared by the SPSC ring, the
// channel-based alternative (so the ORTHRUS message plane can be ablated
// against Go channels, README.md "Ablations"), and the networked
// message plane's send-only adapter (internal/orthrus's netQueue, which
// turns each TryEnqueueBatch pass into one wire frame; its dequeue
// methods panic because the consuming half lives in the peer process).
type Queue[T any] interface {
	TryEnqueue(T) bool
	Enqueue(T) bool
	TryEnqueueBatch([]T) int
	TryDequeue() (T, bool)
	Dequeue() (T, bool)
	DequeueBatch([]T) int
	Close()
	Len() int
}

// Chan adapts a buffered Go channel to the Queue interface.
type Chan[T any] struct {
	ch     chan T
	closed atomic.Bool
}

// NewChan returns a channel-backed queue with the given buffer capacity.
func NewChan[T any](capacity int) *Chan[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Chan[T]{ch: make(chan T, capacity)}
}

// TryEnqueue attempts a non-blocking send.
func (c *Chan[T]) TryEnqueue(v T) bool {
	if c.closed.Load() {
		return false
	}
	select {
	case c.ch <- v:
		return true
	default:
		return false
	}
}

// Enqueue sends v, spinning politely if the buffer is full, and returns
// false once the queue is closed.
func (c *Chan[T]) Enqueue(v T) bool {
	for !c.TryEnqueue(v) {
		if c.closed.Load() {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// TryEnqueueBatch sends as many elements of vs as the buffer accepts and
// returns the count. A Go channel has no multi-element publish, so this
// is a convenience loop — the ablation deliberately pays per-message
// channel cost where the ring pays one atomic per batch.
func (c *Chan[T]) TryEnqueueBatch(vs []T) int {
	for i := range vs {
		if !c.TryEnqueue(vs[i]) {
			return i
		}
	}
	return len(vs)
}

// TryDequeue attempts a non-blocking receive.
func (c *Chan[T]) TryDequeue() (v T, ok bool) {
	select {
	case v = <-c.ch:
		return v, true
	default:
		return v, false
	}
}

// Dequeue receives, spinning politely while empty; returns ok=false after
// the queue is closed and drained.
func (c *Chan[T]) Dequeue() (v T, ok bool) {
	for {
		if v, ok = c.TryDequeue(); ok {
			return v, true
		}
		if c.closed.Load() {
			if v, ok = c.TryDequeue(); ok {
				return v, true
			}
			return v, false
		}
		runtime.Gosched()
	}
}

// DequeueBatch receives up to len(buf) buffered elements without blocking
// and returns the count.
func (c *Chan[T]) DequeueBatch(buf []T) int {
	for i := range buf {
		v, ok := c.TryDequeue()
		if !ok {
			return i
		}
		buf[i] = v
	}
	return len(buf)
}

// Close marks the queue closed. Elements already buffered remain readable.
func (c *Chan[T]) Close() { c.closed.Store(true) }

// Len returns the buffered element count.
func (c *Chan[T]) Len() int { return len(c.ch) }

var (
	_ Queue[int] = (*Ring[int])(nil)
	_ Queue[int] = (*Chan[int])(nil)
)
