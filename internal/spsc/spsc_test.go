package spsc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRingCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	}
	for _, c := range cases {
		if got := New[int](c.in).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRingFIFOSingleThread(t *testing.T) {
	r := New[int](4)
	for i := 0; i < 4; i++ {
		if !r.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) failed on non-full ring", i)
		}
	}
	if r.TryEnqueue(99) {
		t.Fatal("TryEnqueue succeeded on full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != i {
			t.Fatalf("TryDequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("TryDequeue succeeded on empty ring")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := New[int](2)
	for round := 0; round < 1000; round++ {
		if !r.TryEnqueue(round) {
			t.Fatalf("round %d: enqueue failed", round)
		}
		v, ok := r.TryDequeue()
		if !ok || v != round {
			t.Fatalf("round %d: got (%d,%v)", round, v, ok)
		}
	}
}

func TestRingLen(t *testing.T) {
	r := New[int](8)
	if r.Len() != 0 {
		t.Fatalf("empty Len = %d", r.Len())
	}
	r.TryEnqueue(1)
	r.TryEnqueue(2)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.TryDequeue()
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRingClose(t *testing.T) {
	r := New[int](2)
	r.TryEnqueue(7)
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Drain continues after close.
	if v, ok := r.Dequeue(); !ok || v != 7 {
		t.Fatalf("Dequeue after close = (%d,%v)", v, ok)
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("Dequeue on closed empty ring returned ok")
	}
	// Enqueue on a full closed ring unblocks with false.
	r2 := New[int](1)
	r2.TryEnqueue(1)
	r2.Close()
	if r2.Enqueue(2) {
		t.Fatal("Enqueue returned true on closed full ring")
	}
}

// TestRingConcurrentFIFO is the core correctness test: one producer, one
// consumer, every element delivered exactly once and in order.
func TestRingConcurrentFIFO(t *testing.T) {
	const n = 200000
	r := New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !r.Enqueue(i) {
				t.Error("Enqueue failed")
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Dequeue()
		if !ok {
			t.Fatalf("Dequeue failed at %d", i)
		}
		if v != i {
			t.Fatalf("out of order: got %d at position %d", v, i)
		}
	}
	wg.Wait()
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("ring not empty after draining all elements")
	}
}

func TestChanQueueBasic(t *testing.T) {
	q := NewChan[string](2)
	if !q.TryEnqueue("a") || !q.TryEnqueue("b") {
		t.Fatal("TryEnqueue failed with room available")
	}
	if q.TryEnqueue("c") {
		t.Fatal("TryEnqueue succeeded past capacity")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryDequeue()
	if !ok || v != "a" {
		t.Fatalf("TryDequeue = (%q,%v)", v, ok)
	}
	q.Close()
	if v, ok := q.Dequeue(); !ok || v != "b" {
		t.Fatalf("drain after close = (%q,%v)", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on closed empty chan queue returned ok")
	}
	if q.TryEnqueue("d") {
		t.Fatal("TryEnqueue succeeded on closed queue")
	}
}

func TestChanConcurrentDelivery(t *testing.T) {
	const n = 50000
	q := NewChan[int](16)
	go func() {
		for i := 0; i < n; i++ {
			q.Enqueue(i)
		}
	}()
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v) at %d", v, ok, i)
		}
	}
}

// Property: for any interleaved sequence of enqueues and dequeues issued by
// a single thread, the ring behaves exactly like a bounded FIFO model.
func TestRingMatchesFIFOModel(t *testing.T) {
	f := func(ops []uint8, capExp uint8) bool {
		capacity := 1 << (capExp % 5) // 1..16
		r := New[uint8](capacity)
		var model []uint8
		for i, op := range ops {
			if op%2 == 0 { // enqueue
				ok := r.TryEnqueue(op)
				wantOK := len(model) < r.Cap()
				if ok != wantOK {
					t.Logf("op %d: enqueue ok=%v want %v", i, ok, wantOK)
					return false
				}
				if ok {
					model = append(model, op)
				}
			} else { // dequeue
				v, ok := r.TryDequeue()
				wantOK := len(model) > 0
				if ok != wantOK {
					t.Logf("op %d: dequeue ok=%v want %v", i, ok, wantOK)
					return false
				}
				if ok {
					if v != model[0] {
						t.Logf("op %d: dequeue v=%d want %d", i, v, model[0])
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				t.Logf("op %d: len=%d want %d", i, r.Len(), len(model))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRingPingPong(b *testing.B) {
	r := New[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			r.Dequeue()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
	}
	<-done
}

func BenchmarkChanPingPong(b *testing.B) {
	q := NewChan[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			q.Dequeue()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i)
	}
	<-done
}
