package spsc

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	}
	for _, c := range cases {
		if got := New[int](c.in).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRingFIFOSingleThread(t *testing.T) {
	r := New[int](4)
	for i := 0; i < 4; i++ {
		if !r.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) failed on non-full ring", i)
		}
	}
	if r.TryEnqueue(99) {
		t.Fatal("TryEnqueue succeeded on full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != i {
			t.Fatalf("TryDequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("TryDequeue succeeded on empty ring")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := New[int](2)
	for round := 0; round < 1000; round++ {
		if !r.TryEnqueue(round) {
			t.Fatalf("round %d: enqueue failed", round)
		}
		v, ok := r.TryDequeue()
		if !ok || v != round {
			t.Fatalf("round %d: got (%d,%v)", round, v, ok)
		}
	}
}

func TestRingLen(t *testing.T) {
	r := New[int](8)
	if r.Len() != 0 {
		t.Fatalf("empty Len = %d", r.Len())
	}
	r.TryEnqueue(1)
	r.TryEnqueue(2)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.TryDequeue()
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRingClose(t *testing.T) {
	r := New[int](2)
	r.TryEnqueue(7)
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Drain continues after close.
	if v, ok := r.Dequeue(); !ok || v != 7 {
		t.Fatalf("Dequeue after close = (%d,%v)", v, ok)
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("Dequeue on closed empty ring returned ok")
	}
	// Enqueue on a full closed ring unblocks with false.
	r2 := New[int](1)
	r2.TryEnqueue(1)
	r2.Close()
	if r2.Enqueue(2) {
		t.Fatal("Enqueue returned true on closed full ring")
	}
}

// TestRingConcurrentFIFO is the core correctness test: one producer, one
// consumer, every element delivered exactly once and in order.
func TestRingConcurrentFIFO(t *testing.T) {
	const n = 200000
	r := New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !r.Enqueue(i) {
				t.Error("Enqueue failed")
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Dequeue()
		if !ok {
			t.Fatalf("Dequeue failed at %d", i)
		}
		if v != i {
			t.Fatalf("out of order: got %d at position %d", v, i)
		}
	}
	wg.Wait()
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("ring not empty after draining all elements")
	}
}

// FIFO order must hold across arbitrarily mixed batch and single
// enqueues/dequeues — batching changes how many atomic operations publish
// the elements, never their order.
func TestRingBatchMixedFIFO(t *testing.T) {
	r := New[int](16)
	next := 0 // next value to enqueue
	mk := func(k int) []int {
		vs := make([]int, k)
		for i := range vs {
			vs[i] = next
			next++
		}
		return vs
	}
	if n := r.TryEnqueueBatch(mk(3)); n != 3 {
		t.Fatalf("batch enqueue = %d, want 3", n)
	}
	if !r.TryEnqueue(next) {
		t.Fatal("single enqueue failed")
	}
	next++
	if n := r.TryEnqueueBatch(mk(5)); n != 5 {
		t.Fatalf("batch enqueue = %d, want 5", n)
	}

	want := 0
	buf := make([]int, 4)
	if n := r.DequeueBatch(buf); n != 4 {
		t.Fatalf("batch dequeue = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if buf[i] != want {
			t.Fatalf("batch dequeue[%d] = %d, want %d", i, buf[i], want)
		}
		want++
	}
	for i := 0; i < 2; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != want {
			t.Fatalf("single dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
		want++
	}
	if n := r.DequeueBatch(buf); n != 3 {
		t.Fatalf("final batch dequeue = %d, want 3", n)
	}
	for i := 0; i < 3; i++ {
		if buf[i] != want {
			t.Fatalf("final dequeue[%d] = %d, want %d", i, buf[i], want)
		}
		want++
	}
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("ring should be empty")
	}
}

// A batch that spans the ring's physical boundary must wrap correctly:
// enqueue/dequeue until the indices straddle the end of the backing
// array, then push batches larger than the remaining linear space.
func TestRingBatchWraparound(t *testing.T) {
	r := New[int](8)
	// Advance head/tail to 5 so a 6-element batch wraps past index 8.
	for i := 0; i < 5; i++ {
		r.TryEnqueue(-1)
		r.TryDequeue()
	}
	vs := []int{10, 11, 12, 13, 14, 15}
	if n := r.TryEnqueueBatch(vs); n != 6 {
		t.Fatalf("wrapping batch enqueue = %d, want 6", n)
	}
	buf := make([]int, 6)
	if n := r.DequeueBatch(buf); n != 6 {
		t.Fatalf("wrapping batch dequeue = %d, want 6", n)
	}
	for i, v := range vs {
		if buf[i] != v {
			t.Fatalf("wrap dequeue[%d] = %d, want %d", i, buf[i], v)
		}
	}
	// Exercise every phase offset for good measure.
	for round := 0; round < 100; round++ {
		if n := r.TryEnqueueBatch([]int{round, round + 1, round + 2}); n != 3 {
			t.Fatalf("round %d: enqueue = %d", round, n)
		}
		if n := r.DequeueBatch(buf[:3]); n != 3 {
			t.Fatalf("round %d: dequeue = %d", round, n)
		}
		if buf[0] != round || buf[1] != round+1 || buf[2] != round+2 {
			t.Fatalf("round %d: got %v", round, buf[:3])
		}
	}
}

// A batch larger than the free space enqueues a prefix and reports the
// short count; the remainder is the caller's to retry.
func TestRingBatchPartial(t *testing.T) {
	r := New[int](4)
	r.TryEnqueue(0)
	if n := r.TryEnqueueBatch([]int{1, 2, 3, 4, 5}); n != 3 {
		t.Fatalf("partial enqueue = %d, want 3 (capacity 4, one used)", n)
	}
	if n := r.TryEnqueueBatch([]int{9}); n != 0 {
		t.Fatalf("enqueue on full ring = %d, want 0", n)
	}
	buf := make([]int, 8)
	if n := r.DequeueBatch(buf); n != 4 {
		t.Fatalf("dequeue = %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if buf[i] != i {
			t.Fatalf("dequeue[%d] = %d, want %d", i, buf[i], i)
		}
	}
	if n := r.DequeueBatch(buf); n != 0 {
		t.Fatalf("dequeue on empty ring = %d, want 0", n)
	}
	if n := r.TryEnqueueBatch(nil); n != 0 {
		t.Fatalf("empty batch enqueue = %d, want 0", n)
	}
	if n := r.DequeueBatch(nil); n != 0 {
		t.Fatalf("empty-buffer dequeue = %d, want 0", n)
	}
}

// Concurrent batched producer against a batched consumer: exactly-once,
// in-order delivery — the same guarantee TestRingConcurrentFIFO checks
// for the single-element operations.
func TestRingBatchConcurrentFIFO(t *testing.T) {
	const n = 200000
	r := New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		vs := make([]int, 0, 7)
		sent := 0
		for sent < n {
			vs = vs[:0]
			for k := 0; k < 7 && sent+len(vs) < n; k++ {
				vs = append(vs, sent+len(vs))
			}
			for len(vs) > 0 {
				m := r.TryEnqueueBatch(vs)
				vs = vs[m:]
				sent += m
				if m == 0 {
					runtime.Gosched() // full: let the consumer run
				}
			}
		}
	}()
	buf := make([]int, 5)
	want := 0
	for want < n {
		m := r.DequeueBatch(buf)
		for i := 0; i < m; i++ {
			if buf[i] != want {
				t.Fatalf("out of order: got %d at position %d", buf[i], want)
			}
			want++
		}
		if m == 0 {
			runtime.Gosched() // empty: let the producer run
		}
	}
	wg.Wait()
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("ring not empty after draining all elements")
	}
}

func TestChanBatchOps(t *testing.T) {
	q := NewChan[int](4)
	if n := q.TryEnqueueBatch([]int{1, 2, 3, 4, 5}); n != 4 {
		t.Fatalf("batch enqueue = %d, want 4", n)
	}
	buf := make([]int, 3)
	if n := q.DequeueBatch(buf); n != 3 {
		t.Fatalf("batch dequeue = %d, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if buf[i] != want {
			t.Fatalf("dequeue[%d] = %d, want %d", i, buf[i], want)
		}
	}
	if n := q.DequeueBatch(buf); n != 1 || buf[0] != 4 {
		t.Fatalf("tail dequeue = %d (%v), want 1 ([4 ...])", n, buf)
	}
	q.Close()
	if n := q.TryEnqueueBatch([]int{9}); n != 0 {
		t.Fatalf("batch enqueue on closed queue = %d, want 0", n)
	}
}

func TestChanQueueBasic(t *testing.T) {
	q := NewChan[string](2)
	if !q.TryEnqueue("a") || !q.TryEnqueue("b") {
		t.Fatal("TryEnqueue failed with room available")
	}
	if q.TryEnqueue("c") {
		t.Fatal("TryEnqueue succeeded past capacity")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryDequeue()
	if !ok || v != "a" {
		t.Fatalf("TryDequeue = (%q,%v)", v, ok)
	}
	q.Close()
	if v, ok := q.Dequeue(); !ok || v != "b" {
		t.Fatalf("drain after close = (%q,%v)", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on closed empty chan queue returned ok")
	}
	if q.TryEnqueue("d") {
		t.Fatal("TryEnqueue succeeded on closed queue")
	}
}

func TestChanConcurrentDelivery(t *testing.T) {
	const n = 50000
	q := NewChan[int](16)
	go func() {
		for i := 0; i < n; i++ {
			q.Enqueue(i)
		}
	}()
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v) at %d", v, ok, i)
		}
	}
}

// Property: for any interleaved sequence of enqueues and dequeues issued by
// a single thread, the ring behaves exactly like a bounded FIFO model.
func TestRingMatchesFIFOModel(t *testing.T) {
	f := func(ops []uint8, capExp uint8) bool {
		capacity := 1 << (capExp % 5) // 1..16
		r := New[uint8](capacity)
		var model []uint8
		for i, op := range ops {
			if op%2 == 0 { // enqueue
				ok := r.TryEnqueue(op)
				wantOK := len(model) < r.Cap()
				if ok != wantOK {
					t.Logf("op %d: enqueue ok=%v want %v", i, ok, wantOK)
					return false
				}
				if ok {
					model = append(model, op)
				}
			} else { // dequeue
				v, ok := r.TryDequeue()
				wantOK := len(model) > 0
				if ok != wantOK {
					t.Logf("op %d: dequeue ok=%v want %v", i, ok, wantOK)
					return false
				}
				if ok {
					if v != model[0] {
						t.Logf("op %d: dequeue v=%d want %d", i, v, model[0])
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				t.Logf("op %d: len=%d want %d", i, r.Len(), len(model))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRingPingPong lives in padding_bench_test.go, where it compares
// the padded Ring layout against an unpadded control; BenchmarkRingStream
// here keeps the one-way streaming number.
func BenchmarkRingStream(b *testing.B) {
	r := New[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			r.Dequeue()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
	}
	<-done
}

func BenchmarkChanPingPong(b *testing.B) {
	q := NewChan[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			q.Dequeue()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i)
	}
	<-done
}
