package storage

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestFixedTableGetInsert(t *testing.T) {
	tbl := NewFixedTable("t", 10, 16)
	if tbl.Len() != 10 || tbl.RecordSize() != 16 || tbl.Name() != "t" {
		t.Fatal("metadata mismatch")
	}
	val := bytes.Repeat([]byte{0xAB}, 16)
	if err := tbl.Insert(3, val); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Get(3); !bytes.Equal(got, val) {
		t.Fatalf("Get(3) = %x", got)
	}
	if got := tbl.Get(2); !bytes.Equal(got, make([]byte, 16)) {
		t.Fatalf("untouched row not zero: %x", got)
	}
	if tbl.Get(10) != nil {
		t.Fatal("out-of-range Get returned non-nil")
	}
	if err := tbl.Insert(10, val); err == nil {
		t.Fatal("out-of-range Insert succeeded")
	}
}

func TestFixedTableRowsDoNotAlias(t *testing.T) {
	tbl := NewFixedTable("t", 4, 8)
	r0, r1 := tbl.Get(0), tbl.Get(1)
	copy(r0, bytes.Repeat([]byte{1}, 8))
	if r1[0] != 0 {
		t.Fatal("writing row 0 leaked into row 1")
	}
	// Appending to a row slice must not clobber the neighbor (capacity is
	// clamped to the record boundary).
	_ = append(r0[:0], bytes.Repeat([]byte{9}, 9)...)
	if tbl.Get(1)[0] != 0 {
		t.Fatal("append past record size overwrote next row")
	}
}

func TestGrowTableBasics(t *testing.T) {
	tbl := NewGrowTable("g", 8, 100)
	if tbl.Get(42) != nil {
		t.Fatal("Get on empty table returned non-nil")
	}
	if err := tbl.Insert(42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := tbl.Get(42)
	if len(got) != 8 || !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatalf("Get = %q", got)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if err := tbl.Insert(1, make([]byte, 9)); err == nil {
		t.Fatal("oversized insert succeeded")
	}
}

func TestGrowTableConcurrentInserts(t *testing.T) {
	tbl := NewGrowTable("g", 8, 0)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < per; i++ {
				key := uint64(w*per + i)
				PutU64(buf, 0, key)
				if err := tbl.Insert(key, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", tbl.Len(), workers*per)
	}
	for key := uint64(0); key < workers*per; key++ {
		if got := GetU64(tbl.Get(key), 0); got != key {
			t.Fatalf("key %d holds %d", key, got)
		}
	}
}

func TestDBRegistry(t *testing.T) {
	db := NewDB()
	a := db.Create(Layout{Name: "a", NumRecords: 4, RecordSize: 8})
	b := db.Create(Layout{Name: "b", NumRecords: 4, RecordSize: 8, Growable: true})
	if db.NumTables() != 2 {
		t.Fatalf("NumTables = %d", db.NumTables())
	}
	if db.TableID("a") != a || db.TableID("b") != b {
		t.Fatal("TableID mismatch")
	}
	if db.TableID("missing") != -1 {
		t.Fatal("missing table id != -1")
	}
	if _, ok := db.Table(a).(*FixedTable); !ok {
		t.Fatal("table a is not fixed")
	}
	if _, ok := db.Table(b).(*GrowTable); !ok {
		t.Fatal("table b is not growable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Create did not panic")
		}
	}()
	db.Create(Layout{Name: "a", NumRecords: 1, RecordSize: 1})
}

func TestFieldHelpers(t *testing.T) {
	rec := make([]byte, 24)
	PutU64(rec, 0, 7)
	PutI64(rec, 8, -5)
	if GetU64(rec, 0) != 7 || GetI64(rec, 8) != -5 {
		t.Fatal("round trip failed")
	}
	if AddU64(rec, 0, 3) != 10 || GetU64(rec, 0) != 10 {
		t.Fatal("AddU64")
	}
	if AddI64(rec, 8, -5) != -10 || GetI64(rec, 8) != -10 {
		t.Fatal("AddI64")
	}
	// Property: Put then Get is identity for any value/offset.
	f := func(v uint64, offRaw uint8) bool {
		off := int(offRaw) % 16
		PutU64(rec, off, v)
		return GetU64(rec, off) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolBuffersDistinct(t *testing.T) {
	p := NewPool(8)
	a, b := p.Get(), p.Get()
	copy(a, "aaaaaaaa")
	if b[0] != 0 {
		t.Fatal("pool buffers alias")
	}
	l := p.NewLocal()
	c := l.Get()
	copy(c, "cccccccc")
	d := l.Get()
	if d[0] != 0 {
		t.Fatal("local buffers alias")
	}
	if len(a) != 8 || len(c) != 8 {
		t.Fatal("wrong buffer size")
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(16)
	const workers, per = 8, 2000
	bufs := make([][][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := p.NewLocal()
			for i := 0; i < per; i++ {
				buf := l.Get()
				PutU64(buf, 0, uint64(w))
				PutU64(buf, 8, uint64(i))
				bufs[w] = append(bufs[w], buf)
			}
		}(w)
	}
	wg.Wait()
	for w := range bufs {
		for i, buf := range bufs[w] {
			if GetU64(buf, 0) != uint64(w) || GetU64(buf, 8) != uint64(i) {
				t.Fatalf("buffer (%d,%d) corrupted", w, i)
			}
		}
	}
}

// TestSecondaryIndexAddLookup is a deliberate Lookup (not Each) caller:
// it pins Lookup's copy contract, which only holds value because the
// returned slice is the caller's to keep. All hot-path readers use the
// allocation-free Each instead.
func TestSecondaryIndexAddLookup(t *testing.T) {
	ix := NewSecondaryIndex()
	for _, pk := range []uint64{30, 10, 20, 10} { // dup 10 ignored
		ix.Add(5, pk)
	}
	list, _ := ix.Lookup(5)
	want := []uint64{10, 20, 30}
	if len(list) != 3 {
		t.Fatalf("Lookup = %v", list)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("Lookup = %v, want %v", list, want)
		}
	}
	if ix.Keys() != 1 {
		t.Fatalf("Keys = %d", ix.Keys())
	}
	// Lookup returns a copy: mutating it must not corrupt the index.
	list[0] = 999
	list2, _ := ix.Lookup(5)
	if list2[0] != 10 {
		t.Fatal("Lookup returned aliasing slice")
	}
}

func TestSecondaryIndexMiddle(t *testing.T) {
	ix := NewSecondaryIndex()
	if _, _, ok := ix.Middle(1); ok {
		t.Fatal("Middle on empty key returned ok")
	}
	ix.Add(1, 100)
	if mid, _, ok := ix.Middle(1); !ok || mid != 100 {
		t.Fatalf("Middle single = %d,%v", mid, ok)
	}
	ix.Add(1, 200)
	ix.Add(1, 300)
	if mid, _, _ := ix.Middle(1); mid != 200 {
		t.Fatalf("Middle of 3 = %d, want 200", mid)
	}
	ix.Add(1, 400)
	if mid, _, _ := ix.Middle(1); mid != 300 {
		t.Fatalf("Middle of 4 = %d, want 300", mid)
	}
}

func TestSecondaryIndexVersionAndRemove(t *testing.T) {
	ix := NewSecondaryIndex()
	v0 := ix.Version()
	ix.Add(7, 1)
	if ix.Version() == v0 {
		t.Fatal("Add did not bump version")
	}
	_, v1, _ := ix.Middle(7)
	ix.Remove(7, 1)
	if ix.Version() == v1 {
		t.Fatal("Remove did not bump version")
	}
	left := 0
	ix.Each(7, func(uint64) bool { left++; return true })
	if left != 0 {
		t.Fatalf("after remove: %d postings left", left)
	}
	ix.Remove(7, 99) // no-op removal of absent key must not bump
	v2 := ix.Version()
	ix.Remove(7, 99)
	if ix.Version() != v2 {
		t.Fatal("no-op Remove bumped version")
	}
}

// Property: posting lists stay sorted and duplicate-free under any Add
// sequence.
func TestSecondaryIndexSortedProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		ix := NewSecondaryIndex()
		seen := map[uint64]bool{}
		for _, k := range keys {
			ix.Add(0, uint64(k))
			seen[uint64(k)] = true
		}
		n, prev, sorted := 0, uint64(0), true
		ix.Each(0, func(p uint64) bool {
			if n > 0 && prev >= p {
				sorted = false
				return false
			}
			n, prev = n+1, p
			return true
		})
		return sorted && n == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// NewFixedTable must refuse shapes whose arena it cannot represent: a
// zero row count (Get would return nil for every key) and a rows×size
// product that overflows, which would silently allocate a wrong-sized
// arena and misbehave at the table boundary.
func TestFixedTableShapeGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero rows", func() { NewFixedTable("z", 0, 8) })
	mustPanic("zero record size", func() { NewFixedTable("z", 8, 0) })
	mustPanic("negative record size", func() { NewFixedTable("z", 8, -1) })
	mustPanic("overflow", func() { NewFixedTable("z", math.MaxUint64/4, 8) })
	mustPanic("max rows", func() { NewFixedTable("z", math.MaxUint64, 1) })

	// Boundary behaviour of a legal table is unchanged.
	tbl := NewFixedTable("ok", 4, 8)
	if tbl.Get(3) == nil {
		t.Fatal("last row inaccessible")
	}
	if tbl.Get(4) != nil {
		t.Fatal("out-of-range key returned a record")
	}
}

// The copy-on-write table registry: ids handed out before later Create
// calls must stay valid, and readers racing Register must never observe
// a torn slice.
func TestDBRegistryCopyOnWrite(t *testing.T) {
	db := NewDB()
	first := db.Create(Layout{Name: "a", NumRecords: 4, RecordSize: 8})
	got := db.Table(first)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if db.Table(first) != got {
				t.Error("table id remapped during registration")
				return
			}
		}
	}()
	for i := 0; i < 64; i++ {
		db.Create(Layout{Name: fmt.Sprintf("t%d", i), NumRecords: 4, RecordSize: 8})
	}
	close(stop)
	wg.Wait()
	if db.NumTables() != 65 {
		t.Fatalf("NumTables = %d, want 65", db.NumTables())
	}
}

// --- ordered tables and range scans --------------------------------------

func TestOrderedGrowTableScansInKeyOrder(t *testing.T) {
	tbl := NewOrderedGrowTable("ord", 8, 0)
	// Insert out of order, spread across hash shards.
	keys := []uint64{500, 3, 77, 12, 9001, 64, 65, 4, 1000}
	for _, k := range keys {
		var v [8]byte
		PutU64(v[:], 0, k)
		if err := tbl.Insert(k, v[:]); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	tbl.Scan(4, 1000, func(key uint64, rec []byte) bool {
		if GetU64(rec, 0) != key {
			t.Fatalf("record payload %d under key %d", GetU64(rec, 0), key)
		}
		got = append(got, key)
		return true
	})
	want := []uint64{4, 12, 64, 65, 77, 500}
	if len(got) != len(want) {
		t.Fatalf("scan [4,1000) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan [4,1000) = %v, want %v (out of order)", got, want)
		}
	}
	// Early stop.
	n := 0
	tbl.Scan(0, 10000, func(uint64, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestOrderedGrowTableGapVersions(t *testing.T) {
	tbl := NewOrderedGrowTable("ord", 8, 0)
	v0 := tbl.RangeVersion(0, 100)
	var buf [8]byte
	if err := tbl.Insert(7, buf[:]); err != nil {
		t.Fatal(err)
	}
	v1 := tbl.RangeVersion(0, 100)
	if v1 == v0 {
		t.Fatal("new-key insert did not bump the gap version")
	}
	// Overwriting an existing key cannot create a phantom: no bump.
	if err := tbl.Insert(7, buf[:]); err != nil {
		t.Fatal(err)
	}
	if got := tbl.RangeVersion(0, 100); got != v1 {
		t.Fatalf("overwrite bumped gap version %d -> %d", v1, got)
	}
	if !tbl.ScanProtected() {
		t.Fatal("ordered grow table must be scan-protected")
	}
}

func TestOrderedGrowTableRejectsStripeFlagKeys(t *testing.T) {
	tbl := NewOrderedGrowTable("ord", 8, 0)
	var buf [8]byte
	if err := tbl.Insert(1<<63|5, buf[:]); err == nil {
		t.Fatal("key with bit 63 set accepted on ordered table")
	}
}

func TestUnorderedGrowTableScanPanics(t *testing.T) {
	tbl := NewGrowTable("hist", 8, 0)
	if tbl.ScanProtected() {
		t.Fatal("unordered grow table claims scan protection")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scan on unordered grow table did not panic")
		}
	}()
	tbl.Scan(0, 10, func(uint64, []byte) bool { return true })
}

func TestFixedTableScan(t *testing.T) {
	tbl := NewFixedTable("f", 8, 8)
	for k := uint64(0); k < 8; k++ {
		PutU64(tbl.Get(k), 0, k*10)
	}
	var got []uint64
	tbl.Scan(2, 100, func(key uint64, rec []byte) bool {
		got = append(got, GetU64(rec, 0))
		return true
	})
	if len(got) != 6 || got[0] != 20 || got[5] != 70 {
		t.Fatalf("fixed scan = %v", got)
	}
	if tbl.ScanProtected() {
		t.Fatal("fixed table claims scan protection")
	}
	if tbl.RangeVersion(0, 8) != 0 {
		t.Fatal("fixed table gap version must be 0")
	}
}

func TestSecondaryIndexEachIsAllocationFree(t *testing.T) {
	ix := NewSecondaryIndex()
	for i := uint64(0); i < 64; i++ {
		ix.Add(9, i*3)
	}
	var sum uint64
	allocs := testing.AllocsPerRun(100, func() {
		sum = 0
		ix.Each(9, func(p uint64) bool { sum += p; return true })
	})
	if allocs != 0 {
		t.Fatalf("Each allocates %.1f per call", allocs)
	}
	if want := uint64(63 * 64 / 2 * 3); sum != want {
		t.Fatalf("Each sum = %d, want %d", sum, want)
	}
	// Early stop and version agreement with Lookup.
	n := 0
	v := ix.Each(9, func(uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	if _, lv := ix.Lookup(9); lv != v {
		t.Fatalf("Each version %d != Lookup version %d", v, lv)
	}
}
