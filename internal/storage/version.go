package storage

import (
	"fmt"
	"sync/atomic"
)

// DefaultVersionDepth is the version-chain length kept per record when
// Layout.VersionDepth is zero. Depth bounds how far behind the durable
// frontier a snapshot can lag before pruning (the watermark) becomes the
// only thing keeping its versions alive; 8 comfortably covers the
// in-flight window of every engine here.
const DefaultVersionDepth = 8

// Version is one immutable committed record image in a chain ordered
// newest-first by commit LSN. Nodes are never mutated after publication
// (next is only ever cut to nil by pruning, never re-linked), so readers
// walk chains with plain atomic loads and no locks.
type Version struct {
	lsn  uint64
	data []byte
	next atomic.Pointer[Version]
}

// LSN returns the commit LSN this version was installed with.
func (v *Version) LSN() uint64 { return v.lsn }

// VersionedTable wraps a FixedTable with a per-record version chain: the
// arena row stays the engines' locked read/write image (newest,
// possibly uncommitted under a writer's lock), while the chain holds
// committed images stamped with their commit LSN. Read-only snapshot
// transactions resolve records exclusively through the chain — never the
// live arena bytes — so they observe a committed prefix without locks.
//
// Invariant: every row's chain is non-empty from construction onward (all
// rows share one immutable zero-image base node until their first load
// Insert or committed write), so a snapshot read can always resolve —
// failure to find a version ≤ snapshot means the pruning watermark
// protocol was violated and is a panic, not an error.
type VersionedTable struct {
	*FixedTable
	chains    []atomic.Pointer[Version]
	watermark atomic.Uint64
	depth     int
}

// NewVersionedTable builds a versioned fixed table. depth is the number
// of versions retained per record beyond what the watermark demands
// (0 → DefaultVersionDepth); negative depth panics — a silent clamp
// would hide a config typo that turns into unbounded memory or missing
// history at run time.
func NewVersionedTable(name string, numRecords uint64, recordSize int, depth int) *VersionedTable {
	if depth < 0 {
		panic(fmt.Sprintf("storage: table %s VersionDepth %d is negative", name, depth))
	}
	if depth == 0 {
		depth = DefaultVersionDepth
	}
	t := &VersionedTable{
		FixedTable: NewFixedTable(name, numRecords, recordSize),
		chains:     make([]atomic.Pointer[Version], numRecords),
		depth:      depth,
	}
	// Seed every chain with one shared zero-image base version (LSN 0 =
	// "before any commit"). The node is immutable and only ever referenced,
	// so sharing it across rows is safe and keeps an idle table at O(1)
	// version memory.
	base := &Version{lsn: 0, data: make([]byte, recordSize)}
	for i := range t.chains {
		t.chains[i].Store(base)
	}
	return t
}

// Insert implements Table: it is the load path (bulk population before
// transactions run) and replaces the row's base version so snapshot
// readers at LSN 0 see the loaded image, not zeroes. It is not safe
// concurrently with transactions on the same key, matching FixedTable.
func (t *VersionedTable) Insert(key uint64, value []byte) error {
	if err := t.FixedTable.Insert(key, value); err != nil {
		return err
	}
	base := &Version{lsn: 0, data: make([]byte, t.RecordSize())}
	copy(base.data, value)
	t.chains[key].Store(base)
	return nil
}

// InstallVersion publishes the row's current arena bytes as the
// committed image for lsn, pushing it onto the chain head and pruning
// the tail. The caller must hold whatever logical lock made the arena
// write exclusive (the engines call this at pre-commit, after logic and
// undo-reset, before lock release) and must ensure — via WAL appender
// mutex or CommitClock publication order — that no snapshot at or above
// lsn can begin until InstallVersion returns.
func (t *VersionedTable) InstallVersion(key, lsn uint64) {
	//orthrus:allow(noalloc) inherent MVCC cost: one version node per commit, on versioned tables only
	n := &Version{lsn: lsn, data: make([]byte, t.RecordSize())}
	copy(n.data, t.FixedTable.Get(key))
	head := &t.chains[key]
	n.next.Store(head.Load())
	head.Store(n)

	// Prune: keep nodes until both (a) depth nodes survive and (b) a node
	// at or below the watermark survives — the newest such node is what a
	// reader at the oldest active snapshot resolves to. Everything past
	// that point is unreachable by any current or future snapshot.
	w := t.watermark.Load()
	kept, coveredW := 0, false
	for cur := n; cur != nil; cur = cur.next.Load() {
		kept++
		if cur.lsn <= w {
			coveredW = true
		}
		if kept >= t.depth && coveredW {
			cur.next.Store(nil)
			return
		}
	}
}

// SetWatermark publishes the oldest-active-snapshot LSN that future
// prunes must preserve. The caller (engine.Snapshots) guarantees no
// registered snapshot is older than w at the moment of each prune.
func (t *VersionedTable) SetWatermark(w uint64) { t.watermark.Store(w) }

// Watermark returns the last published prune watermark.
func (t *VersionedTable) Watermark() uint64 { return t.watermark.Load() }

// ReadVersion resolves key to the newest committed image with
// LSN ≤ snap, plus the number of chain nodes traversed. The returned
// slice is immutable version memory — safe to read without any lock. A
// miss (no such version) means the watermark protocol failed to protect
// an active snapshot and panics loudly rather than returning torn data.
func (t *VersionedTable) ReadVersion(key, snap uint64) ([]byte, int) {
	if key >= t.Len() {
		return nil, 0
	}
	hops := 0
	for cur := t.chains[key].Load(); cur != nil; cur = cur.next.Load() {
		hops++
		if cur.lsn <= snap {
			return cur.data, hops
		}
	}
	panic(fmt.Sprintf("storage: table %s key %d has no version ≤ snapshot %d (watermark %d pruned an active snapshot's history)",
		t.Name(), key, snap, t.watermark.Load()))
}

// ScanVersions walks keys in [lo, hi) in ascending order, resolving each
// through its version chain at snap, and returns the total chain hops.
// Fixed tables admit no phantoms and version memory is immutable, so the
// scan is consistent at snap with zero locks.
func (t *VersionedTable) ScanVersions(lo, hi, snap uint64, fn func(key uint64, rec []byte) bool) int {
	if hi > t.Len() {
		hi = t.Len()
	}
	hops := 0
	for key := lo; key < hi; key++ {
		rec, h := t.ReadVersion(key, snap)
		hops += h
		if !fn(key, rec) {
			break
		}
	}
	return hops
}
