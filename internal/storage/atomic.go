package storage

import (
	"sync/atomic"
	"unsafe"
)

// Atomic field accessors.
//
// OLLP reconnaissance (paper §3.2) reads records without acquiring locks:
// "no locks are acquired during this reconnaissance ... all reads are not
// assumed to be consistent". Transactionally that is fine — the estimate
// is re-validated under locks — but in the Go memory model a plain read
// racing a locked writer is still a data race. Fields that reconnaissance
// can observe (TPC-C's D_NEXT_O_ID, the delivery cursor, C_LAST_ORDER)
// are therefore accessed with the atomic helpers below on both the locked
// writer side and the unlocked reconnaissance side. Aligned atomic loads
// and stores compile to plain MOVs on amd64, so the hot path cost is nil.
//
// Callers must pass 8-byte-aligned offsets into table-arena or pool-backed
// records (all layouts in this repository use multiple-of-8 offsets and
// record sizes, and Go heap allocations of that size are 8-byte aligned).

// AtomicGetU64 atomically reads the uint64 at byte offset off.
func AtomicGetU64(rec []byte, off int) uint64 {
	return atomic.LoadUint64((*uint64)(unsafe.Pointer(&rec[off])))
}

// AtomicPutU64 atomically writes the uint64 at byte offset off.
func AtomicPutU64(rec []byte, off int, v uint64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&rec[off])), v)
}

// AtomicAddU64 adds delta under the caller's logical lock using an atomic
// load/store pair (not a RMW — exclusivity comes from the lock; atomicity
// is only needed against unlocked reconnaissance readers).
func AtomicAddU64(rec []byte, off int, delta uint64) uint64 {
	v := AtomicGetU64(rec, off) + delta
	AtomicPutU64(rec, off, v)
	return v
}
