package storage

import (
	"fmt"
	"sort"
)

// Checkpoint and recovery support: validation of replayable writes and
// the two latched walks the fuzzy checkpointer needs over growable
// tables. The checkpointer reads updatable tables through engine
// transactions (record locks or snapshots make the bytes consistent);
// the helpers here cover what the engine path cannot — enumerating a
// hash table's key population, and copying out insert-only tables whose
// records are immutable once published under the shard latch.

// CheckInsert reports whether Insert(key, value) would fail on t,
// without mutating anything. Parallel replay uses it to pick the exact
// applicable log prefix serially before fanning the writes out to
// workers — a record that would fail mid-apply must instead end the
// prefix, exactly as it ends a serial replay.
func CheckInsert(t Table, key uint64, value []byte) error {
	switch tt := t.(type) {
	case *GrowTable:
		if len(value) > tt.recSize {
			return fmt.Errorf("storage: value size %d exceeds record size %d for table %s", len(value), tt.recSize, tt.name)
		}
		if tt.ordered && key>>63 != 0 {
			return fmt.Errorf("storage: key %d has bit 63 set (reserved for stripe locks) on ordered table %s", key, tt.name)
		}
		return nil
	case *VersionedTable:
		return checkFixedInsert(tt.FixedTable, key)
	case *FixedTable:
		return checkFixedInsert(tt, key)
	default:
		return nil
	}
}

// checkFixedInsert mirrors FixedTable.Insert's only failure condition.
func checkFixedInsert(t *FixedTable, key uint64) error {
	if key >= t.n {
		return fmt.Errorf("storage: key %d out of range for table %s (n=%d)", key, t.name, t.n)
	}
	return nil
}

// AppendKeys appends every present key to buf (shard by shard, each
// under its own latch) and returns the extended slice, sorted. The
// result is a point-in-time enumeration: keys inserted while the walk
// is in flight may or may not appear — for a fuzzy checkpoint that is
// exactly right, since a late insert carries an LSN past the
// checkpoint's StartLSN and lands in the replayed log tail instead.
func (t *GrowTable) AppendKeys(buf []uint64) []uint64 {
	base := len(buf)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if t.ordered {
			buf = append(buf, s.keys...)
		} else {
			for k := range s.m {
				buf = append(buf, k)
			}
		}
		s.mu.Unlock()
	}
	tail := buf[base:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return buf
}

// CopyOut invokes fn for every present record, shard by shard, holding
// each shard's latch across its records. fn must copy rec before
// returning and must not block or re-enter the table.
//
// The latch makes this sound only for insert-only tables (HISTORY): an
// insert publishes its fully-written pool buffer under the shard latch,
// so the walk never sees a partial record — but in-place updates to
// existing records are guarded by engine record locks, not shard
// latches, so an updatable table walked this way could yield torn
// bytes. The checkpointer reads updatable tables through engine
// transactions instead.
func (t *GrowTable) CopyOut(fn func(key uint64, rec []byte)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			fn(k, v)
		}
		s.mu.Unlock()
	}
}
