package storage

import (
	"strings"
	"testing"
)

func newVT(t *testing.T, depth int) *VersionedTable {
	t.Helper()
	return NewVersionedTable("vt", 16, 16, depth)
}

func TestVersionedTableZeroBaseAndInsert(t *testing.T) {
	vt := newVT(t, 0)
	// Before any load, every key resolves at snapshot 0 to a zero image.
	rec, hops := vt.ReadVersion(3, 0)
	if hops != 1 || GetU64(rec, 0) != 0 {
		t.Fatalf("zero base: hops=%d val=%d", hops, GetU64(rec, 0))
	}
	// Load path replaces the base so snapshot 0 sees the loaded image.
	buf := make([]byte, 16)
	PutU64(buf, 0, 42)
	if err := vt.Insert(3, buf); err != nil {
		t.Fatal(err)
	}
	rec, _ = vt.ReadVersion(3, 0)
	if GetU64(rec, 0) != 42 {
		t.Fatalf("after Insert: %d", GetU64(rec, 0))
	}
	// The versioned image is a copy, not the arena row: mutating the arena
	// must not change what the snapshot sees.
	PutU64(vt.Get(3), 0, 99)
	rec, _ = vt.ReadVersion(3, 0)
	if GetU64(rec, 0) != 42 {
		t.Fatalf("snapshot aliases arena: %d", GetU64(rec, 0))
	}
}

func TestVersionedTableInstallAndResolve(t *testing.T) {
	vt := newVT(t, 0)
	// Commit values 1, 2, 3 at LSNs 10, 20, 30.
	for i, lsn := range []uint64{10, 20, 30} {
		PutU64(vt.Get(5), 0, uint64(i+1))
		vt.InstallVersion(5, lsn)
	}
	for _, tc := range []struct{ snap, want uint64 }{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {30, 3}, {1 << 40, 3},
	} {
		rec, _ := vt.ReadVersion(5, tc.snap)
		if got := GetU64(rec, 0); got != tc.want {
			t.Fatalf("snap %d: got %d, want %d", tc.snap, got, tc.want)
		}
	}
	// Out-of-range key: nil, 0 (caller treats as missing).
	if rec, hops := vt.ReadVersion(999, 1<<40); rec != nil || hops != 0 {
		t.Fatalf("out-of-range = %v,%d", rec, hops)
	}
}

func TestVersionedTablePruneKeepsDepthAndWatermark(t *testing.T) {
	vt := newVT(t, 2)
	for lsn := uint64(1); lsn <= 10; lsn++ {
		PutU64(vt.Get(0), 0, lsn)
		vt.InstallVersion(0, lsn)
	}
	// Watermark 0: every prune must keep a node with lsn ≤ 0 — the zero
	// base — so history back to snapshot 0 stays resolvable.
	rec, _ := vt.ReadVersion(0, 0)
	if GetU64(rec, 0) != 0 {
		t.Fatalf("snapshot 0 lost: %d", GetU64(rec, 0))
	}

	// Raise the watermark to 9 and install LSN 11: the prune keeps the
	// depth=2 newest nodes (11, 10) plus the newest node ≤ watermark (9),
	// which is what a reader at the oldest active snapshot resolves to.
	vt.SetWatermark(9)
	if vt.Watermark() != 9 {
		t.Fatalf("Watermark = %d", vt.Watermark())
	}
	PutU64(vt.Get(0), 0, 11)
	vt.InstallVersion(0, 11)
	chain := 0
	for cur := vt.chains[0].Load(); cur != nil; cur = cur.next.Load() {
		chain++
	}
	if chain != 3 {
		t.Fatalf("chain length after prune = %d, want 3 (11, 10, 9)", chain)
	}
	// Snapshots at or above the watermark resolve exactly.
	for _, snap := range []uint64{9, 10, 11} {
		rec, _ := vt.ReadVersion(0, snap)
		if got := GetU64(rec, 0); got != snap {
			t.Fatalf("snap %d resolved to %d", snap, got)
		}
	}
}

func TestVersionedTableReadBelowWatermarkPanics(t *testing.T) {
	vt := newVT(t, 1)
	for lsn := uint64(10); lsn <= 12; lsn++ {
		PutU64(vt.Get(0), 0, lsn)
		vt.SetWatermark(lsn)
		vt.InstallVersion(0, lsn)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("read below pruned history did not panic")
		}
		if !strings.Contains(r.(string), "no version") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	vt.ReadVersion(0, 5) // history below watermark 12 was pruned
}

func TestVersionedTableScanVersions(t *testing.T) {
	vt := NewVersionedTable("vt", 8, 16, 0)
	for k := uint64(0); k < 8; k++ {
		PutU64(vt.Get(k), 0, k+100)
		vt.InstallVersion(k, 7)
	}
	var keys []uint64
	var sum uint64
	hops := vt.ScanVersions(2, 100, 7, func(k uint64, rec []byte) bool {
		keys = append(keys, k)
		sum += GetU64(rec, 0)
		return true
	})
	if len(keys) != 6 || keys[0] != 2 || keys[5] != 7 {
		t.Fatalf("scan keys = %v", keys)
	}
	if want := uint64(102 + 103 + 104 + 105 + 106 + 107); sum != want {
		t.Fatalf("scan sum = %d, want %d", sum, want)
	}
	if hops != 6 {
		t.Fatalf("hops = %d", hops)
	}
	// At snapshot 6 the installs are invisible: zero bases resolve.
	sum = 0
	vt.ScanVersions(0, 8, 6, func(_ uint64, rec []byte) bool {
		sum += GetU64(rec, 0)
		return true
	})
	if sum != 0 {
		t.Fatalf("pre-install snapshot sum = %d", sum)
	}
	// Early stop.
	n := 0
	vt.ScanVersions(0, 8, 7, func(uint64, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestVersionedLayoutValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Versioned+Growable", func() {
		NewDB().Create(Layout{Name: "x", NumRecords: 8, RecordSize: 16, Versioned: true, Growable: true})
	})
	mustPanic("negative VersionDepth", func() {
		NewVersionedTable("x", 8, 16, -1)
	})
	// Zero depth means default — not a panic.
	vt := NewVersionedTable("x", 8, 16, 0)
	if vt.depth != DefaultVersionDepth {
		t.Fatalf("depth = %d", vt.depth)
	}
	// Layout plumbing: Create with Versioned yields a *VersionedTable.
	db := NewDB()
	id := db.Create(Layout{Name: "v", NumRecords: 8, RecordSize: 16, Versioned: true, VersionDepth: 3})
	if _, ok := db.Table(id).(*VersionedTable); !ok {
		t.Fatalf("Create(Versioned) = %T", db.Table(id))
	}
}
