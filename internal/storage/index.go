package storage

import (
	"sort"
	"sync"
)

// SecondaryIndex maps a secondary key (e.g. a hash of TPC-C
// (warehouse, district, customer-last-name)) to the sorted set of primary
// keys carrying that value. TPC-C's Payment transaction selects the
// "middle" customer from this set (§4.4: "60% of Payment transactions must
// find a Customer by a secondary index on customers' last name"); ORTHRUS
// reads the index speculatively during OLLP reconnaissance to discover the
// transaction's write set before any lock is requested.
//
// The index is built during load and read-heavy afterwards; a version
// counter lets OLLP validate that its reconnaissance read was not stale.
type SecondaryIndex struct {
	mu      sync.RWMutex
	entries map[uint64][]uint64
	version uint64
}

// NewSecondaryIndex returns an empty index.
func NewSecondaryIndex() *SecondaryIndex {
	return &SecondaryIndex{entries: make(map[uint64][]uint64)}
}

// Add inserts primary under secondary, keeping the posting list sorted.
func (ix *SecondaryIndex) Add(secondary, primary uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	list := ix.entries[secondary]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= primary })
	if i < len(list) && list[i] == primary {
		return
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = primary
	ix.entries[secondary] = list
	ix.version++
}

// Remove deletes primary from secondary's posting list.
func (ix *SecondaryIndex) Remove(secondary, primary uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	list := ix.entries[secondary]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= primary })
	if i >= len(list) || list[i] != primary {
		return
	}
	ix.entries[secondary] = append(list[:i], list[i+1:]...)
	ix.version++
}

// Lookup returns a copy of the posting list for secondary and the index
// version at read time (for OLLP validation). The copy allocates on every
// call; hot paths that only need to walk the list should use Each, and
// TPC-C's by-last-name resolution uses Middle — both allocation-free.
func (ix *SecondaryIndex) Lookup(secondary uint64) (primaries []uint64, version uint64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	list := ix.entries[secondary]
	if len(list) == 0 {
		return nil, ix.version
	}
	out := make([]uint64, len(list))
	copy(out, list)
	return out, ix.version
}

// Each invokes fn for each primary key in secondary's posting list, in
// ascending order, stopping early when fn returns false, and returns the
// index version at read time. Unlike Lookup it performs no allocation —
// the iteration runs under the read latch against the live list — so it
// is the accessor for hot paths (TPC-C consistency sweeps, posting-list
// aggregation) that would otherwise copy the list on every call. fn must
// not call back into the index (the latch is held).
func (ix *SecondaryIndex) Each(secondary uint64, fn func(primary uint64) bool) (version uint64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, p := range ix.entries[secondary] {
		if !fn(p) {
			break
		}
	}
	return ix.version
}

// Middle returns the middle element of secondary's posting list — TPC-C's
// rule for resolving a customer by last name — plus the version.
// ok=false when the posting list is empty.
func (ix *SecondaryIndex) Middle(secondary uint64) (primary uint64, version uint64, ok bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	list := ix.entries[secondary]
	if len(list) == 0 {
		return 0, ix.version, false
	}
	// TPC-C clause 2.5.2.2: position n/2 rounded up in 1-based terms.
	return list[len(list)/2], ix.version, true
}

// Version returns the current modification counter.
func (ix *SecondaryIndex) Version() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.version
}

// Keys returns the number of distinct secondary keys.
func (ix *SecondaryIndex) Keys() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entries)
}
