// Package storage implements the main-memory storage substrate shared by
// every engine in this repository (paper §3: "ORTHRUS assumes that the
// working set of data accessed by transactions can be held in main
// memory").
//
// Two table layouts are provided:
//
//   - FixedTable: a dense, pre-allocated arena of fixed-size records keyed
//     by row number. This is the layout used by the YCSB-style experiments
//     (a single table of N records of S bytes each) and by the static
//     TPC-C tables. All record memory is allocated once at load time, so
//     steady-state transaction processing never touches the Go allocator —
//     the analogue of the paper's "never interacts with a memory
//     allocator" discipline for its 2PL baseline.
//
//   - GrowTable: a sharded hash table supporting inserts, used for the
//     TPC-C tables that grow during the run (ORDER, NEW-ORDER, ORDER-LINE,
//     HISTORY). A growable table created with Layout.Ordered additionally
//     maintains a sorted key list and a gap-version counter per shard, so
//     range scans iterate in ascending key order and every insert of a
//     new key bumps a version a reconnaissance reader can validate
//     against. Ordered tables are scan-protected: engines guard inserts
//     with stripe (gap) locks so a concurrent range scan cannot observe a
//     phantom — this retires the original prototype scope restriction
//     (the paper excludes phantom protection; see README.md "Range scans
//     and phantom protection"). Unordered growable tables (HISTORY) keep
//     the cheaper insert path and cannot be scanned.
//
// Record payloads are raw byte slices. Fixed-width integer fields inside a
// record are read and written with the binary helpers below; every engine
// uses the same helpers so that the per-access CPU work is identical across
// systems, keeping the comparisons honest.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Layout describes one table's shape.
type Layout struct {
	Name       string
	NumRecords uint64 // FixedTable capacity (rows 0..NumRecords-1)
	RecordSize int    // payload bytes per record
	Growable   bool   // true → GrowTable (insert-heavy TPC-C tables)
	// Ordered makes a growable table scannable and scan-protected: each
	// shard keeps its keys sorted and a gap-version counter bumped on
	// every new-key insert. Ignored for fixed tables (dense row spaces
	// are ordered by construction).
	Ordered bool
	// Versioned gives each record a small version chain of committed
	// images stamped with commit LSNs, enabling lock-free snapshot reads
	// (see VersionedTable). Only fixed layouts can be versioned — a
	// growable table's key population changes under shard latches the
	// version protocol does not cover — so Versioned+Growable panics.
	Versioned bool
	// VersionDepth is the number of versions retained per record beyond
	// what the snapshot watermark demands (0 → DefaultVersionDepth;
	// negative panics). Ignored unless Versioned.
	VersionDepth int
}

// Table is the access interface shared by both layouts.
type Table interface {
	// Name returns the table name.
	Name() string
	// Get returns the record payload for key, or nil if absent.
	// The returned slice aliases table memory; callers synchronize via the
	// engine's concurrency control.
	Get(key uint64) []byte
	// Insert adds a record payload for key. For FixedTable keys must be
	// in-range (it overwrites); GrowTable allocates. Insert is internally
	// thread-safe for GrowTable.
	Insert(key uint64, value []byte) error
	// Len returns the number of records.
	Len() uint64
	// RecordSize returns the fixed payload size.
	RecordSize() int
	// Scan invokes fn for each present record with key in the half-open
	// range [lo, hi), in ascending key order, stopping early when fn
	// returns false. No internal lock is held while fn runs, so fn may
	// block (e.g. on a record lock). Panics on an unordered growable
	// table — those cannot be iterated in key order.
	Scan(lo, hi uint64, fn func(key uint64, rec []byte) bool)
	// ScanProtected reports whether inserts can add new keys at run time,
	// i.e. whether range scans over this table need gap (stripe) locking
	// against phantoms. True only for ordered growable tables.
	ScanProtected() bool
	// RangeVersion folds the gap-version counters that could cover keys
	// in [lo, hi) into one value: if it is unchanged between two reads,
	// no insert added a key that could have landed in the range. It is
	// conservative — inserts outside the range may also change it — and
	// constant 0 for tables whose key population cannot change.
	RangeVersion(lo, hi uint64) uint64
}

// FixedTable is a dense arena of NumRecords fixed-size records.
type FixedTable struct {
	name    string
	arena   []byte
	n       uint64
	recSize int
}

// NewFixedTable allocates the arena eagerly. It panics on a zero row
// count or when rows·size overflows the address space — silently
// allocating a wrong-sized arena would make Get misbehave at the table
// boundary.
func NewFixedTable(name string, numRecords uint64, recordSize int) *FixedTable {
	if recordSize <= 0 {
		panic("storage: recordSize must be positive")
	}
	if numRecords == 0 {
		panic("storage: numRecords must be positive (use Growable for empty tables)")
	}
	if numRecords > uint64(math.MaxInt)/uint64(recordSize) {
		panic(fmt.Sprintf("storage: table %s size %d×%d overflows", name, numRecords, recordSize))
	}
	return &FixedTable{
		name:    name,
		arena:   make([]byte, numRecords*uint64(recordSize)),
		n:       numRecords,
		recSize: recordSize,
	}
}

// Name implements Table.
func (t *FixedTable) Name() string { return t.name }

// Get implements Table. Out-of-range keys return nil.
func (t *FixedTable) Get(key uint64) []byte {
	if key >= t.n {
		return nil
	}
	off := key * uint64(t.recSize)
	return t.arena[off : off+uint64(t.recSize) : off+uint64(t.recSize)]
}

// Insert implements Table by overwriting the row in place.
func (t *FixedTable) Insert(key uint64, value []byte) error {
	dst := t.Get(key)
	if dst == nil {
		return fmt.Errorf("storage: key %d out of range for table %s (n=%d)", key, t.name, t.n)
	}
	copy(dst, value)
	return nil
}

// Len implements Table.
func (t *FixedTable) Len() uint64 { return t.n }

// RecordSize implements Table.
func (t *FixedTable) RecordSize() int { return t.recSize }

// Scan implements Table: a dense row space is ordered by construction,
// so the iteration is a straight walk over the arena.
func (t *FixedTable) Scan(lo, hi uint64, fn func(key uint64, rec []byte) bool) {
	if hi > t.n {
		hi = t.n
	}
	for key := lo; key < hi; key++ {
		if !fn(key, t.Get(key)) {
			return
		}
	}
}

// ScanProtected implements Table: a fixed table's key population never
// changes, so scans cannot observe phantoms.
func (t *FixedTable) ScanProtected() bool { return false }

// RangeVersion implements Table.
func (t *FixedTable) RangeVersion(lo, hi uint64) uint64 { return 0 }

// growShards is the shard count for GrowTable. Power of two.
const growShards = 64

type growShard struct {
	mu sync.Mutex
	m  map[uint64][]byte
	// keys is the shard's sorted key list and version its gap counter,
	// maintained only for ordered tables: version increments on every
	// insert that adds a new key (overwrites leave it alone — they cannot
	// create phantoms). The counter is written under the shard mutex —
	// keeping insert-side bumps local to the shard's cache line instead
	// of contending a table-global word — but read with atomic loads so
	// RangeVersion's fold over all shards never takes a latch.
	keys    []uint64
	version atomic.Uint64
}

// GrowTable is a sharded hash table for insert-heavy tables.
type GrowTable struct {
	name    string
	recSize int
	ordered bool
	shards  [growShards]growShard
	pool    *Pool
}

// NewGrowTable returns an empty growable table. sizeHint pre-sizes shards.
func NewGrowTable(name string, recordSize int, sizeHint uint64) *GrowTable {
	t := &GrowTable{name: name, recSize: recordSize, pool: NewPool(recordSize)}
	per := int(sizeHint / growShards)
	for i := range t.shards {
		t.shards[i].m = make(map[uint64][]byte, per)
	}
	return t
}

// NewOrderedGrowTable returns an empty growable table that additionally
// keeps per-shard sorted key lists and gap versions, making it scannable
// in key order and scan-protected (engines stripe-lock its inserts).
func NewOrderedGrowTable(name string, recordSize int, sizeHint uint64) *GrowTable {
	t := NewGrowTable(name, recordSize, sizeHint)
	t.ordered = true
	return t
}

func (t *GrowTable) shard(key uint64) *growShard {
	// Fibonacci hash spreads sequential TPC-C order ids across shards.
	return &t.shards[(key*0x9E3779B97F4A7C15)>>(64-6)]
}

// Name implements Table.
func (t *GrowTable) Name() string { return t.name }

// Get implements Table.
func (t *GrowTable) Get(key uint64) []byte {
	s := t.shard(key)
	s.mu.Lock()
	v := s.m[key]
	s.mu.Unlock()
	return v
}

// Insert implements Table. The value is copied into pool-owned memory.
// On an ordered table a new key is spliced into the shard's sorted key
// list and bumps the shard's gap version; keys with bit 63 set are
// rejected — that bit marks stripe lock keys (txn.StripeFlag), which must
// never collide with record keys.
func (t *GrowTable) Insert(key uint64, value []byte) error {
	if len(value) > t.recSize {
		return fmt.Errorf("storage: value size %d exceeds record size %d for table %s", len(value), t.recSize, t.name)
	}
	if t.ordered && key>>63 != 0 {
		return fmt.Errorf("storage: key %d has bit 63 set (reserved for stripe locks) on ordered table %s", key, t.name)
	}
	buf := t.pool.Get()
	copy(buf, value)
	s := t.shard(key)
	s.mu.Lock()
	if _, exists := s.m[key]; !exists && t.ordered {
		i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
		s.keys = append(s.keys, 0)
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
		s.version.Store(s.version.Load() + 1) // exclusive under s.mu
	}
	s.m[key] = buf
	s.mu.Unlock()
	return nil
}

// Len implements Table.
func (t *GrowTable) Len() uint64 {
	var n uint64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += uint64(len(s.m))
		s.mu.Unlock()
	}
	return n
}

// RecordSize implements Table.
func (t *GrowTable) RecordSize() int { return t.recSize }

// scanPair is one gathered (key, record) pair awaiting the merge sort.
type scanPair struct {
	key uint64
	rec []byte
}

// Scan implements Table. Keys are hash-sharded, so an in-order iteration
// first gathers the matching (key, record) pairs from every shard — each
// under its own latch, record slices are stable pool memory — then sorts
// and walks them with no lock held, so fn may block (on a record lock,
// say) without stalling concurrent inserts to unrelated keys.
func (t *GrowTable) Scan(lo, hi uint64, fn func(key uint64, rec []byte) bool) {
	if !t.ordered {
		panic("storage: Scan on unordered growable table " + t.name)
	}
	if hi <= lo {
		return
	}
	var pairs []scanPair
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		j := sort.Search(len(s.keys), func(j int) bool { return s.keys[j] >= lo })
		for ; j < len(s.keys) && s.keys[j] < hi; j++ {
			pairs = append(pairs, scanPair{key: s.keys[j], rec: s.m[s.keys[j]]})
		}
		s.mu.Unlock()
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].key < pairs[b].key })
	for _, p := range pairs {
		if !fn(p.key, p.rec) {
			return
		}
	}
}

// ScanProtected implements Table.
func (t *GrowTable) ScanProtected() bool { return t.ordered }

// RangeVersion implements Table. Hash sharding means any shard could hold
// a key in [lo, hi), so the fold covers every shard — conservative by
// design (see the interface comment). The fold is latch-free: 64 atomic
// loads, no shard mutex traffic on the reconnaissance path.
func (t *GrowTable) RangeVersion(lo, hi uint64) uint64 {
	if !t.ordered {
		return 0
	}
	var v uint64
	for i := range t.shards {
		v += t.shards[i].version.Load()
	}
	return v
}

// DB is a named collection of tables plus secondary indexes. The table
// slice is copy-on-write behind an atomic pointer: Table sits on every
// engine's per-record hot path (ten lookups per YCSB transaction), where
// even an uncontended RWMutex read-lock is a measurable share of a
// microsecond-scale transaction.
type DB struct {
	tables  atomic.Pointer[[]Table]
	mu      sync.Mutex // guards writers and the name/index maps
	byName  map[string]int
	indexes map[string]*SecondaryIndex
}

// NewDB returns an empty database.
func NewDB() *DB {
	db := &DB{byName: make(map[string]int), indexes: make(map[string]*SecondaryIndex)}
	db.tables.Store(&[]Table{})
	return db
}

// Create builds a table from its layout and registers it, returning its id.
func (db *DB) Create(l Layout) int {
	var t Table
	switch {
	case l.Versioned && l.Growable:
		panic(fmt.Sprintf("storage: table %s is Versioned+Growable; version chains require a fixed layout", l.Name))
	case l.Versioned:
		t = NewVersionedTable(l.Name, l.NumRecords, l.RecordSize, l.VersionDepth)
	case l.Growable && l.Ordered:
		t = NewOrderedGrowTable(l.Name, l.RecordSize, l.NumRecords)
	case l.Growable:
		t = NewGrowTable(l.Name, l.RecordSize, l.NumRecords)
	default:
		t = NewFixedTable(l.Name, l.NumRecords, l.RecordSize)
	}
	return db.Register(t)
}

// Register adds an existing table and returns its id.
func (db *DB) Register(t Table) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.byName[t.Name()]; dup {
		panic("storage: duplicate table " + t.Name())
	}
	old := *db.tables.Load()
	tables := make([]Table, len(old)+1)
	copy(tables, old)
	id := len(old)
	tables[id] = t
	db.tables.Store(&tables)
	db.byName[t.Name()] = id
	return id
}

// Table returns the table with the given id.
func (db *DB) Table(id int) Table {
	return (*db.tables.Load())[id]
}

// TableID returns the id for name, or -1.
func (db *DB) TableID(name string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if id, ok := db.byName[name]; ok {
		return id
	}
	return -1
}

// NumTables returns the number of registered tables.
func (db *DB) NumTables() int {
	return len(*db.tables.Load())
}

// AddIndex registers a named secondary index.
func (db *DB) AddIndex(name string, idx *SecondaryIndex) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.indexes[name] = idx
}

// Index returns a named secondary index, or nil.
func (db *DB) Index(name string) *SecondaryIndex {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.indexes[name]
}

// --- fixed-width field helpers -----------------------------------------

// GetU64 reads a little-endian uint64 at byte offset off.
func GetU64(rec []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(rec[off : off+8])
}

// PutU64 writes a little-endian uint64 at byte offset off.
func PutU64(rec []byte, off int, v uint64) {
	binary.LittleEndian.PutUint64(rec[off:off+8], v)
}

// GetI64 reads a little-endian int64 at byte offset off.
func GetI64(rec []byte, off int) int64 { return int64(GetU64(rec, off)) }

// PutI64 writes a little-endian int64 at byte offset off.
func PutI64(rec []byte, off int, v int64) { PutU64(rec, off, uint64(v)) }

// AddU64 adds delta to the uint64 at off and returns the new value.
// Callers hold the record's logical lock; no atomicity is implied.
func AddU64(rec []byte, off int, delta uint64) uint64 {
	v := GetU64(rec, off) + delta
	PutU64(rec, off, v)
	return v
}

// AddI64 adds delta to the int64 at off and returns the new value.
func AddI64(rec []byte, off int, delta int64) int64 {
	v := GetI64(rec, off) + delta
	PutI64(rec, off, v)
	return v
}
