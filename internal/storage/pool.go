package storage

import "sync"

// poolChunk is the number of records carved from the arena per refill.
const poolChunk = 1024

// Pool hands out fixed-size record buffers carved from large arenas so the
// hot path performs no per-record Go allocations. It mirrors the paper's
// 2PL baseline discipline of "a pre-allocated thread-local pool of memory":
// callers that want thread locality keep a Local per thread.
type Pool struct {
	size int

	mu    sync.Mutex
	arena []byte // current arena being carved
}

// NewPool returns a pool of size-byte buffers.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic("storage: pool buffer size must be positive")
	}
	return &Pool{size: size}
}

// Size returns the buffer size handed out by the pool.
func (p *Pool) Size() int { return p.size }

// Get returns a zeroed size-byte buffer.
func (p *Pool) Get() []byte {
	p.mu.Lock()
	if len(p.arena) < p.size {
		p.arena = make([]byte, p.size*poolChunk)
	}
	buf := p.arena[:p.size:p.size]
	p.arena = p.arena[p.size:]
	p.mu.Unlock()
	return buf
}

// Local is a per-thread view of a Pool that refills in chunks, so
// steady-state Get calls take no locks at all.
type Local struct {
	parent *Pool
	arena  []byte
}

// NewLocal returns a thread-local allocator backed by p.
func (p *Pool) NewLocal() *Local { return &Local{parent: p} }

// Get returns a zeroed buffer without synchronization (after warmup the
// common case touches only the local arena).
func (l *Local) Get() []byte {
	size := l.parent.size
	if len(l.arena) < size {
		l.arena = make([]byte, size*poolChunk)
	}
	buf := l.arena[:size:size]
	l.arena = l.arena[size:]
	return buf
}
