package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/txn"
)

// Analytics generates long read-only range scans — the analytical half
// of an HTAP mix, run concurrently with a write workload (Transfer or
// YCSB RMW) by the htap harness experiment.
//
// Two access paths, selected by Snapshot:
//
//   - Snapshot=false (locking baseline): the scan declares a covering
//     RangeOp plus per-record Read ops, exactly like YCSB's scanTxn, and
//     runs through the engine's phantom-safe locking scan. On a
//     partitioned store the footprint covers every partition the range
//     touches — a whole-table scan serializes the whole store.
//   - Snapshot=true: the transaction is flagged txn.Txn.ReadOnly and
//     declares only the RangeOp; engines with a versioned table serve it
//     from an immutable MVCC snapshot with zero locks. It must only be
//     run against a versioned table (the planned engines' fallback would
//     miss the undeclared per-record ops).
type Analytics struct {
	Table      int
	NumRecords uint64
	// ScanLen is the records per scan, in [1, NumRecords].
	ScanLen int
	// Snapshot selects the MVCC snapshot path (see above).
	Snapshot bool
}

// Validate checks configuration consistency.
func (c *Analytics) Validate() error {
	if c.ScanLen < 1 || uint64(c.ScanLen) > c.NumRecords {
		return fmt.Errorf("workload: Analytics ScanLen %d out of range [1, NumRecords=%d]", c.ScanLen, c.NumRecords)
	}
	return nil
}

// Next implements Source.
func (c *Analytics) Next(_ int, rng *rand.Rand) *txn.Txn {
	n := uint64(c.ScanLen)
	lo := uint64(rng.Int63n(int64(c.NumRecords - n + 1)))
	hi := lo + n
	t := &txn.Txn{
		Ranges:   []txn.RangeOp{{Table: c.Table, Lo: lo, Hi: hi, Mode: txn.Read}},
		ReadOnly: c.Snapshot,
	}
	if !c.Snapshot {
		ops := make([]txn.Op, 0, n)
		for k := lo; k < hi; k++ {
			ops = append(ops, txn.Op{Table: c.Table, Key: k, Mode: txn.Read})
		}
		t.Ops = ops
	}
	t.Logic = func(ctx txn.Ctx) error {
		var sink uint64
		rows := 0
		err := ctx.Scan(c.Table, lo, hi, func(_ uint64, rec []byte) error {
			sink += getU64(rec)
			rows++
			return nil
		})
		if err != nil {
			return err
		}
		// Defeat dead-code elimination. The usual sink == ^uint64(0) guard
		// would misfire here: the concurrent write mix (Transfer) drives
		// record values through the full uint64 range, so any sum value is
		// reachable. rows < 0 is not.
		if rows < 0 {
			return fmt.Errorf("workload: impossible checksum %d", sink)
		}
		return nil
	}
	return t
}
