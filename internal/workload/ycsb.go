// Package workload generates the YCSB-style transaction mixes used
// throughout the paper's evaluation (§4.1-§4.3 and Appendix A):
//
//   - read-only transactions performing 10 reads;
//   - 10-RMW transactions performing 10 read-modify-writes;
//   - uniform key choice, or the hot/cold mix (2 records drawn from a
//     small "hot" set, 8 from the large "cold" remainder) that controls
//     contention;
//   - partition-locality constraints: unconstrained ("random"), exactly-k
//     partitions per transaction (Figure 6; "single" k=1 and "dual" k=2 in
//     Appendix A), and mixed single/multi workloads (Figure 7);
//   - a YCSB-E-style scan mix (ScanPct/MaxScanLen): a configurable
//     fraction of transactions become declared range scans served through
//     Ctx.Scan — an extension beyond the paper's point-access workloads.
//
// Hot ops are emitted before cold ops within each transaction, matching
// the paper's note that "locks on two hot records are acquired before
// locks on cold records".
package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/txn"
)

// Source produces transactions for worker threads. Implementations must be
// safe for concurrent calls with distinct rng values.
type Source interface {
	Next(thread int, rng *rand.Rand) *txn.Txn
}

// YCSB is the configurable generator.
type YCSB struct {
	// Table is the target table id.
	Table int
	// NumRecords is the table row count; keys are uniform over [0,NumRecords).
	NumRecords uint64
	// OpsPerTxn is the access count per transaction (paper: 10).
	OpsPerTxn int
	// ReadOnly selects 10-read transactions instead of 10-RMW. These
	// keep the paper's locking read path (Figures 1 and 11 measure
	// exactly the physical contention of lock-acquiring reads), unlike
	// ReadOnlyPct below.
	ReadOnly bool
	// ReadOnlyPct marks this percentage of point transactions
	// txn.Txn.ReadOnly: pure read bodies served from an MVCC snapshot on
	// engines whose table is versioned (Layout.Versioned) — zero locks,
	// zero CC messages. The Ops are still declared as reads so engines
	// without versioned tables run the same transaction on their
	// ordinary locking path, which is what the read-mostly benchmarks
	// compare against. Mutually exclusive with ReadOnly; range [0, 100].
	ReadOnlyPct int
	// HotRecords is the hot-set size; 0 means uniform (no hot set).
	// Hot keys are [HotStart, HotStart+HotRecords), cold keys are the
	// rest of the table.
	HotRecords uint64
	// HotStart offsets the hot window into the key space (default 0:
	// the paper's hot set at the head of the table). A non-stationary
	// workload is two YCSB phases differing only in HotStart — under a
	// range-partitioned key space the hot load physically moves between
	// logical partitions, which is what the elastic routing experiments
	// chase.
	HotStart uint64
	// HotOps is how many of the transaction's accesses hit the hot set
	// (paper: 2). Ignored when HotRecords is 0.
	HotOps int
	// ZipfTheta, when > 1, draws every key from a Zipfian distribution
	// with exponent ZipfTheta over [0, NumRecords) — popularity falls
	// off from key 0, so under a range partitioner the head concentrates
	// on the first logical partitions. Mutually exclusive with the
	// hot-set model (HotRecords) and partition constraints (Spread).
	// Values in (0, 1] are rejected: the sampler requires exponent > 1.
	ZipfTheta float64
	// Partitions is the engine's partition count (CC threads for ORTHRUS,
	// physical partitions for Partitioned-store). Required when Spread>0.
	Partitions int
	// Spread constrains each transaction's footprint to exactly Spread
	// distinct partitions. 0 leaves keys unconstrained ("random").
	Spread int
	// MultiPartitionPct, when Spread >= 2, makes only this percentage of
	// transactions span Spread partitions; the rest are single-partition
	// (Figure 7). 100 means every transaction spans Spread partitions.
	MultiPartitionPct int
	// WorkPerOp adds a busy loop of this many iterations per record access
	// to model record-processing cost beyond the raw memory touch.
	WorkPerOp int
	// ScanPct makes this percentage of transactions range scans (the
	// YCSB-E shape): each scan reads a contiguous key interval through
	// Ctx.Scan, with the interval declared as a RangeOp plus per-record
	// Read ops so planned engines lock it up front. The remaining
	// transactions keep the point-access shape above. Scans are
	// incompatible with Spread and ZipfTheta.
	ScanPct int
	// MaxScanLen bounds scan lengths: each scan draws its length
	// uniformly from [1, MaxScanLen] (the YCSB-E uniform scan-length
	// distribution). Required in [1, NumRecords] when ScanPct > 0.
	MaxScanLen int
}

// Validate checks configuration consistency.
func (c *YCSB) Validate() error {
	if c.OpsPerTxn <= 0 {
		return fmt.Errorf("workload: OpsPerTxn must be positive")
	}
	if c.NumRecords < uint64(c.OpsPerTxn) {
		return fmt.Errorf("workload: NumRecords %d < OpsPerTxn %d", c.NumRecords, c.OpsPerTxn)
	}
	if c.HotRecords > c.NumRecords {
		return fmt.Errorf("workload: HotRecords %d > NumRecords %d", c.HotRecords, c.NumRecords)
	}
	if c.HotStart+c.HotRecords > c.NumRecords {
		return fmt.Errorf("workload: hot window [%d,%d) exceeds NumRecords %d",
			c.HotStart, c.HotStart+c.HotRecords, c.NumRecords)
	}
	if c.HotRecords > 0 && c.HotOps > c.OpsPerTxn {
		return fmt.Errorf("workload: HotOps %d > OpsPerTxn %d", c.HotOps, c.OpsPerTxn)
	}
	if c.ZipfTheta != 0 {
		if c.ZipfTheta <= 1 {
			return fmt.Errorf("workload: ZipfTheta %v must be > 1 (or 0 to disable)", c.ZipfTheta)
		}
		if c.HotRecords > 0 {
			return fmt.Errorf("workload: ZipfTheta and HotRecords are mutually exclusive")
		}
		if c.Spread > 0 {
			return fmt.Errorf("workload: ZipfTheta does not support partition constraints (Spread)")
		}
	}
	if c.ReadOnlyPct < 0 || c.ReadOnlyPct > 100 {
		return fmt.Errorf("workload: ReadOnlyPct %d out of range [0, 100]", c.ReadOnlyPct)
	}
	if c.ReadOnlyPct > 0 && c.ReadOnly {
		return fmt.Errorf("workload: ReadOnly and ReadOnlyPct are mutually exclusive (ReadOnly keeps the locking read path)")
	}
	if c.ScanPct < 0 || c.ScanPct > 100 {
		return fmt.Errorf("workload: ScanPct %d out of range [0, 100]", c.ScanPct)
	}
	if c.ScanPct > 0 {
		if c.MaxScanLen < 1 || uint64(c.MaxScanLen) > c.NumRecords {
			return fmt.Errorf("workload: MaxScanLen %d out of range [1, NumRecords=%d]", c.MaxScanLen, c.NumRecords)
		}
		if c.Spread > 0 {
			return fmt.Errorf("workload: ScanPct does not support partition constraints (Spread)")
		}
		if c.ZipfTheta != 0 {
			return fmt.Errorf("workload: ScanPct and ZipfTheta are mutually exclusive")
		}
	} else if c.MaxScanLen != 0 {
		return fmt.Errorf("workload: MaxScanLen %d set without ScanPct", c.MaxScanLen)
	}
	if c.Spread > 0 {
		if c.Partitions <= 0 {
			return fmt.Errorf("workload: Spread set but Partitions is 0")
		}
		if c.Spread > c.Partitions {
			return fmt.Errorf("workload: Spread %d > Partitions %d", c.Spread, c.Partitions)
		}
		if c.Spread > c.OpsPerTxn {
			return fmt.Errorf("workload: Spread %d > OpsPerTxn %d", c.Spread, c.OpsPerTxn)
		}
		if c.MultiPartitionPct < 0 || c.MultiPartitionPct > 100 {
			return fmt.Errorf("workload: MultiPartitionPct %d out of range", c.MultiPartitionPct)
		}
	}
	return nil
}

// ycsbTxn is the pooled carrier for one point-access YCSB transaction:
// the Txn, the op/seen-key/partition scratch the generator fills, and the
// generator pointer the logic needs all live in one recycled allocation.
// Logic and Free are method values bound once at pool creation, so a
// steady-state Next performs zero allocations. Scan and Zipf transactions
// are not pooled (their shapes vary and their rates are low); they keep
// the allocating path with Free nil.
type ycsbTxn struct {
	txn.Txn
	src  *YCSB
	ops  []txn.Op // backing array for Ops, capacity kept across lives
	seen []uint64 // distinct-key scratch
}

var ycsbPool sync.Pool

func init() {
	// Assigned in init, not a composite literal: New references methods
	// that reference the pool back (an initialization cycle at package
	// scope).
	ycsbPool.New = func() interface{} {
		t := &ycsbTxn{}
		t.Logic = t.run
		t.Free = t.free
		return t
	}
}

// run is the RMW/read body, identical to YCSB.logic but reading its
// parameters from the container instead of a per-transaction closure.
func (t *ycsbTxn) run(ctx txn.Ctx) error {
	work := t.src.WorkPerOp
	var sink uint64
	for _, op := range t.Ops {
		if op.Mode == txn.Read {
			rec, err := ctx.Read(op.Table, op.Key)
			if err != nil {
				return err
			}
			sink += getU64(rec)
		} else {
			rec, err := ctx.Write(op.Table, op.Key)
			if err != nil {
				return err
			}
			putU64(rec, getU64(rec)+1)
		}
		for i := 0; i < work; i++ {
			sink += uint64(i)
		}
	}
	if sink == ^uint64(0) { // defeat dead-code elimination
		return fmt.Errorf("workload: impossible checksum")
	}
	return nil
}

// free implements txn.Txn.Free: the engine has already run the completion
// callback and every other observer, so the container can be recycled.
//
//orthrus:recycle engine calls Free exactly once, after the last observer of the transaction
func (t *ycsbTxn) free() {
	t.ID = 0
	t.Restarts = 0
	t.ReadOnly = false
	t.Partitions = t.Partitions[:0]
	t.ResetScratch()
	ycsbPool.Put(t)
}

// Next implements Source.
func (c *YCSB) Next(_ int, rng *rand.Rand) *txn.Txn {
	mode := txn.Write
	if c.ReadOnly {
		mode = txn.Read
	}

	if c.ScanPct > 0 && rng.Intn(100) < c.ScanPct {
		return c.scanTxn(rng)
	}

	// A ReadOnlyPct draw flips the whole transaction to pure reads and
	// flags it for the snapshot path (locking fallback keeps the Ops).
	snapshot := c.ReadOnlyPct > 0 && rng.Intn(100) < c.ReadOnlyPct
	if snapshot {
		mode = txn.Read
	}

	if c.ZipfTheta > 1 {
		t := &txn.Txn{Ops: c.zipfOps(rng, mode), ReadOnly: snapshot}
		t.Logic = c.logic(t)
		return t
	}

	spread := c.Spread
	if spread >= 2 && c.MultiPartitionPct < 100 && rng.Intn(100) >= c.MultiPartitionPct {
		spread = 1
	}

	t := ycsbPool.Get().(*ycsbTxn)
	t.src = c
	t.ReadOnly = snapshot

	var parts []int
	if spread > 0 {
		t.Partitions = pickDistinctInts(t.Partitions[:0], rng, spread, c.Partitions)
		parts = t.Partitions
	}

	hotOps := 0
	if c.HotRecords > 0 {
		hotOps = c.HotOps
	}

	ops := t.ops[:0]
	seen := t.seen[:0]
	for i := 0; i < c.OpsPerTxn; i++ {
		var part = -1
		if parts != nil {
			part = parts[i%len(parts)]
		}
		var key uint64
		var ok bool
		if i < hotOps {
			key, ok = c.pickKey(rng, part, c.HotStart, c.HotStart+c.HotRecords, seen)
			if !ok {
				// Partition-constrained hot pick exhausted (tiny hot set
				// split across many partitions): fall back to this
				// partition's cold keys so the transaction still has
				// OpsPerTxn distinct keys.
				key, ok = c.pickCold(rng, part, seen)
			}
		} else {
			key, ok = c.pickCold(rng, part, seen)
		}
		if !ok {
			// Cold keys within the partition exhausted (only plausible in
			// tiny test tables): widen to any partition.
			key, _ = c.pickKey(rng, -1, 0, c.NumRecords, seen)
		}
		seen = append(seen, key)
		ops = append(ops, txn.Op{Table: c.Table, Key: key, Mode: mode})
	}
	t.ops, t.seen = ops, seen
	t.Ops = ops
	return &t.Txn
}

// scanTxn builds one YCSB-E range scan: a uniform start key, a length
// uniform in [1, MaxScanLen], read through Ctx.Scan. The interval is
// declared both as a RangeOp (stripe/partition protection) and as
// per-record Read ops, so planned engines pay the honest cost of locking
// every scanned record up front.
func (c *YCSB) scanTxn(rng *rand.Rand) *txn.Txn {
	n := uint64(1 + rng.Intn(c.MaxScanLen))
	lo := uint64(rng.Int63n(int64(c.NumRecords - n + 1)))
	hi := lo + n
	ops := make([]txn.Op, 0, n)
	for k := lo; k < hi; k++ {
		ops = append(ops, txn.Op{Table: c.Table, Key: k, Mode: txn.Read})
	}
	t := &txn.Txn{
		Ops:    ops,
		Ranges: []txn.RangeOp{{Table: c.Table, Lo: lo, Hi: hi, Mode: txn.Read}},
	}
	work := c.WorkPerOp
	t.Logic = func(ctx txn.Ctx) error {
		var sink uint64
		err := ctx.Scan(c.Table, lo, hi, func(_ uint64, rec []byte) error {
			sink += getU64(rec)
			for i := 0; i < work; i++ {
				sink += uint64(i)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if sink == ^uint64(0) { // defeat dead-code elimination
			return fmt.Errorf("workload: impossible checksum")
		}
		return nil
	}
	return t
}

// pickCold draws a key outside the hot window [HotStart,
// HotStart+HotRecords), choosing between the two cold segments flanking
// it in proportion to their sizes, falling back to the other segment
// when the first comes up empty.
func (c *YCSB) pickCold(rng *rand.Rand, part int, seen []uint64) (uint64, bool) {
	hotLo, hotHi := c.HotStart, c.HotStart+c.HotRecords
	s1, s2 := hotLo, c.NumRecords-hotHi
	if s1 > 0 && (s2 == 0 || uint64(rng.Int63n(int64(s1+s2))) < s1) {
		if key, ok := c.pickKey(rng, part, 0, hotLo, seen); ok {
			return key, true
		}
		return c.pickKey(rng, part, hotHi, c.NumRecords, seen)
	}
	if key, ok := c.pickKey(rng, part, hotHi, c.NumRecords, seen); ok {
		return key, true
	}
	return c.pickKey(rng, part, 0, hotLo, seen)
}

// zipfOps draws OpsPerTxn distinct keys from the Zipfian distribution
// (shared sampler with the standalone Zipf source). Popularity decreases
// from key 0, so the head of the key space is the contention (and, under
// a range partitioner, partition-load) hot spot.
func (c *YCSB) zipfOps(rng *rand.Rand, mode txn.Mode) []txn.Op {
	ops := make([]txn.Op, 0, c.OpsPerTxn)
	for _, key := range zipfKeys(rng, c.ZipfTheta, c.NumRecords, c.OpsPerTxn) {
		ops = append(ops, txn.Op{Table: c.Table, Key: key, Mode: mode})
	}
	return ops
}

// pickKey draws a key from [lo,hi) not already in seen; when part >= 0 the
// key must live in that partition (key mod Partitions == part).
func (c *YCSB) pickKey(rng *rand.Rand, part int, lo, hi uint64, seen []uint64) (uint64, bool) {
	if hi <= lo {
		return 0, false
	}
	var n, base, stride uint64
	if part < 0 {
		base, stride = lo, 1
		n = hi - lo
	} else {
		stride = uint64(c.Partitions)
		p := uint64(part)
		// First key >= lo congruent to part.
		base = lo + ((p + stride - lo%stride) % stride)
		if base >= hi {
			return 0, false
		}
		n = (hi - base + stride - 1) / stride
	}
	// Random probes, then a deterministic sweep if the candidate space is
	// nearly exhausted by seen keys.
	for try := 0; try < 16; try++ {
		key := base + uint64(rng.Int63n(int64(n)))*stride
		if !contains(seen, key) {
			return key, true
		}
	}
	start := uint64(rng.Int63n(int64(n)))
	for i := uint64(0); i < n; i++ {
		key := base + ((start+i)%n)*stride
		if !contains(seen, key) {
			return key, true
		}
	}
	return 0, false
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// pickDistinctInts appends k distinct values from [0, n) to buf (which may
// carry reusable capacity from a pooled container) and returns the result.
func pickDistinctInts(buf []int, rng *rand.Rand, k, n int) []int {
	if k >= n {
		out := buf
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
	out := buf
	for len(out) < k {
		v := rng.Intn(n)
		dup := false
		for _, x := range out {
			if x == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// logic returns the transaction body: reads checksum the first word of the
// record; RMWs additionally increment a counter in the record, so every
// committed RMW is observable (used by the serializability tests).
func (c *YCSB) logic(t *txn.Txn) txn.Logic {
	work := c.WorkPerOp
	return func(ctx txn.Ctx) error {
		var sink uint64
		for _, op := range t.Ops {
			if op.Mode == txn.Read {
				rec, err := ctx.Read(op.Table, op.Key)
				if err != nil {
					return err
				}
				sink += getU64(rec)
			} else {
				rec, err := ctx.Write(op.Table, op.Key)
				if err != nil {
					return err
				}
				putU64(rec, getU64(rec)+1)
			}
			for i := 0; i < work; i++ {
				sink += uint64(i)
			}
		}
		if sink == ^uint64(0) { // defeat dead-code elimination
			return fmt.Errorf("workload: impossible checksum")
		}
		return nil
	}
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
