package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/txn"
)

// Mixed generates transactions whose operations are individually reads or
// read-modify-writes with a configurable ratio — the standard YCSB
// workload mixes (A: 50/50, B: 95/5, C: 100/0). The paper's appendix uses
// the pure endpoints (read-only and 10RMW); Mixed covers the interior so
// shared-lock/exclusive-lock interaction is exercised too.
type Mixed struct {
	Table      int
	NumRecords uint64
	OpsPerTxn  int
	// ReadPct is the per-operation probability (0..100) of a read.
	ReadPct int
	// HotRecords / HotOps as in YCSB.
	HotRecords uint64
	HotOps     int
}

// YCSBA returns the YCSB-A mix (50% reads, 50% updates).
func YCSBA(table int, records uint64) *Mixed {
	return &Mixed{Table: table, NumRecords: records, OpsPerTxn: 10, ReadPct: 50}
}

// YCSBB returns the YCSB-B mix (95% reads).
func YCSBB(table int, records uint64) *Mixed {
	return &Mixed{Table: table, NumRecords: records, OpsPerTxn: 10, ReadPct: 95}
}

// YCSBC returns the YCSB-C mix (read-only).
func YCSBC(table int, records uint64) *Mixed {
	return &Mixed{Table: table, NumRecords: records, OpsPerTxn: 10, ReadPct: 100}
}

// Validate checks configuration consistency.
func (c *Mixed) Validate() error {
	if c.OpsPerTxn <= 0 || c.NumRecords < uint64(c.OpsPerTxn) {
		return fmt.Errorf("workload: bad Mixed size (%d ops, %d records)", c.OpsPerTxn, c.NumRecords)
	}
	if c.ReadPct < 0 || c.ReadPct > 100 {
		return fmt.Errorf("workload: ReadPct %d out of range", c.ReadPct)
	}
	if c.HotRecords > c.NumRecords || (c.HotRecords > 0 && c.HotOps > c.OpsPerTxn) {
		return fmt.Errorf("workload: bad hot-set configuration")
	}
	return nil
}

// Next implements Source.
func (c *Mixed) Next(_ int, rng *rand.Rand) *txn.Txn {
	hotOps := 0
	if c.HotRecords > 0 {
		hotOps = c.HotOps
	}
	ops := make([]txn.Op, 0, c.OpsPerTxn)
	seen := make([]uint64, 0, c.OpsPerTxn)
	for i := 0; i < c.OpsPerTxn; i++ {
		lo, hi := c.HotRecords, c.NumRecords
		if i < hotOps {
			lo, hi = 0, c.HotRecords
		}
		var key uint64
		for {
			key = lo + uint64(rng.Int63n(int64(hi-lo)))
			if !contains(seen, key) {
				break
			}
		}
		seen = append(seen, key)
		mode := txn.Write
		if rng.Intn(100) < c.ReadPct {
			mode = txn.Read
		}
		ops = append(ops, txn.Op{Table: c.Table, Key: key, Mode: mode})
	}
	t := &txn.Txn{Ops: ops}
	t.Logic = func(ctx txn.Ctx) error {
		var sink uint64
		for _, op := range t.Ops {
			if op.Mode == txn.Read {
				rec, err := ctx.Read(op.Table, op.Key)
				if err != nil {
					return err
				}
				sink += getU64(rec)
			} else {
				rec, err := ctx.Write(op.Table, op.Key)
				if err != nil {
					return err
				}
				putU64(rec, getU64(rec)+1)
			}
		}
		if sink == ^uint64(0) {
			return fmt.Errorf("workload: impossible checksum")
		}
		return nil
	}
	return t
}
