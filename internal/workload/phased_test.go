package workload

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
)

// markerSource tags every transaction with a fixed key so tests can tell
// which phase produced it.
type markerSource struct{ key uint64 }

func (s *markerSource) Next(int, *rand.Rand) *txn.Txn {
	return &txn.Txn{Ops: []txn.Op{{Key: s.key, Mode: txn.Write}}}
}

func TestPhasedValidate(t *testing.T) {
	ok := &Phased{Phases: []Phase{
		{Src: &markerSource{1}, For: time.Millisecond},
		{Src: &markerSource{2}}, // open-ended tail
	}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Phased{
		{},
		{Phases: []Phase{{Src: nil, For: time.Millisecond}}},
		{Phases: []Phase{{Src: &markerSource{1}}, {Src: &markerSource{2}}}}, // non-final open-ended
		{Phases: []Phase{ // inner Validate propagates
			{Src: &YCSB{NumRecords: 5, OpsPerTxn: 10}, For: time.Millisecond},
			{Src: &markerSource{2}},
		}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestPhasedSwitchesOnSchedule(t *testing.T) {
	p := &Phased{Phases: []Phase{
		{Src: &markerSource{1}, For: 40 * time.Millisecond},
		{Src: &markerSource{2}, For: 40 * time.Millisecond},
		{Src: &markerSource{3}},
	}}
	rng := newRand()
	if got := p.Next(0, rng).Ops[0].Key; got != 1 {
		t.Fatalf("first phase emitted key %d", got)
	}
	if e := p.Elapsed(); e <= 0 || e > time.Second {
		t.Fatalf("Elapsed = %v after first Next", e)
	}
	time.Sleep(50 * time.Millisecond)
	if got := p.Next(0, rng).Ops[0].Key; got != 2 {
		t.Fatalf("second phase emitted key %d", got)
	}
	time.Sleep(40 * time.Millisecond)
	if got := p.Next(0, rng).Ops[0].Key; got != 3 {
		t.Fatalf("final phase emitted key %d", got)
	}
	// The final phase is open-ended.
	if got := p.Next(0, rng).Ops[0].Key; got != 3 {
		t.Fatalf("final phase did not persist, key %d", got)
	}
}

// Concurrent first calls must agree on a single start time (run with
// -race to check the CAS handshake).
func TestPhasedConcurrentStart(t *testing.T) {
	p := &Phased{Phases: []Phase{
		{Src: &markerSource{1}, For: time.Hour},
		{Src: &markerSource{2}},
	}}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < 100; j++ {
				if got := p.Next(i, rng).Ops[0].Key; got != 1 {
					t.Errorf("phase escaped: key %d", got)
				}
			}
		}(i)
	}
	wg.Wait()
}
