package workload

import (
	"math/rand"
	"testing"

	"repro/internal/txn"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestValidate(t *testing.T) {
	good := YCSB{NumRecords: 1000, OpsPerTxn: 10, HotRecords: 64, HotOps: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []YCSB{
		{NumRecords: 1000, OpsPerTxn: 0},
		{NumRecords: 5, OpsPerTxn: 10},
		{NumRecords: 100, OpsPerTxn: 10, HotRecords: 200},
		{NumRecords: 100, OpsPerTxn: 10, HotRecords: 64, HotOps: 11},
		{NumRecords: 100, OpsPerTxn: 10, Spread: 2},                                        // no partitions
		{NumRecords: 100, OpsPerTxn: 10, Spread: 5, Partitions: 4},                         // spread > partitions
		{NumRecords: 100, OpsPerTxn: 10, Spread: 11, Partitions: 16},                       // spread > ops
		{NumRecords: 100, OpsPerTxn: 10, Spread: 2, Partitions: 4, MultiPartitionPct: 101}, // pct range
		{NumRecords: 100, OpsPerTxn: 10, Spread: 2, Partitions: 4, MultiPartitionPct: -1},  // pct range
		{NumRecords: 100, OpsPerTxn: 10, HotRecords: 64, HotStart: 50},                     // hot window past the end
		{NumRecords: 100, OpsPerTxn: 10, ZipfTheta: 0.9},                                   // zipf exponent must be > 1
		{NumRecords: 100, OpsPerTxn: 10, ZipfTheta: -1},                                    // zipf exponent must be > 1
		{NumRecords: 100, OpsPerTxn: 10, ZipfTheta: 1.2, HotRecords: 8},                    // zipf xor hot set
		{NumRecords: 100, OpsPerTxn: 10, ZipfTheta: 1.2, Spread: 2, Partitions: 4},         // zipf xor spread
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
}

func TestDistinctKeysAndOpCount(t *testing.T) {
	c := &YCSB{NumRecords: 10000, OpsPerTxn: 10, HotRecords: 64, HotOps: 2}
	rng := newRand()
	for i := 0; i < 200; i++ {
		tx := c.Next(0, rng)
		if len(tx.Ops) != 10 {
			t.Fatalf("ops = %d", len(tx.Ops))
		}
		seen := map[uint64]bool{}
		for _, op := range tx.Ops {
			if seen[op.Key] {
				t.Fatalf("duplicate key %d in %v", op.Key, tx.Ops)
			}
			seen[op.Key] = true
		}
	}
}

func TestHotColdSplitAndOrder(t *testing.T) {
	c := &YCSB{NumRecords: 10000, OpsPerTxn: 10, HotRecords: 64, HotOps: 2}
	rng := newRand()
	for i := 0; i < 200; i++ {
		tx := c.Next(0, rng)
		for j, op := range tx.Ops {
			hot := op.Key < 64
			if j < 2 && !hot {
				t.Fatalf("op %d should be hot, key=%d", j, op.Key)
			}
			if j >= 2 && hot {
				t.Fatalf("op %d should be cold, key=%d", j, op.Key)
			}
		}
	}
}

func TestHotStartMovesWindow(t *testing.T) {
	const start, size = 5000, 64
	c := &YCSB{NumRecords: 10000, OpsPerTxn: 10, HotRecords: size, HotStart: start, HotOps: 2}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := newRand()
	for i := 0; i < 300; i++ {
		tx := c.Next(0, rng)
		for j, op := range tx.Ops {
			inWindow := op.Key >= start && op.Key < start+size
			if j < 2 && !inWindow {
				t.Fatalf("hot op %d outside window: key=%d", j, op.Key)
			}
			if j >= 2 && inWindow {
				t.Fatalf("cold op %d landed in hot window: key=%d", j, op.Key)
			}
		}
	}
	// Cold keys must come from both flanks of the window, roughly in
	// proportion to their sizes (the flanks are ~equal here).
	below, above := 0, 0
	for i := 0; i < 500; i++ {
		for _, op := range c.Next(0, rng).Ops[2:] {
			if op.Key < start {
				below++
			} else {
				above++
			}
		}
	}
	if below == 0 || above == 0 {
		t.Fatalf("cold picks ignore a flank: below=%d above=%d", below, above)
	}
	if ratio := float64(below) / float64(above); ratio < 0.5 || ratio > 2 {
		t.Fatalf("cold flank proportion off: below=%d above=%d", below, above)
	}
}

func TestYCSBZipfSkewAndDistinctness(t *testing.T) {
	c := &YCSB{NumRecords: 100000, OpsPerTxn: 10, ZipfTheta: 1.3}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := newRand()
	head, tail := 0, 0
	for i := 0; i < 500; i++ {
		tx := c.Next(0, rng)
		if len(tx.Ops) != 10 {
			t.Fatalf("ops = %d", len(tx.Ops))
		}
		seen := map[uint64]bool{}
		for _, op := range tx.Ops {
			if seen[op.Key] {
				t.Fatalf("duplicate zipf key %d", op.Key)
			}
			seen[op.Key] = true
			if op.Key >= c.NumRecords {
				t.Fatalf("key %d out of range", op.Key)
			}
			if op.Key < c.NumRecords/100 {
				head++
			} else {
				tail++
			}
		}
	}
	// Zipf(1.3) concentrates far more than 1% of draws on the first 1%
	// of the key space; uniform would put ~50 of 5000 there.
	if head < tail {
		t.Fatalf("no zipf skew: head=%d tail=%d", head, tail)
	}
}

func TestReadOnlyModes(t *testing.T) {
	rng := newRand()
	ro := &YCSB{NumRecords: 1000, OpsPerTxn: 10, ReadOnly: true}
	for _, op := range ro.Next(0, rng).Ops {
		if op.Mode != txn.Read {
			t.Fatal("read-only txn has write op")
		}
	}
	rw := &YCSB{NumRecords: 1000, OpsPerTxn: 10}
	for _, op := range rw.Next(0, rng).Ops {
		if op.Mode != txn.Write {
			t.Fatal("RMW txn has read op")
		}
	}
}

func TestSpreadConstraint(t *testing.T) {
	const P = 16
	pf := txn.HashPartitioner(P)
	for _, spread := range []int{1, 2, 4, 6, 8, 10} {
		c := &YCSB{NumRecords: 100000, OpsPerTxn: 10, Partitions: P, Spread: spread, MultiPartitionPct: 100}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		rng := newRand()
		for i := 0; i < 100; i++ {
			tx := c.Next(0, rng)
			parts := map[int]bool{}
			for _, op := range tx.Ops {
				parts[pf(op.Table, op.Key)] = true
			}
			if len(parts) != spread {
				t.Fatalf("spread=%d produced %d partitions: %v", spread, len(parts), tx.Ops)
			}
			// Declared partition set must match the actual footprint.
			if len(tx.Partitions) != spread {
				t.Fatalf("Partitions field = %v, want %d entries", tx.Partitions, spread)
			}
		}
	}
}

func TestMultiPartitionPctMix(t *testing.T) {
	const P = 8
	pf := txn.HashPartitioner(P)
	c := &YCSB{NumRecords: 100000, OpsPerTxn: 10, Partitions: P, Spread: 2, MultiPartitionPct: 50}
	rng := newRand()
	single, dual := 0, 0
	for i := 0; i < 2000; i++ {
		tx := c.Next(0, rng)
		parts := map[int]bool{}
		for _, op := range tx.Ops {
			parts[pf(op.Table, op.Key)] = true
		}
		switch len(parts) {
		case 1:
			single++
		case 2:
			dual++
		default:
			t.Fatalf("txn spans %d partitions", len(parts))
		}
	}
	if single < 800 || dual < 800 {
		t.Fatalf("mix skewed: single=%d dual=%d", single, dual)
	}
}

func TestHotKeysRespectPartitionConstraint(t *testing.T) {
	// Hot set 64 over 16 partitions leaves 4 hot keys per partition; a
	// single-partition txn's hot ops must come from its own partition.
	const P = 16
	pf := txn.HashPartitioner(P)
	c := &YCSB{NumRecords: 100000, OpsPerTxn: 10, HotRecords: 64, HotOps: 2, Partitions: P, Spread: 1, MultiPartitionPct: 100}
	rng := newRand()
	for i := 0; i < 300; i++ {
		tx := c.Next(0, rng)
		home := pf(0, tx.Ops[0].Key)
		for _, op := range tx.Ops {
			if pf(op.Table, op.Key) != home {
				t.Fatalf("key %d escapes partition %d", op.Key, home)
			}
		}
		if tx.Ops[0].Key >= 64 || tx.Ops[1].Key >= 64 {
			t.Fatalf("hot ops not hot: %v", tx.Ops[:2])
		}
	}
}

func TestHotFallbackWhenHotSetTooSmall(t *testing.T) {
	// 1 hot key per partition: the second hot op cannot stay hot and must
	// fall back to the cold range rather than spin or duplicate.
	const P = 64
	c := &YCSB{NumRecords: 100000, OpsPerTxn: 10, HotRecords: 64, HotOps: 2, Partitions: P, Spread: 1, MultiPartitionPct: 100}
	rng := newRand()
	for i := 0; i < 100; i++ {
		tx := c.Next(0, rng)
		seen := map[uint64]bool{}
		for _, op := range tx.Ops {
			if seen[op.Key] {
				t.Fatalf("duplicate key %d", op.Key)
			}
			seen[op.Key] = true
		}
	}
}

func TestLogicRunsAgainstCtx(t *testing.T) {
	c := &YCSB{NumRecords: 100, OpsPerTxn: 4, HotRecords: 8, HotOps: 2, WorkPerOp: 3}
	rng := newRand()
	tx := c.Next(0, rng)
	ctx := &fakeCtx{store: map[uint64][]byte{}}
	if err := tx.Logic(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.writes != 4 {
		t.Fatalf("writes = %d", ctx.writes)
	}
	for _, op := range tx.Ops {
		if getU64(ctx.store[op.Key]) != 1 {
			t.Fatalf("key %d not incremented", op.Key)
		}
	}
}

type fakeCtx struct {
	store  map[uint64][]byte
	reads  int
	writes int
	scans  int
}

func (f *fakeCtx) rec(key uint64) []byte {
	if f.store[key] == nil {
		f.store[key] = make([]byte, 8)
	}
	return f.store[key]
}

func (f *fakeCtx) Read(_ int, key uint64) ([]byte, error) {
	f.reads++
	return f.rec(key), nil
}

func (f *fakeCtx) Write(_ int, key uint64) ([]byte, error) {
	f.writes++
	return f.rec(key), nil
}

func (f *fakeCtx) Insert(_ int, key uint64, v []byte) error {
	f.store[key] = append([]byte(nil), v...)
	return nil
}

func (f *fakeCtx) Scan(_ int, lo, hi uint64, fn func(key uint64, rec []byte) error) error {
	f.scans++
	for key := lo; key < hi; key++ {
		f.reads++
		if err := fn(key, f.rec(key)); err != nil {
			return err
		}
	}
	return nil
}

func TestTransferConservesSumUnderFakeCtx(t *testing.T) {
	c := &Transfer{NumRecords: 16}
	rng := newRand()
	ctx := &fakeCtx{store: map[uint64][]byte{}}
	for i := uint64(0); i < 16; i++ {
		putU64(ctx.rec(i), 100)
	}
	for i := 0; i < 500; i++ {
		tx := c.Next(0, rng)
		if tx.Ops[0].Key == tx.Ops[1].Key {
			t.Fatal("transfer src == dst")
		}
		if err := tx.Logic(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var sum uint64
	for i := uint64(0); i < 16; i++ {
		sum += getU64(ctx.rec(i))
	}
	if sum != 1600 {
		t.Fatalf("sum = %d, want 1600", sum)
	}
}

func TestZipfDistinctKeys(t *testing.T) {
	c := &Zipf{NumRecords: 1000, OpsPerTxn: 10, Theta: 1.3}
	rng := newRand()
	for i := 0; i < 100; i++ {
		tx := c.Next(0, rng)
		if len(tx.Ops) != 10 {
			t.Fatalf("ops = %d", len(tx.Ops))
		}
		seen := map[uint64]bool{}
		for _, op := range tx.Ops {
			if seen[op.Key] {
				t.Fatal("duplicate zipf key")
			}
			seen[op.Key] = true
		}
	}
}

func TestPartitionSetDerivation(t *testing.T) {
	pf := txn.HashPartitioner(4)
	tx := &txn.Txn{Ops: []txn.Op{{Key: 0}, {Key: 5}, {Key: 4}, {Key: 2}}}
	got := tx.PartitionSet(pf)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("PartitionSet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PartitionSet = %v, want %v", got, want)
		}
	}
}

// --- YCSB-E scan mix ------------------------------------------------------

func TestScanKnobValidation(t *testing.T) {
	bad := []*YCSB{
		{NumRecords: 1000, OpsPerTxn: 10, ScanPct: -1, MaxScanLen: 10},
		{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 101, MaxScanLen: 10},
		{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 50},                   // no MaxScanLen
		{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 50, MaxScanLen: 1001}, // > NumRecords
		{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 50, MaxScanLen: -3},   // negative
		{NumRecords: 1000, OpsPerTxn: 10, MaxScanLen: 10},                // MaxScanLen without ScanPct
		{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 50, MaxScanLen: 10, Spread: 2, Partitions: 4},
		{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 50, MaxScanLen: 10, ZipfTheta: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	ok := &YCSB{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 95, MaxScanLen: 100}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanTxnShape(t *testing.T) {
	c := &YCSB{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 100, MaxScanLen: 50}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := newRand()
	for i := 0; i < 200; i++ {
		tx := c.Next(0, rng)
		if len(tx.Ranges) != 1 {
			t.Fatalf("ranges = %v", tx.Ranges)
		}
		r := tx.Ranges[0]
		n := r.Hi - r.Lo
		if n < 1 || n > 50 || r.Hi > 1000 || r.Mode != txn.Read {
			t.Fatalf("bad range %v", r)
		}
		// Every scanned key is individually declared for planned engines.
		if uint64(len(tx.Ops)) != n {
			t.Fatalf("ops %d != range width %d", len(tx.Ops), n)
		}
		for j, op := range tx.Ops {
			if op.Key != r.Lo+uint64(j) || op.Mode != txn.Read {
				t.Fatalf("op %d = %v, range %v", j, op, r)
			}
		}
	}
}

func TestScanFractionRoughlyHonored(t *testing.T) {
	c := &YCSB{NumRecords: 1000, OpsPerTxn: 10, ScanPct: 30, MaxScanLen: 5}
	rng := newRand()
	scans := 0
	for i := 0; i < 1000; i++ {
		if len(c.Next(0, rng).Ranges) > 0 {
			scans++
		}
	}
	if scans < 200 || scans > 400 {
		t.Fatalf("scan fraction = %d/1000, want ~300", scans)
	}
}

func TestScanLogicSumsRange(t *testing.T) {
	c := &YCSB{NumRecords: 100, OpsPerTxn: 4, ScanPct: 100, MaxScanLen: 8, WorkPerOp: 2}
	rng := newRand()
	tx := c.Next(0, rng)
	ctx := &fakeCtx{store: map[uint64][]byte{}}
	if err := tx.Logic(ctx); err != nil {
		t.Fatal(err)
	}
	r := tx.Ranges[0]
	if ctx.scans != 1 || uint64(ctx.reads) != r.Hi-r.Lo {
		t.Fatalf("scans=%d reads=%d range=%v", ctx.scans, ctx.reads, r)
	}
}

func TestReadOnlyPctValidation(t *testing.T) {
	bad := []*YCSB{
		{NumRecords: 1000, OpsPerTxn: 10, ReadOnlyPct: -1},
		{NumRecords: 1000, OpsPerTxn: 10, ReadOnlyPct: 101},
		{NumRecords: 1000, OpsPerTxn: 10, ReadOnlyPct: 50, ReadOnly: true}, // mutually exclusive
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	ok := &YCSB{NumRecords: 1000, OpsPerTxn: 10, ReadOnlyPct: 95, HotRecords: 64, HotOps: 2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyPctFlagsAndDeclares(t *testing.T) {
	c := &YCSB{NumRecords: 1000, OpsPerTxn: 10, ReadOnlyPct: 50}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := newRand()
	flagged := 0
	for i := 0; i < 1000; i++ {
		tx := c.Next(0, rng)
		if !tx.ReadOnly {
			continue
		}
		flagged++
		// Snapshot-flagged transactions still declare their reads so
		// engines without a versioned table can fall back to locking.
		if len(tx.Ops) != 10 {
			t.Fatalf("read-only txn declares %d ops", len(tx.Ops))
		}
		for _, op := range tx.Ops {
			if op.Mode != txn.Read {
				t.Fatalf("read-only txn declares %v", op)
			}
		}
	}
	if flagged < 400 || flagged > 600 {
		t.Fatalf("flagged fraction = %d/1000, want ~500", flagged)
	}
	// Legacy ReadOnly keeps the locking path: never flagged.
	legacy := &YCSB{NumRecords: 1000, OpsPerTxn: 10, ReadOnly: true}
	for i := 0; i < 50; i++ {
		if legacy.Next(0, rng).ReadOnly {
			t.Fatal("YCSB.ReadOnly flagged a snapshot transaction")
		}
	}
}

func TestAnalyticsValidateAndShape(t *testing.T) {
	for i, bad := range []*Analytics{
		{NumRecords: 100, ScanLen: 0},
		{NumRecords: 100, ScanLen: 101},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, bad)
		}
	}
	rng := newRand()
	snap := &Analytics{NumRecords: 100, ScanLen: 10, Snapshot: true}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	tx := snap.Next(0, rng)
	if !tx.ReadOnly || len(tx.Ops) != 0 || len(tx.Ranges) != 1 {
		t.Fatalf("snapshot scan shape: ReadOnly=%v ops=%d ranges=%d", tx.ReadOnly, len(tx.Ops), len(tx.Ranges))
	}
	lock := &Analytics{NumRecords: 100, ScanLen: 10}
	tx = lock.Next(0, rng)
	r := tx.Ranges[0]
	if tx.ReadOnly || uint64(len(tx.Ops)) != r.Hi-r.Lo || r.Hi > 100 {
		t.Fatalf("locking scan shape: ReadOnly=%v ops=%d range=%v", tx.ReadOnly, len(tx.Ops), r)
	}
}
