package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/txn"
)

// Phased is a non-stationary source: it plays a sequence of phases, each
// an inner Source served for a wall-clock duration, switching when the
// phase's time is up. The clock starts at the first Next call, so a
// Phased composed before a run measures phases from the run's first
// transaction. The last phase runs until the caller stops asking.
//
// This is the workload shape the elastic CC plane exists for: a hot set
// (or Zipfian head) that moves mid-run shifts lock-space load between
// logical partitions, and a static partition → CC-thread mapping is
// stuck with wherever the load landed at Start.
//
// Phased is safe for concurrent Next calls (the paper's closed-loop
// drivers call it from many client goroutines); phase selection is a
// single atomic load off a monotonic clock.
type Phased struct {
	Phases []Phase
	start  atomic.Int64 // nanos of the first Next call (monotonic-ish)
}

// Phase is one stretch of a Phased schedule.
type Phase struct {
	Src Source
	// For is how long this phase serves before the next takes over.
	// Ignored on the last phase, which runs until the caller stops.
	For time.Duration
}

// Validate checks the schedule and every inner source that exposes a
// Validate method.
func (p *Phased) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: Phased needs at least one phase")
	}
	for i, ph := range p.Phases {
		if ph.Src == nil {
			return fmt.Errorf("workload: phase %d has no source", i)
		}
		if ph.For <= 0 && i != len(p.Phases)-1 {
			return fmt.Errorf("workload: phase %d needs a positive duration (only the last phase may run open-ended)", i)
		}
		if v, ok := ph.Src.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("workload: phase %d: %w", i, err)
			}
		}
	}
	return nil
}

// Next implements Source.
func (p *Phased) Next(thread int, rng *rand.Rand) *txn.Txn {
	now := time.Now().UnixNano()
	start := p.start.Load()
	if start == 0 {
		// First call (or a photo finish between first callers — either
		// winner's timestamp is fine).
		p.start.CompareAndSwap(0, now)
		start = p.start.Load()
	}
	elapsed := time.Duration(now - start)
	for i, ph := range p.Phases {
		if i == len(p.Phases)-1 || elapsed < ph.For {
			return ph.Src.Next(thread, rng)
		}
		elapsed -= ph.For
	}
	panic("workload: phased source fell through its phase list")
}

// Elapsed reports time since the first Next call (zero before it), so
// harness samplers can align their buckets with the phase clock.
func (p *Phased) Elapsed() time.Duration {
	start := p.start.Load()
	if start == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - start)
}
