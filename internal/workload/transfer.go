package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/txn"
)

// Transfer generates bank-style transfer transactions: each moves one unit
// from a source record to a destination record. The sum of all record
// balances is invariant under any serializable execution, so Transfer is
// the conservation workload the test suite uses to property-check every
// engine's isolation (a lost update or dirty write breaks the sum; a
// partially-applied abort breaks it too).
type Transfer struct {
	Table      int
	NumRecords uint64
	// HotRecords optionally concentrates transfers on a small prefix to
	// force conflicts and deadlocks; 0 means uniform.
	HotRecords uint64
}

// transferTxn is the pooled carrier for one transfer transaction: the Txn,
// its two-op access set, and the logic's parameters live in one recycled
// allocation. Logic and Free are method values bound once when the pool
// creates the container, so a steady-state Next performs zero allocations.
type transferTxn struct {
	txn.Txn
	table int
	a, b  uint64
	ops   [2]txn.Op
}

var transferPool sync.Pool

func init() {
	// Assigned in init, not a composite literal: New references methods
	// that reference the pool back (an initialization cycle at package
	// scope).
	transferPool.New = func() interface{} {
		t := &transferTxn{}
		t.Logic = t.run
		t.Free = t.free
		return t
	}
}

func (t *transferTxn) run(ctx txn.Ctx) error {
	src, err := ctx.Write(t.table, t.a)
	if err != nil {
		return err
	}
	dst, err := ctx.Write(t.table, t.b)
	if err != nil {
		return err
	}
	putU64(src, getU64(src)-1)
	putU64(dst, getU64(dst)+1)
	return nil
}

// free implements txn.Txn.Free: the engine has already run the completion
// callback and every other observer, so the container can be recycled.
//
//orthrus:recycle engine calls Free exactly once, after the last observer of the transaction
func (t *transferTxn) free() {
	t.ID = 0
	t.Restarts = 0
	t.ReadOnly = false
	t.Partitions = t.Partitions[:0]
	t.ResetScratch()
	transferPool.Put(t)
}

// Next implements Source.
func (c *Transfer) Next(_ int, rng *rand.Rand) *txn.Txn {
	n := c.NumRecords
	if c.HotRecords > 0 {
		n = c.HotRecords
	}
	if n < 2 {
		panic("workload: Transfer needs at least 2 records")
	}
	a := uint64(rng.Int63n(int64(n)))
	b := uint64(rng.Int63n(int64(n - 1)))
	if b >= a {
		b++
	}
	t := transferPool.Get().(*transferTxn)
	t.table, t.a, t.b = c.Table, a, b
	t.ops[0] = txn.Op{Table: c.Table, Key: a, Mode: txn.Write}
	t.ops[1] = txn.Op{Table: c.Table, Key: b, Mode: txn.Write}
	t.Ops = t.ops[:2]
	return &t.Txn
}

// Zipf draws keys from a Zipfian distribution, the standard YCSB skew
// model. It is an extension beyond the paper's hot/cold mix, used by the
// skew ablation bench.
type Zipf struct {
	Table      int
	NumRecords uint64
	OpsPerTxn  int
	ReadOnly   bool
	Theta      float64 // zipf exponent s > 1
}

// Next implements Source.
func (c *Zipf) Next(_ int, rng *rand.Rand) *txn.Txn {
	if c.Theta <= 1 {
		panic("workload: Zipf Theta must exceed 1")
	}
	mode := txn.Write
	if c.ReadOnly {
		mode = txn.Read
	}
	ops := make([]txn.Op, 0, c.OpsPerTxn)
	for _, key := range zipfKeys(rng, c.Theta, c.NumRecords, c.OpsPerTxn) {
		ops = append(ops, txn.Op{Table: c.Table, Key: key, Mode: mode})
	}
	t := &txn.Txn{Ops: ops}
	t.Logic = func(ctx txn.Ctx) error {
		var sink uint64
		for _, op := range t.Ops {
			if op.Mode == txn.Read {
				rec, err := ctx.Read(op.Table, op.Key)
				if err != nil {
					return err
				}
				sink += getU64(rec)
			} else {
				rec, err := ctx.Write(op.Table, op.Key)
				if err != nil {
					return err
				}
				putU64(rec, getU64(rec)+1)
			}
		}
		if sink == ^uint64(0) {
			return fmt.Errorf("workload: impossible checksum")
		}
		return nil
	}
	return t
}

// zipfKeys draws k distinct keys from a Zipfian distribution with
// exponent theta over [0, n). The fat head makes within-transaction
// collisions common: resample a few times, then nudge linearly into the
// neighborhood so the caller always gets distinct keys. Shared by the
// standalone Zipf source and YCSB's ZipfTheta mode so the two stay
// sampling-identical.
func zipfKeys(rng *rand.Rand, theta float64, n uint64, k int) []uint64 {
	z := rand.NewZipf(rng, theta, 1, n-1)
	keys := make([]uint64, 0, k)
	for len(keys) < k {
		key := z.Uint64()
		for try := 0; try < 8 && contains(keys, key); try++ {
			key = z.Uint64()
		}
		for contains(keys, key) {
			key = (key + 1) % n
		}
		keys = append(keys, key)
	}
	return keys
}
