package workload

import (
	"testing"

	"repro/internal/txn"
)

func TestMixedValidate(t *testing.T) {
	if err := YCSBA(0, 1000).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Mixed{
		{NumRecords: 5, OpsPerTxn: 10},
		{NumRecords: 100, OpsPerTxn: 10, ReadPct: 101},
		{NumRecords: 100, OpsPerTxn: 10, ReadPct: -1},
		{NumRecords: 100, OpsPerTxn: 10, HotRecords: 200},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMixedRatios(t *testing.T) {
	rng := newRand()
	cases := []struct {
		src     *Mixed
		minRead int
		maxRead int
	}{
		{YCSBA(0, 10000), 4200, 5800},
		{YCSBB(0, 10000), 9200, 9800},
		{YCSBC(0, 10000), 10000, 10000},
	}
	for _, c := range cases {
		reads := 0
		for i := 0; i < 1000; i++ {
			tx := c.src.Next(0, rng)
			if len(tx.Ops) != 10 {
				t.Fatalf("ops = %d", len(tx.Ops))
			}
			for _, op := range tx.Ops {
				if op.Mode == txn.Read {
					reads++
				}
			}
		}
		if reads < c.minRead || reads > c.maxRead {
			t.Fatalf("ReadPct=%d produced %d/10000 reads", c.src.ReadPct, reads)
		}
	}
}

func TestMixedDistinctKeysAndHotPrefix(t *testing.T) {
	src := &Mixed{NumRecords: 10000, OpsPerTxn: 10, ReadPct: 50, HotRecords: 64, HotOps: 2}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := newRand()
	for i := 0; i < 300; i++ {
		tx := src.Next(0, rng)
		seen := map[uint64]bool{}
		for j, op := range tx.Ops {
			if seen[op.Key] {
				t.Fatal("duplicate key")
			}
			seen[op.Key] = true
			if j < 2 && op.Key >= 64 {
				t.Fatal("hot prefix not hot")
			}
			if j >= 2 && op.Key < 64 {
				t.Fatal("cold op in hot range")
			}
		}
	}
}

func TestMixedLogicHandlesBothModes(t *testing.T) {
	src := YCSBA(0, 1000)
	rng := newRand()
	ctx := &fakeCtx{store: map[uint64][]byte{}}
	tx := src.Next(0, rng)
	if err := tx.Logic(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.reads+ctx.writes != 10 {
		t.Fatalf("reads=%d writes=%d", ctx.reads, ctx.writes)
	}
}
