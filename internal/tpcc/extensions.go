package tpcc

import (
	"math/rand"

	"repro/internal/storage"
	"repro/internal/txn"
)

// This file implements the three TPC-C transactions outside the paper's
// evaluation mix (§4.4 restricts itself to NewOrder and Payment). They
// complete the five-transaction spec and are the codebase's scan-heavy
// traffic: all three read the growing Order/NewOrder/OrderLine tables
// through Ctx.Scan — declared, phantom-safe range scans over ordered
// storage. (Earlier revisions read those tables by bypassing concurrency
// control entirely; that bypass is gone. See README.md "Range scans and
// phantom protection".)
//
// Their access sets are OLLP-planned (paper §3.2): which order a customer
// last placed, which order a district delivers next, and which stock rows
// the last 20 orders touched are all deducible only by reading other
// rows, so plans are built from lock-free reconnaissance and re-validated
// under locks — a stale estimate surfaces as txn.ErrEstimateMiss and the
// transaction re-plans.

// OrderStatusParams are one OrderStatus invocation's inputs.
type OrderStatusParams struct {
	W, D     int
	ByName   bool
	NameCode int
	C        int
}

// GenOrderStatusParams draws spec-distributed inputs (60% by last name).
func (s *Schema) GenOrderStatusParams(rng *rand.Rand) OrderStatusParams {
	p := OrderStatusParams{W: rng.Intn(s.W), D: rng.Intn(DistrictsPerWarehouse)}
	if rng.Intn(100) < 60 {
		p.ByName = true
		codes := s.CustomersPerDistrict
		if codes > 1000 {
			codes = 1000
		}
		p.NameCode = NURand(rng, 255, 0, 999) % codes
	} else {
		p.C = NURand(rng, 1023, 0, s.CustomersPerDistrict-1)
	}
	return p
}

// lineRange returns the OrderLine key interval holding order okey's lines
// (line numbers 1..MaxOrderLines all fall inside it).
func lineRange(okey uint64) (lo, hi uint64) { return okey << 4, (okey + 1) << 4 }

// declareLineScan declares a phantom-safe read scan over the OrderLine
// interval [lo, hi): the range itself (which planned engines materialize
// into stripe locks) plus a Read op for every line currently present
// (their record locks). Enumeration is reconnaissance — lock-free — so it
// is validated against the table's gap version and retried if inserts
// moved underneath it; a stale set that slips through anyway is caught at
// execution as an estimate miss.
func (s *Schema) declareLineScan(t *txn.Txn, lo, hi uint64) {
	if hi <= lo {
		return
	}
	tbl := s.DB.Table(s.OrderLine)
	for attempt := 0; ; attempt++ {
		v := tbl.RangeVersion(lo, hi)
		n := len(t.Ops)
		tbl.Scan(lo, hi, func(key uint64, _ []byte) bool {
			t.Ops = append(t.Ops, txn.Op{Table: s.OrderLine, Key: key, Mode: txn.Read})
			return true
		})
		// One re-enumeration when the gap version moved: in a quiet
		// system it repairs the race for the price of a rescan, far
		// cheaper than an engine-level miss-and-replan. The version fold
		// is table-global, so under heavy insert churn it flags inserts
		// that never touched [lo, hi) — don't chase it further; the
		// execution-time estimate miss is the precise backstop.
		if tbl.RangeVersion(lo, hi) == v || attempt >= 1 {
			break
		}
		t.Ops = t.Ops[:n] // an insert raced the enumeration; redo it
	}
	t.Ranges = append(t.Ranges, txn.RangeOp{Table: s.OrderLine, Lo: lo, Hi: hi, Mode: txn.Read})
}

// OrderStatusTxn reads a customer's balance and their latest order's
// lines. The order's line set is read with a declared range scan; the
// order id comes from the customer row, so the whole plan is OLLP
// reconnaissance re-validated under the customer lock.
func (s *Schema) OrderStatusTxn(p OrderStatusParams) *txn.Txn {
	t := &txn.Txn{}
	resolve := func() (uint64, bool) {
		if p.ByName {
			ck, _, ok := s.CustIndex.Middle(lastNameKey(p.W, p.D, p.NameCode))
			return ck, ok
		}
		return s.CKey(p.W, p.D, p.C), true
	}
	plan := func(t *txn.Txn) {
		t.Ops, t.Ranges = t.Ops[:0], t.Ranges[:0]
		ck, ok := resolve()
		if !ok {
			return
		}
		t.Ops = append(t.Ops, txn.Op{Table: s.Customer, Key: ck, Mode: txn.Read})
		oid := storage.AtomicGetU64(s.DB.Table(s.Customer).Get(ck), cLastOrder)
		if oid == 0 {
			return // customer has not ordered yet
		}
		okey := OKey(p.W, p.D, oid)
		t.Ops = append(t.Ops, txn.Op{Table: s.Order, Key: okey, Mode: txn.Read})
		plo, phi := lineRange(okey)
		s.declareLineScan(t, plo, phi)
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		ck, ok := resolve()
		if !ok {
			return nil
		}
		crec, err := ctx.Read(s.Customer, ck)
		if err != nil {
			return err
		}
		oid := storage.AtomicGetU64(crec, cLastOrder)
		if oid == 0 {
			return nil
		}
		okey := OKey(p.W, p.D, oid)
		orec, err := ctx.Read(s.Order, okey)
		if err != nil {
			return err
		}
		if orec == nil {
			return nil // cLastOrder from an aborted NewOrder; tolerated
		}
		lo, hi := lineRange(okey)
		var total uint64
		if err := ctx.Scan(s.OrderLine, lo, hi, func(_ uint64, line []byte) error {
			total += storage.GetU64(line, olAmount)
			return nil
		}); err != nil {
			return err
		}
		_ = total
		return nil
	}
	return t
}

// DeliveryTxn delivers the oldest undelivered order in each of a
// warehouse's districts: it advances the district delivery cursor, marks
// the order delivered (a locked write, like every other access here),
// totals the order's lines with a declared range scan, and credits the
// customer. The customers are only deducible by reading the Order table,
// so the write set is OLLP-planned and re-validated on execution (the
// structural reason the paper needs reconnaissance, exercised here on a
// second transaction type).
func (s *Schema) DeliveryTxn(w int) *txn.Txn {
	t := &txn.Txn{}
	plan := func(t *txn.Txn) {
		t.Ops, t.Ranges = t.Ops[:0], t.Ranges[:0]
		for d := 0; d < DistrictsPerWarehouse; d++ {
			t.Ops = append(t.Ops, txn.Op{Table: s.District, Key: DKey(w, d), Mode: txn.Write})
			drec := s.DB.Table(s.District).Get(DKey(w, d))
			cursor := storage.AtomicGetU64(drec, dDelivOID)
			next := storage.AtomicGetU64(drec, dNextOID)
			if cursor >= next {
				continue // nothing to deliver in this district
			}
			okey := OKey(w, d, cursor)
			orec := s.DB.Table(s.Order).Get(okey)
			if orec == nil {
				continue
			}
			t.Ops = append(t.Ops,
				txn.Op{Table: s.Order, Key: okey, Mode: txn.Write},
				txn.Op{Table: s.NewOrder, Key: okey, Mode: txn.Write},
				txn.Op{Table: s.Customer, Key: storage.GetU64(orec, oCID), Mode: txn.Write},
			)
			plo, phi := lineRange(okey)
			s.declareLineScan(t, plo, phi)
		}
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		for d := 0; d < DistrictsPerWarehouse; d++ {
			drec, err := ctx.Write(s.District, DKey(w, d))
			if err != nil {
				return err
			}
			cursor := storage.AtomicGetU64(drec, dDelivOID)
			next := storage.AtomicGetU64(drec, dNextOID)
			if cursor >= next {
				continue
			}
			okey := OKey(w, d, cursor)
			orec, err := ctx.Write(s.Order, okey)
			if err != nil {
				return err
			}
			if orec == nil {
				continue
			}
			storage.PutU64(orec, oCarrierID, 1+cursor%10)
			lo, hi := lineRange(okey)
			var total uint64
			if err := ctx.Scan(s.OrderLine, lo, hi, func(_ uint64, line []byte) error {
				total += storage.GetU64(line, olAmount)
				return nil
			}); err != nil {
				return err
			}
			crec, err := ctx.Write(s.Customer, storage.GetU64(orec, oCID))
			if err != nil {
				return err
			}
			storage.AddI64(crec, cBalance, int64(total))
			storage.AddU64(crec, cDeliveryCnt, 1)
			marker, err := ctx.Write(s.NewOrder, okey)
			if err != nil {
				return err
			}
			if marker != nil {
				marker[0] = 0 // delivered
			}
			storage.AtomicPutU64(drec, dDelivOID, cursor+1)
		}
		return nil
	}
	return t
}

// StockLevelParams are one StockLevel invocation's inputs.
type StockLevelParams struct {
	W, D      int
	Threshold int64 // 10..20 per spec
}

// GenStockLevelParams draws spec-distributed inputs.
func (s *Schema) GenStockLevelParams(rng *rand.Rand) StockLevelParams {
	return StockLevelParams{
		W:         rng.Intn(s.W),
		D:         rng.Intn(DistrictsPerWarehouse),
		Threshold: int64(10 + rng.Intn(11)),
	}
}

// stockLevelScanOrders is how many recent orders StockLevel examines
// (spec: 20).
const stockLevelScanOrders = 20

// stockLevelRange returns the OrderLine interval covering the district's
// last stockLevelScanOrders orders: OLKey concatenates (district order id,
// line number), so the lines of consecutive orders are one contiguous key
// range — the whole examination is a single declared scan.
func (s *Schema) stockLevelRange(w, d int, next uint64) (lo, hi uint64) {
	first := uint64(1)
	if next > stockLevelScanOrders {
		first = next - stockLevelScanOrders
	}
	return OKey(w, d, first) << 4, OKey(w, d, next) << 4
}

// StockLevelTxn counts recent-order items whose stock is below a
// threshold. The order lines come from one declared range scan; the stock
// keys are deducible only from those rows, so the read set is
// OLLP-planned.
func (s *Schema) StockLevelTxn(p StockLevelParams) *txn.Txn {
	t := &txn.Txn{}
	plan := func(t *txn.Txn) {
		t.Ops, t.Ranges = t.Ops[:0], t.Ranges[:0]
		t.Ops = append(t.Ops, txn.Op{Table: s.District, Key: DKey(p.W, p.D), Mode: txn.Read})
		next := storage.AtomicGetU64(s.DB.Table(s.District).Get(DKey(p.W, p.D)), dNextOID)
		lo, hi := s.stockLevelRange(p.W, p.D, next)
		if hi <= lo {
			return
		}
		lineStart := len(t.Ops)
		s.declareLineScan(t, lo, hi)
		seen := map[uint64]bool{}
		for _, op := range t.Ops[lineStart:] {
			if op.Table != s.OrderLine {
				continue
			}
			line := s.DB.Table(s.OrderLine).Get(op.Key)
			if line == nil {
				continue
			}
			sk := s.SKey(p.W, int(storage.GetU64(line, olIID)))
			if !seen[sk] {
				seen[sk] = true
				t.Ops = append(t.Ops, txn.Op{Table: s.Stock, Key: sk, Mode: txn.Read})
			}
		}
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		drec, err := ctx.Read(s.District, DKey(p.W, p.D))
		if err != nil {
			return err
		}
		next := storage.AtomicGetU64(drec, dNextOID)
		lo, hi := s.stockLevelRange(p.W, p.D, next)
		if hi <= lo {
			return nil
		}
		low := 0
		seen := map[uint64]bool{}
		if err := ctx.Scan(s.OrderLine, lo, hi, func(_ uint64, line []byte) error {
			sk := s.SKey(p.W, int(storage.GetU64(line, olIID)))
			if seen[sk] {
				return nil
			}
			seen[sk] = true
			srec, err := ctx.Read(s.Stock, sk)
			if err != nil {
				return err
			}
			if storage.GetI64(srec, sQuantity) < p.Threshold {
				low++
			}
			return nil
		}); err != nil {
			return err
		}
		_ = low
		return nil
	}
	return t
}
