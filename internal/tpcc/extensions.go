package tpcc

import (
	"math/rand"

	"repro/internal/storage"
	"repro/internal/txn"
)

// This file implements the three TPC-C transactions outside the paper's
// evaluation mix (§4.4 restricts itself to NewOrder and Payment). They are
// provided as extensions so the substrate is a complete five-transaction
// TPC-C implementation; examples and tests exercise them.
//
// Reads of the append-only Order/NewOrder/OrderLine tables bypass
// concurrency control, like Item reads: those tables are only ever
// inserted into, and the read-only transactions tolerate the resulting
// snapshot-at-insert-boundary semantics (the paper's prototype has no
// read-only queries at all, so this goes beyond it, not short of it).

// OrderStatusParams are one OrderStatus invocation's inputs.
type OrderStatusParams struct {
	W, D     int
	ByName   bool
	NameCode int
	C        int
}

// GenOrderStatusParams draws spec-distributed inputs (60% by last name).
func (s *Schema) GenOrderStatusParams(rng *rand.Rand) OrderStatusParams {
	p := OrderStatusParams{W: rng.Intn(s.W), D: rng.Intn(DistrictsPerWarehouse)}
	if rng.Intn(100) < 60 {
		p.ByName = true
		codes := s.CustomersPerDistrict
		if codes > 1000 {
			codes = 1000
		}
		p.NameCode = NURand(rng, 255, 0, 999) % codes
	} else {
		p.C = NURand(rng, 1023, 0, s.CustomersPerDistrict-1)
	}
	return p
}

// OrderStatusTxn reads a customer's balance and their latest order's
// lines. The customer lock is the only lock; the order data is read
// lock-free (append-only tables).
func (s *Schema) OrderStatusTxn(p OrderStatusParams) *txn.Txn {
	t := &txn.Txn{}
	plan := func(t *txn.Txn) {
		var ck uint64
		var ok bool
		if p.ByName {
			ck, _, ok = s.CustIndex.Middle(lastNameKey(p.W, p.D, p.NameCode))
		} else {
			ck, ok = s.CKey(p.W, p.D, p.C), true
		}
		t.Ops = t.Ops[:0]
		if ok {
			t.Ops = append(t.Ops, txn.Op{Table: s.Customer, Key: ck, Mode: txn.Read})
		}
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		var ck uint64
		var ok bool
		if p.ByName {
			ck, _, ok = s.CustIndex.Middle(lastNameKey(p.W, p.D, p.NameCode))
		} else {
			ck, ok = s.CKey(p.W, p.D, p.C), true
		}
		if !ok {
			return nil
		}
		crec, err := ctx.Read(s.Customer, ck)
		if err != nil {
			return err
		}
		oid := storage.AtomicGetU64(crec, cLastOrder)
		if oid == 0 {
			return nil // customer has not ordered yet
		}
		orec := s.DB.Table(s.Order).Get(OKey(p.W, p.D, oid))
		if orec == nil {
			return nil // insert racing; tolerated for read-only queries
		}
		cnt := storage.GetU64(orec, oOLCnt)
		var total uint64
		for ln := 1; ln <= int(cnt); ln++ {
			if line := s.DB.Table(s.OrderLine).Get(OLKey(p.W, p.D, oid, ln)); line != nil {
				total += storage.GetU64(line, olAmount)
			}
		}
		_ = total
		return nil
	}
	return t
}

// DeliveryTxn delivers the oldest undelivered order in each of a
// warehouse's districts: it advances the district delivery cursor, marks
// the order delivered, and credits the customer. The customers are only
// deducible by reading the Order table, so the write set is OLLP-planned
// and re-validated on execution (the structural reason the paper needs
// reconnaissance, exercised here on a second transaction type).
func (s *Schema) DeliveryTxn(w int) *txn.Txn {
	t := &txn.Txn{}
	plan := func(t *txn.Txn) {
		t.Ops = t.Ops[:0]
		for d := 0; d < DistrictsPerWarehouse; d++ {
			t.Ops = append(t.Ops, txn.Op{Table: s.District, Key: DKey(w, d), Mode: txn.Write})
			drec := s.DB.Table(s.District).Get(DKey(w, d))
			cursor := storage.AtomicGetU64(drec, dDelivOID)
			next := storage.AtomicGetU64(drec, dNextOID)
			if cursor >= next {
				continue // nothing to deliver in this district
			}
			orec := s.DB.Table(s.Order).Get(OKey(w, d, cursor))
			if orec == nil {
				continue
			}
			ck := storage.GetU64(orec, oCID)
			t.Ops = append(t.Ops, txn.Op{Table: s.Customer, Key: ck, Mode: txn.Write})
		}
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		for d := 0; d < DistrictsPerWarehouse; d++ {
			drec, err := ctx.Write(s.District, DKey(w, d))
			if err != nil {
				return err
			}
			cursor := storage.AtomicGetU64(drec, dDelivOID)
			next := storage.AtomicGetU64(drec, dNextOID)
			if cursor >= next {
				continue
			}
			orec := s.DB.Table(s.Order).Get(OKey(w, d, cursor))
			if orec == nil {
				continue
			}
			storage.PutU64(orec, oCarrierID, 1+uint64(cursor%10))
			cnt := storage.GetU64(orec, oOLCnt)
			var total uint64
			for ln := 1; ln <= int(cnt); ln++ {
				if line := s.DB.Table(s.OrderLine).Get(OLKey(w, d, cursor, ln)); line != nil {
					total += storage.GetU64(line, olAmount)
				}
			}
			ck := storage.GetU64(orec, oCID)
			crec, err := ctx.Write(s.Customer, ck)
			if err != nil {
				return err
			}
			storage.AddI64(crec, cBalance, int64(total))
			storage.AddU64(crec, cDeliveryCnt, 1)
			if marker := s.DB.Table(s.NewOrder).Get(OKey(w, d, cursor)); marker != nil {
				marker[0] = 0 // delivered
			}
			storage.AtomicPutU64(drec, dDelivOID, cursor+1)
		}
		return nil
	}
	return t
}

// StockLevelParams are one StockLevel invocation's inputs.
type StockLevelParams struct {
	W, D      int
	Threshold int64 // 10..20 per spec
}

// GenStockLevelParams draws spec-distributed inputs.
func (s *Schema) GenStockLevelParams(rng *rand.Rand) StockLevelParams {
	return StockLevelParams{
		W:         rng.Intn(s.W),
		D:         rng.Intn(DistrictsPerWarehouse),
		Threshold: int64(10 + rng.Intn(11)),
	}
}

// stockLevelScanOrders is how many recent orders StockLevel examines
// (spec: 20).
const stockLevelScanOrders = 20

// StockLevelTxn counts recent-order items whose stock is below a
// threshold. The stock keys are deducible only from OrderLine rows, so the
// read set is OLLP-planned.
func (s *Schema) StockLevelTxn(p StockLevelParams) *txn.Txn {
	t := &txn.Txn{}
	collect := func() []uint64 {
		drec := s.DB.Table(s.District).Get(DKey(p.W, p.D))
		next := storage.AtomicGetU64(drec, dNextOID)
		lo := uint64(1)
		if next > stockLevelScanOrders {
			lo = next - stockLevelScanOrders
		}
		var keys []uint64
		seen := map[uint64]bool{}
		for o := lo; o < next; o++ {
			orec := s.DB.Table(s.Order).Get(OKey(p.W, p.D, o))
			if orec == nil {
				continue
			}
			cnt := storage.GetU64(orec, oOLCnt)
			for ln := 1; ln <= int(cnt); ln++ {
				line := s.DB.Table(s.OrderLine).Get(OLKey(p.W, p.D, o, ln))
				if line == nil {
					continue
				}
				sk := s.SKey(p.W, int(storage.GetU64(line, olIID)))
				if !seen[sk] {
					seen[sk] = true
					keys = append(keys, sk)
				}
			}
		}
		return keys
	}
	plan := func(t *txn.Txn) {
		t.Ops = t.Ops[:0]
		t.Ops = append(t.Ops, txn.Op{Table: s.District, Key: DKey(p.W, p.D), Mode: txn.Read})
		for _, sk := range collect() {
			t.Ops = append(t.Ops, txn.Op{Table: s.Stock, Key: sk, Mode: txn.Read})
		}
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		if _, err := ctx.Read(s.District, DKey(p.W, p.D)); err != nil {
			return err
		}
		low := 0
		for _, sk := range collect() {
			srec, err := ctx.Read(s.Stock, sk)
			if err != nil {
				return err
			}
			if storage.GetI64(srec, sQuantity) < p.Threshold {
				low++
			}
		}
		_ = low
		return nil
	}
	return t
}
