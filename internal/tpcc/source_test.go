package tpcc

import (
	"math/rand"
	"strings"
	"testing"
)

func mustPanicContaining(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one mentioning %q)", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not mention %q", r, substr)
		}
	}()
	f()
}

// Malformed mixes — negative weights, remote percentages outside
// [0, 100] — panic with a message naming the field instead of silently
// skewing the draw (negative weights used to shrink the total and shift
// every threshold; out-of-range percentages were passed straight to the
// generators).
func TestMixValidation(t *testing.T) {
	s := testSchema(t, 1)
	rng := rand.New(rand.NewSource(1))
	next := func(m Mix) { (&m).Next(0, rng) }

	mustPanicContaining(t, "NewOrderWeight", func() { next(Mix{S: s, NewOrderWeight: -1}) })
	mustPanicContaining(t, "PaymentWeight", func() { next(Mix{S: s, PaymentWeight: -5, NewOrderWeight: 10}) })
	mustPanicContaining(t, "OrderStatusWeight", func() { next(Mix{S: s, OrderStatusWeight: -1}) })
	mustPanicContaining(t, "DeliveryWeight", func() { next(Mix{S: s, DeliveryWeight: -1}) })
	mustPanicContaining(t, "StockLevelWeight", func() { next(Mix{S: s, StockLevelWeight: -1}) })
	mustPanicContaining(t, "RemoteNewOrderPct", func() { next(Mix{S: s, RemoteNewOrderPct: 101}) })
	mustPanicContaining(t, "RemoteNewOrderPct", func() { next(Mix{S: s, RemoteNewOrderPct: -10}) })
	mustPanicContaining(t, "RemotePaymentPct", func() { next(Mix{S: s, RemotePaymentPct: 200}) })

	// Valid mixes draw fine: the default, a custom weighting, and the
	// percentage boundaries.
	for _, m := range []Mix{
		{S: s},
		{S: s, NewOrderWeight: 45, PaymentWeight: 43, OrderStatusWeight: 4, DeliveryWeight: 4, StockLevelWeight: 4},
		{S: s, RemoteNewOrderPct: 100, RemotePaymentPct: 100},
	} {
		m := m
		for i := 0; i < 50; i++ {
			if tx := m.Next(0, rng); tx == nil || tx.Logic == nil {
				t.Fatal("valid mix produced a nil transaction")
			}
		}
	}
}
