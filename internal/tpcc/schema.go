// Package tpcc implements the TPC-C substrate used by the paper's §4.4
// evaluation: the tree schema rooted at Warehouse, a cardinality-faithful
// loader, the NewOrder and Payment transactions (the paper's 50/50 mix,
// including the spec's 10%/15% remote-warehouse rates and the 60%
// Payment-by-last-name path that requires OLLP reconnaissance), and — as
// extensions beyond the paper's evaluation — OrderStatus, Delivery and
// StockLevel.
//
// Contention is controlled exactly as in the paper: the schema is a tree
// rooted at Warehouse, so shrinking the warehouse count concentrates every
// transaction's updates onto fewer Warehouse/District rows (§4.4.1).
//
// # Scale substitutions
//
// The spec's 100,000 items × W stock rows and 3,000 customers per district
// would need several gigabytes at W=128; this reproduction defaults to
// 10,000 items and 300 customers per district (configurable). Contention
// in the paper's experiments lives on Warehouse and District rows, whose
// cardinality is preserved exactly, so the scale-down does not affect the
// measured phenomena. Record payloads are likewise compacted (fields the
// transactions never touch are folded into padding).
package tpcc

import (
	"fmt"
	"math/rand"

	"repro/internal/storage"
	"repro/internal/txn"
)

// Default scale parameters (see package comment for the substitution
// rationale).
const (
	DefaultItems                = 10_000
	DefaultCustomersPerDistrict = 300
	DistrictsPerWarehouse       = 10
	MaxOrderLines               = 15
)

// Record layouts: byte offsets of the fixed-width fields each transaction
// touches. Money amounts are integer cents.
const (
	// Warehouse (96 B): W_YTD, W_TAX.
	wYTD, wTax, warehouseSize = 0, 8, 96

	// District (96 B): D_NEXT_O_ID, D_YTD, D_TAX, D_DELIV_O_ID (Delivery
	// cursor; an implementation detail standing in for the spec's
	// "oldest undelivered order" scan).
	dNextOID, dYTD, dTax, dDelivOID, districtSize = 0, 8, 16, 24, 96

	// Customer (128 B): C_BALANCE, C_YTD_PAYMENT, C_PAYMENT_CNT,
	// C_DELIVERY_CNT, C_LAST (last-name code), C_LAST_ORDER.
	cBalance, cYTDPayment, cPaymentCnt, cDeliveryCnt, cLast, cLastOrder, customerSize = 0, 8, 16, 24, 32, 40, 128

	// Stock (64 B): S_QUANTITY, S_YTD, S_ORDER_CNT, S_REMOTE_CNT.
	sQuantity, sYTD, sOrderCnt, sRemoteCnt, stockSize = 0, 8, 16, 24, 64

	// Item (64 B): I_PRICE. Read-only at run time (§4.4: "none of our
	// baselines perform any concurrency control on reads to Item").
	iPrice, itemSize = 0, 64

	// Order (32 B): O_C_ID, O_OL_CNT, O_CARRIER_ID.
	oCID, oOLCnt, oCarrierID, orderSize = 0, 8, 16, 32

	// NewOrder (8 B): presence marker.
	newOrderSize = 8

	// OrderLine (32 B): OL_I_ID, OL_SUPPLY_W_ID, OL_QUANTITY, OL_AMOUNT.
	olIID, olSupplyW, olQuantity, olAmount, orderLineSize = 0, 8, 16, 24, 32

	// History (32 B): H_C_ID, H_AMOUNT.
	hCID, hAmount, historySize = 0, 8, 32
)

// Config sizes a TPC-C database.
type Config struct {
	Warehouses           int
	Items                int // default DefaultItems
	CustomersPerDistrict int // default DefaultCustomersPerDistrict
}

// Schema holds table ids and scale constants for one loaded database.
type Schema struct {
	DB *storage.DB

	Warehouse, District, Customer, Stock, Item   int
	Order, NewOrder, OrderLine, History          int
	W, Items, CustomersPerDistrict, OrdersLoaded int

	// CustIndex maps lastNameKey(w,d,code) to customer primary keys —
	// the secondary index behind Payment-by-last-name (§4.4).
	CustIndex *storage.SecondaryIndex
}

// --- key encodings -------------------------------------------------------
//
// Every lockable table embeds the warehouse id so ORTHRUS can partition
// the lock space by warehouse (§4.4: "ORTHRUS partitions database tables
// across concurrency control threads based on each row's warehouse_id").

// WKey returns the Warehouse primary key for warehouse w (0-based).
func WKey(w int) uint64 { return uint64(w) }

// DKey returns the District primary key.
func DKey(w, d int) uint64 { return uint64(w)*DistrictsPerWarehouse + uint64(d) }

// CKey returns the Customer primary key.
func (s *Schema) CKey(w, d, c int) uint64 {
	return DKey(w, d)*uint64(s.CustomersPerDistrict) + uint64(c)
}

// SKey returns the Stock primary key.
func (s *Schema) SKey(w, i int) uint64 { return uint64(w)*uint64(s.Items) + uint64(i) }

// IKey returns the Item primary key.
func IKey(i int) uint64 { return uint64(i) }

// OKey returns the Order primary key for district (w,d) and order id o.
func OKey(w, d int, o uint64) uint64 { return DKey(w, d)<<40 | o }

// OLKey returns the OrderLine primary key (ol is 1-based line number).
func OLKey(w, d int, o uint64, ol int) uint64 { return OKey(w, d, o)<<4 | uint64(ol) }

// WarehouseOf recovers the warehouse id from a (table, key) pair; it is
// the basis of warehouse partitioning. Stripe (gap) lock keys resolve to
// the warehouse of the records they cover, so a range's interval locks
// route to the same partition as the range's rows — keeping phantom
// protection co-located with the data under warehouse partitioning (a
// stripe never spans warehouses: every per-warehouse key space is wider
// than a stripe).
func (s *Schema) WarehouseOf(table int, key uint64) int {
	if key&txn.StripeFlag != 0 {
		return s.WarehouseOf(table, (key&^txn.StripeFlag)<<txn.StripeShift)
	}
	switch table {
	case s.Warehouse:
		return int(key)
	case s.District:
		return int(key / DistrictsPerWarehouse)
	case s.Customer:
		return int(key / uint64(s.CustomersPerDistrict) / DistrictsPerWarehouse)
	case s.Stock:
		return int(key / uint64(s.Items))
	case s.Order, s.NewOrder:
		return int(key >> 40 / DistrictsPerWarehouse)
	case s.OrderLine:
		return int(key >> 44 / DistrictsPerWarehouse)
	default:
		// Item (replicated, read-only) and History (append-only) have no
		// home warehouse.
		return 0
	}
}

// PartitionByWarehouse returns the warehouse-based partition function used
// by ORTHRUS and Partitioned-store for TPC-C.
func (s *Schema) PartitionByWarehouse(n int) txn.PartitionFunc {
	return func(table int, key uint64) int {
		return s.WarehouseOf(table, key) % n
	}
}

// lastNameKey is the secondary-index key for (w, d, lastNameCode).
func lastNameKey(w, d int, code int) uint64 {
	return (DKey(w, d) << 10) | uint64(code)
}

// Validate returns an error on nonsensical scale knobs. Items and
// CustomersPerDistrict accept any value — non-positive means "use the
// default", which Load fills.
func (c Config) Validate() error {
	if c.Warehouses <= 0 {
		return fmt.Errorf("tpcc: Warehouses must be positive")
	}
	_ = c.Items                // <=0 means DefaultItems
	_ = c.CustomersPerDistrict // <=0 means DefaultCustomersPerDistrict
	return nil
}

// Load builds and populates a TPC-C database.
func Load(cfg Config) (*Schema, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Items <= 0 {
		cfg.Items = DefaultItems
	}
	if cfg.CustomersPerDistrict <= 0 {
		cfg.CustomersPerDistrict = DefaultCustomersPerDistrict
	}

	db := storage.NewDB()
	s := &Schema{
		DB:                   db,
		W:                    cfg.Warehouses,
		Items:                cfg.Items,
		CustomersPerDistrict: cfg.CustomersPerDistrict,
		CustIndex:            storage.NewSecondaryIndex(),
	}
	w64, d64 := uint64(s.W), uint64(s.W*DistrictsPerWarehouse)

	s.Warehouse = db.Create(storage.Layout{Name: "warehouse", NumRecords: w64, RecordSize: warehouseSize})
	s.District = db.Create(storage.Layout{Name: "district", NumRecords: d64, RecordSize: districtSize})
	s.Customer = db.Create(storage.Layout{Name: "customer", NumRecords: d64 * uint64(s.CustomersPerDistrict), RecordSize: customerSize})
	s.Stock = db.Create(storage.Layout{Name: "stock", NumRecords: w64 * uint64(s.Items), RecordSize: stockSize})
	s.Item = db.Create(storage.Layout{Name: "item", NumRecords: uint64(s.Items), RecordSize: itemSize})
	// Order/NewOrder/OrderLine are ordered: the extension transactions
	// range-scan them (OrderStatus and Delivery walk one order's lines,
	// StockLevel the last 20 orders' lines), so they keep sorted keys and
	// gap versions, and inserts into them are stripe-locked against
	// concurrent scans. History is append-only write-only — no
	// transaction ever reads it back — so it keeps the cheaper unordered
	// insert path.
	s.Order = db.Create(storage.Layout{Name: "order", NumRecords: 1 << 16, RecordSize: orderSize, Growable: true, Ordered: true})
	s.NewOrder = db.Create(storage.Layout{Name: "new_order", NumRecords: 1 << 16, RecordSize: newOrderSize, Growable: true, Ordered: true})
	s.OrderLine = db.Create(storage.Layout{Name: "order_line", NumRecords: 1 << 18, RecordSize: orderLineSize, Growable: true, Ordered: true})
	s.History = db.Create(storage.Layout{Name: "history", NumRecords: 1 << 16, RecordSize: historySize, Growable: true})

	rng := rand.New(rand.NewSource(8843))

	for i := 0; i < s.Items; i++ {
		rec := db.Table(s.Item).Get(IKey(i))
		storage.PutU64(rec, iPrice, uint64(100+rng.Intn(9900))) // $1.00..$99.99
	}

	for w := 0; w < s.W; w++ {
		wrec := db.Table(s.Warehouse).Get(WKey(w))
		storage.PutU64(wrec, wTax, uint64(rng.Intn(2001))) // 0..0.2000

		for i := 0; i < s.Items; i++ {
			srec := db.Table(s.Stock).Get(s.SKey(w, i))
			storage.PutI64(srec, sQuantity, int64(10+rng.Intn(91))) // 10..100
		}

		for d := 0; d < DistrictsPerWarehouse; d++ {
			drec := db.Table(s.District).Get(DKey(w, d))
			storage.PutU64(drec, dNextOID, 1) // spec: 3001 after initial orders; we load none
			storage.PutU64(drec, dDelivOID, 1)
			storage.PutU64(drec, dTax, uint64(rng.Intn(2001)))

			for c := 0; c < s.CustomersPerDistrict; c++ {
				crec := db.Table(s.Customer).Get(s.CKey(w, d, c))
				storage.PutI64(crec, cBalance, -1000) // spec: -$10.00
				code := lastNameCodeForCustomer(c)
				storage.PutU64(crec, cLast, uint64(code))
				s.CustIndex.Add(lastNameKey(w, d, code), s.CKey(w, d, c))
			}
		}
	}
	return s, nil
}

// lastNameCodeForCustomer assigns load-time last names per the spec: the
// first 1000 customers get codes 0..999, the rest NURand(255)-distributed.
func lastNameCodeForCustomer(c int) int {
	if c < 1000 {
		return c
	}
	// Deterministic NURand-style fold for the tail.
	return int(uint64(c)*2654435761) % 1000
}

// LastName renders a last-name code as the spec's syllable triple
// (clause 4.3.2.3) — used by examples and tests.
func LastName(code int) string {
	syl := []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	return syl[code/100%10] + syl[code/10%10] + syl[code%10]
}

// --- consistency checks (used by tests and examples) ---------------------

// CheckConsistency verifies TPC-C's core invariants (a subset of the
// spec's consistency conditions adapted to the fields this reproduction
// maintains):
//
//  1. For every district: D_NEXT_O_ID - 1 orders exist (keys 1..next-1).
//  2. W_YTD equals the sum of its districts' D_YTD.
//  3. Every customer's C_BALANCE equals -1000 - sum(payments) +
//     ... payments only decrease balance; combined with H table sums.
//  4. Every last-name posting-list entry points at a customer whose
//     C_LAST field carries that list's name code.
//
// It returns a descriptive error on the first violation.
func (s *Schema) CheckConsistency() error {
	for w := 0; w < s.W; w++ {
		var distYTD uint64
		for d := 0; d < DistrictsPerWarehouse; d++ {
			drec := s.DB.Table(s.District).Get(DKey(w, d))
			distYTD += storage.GetU64(drec, dYTD)
			next := storage.GetU64(drec, dNextOID)
			for o := uint64(1); o < next; o++ {
				if s.DB.Table(s.Order).Get(OKey(w, d, o)) == nil {
					return fmt.Errorf("tpcc: district (%d,%d) next_o_id=%d but order %d missing", w, d, next, o)
				}
			}
		}
		wrec := s.DB.Table(s.Warehouse).Get(WKey(w))
		if got := storage.GetU64(wrec, wYTD); got != distYTD {
			return fmt.Errorf("tpcc: warehouse %d W_YTD=%d != sum(D_YTD)=%d", w, got, distYTD)
		}
	}
	// 4. Last-name index agreement: every posting-list entry names a
	// customer whose C_LAST matches the list's name code. Walked with the
	// allocation-free Each accessor — the full sweep touches every
	// posting list, so a copying Lookup would allocate per list.
	for w := 0; w < s.W; w++ {
		for d := 0; d < DistrictsPerWarehouse; d++ {
			for code := 0; code < 1000 && code < s.CustomersPerDistrict; code++ {
				var bad error
				s.CustIndex.Each(lastNameKey(w, d, code), func(ck uint64) bool {
					crec := s.DB.Table(s.Customer).Get(ck)
					if crec == nil || storage.GetU64(crec, cLast) != uint64(code) {
						bad = fmt.Errorf("tpcc: index entry (%d,%d,code %d) → customer %d mismatched", w, d, code, ck)
						return false
					}
					return true
				})
				if bad != nil {
					return bad
				}
			}
		}
	}
	return nil
}

// OrdersPlaced sums D_NEXT_O_ID-1 over all districts: the total NewOrder
// commits observable in the database.
func (s *Schema) OrdersPlaced() uint64 {
	var n uint64
	for w := 0; w < s.W; w++ {
		for d := 0; d < DistrictsPerWarehouse; d++ {
			n += storage.GetU64(s.DB.Table(s.District).Get(DKey(w, d)), dNextOID) - 1
		}
	}
	return n
}

// TotalPayments sums W_YTD over all warehouses: total Payment volume.
func (s *Schema) TotalPayments() uint64 {
	var n uint64
	for w := 0; w < s.W; w++ {
		n += storage.GetU64(s.DB.Table(s.Warehouse).Get(WKey(w)), wYTD)
	}
	return n
}
