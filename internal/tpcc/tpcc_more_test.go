package tpcc

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/orthrus"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Remote NewOrder transactions must declare stock locks in the remote
// warehouse, so the ORTHRUS chain for them spans exactly two CC threads
// when CC count equals warehouse count.
func TestRemoteNewOrderSpansTwoCCThreads(t *testing.T) {
	s := testSchema(t, 2)
	pf := s.PartitionByWarehouse(2)
	rng := rand.New(rand.NewSource(7))
	remoteSeen := false
	for i := 0; i < 400 && !remoteSeen; i++ {
		p := s.GenNewOrderParams(rng, 100) // force remote
		if !p.RemoteWH {
			continue
		}
		remoteSeen = true
		tx := s.NewOrderTxn(p)
		parts := map[int]bool{}
		for _, op := range tx.Ops {
			parts[pf(op.Table, op.Key)] = true
		}
		if len(parts) != 2 {
			t.Fatalf("remote order spans %d CC threads", len(parts))
		}
	}
	if !remoteSeen {
		t.Fatal("no remote order generated at 100% remote rate")
	}
}

// Payment with a mutated secondary index: the OLLP plan goes stale between
// generation and execution, and the engines must recover via Replan. This
// forces the miss path that is never exercised by the static index.
func TestPaymentOLLPMissOnIndexChange(t *testing.T) {
	s := testSchema(t, 1)
	p := PaymentParams{W: 0, D: 0, CW: 0, CD: 0, ByName: true, NameCode: 3, Amount: 100}
	tx := s.PaymentTxn(p)
	tx.SortOps()

	// Invalidate the plan: move the posting list's middle by inserting a
	// customer with the same last-name code.
	planned, _ := s.resolveCustomer(p)
	s.CustIndex.Add(lastNameKey(0, 0, 3), planned+7) // key beyond old middle
	fresh, _ := s.resolveCustomer(p)
	if fresh == planned {
		// Middle may be unchanged with an even→odd transition; add more.
		s.CustIndex.Add(lastNameKey(0, 0, 3), planned+11)
		fresh, _ = s.resolveCustomer(p)
	}
	if fresh == planned {
		t.Skip("could not displace index middle with this layout")
	}

	ctx := &engine.PlannedCtx{DB: s.DB}
	ctx.Begin(tx)
	err := tx.Logic(ctx)
	if err != txn.ErrEstimateMiss {
		t.Fatalf("stale plan: err = %v, want ErrEstimateMiss", err)
	}
	ctx.Abort()

	// Replan and re-run: must now commit against the fresh customer.
	tx.Replan(tx)
	tx.SortOps()
	ctx.Begin(tx)
	if err := tx.Logic(ctx); err != nil {
		t.Fatalf("replanned run failed: %v", err)
	}
	ctx.Commit()
	crec := s.DB.Table(s.Customer).Get(fresh)
	if storage.GetU64(crec, cPaymentCnt) != 1 {
		t.Fatal("payment not applied after replanning")
	}
	// The warehouse rollback must have kept W_YTD consistent: exactly one
	// committed payment.
	if got := s.TotalPayments(); got != 100 {
		t.Fatalf("W_YTD = %d, want 100 (abort leaked)", got)
	}
}

// OrderStatus and StockLevel run against live NewOrder traffic without
// corrupting anything (read-only extensions under churn).
func TestReadOnlyExtensionsUnderChurn(t *testing.T) {
	s := testSchema(t, 1)
	eng := dlfree.New(dlfree.Config{DB: s.DB, Threads: 4})
	src := &Mix{
		S:              s,
		NewOrderWeight: 60, PaymentWeight: 0,
		OrderStatusWeight: 20, StockLevelWeight: 20,
	}
	res := eng.Run(src, 200*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Stock quantities never go non-positive-refill: every stock row stays in
// a sane range under sustained NewOrder traffic (the +91 refill rule).
func TestStockRefillInvariant(t *testing.T) {
	s := testSchema(t, 1)
	eng := orthrus.New(orthrus.Config{
		DB: s.DB, CCThreads: 1, ExecThreads: 3, Partition: s.PartitionByWarehouse(1),
	})
	src := &Mix{S: s, NewOrderWeight: 100, PaymentWeight: 0}
	if res := eng.Run(src, 200*time.Millisecond); res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	for i := 0; i < s.Items; i++ {
		q := storage.GetI64(s.DB.Table(s.Stock).Get(s.SKey(0, i)), sQuantity)
		if q < 1 || q > 190 {
			t.Fatalf("stock %d quantity %d outside refill envelope", i, q)
		}
	}
}

// Delivery through a full engine on live traffic: credited balances and
// cursors stay consistent.
func TestDeliveryUnderEngineTraffic(t *testing.T) {
	s := testSchema(t, 1)
	eng := dlfree.New(dlfree.Config{DB: s.DB, Threads: 3})
	src := &Mix{S: s, NewOrderWeight: 70, PaymentWeight: 0, DeliveryWeight: 30}
	res := eng.Run(src, 250*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	// Every district's delivery cursor is within [1, next_o_id].
	for d := 0; d < DistrictsPerWarehouse; d++ {
		drec := s.DB.Table(s.District).Get(DKey(0, d))
		cur := storage.GetU64(drec, dDelivOID)
		next := storage.GetU64(drec, dNextOID)
		if cur < 1 || cur > next {
			t.Fatalf("district %d cursor %d outside [1,%d]", d, cur, next)
		}
		// Orders below the cursor are delivered (carrier set, marker 0).
		for o := uint64(1); o < cur; o++ {
			orec := s.DB.Table(s.Order).Get(OKey(0, d, o))
			if orec == nil {
				t.Fatalf("delivered order (%d,%d) missing", d, o)
			}
			if storage.GetU64(orec, oCarrierID) == 0 {
				t.Fatalf("delivered order (%d,%d) has no carrier", d, o)
			}
			if marker := s.DB.Table(s.NewOrder).Get(OKey(0, d, o)); marker != nil && marker[0] != 0 {
				t.Fatalf("delivered order (%d,%d) still marked pending", d, o)
			}
		}
	}
}

// A NewOrder that writes then re-reads the same district through the 2PL
// upgrade guard: Write-then-Read on the same key must reuse the held
// exclusive lock (no self-deadlock).
func TestHeldLockReuse(t *testing.T) {
	s := testSchema(t, 1)
	// The Mix's NewOrder logic writes District once but the guard matters
	// for any same-key reaccess; construct one explicitly.
	tx := &txn.Txn{Ops: []txn.Op{{Table: s.District, Key: DKey(0, 0), Mode: txn.Write}}}
	tx.Logic = func(ctx txn.Ctx) error {
		if _, err := ctx.Write(s.District, DKey(0, 0)); err != nil {
			return err
		}
		// Re-read under the held X lock.
		if _, err := ctx.Read(s.District, DKey(0, 0)); err != nil {
			return err
		}
		// And re-write.
		_, err := ctx.Write(s.District, DKey(0, 0))
		return err
	}
	ctx := &engine.PlannedCtx{DB: s.DB}
	ctx.Begin(tx)
	if err := tx.Logic(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Commit()
}
