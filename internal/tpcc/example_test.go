package tpcc_test

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine/dlfree"
	"repro/internal/tpcc"
)

// Example_loadAndRun loads a small TPC-C database, runs the paper's
// NewOrder+Payment mix briefly, and audits the money invariants.
func Example_loadAndRun() {
	s, err := tpcc.Load(tpcc.Config{Warehouses: 2, Items: 100, CustomersPerDistrict: 20})
	if err != nil {
		panic(err)
	}
	eng := dlfree.New(dlfree.Config{DB: s.DB, Threads: 2})
	res := eng.Run(&tpcc.Mix{S: s}, 50*time.Millisecond)
	fmt.Println("committed >", res.Totals.Committed > 0)
	fmt.Println("consistent:", s.CheckConsistency() == nil)
	// Output:
	// committed > true
	// consistent: true
}

// ExampleSchema_GenNewOrderParams shows the generator API for building
// custom harnesses on top of the substrate.
func ExampleSchema_GenNewOrderParams() {
	s, _ := tpcc.Load(tpcc.Config{Warehouses: 1, Items: 100, CustomersPerDistrict: 20})
	rng := rand.New(rand.NewSource(1))
	p := s.GenNewOrderParams(rng, 0)
	fmt.Println("lines within spec:", len(p.Items) >= 5 && len(p.Items) <= 15)
	tx := s.NewOrderTxn(p)
	fmt.Println("declared ops:", len(tx.Ops) == 3+len(p.Items))
	// Output:
	// lines within spec: true
	// declared ops: true
}

// ExampleLastName renders the spec's syllable-coded customer last names.
func ExampleLastName() {
	fmt.Println(tpcc.LastName(0))
	fmt.Println(tpcc.LastName(123))
	// Output:
	// BARBARBAR
	// OUGHTABLEPRI
}
