package tpcc

import (
	"fmt"
	"math/rand"

	"repro/internal/txn"
)

// Paper-default mix rates (§4.4).
const (
	DefaultRemoteNewOrderPct = 10 // NewOrder txns spanning two warehouses
	DefaultRemotePaymentPct  = 15 // Payment txns paying a remote customer
)

// Mix is a workload.Source emitting a weighted TPC-C transaction mix. The
// zero weights default to the paper's evaluation mix: 50% NewOrder, 50%
// Payment ("our evaluation therefore uses an equal mix of NewOrder and
// Payment transactions", §4.4).
type Mix struct {
	S *Schema

	// Weights; all zero means {NewOrder: 50, Payment: 50}.
	NewOrderWeight    int
	PaymentWeight     int
	OrderStatusWeight int
	DeliveryWeight    int
	StockLevelWeight  int

	// RemoteNewOrderPct / RemotePaymentPct override the spec rates and
	// must lie in [0, 100]; zero means the defaults above (there is no
	// sentinel for "never remote" — single-warehouse schemas are always
	// local, see GenNewOrderParams).
	RemoteNewOrderPct int
	RemotePaymentPct  int
}

// Validate panics on a malformed mix — negative weights or remote
// percentages outside [0, 100] — with a message naming the field, the
// same eager-validation style as orthrus.Config. Next validates on every
// draw (a handful of integer compares, invisible next to transaction
// generation), so a bad mix fails loudly instead of producing a silently
// skewed or out-of-range draw.
func (m *Mix) Validate() {
	check := func(name string, v int) {
		if v < 0 {
			panic(fmt.Sprintf("tpcc: Mix.%s must not be negative (got %d)", name, v))
		}
	}
	check("NewOrderWeight", m.NewOrderWeight)
	check("PaymentWeight", m.PaymentWeight)
	check("OrderStatusWeight", m.OrderStatusWeight)
	check("DeliveryWeight", m.DeliveryWeight)
	check("StockLevelWeight", m.StockLevelWeight)
	pct := func(name string, v int) {
		if v < 0 || v > 100 {
			panic(fmt.Sprintf("tpcc: Mix.%s must be in [0, 100] (got %d; 0 means the spec default)", name, v))
		}
	}
	pct("RemoteNewOrderPct", m.RemoteNewOrderPct)
	pct("RemotePaymentPct", m.RemotePaymentPct)
}

func (m *Mix) rates() (no, pay, os, del, sl, total int) {
	no, pay, os, del, sl = m.NewOrderWeight, m.PaymentWeight, m.OrderStatusWeight, m.DeliveryWeight, m.StockLevelWeight
	total = no + pay + os + del + sl
	if total == 0 {
		no, pay, total = 50, 50, 100
	}
	return
}

func (m *Mix) remoteNO() int {
	if m.RemoteNewOrderPct != 0 {
		return m.RemoteNewOrderPct
	}
	return DefaultRemoteNewOrderPct
}

func (m *Mix) remotePay() int {
	if m.RemotePaymentPct != 0 {
		return m.RemotePaymentPct
	}
	return DefaultRemotePaymentPct
}

// Next implements workload.Source.
func (m *Mix) Next(_ int, rng *rand.Rand) *txn.Txn {
	m.Validate()
	no, pay, os, del, _, total := m.rates()
	r := rng.Intn(total)
	switch {
	case r < no:
		return m.S.NewOrderTxn(m.S.GenNewOrderParams(rng, m.remoteNO()))
	case r < no+pay:
		return m.S.PaymentTxn(m.S.GenPaymentParams(rng, m.remotePay()))
	case r < no+pay+os:
		return m.S.OrderStatusTxn(m.S.GenOrderStatusParams(rng))
	case r < no+pay+os+del:
		return m.S.DeliveryTxn(rng.Intn(m.S.W))
	default:
		return m.S.StockLevelTxn(m.S.GenStockLevelParams(rng))
	}
}
