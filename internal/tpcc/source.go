package tpcc

import (
	"math/rand"

	"repro/internal/txn"
)

// Paper-default mix rates (§4.4).
const (
	DefaultRemoteNewOrderPct = 10 // NewOrder txns spanning two warehouses
	DefaultRemotePaymentPct  = 15 // Payment txns paying a remote customer
)

// Mix is a workload.Source emitting a weighted TPC-C transaction mix. The
// zero weights default to the paper's evaluation mix: 50% NewOrder, 50%
// Payment ("our evaluation therefore uses an equal mix of NewOrder and
// Payment transactions", §4.4).
type Mix struct {
	S *Schema

	// Weights; all zero means {NewOrder: 50, Payment: 50}.
	NewOrderWeight    int
	PaymentWeight     int
	OrderStatusWeight int
	DeliveryWeight    int
	StockLevelWeight  int

	// RemoteNewOrderPct / RemotePaymentPct override the spec rates;
	// zero means the defaults above.
	RemoteNewOrderPct int
	RemotePaymentPct  int
}

func (m *Mix) rates() (no, pay, os, del, sl, total int) {
	no, pay, os, del, sl = m.NewOrderWeight, m.PaymentWeight, m.OrderStatusWeight, m.DeliveryWeight, m.StockLevelWeight
	total = no + pay + os + del + sl
	if total == 0 {
		no, pay, total = 50, 50, 100
	}
	return
}

func (m *Mix) remoteNO() int {
	if m.RemoteNewOrderPct != 0 {
		return m.RemoteNewOrderPct
	}
	return DefaultRemoteNewOrderPct
}

func (m *Mix) remotePay() int {
	if m.RemotePaymentPct != 0 {
		return m.RemotePaymentPct
	}
	return DefaultRemotePaymentPct
}

// Next implements workload.Source.
func (m *Mix) Next(_ int, rng *rand.Rand) *txn.Txn {
	no, pay, os, del, _, total := m.rates()
	r := rng.Intn(total)
	switch {
	case r < no:
		return m.S.NewOrderTxn(m.S.GenNewOrderParams(rng, m.remoteNO()))
	case r < no+pay:
		return m.S.PaymentTxn(m.S.GenPaymentParams(rng, m.remotePay()))
	case r < no+pay+os:
		return m.S.OrderStatusTxn(m.S.GenOrderStatusParams(rng))
	case r < no+pay+os+del:
		return m.S.DeliveryTxn(rng.Intn(m.S.W))
	default:
		return m.S.StockLevelTxn(m.S.GenStockLevelParams(rng))
	}
}
