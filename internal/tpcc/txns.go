package tpcc

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/txn"
)

// NURand is the spec's non-uniform random function (clause 2.1.6) with
// the constant fixed at load time.
func NURand(rng *rand.Rand, a, x, y int) int {
	c := a / 2 // fixed C; any constant in [0,a] satisfies the spec shape
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// NewOrderParams are one NewOrder invocation's inputs.
type NewOrderParams struct {
	W, D, C  int
	Items    []int // item ids
	SupplyW  []int // supply warehouse per line
	Qty      []int
	RemoteWH bool // true when any line's supply warehouse differs from W
}

// GenNewOrderParams draws spec-distributed inputs. remotePct is the
// percentage of transactions that span two warehouses (paper: 10%).
func (s *Schema) GenNewOrderParams(rng *rand.Rand, remotePct int) NewOrderParams {
	w := rng.Intn(s.W)
	p := NewOrderParams{
		W: w,
		D: rng.Intn(DistrictsPerWarehouse),
		C: NURand(rng, 1023, 0, s.CustomersPerDistrict-1),
	}
	n := 5 + rng.Intn(11) // 5..15 lines
	seen := make(map[int]bool, n)
	for len(p.Items) < n {
		it := NURand(rng, 8191, 0, s.Items-1)
		if seen[it] {
			continue
		}
		seen[it] = true
		p.Items = append(p.Items, it)
		p.SupplyW = append(p.SupplyW, w)
		p.Qty = append(p.Qty, 1+rng.Intn(10))
	}
	if s.W > 1 && rng.Intn(100) < remotePct {
		// One line supplied by a remote warehouse: the transaction spans
		// two warehouses (paper §4.4).
		line := rng.Intn(n)
		remote := rng.Intn(s.W - 1)
		if remote >= w {
			remote++
		}
		p.SupplyW[line] = remote
		p.RemoteWH = true
	}
	return p
}

// NewOrderTxn builds a runnable NewOrder transaction. The record access
// set is exact: R(Warehouse), W(District), R(Customer), W(Stock per
// line). Item reads bypass concurrency control — the Item table is
// read-only (§4.4). The Order/NewOrder/OrderLine inserts are declared as
// Write ranges over the keys the transaction expects to create, which
// planned engines fence with stripe locks so concurrent range scans
// (OrderStatus, Delivery, StockLevel) cannot observe a half-inserted
// order. The expected order id is OLLP reconnaissance — D_NEXT_O_ID read
// without locks — so the declared fence can go stale: execution then
// surfaces txn.ErrEstimateMiss from the insert and Replan re-estimates,
// the same protocol as Payment-by-last-name.
func (s *Schema) NewOrderTxn(p NewOrderParams) *txn.Txn {
	t := &txn.Txn{}
	plan := func(t *txn.Txn) {
		t.Ops = t.Ops[:0]
		t.Ops = append(t.Ops,
			txn.Op{Table: s.Warehouse, Key: WKey(p.W), Mode: txn.Read},
			txn.Op{Table: s.District, Key: DKey(p.W, p.D), Mode: txn.Write},
			txn.Op{Table: s.Customer, Key: s.CKey(p.W, p.D, p.C), Mode: txn.Read},
		)
		for i, it := range p.Items {
			t.Ops = append(t.Ops, txn.Op{Table: s.Stock, Key: s.SKey(p.SupplyW[i], it), Mode: txn.Write})
		}
		oid := storage.AtomicGetU64(s.DB.Table(s.District).Get(DKey(p.W, p.D)), dNextOID)
		ok := OKey(p.W, p.D, oid)
		llo, lhi := lineRange(ok)
		t.Ranges = t.Ranges[:0]
		t.Ranges = append(t.Ranges,
			txn.RangeOp{Table: s.Order, Lo: ok, Hi: ok + 1, Mode: txn.Write},
			txn.RangeOp{Table: s.NewOrder, Lo: ok, Hi: ok + 1, Mode: txn.Write},
			txn.RangeOp{Table: s.OrderLine, Lo: llo, Hi: lhi, Mode: txn.Write},
		)
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		wrec, err := ctx.Read(s.Warehouse, WKey(p.W))
		if err != nil {
			return err
		}
		wtax := storage.GetU64(wrec, wTax)

		drec, err := ctx.Write(s.District, DKey(p.W, p.D))
		if err != nil {
			return err
		}
		dtax := storage.GetU64(drec, dTax)
		oid := storage.AtomicGetU64(drec, dNextOID)
		storage.AtomicPutU64(drec, dNextOID, oid+1)

		crec, err := ctx.Read(s.Customer, s.CKey(p.W, p.D, p.C))
		if err != nil {
			return err
		}
		_ = crec

		var total uint64
		var line [orderLineSize]byte
		for i, it := range p.Items {
			price := storage.GetU64(s.DB.Table(s.Item).Get(IKey(it)), iPrice)

			srec, err := ctx.Write(s.Stock, s.SKey(p.SupplyW[i], it))
			if err != nil {
				return err
			}
			qty := storage.GetI64(srec, sQuantity)
			if qty >= int64(p.Qty[i])+10 {
				qty -= int64(p.Qty[i])
			} else {
				qty = qty - int64(p.Qty[i]) + 91
			}
			storage.PutI64(srec, sQuantity, qty)
			storage.AddU64(srec, sYTD, uint64(p.Qty[i]))
			storage.AddU64(srec, sOrderCnt, 1)
			if p.SupplyW[i] != p.W {
				storage.AddU64(srec, sRemoteCnt, 1)
			}

			amount := uint64(p.Qty[i]) * price
			total += amount
			storage.PutU64(line[:], olIID, uint64(it))
			storage.PutU64(line[:], olSupplyW, uint64(p.SupplyW[i]))
			storage.PutU64(line[:], olQuantity, uint64(p.Qty[i]))
			storage.PutU64(line[:], olAmount, amount)
			if err := ctx.Insert(s.OrderLine, OLKey(p.W, p.D, oid, i+1), line[:]); err != nil {
				return err
			}
		}
		_ = wtax + dtax // tax would adjust total; total itself feeds no invariant

		var orec [orderSize]byte
		storage.PutU64(orec[:], oCID, s.CKey(p.W, p.D, p.C))
		storage.PutU64(orec[:], oOLCnt, uint64(len(p.Items)))
		if err := ctx.Insert(s.Order, OKey(p.W, p.D, oid), orec[:]); err != nil {
			return err
		}
		var marker [newOrderSize]byte
		marker[0] = 1 // pending delivery
		if err := ctx.Insert(s.NewOrder, OKey(p.W, p.D, oid), marker[:]); err != nil {
			return err
		}
		// Remember the customer's latest order for OrderStatus. The write
		// targets a field no other transaction type touches, and NewOrder
		// transactions for one customer serialize on the district lock,
		// so the direct write is safe.
		storage.AtomicPutU64(crec, cLastOrder, oid)
		return nil
	}
	return t
}

// PaymentParams are one Payment invocation's inputs.
type PaymentParams struct {
	W, D     int // home warehouse/district (W and D rows updated)
	CW, CD   int // customer's warehouse/district (15% remote)
	ByName   bool
	NameCode int
	C        int // customer id when !ByName
	Amount   uint64
}

// GenPaymentParams draws spec-distributed inputs. remotePct is the
// percentage of payments whose customer lives at another warehouse
// (paper: 15%); 60% of payments select the customer by last name.
func (s *Schema) GenPaymentParams(rng *rand.Rand, remotePct int) PaymentParams {
	w := rng.Intn(s.W)
	p := PaymentParams{
		W:      w,
		D:      rng.Intn(DistrictsPerWarehouse),
		CW:     w,
		Amount: uint64(100 + rng.Intn(499901)), // $1.00 .. $5000.00
	}
	p.CD = rng.Intn(DistrictsPerWarehouse)
	if s.W > 1 && rng.Intn(100) < remotePct {
		p.CW = rng.Intn(s.W - 1)
		if p.CW >= w {
			p.CW++
		}
	}
	if rng.Intn(100) < 60 {
		p.ByName = true
		codes := s.CustomersPerDistrict
		if codes > 1000 {
			codes = 1000
		}
		p.NameCode = NURand(rng, 255, 0, 999) % codes
	} else {
		p.C = NURand(rng, 1023, 0, s.CustomersPerDistrict-1)
	}
	return p
}

// resolveCustomer maps PaymentParams to the customer primary key,
// consulting the last-name secondary index when needed.
func (s *Schema) resolveCustomer(p PaymentParams) (uint64, bool) {
	if !p.ByName {
		return s.CKey(p.CW, p.CD, p.C), true
	}
	ck, _, ok := s.CustIndex.Middle(lastNameKey(p.CW, p.CD, p.NameCode))
	return ck, ok
}

// PaymentTxn builds a runnable Payment transaction. For the 60% of
// payments that locate the customer by last name, the write set is
// "deducible only upon reading the value of a secondary index" (§4.4), so
// the access set is planned by OLLP reconnaissance: resolveCustomer reads
// the index without locks, the result is annotated into Ops, and the logic
// re-resolves at execution time. A divergence surfaces as
// txn.ErrEstimateMiss through the planned context, and Replan rebuilds the
// estimate.
func (s *Schema) PaymentTxn(p PaymentParams) *txn.Txn {
	t := &txn.Txn{}
	plan := func(t *txn.Txn) {
		ck, ok := s.resolveCustomer(p)
		t.Ops = t.Ops[:0]
		t.Ops = append(t.Ops,
			txn.Op{Table: s.Warehouse, Key: WKey(p.W), Mode: txn.Write},
			txn.Op{Table: s.District, Key: DKey(p.W, p.D), Mode: txn.Write},
		)
		if ok {
			t.Ops = append(t.Ops, txn.Op{Table: s.Customer, Key: ck, Mode: txn.Write})
		}
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx txn.Ctx) error {
		wrec, err := ctx.Write(s.Warehouse, WKey(p.W))
		if err != nil {
			return err
		}
		storage.AddU64(wrec, wYTD, p.Amount)

		drec, err := ctx.Write(s.District, DKey(p.W, p.D))
		if err != nil {
			return err
		}
		storage.AddU64(drec, dYTD, p.Amount)

		ck, ok := s.resolveCustomer(p)
		if ok {
			crec, err := ctx.Write(s.Customer, ck)
			if err != nil {
				return err
			}
			storage.AddI64(crec, cBalance, -int64(p.Amount))
			storage.AddU64(crec, cYTDPayment, p.Amount)
			storage.AddU64(crec, cPaymentCnt, 1)
		}

		var hrec [historySize]byte
		storage.PutU64(hrec[:], hCID, ck)
		storage.PutU64(hrec[:], hAmount, p.Amount)
		return ctx.Insert(s.History, historyKey(), hrec[:])
	}
	return t
}

// historySeq hands out unique append-only History keys. History rows are
// never read back by any transaction, so a global counter is the only
// cross-thread state and it is off every measured path's critical section.
var historySeq atomic.Uint64

func historyKey() uint64 { return historySeq.Add(1) }
