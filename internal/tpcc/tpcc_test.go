package tpcc

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/engine/twopl"
	"repro/internal/orthrus"
	"repro/internal/partstore"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func testSchema(t *testing.T, warehouses int) *Schema {
	t.Helper()
	s, err := Load(Config{Warehouses: warehouses, Items: 200, CustomersPerDistrict: 30})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadRejectsBadConfig(t *testing.T) {
	if _, err := Load(Config{Warehouses: 0}); err == nil {
		t.Fatal("Load accepted zero warehouses")
	}
}

func TestLoaderCardinalities(t *testing.T) {
	s := testSchema(t, 2)
	db := s.DB
	if db.Table(s.Warehouse).Len() != 2 {
		t.Fatal("warehouse count")
	}
	if db.Table(s.District).Len() != 20 {
		t.Fatal("district count")
	}
	if db.Table(s.Customer).Len() != 2*10*30 {
		t.Fatal("customer count")
	}
	if db.Table(s.Stock).Len() != 2*200 {
		t.Fatal("stock count")
	}
	if db.Table(s.Item).Len() != 200 {
		t.Fatal("item count")
	}
	// Every item has a price; every stock row has quantity in [10,100].
	for i := 0; i < s.Items; i++ {
		if storage.GetU64(db.Table(s.Item).Get(IKey(i)), iPrice) == 0 {
			t.Fatalf("item %d has no price", i)
		}
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < s.Items; i++ {
			q := storage.GetI64(db.Table(s.Stock).Get(s.SKey(w, i)), sQuantity)
			if q < 10 || q > 100 {
				t.Fatalf("stock (%d,%d) quantity %d", w, i, q)
			}
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEncodingsRoundTrip(t *testing.T) {
	s := testSchema(t, 3)
	cases := []struct {
		table int
		key   uint64
		want  int
	}{
		{s.Warehouse, WKey(2), 2},
		{s.District, DKey(2, 9), 2},
		{s.Customer, s.CKey(1, 5, 29), 1},
		{s.Stock, s.SKey(2, 199), 2},
		{s.Order, OKey(1, 3, 77), 1},
		{s.NewOrder, OKey(2, 0, 1), 2},
		{s.OrderLine, OLKey(1, 9, 123, 15), 1},
	}
	for _, c := range cases {
		if got := s.WarehouseOf(c.table, c.key); got != c.want {
			t.Errorf("WarehouseOf(t%d, %d) = %d, want %d", c.table, c.key, got, c.want)
		}
	}
	// Distinct (w,d,o,ol) tuples must map to distinct OrderLine keys.
	seen := map[uint64]bool{}
	for w := 0; w < 3; w++ {
		for d := 0; d < 10; d++ {
			for o := uint64(1); o < 4; o++ {
				for ol := 1; ol <= MaxOrderLines; ol++ {
					k := OLKey(w, d, o, ol)
					if seen[k] {
						t.Fatalf("OLKey collision at (%d,%d,%d,%d)", w, d, o, ol)
					}
					seen[k] = true
				}
			}
		}
	}
}

func TestPartitionByWarehouse(t *testing.T) {
	s := testSchema(t, 4)
	pf := s.PartitionByWarehouse(2)
	if pf(s.Warehouse, WKey(3)) != 1 || pf(s.Warehouse, WKey(2)) != 0 {
		t.Fatal("warehouse partitioning wrong")
	}
	if pf(s.District, DKey(3, 7)) != 1 {
		t.Fatal("district partitioning wrong")
	}
}

func TestLastNameRendering(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
}

func TestNURandRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := NURand(rng, 1023, 0, 29)
		if v < 0 || v > 29 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
}

func TestGenNewOrderParamsShape(t *testing.T) {
	s := testSchema(t, 4)
	rng := rand.New(rand.NewSource(2))
	remote := 0
	for i := 0; i < 2000; i++ {
		p := s.GenNewOrderParams(rng, 10)
		if len(p.Items) < 5 || len(p.Items) > 15 {
			t.Fatalf("lines = %d", len(p.Items))
		}
		seen := map[int]bool{}
		wh := map[int]bool{}
		for j, it := range p.Items {
			if seen[it] {
				t.Fatal("duplicate item in order")
			}
			seen[it] = true
			wh[p.SupplyW[j]] = true
			if p.Qty[j] < 1 || p.Qty[j] > 10 {
				t.Fatalf("qty = %d", p.Qty[j])
			}
		}
		if p.RemoteWH {
			remote++
			if len(wh) != 2 {
				t.Fatalf("remote order spans %d warehouses", len(wh))
			}
		} else if len(wh) != 1 {
			t.Fatal("local order spans multiple warehouses")
		}
	}
	if remote < 120 || remote > 280 { // ~10% of 2000
		t.Fatalf("remote rate = %d/2000", remote)
	}
}

func TestGenPaymentParamsShape(t *testing.T) {
	s := testSchema(t, 4)
	rng := rand.New(rand.NewSource(3))
	remote, byName := 0, 0
	for i := 0; i < 2000; i++ {
		p := s.GenPaymentParams(rng, 15)
		if p.CW != p.W {
			remote++
		}
		if p.ByName {
			byName++
			if p.NameCode < 0 || p.NameCode >= 30 {
				t.Fatalf("name code %d out of range for 30 customers", p.NameCode)
			}
		}
	}
	if remote < 200 || remote > 400 { // ~15%
		t.Fatalf("remote rate = %d/2000", remote)
	}
	if byName < 1050 || byName > 1350 { // ~60%
		t.Fatalf("by-name rate = %d/2000", byName)
	}
}

// Run the paper's 50/50 mix on every engine; TPC-C's money invariants must
// hold afterwards and the ledger must match the committed counts.
func TestMixOnAllEngines(t *testing.T) {
	const threads = 4
	build := func(s *Schema) []engine.Engine {
		return []engine.Engine{
			twopl.New(twopl.Config{DB: s.DB, Handler: deadlock.NewDreadlocks(threads), Threads: threads}),
			twopl.New(twopl.Config{DB: s.DB, Handler: deadlock.WaitDie{}, Threads: threads}),
			dlfree.New(dlfree.Config{DB: s.DB, Threads: threads}),
			orthrus.New(orthrus.Config{
				DB: s.DB, CCThreads: 2, ExecThreads: 2,
				Partition: s.PartitionByWarehouse(2),
			}),
		}
	}
	// Engines share nothing across subtests: fresh schema per engine.
	for i := 0; i < 4; i++ {
		s := testSchema(t, 2)
		eng := build(s)[i]
		t.Run(eng.Name(), func(t *testing.T) {
			src := &Mix{S: s}
			res := eng.Run(src, 200*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			if err := s.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			if s.OrdersPlaced() == 0 {
				t.Fatal("no orders placed")
			}
			if s.TotalPayments() == 0 {
				t.Fatal("no payments recorded")
			}
		})
	}
}

// The full five-transaction mix (extensions included) must hold the same
// invariants.
func TestFullMixWithExtensions(t *testing.T) {
	s := testSchema(t, 2)
	eng := dlfree.New(dlfree.Config{DB: s.DB, Threads: 4})
	src := &Mix{
		S:              s,
		NewOrderWeight: 45, PaymentWeight: 43,
		OrderStatusWeight: 4, DeliveryWeight: 4, StockLevelWeight: 4,
	}
	res := eng.Run(src, 300*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestFullMixOnOrthrus(t *testing.T) {
	s := testSchema(t, 2)
	eng := orthrus.New(orthrus.Config{
		DB: s.DB, CCThreads: 2, ExecThreads: 3,
		Partition: s.PartitionByWarehouse(2),
	})
	src := &Mix{
		S:              s,
		NewOrderWeight: 45, PaymentWeight: 43,
		OrderStatusWeight: 4, DeliveryWeight: 4, StockLevelWeight: 4,
	}
	res := eng.Run(src, 300*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Deliveries must credit customers with exactly the ordered amounts.
func TestDeliveryCreditsCustomer(t *testing.T) {
	s := testSchema(t, 1)
	// Place one order synchronously through a planned context.
	p := s.GenNewOrderParams(rand.New(rand.NewSource(4)), 0)
	order := s.NewOrderTxn(p)
	engine.MaterializeRanges(s.DB, order) // stripe locks for the inserts
	order.SortOps()
	ctx := &engine.PlannedCtx{DB: s.DB}
	ctx.Begin(order)
	if err := order.Logic(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Commit()

	del := s.DeliveryTxn(0)
	engine.MaterializeRanges(s.DB, del)
	del.SortOps()
	ctx.Begin(del)
	if err := del.Logic(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Commit()

	crec := s.DB.Table(s.Customer).Get(s.CKey(p.W, p.D, p.C))
	if storage.GetU64(crec, cDeliveryCnt) != 1 {
		t.Fatal("delivery count not incremented")
	}
	if storage.GetI64(crec, cBalance) <= -1000 {
		t.Fatal("customer balance not credited")
	}
	// Cursor advanced; order marked delivered.
	drec := s.DB.Table(s.District).Get(DKey(p.W, p.D))
	if storage.GetU64(drec, dDelivOID) != 2 {
		t.Fatalf("delivery cursor = %d", storage.GetU64(drec, dDelivOID))
	}
	if s.DB.Table(s.NewOrder).Get(OKey(p.W, p.D, 1))[0] != 0 {
		t.Fatal("new-order marker not cleared")
	}
}

// Payment by last name must pick the middle customer of the posting list
// and the OLLP plan must match the execution-time resolution.
func TestPaymentByNameResolution(t *testing.T) {
	s := testSchema(t, 1)
	p := PaymentParams{W: 0, D: 3, CW: 0, CD: 3, ByName: true, NameCode: 7, Amount: 500}
	tx := s.PaymentTxn(p)
	// The plan must declare the same customer the logic resolves.
	ck, ok := s.resolveCustomer(p)
	if !ok {
		t.Fatal("resolution failed")
	}
	found := false
	for _, op := range tx.Ops {
		if op.Table == s.Customer && op.Key == ck && op.Mode == txn.Write {
			found = true
		}
	}
	if !found {
		t.Fatalf("plan %v does not declare customer %d", tx.Ops, ck)
	}
	// Execute.
	tx.SortOps()
	ctx := &engine.PlannedCtx{DB: s.DB}
	ctx.Begin(tx)
	if err := tx.Logic(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Commit()
	crec := s.DB.Table(s.Customer).Get(ck)
	if storage.GetU64(crec, cPaymentCnt) != 1 || storage.GetI64(crec, cBalance) != -1500 {
		t.Fatal("payment not applied to resolved customer")
	}
}

// Confirm the mix works under the warehouse partitioner with partstore-
// style spread: all NewOrder locks resolve to at most two partitions.
func TestNewOrderPartitionFootprint(t *testing.T) {
	s := testSchema(t, 4)
	pf := s.PartitionByWarehouse(4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		p := s.GenNewOrderParams(rng, 10)
		tx := s.NewOrderTxn(p)
		parts := map[int]bool{}
		for _, op := range tx.Ops {
			parts[pf(op.Table, op.Key)] = true
		}
		want := 1
		if p.RemoteWH {
			want = 2
		}
		if len(parts) > want {
			t.Fatalf("order spans %d partitions, want <= %d", len(parts), want)
		}
	}
}

var _ workload.Source = (*Mix)(nil)

// The five-transaction mix (scan-heavy extensions included) on the two
// remaining engine families: conventional 2PL (lazy stripe/record scan
// locks) and Partitioned-store (partition-footprint phantom protection).
// Together with the dlfree and orthrus mixes above, all four engines run
// OrderStatus/Delivery/StockLevel through Ctx.Scan.
func TestFullMixOnTwoPL(t *testing.T) {
	s := testSchema(t, 2)
	eng := twopl.New(twopl.Config{DB: s.DB, Handler: deadlock.WaitDie{}, Threads: 4})
	src := &Mix{
		S:              s,
		NewOrderWeight: 45, PaymentWeight: 43,
		OrderStatusWeight: 4, DeliveryWeight: 4, StockLevelWeight: 4,
	}
	res := eng.Run(src, 300*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Scanned == 0 {
		t.Fatal("no rows flowed through Ctx.Scan")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestFullMixOnPartstore(t *testing.T) {
	s := testSchema(t, 2)
	eng := partstore.New(partstore.Config{
		DB: s.DB, Partitions: 2, Threads: 4,
		Partition: s.PartitionByWarehouse(2),
	})
	src := &Mix{
		S:              s,
		NewOrderWeight: 45, PaymentWeight: 43,
		OrderStatusWeight: 4, DeliveryWeight: 4, StockLevelWeight: 4,
	}
	res := eng.Run(src, 300*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Scanned == 0 {
		t.Fatal("no rows flowed through Ctx.Scan")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
