// Package partstore implements the "Partitioned-store" baseline of
// Figures 6 and 7: a single-node H-Store/VoltDB-style system, modeled on
// the corresponding baseline in Silo [46] (§4.3):
//
//   - data is partitioned across workers by a partition function;
//   - concurrency control is a coarse partition-level spinlock — there is
//     no record locking at all;
//   - a worker executes a transaction by acquiring the spinlock of every
//     partition the transaction touches (in partition-id order, which
//     makes deadlock impossible), running the logic serially, and
//     releasing.
//
// Single-partition transactions therefore pay one uncontended spinlock
// acquisition; any multi-partition transaction serializes entire
// partitions against each other, which is why the paper's Figure 6 shows
// Partitioned-store collapsing as soon as transactions span two
// partitions.
//
// The paper's baseline also physically partitions index structures to gain
// cache locality. That benefit is invisible at this reproduction's scale
// (see README.md "Scale and fidelity"); the concurrency behaviour — which drives the curve
// shapes — is reproduced exactly.
package partstore

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Config configures a partitioned store.
type Config struct {
	DB *storage.DB
	// Partitions is the physical partition count (paper: one per worker).
	Partitions int
	// Threads is the worker count; defaults to Partitions.
	Threads int
	// Partition maps records to partitions; defaults to
	// txn.HashPartitioner(Partitions).
	Partition txn.PartitionFunc
	// Wal, when enabled, makes commit acknowledgment durable (redo append
	// under the partition locks, acknowledgment from the flusher).
	Wal *wal.Log
	// Snapshot tunes the MVCC snapshot-read path, active when DB has
	// versioned tables: ReadOnly transactions then acquire no partition
	// locks at all — the one access class that escapes the H-Store
	// multi-partition serialization collapse.
	Snapshot engine.SnapshotConfig
	// Checkpoint, when its Store is set, runs a background fuzzy
	// checkpointer over the session (requires an enabled Wal); see
	// engine.CheckpointConfig.
	Checkpoint engine.CheckpointConfig
}

// spinlock is a partition's test-and-set lock, padded to its own cache
// line. Uncontended acquisition is a single atomic — the paper's "minimal
// overhead because the lock is cached by the corresponding worker".
type spinlock struct {
	v atomic.Int32
	_ [60]byte
}

func (l *spinlock) lock() time.Duration {
	if l.v.CompareAndSwap(0, 1) {
		return 0
	}
	start := time.Now()
	for {
		runtime.Gosched()
		if l.v.CompareAndSwap(0, 1) {
			return time.Since(start)
		}
	}
}

func (l *spinlock) unlock() { l.v.Store(0) }

// Engine is the partitioned-store engine.
type Engine struct {
	cfg   Config
	locks []spinlock
	inUse engine.InUseGuard
	clock engine.CommitClock // stamps versioned commits when Wal is off
}

// Validate panics on nonsensical knobs. Threads <= 0 passes — it means
// "one worker per partition" and New fills it.
func (c Config) Validate() {
	if c.Partitions <= 0 {
		panic("partstore: Partitions must be positive")
	}
	_ = c.Threads // any value is legal: <=0 defaults to Partitions
	c.Snapshot.Validate()
	c.Checkpoint.Validate()
}

// New validates the configuration and returns an engine.
func New(cfg Config) *Engine {
	cfg.Validate()
	if cfg.Threads <= 0 {
		cfg.Threads = cfg.Partitions
	}
	if cfg.Partition == nil {
		cfg.Partition = txn.HashPartitioner(cfg.Partitions)
	}
	return &Engine{cfg: cfg, locks: make([]spinlock, cfg.Partitions)}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("partstore(%dp/%dt)", e.cfg.Partitions, e.cfg.Threads)
}

// Run implements engine.Engine via the shared closed-loop driver.
func (e *Engine) Run(src workload.Source, duration time.Duration) metrics.Result {
	return engine.RunClosedLoop(e, src, duration)
}

// Start implements engine.Runtime.
func (e *Engine) Start() engine.Session {
	snaps := engine.NewSnapshots(e.cfg.DB, e.cfg.Wal, &e.clock, e.cfg.Threads, e.cfg.Snapshot)
	ses := engine.NewWorkerSession(e.Name(), e.cfg.Threads, e.Clients(), &e.inUse, e.cfg.Wal,
		func(thread int, stats *metrics.ThreadStats) func(*txn.Txn, *engine.Completion) {
			ids := engine.NewIDSource(thread)
			ctx := &execCtx{db: e.cfg.DB, stats: stats, pf: e.cfg.Partition,
				vts: engine.VersionedView(e.cfg.DB)}
			if e.cfg.Wal.Enabled() {
				ctx.wal = e.cfg.Wal.NewAppender(stats)
			}
			var sctx engine.SnapshotCtx
			return func(t *txn.Txn, comp *engine.Completion) {
				t.ID = ids.Next()
				if t.ReadOnly && snaps != nil {
					// Snapshot fast path: no partition footprint, no
					// spinlocks — even a whole-table analytics scan runs
					// without serializing a single partition.
					start := time.Now()
					snaps.Exec(thread, t, &sctx, stats)
					stats.AddExec(time.Since(start))
					comp.Finish(true)
					return
				}
				e.execute(ctx, t, stats, comp)
			}
		})
	return engine.WithCheckpointer(ses, e.cfg.DB, e.cfg.Wal, e.cfg.Checkpoint)
}

// Clients implements engine.Runtime.
func (e *Engine) Clients() int { return 2 * e.cfg.Threads }

// execute runs one transaction under its partition locks, discharging
// comp exactly once. There is no abort path: partition locks serialize
// every access up front.
func (e *Engine) execute(ctx *execCtx, t *txn.Txn, stats *metrics.ThreadStats, comp *engine.Completion) {
	// The partition footprint: pre-declared by the generator or
	// derived from the declared access set. Ascending order keeps
	// partition-lock acquisition deadlock-free; generator-provided
	// sets carry no ordering guarantee, so sort unconditionally.
	// Copy the footprint out of the transaction: after comp.Defer() below
	// hands ownership to the WAL flusher, the ack may fire — and t be
	// recycled by its producer — while the unlock loop is still running, so
	// the loop must iterate worker-owned memory, never t.Partitions.
	//orthrus:recycle unlock loop runs after Defer; parts is a worker-owned copy of t.Partitions
	parts := append(ctx.lockBuf[:0], t.PartitionSet(e.cfg.Partition)...)
	ctx.lockBuf = parts
	sort.Ints(parts)

	// Chained timestamps: each phase boundary is read once (clock reads
	// are a measurable share of a one-microsecond transaction).
	t0 := time.Now()
	var waited time.Duration
	for _, p := range parts {
		waited += e.locks[p].lock()
	}
	t1 := time.Now()

	ctx.t, ctx.parts = t, parts
	if err := t.Logic(ctx); err != nil {
		panic(fmt.Sprintf("partstore: transaction logic failed: %v", err))
	}
	// Seal the redo record — and install versioned after-images — while
	// the partition locks are still held: a dependent transaction can
	// only reach these partitions after the unlocks below, so its LSN
	// orders after this one.
	var ack func()
	if ctx.wal != nil {
		ack = comp.Defer()
	}
	engine.CommitVersions(ctx.wal, &e.clock, &ctx.vset, stats, ack)
	t2 := time.Now()

	for i := len(parts) - 1; i >= 0; i-- {
		e.locks[parts[i]].unlock()
	}
	t3 := time.Now()

	stats.Committed++
	stats.AddWait(waited)
	stats.AddLock(t1.Sub(t0) - waited + t3.Sub(t2))
	stats.AddExec(t2.Sub(t1))
	if ctx.wal == nil {
		comp.Finish(true)
	}
}

// execCtx accesses storage directly: partition locks already serialize all
// access, so there is no record locking, no undo, and no abort path —
// exactly the H-Store execution model. A non-nil wal appender captures
// the redo write set.
type execCtx struct {
	db      *storage.DB
	t       *txn.Txn
	wal     *wal.Appender
	stats   *metrics.ThreadStats
	pf      txn.PartitionFunc
	parts   []int                     // partitions locked for the current transaction, ascending (worker-owned copy)
	lockBuf []int                     // backing array for parts, reused across transactions
	vts     []*storage.VersionedTable // VersionedView(DB); nil without versioned tables
	vset    engine.VersionSet
}

// Read implements txn.Ctx.
func (c *execCtx) Read(table int, key uint64) ([]byte, error) {
	return c.db.Table(table).Get(key), nil
}

// Write implements txn.Ctx. A missing record yields nil with nothing
// noted for redo — there is no after-image to replay.
func (c *execCtx) Write(table int, key uint64) ([]byte, error) {
	rec := c.db.Table(table).Get(key)
	if rec != nil {
		if c.wal != nil {
			c.wal.Note(table, key, rec)
		}
		c.vset.Note(c.vts, table, key)
	}
	return rec, nil
}

// Insert implements txn.Ctx.
func (c *execCtx) Insert(table int, key uint64, value []byte) error {
	if c.vts != nil && table < len(c.vts) && c.vts[table] != nil {
		panic("partstore: in-transaction Insert on a versioned table (versioned layouts are fixed-size and load-populated)")
	}
	if err := c.db.Table(table).Insert(key, value); err != nil {
		return err
	}
	if c.wal != nil {
		c.wal.Note(table, key, c.db.Table(table).Get(key))
	}
	return nil
}

// Scan implements txn.Ctx. Phantom safety is the partition footprint:
// PartitionSet folds the partition of every key a declared range covers —
// present or not — into the transaction's lock set, so any transaction
// that could insert into the scanned range shares a partition lock with
// this one and is fully serialized against it. The scan itself is then a
// plain ordered-storage walk. The guard below asserts exactly that
// condition — every key in [lo, hi) maps to a held partition — rather
// than requiring the executed range to equal a declared one:
// OLLP-style transactions (StockLevel) legitimately recompute their
// range from rows read under the partition locks, and under an
// entity-aligned partitioner the drifted range still lands on the same
// partitions. A range that escapes the footprint is phantom-prone, so —
// like every other misuse of this engine — it panics rather than
// silently returning racy results.
func (c *execCtx) Scan(table int, lo, hi uint64, fn func(key uint64, rec []byte) error) error {
	for key := lo; key < hi; key++ {
		if p := c.pf(table, key); !containsInt(c.parts, p) {
			panic(fmt.Sprintf("partstore: Scan range t%d/[%d,%d) touches partition %d outside the transaction's footprint %v (declare a covering RangeOp)", table, lo, hi, p, c.parts))
		}
	}
	var err error
	c.db.Table(table).Scan(lo, hi, func(key uint64, rec []byte) bool {
		c.stats.Scanned++
		err = fn(key, rec)
		return err == nil
	})
	return err
}

// containsInt reports whether sorted slice s contains v.
func containsInt(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

var _ engine.System = (*Engine)(nil)
