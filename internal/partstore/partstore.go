// Package partstore implements the "Partitioned-store" baseline of
// Figures 6 and 7: a single-node H-Store/VoltDB-style system, modeled on
// the corresponding baseline in Silo [46] (§4.3):
//
//   - data is partitioned across workers by a partition function;
//   - concurrency control is a coarse partition-level spinlock — there is
//     no record locking at all;
//   - a worker executes a transaction by acquiring the spinlock of every
//     partition the transaction touches (in partition-id order, which
//     makes deadlock impossible), running the logic serially, and
//     releasing.
//
// Single-partition transactions therefore pay one uncontended spinlock
// acquisition; any multi-partition transaction serializes entire
// partitions against each other, which is why the paper's Figure 6 shows
// Partitioned-store collapsing as soon as transactions span two
// partitions.
//
// The paper's baseline also physically partitions index structures to gain
// cache locality. That benefit is invisible at this reproduction's scale
// (see DESIGN.md §3); the concurrency behaviour — which drives the curve
// shapes — is reproduced exactly.
package partstore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Config configures a partitioned store.
type Config struct {
	DB *storage.DB
	// Partitions is the physical partition count (paper: one per worker).
	Partitions int
	// Threads is the worker count; defaults to Partitions.
	Threads int
	// Partition maps records to partitions; defaults to
	// txn.HashPartitioner(Partitions).
	Partition txn.PartitionFunc
}

// spinlock is a partition's test-and-set lock, padded to its own cache
// line. Uncontended acquisition is a single atomic — the paper's "minimal
// overhead because the lock is cached by the corresponding worker".
type spinlock struct {
	v atomic.Int32
	_ [60]byte
}

func (l *spinlock) lock() time.Duration {
	if l.v.CompareAndSwap(0, 1) {
		return 0
	}
	start := time.Now()
	for {
		runtime.Gosched()
		if l.v.CompareAndSwap(0, 1) {
			return time.Since(start)
		}
	}
}

func (l *spinlock) unlock() { l.v.Store(0) }

// Engine is the partitioned-store engine.
type Engine struct {
	cfg   Config
	locks []spinlock
}

// New validates the configuration and returns an engine.
func New(cfg Config) *Engine {
	if cfg.Partitions <= 0 {
		panic("partstore: Partitions must be positive")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = cfg.Partitions
	}
	if cfg.Partition == nil {
		cfg.Partition = txn.HashPartitioner(cfg.Partitions)
	}
	return &Engine{cfg: cfg, locks: make([]spinlock, cfg.Partitions)}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("partstore(%dp/%dt)", e.cfg.Partitions, e.cfg.Threads)
}

// Run implements engine.Engine.
func (e *Engine) Run(src workload.Source, duration time.Duration) metrics.Result {
	set := metrics.NewSet(e.cfg.Threads)
	elapsed := engine.RunWorkers(e.cfg.Threads, duration, func(thread int, stop *atomic.Bool) {
		e.worker(thread, stop, src, set.Thread(thread))
	})
	return metrics.Result{System: e.Name(), Totals: set.Totals(), Duration: elapsed}
}

func (e *Engine) worker(thread int, stop *atomic.Bool, src workload.Source, stats *metrics.ThreadStats) {
	rng := rand.New(rand.NewSource(int64(thread)*6151 + 11))
	ids := engine.NewIDSource(thread)
	ctx := &execCtx{db: e.cfg.DB}

	for !stop.Load() {
		t := src.Next(thread, rng)
		t.ID = ids.Next()

		// The partition footprint: pre-declared by the generator or
		// derived from the declared access set. Ascending order keeps
		// partition-lock acquisition deadlock-free; generator-provided
		// sets carry no ordering guarantee, so sort unconditionally.
		parts := t.PartitionSet(e.cfg.Partition)
		sort.Ints(parts)

		txStart := time.Now()
		lockStart := txStart
		var waited time.Duration
		for _, p := range parts {
			waited += e.locks[p].lock()
		}
		locked := time.Since(lockStart) - waited

		execStart := time.Now()
		ctx.t = t
		if err := t.Logic(ctx); err != nil {
			panic(fmt.Sprintf("partstore: transaction logic failed: %v", err))
		}
		execDur := time.Since(execStart)

		relStart := time.Now()
		for i := len(parts) - 1; i >= 0; i-- {
			e.locks[parts[i]].unlock()
		}
		locked += time.Since(relStart)

		stats.Committed++
		stats.Latency.Record(time.Since(txStart))
		stats.AddWait(waited)
		stats.AddLock(locked)
		stats.AddExec(execDur)
	}
}

// execCtx accesses storage directly: partition locks already serialize all
// access, so there is no record locking, no undo, and no abort path —
// exactly the H-Store execution model.
type execCtx struct {
	db *storage.DB
	t  *txn.Txn
}

// Read implements txn.Ctx.
func (c *execCtx) Read(table int, key uint64) ([]byte, error) {
	return c.db.Table(table).Get(key), nil
}

// Write implements txn.Ctx.
func (c *execCtx) Write(table int, key uint64) ([]byte, error) {
	return c.db.Table(table).Get(key), nil
}

// Insert implements txn.Ctx.
func (c *execCtx) Insert(table int, key uint64, value []byte) error {
	return c.db.Table(table).Insert(key, value)
}

var _ engine.Engine = (*Engine)(nil)
