package partstore

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

func newDB(n uint64) (*storage.DB, int) {
	db := storage.NewDB()
	id := db.Create(storage.Layout{Name: "main", NumRecords: n, RecordSize: 64})
	return db, id
}

func sumTable(db *storage.DB, tbl int, n uint64) uint64 {
	var sum uint64
	for k := uint64(0); k < n; k++ {
		sum += storage.GetU64(db.Table(tbl).Get(k), 0)
	}
	return sum
}

func TestSpinlockMutualExclusion(t *testing.T) {
	var l spinlock
	var counter int
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.lock()
				counter++
				l.unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d", counter, workers*per)
	}
}

func TestSpinlockReportsContendedWait(t *testing.T) {
	var l spinlock
	if d := l.lock(); d != 0 {
		t.Fatalf("uncontended lock waited %v", d)
	}
	done := make(chan time.Duration, 1)
	go func() {
		done <- l.lock()
	}()
	time.Sleep(5 * time.Millisecond)
	l.unlock()
	if d := <-done; d < time.Millisecond {
		t.Fatalf("contended lock reported %v wait", d)
	}
	l.unlock()
}

func TestMultiPartitionConservation(t *testing.T) {
	const records, parts = 64, 4
	db, tbl := newDB(records)
	for k := uint64(0); k < records; k++ {
		storage.PutU64(db.Table(tbl).Get(k), 0, 100)
	}
	eng := New(Config{DB: db, Partitions: parts, Threads: 4})
	src := &workload.Transfer{Table: tbl, NumRecords: records}
	res := eng.Run(src, 150*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Totals.Aborted != 0 {
		t.Fatal("partitioned store never aborts")
	}
	if got := sumTable(db, tbl, records); got != records*100 {
		t.Fatalf("sum = %d, want %d", got, records*100)
	}
}

func TestRMWIncrementsAccounted(t *testing.T) {
	const records, parts = 256, 4
	db, tbl := newDB(records)
	eng := New(Config{DB: db, Partitions: parts, Threads: 4})
	src := &workload.YCSB{
		Table: tbl, NumRecords: records, OpsPerTxn: 10,
		Partitions: parts, Spread: 2, MultiPartitionPct: 50,
	}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	res := eng.Run(src, 150*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
	want := res.Totals.Committed * 10
	if got := sumTable(db, tbl, records); got != want {
		t.Fatalf("increments = %d, want %d", got, want)
	}
}

func TestDefaultsAndName(t *testing.T) {
	db, _ := newDB(16)
	eng := New(Config{DB: db, Partitions: 3})
	if eng.cfg.Threads != 3 {
		t.Fatalf("default Threads = %d", eng.cfg.Threads)
	}
	if !strings.Contains(eng.Name(), "partstore(3p/3t)") {
		t.Fatalf("Name = %q", eng.Name())
	}
}

// Single-partition throughput should comfortably exceed all-partition
// throughput at equal thread counts — the Figure 6 cliff, in miniature.
func TestSinglePartitionFasterThanAllPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive comparison")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		// With a single hardware thread there is no parallelism for the
		// coarse partition locks to destroy, so the paper's Figure-6 gap
		// cannot manifest; the comparison is only meaningful multi-core.
		t.Skip("requires >= 2 hardware threads")
	}
	const records, parts = 1 << 12, 4
	run := func(spread int) float64 {
		db, tbl := newDB(records)
		eng := New(Config{DB: db, Partitions: parts, Threads: parts})
		src := &workload.YCSB{
			Table: tbl, NumRecords: records, OpsPerTxn: 8,
			Partitions: parts, Spread: spread, MultiPartitionPct: 100,
		}
		if err := src.Validate(); err != nil {
			t.Fatal(err)
		}
		return eng.Run(src, 200*time.Millisecond).Throughput()
	}
	single := run(1)
	all := run(parts)
	if single <= all {
		t.Fatalf("single-partition %.0f <= all-partition %.0f txns/s", single, all)
	}
}

func TestPartitionSetOrderingUsed(t *testing.T) {
	// Transactions with explicit unordered Partitions still terminate:
	// PartitionSet caches what the generator provided, which the
	// generator produces without ordering guarantees — the engine must
	// not rely on it being sorted to avoid deadlock... it sorts ops-derived
	// sets; generator sets are used as-is, so feed adversarial pairs.
	const records, parts = 64, 4
	db, tbl := newDB(records)
	eng := New(Config{DB: db, Partitions: parts, Threads: 2})
	var seq atomic.Int64
	src := srcFunc(func() *txn.Txn {
		a, b := 0, 1
		if seq.Add(1)%2 == 0 {
			a, b = 1, 0
		}
		t := &txn.Txn{
			Ops: []txn.Op{
				{Table: tbl, Key: uint64(a), Mode: txn.Write},
				{Table: tbl, Key: uint64(b), Mode: txn.Write},
			},
		}
		t.Logic = func(ctx txn.Ctx) error {
			for _, op := range t.Ops {
				rec, err := ctx.Write(op.Table, op.Key)
				if err != nil {
					return err
				}
				storage.PutU64(rec, 0, storage.GetU64(rec, 0)+1)
			}
			return nil
		}
		return t
	})
	res := eng.Run(src, 100*time.Millisecond)
	if res.Totals.Committed == 0 {
		t.Fatal("no commits")
	}
}

type srcFunc func() *txn.Txn

func (f srcFunc) Next(int, *rand.Rand) *txn.Txn { return f() }
