package deadlock

import (
	"sync/atomic"
	"time"

	"repro/internal/lock"
)

// This file adds two classic policies beyond the paper's lineup, for the
// handler ablation benches: NO_WAIT (evaluated by Yu et al. [50], the
// study that motivated the paper) and wound-wait (the dual of wait-die).

// NoWait aborts a requester on any conflict — the simplest possible
// deadlock prevention: nobody ever waits, so no cycle can form. Under
// high contention its abort rate is extreme, which is exactly why it is
// an interesting extra baseline.
type NoWait struct{}

// Name implements lock.Handler.
func (NoWait) Name() string { return "2pl-nowait" }

// OnConflict implements lock.Handler.
func (NoWait) OnConflict(*lock.Request, []*lock.Request) lock.Decision { return lock.Die }

// Wait implements lock.Handler; unreachable because conflicts always die.
func (NoWait) Wait(_ *lock.Table, r *lock.Request) bool { r.AwaitToken(); return true }

// OnGranted implements lock.Handler.
func (NoWait) OnGranted(*lock.Request) {}

// OnAborted implements lock.Handler.
func (NoWait) OnAborted(*lock.Request) {}

// WoundWait is the dual of wait-die: an *older* requester wounds (aborts)
// younger conflicting transactions instead of waiting behind them, and a
// *younger* requester waits. Waits therefore only go young→old, so the
// waits-for relation is acyclic; and because old transactions never abort,
// progress is guaranteed.
//
// Wounding crosses threads: the victim may be running transaction logic
// or parked on another lock. Each worker thread has a wound slot holding
// the victim transaction id; victims notice at their next lock request
// (PreAcquire) or at their parked-wait recheck tick.
type WoundWait struct {
	wounds []atomic.Uint64 // per thread: wounded txn id (0 = none)
	// recheck is the parked waiter's poll interval.
	recheck time.Duration
}

// NewWoundWait returns a policy instance for nthreads worker threads.
func NewWoundWait(nthreads int) *WoundWait {
	return &WoundWait{wounds: make([]atomic.Uint64, nthreads), recheck: time.Millisecond}
}

// Name implements lock.Handler.
func (w *WoundWait) Name() string { return "2pl-woundwait" }

// wounded reports whether req's transaction is the current victim of its
// thread's wound slot.
func (w *WoundWait) woundedNow(req *lock.Request) bool {
	return w.wounds[req.Thread].Load() == req.TxnID
}

// PreAcquire implements lock.PreAcquirer: a wounded transaction aborts at
// its next lock request.
func (w *WoundWait) PreAcquire(req *lock.Request) bool {
	return !w.woundedNow(req)
}

// OnConflict implements lock.Handler: an older requester wounds every
// younger conflicting transaction and then waits for the queue to drain;
// a younger requester just waits.
func (w *WoundWait) OnConflict(req *lock.Request, ahead []*lock.Request) lock.Decision {
	for _, a := range ahead {
		if req.TS < a.TS && a.Thread != req.Thread {
			// Store the victim's txn id; stale ids from completed
			// transactions never match a live one, so no explicit clear
			// is needed.
			w.wounds[a.Thread].Store(a.TxnID)
		}
	}
	return lock.Wait
}

// Wait implements lock.Handler: park, but poll the wound slot so a victim
// parked behind a lock does not hold the cycle together.
func (w *WoundWait) Wait(_ *lock.Table, req *lock.Request) bool {
	timer := time.NewTimer(w.recheck)
	defer timer.Stop()
	for {
		select {
		case <-req.Ready():
			return true
		case <-timer.C:
			if w.woundedNow(req) {
				return false
			}
			timer.Reset(w.recheck)
		}
	}
}

// OnGranted implements lock.Handler.
func (w *WoundWait) OnGranted(*lock.Request) {}

// OnAborted implements lock.Handler: consume the wound so the thread's
// next transaction starts clean even if ids were ever reused.
func (w *WoundWait) OnAborted(req *lock.Request) {
	w.wounds[req.Thread].CompareAndSwap(req.TxnID, 0)
}

var (
	_ lock.Handler     = NoWait{}
	_ lock.Handler     = (*WoundWait)(nil)
	_ lock.PreAcquirer = (*WoundWait)(nil)
)
