package deadlock

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/txn"
)

func TestHandlerNames(t *testing.T) {
	cases := []struct {
		h    lock.Handler
		want string
	}{
		{Block{}, "deadlock-free"},
		{WaitDie{}, "2pl-waitdie"},
		{NewWaitForGraph(2), "2pl-waitfor"},
		{NewDreadlocks(2), "2pl-dreadlocks"},
	}
	for _, c := range cases {
		if got := c.h.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestWaitDieOlderWaitsYoungerDies(t *testing.T) {
	tbl := lock.NewTable(16, WaitDie{})
	var f lock.Freelist

	holder := f.Get(1, 100, 0) // ts=100
	if _, err := tbl.Acquire(holder, 0, 1, txn.Write); err != nil {
		t.Fatal(err)
	}

	// Younger requester (larger ts) dies immediately.
	young := f.Get(2, 200, 1)
	if _, err := tbl.Acquire(young, 0, 1, txn.Write); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("younger requester: err = %v, want ErrAborted", err)
	}

	// Older requester (smaller ts) waits and is eventually granted.
	done := make(chan error, 1)
	go func() {
		var f2 lock.Freelist
		old := f2.Get(3, 50, 2)
		_, err := tbl.Acquire(old, 0, 1, txn.Write)
		if err == nil {
			tbl.Release(old)
		}
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	tbl.Release(holder)
	if err := <-done; err != nil {
		t.Fatalf("older requester aborted: %v", err)
	}
}

// buildABDeadlock runs two transactions that acquire keys a and b in
// opposite orders until they genuinely cross (both first locks held), then
// returns each side's second-acquisition error.
func buildABDeadlock(t *testing.T, tbl *lock.Table) (err1, err2 error) {
	t.Helper()
	var barrier sync.WaitGroup
	barrier.Add(2)
	var wg sync.WaitGroup
	wg.Add(2)
	run := func(thread int, id uint64, first, second uint64, out *error) {
		defer wg.Done()
		var f lock.Freelist
		r1 := f.Get(id, id, thread)
		if _, err := tbl.Acquire(r1, 0, first, txn.Write); err != nil {
			barrier.Done()
			*out = err
			return
		}
		barrier.Done()
		barrier.Wait() // both hold their first lock: a cycle is inevitable
		r2 := f.Get(id, id, thread)
		_, err := tbl.Acquire(r2, 0, second, txn.Write)
		*out = err
		if err == nil {
			tbl.Release(r2)
		}
		tbl.Release(r1)
	}
	go run(0, 10, 1, 2, &err1)
	go run(1, 20, 2, 1, &err2)
	waitDone(t, &wg, 5*time.Second)
	return err1, err2
}

func waitDone(t *testing.T, wg *sync.WaitGroup, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("deadlock was not resolved within timeout")
	}
}

func TestWaitForGraphResolvesDeadlock(t *testing.T) {
	tbl := lock.NewTable(16, NewWaitForGraph(2))
	err1, err2 := buildABDeadlock(t, tbl)
	aborts := 0
	for _, err := range []error{err1, err2} {
		switch {
		case err == nil:
		case errors.Is(err, txn.ErrAborted):
			aborts++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if aborts == 0 {
		t.Fatal("A/B deadlock resolved with zero aborts")
	}
}

func TestDreadlocksResolvesDeadlock(t *testing.T) {
	tbl := lock.NewTable(16, NewDreadlocks(2))
	err1, err2 := buildABDeadlock(t, tbl)
	aborts := 0
	for _, err := range []error{err1, err2} {
		switch {
		case err == nil:
		case errors.Is(err, txn.ErrAborted):
			aborts++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if aborts == 0 {
		t.Fatal("A/B deadlock resolved with zero aborts")
	}
}

func TestWaitDieResolvesDeadlock(t *testing.T) {
	tbl := lock.NewTable(16, WaitDie{})
	err1, err2 := buildABDeadlock(t, tbl)
	if err1 == nil && err2 == nil {
		t.Fatal("wait-die allowed both sides to proceed")
	}
}

// Ordered acquisition under the Block handler must never deadlock: a
// stress run over a tiny key space completes with zero aborts.
func TestBlockOrderedAcquisitionNeverDeadlocks(t *testing.T) {
	tbl := lock.NewTable(64, Block{})
	const workers, per, keys = 8, 300, 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var f lock.Freelist
			for i := 0; i < per; i++ {
				// Pick 3 distinct keys, acquire in sorted order.
				ks := rng.Perm(keys)[:3]
				sort.Ints(ks)
				reqs := make([]*lock.Request, 0, 3)
				for _, k := range ks {
					r := f.Get(uint64(w*per+i), uint64(w*per+i), w)
					if _, err := tbl.Acquire(r, 0, uint64(k), txn.Write); err != nil {
						t.Errorf("Block handler aborted: %v", err)
						return
					}
					reqs = append(reqs, r)
				}
				for j := len(reqs) - 1; j >= 0; j-- {
					tbl.Release(reqs[j])
					f.Put(reqs[j])
				}
			}
		}(w)
	}
	waitDone(t, &wg, 30*time.Second)
}

// Multi-way deadlock: N transactions form a ring (each holds key i, wants
// key (i+1) mod N). Every handler must resolve it.
func TestRingDeadlockAllHandlers(t *testing.T) {
	const n = 4
	handlers := []lock.Handler{WaitDie{}, NewWaitForGraph(n), NewDreadlocks(n)}
	for _, h := range handlers {
		h := h
		t.Run(h.Name(), func(t *testing.T) {
			tbl := lock.NewTable(16, h)
			var barrier, wg sync.WaitGroup
			barrier.Add(n)
			wg.Add(n)
			completed := make([]bool, n)
			for i := 0; i < n; i++ {
				go func(i int) {
					defer wg.Done()
					var f lock.Freelist
					id := uint64(100 + i)
					r1 := f.Get(id, id, i)
					if _, err := tbl.Acquire(r1, 0, uint64(i), txn.Write); err != nil {
						barrier.Done()
						return
					}
					barrier.Done()
					barrier.Wait()
					r2 := f.Get(id, id, i)
					_, err := tbl.Acquire(r2, 0, uint64((i+1)%n), txn.Write)
					if err == nil {
						completed[i] = true
						tbl.Release(r2)
					}
					tbl.Release(r1)
				}(i)
			}
			waitDone(t, &wg, 10*time.Second)
			// At least one member of the ring must have been sacrificed,
			// and at least one must eventually complete... completion of
			// survivors happens only if the victim's locks were released,
			// which waitDone already proves (no hang).
			aborted := 0
			for _, ok := range completed {
				if !ok {
					aborted++
				}
			}
			if aborted == 0 {
				t.Fatal("ring deadlock resolved with zero aborts")
			}
			if aborted == n {
				t.Fatal("every ring member aborted; expected at least one survivor")
			}
		})
	}
}

// Dreadlocks digests must be cleared after waits so stale bits do not
// poison later conflict checks (a txn seeing its own stale bit would
// self-abort forever).
func TestDreadlocksDigestClearedAfterGrant(t *testing.T) {
	d := NewDreadlocks(2)
	tbl := lock.NewTable(16, d)
	var f lock.Freelist
	holder := f.Get(1, 1, 0)
	if _, err := tbl.Acquire(holder, 0, 1, txn.Write); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		var f2 lock.Freelist
		w := f2.Get(2, 2, 1)
		_, err := tbl.Acquire(w, 0, 1, txn.Write)
		if err == nil {
			tbl.Release(w)
		}
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	tbl.Release(holder)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := range d.digests {
		if d.digests[i].Load() != 0 {
			t.Fatalf("digest word %d not cleared after grant", i)
		}
	}
}

// The wait-for graph's parked-waiter recheck must catch a cycle formed
// after both sides already decided to wait (the insertion race).
func TestWaitForGraphRecheckCatchesLateCycle(t *testing.T) {
	g := NewWaitForGraph(2)
	g.recheck = 200 * time.Microsecond
	tbl := lock.NewTable(16, g)
	// Build the A/B deadlock repeatedly; with a short recheck every run
	// must terminate.
	for i := 0; i < 20; i++ {
		err1, err2 := buildABDeadlock(t, tbl)
		if err1 == nil && err2 == nil {
			t.Fatal("both sides succeeded")
		}
	}
}

func TestWaitDieNoFalseAbortWithoutConflict(t *testing.T) {
	tbl := lock.NewTable(16, WaitDie{})
	var f lock.Freelist
	// Disjoint keys: no aborts regardless of timestamps.
	for i := 0; i < 100; i++ {
		r := f.Get(uint64(i), uint64(1000-i), 0)
		if _, err := tbl.Acquire(r, 0, uint64(i), txn.Write); err != nil {
			t.Fatal(err)
		}
		tbl.Release(r)
		f.Put(r)
	}
}
