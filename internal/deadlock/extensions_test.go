package deadlock

import (
	"errors"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/txn"
)

func TestNoWaitAbortsOnAnyConflict(t *testing.T) {
	tbl := lock.NewTable(16, NoWait{})
	var f lock.Freelist
	h := f.Get(1, 1, 0)
	if _, err := tbl.Acquire(h, 0, 1, txn.Write); err != nil {
		t.Fatal(err)
	}
	r := f.Get(2, 2, 1)
	if _, err := tbl.Acquire(r, 0, 1, txn.Read); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	// Non-conflicting acquisitions proceed.
	r2 := f.Get(3, 3, 1)
	if _, err := tbl.Acquire(r2, 0, 2, txn.Write); err != nil {
		t.Fatal(err)
	}
	tbl.Release(h)
	tbl.Release(r2)
}

func TestNoWaitResolvesDeadlock(t *testing.T) {
	tbl := lock.NewTable(16, NoWait{})
	err1, err2 := buildABDeadlock(t, tbl)
	if err1 == nil && err2 == nil {
		t.Fatal("no-wait allowed both sides through a crossing conflict")
	}
}

func TestWoundWaitOlderWoundsParkedYounger(t *testing.T) {
	w := NewWoundWait(3)
	w.recheck = 200 * time.Microsecond
	tbl := lock.NewTable(16, w)
	var f lock.Freelist

	// Thread 0: young holder of key A (ts=100).
	young := f.Get(10, 100, 0)
	if _, err := tbl.Acquire(young, 0, 1, txn.Write); err != nil {
		t.Fatal(err)
	}
	// Thread 1: the same young transaction parks on key B held by a third.
	third := f.Get(30, 50, 2)
	if _, err := tbl.Acquire(third, 0, 2, txn.Write); err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() {
		var f2 lock.Freelist
		r := f2.Get(10, 100, 0) // same txn identity as `young`
		_, err := tbl.Acquire(r, 0, 2, txn.Write)
		if err == nil {
			tbl.Release(r)
		}
		parked <- err
	}()
	time.Sleep(2 * time.Millisecond) // let it park

	// Thread 2: old requester (ts=10) conflicts with the young holder on
	// key A. It must wound txn 10 rather than die.
	done := make(chan error, 1)
	go func() {
		var f3 lock.Freelist
		old := f3.Get(20, 10, 1)
		_, err := tbl.Acquire(old, 0, 1, txn.Write)
		if err == nil {
			tbl.Release(old)
		}
		done <- err
	}()

	// The parked young transaction must abort via the wound poll.
	select {
	case err := <-parked:
		if !errors.Is(err, txn.ErrAborted) {
			t.Fatalf("parked young txn: err = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wounded parked transaction never aborted")
	}

	// The young transaction's abort path releases its locks; the old
	// requester then proceeds.
	tbl.Release(young) // the engine would do this during abort handling
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("old requester aborted: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("old requester never granted after victim release")
	}
	tbl.Release(third)
}

func TestWoundWaitVictimAbortsAtNextAcquire(t *testing.T) {
	w := NewWoundWait(2)
	tbl := lock.NewTable(16, w)
	var f lock.Freelist

	young := f.Get(5, 200, 0)
	if _, err := tbl.Acquire(young, 0, 1, txn.Write); err != nil {
		t.Fatal(err)
	}
	// Old requester wounds the young holder and waits.
	granted := make(chan struct{})
	go func() {
		var f2 lock.Freelist
		old := f2.Get(6, 20, 1)
		if _, err := tbl.Acquire(old, 0, 1, txn.Write); err == nil {
			tbl.Release(old)
		}
		close(granted)
	}()
	// Wait until the wound lands.
	deadline := time.Now().Add(time.Second)
	for w.wounds[0].Load() != 5 {
		if time.Now().After(deadline) {
			t.Fatal("wound never landed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// The victim's next acquire must abort via PreAcquire.
	next := f.Get(5, 200, 0)
	if _, err := tbl.Acquire(next, 0, 9, txn.Write); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("wounded victim acquire: err = %v, want ErrAborted", err)
	}
	tbl.Release(young)
	<-granted
}

func TestWoundWaitResolvesRing(t *testing.T) {
	// Reuse the generic ring scenario through the common helper.
	tbl := lock.NewTable(16, NewWoundWait(2))
	err1, err2 := buildABDeadlock(t, tbl)
	aborts := 0
	for _, err := range []error{err1, err2} {
		if errors.Is(err, txn.ErrAborted) {
			aborts++
		} else if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if aborts == 0 {
		t.Fatal("wound-wait resolved an A/B deadlock with zero aborts")
	}
}

func TestWoundWaitStaleWoundIgnored(t *testing.T) {
	w := NewWoundWait(1)
	tbl := lock.NewTable(16, w)
	w.wounds[0].Store(999) // stale victim id from a past transaction
	var f lock.Freelist
	r := f.Get(1000, 1, 0)
	if _, err := tbl.Acquire(r, 0, 1, txn.Write); err != nil {
		t.Fatalf("stale wound aborted an innocent transaction: %v", err)
	}
	tbl.Release(r)
}
