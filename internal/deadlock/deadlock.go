// Package deadlock implements the four deadlock policies the paper
// evaluates for two-phase locking (§4, Figure 4):
//
//   - Block: never aborts; safe only under ordered acquisition. Used by
//     the Deadlock-free engine, so the Figure-4 comparison isolates the
//     cost of the dynamic handlers exactly as the paper intends.
//   - WaitDie: timestamp-based proactive avoidance. An older requester
//     may wait for a younger holder; a younger requester dies. False
//     positives abort transactions that were never deadlocked.
//   - WaitForGraph: explicit waits-for edges, partitioned per worker
//     thread as in Yu et al. [50]; a requester that closes a cycle aborts.
//   - Dreadlocks: Koskinen & Herlihy's digest scheme [24] as used in
//     Shore-MT. Each waiting thread publishes the transitive closure of
//     the threads it waits on as a bitmap; a thread that observes itself
//     in a blocker's digest has found a cycle and aborts.
package deadlock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
)

// Block is the no-abort policy for ordered (deadlock-free) acquisition.
type Block struct{}

// Name implements lock.Handler.
func (Block) Name() string { return "deadlock-free" }

// OnConflict implements lock.Handler: always wait.
func (Block) OnConflict(*lock.Request, []*lock.Request) lock.Decision { return lock.Wait }

// Wait implements lock.Handler by parking until granted.
func (Block) Wait(_ *lock.Table, req *lock.Request) bool {
	req.AwaitToken()
	return true
}

// OnGranted implements lock.Handler.
func (Block) OnGranted(*lock.Request) {}

// OnAborted implements lock.Handler.
func (Block) OnAborted(*lock.Request) {}

// WaitDie aborts a requester that is younger than any conflicting request
// ahead of it. Waits therefore only ever go from older to younger
// transactions, which makes the waits-for relation acyclic.
type WaitDie struct{}

// Name implements lock.Handler.
func (WaitDie) Name() string { return "2pl-waitdie" }

// OnConflict implements lock.Handler.
func (WaitDie) OnConflict(req *lock.Request, ahead []*lock.Request) lock.Decision {
	for _, a := range ahead {
		if req.TS >= a.TS {
			return lock.Die
		}
	}
	return lock.Wait
}

// Wait implements lock.Handler. Wait-die waiters can never deadlock, so
// parking unconditionally is safe.
func (WaitDie) Wait(_ *lock.Table, req *lock.Request) bool {
	req.AwaitToken()
	return true
}

// OnGranted implements lock.Handler.
func (WaitDie) OnGranted(*lock.Request) {}

// OnAborted implements lock.Handler.
func (WaitDie) OnAborted(*lock.Request) {}

// WaitForGraph tracks waits-for edges in per-thread partitions. Because a
// worker thread runs one transaction at a time and acquires its locks
// sequentially, the edges of thread p's current transaction live entirely
// in partition p; cycle detection walks partitions without any global
// latch (paper: "each database thread maintains a local partition of the
// wait-for graph").
type WaitForGraph struct {
	parts []wfgPartition
	// recheck is how often a parked waiter re-runs detection to catch
	// cycles missed by concurrent edge insertion races.
	recheck time.Duration
}

type wfgPartition struct {
	mu  sync.Mutex
	cur uint64   // transaction currently owned by this thread
	out []uint64 // txn ids the current transaction waits for
	_   [40]byte // pad
}

// NewWaitForGraph returns a graph for nthreads worker threads.
func NewWaitForGraph(nthreads int) *WaitForGraph {
	return &WaitForGraph{parts: make([]wfgPartition, nthreads), recheck: time.Millisecond}
}

// Name implements lock.Handler.
func (g *WaitForGraph) Name() string { return "2pl-waitfor" }

// OnConflict implements lock.Handler: record edges, then search for a
// cycle through the new edges.
func (g *WaitForGraph) OnConflict(req *lock.Request, ahead []*lock.Request) lock.Decision {
	p := &g.parts[req.Thread]
	p.mu.Lock()
	p.cur = req.TxnID
	p.out = p.out[:0]
	for _, a := range ahead {
		if a.TxnID != req.TxnID {
			p.out = append(p.out, a.TxnID)
		}
	}
	p.mu.Unlock()
	if g.cycleFrom(req.TxnID, req.Thread) {
		g.clear(req.Thread)
		return lock.Die
	}
	return lock.Wait
}

// cycleFrom reports whether following waits-for edges from start's
// transaction returns to it. The walk snapshots partitions one at a time;
// races with concurrent edge changes can miss a cycle (caught by the
// parked waiter's periodic recheck) or report a stale one (a false
// positive abort, which is safe).
func (g *WaitForGraph) cycleFrom(start uint64, startThread int) bool {
	var stack []uint64
	var visited []uint64
	p := &g.parts[startThread]
	p.mu.Lock()
	stack = append(stack, p.out...)
	p.mu.Unlock()
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == start {
			return true
		}
		if containsU64(visited, id) {
			continue
		}
		visited = append(visited, id)
		// Find the thread running id, if it is currently waiting.
		for i := range g.parts {
			q := &g.parts[i]
			q.mu.Lock()
			if q.cur == id {
				stack = append(stack, q.out...)
			}
			q.mu.Unlock()
		}
	}
	return false
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (g *WaitForGraph) clear(thread int) {
	p := &g.parts[thread]
	p.mu.Lock()
	p.out = p.out[:0]
	p.mu.Unlock()
}

// Wait implements lock.Handler: park, but re-run detection periodically so
// cycles formed by concurrent insertions are still resolved.
func (g *WaitForGraph) Wait(_ *lock.Table, req *lock.Request) bool {
	timer := time.NewTimer(g.recheck)
	defer timer.Stop()
	for {
		select {
		case <-req.Ready():
			return true
		case <-timer.C:
			if g.cycleFrom(req.TxnID, req.Thread) {
				return false
			}
			timer.Reset(g.recheck)
		}
	}
}

// OnGranted implements lock.Handler.
func (g *WaitForGraph) OnGranted(req *lock.Request) { g.clear(req.Thread) }

// OnAborted implements lock.Handler.
func (g *WaitForGraph) OnAborted(req *lock.Request) { g.clear(req.Thread) }

// Dreadlocks implements digest-based detection. Digests are bitmaps over
// worker-thread ids (one active transaction per thread), published in a
// shared array that blockers' waiters spin on — deliberately reproducing
// the cache-coherence traffic the paper attributes to the scheme (§4.4.1).
type Dreadlocks struct {
	words   int
	digests []atomic.Uint64 // thread t owns digests[t*words : (t+1)*words]
}

// NewDreadlocks returns a digest table for nthreads worker threads.
func NewDreadlocks(nthreads int) *Dreadlocks {
	words := (nthreads + 63) / 64
	if words == 0 {
		words = 1
	}
	return &Dreadlocks{words: words, digests: make([]atomic.Uint64, nthreads*words)}
}

// Name implements lock.Handler.
func (d *Dreadlocks) Name() string { return "2pl-dreadlocks" }

// OnConflict implements lock.Handler: always try waiting; the spin loop
// performs detection.
func (d *Dreadlocks) OnConflict(*lock.Request, []*lock.Request) lock.Decision {
	return lock.Wait
}

// Wait implements lock.Handler: spin, unioning direct blockers' digests
// into our own published digest; abort on seeing ourselves.
func (d *Dreadlocks) Wait(t *lock.Table, req *lock.Request) bool {
	me := req.Thread
	myWord, myBit := me/64, uint64(1)<<(me%64)
	union := make([]uint64, d.words)
	var blockers []int
	for {
		if req.Granted() {
			req.DrainToken()
			d.clearDigest(me)
			return true
		}
		var waiting bool
		blockers, waiting = t.Blockers(req, blockers)
		if !waiting {
			// Granted between the check above and Blockers' latch.
			req.AwaitToken()
			d.clearDigest(me)
			return true
		}
		for i := range union {
			union[i] = 0
		}
		for _, b := range blockers {
			base := b * d.words
			for w := 0; w < d.words; w++ {
				union[w] |= d.digests[base+w].Load()
			}
		}
		if union[myWord]&myBit != 0 {
			// A blocker (transitively) waits on us: cycle.
			d.clearDigest(me)
			return false
		}
		// Publish {me} ∪ union(blockers).
		base := me * d.words
		for w := 0; w < d.words; w++ {
			v := union[w]
			if w == myWord {
				v |= myBit
			}
			d.digests[base+w].Store(v)
		}
		runtime.Gosched()
	}
}

func (d *Dreadlocks) clearDigest(thread int) {
	base := thread * d.words
	for w := 0; w < d.words; w++ {
		d.digests[base+w].Store(0)
	}
}

// OnGranted implements lock.Handler.
func (d *Dreadlocks) OnGranted(req *lock.Request) { d.clearDigest(req.Thread) }

// OnAborted implements lock.Handler.
func (d *Dreadlocks) OnAborted(req *lock.Request) { d.clearDigest(req.Thread) }
