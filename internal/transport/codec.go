// Package transport carries the ORTHRUS message plane over a network
// connection. The in-process plane moves `message` values through SPSC
// rings; this package moves the same traffic between OS processes as
// length-prefixed binary frames, one frame per flushOutbox coalescing
// pass, so the batching discipline (and the FIFO order each ring
// guarantees) survives the wire: a frame's messages are delivered in
// order, and frames on one connection are delivered in send order.
//
// The codec is deliberately dumb — fixed-width little-endian fields, no
// varints, no compression — because the hot path never touches it: exec
// and CC threads only build []Msg batches (capacity-reusing, allocation
// free) and hand whole frames to a per-peer writer goroutine, which is
// the single place bytes are produced. Decoding happens on the peer's
// single reader goroutine into one reusable Frame. See README
// "Distributed message plane".
package transport

import (
	"encoding/binary"
	"errors"

	"repro/internal/txn"
)

// Planes name the logical queue matrix a frame belongs to. The two-node
// split (all CC threads on one node, all exec threads on the other)
// only ever crosses the wire on the exec→CC plane (acquires, releases)
// and the CC→exec plane (grants); CC→CC forwards stay node-local, which
// is what keeps the paper's ascending-CC-id forwarding argument intact
// over the network (see README).
const (
	// PlaneExecCC carries acquire/release messages, exec node → CC node.
	PlaneExecCC uint8 = 0
	// PlaneCCExec carries grant messages, CC node → exec node.
	PlaneCCExec uint8 = 1
	// PlaneControl carries connection control frames; the code is in
	// Frame.To and the frame has no messages.
	PlaneControl uint8 = 2
)

// CtrlGoodbye (in Frame.To of a PlaneControl frame) announces that the
// sender has flushed every data frame it will ever send. It is the
// shutdown barrier: a node that has received goodbye and drained its
// reader has seen the peer's complete message history.
const CtrlGoodbye uint16 = 1

// Message kinds. Acquire carries the transaction's full CC itinerary so
// the CC node can materialize a wrapper without any other state;
// release and grant are just the transaction's wire id — by the time
// they are decoded the receiving node already holds the wrapper.
const (
	KindAcquire uint8 = 0
	KindRelease uint8 = 1
	KindGrant   uint8 = 2
)

// Hop is one CC thread's slice of an acquire's declared access set.
type Hop struct {
	// CC is the hop's CC thread id.
	CC uint16
	// Ops are the lock requests this CC thread owns, in txn.SortOps
	// order within the hop.
	Ops []txn.Op
}

// Msg is one message-plane message in wire form.
type Msg struct {
	// Kind is KindAcquire, KindRelease or KindGrant.
	Kind uint8
	// TxnID is the wire id correlating this message with a wrapper on
	// both nodes. Each submission attempt (including OLLP replans of
	// the same transaction) draws a fresh id, so an id never names two
	// generations of lock state at once.
	TxnID uint64
	// Owner, HopIdx, Epoch and Hops are only meaningful for
	// KindAcquire.
	Owner  uint16
	HopIdx uint16
	Epoch  uint64
	Hops   []Hop
}

// Frame is one wire frame: a batch of messages for a single
// (plane, from, to) queue, i.e. one flushOutbox pass.
type Frame struct {
	Plane    uint8
	From, To uint16
	Msgs     []Msg
}

// Encoded field widths.
const (
	// FrameHeaderSize is the encoded frame header: plane, from, to,
	// message count.
	FrameHeaderSize = 1 + 2 + 2 + 2
	// msgHeaderSize covers Kind and TxnID, present on every message.
	msgHeaderSize = 1 + 8
	// acquireHeaderSize covers Owner, HopIdx, Epoch and the hop count.
	acquireHeaderSize = 2 + 2 + 8 + 2
	// hopHeaderSize covers Hop.CC and the op count.
	hopHeaderSize = 2 + 2
	// opSize is one txn.Op: table (u32), key (u64), mode (u8).
	opSize = 4 + 8 + 1
	// wirePrefixSize is the length prefix in front of every frame.
	wirePrefixSize = 4
)

// maxWirePayload is a hard sanity cap on a decoded frame's length
// prefix; anything larger is treated as a corrupt stream. (Config's
// MaxFrame is a soft coalescing cap: a single oversized acquire may
// exceed it, but never this.)
const maxWirePayload = 1 << 30

// Reset empties the frame for reuse, keeping every nested slice's
// capacity.
func (f *Frame) Reset() {
	f.Plane, f.From, f.To = 0, 0, 0
	f.Msgs = f.Msgs[:0]
}

// AddMsg appends an empty message and returns it for filling, reusing
// the slot's nested slice capacity.
//
//orthrus:hotpath
func (f *Frame) AddMsg() *Msg {
	n := len(f.Msgs)
	if n < cap(f.Msgs) {
		f.Msgs = f.Msgs[:n+1]
	} else {
		var zero Msg
		f.Msgs = append(f.Msgs, zero)
	}
	m := &f.Msgs[n]
	m.Kind, m.TxnID, m.Owner, m.HopIdx, m.Epoch = 0, 0, 0, 0, 0
	m.Hops = m.Hops[:0]
	return m
}

// AddHop appends an empty hop to an acquire message and returns it,
// reusing the slot's Ops capacity.
//
//orthrus:hotpath
func (m *Msg) AddHop(cc uint16) *Hop {
	n := len(m.Hops)
	if n < cap(m.Hops) {
		m.Hops = m.Hops[:n+1]
	} else {
		var zero Hop
		m.Hops = append(m.Hops, zero)
	}
	h := &m.Hops[n]
	h.CC = cc
	h.Ops = h.Ops[:0]
	return h
}

// EncodedSize returns the message's encoded payload size in bytes,
// used by senders to respect the MaxFrame coalescing cap without
// touching any bytes.
//
//orthrus:hotpath
func (m *Msg) EncodedSize() int {
	n := msgHeaderSize
	if m.Kind == KindAcquire {
		n += acquireHeaderSize
		for i := range m.Hops {
			n += hopHeaderSize + opSize*len(m.Hops[i].Ops)
		}
	}
	return n
}

// AppendFrame appends f's encoded payload (no length prefix) to dst and
// returns the extended slice. Only the writer goroutine and tests call
// it; the hot path stops at building Frame.Msgs.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = append(dst, f.Plane)
	dst = binary.LittleEndian.AppendUint16(dst, f.From)
	dst = binary.LittleEndian.AppendUint16(dst, f.To)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Msgs)))
	for i := range f.Msgs {
		m := &f.Msgs[i]
		dst = append(dst, m.Kind)
		dst = binary.LittleEndian.AppendUint64(dst, m.TxnID)
		if m.Kind != KindAcquire {
			continue
		}
		dst = binary.LittleEndian.AppendUint16(dst, m.Owner)
		dst = binary.LittleEndian.AppendUint16(dst, m.HopIdx)
		dst = binary.LittleEndian.AppendUint64(dst, m.Epoch)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Hops)))
		for j := range m.Hops {
			h := &m.Hops[j]
			dst = binary.LittleEndian.AppendUint16(dst, h.CC)
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(h.Ops)))
			for _, op := range h.Ops {
				dst = binary.LittleEndian.AppendUint32(dst, uint32(op.Table))
				dst = binary.LittleEndian.AppendUint64(dst, op.Key)
				dst = append(dst, byte(op.Mode))
			}
		}
	}
	return dst
}

// Decode errors. Every malformed input maps to an error — DecodeFrame
// never panics (fuzzed by FuzzMessageFrame).
var (
	errTruncated = errors.New("transport: truncated frame")
	errTrailing  = errors.New("transport: trailing bytes after frame")
	errBadPlane  = errors.New("transport: unknown plane")
	errBadKind   = errors.New("transport: unknown message kind")
	errBadMode   = errors.New("transport: unknown op mode")
)

// DecodeFrame decodes one frame payload into f, reusing f's nested
// slice capacity. On success a re-encode of f reproduces b exactly
// (round-trip identity); on any malformed input it returns an error and
// never panics.
func DecodeFrame(f *Frame, b []byte) error {
	if len(b) < FrameHeaderSize {
		return errTruncated
	}
	f.Plane = b[0]
	if f.Plane > PlaneControl {
		return errBadPlane
	}
	f.From = binary.LittleEndian.Uint16(b[1:])
	f.To = binary.LittleEndian.Uint16(b[3:])
	count := int(binary.LittleEndian.Uint16(b[5:]))
	b = b[FrameHeaderSize:]
	f.Msgs = f.Msgs[:0]
	for i := 0; i < count; i++ {
		if len(b) < msgHeaderSize {
			return errTruncated
		}
		m := f.AddMsg()
		m.Kind = b[0]
		m.TxnID = binary.LittleEndian.Uint64(b[1:])
		b = b[msgHeaderSize:]
		switch m.Kind {
		case KindRelease, KindGrant:
		case KindAcquire:
			if len(b) < acquireHeaderSize {
				return errTruncated
			}
			m.Owner = binary.LittleEndian.Uint16(b)
			m.HopIdx = binary.LittleEndian.Uint16(b[2:])
			m.Epoch = binary.LittleEndian.Uint64(b[4:])
			nhops := int(binary.LittleEndian.Uint16(b[12:]))
			b = b[acquireHeaderSize:]
			// Cheap length pre-check bounds the work (and the slice
			// growth below) by the input length before any loop runs.
			if len(b) < nhops*hopHeaderSize {
				return errTruncated
			}
			for j := 0; j < nhops; j++ {
				if len(b) < hopHeaderSize {
					return errTruncated
				}
				h := m.AddHop(binary.LittleEndian.Uint16(b))
				nops := int(binary.LittleEndian.Uint16(b[2:]))
				b = b[hopHeaderSize:]
				if len(b) < nops*opSize {
					return errTruncated
				}
				for k := 0; k < nops; k++ {
					mode := b[12]
					if mode > uint8(txn.Write) {
						return errBadMode
					}
					h.Ops = append(h.Ops, txn.Op{
						Table: int(binary.LittleEndian.Uint32(b)),
						Key:   binary.LittleEndian.Uint64(b[4:]),
						Mode:  txn.Mode(mode),
					})
					b = b[opSize:]
				}
			}
		default:
			return errBadKind
		}
	}
	if len(b) != 0 {
		return errTrailing
	}
	return nil
}
