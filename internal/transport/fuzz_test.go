package transport

import (
	"bytes"
	"testing"

	"repro/internal/txn"
)

// fuzzFrame builds a representative mixed frame to seed the corpus: an
// acquire spanning two hops, a release and a grant, so mutations start
// from bytes that walk every branch of the decoder.
func fuzzFrame() *Frame {
	f := &Frame{Plane: PlaneExecCC, From: 1, To: 2}
	m := f.AddMsg()
	m.Kind = KindAcquire
	m.TxnID = 0x0102030405060708
	m.Owner, m.HopIdx, m.Epoch = 3, 1, 42
	h := m.AddHop(0)
	h.Ops = append(h.Ops, txn.Op{Table: 0, Key: 7, Mode: txn.Read})
	h.Ops = append(h.Ops, txn.Op{Table: 1, Key: 9, Mode: txn.Write})
	h = m.AddHop(2)
	h.Ops = append(h.Ops, txn.Op{Table: 0, Key: 11, Mode: txn.Write})
	m = f.AddMsg()
	m.Kind = KindRelease
	m.TxnID = 99
	m = f.AddMsg()
	m.Kind = KindGrant
	m.TxnID = 100
	return f
}

// FuzzMessageFrame feeds arbitrary (truncated, bit-flipped, synthesized)
// payloads to DecodeFrame and asserts the codec contract: decoding never
// panics regardless of input, and any payload that decodes successfully
// re-encodes to exactly the same bytes (round-trip identity) — the
// property the cross-process message plane relies on to treat a decoded
// frame as a faithful copy of what the peer sent.
func FuzzMessageFrame(f *testing.F) {
	img := AppendFrame(nil, fuzzFrame())
	f.Add(img)
	f.Add(img[:len(img)-3])                       // torn tail
	f.Add(img[:FrameHeaderSize])                  // header promising messages it lacks
	f.Add([]byte{})                               // empty payload
	f.Add([]byte{PlaneControl, 0, 0, 1, 0, 0, 0}) // goodbye-shaped control frame
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// A count field claiming 65535 messages on a short body: the decoder
	// must stop at the bytes, not the claim.
	huge := append([]byte(nil), img...)
	huge[5], huge[6] = 0xFF, 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := DecodeFrame(&fr, data); err != nil {
			return // malformed input must error, never panic
		}
		if reenc := AppendFrame(nil, &fr); !bytes.Equal(reenc, data) {
			t.Fatalf("decoded frame does not re-encode to its input:\n in  %x\n out %x", data, reenc)
		}
		// Decoding into a dirty reused frame must give the same result.
		reuse := fuzzFrame()
		if err := DecodeFrame(reuse, data); err != nil {
			t.Fatalf("reused-frame decode failed where fresh decode succeeded: %v", err)
		}
		if reenc := AppendFrame(nil, reuse); !bytes.Equal(reenc, data) {
			t.Fatal("reused-frame decode diverged from fresh decode")
		}
	})
}
