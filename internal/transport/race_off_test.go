//go:build !race

package transport

// raceEnabled gates the strict zero-allocation assertions: the race
// detector instruments allocations, so under -race the same code paths
// legitimately allocate.
const raceEnabled = false
