//go:build race

package transport

// raceEnabled mirrors race_off_test.go under the race detector.
const raceEnabled = true
