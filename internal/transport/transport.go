package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config are the wire-level knobs of a networked message plane.
type Config struct {
	// MaxFrame caps the encoded payload bytes one frame coalesces
	// (soft: a single message larger than the cap still ships alone,
	// in its own oversized frame). 0 means DefaultMaxFrame.
	MaxFrame int
	// WriterDepth is the per-peer writer queue depth in frames. The
	// CC node raises it to cover the grant window (see the liveness
	// argument in README "Distributed message plane"). 0 means
	// DefaultWriterDepth.
	WriterDepth int
	// DialTimeout bounds connection establishment (the dialer retries
	// until it expires, absorbing the peer's startup race) and the
	// handshake exchange. 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// AcceptTimeout bounds how long the listening node waits for its
	// peer to connect. 0 means DefaultAcceptTimeout.
	AcceptTimeout time.Duration
}

// Defaults for Config's zero fields.
const (
	DefaultMaxFrame    = 64 << 10
	DefaultWriterDepth = 1024
	// minMaxFrame keeps a configured cap large enough for any
	// header-only message; below it nothing could ever ship.
	minMaxFrame = 64
)

const (
	DefaultDialTimeout   = 5 * time.Second
	DefaultAcceptTimeout = 30 * time.Second
)

// Validate panics on out-of-range knobs (zero always means "use the
// default").
func (c Config) Validate() {
	if c.MaxFrame < 0 {
		panic(fmt.Sprintf("transport: MaxFrame %d is negative", c.MaxFrame))
	}
	if c.MaxFrame > 0 && c.MaxFrame < minMaxFrame {
		panic(fmt.Sprintf("transport: MaxFrame %d is below the minimum %d (0 means default %d)",
			c.MaxFrame, minMaxFrame, DefaultMaxFrame))
	}
	if c.MaxFrame > maxWirePayload {
		panic(fmt.Sprintf("transport: MaxFrame %d exceeds the wire cap %d", c.MaxFrame, maxWirePayload))
	}
	if c.WriterDepth < 0 {
		panic(fmt.Sprintf("transport: WriterDepth %d is negative", c.WriterDepth))
	}
	if c.DialTimeout < 0 {
		panic(fmt.Sprintf("transport: DialTimeout %v is negative", c.DialTimeout))
	}
	if c.AcceptTimeout < 0 {
		panic(fmt.Sprintf("transport: AcceptTimeout %v is negative", c.AcceptTimeout))
	}
}

// WithDefaults returns c with zero fields filled.
func (c Config) WithDefaults() Config {
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.WriterDepth == 0 {
		c.WriterDepth = DefaultWriterDepth
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.AcceptTimeout == 0 {
		c.AcceptTimeout = DefaultAcceptTimeout
	}
	return c
}

// Stats counts one peer's wire traffic. Frames and bytes include
// control frames; Msgs counts data messages only, so MsgsSent on one
// node equals MsgsRecv on its peer when both have shut down cleanly.
type Stats struct {
	FramesSent, FramesRecv uint64
	MsgsSent, MsgsRecv     uint64
	BytesSent, BytesRecv   uint64
}

// Peer is one end of a message-plane connection: a writer goroutine
// draining a frame channel into the socket, and a Recv method the
// owner's single reader goroutine calls. Frames are pooled — Get one,
// fill it, TrySend/Send it; ownership passes to the writer, which
// recycles it after the bytes are out.
type Peer struct {
	conn net.Conn
	cfg  Config
	out  chan *Frame
	pool sync.Pool

	wbuf []byte // writer-owned encode buffer (length prefix + payload)
	rbuf []byte // Recv-owned decode buffer

	goodbye chan struct{}
	gbOnce  sync.Once
	wg      sync.WaitGroup

	framesSent, msgsSent, bytesSent atomic.Uint64
	framesRecv, msgsRecv, bytesRecv atomic.Uint64
}

// NewPeer wraps an established, handshaken connection and starts its
// writer goroutine.
func NewPeer(conn net.Conn, cfg Config) *Peer {
	cfg.Validate()
	cfg = cfg.WithDefaults()
	p := &Peer{
		conn:    conn,
		cfg:     cfg,
		out:     make(chan *Frame, cfg.WriterDepth),
		goodbye: make(chan struct{}),
		wbuf:    make([]byte, wirePrefixSize, wirePrefixSize+cfg.MaxFrame),
	}
	p.pool.New = func() interface{} { return new(Frame) }
	p.wg.Add(1)
	go p.writeLoop()
	return p
}

// MaxFrame is the effective coalescing cap (defaults applied).
func (p *Peer) MaxFrame() int { return p.cfg.MaxFrame }

// Get returns an empty pooled frame for filling.
//
//orthrus:hotpath
func (p *Peer) Get() *Frame {
	f := p.pool.Get().(*Frame)
	f.Reset()
	return f
}

// TrySend hands a filled frame to the writer without blocking. On
// success ownership passes to the writer (which recycles the frame);
// on false the caller still owns it and retries later — the message
// plane's backpressure point.
//
//orthrus:hotpath
func (p *Peer) TrySend(f *Frame) bool {
	// Count before the handoff: the instant the frame is on the channel
	// the writer owns it and may recycle it.
	n := uint64(len(f.Msgs))
	select {
	case p.out <- f:
		p.framesSent.Add(1)
		p.msgsSent.Add(n)
		return true
	default:
		return false
	}
}

// Send hands a filled frame to the writer, blocking until the queue
// has room. Shutdown-path only (pending-frame drain, goodbye); hot
// threads use TrySend.
func (p *Peer) Send(f *Frame) {
	n := uint64(len(f.Msgs))
	p.out <- f
	p.framesSent.Add(1)
	p.msgsSent.Add(n)
}

// SendGoodbye enqueues the shutdown barrier frame. Every data frame
// handed to the writer before this call is written before it (the
// writer preserves channel order).
func (p *Peer) SendGoodbye() {
	f := p.Get()
	f.Plane = PlaneControl
	f.To = CtrlGoodbye
	p.Send(f)
}

// CloseSend closes the writer queue and waits for the writer to flush
// every queued frame to the socket.
func (p *Peer) CloseSend() {
	close(p.out)
	p.wg.Wait()
}

// GoodbyeReceived is closed once Recv has decoded the peer's goodbye
// frame: the peer's complete send history is then in this process
// (socket-buffered or already dispatched).
func (p *Peer) GoodbyeReceived() <-chan struct{} { return p.goodbye }

// Close closes the underlying connection (unblocking a Recv in
// progress). Call after CloseSend and the goodbye exchange.
func (p *Peer) Close() error { return p.conn.Close() }

// Stats snapshots the peer's wire counters.
func (p *Peer) Stats() Stats {
	return Stats{
		FramesSent: p.framesSent.Load(),
		FramesRecv: p.framesRecv.Load(),
		MsgsSent:   p.msgsSent.Load(),
		MsgsRecv:   p.msgsRecv.Load(),
		BytesSent:  p.bytesSent.Load(),
		BytesRecv:  p.bytesRecv.Load(),
	}
}

// Recv reads and decodes one frame into f, reusing f's capacity and
// the peer's read buffer. Control frames are handled internally
// (goodbye closes GoodbyeReceived) and returned to the caller, which
// skips them. Only the owner's single reader goroutine may call Recv.
//
// The loop this runs in is I/O by design and must never be reachable
// from a hot-path root; the per-node reader goroutines that call it
// are //orthrus:coldpath boundaries.
func (p *Peer) Recv(f *Frame) error {
	payload, err := readWire(p.conn, &p.rbuf)
	if err != nil {
		return err
	}
	if err := DecodeFrame(f, payload); err != nil {
		return err
	}
	p.framesRecv.Add(1)
	p.bytesRecv.Add(uint64(wirePrefixSize + len(payload)))
	if f.Plane == PlaneControl {
		if f.To == CtrlGoodbye {
			p.gbOnce.Do(func() { close(p.goodbye) })
		}
		return nil
	}
	p.msgsRecv.Add(uint64(len(f.Msgs)))
	return nil
}

// writeLoop drains the frame channel into the socket: encode into the
// writer's one reusable buffer, prepend the length, write, recycle.
// After a write error it keeps draining (discarding) so senders never
// block on a dead connection.
//
//orthrus:coldpath dedicated per-peer writer: socket writes block by design; hot threads hand frames over p.out and never touch the socket
//orthrus:recycle the frame was handed to the writer by TrySend/Send, transferring sole ownership; once its bytes are encoded (or the connection is dead) no other goroutine can reach it
func (p *Peer) writeLoop() {
	defer p.wg.Done()
	failed := false
	for f := range p.out {
		if !failed {
			p.wbuf = AppendFrame(p.wbuf[:wirePrefixSize], f)
			binary.LittleEndian.PutUint32(p.wbuf, uint32(len(p.wbuf)-wirePrefixSize))
			if _, err := p.conn.Write(p.wbuf); err != nil {
				failed = true
			} else {
				p.bytesSent.Add(uint64(len(p.wbuf)))
			}
		}
		p.pool.Put(f)
	}
}

// readWire reads one length-prefixed frame payload from r into *buf
// (grown only when capacity is insufficient, so steady state reads
// allocate nothing) and returns the payload slice.
func readWire(r io.Reader, buf *[]byte) ([]byte, error) {
	b := *buf
	if cap(b) < wirePrefixSize {
		b = make([]byte, 0, wirePrefixSize+DefaultMaxFrame)
	}
	b = b[:wirePrefixSize]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxWirePayload {
		return nil, fmt.Errorf("transport: frame length %d exceeds wire cap %d", n, maxWirePayload)
	}
	if cap(b) < int(n) {
		b = make([]byte, n)
	}
	b = b[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	*buf = b
	return b, nil
}

// --- handshake ------------------------------------------------------------

// Node roles in the two-node split.
const (
	RoleCC   uint8 = 1
	RoleExec uint8 = 2
)

// Hello is the handshake each side sends before any data frame. It
// carries the topology and the epoch-versioned routing table, so both
// processes provably start from the same cluster metadata: the engine
// verifies the peer's thread counts, logical-partition count, epoch
// and owner table match its own before any message crosses the wire.
type Hello struct {
	Role                   uint8
	CCThreads, ExecThreads uint16
	LogicalPartitions      uint16
	Epoch                  uint64
	Routing                []uint16 // logical partition -> owning CC thread
}

const (
	helloMagic   uint32 = 0x4F525448 // "ORTH"
	helloVersion uint16 = 1
)

var (
	errBadMagic   = errors.New("transport: handshake magic mismatch (peer is not an orthrus transport)")
	errBadVersion = errors.New("transport: handshake version mismatch")
)

func appendHello(dst []byte, h *Hello) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, helloMagic)
	dst = binary.LittleEndian.AppendUint16(dst, helloVersion)
	dst = append(dst, h.Role)
	dst = binary.LittleEndian.AppendUint16(dst, h.CCThreads)
	dst = binary.LittleEndian.AppendUint16(dst, h.ExecThreads)
	dst = binary.LittleEndian.AppendUint16(dst, h.LogicalPartitions)
	dst = binary.LittleEndian.AppendUint64(dst, h.Epoch)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(h.Routing)))
	for _, v := range h.Routing {
		dst = binary.LittleEndian.AppendUint16(dst, v)
	}
	return dst
}

const helloHeaderSize = 4 + 2 + 1 + 2 + 2 + 2 + 8 + 2

func decodeHello(b []byte, h *Hello) error {
	if len(b) < helloHeaderSize {
		return errTruncated
	}
	if binary.LittleEndian.Uint32(b) != helloMagic {
		return errBadMagic
	}
	if binary.LittleEndian.Uint16(b[4:]) != helloVersion {
		return errBadVersion
	}
	h.Role = b[6]
	h.CCThreads = binary.LittleEndian.Uint16(b[7:])
	h.ExecThreads = binary.LittleEndian.Uint16(b[9:])
	h.LogicalPartitions = binary.LittleEndian.Uint16(b[11:])
	h.Epoch = binary.LittleEndian.Uint64(b[13:])
	n := int(binary.LittleEndian.Uint16(b[21:]))
	b = b[helloHeaderSize:]
	if len(b) != n*2 {
		return errTruncated
	}
	h.Routing = h.Routing[:0]
	for i := 0; i < n; i++ {
		h.Routing = append(h.Routing, binary.LittleEndian.Uint16(b[2*i:]))
	}
	return nil
}

// Exchange performs the symmetric handshake on a fresh connection:
// write the local Hello, read the peer's, both under the deadline.
// Semantic verification (counts, roles, routing equality) is the
// caller's job — Exchange only moves and frames the bytes.
func Exchange(conn net.Conn, local *Hello, timeout time.Duration) (Hello, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return Hello{}, err
	}
	payload := appendHello(nil, local)
	msg := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	msg = append(msg, payload...)
	if _, err := conn.Write(msg); err != nil {
		return Hello{}, err
	}
	var buf []byte
	peerBytes, err := readWire(conn, &buf)
	if err != nil {
		return Hello{}, err
	}
	var peer Hello
	if err := decodeHello(peerBytes, &peer); err != nil {
		return Hello{}, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return Hello{}, err
	}
	return peer, nil
}

// --- connection establishment ---------------------------------------------

// Dial connects to the peer's listening address, retrying until the
// timeout expires so the two processes may start in either order.
func Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("transport: dial %s: timed out after %v: %w", addr, timeout, lastErr)
		}
		conn, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
}

// Accept waits for the peer to connect, bounded by the timeout when
// the listener supports deadlines.
func Accept(ln net.Listener, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = DefaultAcceptTimeout
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer tl.SetDeadline(time.Time{})
	}
	return ln.Accept()
}
