package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/txn"
)

// TestFrameRoundTrip pins the codec's identity contract on hand-built
// frames covering every message kind and shape.
func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Frame
	}{
		{"empty", func() *Frame { return &Frame{Plane: PlaneExecCC, From: 3, To: 1} }},
		{"mixed", fuzzFrame},
		{"goodbye", func() *Frame { return &Frame{Plane: PlaneControl, To: CtrlGoodbye} }},
		{"release-only", func() *Frame {
			f := &Frame{Plane: PlaneExecCC}
			for i := 0; i < 5; i++ {
				m := f.AddMsg()
				m.Kind = KindRelease
				m.TxnID = uint64(i) << 48
			}
			return f
		}},
		{"grant-only", func() *Frame {
			f := &Frame{Plane: PlaneCCExec, From: 2, To: 7}
			m := f.AddMsg()
			m.Kind = KindGrant
			m.TxnID = ^uint64(0)
			return f
		}},
		{"acquire-empty-hop", func() *Frame {
			f := &Frame{Plane: PlaneExecCC}
			m := f.AddMsg()
			m.Kind = KindAcquire
			m.TxnID = 1
			m.AddHop(4) // hop with zero ops
			return f
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			src := tc.build()
			enc := AppendFrame(nil, src)
			var dec Frame
			if err := DecodeFrame(&dec, enc); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if reenc := AppendFrame(nil, &dec); !bytes.Equal(reenc, enc) {
				t.Fatalf("round trip diverged:\n in  %x\n out %x", enc, reenc)
			}
			if got := len(enc); got < FrameHeaderSize {
				t.Fatalf("encoded size %d below header size", got)
			}
			// EncodedSize bookkeeping matches the bytes actually produced.
			want := FrameHeaderSize
			for i := range src.Msgs {
				want += src.Msgs[i].EncodedSize()
			}
			if len(enc) != want {
				t.Fatalf("EncodedSize sum %d != encoded length %d", want, len(enc))
			}
		})
	}
}

// TestDecodeFrameErrors maps each malformed-input class to an error (and
// never a panic or a false success).
func TestDecodeFrameErrors(t *testing.T) {
	valid := AppendFrame(nil, fuzzFrame())
	mut := func(i int, v byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] = v
		return b
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short-header", valid[:FrameHeaderSize-1]},
		{"torn-message", valid[:len(valid)-2]},
		{"bad-plane", mut(0, 9)},
		{"bad-kind", mut(FrameHeaderSize, 7)},
		{"trailing-bytes", append(append([]byte(nil), valid...), 0xEE)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var f Frame
			if err := DecodeFrame(&f, tc.in); err == nil {
				t.Fatal("malformed payload decoded without error")
			}
		})
	}

	// A mode byte above txn.Write inside an op must be rejected; find it
	// by corrupting the first op of a single-op acquire.
	f := &Frame{Plane: PlaneExecCC}
	m := f.AddMsg()
	m.Kind = KindAcquire
	h := m.AddHop(0)
	h.Ops = append(h.Ops, txn.Op{Table: 1, Key: 2, Mode: txn.Read})
	enc := AppendFrame(nil, f)
	enc[len(enc)-1] = 0xFF // the op's trailing mode byte
	var dec Frame
	if err := DecodeFrame(&dec, enc); err == nil {
		t.Fatal("op with unknown mode decoded without error")
	}
}

// TestConfigValidatePanics covers the wire-level knobs' range checks.
func TestConfigValidatePanics(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative-maxframe", Config{MaxFrame: -1}},
		{"tiny-maxframe", Config{MaxFrame: minMaxFrame - 1}},
		{"huge-maxframe", Config{MaxFrame: maxWirePayload + 1}},
		{"negative-writerdepth", Config{WriterDepth: -4}},
		{"negative-dial-timeout", Config{DialTimeout: -time.Second}},
		{"negative-accept-timeout", Config{AcceptTimeout: -time.Second}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Validate accepted out-of-range config")
				}
			}()
			tc.cfg.Validate()
		})
	}
	// The zero value and explicit defaults must both pass.
	Config{}.Validate()
	d := Config{}.WithDefaults()
	d.Validate()
	if d.MaxFrame != DefaultMaxFrame || d.WriterDepth != DefaultWriterDepth ||
		d.DialTimeout != DefaultDialTimeout || d.AcceptTimeout != DefaultAcceptTimeout {
		t.Fatalf("WithDefaults left a zero field: %+v", d)
	}
}

// TestHelloRoundTrip pins the handshake codec, including the routing
// table payload.
func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{
		Role: RoleCC, CCThreads: 3, ExecThreads: 5,
		LogicalPartitions: 12, Epoch: 9,
		Routing: []uint16{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2},
	}
	enc := appendHello(nil, h)
	var dec Hello
	if err := decodeHello(enc, &dec); err != nil {
		t.Fatal(err)
	}
	if reenc := appendHello(nil, &dec); !bytes.Equal(reenc, enc) {
		t.Fatal("hello round trip diverged")
	}
	// A non-orthrus peer (wrong magic) must be refused.
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if err := decodeHello(bad, &Hello{}); err == nil {
		t.Fatal("bad magic accepted")
	}
}
