package transport

import (
	"runtime"
	"testing"

	"repro/internal/spsc"
)

// BenchmarkTransportRoundTrip measures one message-plane round trip of
// an 8-message batch — an acquire batch out, a grant batch back — on the
// two backends: the in-process SPSC rings the engine uses by default,
// and the batched TCP path over a real loopback socket (encode, kernel,
// decode). The gap between the two is the cost of crossing a process
// boundary; benchgate pins both, and pins both at zero allocations.
func BenchmarkTransportRoundTrip(b *testing.B) {
	const batch = 8

	b.Run("inproc", func(b *testing.B) {
		there := spsc.New[Msg](64)
		back := spsc.New[Msg](64)
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]Msg, batch)
			for {
				n := 0
				for n < batch {
					got := there.DequeueBatch(buf[n:])
					if got == 0 {
						if there.Closed() && there.Len() == 0 {
							return
						}
						runtime.Gosched()
					}
					n += got
				}
				for i := 0; i < n; i++ {
					buf[i].Kind = KindGrant
				}
				for sent := 0; sent < n; {
					sent += back.TryEnqueueBatch(buf[sent:n])
				}
			}
		}()
		out := make([]Msg, batch)
		in := make([]Msg, batch)
		var f Frame
		fillAcquireBatch(&f, batch)
		copy(out, f.Msgs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for sent := 0; sent < batch; {
				sent += there.TryEnqueueBatch(out[sent:])
			}
			for n := 0; n < batch; {
				got := back.DequeueBatch(in[n:])
				if got == 0 {
					runtime.Gosched()
				}
				n += got
			}
		}
		b.StopTimer()
		there.Close()
		<-done
	})

	b.Run("tcp", func(b *testing.B) {
		pa, pb := newPeerPair(b, Config{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			var f Frame
			for {
				if err := pb.Recv(&f); err != nil {
					return
				}
				if f.Plane == PlaneControl {
					return
				}
				r := pb.Get()
				r.Plane = PlaneCCExec
				r.From, r.To = f.To, f.From
				for i := range f.Msgs {
					m := r.AddMsg()
					m.Kind = KindGrant
					m.TxnID = f.Msgs[i].TxnID
				}
				for !pb.TrySend(r) {
					runtime.Gosched()
				}
			}
		}()
		var rf Frame
		roundTrip := func() {
			f := pa.Get()
			fillAcquireBatch(f, batch)
			for !pa.TrySend(f) {
				runtime.Gosched()
			}
			if err := pa.Recv(&rf); err != nil {
				b.Fatalf("recv: %v", err)
			}
		}
		for i := 0; i < 64; i++ {
			roundTrip() // warm pools and socket buffers before measuring
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			roundTrip()
		}
		b.StopTimer()
		pa.SendGoodbye()
		pa.CloseSend()
		<-done
	})
}
