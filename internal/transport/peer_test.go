package transport

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/txn"
)

// newPeerPair builds two handshaken peers over a real loopback TCP
// connection (not net.Pipe: the tests must cover the same kernel socket
// path production uses).
func newPeerPair(t testing.TB, cfg Config) (a, b *Peer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		accepted <- c
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a = NewPeer(<-accepted, cfg)
	b = NewPeer(dialed, cfg)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

// fillAcquireBatch fills f with n two-op acquire messages, the shape a
// steady-state exec-node flush produces.
func fillAcquireBatch(f *Frame, n int) {
	f.Plane = PlaneExecCC
	f.From, f.To = 1, 0
	for i := 0; i < n; i++ {
		m := f.AddMsg()
		m.Kind = KindAcquire
		m.TxnID = uint64(i) + 1
		m.Owner, m.HopIdx, m.Epoch = 1, 0, 1
		h := m.AddHop(0)
		h.Ops = append(h.Ops, txn.Op{Table: 0, Key: uint64(2 * i), Mode: txn.Write})
		h.Ops = append(h.Ops, txn.Op{Table: 0, Key: uint64(2*i + 1), Mode: txn.Write})
	}
}

// TestPeerSendRecvAndGoodbye walks a full peer lifecycle: data frames
// arrive intact and in order, the goodbye barrier fires, counters are
// exactly symmetric, and shutdown completes without leaking goroutines.
func TestPeerSendRecvAndGoodbye(t *testing.T) {
	a, b := newPeerPair(t, Config{})
	const frames, batch = 17, 8
	want := AppendFrame(nil, func() *Frame { f := &Frame{}; fillAcquireBatch(f, batch); return f }())

	go func() {
		for i := 0; i < frames; i++ {
			f := a.Get()
			fillAcquireBatch(f, batch)
			for !a.TrySend(f) {
				runtime.Gosched()
			}
		}
		a.SendGoodbye()
		a.CloseSend()
	}()

	var f Frame
	got := 0
	for {
		if err := b.Recv(&f); err != nil {
			t.Fatalf("recv after %d frames: %v", got, err)
		}
		if f.Plane == PlaneControl {
			select {
			case <-b.GoodbyeReceived():
			default:
				t.Fatal("goodbye frame decoded but GoodbyeReceived not closed")
			}
			break
		}
		if enc := AppendFrame(nil, &f); string(enc) != string(want) {
			t.Fatalf("frame %d corrupted in flight", got)
		}
		got++
	}
	if got != frames {
		t.Fatalf("received %d data frames, want %d", got, frames)
	}

	as, bs := a.Stats(), b.Stats()
	if as.FramesSent != frames+1 || as.MsgsSent != frames*batch {
		t.Fatalf("sender stats %+v", as)
	}
	if bs.FramesRecv != as.FramesSent || bs.MsgsRecv != as.MsgsSent || bs.BytesRecv != as.BytesSent {
		t.Fatalf("counter conservation violated: sent %+v recv %+v", as, bs)
	}
	if as.BytesSent == 0 {
		t.Fatal("writer reported no bytes")
	}
}

// TestPeerExchange verifies the handshake against a live socket pair,
// including the routing payload and the deadline reset afterwards.
func TestPeerExchange(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		h   Hello
		err error
	}
	ccHello := &Hello{Role: RoleCC, CCThreads: 2, ExecThreads: 3, LogicalPartitions: 8,
		Epoch: 1, Routing: []uint16{0, 1, 0, 1, 0, 1, 0, 1}}
	exHello := &Hello{Role: RoleExec, CCThreads: 2, ExecThreads: 3, LogicalPartitions: 8,
		Epoch: 1, Routing: []uint16{0, 1, 0, 1, 0, 1, 0, 1}}
	ccSide := make(chan res, 1)
	go func() {
		conn, err := Accept(ln, time.Second)
		if err != nil {
			ccSide <- res{err: err}
			return
		}
		defer conn.Close()
		h, err := Exchange(conn, ccHello, time.Second)
		ccSide <- res{h, err}
	}()
	conn, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := Exchange(conn, exHello, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cc := <-ccSide
	if cc.err != nil {
		t.Fatal(cc.err)
	}
	if got.Role != RoleCC || cc.h.Role != RoleExec {
		t.Fatalf("roles did not cross: exec saw %d, cc saw %d", got.Role, cc.h.Role)
	}
	if len(got.Routing) != 8 || got.Routing[1] != 1 {
		t.Fatalf("routing table did not survive the exchange: %v", got.Routing)
	}
}

// TestSteadyStateZeroAlloc pins the PR's headline property: once warm,
// a full send→wire→receive round trip of a batched frame allocates
// nothing on either side — no per-frame buffers, no per-message boxing,
// no decoder garbage.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	a, b := newPeerPair(t, Config{})
	var rf Frame
	roundTrip := func() {
		f := a.Get()
		fillAcquireBatch(f, 8)
		for !a.TrySend(f) {
			runtime.Gosched()
		}
		for {
			if err := b.Recv(&rf); err != nil {
				t.Fatalf("recv: %v", err)
			}
			if rf.Plane != PlaneControl {
				break
			}
		}
	}
	// Warm every pool, scratch buffer and socket path to its high-water
	// mark, then empty sync.Pool victim caches so a GC during the
	// measured runs cannot manufacture refill allocations.
	for i := 0; i < 256; i++ {
		roundTrip()
	}
	runtime.GC()
	if allocs := testing.AllocsPerRun(200, roundTrip); allocs != 0 {
		t.Fatalf("steady-state round trip allocates %v objects/op, want 0", allocs)
	}
}
