package txn

// PartitionFunc maps a record to its home partition. ORTHRUS uses it as
// the *static* level of its two-level routing — record → logical
// partition, fixed for the lifetime of an engine — while an
// epoch-versioned routing table resolves logical partition → owning CC
// thread and may change between epochs (live partition migration).
// Partitioned-store uses it to place data. Workload generators use the
// same function so the partition-locality experiments (Figures 5-7,
// Appendix A single/dual/random configurations) can constrain each
// transaction's footprint.
type PartitionFunc func(table int, key uint64) int

// HashPartitioner spreads keys round-robin across n partitions
// (key mod n). This is the mapping used by all YCSB-style experiments.
func HashPartitioner(n int) PartitionFunc {
	return func(_ int, key uint64) int { return int(key % uint64(n)) }
}

// RangePartitioner splits the key space [0, span) into n contiguous
// ranges of equal width, mapping each to one partition. Under range
// partitioning a spatially concentrated hot set — a sliding window of
// keys, a Zipfian head — lands on few logical partitions, which is the
// load shape the elastic routing experiments rebalance (a hash
// partitioner would smear any contiguous hot set uniformly and leave
// nothing to migrate). Keys at or beyond span clamp to the last
// partition.
func RangePartitioner(n int, span uint64) PartitionFunc {
	if n < 1 {
		panic("txn: RangePartitioner needs at least 1 partition")
	}
	if span < uint64(n) {
		panic("txn: RangePartitioner span must be at least the partition count")
	}
	width := (span + uint64(n) - 1) / uint64(n)
	return func(_ int, key uint64) int {
		p := int(key / width)
		if p >= n {
			p = n - 1
		}
		return p
	}
}

// PartitionSet derives the distinct home partitions of t's declared access
// set in ascending order, caching the result in t.Partitions. Declared
// ranges contribute the partition of every key they cover — including
// keys not yet present — so a Partitioned-store scan serializes against
// any insert a concurrent transaction could make into the range (its
// phantom protection is exactly this partition-footprint overlap).
//
// The cache is epoch-independent by design: record → logical partition is
// the static level of two-level routing, so a partition set computed once
// stays valid across routing epochs. Anything derived from the *dynamic*
// level (logical partition → CC thread) must instead be revalidated
// against the routing epoch it was computed under — see Txn.RouteEpoch.
func (t *Txn) PartitionSet(pf PartitionFunc) []int {
	// Pooled transactions reset Partitions to a zero-length slice (keeping
	// the backing array), so emptiness — not nilness — marks a cold cache.
	// A transaction that genuinely touches no partitions recomputes, which
	// is harmless: the recomputation also yields nothing.
	if len(t.Partitions) > 0 {
		return t.Partitions
	}
	t.Partitions = t.Partitions[:0]
	var set [64]bool
	var overflow map[int]bool
	mark := func(p int) {
		if p < len(set) {
			set[p] = true
		} else {
			if overflow == nil {
				overflow = make(map[int]bool)
			}
			overflow[p] = true
		}
	}
	for _, op := range t.Ops {
		mark(pf(op.Table, op.Key))
	}
	for _, r := range t.Ranges {
		// Per-key enumeration is the only footprint an opaque partition
		// function admits; declared ranges are short (scan lengths, one
		// order's lines), so the cost is in line with the scan itself.
		for key := r.Lo; key < r.Hi; key++ {
			mark(pf(r.Table, key))
		}
	}
	for p := range set {
		if set[p] {
			t.Partitions = append(t.Partitions, p)
		}
	}
	if overflow != nil {
		for p := range overflow {
			t.Partitions = append(t.Partitions, p)
		}
		sortInts(t.Partitions)
	}
	return t.Partitions
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
