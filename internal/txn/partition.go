package txn

// PartitionFunc maps a record to its home partition. ORTHRUS uses it to
// route lock requests to concurrency-control threads; Partitioned-store
// uses it to place data. Workload generators use the same function so the
// partition-locality experiments (Figures 5-7, Appendix A single/dual/
// random configurations) can constrain each transaction's footprint.
type PartitionFunc func(table int, key uint64) int

// HashPartitioner spreads keys round-robin across n partitions
// (key mod n). This is the mapping used by all YCSB-style experiments.
func HashPartitioner(n int) PartitionFunc {
	return func(_ int, key uint64) int { return int(key % uint64(n)) }
}

// PartitionSet derives the distinct home partitions of t's declared access
// set in ascending order, caching the result in t.Partitions.
func (t *Txn) PartitionSet(pf PartitionFunc) []int {
	if t.Partitions != nil {
		return t.Partitions
	}
	var set [64]bool
	var overflow map[int]bool
	for _, op := range t.Ops {
		p := pf(op.Table, op.Key)
		if p < len(set) {
			set[p] = true
		} else {
			if overflow == nil {
				overflow = make(map[int]bool)
			}
			overflow[p] = true
		}
	}
	for p := range set {
		if set[p] {
			t.Partitions = append(t.Partitions, p)
		}
	}
	if overflow != nil {
		for p := range overflow {
			t.Partitions = append(t.Partitions, p)
		}
		sortInts(t.Partitions)
	}
	return t.Partitions
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
