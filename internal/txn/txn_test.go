package txn

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestModeConflicts(t *testing.T) {
	if Read.Conflicts(Read) {
		t.Fatal("R/R conflicts")
	}
	if !Read.Conflicts(Write) || !Write.Conflicts(Read) || !Write.Conflicts(Write) {
		t.Fatal("write conflicts missing")
	}
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("String")
	}
}

func TestOpLess(t *testing.T) {
	a := Op{Table: 0, Key: 5}
	b := Op{Table: 0, Key: 6}
	c := Op{Table: 1, Key: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatal("ordering broken")
	}
	if a.Less(a) {
		t.Fatal("irreflexivity broken")
	}
}

func TestSortOpsDedup(t *testing.T) {
	tx := &Txn{Ops: []Op{
		{Table: 1, Key: 3, Mode: Read},
		{Table: 0, Key: 9, Mode: Write},
		{Table: 1, Key: 3, Mode: Write}, // dup of first, stronger mode
		{Table: 0, Key: 9, Mode: Read},  // dup, weaker mode
		{Table: 0, Key: 1, Mode: Read},
	}}
	tx.SortOps()
	want := []Op{
		{Table: 0, Key: 1, Mode: Read},
		{Table: 0, Key: 9, Mode: Write},
		{Table: 1, Key: 3, Mode: Write},
	}
	if len(tx.Ops) != len(want) {
		t.Fatalf("Ops = %v", tx.Ops)
	}
	for i := range want {
		if tx.Ops[i] != want[i] {
			t.Fatalf("Ops[%d] = %v, want %v", i, tx.Ops[i], want[i])
		}
	}
}

func TestDeclared(t *testing.T) {
	tx := &Txn{Ops: []Op{
		{Table: 0, Key: 1, Mode: Read},
		{Table: 0, Key: 2, Mode: Write},
	}}
	tx.SortOps()
	if !tx.Declared(0, 1, Read) {
		t.Fatal("read of declared read key not found")
	}
	if tx.Declared(0, 1, Write) {
		t.Fatal("write allowed on read-declared key")
	}
	if !tx.Declared(0, 2, Read) || !tx.Declared(0, 2, Write) {
		t.Fatal("write-declared key must satisfy both modes")
	}
	if tx.Declared(0, 3, Read) || tx.Declared(1, 1, Read) {
		t.Fatal("undeclared key reported declared")
	}
}

func TestResetScratch(t *testing.T) {
	tx := &Txn{Pending: 3, Owner: 2, Hops: []int{1, 2}, RouteEpoch: 7, TS: 99}
	tx.ResetScratch()
	if tx.Pending != 0 || tx.Owner != 0 || len(tx.Hops) != 0 || tx.RouteEpoch != 0 || tx.TS != 0 {
		t.Fatalf("scratch not cleared: %+v", tx)
	}
}

func TestRangePartitioner(t *testing.T) {
	pf := RangePartitioner(4, 100)
	cases := []struct {
		key  uint64
		want int
	}{
		{0, 0}, {24, 0}, {25, 1}, {49, 1}, {50, 2}, {75, 3}, {99, 3},
		{1000, 3}, // out-of-span keys clamp to the last partition
	}
	for _, c := range cases {
		if got := pf(0, c.key); got != c.want {
			t.Errorf("pf(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	// A contiguous window lands on a contiguous partition prefix — the
	// property elastic routing rebalances on.
	for k := uint64(0); k < 25; k++ {
		if pf(0, k) != 0 {
			t.Fatalf("key %d escaped the first range", k)
		}
	}
	// Every partition is reachable, and assignment is monotone in the key.
	last := -1
	seen := make(map[int]bool)
	for k := uint64(0); k < 100; k++ {
		p := pf(0, k)
		if p < last {
			t.Fatalf("partition decreased at key %d", k)
		}
		last = p
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 partitions reachable", len(seen))
	}
}

func TestRangePartitionerPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RangePartitioner(0, 100) },
		func() { RangePartitioner(8, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: SortOps output is sorted, duplicate-free, covers exactly the
// distinct input keys, and Declared agrees with a naive scan.
func TestSortOpsProperty(t *testing.T) {
	f := func(raw []uint16, modes []bool) bool {
		tx := &Txn{}
		type tk struct {
			tbl int
			key uint64
		}
		strongest := map[tk]Mode{}
		for i, k := range raw {
			m := Read
			if i < len(modes) && modes[i] {
				m = Write
			}
			tbl := int(k % 3)
			key := uint64(k / 3 % 50)
			tx.Ops = append(tx.Ops, Op{Table: tbl, Key: key, Mode: m})
			if m == Write || strongest[tk{tbl, key}] == Read {
				if cur, ok := strongest[tk{tbl, key}]; !ok || (cur == Read && m == Write) {
					strongest[tk{tbl, key}] = m
				}
			} else if _, ok := strongest[tk{tbl, key}]; !ok {
				strongest[tk{tbl, key}] = m
			}
		}
		tx.SortOps()
		if len(tx.Ops) != len(strongest) {
			return false
		}
		if !sort.SliceIsSorted(tx.Ops, func(i, j int) bool { return tx.Ops[i].Less(tx.Ops[j]) }) {
			return false
		}
		for _, op := range tx.Ops {
			if strongest[tk{op.Table, op.Key}] != op.Mode {
				return false
			}
			if !tx.Declared(op.Table, op.Key, op.Mode) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- range declarations and stripe (gap) keys ----------------------------

func TestStripeKeys(t *testing.T) {
	if StripeKey(0) != StripeFlag {
		t.Fatalf("StripeKey(0) = %x", StripeKey(0))
	}
	if StripeKey(StripeSize-1) != StripeKey(0) {
		t.Fatal("keys within one stripe map to different stripe keys")
	}
	if StripeKey(StripeSize) == StripeKey(StripeSize-1) {
		t.Fatal("stripe boundary not respected")
	}
	first, last := StripeSpan(10, 20)
	if first != last || first != StripeKey(10) {
		t.Fatalf("StripeSpan(10,20) = %x..%x", first, last)
	}
	first, last = StripeSpan(StripeSize-1, StripeSize+1)
	if last != first+1 {
		t.Fatalf("StripeSpan across a boundary = %x..%x", first, last)
	}
	// Stripe keys sort after every record key of the same table, keeping
	// the global (table, key) lock order total.
	rec := Op{Table: 3, Key: ^uint64(0) >> 1} // largest legal record key
	str := Op{Table: 3, Key: StripeKey(0)}
	if !rec.Less(str) {
		t.Fatal("stripe key does not sort after record keys")
	}
}

func TestDeclaredRange(t *testing.T) {
	tx := &Txn{Ranges: []RangeOp{
		{Table: 1, Lo: 100, Hi: 200, Mode: Read},
		{Table: 2, Lo: 0, Hi: 50, Mode: Write},
	}}
	if !tx.DeclaredRange(1, 100, 200, Read) || !tx.DeclaredRange(1, 150, 160, Read) {
		t.Fatal("covered range not declared")
	}
	if tx.DeclaredRange(1, 99, 200, Read) || tx.DeclaredRange(1, 100, 201, Read) {
		t.Fatal("uncovered range declared")
	}
	if tx.DeclaredRange(1, 100, 200, Write) {
		t.Fatal("Read range satisfied a Write requirement")
	}
	if !tx.DeclaredRange(2, 10, 20, Read) || !tx.DeclaredRange(2, 10, 20, Write) {
		t.Fatal("Write range must satisfy both modes")
	}
	if tx.DeclaredRange(3, 0, 1, Read) {
		t.Fatal("undeclared table declared")
	}
}

func TestSortOpsDedupesStripeOps(t *testing.T) {
	tx := &Txn{Ops: []Op{
		{Table: 1, Key: StripeKey(5), Mode: Read},
		{Table: 1, Key: 5, Mode: Write},
		{Table: 1, Key: StripeKey(5), Mode: Write},
	}}
	tx.SortOps()
	if len(tx.Ops) != 2 {
		t.Fatalf("ops = %v", tx.Ops)
	}
	if tx.Ops[0].Key != 5 || tx.Ops[1].Key != StripeKey(5) {
		t.Fatalf("order wrong: %v", tx.Ops)
	}
	if tx.Ops[1].Mode != Write {
		t.Fatal("duplicate stripe did not widen to Write")
	}
}
