// Package txn defines the transaction representation shared by every
// engine: a declared access set — record Ops plus range RangeOps, for the
// planned-access engines (ORTHRUS and Deadlock-free locking) — a logic
// closure executed against an engine-supplied access context (Ctx), and
// abort/retry bookkeeping. Ranges are protected against phantoms with
// stripe (gap) locks carved out of each table's lock namespace; see the
// stripe constants below.
//
// The same Txn value runs unmodified on every engine in the repository;
// only the Ctx implementation differs. Conventional 2PL ignores Ops and
// acquires locks lazily as Logic touches records; the planned engines
// acquire the locks named by Ops up front and then run Logic with locking
// already settled. This mirrors the paper's methodology of comparing all
// systems "within the same ORTHRUS transaction management codebase" (§4).
package txn

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Mode is a record access mode.
type Mode uint8

// Access modes. Write subsumes Read (read-modify-write acquires Write).
const (
	Read Mode = iota
	Write
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Read {
		return "R"
	}
	return "W"
}

// Conflicts reports whether two access modes on the same record conflict.
// Only Read/Read is compatible.
func (m Mode) Conflicts(o Mode) bool { return m == Write || o == Write }

// Op names one record in a transaction's declared access set.
type Op struct {
	Table int
	Key   uint64
	Mode  Mode
}

// Stripe (gap) locks.
//
// Range scans need protection not just for the records they read but for
// the *gaps* between them: a concurrent insert into a scanned range is a
// phantom. The lock space of every table is therefore extended with
// synthetic stripe keys — key bit 63 set, remaining bits the record key
// shifted down by StripeShift — so one stripe lock covers StripeSize
// adjacent record keys. A scan read-locks every stripe overlapping its
// range; an insert write-locks the stripe of its new key; the existing
// (table, key) lock machinery of every engine carries both without
// change. Record keys must stay below 1<<63 (asserted by ordered storage
// tables), so stripe keys can never collide with record keys, and within
// a table every record key sorts before every stripe key — the global
// lexicographic lock order stays total, preserving the Deadlock-free
// engine's ordered-acquisition argument.
const (
	// StripeShift is log2 of the stripe width.
	StripeShift = 6
	// StripeSize is the number of adjacent record keys one stripe lock
	// covers.
	StripeSize = 1 << StripeShift
	// StripeFlag marks a lock key as a stripe (gap) lock.
	StripeFlag uint64 = 1 << 63
)

// StripeKey returns the stripe lock key covering record key.
func StripeKey(key uint64) uint64 { return StripeFlag | key>>StripeShift }

// StripeSpan returns the first and last stripe lock keys covering the
// half-open record-key range [lo, hi). hi must be greater than lo.
func StripeSpan(lo, hi uint64) (first, last uint64) {
	return StripeKey(lo), StripeKey(hi - 1)
}

// RangeOp names one key range in a transaction's declared access set:
// the half-open interval [Lo, Hi) of table keys the transaction scans
// (Mode Read) or may insert into (Mode Write). Planned-access engines
// materialize declared ranges into stripe lock Ops before acquisition;
// conventional 2PL takes the equivalent stripe locks lazily inside
// Ctx.Scan and Ctx.Insert.
type RangeOp struct {
	Table  int
	Lo, Hi uint64
	Mode   Mode
}

// Empty reports whether the range covers no keys.
func (r RangeOp) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether key falls inside the range.
func (r RangeOp) Contains(key uint64) bool { return key >= r.Lo && key < r.Hi }

// String implements fmt.Stringer.
func (r RangeOp) String() string {
	return fmt.Sprintf("%s t%d/[%d,%d)", r.Mode, r.Table, r.Lo, r.Hi)
}

// String implements fmt.Stringer.
func (o Op) String() string { return fmt.Sprintf("%s t%d/%d", o.Mode, o.Table, o.Key) }

// Less orders ops by (table, key): the global lock order used by the
// Deadlock-free engine (paper §3.2 "lexicographical order").
func (o Op) Less(b Op) bool {
	if o.Table != b.Table {
		return o.Table < b.Table
	}
	return o.Key < b.Key
}

// ErrAborted is returned through Ctx accessors and Logic when the engine's
// deadlock handler chose this transaction as a victim. Engines undo the
// transaction's writes, release its locks and (by default) restart it.
var ErrAborted = errors.New("txn: aborted by deadlock handler")

// ErrEstimateMiss is returned when a planned-access engine discovers,
// mid-execution, that the transaction touched a record absent from its
// declared access set. Under OLLP the engine re-runs reconnaissance and
// restarts with the corrected estimate (paper §3.2).
var ErrEstimateMiss = errors.New("txn: access outside declared read/write set")

// Ctx is the engine-supplied access context Logic runs against. Accessors
// return ErrAborted when the transaction must abort; Logic must propagate
// that error immediately.
type Ctx interface {
	// Read returns the record payload for reading.
	Read(table int, key uint64) ([]byte, error)
	// Write returns the record payload for in-place modification. The
	// engine has recorded an undo image; mutations are rolled back if the
	// transaction subsequently aborts.
	Write(table int, key uint64) ([]byte, error)
	// Insert adds a new record. On scan-protected tables (ordered
	// growable storage) the engine holds the key's stripe lock in Write
	// mode across the insert, so a concurrent range scan covering the key
	// cannot observe a phantom; on other tables inserts bypass logical
	// locking (see internal/storage package comment).
	Insert(table int, key uint64, value []byte) error
	// Scan iterates the records of table with keys in the half-open range
	// [lo, hi) in ascending key order, invoking fn for each. The engine
	// guarantees the iteration is phantom-safe on scan-protected tables:
	// every covering stripe is read-locked before the first callback, so
	// no insert can add a key to the range until the transaction ends.
	// fn must treat rec as read-only; a non-nil error from fn stops the
	// iteration and is returned. Scanning a range the transaction later
	// inserts into is unsupported under conventional 2PL (read→write
	// stripe upgrade).
	Scan(table int, lo, hi uint64, fn func(key uint64, rec []byte) error) error
}

// Logic is a transaction body. It may be re-executed after aborts, so it
// must be deterministic given the same Ctx responses and must not carry
// side effects outside the Ctx.
type Logic func(ctx Ctx) error

// Txn is one transaction instance.
type Txn struct {
	// ID is assigned by the engine; unique within a run.
	ID uint64
	// Ops is the declared access set used by planned-access engines.
	// Conventional 2PL ignores it.
	Ops []Op
	// Ranges is the declared range-access set: key intervals the
	// transaction scans (Read) or may insert into (Write). Planned
	// engines materialize each range into stripe lock Ops
	// (engine.MaterializeRanges); Partitioned-store folds every key a
	// range covers into the partition footprint. Conventional 2PL
	// ignores it (stripe locks are taken lazily).
	Ranges []RangeOp
	// Logic is the transaction body.
	Logic Logic
	// Partitions optionally pre-computes the set of home partitions the
	// transaction touches (used by Partitioned-store and by ORTHRUS's
	// partition-locality experiment configurations). When nil, engines
	// derive it from Ops.
	Partitions []int
	// Restarts counts aborts-and-retries suffered so far.
	Restarts int
	// Replan re-runs OLLP reconnaissance after an estimate miss,
	// rebuilding Ops (and Logic, if it captured planned keys). Engines
	// call it when an access returns ErrEstimateMiss. Nil for
	// transactions whose access sets are exact by construction.
	Replan func(*Txn)
	// ReadOnly declares the transaction write-free. Engines whose
	// database has versioned tables serve it from an immutable MVCC
	// snapshot — zero locks, zero CC messages, no gap locks (see
	// internal/engine Snapshots); engines without versioned tables fall
	// back to the ordinary locking path, so the flag is always safe to
	// set on a transaction that performs no writes. Declared Ops/Ranges
	// are ignored on the snapshot path (the snapshot is immutable, so no
	// footprint is needed) but should still describe the reads for the
	// locking fallback.
	ReadOnly bool
	// Free, when non-nil, recycles the transaction into its producer's
	// pool. The engine calls it exactly once, after the completion
	// callback and every other observer (WAL commit ack, CC release
	// processing, metrics recording) is finished with the transaction —
	// the //orthrus:recycle ownership-transfer convention. After Free
	// returns, the producer may hand the same *Txn to another caller, so
	// no engine structure may retain it (or alias its slices). Producers
	// that do not pool leave Free nil and rely on the GC.
	Free func()

	// engine scratch, reset by engines between runs
	Pending int32 // ORTHRUS: locks not yet granted at the current CC thread
	Owner   int   // ORTHRUS: issuing execution thread
	Hops    []int // ORTHRUS: CC thread visit chain, ascending
	// RouteEpoch is the routing epoch Hops was derived under. Unlike
	// Partitions (the static record → logical partition level, valid
	// forever), a CC-thread chain depends on the epoch-versioned
	// logical-partition → CC-thread table, so consumers must recompute
	// Hops whenever the engine's current epoch differs from RouteEpoch.
	RouteEpoch uint64
	TS         uint64 // wait-die timestamp
}

// SortOps sorts the declared access set into the global lock order and
// removes duplicate (table,key) entries, widening Read to Write when both
// appear. Planned engines call this once before first execution.
func (t *Txn) SortOps() {
	if len(t.Ops) < 2 {
		return
	}
	// slices.SortFunc with a capture-free comparator: unlike sort.Slice
	// (whose interface value and closure escape), this compiles to a
	// static call and keeps the hot path allocation-free.
	slices.SortFunc(t.Ops, func(a, b Op) int {
		if a.Less(b) {
			return -1
		}
		if b.Less(a) {
			return 1
		}
		return 0
	})
	out := t.Ops[:1]
	for _, op := range t.Ops[1:] {
		last := &out[len(out)-1]
		if op.Table == last.Table && op.Key == last.Key {
			if op.Mode == Write {
				last.Mode = Write
			}
			continue
		}
		out = append(out, op)
	}
	t.Ops = out
}

// Declared reports whether (table,key) appears in Ops with a mode at least
// as strong as mode.
func (t *Txn) Declared(table int, key uint64, mode Mode) bool {
	i := sort.Search(len(t.Ops), func(i int) bool {
		return !t.Ops[i].Less(Op{Table: table, Key: key})
	})
	if i >= len(t.Ops) {
		return false
	}
	op := t.Ops[i]
	if op.Table != table || op.Key != key {
		return false
	}
	return op.Mode == Write || mode == Read
}

// DeclaredRange reports whether a single declared range covers the whole
// half-open interval [lo, hi) of table with a mode at least as strong as
// mode. The range set is small (a handful per transaction), so the check
// is a linear pass.
func (t *Txn) DeclaredRange(table int, lo, hi uint64, mode Mode) bool {
	for _, r := range t.Ranges {
		if r.Table != table || r.Lo > lo || r.Hi < hi {
			continue
		}
		if r.Mode == Write || mode == Read {
			return true
		}
	}
	return false
}

// ResetScratch clears engine scratch fields before a (re)run.
func (t *Txn) ResetScratch() {
	t.Pending = 0
	t.Owner = 0
	t.Hops = t.Hops[:0]
	t.RouteEpoch = 0
	t.TS = 0
}
