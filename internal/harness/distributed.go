package harness

import (
	"fmt"
	"net"

	"repro/internal/metrics"
	"repro/internal/orthrus"
	"repro/internal/storage"
	"repro/internal/workload"
)

// NodeCommand, when set (cmd/orthrus-bench wires it to re-exec itself),
// launches the cc half of the two-process split as a separate OS
// process: it returns the child's accept address once the child is
// listening, and a wait function that blocks until the child exits
// cleanly. When nil, the distributed experiment falls back to hosting
// the cc node on a goroutine in this process — the full TCP/codec path
// over loopback still runs, only the process boundary is missing.
var NodeCommand func(c Config, ccThreads, execThreads int) (addr string, wait func() error)

// distributed compares the message plane's two backends on the transfer
// workload: the in-process SPSC rings versus the batched TCP transport
// with all CC threads on one node and all execution threads on the
// other. Same thread split, same table, same workload — the delta is
// the cost of crossing the wire, and the frame counters show how much
// of it batching recovers. Every row property-checks conservation (the
// transfer sum is invariant mod 2^64).
func distributed(c Config) {
	header(c, "distributed: two-node CC/exec split over loopback TCP vs the in-process plane")
	const threads = 10
	cc, ex := ccSplit(threads)
	mode := "two-process"
	if NodeCommand == nil {
		mode = "single-process loopback"
	}
	fmt.Fprintf(c.Out, "%d cc + %d exec threads, transfer workload, %s\n", cc, ex, mode)
	fmt.Fprintf(c.Out, "%-10s %12s %10s %10s %12s %12s %10s\n",
		"plane", "tps", "p99_us", "frames", "msgs/frame", "wire_bytes", "conserved")

	row := func(name string, res metrics.Result, m orthrus.MessageStats, conserved bool) {
		n := m.Net
		frames := n.FramesSent + n.FramesReceived
		bytes := n.BytesSent + n.BytesReceived
		fmt.Fprintf(c.Out, "%-10s %12.0f %10d %10d %12.1f %12d %10v\n",
			name, res.Throughput(), res.Totals.Latency.Percentile(99).Microseconds(),
			frames, n.MessagesPerFrame(), bytes, conserved)
		c.JSONRow(map[string]interface{}{
			"plane":          name,
			"cc_threads":     cc,
			"exec_threads":   ex,
			"tps":            res.Throughput(),
			"p99_us":         res.Totals.Latency.Percentile(99).Microseconds(),
			"committed":      res.Totals.Committed,
			"frames_sent":    n.FramesSent,
			"frames_recv":    n.FramesReceived,
			"msgs_sent":      n.MessagesSent,
			"msgs_recv":      n.MessagesReceived,
			"bytes_sent":     n.BytesSent,
			"bytes_recv":     n.BytesReceived,
			"msgs_per_frame": n.MessagesPerFrame(),
			"conserved":      conserved,
		})
	}

	sum := func(db *storage.DB, tbl int) uint64 {
		var s uint64
		for k := uint64(0); k < c.Records; k++ {
			s += storage.GetU64(db.Table(tbl).Get(k), 0)
		}
		return s
	}

	// In-process plane, through the same Transport abstraction.
	{
		db, tbl := newYCSBDB(c)
		eng := orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: ex})
		src := &workload.Transfer{Table: tbl, NumRecords: c.Records}
		res := point(c, eng, src)
		row("inproc", res, eng.Messages(), sum(db, tbl) == 0)
	}

	// Networked plane: the cc node in a child process (or, without
	// NodeCommand, on a goroutine) and the execution threads here.
	{
		var addr string
		var wait func() error
		if NodeCommand != nil {
			addr, wait = NodeCommand(c, cc, ex)
		} else {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(fmt.Sprintf("harness: distributed: listen: %v", err))
			}
			addr = ln.Addr().String()
			ccDB, _ := newYCSBDB(c)
			done := make(chan struct{})
			go func() {
				defer close(done)
				ccEng := orthrus.New(orthrus.Config{DB: ccDB, CCThreads: cc, ExecThreads: ex,
					Transport: orthrus.TransportConfig{Kind: "tcp", Role: "cc", Listener: ln}})
				ccEng.Start().Close() // Close gates on the exec node's goodbye
			}()
			wait = func() error { <-done; return nil }
		}
		db, tbl := newYCSBDB(c)
		eng := orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: ex,
			Transport: orthrus.TransportConfig{Kind: "tcp", Role: "exec", Peer: addr}})
		src := &workload.Transfer{Table: tbl, NumRecords: c.Records}
		res := point(c, eng, src)
		if err := wait(); err != nil {
			panic(fmt.Sprintf("harness: distributed: cc node: %v", err))
		}
		row("tcp", res, eng.Messages(), sum(db, tbl) == 0)
	}
}
