package harness

import (
	"fmt"
	"sort"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/engine/twopl"
	"repro/internal/orthrus"
	"repro/internal/partstore"
	"repro/internal/tpcc"
	"repro/internal/txn"
	"repro/internal/workload"
)

// paperCores is the machine-size axis used throughout the evaluation.
var paperCores = []int{10, 20, 40, 60, 80}

// fig1: scalability of short read-only transactions under 2PL on a
// high-contention workload (hot set 64). The handler never fires — the
// flattening comes purely from shared lock-table synchronization.
func fig1(c Config) {
	header(c, "Figure 1: 2PL read-only scalability, hot set = 64")
	t := newTable(c, "threads", []string{"2pl"})
	for _, n := range threadAxis(c, paperCores) {
		db, tbl := newYCSBDB(c)
		eng := twopl.New(twopl.Config{DB: db, Handler: deadlock.WaitDie{}, Threads: n})
		src := &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
			ReadOnly: true, HotRecords: 64, HotOps: 2}
		t.row(n, []float64{point(c, eng, src).Throughput()})
	}
}

// fig4 hot-set axis (contention increases left to right in the paper; we
// print decreasing hot-set size downward).
var fig4HotSets = []uint64{8192, 4096, 2048, 1024, 512, 384, 256, 192, 128, 64}

func fig4(c Config, threads int) {
	systems := []string{"deadlock-free", "dreadlocks", "waitdie", "waitfor"}
	t := newTable(c, "hot_records", systems)
	for _, hot := range fig4HotSets {
		if hot > c.Records {
			continue
		}
		tps := make([]float64, 0, len(systems))
		build := []func() (engine.Engine, *workload.YCSB){
			func() (engine.Engine, *workload.YCSB) {
				db, tbl := newYCSBDB(c)
				return dlfree.New(dlfree.Config{DB: db, Threads: threads}), fig4Src(c, tbl, hot)
			},
			func() (engine.Engine, *workload.YCSB) {
				db, tbl := newYCSBDB(c)
				return twopl.New(twopl.Config{DB: db, Handler: deadlock.NewDreadlocks(threads), Threads: threads}), fig4Src(c, tbl, hot)
			},
			func() (engine.Engine, *workload.YCSB) {
				db, tbl := newYCSBDB(c)
				return twopl.New(twopl.Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads}), fig4Src(c, tbl, hot)
			},
			func() (engine.Engine, *workload.YCSB) {
				db, tbl := newYCSBDB(c)
				return twopl.New(twopl.Config{DB: db, Handler: deadlock.NewWaitForGraph(threads), Threads: threads}), fig4Src(c, tbl, hot)
			},
		}
		for _, b := range build {
			eng, src := b()
			tps = append(tps, point(c, eng, src).Throughput())
		}
		t.row(hot, tps)
	}
}

func fig4Src(c Config, tbl int, hot uint64) *workload.YCSB {
	return &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
		HotRecords: hot, HotOps: 2}
}

func fig4a(c Config) {
	n := 10
	if n > c.MaxThreads {
		n = c.MaxThreads
	}
	header(c, fmt.Sprintf("Figure 4(a): deadlock handling vs hot-set size, %d threads", n))
	fig4(c, n)
}

func fig4b(c Config) {
	n := 80
	if n > c.MaxThreads {
		n = c.MaxThreads
	}
	header(c, fmt.Sprintf("Figure 4(b): deadlock handling vs hot-set size, %d threads", n))
	fig4(c, n)
}

// fig5: ORTHRUS thread-allocation trade-off. Uniform 10RMW transactions,
// each confined to a single CC thread's partition (§4.2).
func fig5(c Config) {
	header(c, "Figure 5: ORTHRUS execution-thread scalability per CC allocation")
	ccCounts := []int{4, 8, 16}
	execAxis := threadAxis(c, []int{4, 8, 16, 24, 32, 48, 64})
	cols := make([]string, len(ccCounts))
	for i, cc := range ccCounts {
		cols[i] = fmt.Sprintf("%dcc", cc)
	}
	t := newTable(c, "exec_threads", cols)
	for _, ex := range execAxis {
		tps := make([]float64, 0, len(ccCounts))
		for _, cc := range ccCounts {
			db, tbl := newYCSBDB(c)
			eng := orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: ex})
			src := &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
				Partitions: cc, Spread: 1, MultiPartitionPct: 100}
			tps = append(tps, point(c, eng, src).Throughput())
		}
		t.row(ex, tps)
	}
}

// fig6Partitions is the common partition universe for the multi-partition
// experiments: Partitioned-store runs one worker per partition, ORTHRUS
// partitions its lock space identically.
const fig6Partitions = 16

func fig6(c Config) {
	total := c.MaxThreads
	header(c, fmt.Sprintf("Figure 6: partitions accessed per transaction (%d partitions, %d threads)", fig6Partitions, total))
	names := []string{"partstore", "split-orthrus", "split-dlfree", "orthrus", "dlfree"}
	t := newTable(c, "parts_per_txn", names)
	for _, spread := range []int{1, 2, 4, 6, 8, 10} {
		tps := make([]float64, 0, len(names))
		for _, sys := range names {
			db, tbl := newYCSBDB(c)
			src := &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
				Partitions: fig6Partitions, Spread: spread, MultiPartitionPct: 100}
			var eng engine.Engine
			switch sys {
			case "partstore":
				eng = partstore.New(partstore.Config{DB: db, Partitions: fig6Partitions,
					Threads: fig6Partitions, Partition: txn.HashPartitioner(fig6Partitions)})
			case "split-orthrus", "orthrus":
				eng = orthrus.New(orthrus.Config{DB: db, CCThreads: fig6Partitions,
					ExecThreads: max(1, total-fig6Partitions), Split: sys == "split-orthrus"})
			case "split-dlfree", "dlfree":
				eng = dlfree.New(dlfree.Config{DB: db, Threads: total, Split: sys == "split-dlfree"})
			}
			tps = append(tps, point(c, eng, src).Throughput())
		}
		t.row(spread, tps)
	}
}

// fig7: mixed single-/two-partition workloads.
func fig7(c Config) {
	total := c.MaxThreads
	header(c, fmt.Sprintf("Figure 7: %% multi-partition transactions (%d partitions, %d threads)", fig6Partitions, total))
	names := []string{"partstore", "split-orthrus", "split-dlfree", "orthrus", "dlfree"}
	t := newTable(c, "mp_pct", names)
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		tps := make([]float64, 0, len(names))
		for _, sys := range names {
			db, tbl := newYCSBDB(c)
			src := &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
				Partitions: fig6Partitions, Spread: 2, MultiPartitionPct: pct}
			var eng engine.Engine
			switch sys {
			case "partstore":
				eng = partstore.New(partstore.Config{DB: db, Partitions: fig6Partitions,
					Threads: fig6Partitions, Partition: txn.HashPartitioner(fig6Partitions)})
			case "split-orthrus", "orthrus":
				eng = orthrus.New(orthrus.Config{DB: db, CCThreads: fig6Partitions,
					ExecThreads: max(1, total-fig6Partitions), Split: sys == "split-orthrus"})
			case "split-dlfree", "dlfree":
				eng = dlfree.New(dlfree.Config{DB: db, Threads: total, Split: sys == "split-dlfree"})
			}
			tps = append(tps, point(c, eng, src).Throughput())
		}
		t.row(pct, tps)
	}
}

// --- TPC-C experiments -----------------------------------------------------

func tpccSchema(c Config, warehouses int) *tpcc.Schema {
	s, err := tpcc.Load(tpcc.Config{Warehouses: warehouses,
		Items: c.TPCCItems, CustomersPerDistrict: c.TPCCCustomers})
	if err != nil {
		panic(err)
	}
	return s
}

// tpccEngines builds the §4.4 system lineup for a given thread budget.
func tpccEngines(c Config, s *tpcc.Schema, threads int) (names []string, engines []engine.Engine) {
	cc, exec := ccSplit(threads)
	if cc > 16 {
		cc = 16 // paper: 16 CC threads at 80 cores
		exec = threads - cc
	}
	names = []string{"orthrus", "dlfree", "2pl-dreadlocks"}
	engines = []engine.Engine{
		orthrus.New(orthrus.Config{DB: s.DB, CCThreads: cc, ExecThreads: exec,
			Partition: s.PartitionByWarehouse(cc)}),
		dlfree.New(dlfree.Config{DB: s.DB, Threads: threads}),
		twopl.New(twopl.Config{DB: s.DB, Handler: deadlock.NewDreadlocks(threads), Threads: threads}),
	}
	return
}

// fig8: TPC-C throughput vs warehouse count at the full thread budget.
func fig8(c Config) {
	total := c.MaxThreads
	header(c, fmt.Sprintf("Figure 8: TPC-C NewOrder+Payment vs warehouses, %d threads", total))
	t := newTable(c, "warehouses", []string{"orthrus", "dlfree", "2pl-dreadlocks"})
	for _, w := range []int{4, 8, 16, 32, 64, 96, 128} {
		tps := make([]float64, 0, 3)
		for i := 0; i < 3; i++ {
			s := tpccSchema(c, w)
			_, engines := tpccEngines(c, s, total)
			src := &tpcc.Mix{S: s}
			tps = append(tps, point(c, engines[i], src).Throughput())
		}
		t.row(w, tps)
	}
}

// fig9: TPC-C scalability at 16 warehouses.
func fig9(c Config) {
	header(c, "Figure 9: TPC-C scalability, 16 warehouses")
	t := newTable(c, "threads", []string{"orthrus", "dlfree", "2pl-dreadlocks"})
	for _, n := range threadAxis(c, paperCores) {
		tps := make([]float64, 0, 3)
		for i := 0; i < 3; i++ {
			s := tpccSchema(c, 16)
			_, engines := tpccEngines(c, s, n)
			src := &tpcc.Mix{S: s}
			tps = append(tps, point(c, engines[i], src).Throughput())
		}
		t.row(n, tps)
	}
}

// fig10: execution-thread CPU time breakdown, low (128 warehouses) and
// high (16 warehouses) contention.
func fig10(c Config) {
	total := c.MaxThreads
	for _, cfg := range []struct {
		label string
		w     int
	}{
		{"low contention (128 warehouses)", 128},
		{"high contention (16 warehouses)", 16},
	} {
		header(c, fmt.Sprintf("Figure 10: CPU time breakdown, %s, %d threads", cfg.label, total))
		fmt.Fprintf(c.Out, "%-18s %8s %8s %8s\n", "system", "exec%", "lock%", "wait%")
		for i := 0; i < 3; i++ {
			s := tpccSchema(c, cfg.w)
			names, engines := tpccEngines(c, s, total)
			res := point(c, engines[i], &tpcc.Mix{S: s})
			e, l, w, _ := res.Totals.Breakdown()
			fmt.Fprintf(c.Out, "%-18s %8.1f %8.1f %8.1f\n", names[i], e, l, w)
			c.JSONRow(map[string]interface{}{
				"x_label": "warehouses", "x": cfg.w, "system": names[i],
				"series": map[string]interface{}{
					"tps": res.Throughput(), "exec_pct": e, "lock_pct": l, "wait_pct": w,
				},
			})
		}
	}
}

// --- YCSB appendix experiments ----------------------------------------------

// fig11and12 runs the Appendix A scalability matrix.
func fig11and12(c Config, readOnly bool, hot uint64, title string) {
	header(c, title)
	names := []string{"orthrus-single", "orthrus-dual", "orthrus-random", "dlfree", "2pl-waitdie"}
	t := newTable(c, "threads", names)
	for _, n := range threadAxis(c, paperCores) {
		cc, exec := ccSplit(n)
		tps := make([]float64, 0, len(names))
		for _, sys := range names {
			db, tbl := newYCSBDB(c)
			src := &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
				ReadOnly: readOnly, HotRecords: hot, HotOps: 2}
			if hot == 0 {
				src.HotOps = 0
			}
			var eng engine.Engine
			switch sys {
			case "orthrus-single":
				src.Partitions, src.Spread, src.MultiPartitionPct = cc, 1, 100
				eng = orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec})
			case "orthrus-dual":
				src.Partitions, src.Spread, src.MultiPartitionPct = cc, min(2, cc), 100
				eng = orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec})
			case "orthrus-random":
				eng = orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec})
			case "dlfree":
				eng = dlfree.New(dlfree.Config{DB: db, Threads: n})
			case "2pl-waitdie":
				eng = twopl.New(twopl.Config{DB: db, Handler: deadlock.WaitDie{}, Threads: n})
			}
			tps = append(tps, point(c, eng, src).Throughput())
		}
		t.row(n, tps)
	}
}

func fig11a(c Config) {
	fig11and12(c, true, 0, "Figure 11(a): YCSB read-only scalability, low contention")
}

func fig11b(c Config) {
	fig11and12(c, true, 64, "Figure 11(b): YCSB read-only scalability, high contention (hot=64)")
}

func fig12a(c Config) {
	fig11and12(c, false, 0, "Figure 12(a): YCSB 10RMW scalability, low contention")
}

func fig12b(c Config) {
	fig11and12(c, false, 64, "Figure 12(b): YCSB 10RMW scalability, high contention (hot=64)")
}

// batching: the message-plane batching extension (not a paper figure).
// The paper's partitioned-functionality design wins only while message
// passing stays cheaper than the latching it replaces (§3.1/§3.3);
// batching amortizes the ring cost of one atomic publish plus one atomic
// consume across BatchSize messages. BatchSize=1 is the unbatched
// baseline; the op columns report the MessageStats ring-operation
// counters, msgs/enq the achieved producer-side batching factor.
func batching(c Config) {
	header(c, "Message batching: ring operations and closed-loop throughput vs BatchSize")
	threads := 8
	if threads > c.MaxThreads {
		threads = c.MaxThreads
	}
	cc, exec := ccSplit(threads)
	workloads := []struct {
		name  string
		build func(tbl int) workload.Source
	}{
		{"transfer", func(tbl int) workload.Source {
			return &workload.Transfer{Table: tbl, NumRecords: c.Records}
		}},
		{"ycsb-10rmw", func(tbl int) workload.Source {
			return &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
				HotRecords: 64, HotOps: 2}
		}},
	}
	for _, wl := range workloads {
		fmt.Fprintf(c.Out, "\n%s workload (%d CC / %d exec threads):\n", wl.name, cc, exec)
		fmt.Fprintf(c.Out, "%-12s %12s %14s %12s %12s %10s\n",
			"batch_size", "tps", "messages", "enq_ops", "deq_ops", "msgs/enq")
		var lastPerCC []orthrus.CCStats
		for _, bs := range []int{1, 2, 4, 8, 16, 32} {
			db, tbl := newYCSBDB(c)
			eng := orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec, BatchSize: bs})
			res := point(c, eng, wl.build(tbl))
			m := eng.Messages()
			fmt.Fprintf(c.Out, "%-12d %12.0f %14d %12d %12d %10.2f\n",
				bs, res.Throughput(), m.TotalMessages(), m.EnqueueOps, m.DequeueOps,
				m.MessagesPerEnqueue())
			c.JSONRow(map[string]interface{}{
				"workload": wl.name, "x_label": "batch_size", "x": bs,
				"series": map[string]interface{}{
					"tps": res.Throughput(), "messages": m.TotalMessages(),
					"enq_ops": m.EnqueueOps, "deq_ops": m.DequeueOps,
				},
			})
			lastPerCC = m.PerCC
		}
		// Per-CC-thread load breakdown of the last (most batched) run:
		// the same counters the adaptive controller steers by.
		fmt.Fprintf(c.Out, "per-CC breakdown (batch=32): ")
		for i, cs := range lastPerCC {
			if i > 0 {
				fmt.Fprintf(c.Out, "  ")
			}
			fmt.Fprintf(c.Out, "cc%d handled=%d hiwater=%d parts=%d", i, cs.Handled(), cs.QueueHighWater, cs.Partitions)
		}
		fmt.Fprintln(c.Out)
	}
	adaptiveBatching(c, cc, exec)
}

// adaptiveBatching compares the AIMD per-exec-thread batch controller
// (BatchSize=0, the default) against the static extremes on the axis the
// static sweep cannot show: a fixed batch must choose between saturated
// throughput (large batch) and light-load latency (batch=1), while the
// controller tracks each thread's per-pass publish volume — growing while
// passes keep filling the batch, halving toward the unbatched plane when
// active passes publish half a batch or less. Each row reports closed-loop
// throughput on the contended hot-set mix, then commit-latency percentiles
// with 10% of measured capacity offered open-loop; the achieved per-thread
// batches of both runs show the controller converging to different
// operating points under the two loads, which is the whole case for it.
func adaptiveBatching(c Config, cc, exec int) {
	configs := []struct {
		name string
		bs   int
	}{
		{"static-1", 1},
		{"static-8", orthrus.DefaultBatchSize},
		{"adaptive", 0},
	}
	newEng := func(bs int) (*orthrus.Engine, workload.Source) {
		db, tbl := newYCSBDB(c)
		src := &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
			HotRecords: 64, HotOps: 2}
		return orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec, BatchSize: bs}), src
	}

	// Calibrate the low-load point off the static default's capacity so
	// all three configurations face the same offered rate.
	eng, src := newEng(orthrus.DefaultBatchSize)
	capacity := eng.Run(src, c.Duration).Throughput()
	rate := capacity * 10 / 100

	fmt.Fprintf(c.Out, "\nadaptive batching (ycsb-10rmw, %d CC / %d exec threads, low load = 10%% of %.0f tps):\n", cc, exec, capacity)
	fmt.Fprintf(c.Out, "%-12s %14s %16s %16s %16s %16s\n",
		"batching", "contended_tps", "ctd_batches", "lowload_p50_us", "lowload_p99_us", "lowload_batches")
	// Both points take the median of three runs: a single sub-second run
	// on a loaded host is decided by scheduler noise, not by batching.
	const reps = 3
	for _, cfg := range configs {
		var tps, p50s, p99s []float64
		var ctdBatches, lowBatches []int
		for r := 0; r < reps; r++ {
			eng, src := newEng(cfg.bs)
			tps = append(tps, point(c, eng, src).Throughput())
			ctdBatches = eng.Messages().ExecBatch

			eng2, src2 := newEng(cfg.bs)
			open := engine.RunOpenLoop(eng2, src2, rate, c.Duration)
			p50s = append(p50s, float64(open.Latency.Percentile(50).Microseconds()))
			p99s = append(p99s, float64(open.Latency.Percentile(99).Microseconds()))
			lowBatches = eng2.Messages().ExecBatch
		}
		contended, p50, p99 := median(tps), median(p50s), median(p99s)

		fmt.Fprintf(c.Out, "%-12s %14.0f %16v %16.0f %16.0f %16v\n",
			cfg.name, contended, ctdBatches, p50, p99, lowBatches)
		c.JSONRow(map[string]interface{}{
			"workload": "ycsb-10rmw", "x_label": "batching", "x": cfg.name,
			"series": map[string]interface{}{
				"contended_tps":  contended,
				"lowload_rate":   rate,
				"lowload_p50_us": p50,
				"lowload_p99_us": p99,
			},
		})
	}
}

// median returns the middle element of xs (mean of the middle two for an
// even count). It mutates xs's order.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// openloop: the serving-latency experiment enabled by the Runtime/Session
// lifecycle (not a paper figure): the paper's high-contention YCSB
// hot/cold workload offered to ORTHRUS at fixed Poisson arrival rates —
// a calibration fraction of the measured closed-loop capacity — with
// commit latency measured from each transaction's scheduled arrival.
func openloop(c Config) {
	header(c, "Open loop: commit latency vs offered load, 10RMW hot set = 64")
	threads := 16
	if threads > c.MaxThreads {
		threads = c.MaxThreads
	}
	cc, exec := ccSplit(threads)
	newEng := func() (*orthrus.Engine, *workload.YCSB) {
		db, tbl := newYCSBDB(c)
		src := &workload.YCSB{Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
			HotRecords: 64, HotOps: 2}
		return orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec}), src
	}

	// Calibrate: measure closed-loop capacity, then offer fractions of it.
	eng, src := newEng()
	capacity := eng.Run(src, c.Duration).Throughput()
	fmt.Fprintf(c.Out, "closed-loop capacity %.0f txns/s (%d threads)\n", capacity, threads)
	if capacity < 100 {
		fmt.Fprintln(c.Out, "capacity too low to offer open-loop load")
		return
	}
	fmt.Fprintf(c.Out, "%-14s %12s %12s %12s %12s %12s\n", "offered_pct", "rate", "achieved", "p50_us", "p99_us", "max_lag_us")
	for _, pct := range []int{25, 50, 75} {
		rate := capacity * float64(pct) / 100
		eng, src := newEng()
		res := engine.RunOpenLoop(eng, src, rate, c.Duration)
		fmt.Fprintf(c.Out, "%-14d %12.0f %12.0f %12d %12d %12d\n",
			pct, rate, res.AchievedRate(),
			res.Latency.Percentile(50).Microseconds(),
			res.Latency.Percentile(99).Microseconds(),
			res.MaxLag.Microseconds())
		c.JSONRow(map[string]interface{}{
			"x_label": "offered_pct", "x": pct,
			"series": map[string]interface{}{
				"rate": rate, "achieved": res.AchievedRate(),
				"p50_us": res.Latency.Percentile(50).Microseconds(),
				"p99_us": res.Latency.Percentile(99).Microseconds(),
			},
		})
	}
}
