package harness

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/engine/twopl"
	"repro/internal/orthrus"
	"repro/internal/partstore"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/workload"
)

// recoveryExp: the checkpoint/recovery extension (not a paper figure).
// Each engine runs the transfer workload against an async segmented WAL
// under three checkpoint regimes — none, one checkpoint per run, several
// per run — then "crashes" and recovers from the surviving segments plus
// the newest checkpoint, once serially and once with partition-parallel
// replay. Two effects should be visible in the rows: the log tail a
// recovery replays is bounded by the checkpoint interval, not by total
// history (applied records shrink as the interval does, and truncation
// drops whole segments), and parallel replay beats serial by roughly the
// worker count on a multi-core machine once the tail is large enough to
// amortize the scan fan-out.
func recoveryExp(c Config) {
	header(c, "Recovery: restart time vs checkpoint interval, parallel vs serial replay")
	threads := 8
	if threads > c.MaxThreads {
		threads = c.MaxThreads
	}
	cc, exec := ccSplit(threads)
	workers := runtime.GOMAXPROCS(0)

	intervals := []struct {
		name string
		d    time.Duration
	}{
		{"off", 0},
		{"run/2", c.Duration / 2},
		{"run/8", c.Duration / 8},
	}
	names := []string{"orthrus", "dlfree", "2pl-waitdie", "partstore"}
	build := func(sys string, db *storage.DB, tbl int, log *wal.Log, ck engine.CheckpointConfig) (engine.Engine, workload.Source) {
		src := &workload.Transfer{Table: tbl, NumRecords: c.Records}
		switch sys {
		case "orthrus":
			return orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec, Wal: log, Checkpoint: ck}), src
		case "dlfree":
			return dlfree.New(dlfree.Config{DB: db, Threads: threads, Wal: log, Checkpoint: ck}), src
		case "2pl-waitdie":
			return twopl.New(twopl.Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads, Wal: log, Checkpoint: ck}), src
		default:
			return partstore.New(partstore.Config{DB: db, Partitions: threads, Wal: log, Checkpoint: ck}), src
		}
	}

	fmt.Fprintf(c.Out, "\ntransfer workload (%d threads, %d replay workers):\n", threads, workers)
	fmt.Fprintf(c.Out, "%-12s %-8s %10s %9s %9s %9s %10s %11s %8s\n",
		"engine", "ckpt", "commits", "segments", "restored", "applied", "serial_ms", "parallel_ms", "speedup")
	for _, sys := range names {
		for _, iv := range intervals {
			db, tbl := newYCSBDB(c)
			dev := wal.NewMemSegments(256 << 10)
			log := wal.NewLog(dev, wal.Async())
			var ck engine.CheckpointConfig
			var store *wal.MemCheckpointStore
			if iv.d > 0 {
				store = wal.NewMemCheckpointStore()
				ck = engine.CheckpointConfig{Store: store, Interval: iv.d}
			}
			eng, src := build(sys, db, tbl, log, ck)
			res := point(c, eng, src)
			if err := log.Close(); err != nil {
				panic(err)
			}
			segs := dev.CrashSegments()
			// A typed-nil *MemCheckpointStore must not reach Recover as a
			// non-nil interface.
			var cs wal.CheckpointStore
			if store != nil {
				cs = store
			}

			runRecovery := func(w int) (wal.RecoverStats, float64) {
				fresh, _ := newYCSBDB(c)
				t0 := time.Now()
				st, err := wal.Recover(cs, segs, fresh, w)
				if err != nil {
					panic(err)
				}
				return st, float64(time.Since(t0).Microseconds()) / 1000
			}
			stSerial, serialMs := runRecovery(1)
			stPar, parMs := runRecovery(workers)
			if stSerial.Replay.Applied != stPar.Replay.Applied ||
				stSerial.Replay.AppliedLSN != stPar.Replay.AppliedLSN {
				panic(fmt.Sprintf("harness: parallel recovery diverged from serial: %+v vs %+v",
					stPar.Replay, stSerial.Replay))
			}
			speedup := serialMs / max(parMs, 0.001)

			fmt.Fprintf(c.Out, "%-12s %-8s %10d %9d %9d %9d %10.1f %11.1f %7.1fx\n",
				sys, iv.name, res.Totals.Committed, len(segs),
				stSerial.RecordsRestored, stSerial.Replay.Applied, serialMs, parMs, speedup)
			c.JSONRow(map[string]interface{}{
				"workload": "transfer", "x_label": "interval", "x": iv.name,
				"series": map[string]interface{}{
					"engine":           sys,
					"commits":          res.Totals.Committed,
					"segments":         len(segs),
					"truncated":        dev.Truncated(),
					"used_checkpoint":  stSerial.UsedCheckpoint,
					"records_restored": stSerial.RecordsRestored,
					"tail_scanned":     stSerial.Replay.Scanned,
					"tail_skipped":     stSerial.Replay.Skipped,
					"tail_applied":     stSerial.Replay.Applied,
					"serial_ms":        serialMs,
					"parallel_ms":      parMs,
					"speedup":          speedup,
				},
			})
		}
	}
}
