package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/orthrus"
	"repro/internal/txn"
	"repro/internal/workload"
)

// adaptive: the elastic CC plane extension (not a paper figure). The
// paper's Figure 5 shows the right CC:exec provisioning is
// workload-dependent; ORTHRUS's partitioned-functionality design is what
// makes re-provisioning *possible*, and two-level routing plus live
// migration makes it *happen*. This experiment offers a non-stationary
// workload — a Zipfian head on the first range partition, then a
// mid-run jump of the hot window to the middle of the key space — to
// two identical engines: one with the static default routing, one with
// the adaptive controller enabled. The key space is range-partitioned so
// the skew physically concentrates on few logical partitions; the static
// mapping leaves every partition sharing a CC thread with the hot one
// starved behind it, while the controller sheds those partitions to
// other CC threads and re-sheds after the hot set moves.
//
// Output is a throughput time series (one bucket per row) for both
// engines on the same phase schedule, then the phase-B comparison and
// the controller's activity counters.
func adaptive(c Config) {
	threads := 8
	if threads > c.MaxThreads {
		threads = c.MaxThreads
	}
	cc := 2
	exec := threads - cc
	if exec < 1 {
		exec = 1
	}
	const parts = 16 // logical partitions: 8× the CC threads
	records := c.Records
	phaseLen := 2 * c.Duration
	const bucketsPerPhase = 4
	buckets := 2 * bucketsPerPhase
	bucket := phaseLen / bucketsPerPhase

	header(c, fmt.Sprintf("Adaptive: elastic vs static CC routing across a hot-set shift (%dcc/%dex, %d logical partitions)", cc, exec, parts))
	fmt.Fprintf(c.Out, "phase A: zipf(1.4) head on partition 0; phase B (t>=%v): hot window moved to the middle of the key space\n", phaseLen)

	run := func(elastic bool) ([]float64, orthrus.ControllerStats) {
		db, tbl := newYCSBDB(c)
		cfg := orthrus.Config{
			DB: db, CCThreads: cc, ExecThreads: exec,
			LogicalPartitions: parts,
			Partition:         txn.RangePartitioner(parts, records),
		}
		if elastic {
			// MinActive pins the active set to every CC thread: the
			// comparison isolates partition *rebalancing* (static vs
			// elastic ownership), not down-provisioning, which would
			// otherwise fold the two effects together.
			cfg.Controller = orthrus.ControllerConfig{Enable: true,
				Interval: 2 * time.Millisecond, MinActive: cc}
		}
		eng := orthrus.New(cfg)
		src := &workload.Phased{Phases: []workload.Phase{
			{Src: &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 10,
				ZipfTheta: 1.4}, For: phaseLen},
			{Src: &workload.YCSB{Table: tbl, NumRecords: records, OpsPerTxn: 10,
				HotRecords: records / parts, HotStart: records / 2, HotOps: 5}},
		}}
		if err := src.Validate(); err != nil {
			panic(err)
		}

		ses := eng.Start()
		var commits atomic.Uint64
		var stop atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < eng.Clients(); i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(id)*7919 + 17))
				done := make(chan struct{}, 1)
				cb := func(bool) {
					commits.Add(1)
					done <- struct{}{}
				}
				for !stop.Load() {
					ses.Submit(src.Next(id, rng), cb)
					<-done
				}
			}(i)
		}

		// Align the sampling buckets with the phase clock: Phased's
		// schedule starts at the first Next call, not at Start.
		for src.Elapsed() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		series := make([]float64, 0, buckets)
		last := uint64(0)
		for b := 0; b < buckets; b++ {
			time.Sleep(bucket)
			cur := commits.Load()
			series = append(series, float64(cur-last)/bucket.Seconds())
			last = cur
		}
		stop.Store(true)
		wg.Wait()
		ses.Close()
		return series, eng.ControllerStats()
	}

	static, _ := run(false)
	elastic, cs := run(true)

	t := newTable(c, "t_ms", []string{"static", "elastic"})
	for b := 0; b < buckets; b++ {
		t.row(int64((time.Duration(b+1)*bucket)/time.Millisecond), []float64{static[b], elastic[b]})
	}

	mean := func(s []float64) float64 {
		var sum float64
		for _, v := range s {
			sum += v
		}
		return sum / float64(len(s))
	}
	staticB, elasticB := mean(static[bucketsPerPhase:]), mean(elastic[bucketsPerPhase:])
	ratio := 0.0
	if staticB > 0 {
		ratio = elasticB / staticB
	}
	fmt.Fprintf(c.Out, "phase-B mean throughput: static %.0f, elastic %.0f txns/s (elastic/static = %.2f)\n",
		staticB, elasticB, ratio)
	fmt.Fprintf(c.Out, "controller: samples=%d migrations=%d partitions_moved=%d grows=%d shrinks=%d active_cc=%d final_epoch=%d\n",
		cs.Samples, cs.Migrations, cs.PartitionsMoved, cs.Grows, cs.Shrinks, cs.ActiveCC, cs.FinalEpoch)
	c.JSONRow(map[string]interface{}{
		"summary":          "phase_b",
		"static_tps":       staticB,
		"elastic_tps":      elasticB,
		"ratio":            ratio,
		"migrations":       cs.Migrations,
		"partitions_moved": cs.PartitionsMoved,
		"final_epoch":      cs.FinalEpoch,
	})
}
