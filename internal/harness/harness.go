// Package harness regenerates every table and figure in the paper's
// evaluation (§4 and Appendix A), plus extensions such as the open-loop
// latency experiment. Each figure experiment prints the same series the
// paper plots — throughput (or a time breakdown) per system along the
// figure's x-axis — so paper-vs-measured comparisons drop out directly.
//
// Scale note: axis values named "CPU cores" in the paper are logical
// worker-thread counts here (see README.md "Scale and fidelity"), and
// the default table size is scaled down from the paper's 10M×1KB
// records; both are configurable.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Config are the knobs shared by all experiments.
type Config struct {
	// Duration is the measured run length per data point.
	Duration time.Duration
	// Records and RecordSize shape the YCSB table (paper: 10M × 1000 B).
	Records    uint64
	RecordSize int
	// MaxThreads caps the paper's thread-count axes (paper machine: 80).
	MaxThreads int
	// TPCCItems / TPCCCustomers scale TPC-C (see internal/tpcc docs).
	TPCCItems     int
	TPCCCustomers int
	// ScanPct / ScanMaxLen pin the scan experiment to a single scan
	// fraction (percent) / scan-length bound instead of its default
	// sweep. Zero means sweep; out-of-range values panic in Defaults.
	ScanPct    int
	ScanMaxLen int
	// ReadOnlyPct pins the htap experiment's read-only (analytics)
	// transaction fraction instead of its default. Zero means default;
	// out-of-range values panic in Defaults.
	ReadOnlyPct int
	// Out receives the printed tables.
	Out io.Writer

	// json, when non-nil, receives one machine-readable object per
	// printed series row. Set by Run; experiments never touch it
	// directly (table rows are mirrored automatically, custom-format
	// experiments call JSONRow).
	json *jsonRecorder
}

// JSONRow emits one machine-readable row for experiments whose output
// is not a plain series table. No-op unless JSON recording is on.
func (c Config) JSONRow(row map[string]interface{}) { c.json.emit(row) }

// Validate panics on out-of-range knobs. The scale knobs (Duration,
// Records, RecordSize, MaxThreads, TPCCItems, TPCCCustomers) accept any
// value — zero means "use the default", which Defaults fills before
// validating.
func (c Config) Validate() {
	_ = c.Duration   // <=0 means default
	_ = c.Records    // 0 means default
	_ = c.RecordSize // 0 means default
	_ = c.MaxThreads // 0 means default
	_ = c.TPCCItems  // 0 means default (tpcc.Load re-checks its own scale)
	_ = c.TPCCCustomers
	if c.ScanPct < 0 || c.ScanPct > 100 {
		panic(fmt.Sprintf("harness: ScanPct %d out of range [0, 100] (0 means sweep)", c.ScanPct))
	}
	if c.ScanMaxLen < 0 || uint64(c.ScanMaxLen) > c.Records {
		panic(fmt.Sprintf("harness: ScanMaxLen %d out of range [0, Records=%d] (0 means sweep)", c.ScanMaxLen, c.Records))
	}
	if c.ReadOnlyPct < 0 || c.ReadOnlyPct > 100 {
		panic(fmt.Sprintf("harness: ReadOnlyPct %d out of range [0, 100] (0 means default)", c.ReadOnlyPct))
	}
	if c.Out == nil {
		panic("harness: Config.Out must be set")
	}
}

// Defaults fills zero fields with laptop-scale values and validates the
// result.
func (c Config) Defaults() Config {
	if c.Duration <= 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.Records == 0 {
		c.Records = 100_000
	}
	if c.RecordSize == 0 {
		c.RecordSize = 100
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 80
	}
	if c.TPCCItems == 0 {
		c.TPCCItems = 1000
	}
	if c.TPCCCustomers == 0 {
		c.TPCCCustomers = 100
	}
	c.Validate()
	return c
}

// Experiment regenerates one paper figure.
type Experiment struct {
	ID          string
	Figure      string
	Description string
	Run         func(c Config)
}

// Registry returns all experiments in figure order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1", "2PL read-only scalability under high contention", fig1},
		{"fig4a", "Figure 4(a)", "deadlock-handler throughput vs hot-set size, 10 threads", fig4a},
		{"fig4b", "Figure 4(b)", "deadlock-handler throughput vs hot-set size, 80 threads", fig4b},
		{"fig5", "Figure 5", "ORTHRUS execution-thread scalability per CC allocation", fig5},
		{"fig6", "Figure 6", "throughput vs partitions accessed per transaction", fig6},
		{"fig7", "Figure 7", "throughput vs percentage of multi-partition transactions", fig7},
		{"fig8", "Figure 8", "TPC-C throughput vs warehouse count", fig8},
		{"fig9", "Figure 9", "TPC-C scalability at 16 warehouses", fig9},
		{"fig10", "Figure 10", "execution-thread CPU time breakdown on TPC-C", fig10},
		{"fig11a", "Figure 11(a)", "YCSB read-only scalability, low contention", fig11a},
		{"fig11b", "Figure 11(b)", "YCSB read-only scalability, high contention", fig11b},
		{"fig12a", "Figure 12(a)", "YCSB 10RMW scalability, low contention", fig12a},
		{"fig12b", "Figure 12(b)", "YCSB 10RMW scalability, high contention", fig12b},
		{"openloop", "Open loop", "commit-latency percentiles vs fixed Poisson arrival rate", openloop},
		{"batching", "Extension", "message-plane ring operations and throughput vs BatchSize", batching},
		{"adaptive", "Extension", "elastic vs static CC routing across a mid-run hot-set shift", adaptive},
		{"durability", "Extension", "throughput/latency vs WAL sync policy and group-commit size", durability},
		{"scan", "Extension", "phantom-safe range-scan throughput/p99 vs scan fraction and length", scanExp},
		{"htap", "Extension", "MVCC snapshot scans vs locking scans under a contended write mix", htapExp},
		{"recovery", "Extension", "recovery time vs checkpoint interval; parallel vs serial replay", recoveryExp},
		{"distributed", "Extension", "two-node CC/exec split over loopback TCP vs the in-process message plane", distributed},
	}
}

// Get returns the experiment with the given id, or false.
func Get(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes e under c. When jsonDir is non-empty, the experiment's
// series is additionally written as JSON objects (one per line) to
// jsonDir/BENCH_<id>.json, so the perf trajectory of a checkout can be
// tracked mechanically across changes — the printed tables stay the
// human-readable channel.
func Run(e Experiment, c Config, jsonDir string) error {
	if jsonDir == "" {
		e.Run(c)
		return nil
	}
	if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(jsonDir, "BENCH_"+e.ID+".json"))
	if err != nil {
		return err
	}
	rec := &jsonRecorder{id: e.ID, enc: json.NewEncoder(f)}
	c.json = rec
	e.Run(c)
	if rec.err != nil {
		f.Close()
		return rec.err
	}
	return f.Close()
}

// jsonRecorder appends one JSON object per series row. A nil recorder is
// a valid no-op sink, so emit sites need no guards.
type jsonRecorder struct {
	id  string
	enc *json.Encoder
	err error // first encode failure, surfaced by Run
}

func (r *jsonRecorder) emit(row map[string]interface{}) {
	if r == nil {
		return
	}
	row["experiment"] = r.id
	if err := r.enc.Encode(row); err != nil && r.err == nil {
		r.err = err
	}
}

// --- shared helpers -------------------------------------------------------

// newYCSBDB builds a fresh single-table database.
func newYCSBDB(c Config) (*storage.DB, int) {
	db := storage.NewDB()
	tbl := db.Create(storage.Layout{Name: "ycsb", NumRecords: c.Records, RecordSize: c.RecordSize})
	return db, tbl
}

// threadAxis filters the paper's core-count axis by MaxThreads, always
// keeping at least the smallest value.
func threadAxis(c Config, paper []int) []int {
	out := make([]int, 0, len(paper))
	for _, v := range paper {
		if v <= c.MaxThreads {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = append(out, paper[0])
	}
	return out
}

// point runs one engine on one workload for the configured duration and
// returns the result.
func point(c Config, eng engine.Engine, src workload.Source) metrics.Result {
	return eng.Run(src, c.Duration)
}

// table streams a formatted series table, mirroring every row to the
// JSON recorder when one is active.
type table struct {
	w      io.Writer
	cols   []string
	xlabel string
	rec    *jsonRecorder
}

func newTable(c Config, xlabel string, systems []string) *table {
	t := &table{w: c.Out, cols: systems, xlabel: xlabel, rec: c.json}
	fmt.Fprintf(t.w, "%-14s", xlabel)
	for _, s := range systems {
		fmt.Fprintf(t.w, " %16s", s)
	}
	fmt.Fprintln(t.w)
	return t
}

func (t *table) row(x interface{}, tps []float64) {
	fmt.Fprintf(t.w, "%-14v", x)
	for _, v := range tps {
		fmt.Fprintf(t.w, " %16.0f", v)
	}
	fmt.Fprintln(t.w)
	if t.rec != nil {
		series := make(map[string]interface{}, len(t.cols))
		for i, col := range t.cols {
			if i < len(tps) {
				series[col] = tps[i]
			}
		}
		t.rec.emit(map[string]interface{}{"x_label": t.xlabel, "x": x, "series": series})
	}
}

func header(c Config, e string) {
	fmt.Fprintf(c.Out, "\n# %s\n", e)
}

// ccSplit apportions t total threads between CC and execution the way the
// paper configures ORTHRUS (§4.4.3: 16 CC + 64 exec at 80 threads, i.e.
// one fifth CC), with a floor of one thread per role.
func ccSplit(t int) (cc, exec int) {
	cc = t / 5
	if cc < 1 {
		cc = 1
	}
	exec = t - cc
	if exec < 1 {
		exec = 1
	}
	return cc, exec
}
