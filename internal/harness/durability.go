package harness

import (
	"fmt"
	"time"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/engine/twopl"
	"repro/internal/orthrus"
	"repro/internal/partstore"
	"repro/internal/storage"
	"repro/internal/tpcc"
	"repro/internal/wal"
	"repro/internal/workload"
)

// durabilityPolicies is the sync-policy axis: the no-WAL baseline, async
// (background flush, instant acknowledgment), and group commit across
// group sizes at the default interval.
func durabilityPolicies() []wal.SyncPolicy {
	return []wal.SyncPolicy{
		wal.Off(),
		wal.Async(),
		wal.Group(8, 0),
		wal.Group(64, 0),
		wal.Group(256, 0),
	}
}

// durability: the commit-pipeline extension (not a paper figure). The
// paper acknowledges commits the instant execution finishes (§3 scopes
// durability out); this experiment measures what acknowledgment-after-
// flush costs across sync policies and group sizes, on the transfer
// workload (every engine) and the TPC-C mix (the §4.4 lineup). With the
// policy off the two-stage pipeline must be free — those rows are the
// regression guard for the refactor. The flush lines report the achieved
// group-commit amortization (records per device sync) and the log share
// of accounted time, the new fourth component of the Figure 10 split.
func durability(c Config) {
	header(c, "Durability: throughput and commit latency vs WAL sync policy")
	threads := 8
	if threads > c.MaxThreads {
		threads = c.MaxThreads
	}
	cc, exec := ccSplit(threads)

	// rebuild, when non-nil, returns a fresh database holding the
	// workload's initial state; the first engine's log is then replayed
	// onto it and the wall-clock recovery time reported per policy row —
	// the restart-cost column the recovery experiment explores in depth.
	run := func(workloadName string, names []string, rebuild func() *storage.DB, build func(sys string, log *wal.Log) (engine.Engine, workload.Source)) {
		fmt.Fprintf(c.Out, "\n%s workload (%d threads):\n", workloadName, threads)
		fmt.Fprintf(c.Out, "%-18s", "policy")
		for _, s := range names {
			fmt.Fprintf(c.Out, " %16s", s)
		}
		fmt.Fprintln(c.Out)
		for _, policy := range durabilityPolicies() {
			tps := make([]float64, 0, len(names))
			p99 := make([]int64, 0, len(names))
			var logShare float64
			var st wal.Stats
			recoveryMs := -1.0
			for _, sys := range names {
				var log *wal.Log
				var dev *wal.MemDevice
				if policy.Mode != wal.SyncOff {
					dev = wal.NewMemDevice()
					log = wal.NewLog(dev, policy)
				}
				eng, src := build(sys, log)
				res := point(c, eng, src)
				tps = append(tps, res.Throughput())
				p99 = append(p99, res.Totals.Latency.Percentile(99).Microseconds())
				first := sys == names[0]
				if first {
					_, _, _, logShare = res.Totals.Breakdown()
					st = log.Stats()
				}
				if err := log.Close(); err != nil {
					panic(err)
				}
				if first && dev != nil && rebuild != nil {
					t0 := time.Now()
					wal.Replay(dev.Contents(), rebuild())
					recoveryMs = float64(time.Since(t0).Microseconds()) / 1000
				}
			}
			fmt.Fprintf(c.Out, "%-18s", policy)
			for _, v := range tps {
				fmt.Fprintf(c.Out, " %16.0f", v)
			}
			fmt.Fprintln(c.Out)
			fmt.Fprintf(c.Out, "  %-16s p99_us:", "")
			for i, v := range p99 {
				fmt.Fprintf(c.Out, " %s=%d", names[i], v)
			}
			if policy.Mode != wal.SyncOff {
				fmt.Fprintf(c.Out, "   [%s: %d recs / %d syncs = %.1f recs/sync, log=%.1f%%]",
					names[0], st.Records, st.Syncs, float64(st.Records)/max(1, float64(st.Syncs)), logShare)
				if recoveryMs >= 0 {
					fmt.Fprintf(c.Out, " [recovery=%.1fms]", recoveryMs)
				}
			}
			fmt.Fprintln(c.Out)
			series := map[string]interface{}{}
			for i, n := range names {
				series[n] = tps[i]
				series[n+"_p99_us"] = p99[i]
			}
			if recoveryMs >= 0 {
				series["recovery_ms"] = recoveryMs
			}
			c.JSONRow(map[string]interface{}{
				"workload": workloadName, "x_label": "policy", "x": policy.String(),
				"series": series,
			})
		}
	}

	run("transfer", []string{"orthrus", "dlfree", "2pl-waitdie", "partstore"},
		func() *storage.DB { db, _ := newYCSBDB(c); return db },
		func(sys string, log *wal.Log) (engine.Engine, workload.Source) {
			db, tbl := newYCSBDB(c)
			src := &workload.Transfer{Table: tbl, NumRecords: c.Records}
			switch sys {
			case "orthrus":
				return orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec, Wal: log}), src
			case "dlfree":
				return dlfree.New(dlfree.Config{DB: db, Threads: threads, Wal: log}), src
			case "2pl-waitdie":
				return twopl.New(twopl.Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads, Wal: log}), src
			default:
				return partstore.New(partstore.Config{DB: db, Partitions: threads, Wal: log}), src
			}
		})

	// TPC-C initial state is load-generated, not cheaply rebuildable here,
	// so its rows carry no recovery column.
	run("tpcc", []string{"orthrus", "dlfree", "2pl-dreadlocks"},
		nil,
		func(sys string, log *wal.Log) (engine.Engine, workload.Source) {
			s := tpccSchema(c, 8)
			src := &tpcc.Mix{S: s}
			switch sys {
			case "orthrus":
				return orthrus.New(orthrus.Config{DB: s.DB, CCThreads: cc, ExecThreads: exec,
					Partition: s.PartitionByWarehouse(cc), Wal: log}), src
			case "dlfree":
				return dlfree.New(dlfree.Config{DB: s.DB, Threads: threads, Wal: log}), src
			default:
				return twopl.New(twopl.Config{DB: s.DB, Handler: deadlock.NewDreadlocks(threads), Threads: threads, Wal: log}), src
			}
		})
}
