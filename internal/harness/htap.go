package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/engine/twopl"
	"repro/internal/orthrus"
	"repro/internal/partstore"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// htapSource mixes a contended Transfer write stream with long analytics
// scans: scanPct percent of transactions are Analytics scans, the rest
// two-record transfers on a small hot set. It is the HTAP shape the
// snapshot-read extension targets — analytical readers that, on the
// locking path, either serialize entire partitions (partitioned store)
// or drag hundreds of record locks through the write mix.
type htapSource struct {
	writers *workload.Transfer
	scans   *workload.Analytics
	scanPct int
}

func (s *htapSource) Next(thread int, rng *rand.Rand) *txn.Txn {
	if rng.Intn(100) < s.scanPct {
		return s.scans.Next(thread, rng)
	}
	return s.writers.Next(thread, rng)
}

// htapExp: the MVCC snapshot-read extension's headline. For each engine,
// the same HTAP mix runs twice: once with locking scans on a plain table
// (the pre-MVCC baseline, including its freedom from version-install
// costs) and once with snapshot scans on a versioned table. Reported per
// (engine, mode): committed tps, p99 service latency, abort rate,
// scanned rows/s, and — snapshot mode only — the mean snapshot staleness
// in LSNs behind the commit frontier's tail. Config.ReadOnlyPct pins the
// analytics fraction (default 20%).
func htapExp(c Config) {
	header(c, "HTAP: snapshot vs locking analytics scans under a contended transfer mix")
	threads := 8
	if threads > c.MaxThreads {
		threads = c.MaxThreads
	}
	cc, exec := ccSplit(threads)

	scanPct := c.ReadOnlyPct
	if scanPct == 0 {
		scanPct = 20
	}
	scanLen := 256
	if uint64(scanLen) > c.Records {
		scanLen = int(c.Records)
	}
	hot := uint64(1024)
	if hot > c.Records {
		hot = c.Records
	}
	fmt.Fprintf(c.Out, "mix: %d%% analytics scans of %d rows, transfers on a %d-record hot set\n",
		scanPct, scanLen, hot)

	names := []string{"orthrus", "dlfree", "2pl-waitdie", "partstore"}
	for _, mode := range []string{"locking", "snapshot"} {
		snapshot := mode == "snapshot"
		fmt.Fprintf(c.Out, "%-14s", mode)
		for _, s := range names {
			fmt.Fprintf(c.Out, " %16s", s)
		}
		fmt.Fprintln(c.Out)

		tps := make([]float64, 0, len(names))
		p99 := make([]int64, 0, len(names))
		aborts := make([]float64, 0, len(names))
		rows := make([]float64, 0, len(names))
		stale := make([]float64, 0, len(names))
		for _, sys := range names {
			db := storage.NewDB()
			tbl := db.Create(storage.Layout{
				Name: "ycsb", NumRecords: c.Records, RecordSize: c.RecordSize,
				Versioned: snapshot,
			})
			src := &htapSource{
				writers: &workload.Transfer{Table: tbl, NumRecords: c.Records, HotRecords: hot},
				scans:   &workload.Analytics{Table: tbl, NumRecords: c.Records, ScanLen: scanLen, Snapshot: snapshot},
				scanPct: scanPct,
			}
			if err := src.scans.Validate(); err != nil {
				panic(err)
			}
			var eng engine.Engine
			switch sys {
			case "orthrus":
				eng = orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec})
			case "dlfree":
				eng = dlfree.New(dlfree.Config{DB: db, Threads: threads})
			case "2pl-waitdie":
				eng = twopl.New(twopl.Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads})
			default:
				eng = partstore.New(partstore.Config{DB: db, Partitions: threads})
			}
			res := point(c, eng, src)
			tps = append(tps, res.Throughput())
			p99 = append(p99, res.Totals.Latency.Percentile(99).Microseconds())
			aborts = append(aborts, res.Totals.AbortRate())
			rows = append(rows, float64(res.Totals.Scanned)/res.Duration.Seconds())
			stale = append(stale, res.Totals.SnapStaleness())
		}
		fmt.Fprintf(c.Out, "%-14s", "tps")
		for _, v := range tps {
			fmt.Fprintf(c.Out, " %16.0f", v)
		}
		fmt.Fprintln(c.Out)
		fmt.Fprintf(c.Out, "  p99_us:")
		for i, v := range p99 {
			fmt.Fprintf(c.Out, " %s=%d", names[i], v)
		}
		fmt.Fprintf(c.Out, "\n  abort%%:")
		for i, v := range aborts {
			fmt.Fprintf(c.Out, " %s=%.1f", names[i], v*100)
		}
		fmt.Fprintf(c.Out, "\n  rows/s:")
		for i, v := range rows {
			fmt.Fprintf(c.Out, " %s=%.0f", names[i], v)
		}
		if snapshot {
			fmt.Fprintf(c.Out, "\n  stale_lsn:")
			for i, v := range stale {
				fmt.Fprintf(c.Out, " %s=%.1f", names[i], v)
			}
		}
		fmt.Fprintln(c.Out)

		series := map[string]interface{}{}
		for i, n := range names {
			series[n] = tps[i]
			series[n+"_p99_us"] = p99[i]
			series[n+"_abort_rate"] = aborts[i]
			series[n+"_rows_per_s"] = rows[i]
			if snapshot {
				series[n+"_stale_lsn"] = stale[i]
			}
		}
		c.JSONRow(map[string]interface{}{
			"x_label": "mode", "x": mode,
			"scan_pct": scanPct, "scan_len": scanLen, "hot_records": hot,
			"series": series,
		})
	}
}
