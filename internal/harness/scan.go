package harness

import (
	"fmt"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/engine/dlfree"
	"repro/internal/engine/twopl"
	"repro/internal/orthrus"
	"repro/internal/partstore"
	"repro/internal/workload"
)

// scanExp: the range-scan extension (not a paper figure — the paper's
// workloads are all point accesses, and its prototype scopes phantom
// protection out entirely). The experiment sweeps a YCSB-E-style mix —
// scan fraction × maximum scan length — across all four engines and
// reports throughput, p99 service latency and scanned rows/s, so the
// cost of first-class phantom-safe scans is measurable per concurrency
// control design: 2PL pays lazy per-record + stripe locks, the planned
// engines pay up-front declaration of every scanned record, and
// Partitioned-store pays the partition footprint of the whole range
// (which under hash partitioning is every partition — the H-Store
// collapse, now visible on scans too). Config.ScanPct / Config.ScanMaxLen
// pin the sweep to a single point.
func scanExp(c Config) {
	header(c, "Range scans: throughput and p99 vs scan fraction x max scan length")
	threads := 8
	if threads > c.MaxThreads {
		threads = c.MaxThreads
	}
	cc, exec := ccSplit(threads)

	fracs := []int{5, 20}
	if c.ScanPct > 0 {
		fracs = []int{c.ScanPct}
	}
	lens := []int{16, 128}
	if c.ScanMaxLen > 0 {
		lens = []int{c.ScanMaxLen}
	}
	for i, l := range lens {
		if uint64(l) > c.Records {
			lens[i] = int(c.Records)
		}
	}

	names := []string{"orthrus", "dlfree", "2pl-waitdie", "partstore"}
	fmt.Fprintf(c.Out, "%-14s", "scan%xlen")
	for _, s := range names {
		fmt.Fprintf(c.Out, " %16s", s)
	}
	fmt.Fprintln(c.Out)

	for _, frac := range fracs {
		for _, maxLen := range lens {
			tps := make([]float64, 0, len(names))
			p99 := make([]int64, 0, len(names))
			rows := make([]float64, 0, len(names))
			for _, sys := range names {
				db, tbl := newYCSBDB(c)
				src := &workload.YCSB{
					Table: tbl, NumRecords: c.Records, OpsPerTxn: 10,
					ScanPct: frac, MaxScanLen: maxLen,
				}
				if err := src.Validate(); err != nil {
					panic(err)
				}
				var eng engine.Engine
				switch sys {
				case "orthrus":
					eng = orthrus.New(orthrus.Config{DB: db, CCThreads: cc, ExecThreads: exec})
				case "dlfree":
					eng = dlfree.New(dlfree.Config{DB: db, Threads: threads})
				case "2pl-waitdie":
					eng = twopl.New(twopl.Config{DB: db, Handler: deadlock.WaitDie{}, Threads: threads})
				default:
					eng = partstore.New(partstore.Config{DB: db, Partitions: threads})
				}
				res := point(c, eng, src)
				tps = append(tps, res.Throughput())
				p99 = append(p99, res.Totals.Latency.Percentile(99).Microseconds())
				rows = append(rows, float64(res.Totals.Scanned)/res.Duration.Seconds())
			}
			x := fmt.Sprintf("%d%%x%d", frac, maxLen)
			fmt.Fprintf(c.Out, "%-14s", x)
			for _, v := range tps {
				fmt.Fprintf(c.Out, " %16.0f", v)
			}
			fmt.Fprintln(c.Out)
			fmt.Fprintf(c.Out, "  %-12s p99_us:", "")
			for i, v := range p99 {
				fmt.Fprintf(c.Out, " %s=%d", names[i], v)
			}
			fmt.Fprintf(c.Out, "   rows/s:")
			for i, v := range rows {
				fmt.Fprintf(c.Out, " %s=%.0f", names[i], v)
			}
			fmt.Fprintln(c.Out)
			series := map[string]interface{}{}
			for i, n := range names {
				series[n] = tps[i]
				series[n+"_p99_us"] = p99[i]
				series[n+"_rows_per_s"] = rows[i]
			}
			c.JSONRow(map[string]interface{}{
				"x_label": "scan_pct_x_max_len", "x": x,
				"scan_pct": frac, "max_scan_len": maxLen,
				"series": series,
			})
		}
	}
}
