package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Duration:      15 * time.Millisecond,
		Records:       4096,
		RecordSize:    64,
		MaxThreads:    4,
		TPCCItems:     100,
		TPCCCustomers: 20,
		Out:           buf,
	}.Defaults()
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{"fig1", "fig4a", "fig4b", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11a", "fig11b", "fig12a", "fig12b",
		"openloop", "batching", "adaptive", "durability", "scan", "htap",
		"recovery", "distributed"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Figure == "" || reg[i].Description == "" {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := Get("fig8"); !ok {
		t.Fatal("Get(fig8) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
}

func TestDefaults(t *testing.T) {
	var buf bytes.Buffer
	c := Config{Out: &buf}.Defaults()
	if c.Duration <= 0 || c.Records == 0 || c.RecordSize == 0 || c.MaxThreads == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Defaults accepted nil Out")
		}
	}()
	Config{}.Defaults()
}

func TestDefaultsRejectsBadReadOnlyPct(t *testing.T) {
	var buf bytes.Buffer
	for _, pct := range []int{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Defaults accepted ReadOnlyPct=%d", pct)
				}
			}()
			Config{Out: &buf, ReadOnlyPct: pct}.Defaults()
		}()
	}
	// In-range values pass through untouched.
	if c := (Config{Out: &buf, ReadOnlyPct: 35}).Defaults(); c.ReadOnlyPct != 35 {
		t.Fatalf("ReadOnlyPct = %d", c.ReadOnlyPct)
	}
}

func TestThreadAxisCapping(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	got := threadAxis(c, []int{10, 20, 40, 60, 80})
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("threadAxis = %v (MaxThreads=4 keeps smallest only)", got)
	}
	c.MaxThreads = 40
	got = threadAxis(c, []int{10, 20, 40, 60, 80})
	if len(got) != 3 || got[2] != 40 {
		t.Fatalf("threadAxis = %v", got)
	}
}

func TestCCSplit(t *testing.T) {
	cases := []struct{ in, cc, exec int }{
		{80, 16, 64},
		{10, 2, 8},
		{4, 1, 3},
		{1, 1, 1},
	}
	for _, c := range cases {
		cc, exec := ccSplit(c.in)
		if cc != c.cc || exec != c.exec {
			t.Errorf("ccSplit(%d) = (%d,%d), want (%d,%d)", c.in, cc, exec, c.cc, c.exec)
		}
	}
}

// Run with a JSON directory must leave a parseable BENCH_<id>.json whose
// rows mirror the printed series.
func TestRunWritesJSONRows(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	e, ok := Get("fig1")
	if !ok {
		t.Fatal("fig1 missing")
	}
	if err := Run(e, c, dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_fig1.json"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON rows")
	}
	for _, line := range lines {
		var row struct {
			Experiment string                 `json:"experiment"`
			XLabel     string                 `json:"x_label"`
			Series     map[string]interface{} `json:"series"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad JSON row %q: %v", line, err)
		}
		if row.Experiment != "fig1" || row.XLabel != "threads" || len(row.Series) == 0 {
			t.Fatalf("row content wrong: %q", line)
		}
	}
	// JSON off: plain Run leaves no recorder and writes nothing.
	if err := Run(e, tinyConfig(&buf), ""); err != nil {
		t.Fatal(err)
	}
}

// Smoke: every registered experiment runs end to end at tiny scale and
// produces a non-empty, numeric table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every engine; skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			c := tinyConfig(&buf)
			e.Run(c)
			out := buf.String()
			if !strings.Contains(out, "#") {
				t.Fatalf("no header in output:\n%s", out)
			}
			lines := strings.Split(strings.TrimSpace(out), "\n")
			if len(lines) < 3 {
				t.Fatalf("too little output:\n%s", out)
			}
		})
	}
}
