// Package analysis is the dependency-free core of orthrus-vet, the
// static-analysis suite that mechanically enforces this repository's
// concurrency invariants (lock ordering, hot-path purity, atomic-field
// discipline, config validation, panic attribution).
//
// It deliberately mirrors the golang.org/x/tools/go/analysis surface —
// Analyzer, Pass, Diagnostic, an analysistest-style golden harness with
// `// want` comments — but is reimplemented on the standard library
// alone: the module carries no external dependencies, so the x/tools
// framework is not available. Packages are loaded through
// `go list -export -deps -json` and type-checked with go/types, using
// gc export data for imports (the unitchecker model); see load.go.
//
// Three comment directives drive the suite:
//
//	//orthrus:hotpath
//	    Marks a function as a hot-path root: it and everything it
//	    statically calls must stay free of I/O, printing, sleeps and
//	    blocking channel operations (the hotpath analyzer).
//
//	//orthrus:coldpath <reason>
//	    Marks a function as an intentional hot-path traversal boundary
//	    (an idle backoff, a rare control-plane handler). The reason is
//	    mandatory.
//
//	//orthrus:allow(<analyzer>) <reason>
//	    Suppresses that analyzer's diagnostics on the same line, the
//	    line below, or (in a function's doc comment) the whole function.
//	    The reason is mandatory: a suppression without one is itself
//	    reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Exactly one of Run (invoked
// once per package) and RunProgram (invoked once for the whole load
// unit — for cross-package analyses such as call-graph walks) is set.
type Analyzer struct {
	Name string
	Doc  string

	Run        func(*Pass) error
	RunProgram func(*Pass) error
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one type-checked source package.
type Package struct {
	Path  string
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Program is a load unit: every package the driver was pointed at,
// type-checked from source against a shared file set, plus the indexes
// the analyzers share.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// Decls maps every function and method object defined in the load
	// unit to its declaration (and owning package) — the call-graph
	// index used by program-level analyzers.
	Decls   map[*types.Func]*ast.FuncDecl
	DeclPkg map[*types.Func]*Package

	allows     map[string]map[int][]*allow // file → line → suppressions
	funcAllows []*funcAllow
	directives map[*ast.FuncDecl]map[string]string // decl → directive → arg
}

// allow is one //orthrus:allow(<analyzer>) suppression comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
}

// funcAllow is an allow in a function's doc comment: it covers the
// whole declaration span.
type funcAllow struct {
	file       string
	start, end int // line span
	*allow
}

// Pass carries one analyzer invocation. For per-package analyzers Pkg
// is the package under inspection; for program-level analyzers Pkg is
// nil and the analyzer walks Prog.Packages itself.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program's shared file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Reportf records a diagnostic at pos unless an //orthrus:allow
// suppression covers it. A suppression with an empty reason is itself
// converted into a diagnostic: silent opt-outs are not a thing.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Prog.Fset.Position(pos)
	if a := p.Prog.suppression(p.Analyzer.Name, position); a != nil {
		if a.reason == "" {
			*p.diags = append(*p.diags, Diagnostic{
				Pos:      position,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("orthrus:allow(%s) requires a reason", p.Analyzer.Name),
			})
		}
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppression returns the allow covering (analyzer, position), if any:
// same line, the line above the flagged one, or an enclosing function
// whose doc comment carries the allow.
func (prog *Program) suppression(analyzer string, pos token.Position) *allow {
	if lines, ok := prog.allows[pos.Filename]; ok {
		for _, l := range [2]int{pos.Line, pos.Line - 1} {
			for _, a := range lines[l] {
				if a.analyzer == analyzer {
					return a
				}
			}
		}
	}
	for _, fa := range prog.funcAllows {
		if fa.analyzer == analyzer && fa.file == pos.Filename &&
			fa.start <= pos.Line && pos.Line <= fa.end {
			return fa.allow
		}
	}
	return nil
}

// Directive returns the argument of an //orthrus:<name> directive in
// decl's doc comment, and whether the directive is present.
func (prog *Program) Directive(decl *ast.FuncDecl, name string) (arg string, ok bool) {
	m, found := prog.directives[decl]
	if !found {
		return "", false
	}
	arg, ok = m[name]
	return arg, ok
}

var (
	allowRE     = regexp.MustCompile(`^//\s*orthrus:allow\((\w+)\)\s*(.*)$`)
	directiveRE = regexp.MustCompile(`^//\s*orthrus:(\w+)\s*(.*)$`)
)

// index builds the suppression, directive and declaration indexes after
// all packages are loaded.
func (prog *Program) index() {
	prog.allows = make(map[string]map[int][]*allow)
	prog.directives = make(map[*ast.FuncDecl]map[string]string)
	prog.Decls = make(map[*types.Func]*ast.FuncDecl)
	prog.DeclPkg = make(map[*types.Func]*Package)

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					byLine := prog.allows[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*allow)
						prog.allows[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], &allow{
						analyzer: m[1],
						reason:   strings.TrimSpace(m[2]),
						pos:      pos,
					})
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.Decls[obj] = fd
					prog.DeclPkg[obj] = pkg
				}
				if fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if m := allowRE.FindStringSubmatch(c.Text); m != nil {
						pos := prog.Fset.Position(c.Pos())
						prog.funcAllows = append(prog.funcAllows, &funcAllow{
							file:  pos.Filename,
							start: pos.Line,
							end:   prog.Fset.Position(fd.End()).Line,
							allow: &allow{
								analyzer: m[1],
								reason:   strings.TrimSpace(m[2]),
								pos:      pos,
							},
						})
						continue
					}
					if m := directiveRE.FindStringSubmatch(c.Text); m != nil && m[1] != "allow" {
						dm := prog.directives[fd]
						if dm == nil {
							dm = make(map[string]string)
							prog.directives[fd] = dm
						}
						dm[m[1]] = strings.TrimSpace(m[2])
					}
				}
			}
		}
	}
}

// Run executes the analyzers over the program and returns the surviving
// diagnostics sorted by position. Duplicate diagnostics (same position,
// analyzer and message — possible when program-level traversals reach
// one site from several roots) collapse.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			pass := &Pass{Analyzer: a, Prog: prog, diags: &diags}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range prog.Packages {
				pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("analysis: %s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		default:
			return nil, fmt.Errorf("analysis: %s has neither Run nor RunProgram", a.Name)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}

// Callee resolves the static callee of call within pkg: a *types.Func
// for direct function and method calls, nil for function values,
// interface dispatch, type conversions and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method call: only concrete (non-interface) receivers have
			// a statically known body.
			if f, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
				return f
			}
			return nil
		}
		id = fun.Sel // package-qualified function
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}
