package configvalidate_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/configvalidate"
)

func TestConfigValidate(t *testing.T) {
	atest.Run(t, "testdata", configvalidate.Analyzer, "a", "clean")
}
