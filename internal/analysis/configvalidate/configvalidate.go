// Package configvalidate enforces the ROADMAP's "config validation that
// panics loudly" mandate mechanically: every exported struct type whose
// name ends in Config must have a Validate method, every exported
// numeric field (knob) of such a struct must be referenced inside that
// method, and every exported constructor (New*) taking such a config
// must call its Validate. A new knob therefore cannot dodge validation:
// adding the field without touching Validate is a build failure, not a
// review nit.
//
// "Referenced" is literal: the field must appear as a selector on the
// receiver in Validate's body. A knob for which every value is legal
// still gets a line — `_ = c.MaxRetries` with a comment — so the method
// records that the knob was considered, which is the invariant. If the
// receiver escapes Validate (passed whole to a helper), the analyzer
// assumes the helper checks everything and stays quiet.
package configvalidate

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the configvalidate pass.
var Analyzer = &analysis.Analyzer{
	Name: "configvalidate",
	Doc:  "exported *Config structs need a Validate method referencing every numeric knob, called by constructors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	scope := pkg.Types.Scope()
	configs := make(map[*types.Named]bool)
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !obj.Exported() || !strings.HasSuffix(name, "Config") {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		configs[named] = true
		checkConfig(pass, obj, named, st)
	}
	checkConstructors(pass, configs)
	return nil
}

// checkConfig verifies the Validate method exists and references every
// exported numeric field.
func checkConfig(pass *analysis.Pass, obj *types.TypeName, named *types.Named, st *types.Struct) {
	validate := findMethod(named, "Validate")
	if validate == nil {
		pass.Reportf(obj.Pos(),
			"exported config struct %s has no Validate method; every config must validate its knobs (and panic loudly on invalid ones)", obj.Name())
		return
	}
	decl, ok := pass.Prog.Decls[validate]
	if !ok || decl.Body == nil {
		// Defined outside the load unit — nothing more to check.
		return
	}
	recv := receiverObj(pass, decl)
	referenced, escapes := receiverFieldRefs(pass, decl, recv)
	if escapes {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || !isNumeric(f.Type()) {
			continue
		}
		if !referenced[f.Name()] {
			pass.Reportf(f.Pos(),
				"%s.%s is a numeric knob not referenced in %s.Validate; every knob must be validated (or explicitly waved through with `_ = c.%s`)",
				obj.Name(), f.Name(), obj.Name(), f.Name())
		}
	}
}

// checkConstructors requires every exported New* function with a
// config-typed parameter to call Validate on it (directly, or by
// passing the config onward — escape is trusted).
func checkConstructors(pass *analysis.Pass, configs map[*types.Named]bool) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "New") || !ast.IsExported(fd.Name.Name) {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				param := sig.Params().At(i)
				named := configNamed(param.Type())
				if named == nil || !configs[named] {
					continue
				}
				if !callsValidate(pass, fd, param) {
					pass.Reportf(fd.Pos(),
						"constructor %s does not call %s.Validate on its %s parameter",
						fd.Name.Name, named.Obj().Name(), param.Name())
				}
			}
		}
	}
}

// configNamed unwraps T or *T to a named struct type.
func configNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// callsValidate reports whether fd calls param.Validate(...) or lets
// param escape whole into another call (trusted to validate).
func callsValidate(pass *analysis.Pass, fd *ast.FuncDecl, param *types.Var) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Validate" {
			if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(base) == param {
				found = true
			}
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == param {
				found = true // escapes whole; the callee owns validation
			}
		}
		return true
	})
	return found
}

// findMethod returns the Validate *types.Func on T or *T, or nil.
func findMethod(named *types.Named, name string) *types.Func {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == name {
			return f
		}
	}
	return nil
}

// receiverObj returns the receiver variable of a method declaration.
func receiverObj(pass *analysis.Pass, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.Prog.DeclPkg[pass.Pkg.Info.Defs[decl.Name].(*types.Func)].
		Info.Defs[decl.Recv.List[0].Names[0]]
}

// receiverFieldRefs collects the field names selected from the receiver
// anywhere in the method body, and whether the receiver escapes as a
// whole value (in which case all fields count as referenced).
func receiverFieldRefs(pass *analysis.Pass, decl *ast.FuncDecl, recv types.Object) (map[string]bool, bool) {
	refs := make(map[string]bool)
	if recv == nil {
		return refs, true // unnamed receiver: nothing can be referenced
	}
	declPkg := pass.Prog.DeclPkg[pass.Pkg.Info.Defs[decl.Name].(*types.Func)]
	info := declPkg.Info
	escapes := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.ObjectOf(id) != recv {
			return true
		}
		// Walk up one level conceptually: the parent must be a selector.
		// ast.Inspect gives no parent, so detect via position: mark and
		// let the selector pass below claim it.
		escapes = true
		return true
	})
	// Re-walk properly: clear escape for receiver idents that are
	// selector bases.
	selectorBases := make(map[*ast.Ident]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(base) == recv {
			refs[sel.Sel.Name] = true
			selectorBases[base] = true
		}
		return true
	})
	if escapes {
		// The receiver escaped only if some receiver ident is NOT a
		// selector base.
		escapes = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if ok && info.ObjectOf(id) == recv && !selectorBases[id] {
				escapes = true
			}
			return true
		})
	}
	return refs, escapes
}

// isNumeric reports whether t's core type is an integer or float —
// the "knob" types the analyzer insists are validated.
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsFloat) != 0
}
