// Package clean holds code the configvalidate analyzer must stay quiet
// on.
package clean

// Config validates every numeric knob — one with a real check, one
// explicitly waved through.
type Config struct {
	Threads int
	Retries int
	Name    string // non-numeric: not a knob
}

func (c Config) Validate() {
	if c.Threads <= 0 {
		panic("clean: Threads must be positive")
	}
	_ = c.Retries // every value is legal: <=0 means retry forever
}

// New calls Validate, directly.
func New(cfg Config) int {
	cfg.Validate()
	return cfg.Threads
}

// NewForwarding passes the whole config onward; the callee owns
// validation.
func NewForwarding(cfg Config) int {
	return New(cfg)
}

// EscapeConfig's Validate hands the receiver to a helper, which is
// trusted to check everything.
type EscapeConfig struct {
	Depth int
}

func (c EscapeConfig) Validate() {
	checkAll(c)
}

func checkAll(c EscapeConfig) {
	if c.Depth < 0 {
		panic("clean: Depth must not be negative")
	}
}

// unexportedConfig is not part of the package's surface.
type unexportedConfig struct {
	Knob int
}

// Settings does not follow the *Config naming convention.
type Settings struct {
	Knob int
}
