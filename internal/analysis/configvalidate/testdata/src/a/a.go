// Package a exercises the configvalidate analyzer.
package a

// BadConfig has no Validate at all.
type BadConfig struct { // want `exported config struct BadConfig has no Validate method`
	Threads int
}

// NewBad builds from a config without validating it.
func NewBad(cfg BadConfig) int { // want `constructor NewBad does not call BadConfig.Validate`
	return cfg.Threads
}

// PartialConfig validates one knob and forgets the other.
type PartialConfig struct {
	Checked int
	Missed  int // want `PartialConfig.Missed is a numeric knob not referenced in PartialConfig.Validate`
}

func (c PartialConfig) Validate() {
	if c.Checked < 0 {
		panic("a: Checked must not be negative")
	}
}

// SkipConfig waves a knob through under a justified allow.
type SkipConfig struct {
	//orthrus:allow(configvalidate) testdata: every Weight value is legal and the struct predates Validate
	Weight float64
}

func (c SkipConfig) Validate() {}
