// Package noalloc enforces the zero-allocation discipline on the
// latency-critical paths: functions annotated //orthrus:hotpath (the same
// roots the hotpath analyzer walks — SPSC ring operations, CC drain
// loops, execution-thread commit paths, WAL appends) and everything they
// statically call may not perform steady-state heap allocation.
//
// The analyzer walks the static call graph from each annotated root and
// flags, within every reached body:
//
//   - composite literals that escape — &T{...} always, and value
//     literals of slice or map type (each evaluation allocates backing
//     store);
//   - the make and new builtins;
//   - append calls that do not feed back into the slice they extend
//     ("self-append"): x = append(x, ...) and x = append(x[:0], ...)
//     amortize to zero once scratch capacity reaches its high-water
//     mark, but y = append(x, ...) (or a bare append passed as an
//     argument) manufactures a fresh slice every time;
//   - function literals that capture variables from the enclosing
//     function: a capturing closure allocates its environment at every
//     evaluation, the single-allocation pattern this PR removed from the
//     transaction generators. Capture-free literals compile to static
//     functions and pass.
//
// Amortized growth that is deliberate — a per-thread scratch buffer's
// first-iteration sizing, an arena refill — is suppressed site-by-site
// with //orthrus:allow(noalloc) <reason>; //orthrus:coldpath <reason>
// on a function marks a traversal boundary exactly as for hotpath.
// Dynamic calls (function values, interface dispatch) are not traversed.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:       "noalloc",
	Doc:        "//orthrus:hotpath functions and their static callees must not heap-allocate in steady state",
	RunProgram: run,
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass, reported: make(map[token.Pos]bool)}
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, ok := pass.Prog.Directive(fd, "hotpath"); !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				w.visited = map[*types.Func]bool{obj: true}
				w.root = obj
				w.fn(pkg, fd)
			}
		}
	}
	return nil
}

type walker struct {
	pass     *analysis.Pass
	root     *types.Func
	visited  map[*types.Func]bool
	reported map[token.Pos]bool
}

// via renders the call chain from the root to the current function.
func via(chain []*types.Func) string {
	if len(chain) == 0 {
		return ""
	}
	names := make([]string, len(chain))
	for i, f := range chain {
		names[i] = f.Name()
	}
	return " via " + strings.Join(names, " → ")
}

// fn checks one reached function body.
func (w *walker) fn(pkg *analysis.Package, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	w.body(pkg, fd, fd.Body, nil)
}

// body walks stmts of fd (a FuncDecl reached from the root), flagging
// allocation sites and descending into static callees.
func (w *walker) body(pkg *analysis.Package, fd *ast.FuncDecl, n ast.Node, chain []*types.Func) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.GoStmt:
			// The spawned body runs elsewhere (and spawning on a hot path
			// is a hotpath-analyzer concern, not an allocation one).
			return false
		case *ast.FuncLit:
			w.funcLit(pkg, fd, c, chain)
			return false
		case *ast.UnaryExpr:
			if c.Op == token.AND {
				if _, isLit := c.X.(*ast.CompositeLit); isLit {
					w.flag(c.Pos(), "composite literal escapes to the heap (&T{...})", chain)
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[c]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					w.flag(c.Pos(), "slice/map literal allocates backing store", chain)
				}
			}
		case *ast.AssignStmt:
			// Self-appends are the sanctioned scratch-reuse shape; check
			// them here and skip the CallExpr case's bare-append flag.
			if len(c.Lhs) == 1 && len(c.Rhs) == 1 {
				if call, ok := c.Rhs[0].(*ast.CallExpr); ok && isBuiltin(pkg, call, "append") {
					w.appendCall(pkg, c.Lhs[0], call, chain)
					// Still descend into the append arguments (they may
					// contain calls), but not re-enter the call check.
					for _, arg := range call.Args {
						w.body(pkg, fd, arg, chain)
					}
					return false
				}
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(pkg, c, "make"):
				w.flag(c.Pos(), "make allocates", chain)
			case isBuiltin(pkg, c, "new"):
				w.flag(c.Pos(), "new allocates", chain)
			case isBuiltin(pkg, c, "append"):
				w.flag(c.Pos(), "append result is not assigned back to its source slice (fresh allocation per call)", chain)
			default:
				w.call(pkg, c, chain)
			}
		}
		return true
	})
}

// appendCall checks lhs = append(src, ...): src, stripped of slicing and
// parentheses, must spell the same expression as lhs — the self-append
// shape whose growth amortizes to zero.
func (w *walker) appendCall(pkg *analysis.Package, lhs ast.Expr, call *ast.CallExpr, chain []*types.Func) {
	if len(call.Args) == 0 {
		return
	}
	src := stripSlices(call.Args[0])
	if types.ExprString(stripSlices(lhs)) == types.ExprString(src) {
		return
	}
	w.flag(call.Pos(), "append result is assigned to a different slice than its source (fresh allocation per call)", chain)
}

// stripSlices removes slicing, parenthesization and dereference wrappers:
// (*buf)[:0] and buf[n:] both reduce to buf.
func stripSlices(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// funcLit flags literals that capture enclosing-function variables. enc
// is the FuncDecl lexically containing the literal.
func (w *walker) funcLit(pkg *analysis.Package, enc *ast.FuncDecl, lit *ast.FuncLit, chain []*types.Func) {
	captured := ""
	ast.Inspect(lit.Body, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// the literal itself (package-level vars are static; the literal's
		// own params/locals are its frame).
		if v.Pos() > enc.Pos() && v.Pos() < enc.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = v.Name()
		}
		return captured == ""
	})
	if captured != "" {
		w.flag(lit.Pos(), "closure captures "+captured+" (allocates its environment per evaluation)", chain)
		return
	}
	// Capture-free: static function value; still check its body.
	w.body(pkg, enc, lit.Body, chain)
}

// call descends into a statically resolved callee defined in the load
// unit, honoring coldpath boundaries.
func (w *walker) call(pkg *analysis.Package, call *ast.CallExpr, chain []*types.Func) {
	fn := analysis.Callee(pkg.Info, call)
	if fn == nil {
		return
	}
	decl, ok := w.pass.Prog.Decls[fn]
	if !ok || w.visited[fn] {
		return
	}
	if _, cold := w.pass.Prog.Directive(decl, "coldpath"); cold {
		return
	}
	w.visited[fn] = true
	w.body(w.pass.Prog.DeclPkg[fn], decl, decl.Body, append(chain, fn))
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pkg *analysis.Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pkg.Info.Uses[id].(*types.Builtin)
	return isB
}

// flag reports one allocation site, once per site per root.
func (w *walker) flag(pos token.Pos, what string, chain []*types.Func) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, "%s on the hot path of //orthrus:hotpath %s%s", what, w.root.FullName(), via(chain))
}
