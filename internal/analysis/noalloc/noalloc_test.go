package noalloc_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	atest.Run(t, "testdata", noalloc.Analyzer, "a", "clean")
}
