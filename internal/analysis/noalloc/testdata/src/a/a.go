// Package a exercises the noalloc analyzer.
package a

type item struct{ k, v uint64 }

type ring struct {
	buf  []item
	reqs [][]item
}

// loop is a hot root: everything it statically calls is checked for
// steady-state allocation.
//
//orthrus:hotpath
func loop(r *ring, n int) {
	p := &item{k: 1}             // want `composite literal escapes to the heap`
	s := []uint64{1, 2, 3}       // want `slice/map literal allocates backing store`
	m := map[uint64]uint64{1: 2} // want `slice/map literal allocates backing store`
	b := make([]byte, 16)        // want `make allocates`
	q := new(item)               // want `new allocates`
	_, _, _, _, _ = p, s, m, b, q

	v := item{k: 2} // value literal of struct type: stack, fine
	_ = v

	helper(r)
}

// helper is reached transitively from loop.
func helper(r *ring) {
	r.buf = append(r.buf, item{})           // self-append: amortized, fine
	r.buf = append(r.buf[:0], r.buf[1:]...) // self-append through reslicing: fine
	r.reqs[0] = append(r.reqs[0], item{})   // self-append on an indexed slot: fine
	other := append(r.buf, item{})          // want `assigned to a different slice`
	_ = other
	sink(append(r.buf, item{})) // want `append result is not assigned back`
}

func sink(s []item) { _ = s }

// closures: capturing allocates, capture-free does not.
//
//orthrus:hotpath
func closures(r *ring, k uint64) {
	f := func() uint64 { return k } // want `closure captures k`
	_ = f
	g := func(x uint64) uint64 { return x + 1 } // capture-free: static, fine
	_ = g(1)
}

// coldSetup is a justified traversal boundary: the walk stops.
//
//orthrus:coldpath testdata: one-time setup may allocate
func coldSetup() []item {
	return make([]item, 64)
}

//orthrus:hotpath
func loopWithBoundary(r *ring) {
	r.buf = coldSetup()
}

//orthrus:hotpath
func allowedSite(r *ring) {
	//orthrus:allow(noalloc) testdata: first-iteration scratch sizing, reused afterwards
	r.buf = make([]item, 0, 64)
}

// notHot is unannotated and unreachable from a root: anything goes.
func notHot() []item {
	return append([]item{}, item{})
}
