// Package clean holds hot-path code the noalloc analyzer must accept
// unchanged: scratch reuse via self-append, within-capacity reslicing,
// struct value literals, and capture-free function values.
package clean

type msg struct{ pid, key uint64 }

type thread struct {
	scratch []msg
	byCC    [][]msg
	hops    []int
}

//orthrus:hotpath
func drain(t *thread, in []msg) {
	t.scratch = t.scratch[:0]
	for _, m := range in {
		t.scratch = append(t.scratch, m)
	}
	// Re-extending an outer slice within capacity, then reusing the inner
	// slice's backing array — the plan-buffer shape.
	n := len(t.hops)
	t.hops = append(t.hops, 0)
	if n < cap(t.byCC) {
		t.byCC = t.byCC[:n+1]
	}
	buf := t.byCC[n][:0]
	buf = append(buf, msg{pid: 1})
	t.byCC[n] = buf

	v := msg{key: 2} // struct value: stack
	t.scratch = append(t.scratch, v)

	cmp := func(a, b msg) bool { return a.key < b.key } // capture-free
	_ = cmp(v, v)
}
