// Package a exercises the panicmsg analyzer.
package a

import (
	"errors"
	"fmt"
)

func bare() {
	panic("boom") // want `panic message "boom" must start with "a: "`
}

func formatted(n int) {
	panic(fmt.Sprintf("bad count %d", n)) // want `must start with "a: "`
}

func concatenated(detail string) {
	panic("broken: " + detail) // want `must start with "a: "`
}

func prefixed() {
	panic("a: invariant violated")
}

func prefixedFormat(n int) {
	panic(fmt.Sprintf("a: bad count %d", n))
}

func nonLiteral() {
	panic(errors.New("not the analyzer's business"))
}

func rethrow(v interface{}) {
	panic(v)
}

func allowed() {
	//orthrus:allow(panicmsg) testdata: message spelled by an external contract
	panic("EXACT-WIRE-FORMAT")
}
