// Package clean holds code the panicmsg analyzer must stay quiet on.
package clean

import "fmt"

func checked(n int) {
	if n < 0 {
		panic(fmt.Sprintf("clean: n must not be negative (got %d)", n))
	}
}

func invariant() {
	panic("clean: unreachable state")
}

func concatenated(detail string) {
	panic("clean: " + detail)
}
