package panicmsg_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/panicmsg"
)

func TestPanicMsg(t *testing.T) {
	atest.Run(t, "testdata", panicmsg.Analyzer, "a", "clean")
}
