// Package panicmsg enforces greppable panics: this codebase treats
// panics as loud configuration/invariant failures (config validation,
// WAL corruption outside recovery, lock-table misuse), so every panic
// whose argument starts with a string literal must prefix that literal
// with the package name and a colon — `panic("wal: torn record past
// committed prefix")` — making the failing subsystem identifiable from
// the first line of the crash.
//
// Checked literal positions: a plain string literal argument, the
// leftmost operand of a `+` concatenation chain, and the format
// argument of fmt.Sprintf/fmt.Errorf. Panics whose argument is a
// non-literal value (an error variable, a recovered value being
// re-raised) are not the analyzer's business and are skipped.
package panicmsg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the panicmsg pass.
var Analyzer = &analysis.Analyzer{
	Name: "panicmsg",
	Doc:  "panic messages that start with a string literal must carry a `package: ` prefix",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkgName := pass.Pkg.Types.Name()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj := pass.Pkg.Info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true // shadowed: a user-defined panic, not the builtin
				}
			}
			lit := headLiteral(call.Args[0])
			if lit == nil {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !strings.HasPrefix(s, pkgName+": ") {
				pass.Reportf(lit.Pos(),
					"panic message %q must start with %q so crashes identify the failing subsystem", s, pkgName+": ")
			}
			return true
		})
	}
	return nil
}

// headLiteral returns the string literal that will head the panic
// message, or nil when the argument does not start with one: a plain
// literal, the leftmost operand of a + chain, or the format argument of
// fmt.Sprintf / fmt.Errorf.
func headLiteral(e ast.Expr) *ast.BasicLit {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			return e
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return headLiteral(e.X)
		}
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok || len(e.Args) == 0 {
			return nil
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || base.Name != "fmt" {
			return nil
		}
		if sel.Sel.Name == "Sprintf" || sel.Sel.Name == "Errorf" || sel.Sel.Name == "Sprint" {
			return headLiteral(e.Args[0])
		}
	}
	return nil
}
