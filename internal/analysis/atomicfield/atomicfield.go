// Package atomicfield enforces all-or-nothing atomic access: a struct
// field that is passed by address to a sync/atomic function anywhere in
// the program must be accessed through sync/atomic everywhere. A plain
// read racing an atomic write is a data race the race detector only
// catches when the schedule cooperates; this analyzer catches it at
// build time, program-wide.
//
// The preferred fix is the typed atomics (atomic.Uint64 and friends),
// which make mixed access unrepresentable — most of this repository
// already uses them, and they need no analyzer. This pass covers the
// remaining pattern: a plain-typed field used with atomic.LoadUint64/
// StoreUint64/Add/Swap/CompareAndSwap via &s.field.
//
// Flagged accesses that are provably single-threaded (constructor
// initialization before publication) carry //orthrus:allow(atomicfield)
// with that justification. Taking a field's address outside an atomic
// call is also flagged: once the address escapes, atomicity can no
// longer be audited locally.
package atomicfield

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name:       "atomicfield",
	Doc:        "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	RunProgram: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect fields that appear as &x.f arguments to
	// sync/atomic calls, and the selector nodes of those sanctioned
	// uses.
	atomicFields := make(map[*types.Var]string) // field → example atomic op
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if field := fieldOf(pkg.Info, sel); field != nil {
						atomicFields[field] = fn.Name()
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields is a violation.
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				field := fieldOf(pkg.Info, sel)
				if field == nil {
					return true
				}
				if op, ok := atomicFields[field]; ok {
					pass.Reportf(sel.Pos(),
						"plain access to field %s.%s, which is accessed with atomic.%s elsewhere; mixed plain/atomic access is a data race",
						fieldOwner(field), field.Name(), op)
				}
				return true
			})
		}
	}
	return nil
}

// fieldOf resolves sel to a struct-field object, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldOwner names the struct a field belongs to, best-effort, for
// diagnostics.
func fieldOwner(f *types.Var) string {
	if f.Pkg() != nil {
		return f.Pkg().Name()
	}
	return "?"
}
