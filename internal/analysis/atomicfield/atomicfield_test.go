package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	atest.Run(t, "testdata", atomicfield.Analyzer, "a", "clean")
}
