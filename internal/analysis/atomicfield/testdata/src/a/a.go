// Package a exercises the atomicfield analyzer.
package a

import "sync/atomic"

type counter struct {
	hits uint64
	cold int
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counter) race() uint64 {
	return c.hits // want `plain access to field a.hits, which is accessed with atomic.\w+ elsewhere`
}

func (c *counter) assign() {
	c.hits = 0 // want `plain access to field a.hits`
}

// cold is never touched atomically: plain access is fine.
func (c *counter) touchCold() int {
	c.cold++
	return c.cold
}

// Constructor-time plain access before publication, justified.
func newCounter() *counter {
	c := &counter{}
	//orthrus:allow(atomicfield) testdata: pre-publication initialization, no concurrent readers yet
	c.hits = 0
	return c
}
