// Package clean holds code the atomicfield analyzer must stay quiet on:
// the typed atomics make mixed access unrepresentable, and fields never
// touched atomically are unconstrained.
package clean

import "sync/atomic"

type stats struct {
	ops   atomic.Uint64
	plain uint64
}

func (s *stats) bump() {
	s.ops.Add(1)
	s.plain++
}

func (s *stats) read() (uint64, uint64) {
	return s.ops.Load(), s.plain
}
