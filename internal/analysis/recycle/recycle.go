// Package recycle enforces the pooled-object ownership convention: every
// call to (*sync.Pool).Put must appear inside a function whose doc
// comment carries
//
//	//orthrus:recycle <reason>
//
// stating why the object is unreachable by every other observer at that
// point. Returning an object to a pool is the moment use-after-free bugs
// are born — the next Get hands the same memory to an unrelated caller —
// so the convention forces each Put site to document its ownership
// argument where reviewers (and the next editor of the function) will
// see it. A bare //orthrus:recycle with no reason is itself a
// diagnostic, exactly like a bare coldpath or allow.
package recycle

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the recycle pass.
var Analyzer = &analysis.Analyzer{
	Name:       "recycle",
	Doc:        "(*sync.Pool).Put must be called from a function documented with //orthrus:recycle <reason>",
	RunProgram: run,
}

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				reason, marked := pass.Prog.Directive(fd, "recycle")
				if marked && reason == "" {
					pass.Reportf(fd.Pos(), "//orthrus:recycle requires a reason (the ownership argument for recycling here)")
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := analysis.Callee(pkg.Info, call)
					if fn == nil || fn.FullName() != "(*sync.Pool).Put" {
						return true
					}
					if !marked {
						pass.Reportf(call.Pos(),
							"sync.Pool Put outside an //orthrus:recycle function: document the ownership transfer on %s's doc comment", fd.Name.Name)
					}
					return true
				})
			}
		}
	}
	return nil
}
