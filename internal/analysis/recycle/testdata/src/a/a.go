// Package a exercises the recycle analyzer.
package a

import "sync"

type obj struct{ n int }

var pool = sync.Pool{New: func() interface{} { return new(obj) }}

// putUndocumented recycles without the directive.
func putUndocumented(o *obj) {
	o.n = 0
	pool.Put(o) // want `sync.Pool Put outside an //orthrus:recycle function`
}

// putDocumented carries the convention.
//
//orthrus:recycle testdata: caller is the last reference holder
func putDocumented(o *obj) {
	o.n = 0
	pool.Put(o)
}

// putInClosure: the literal's enclosing declaration carries the
// directive, which covers the Put.
//
//orthrus:recycle testdata: deferred recycling after the last observer
func putInClosure(o *obj) func() {
	return func() { pool.Put(o) }
}

// A bare directive is itself a diagnostic.
//
//orthrus:recycle
func bareDirective(o *obj) { // want `//orthrus:recycle requires a reason`
	pool.Put(o)
}

// get is unrelated to Put and needs nothing.
func get() *obj { return pool.Get().(*obj) }
