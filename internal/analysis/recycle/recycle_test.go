package recycle_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/recycle"
)

func TestRecycle(t *testing.T) {
	atest.Run(t, "testdata", recycle.Analyzer, "a")
}
