// Package a exercises the hotpath analyzer.
package a

import (
	"fmt"
	"os"
	"time"
)

// loop is a hot root: everything it statically calls is checked.
//
//orthrus:hotpath
func loop(ch chan int, done chan struct{}) {
	time.Sleep(time.Millisecond) // want `calls time.Sleep on the hot path`
	fmt.Println("tick")          // want `calls fmt.Println on the hot path`
	helper()
	ch <- 1 // want `blocking channel send on the hot path`
	<-done  // want `blocking channel receive on the hot path`

	// Non-blocking channel use is the sanctioned shape.
	select {
	case v := <-ch:
		_ = v
	default:
	}
	select {
	case done <- struct{}{}:
	default:
	}

	// A goroutine body runs elsewhere; spawning it is allowed.
	go func() {
		time.Sleep(time.Second)
	}()
}

// helper is reached transitively from loop.
func helper() {
	os.ReadFile("x") // want `calls os.ReadFile \(file I/O\) on the hot path`
}

// idle is a justified traversal boundary: loopWithBoundary stays clean.
//
//orthrus:coldpath testdata: idle backoff may sleep
func idle() {
	time.Sleep(time.Microsecond)
}

//orthrus:hotpath
func loopWithBoundary() {
	idle()
}

// A bare coldpath is itself a diagnostic.
//
//orthrus:coldpath
func bareColdpath() { // want `//orthrus:coldpath requires a reason`
	time.Sleep(time.Microsecond)
}

//orthrus:hotpath
func allowedSite(ch chan int) {
	//orthrus:allow(hotpath) testdata: startup-only send, measured window not yet open
	ch <- 1
}

// notHot is unannotated and unreachable from a root: anything goes.
func notHot() {
	time.Sleep(time.Second)
	fmt.Println("cold")
}
