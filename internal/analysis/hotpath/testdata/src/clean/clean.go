// Package clean holds hot-path code the analyzer must stay quiet on.
package clean

import "sync/atomic"

type ring struct {
	head, tail atomic.Uint64
	buf        []int
}

// TryDequeue is lock-free polling — the canonical clean hot path.
//
//orthrus:hotpath
func (r *ring) TryDequeue() (int, bool) {
	head := r.head.Load()
	if head >= r.tail.Load() {
		return 0, false
	}
	v := r.buf[head&uint64(len(r.buf)-1)]
	r.head.Store(head + 1)
	return v, true
}

//orthrus:hotpath
func drain(r *ring, wake chan struct{}) int {
	n := 0
	for {
		v, ok := r.TryDequeue()
		if !ok {
			break
		}
		n += v
		// Non-blocking wake: select with default.
		select {
		case wake <- struct{}{}:
		default:
		}
	}
	return n
}
