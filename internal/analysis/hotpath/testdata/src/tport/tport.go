// Package tport models the networked message plane's division of
// labour: the enqueue path threads run (pool get, batch fill,
// select-default handoff) must stay hot-path clean, while the socket
// I/O lives behind //orthrus:coldpath writer/reader goroutines. It pins
// the shape internal/orthrus's netQueue and internal/transport's Peer
// rely on to pass the analyzer.
package tport

import (
	"net"
	"sync"
)

type frame struct{ msgs []int }

type peer struct {
	pool sync.Pool
	out  chan *frame
	conn net.Conn
}

// tryEnqueueBatch is the transport's hot boundary: everything before
// the writer channel. No socket call, no blocking send — backpressure
// is the select default, exactly like a full SPSC ring.
//
//orthrus:hotpath
func (p *peer) tryEnqueueBatch(vs []int) int {
	f := p.pool.Get().(*frame)
	f.msgs = append(f.msgs[:0], vs...)
	select {
	case p.out <- f:
		return len(vs)
	default:
	}
	return 0
}

// writeLoop is the sanctioned home for the socket write: a dedicated
// goroutine behind a justified coldpath boundary.
//
//orthrus:coldpath testdata: dedicated writer goroutine; socket writes block by design
func (p *peer) writeLoop(buf []byte) {
	for range p.out {
		p.conn.Write(buf)
	}
}

// flush hands frames to the writer; the boundary keeps it clean.
//
//orthrus:hotpath
func (p *peer) flush() {
	go p.writeLoop(nil)
}

// sendInline is the violation this package exists to catch: network I/O
// and a blocking writer-channel send reached from a hot root. (Interface
// dispatch like conn.Write is invisible to the static walk — which is
// exactly why the real transport routes every socket call through the
// coldpath writer goroutine rather than leaning on the analyzer.)
//
//orthrus:hotpath
func (p *peer) sendInline(f *frame, addr string) {
	p.out <- f            // want `blocking channel send on the hot path`
	net.Dial("tcp", addr) // want `calls net.Dial \(network I/O\) on the hot path`
}
