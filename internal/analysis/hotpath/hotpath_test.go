package hotpath_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	atest.Run(t, "testdata", hotpath.Analyzer, "a", "clean", "tport")
}
