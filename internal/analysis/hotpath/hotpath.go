// Package hotpath enforces the PR 4 rule that latency-critical threads
// never touch I/O or block: functions annotated //orthrus:hotpath (CC
// drain loops, SPSC ring operations, execution-thread commit paths) and
// everything they statically call may not perform file or network I/O,
// fmt/log printing, sleeps, or blocking channel operations.
//
// The analyzer walks the static call graph from each annotated root
// through every function defined in the load unit. At the leaves it
// checks calls against a forbidden list of standard-library operations
// (all of os, net, log, bufio and syscall; fmt's printing and scanning
// functions; time.Sleep/After/Tick/NewTimer/NewTicker). Within bodies
// it flags channel sends and receives, except inside a select that has
// a default clause — the non-blocking shape the WAL wake channel and
// the exec-thread submission poll use.
//
// Two escapes, both deliberate and self-documenting:
//
//   - //orthrus:coldpath <reason> on a function marks an intentional
//     traversal boundary (an idle backoff that sleeps, a rare
//     control-plane handler); the walk does not descend into it. The
//     reason is mandatory.
//   - //orthrus:allow(hotpath) <reason> suppresses a single site.
//
// Dynamic calls — function values, interface dispatch — are not
// traversed; hot loops that dispatch through an interface (the SPSC
// ring behind spsc.Queue) annotate the concrete implementations as
// roots instead.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name:       "hotpath",
	Doc:        "//orthrus:hotpath functions and their static callees must not do I/O, print, sleep, or block on channels",
	RunProgram: run,
}

// forbiddenPkgs are wholesale-forbidden import paths.
var forbiddenPkgs = map[string]string{
	"os":      "file I/O",
	"net":     "network I/O",
	"log":     "logging",
	"bufio":   "buffered I/O",
	"syscall": "system calls",
}

// forbiddenFuncs are forbidden (package, function-prefix) pairs in
// otherwise allowed packages.
var forbiddenFuncs = map[string][]string{
	"fmt":  {"Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf", "Scan", "Sscan", "Fscan"},
	"time": {"Sleep", "After", "Tick", "NewTimer", "NewTicker"},
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass, reported: make(map[token.Pos]bool)}
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, ok := pass.Prog.Directive(fd, "hotpath"); !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				w.visited = map[*types.Func]bool{obj: true}
				w.root = obj
				w.check(pkg, fd, nil)
			}
		}
	}
	// Coldpath boundaries must say why.
	for _, pkg := range pass.Prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if reason, ok := pass.Prog.Directive(fd, "coldpath"); ok && reason == "" {
						pass.Reportf(fd.Pos(), "//orthrus:coldpath requires a reason")
					}
				}
			}
		}
	}
	return nil
}

type walker struct {
	pass     *analysis.Pass
	root     *types.Func
	visited  map[*types.Func]bool
	reported map[token.Pos]bool
}

// via renders the call chain from the root to the current function.
func via(chain []*types.Func) string {
	if len(chain) == 0 {
		return ""
	}
	names := make([]string, len(chain))
	for i, f := range chain {
		names[i] = f.Name()
	}
	return " via " + strings.Join(names, " → ")
}

// check walks fd's body, flagging forbidden operations and descending
// into statically resolved callees defined in the load unit. chain is
// the call path from the root to fd (nil at the root itself).
func (w *walker) check(pkg *analysis.Package, fd *ast.FuncDecl, chain []*types.Func) {
	if fd.Body == nil {
		return
	}
	w.node(pkg, fd.Body, chain, false)
}

// node recursively walks n. selectDefault is true when n is inside a
// select statement that has a default clause (its channel operations
// are non-blocking).
func (w *walker) node(pkg *analysis.Package, n ast.Node, chain []*types.Func, selectDefault bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, clause := range n.Body.List {
			cc := clause.(*ast.CommClause)
			// The communicated operation is non-blocking iff the select
			// has a default; the clause bodies run normally.
			w.node(pkg, cc.Comm, chain, hasDefault)
			for _, s := range cc.Body {
				w.node(pkg, s, chain, false)
			}
		}
		return
	case *ast.SendStmt:
		if !selectDefault {
			w.flag(n.Pos(), "blocking channel send", chain)
		}
		w.node(pkg, n.Chan, chain, false)
		w.node(pkg, n.Value, chain, false)
		return
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !selectDefault {
			w.flag(n.Pos(), "blocking channel receive", chain)
		}
	case *ast.RangeStmt:
		if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.flag(n.X.Pos(), "blocking channel receive (range over channel)", chain)
			}
		}
	case *ast.GoStmt:
		// The spawned body runs on another goroutine; the spawn itself
		// is cheap and allowed.
		return
	case *ast.CallExpr:
		w.call(pkg, n, chain)
	case *ast.FuncLit:
		// A literal's body may run elsewhere, but every in-tree hot
		// path that builds one runs it inline; walking it keeps the
		// analysis conservative.
	}
	// Generic descent.
	children(n, func(c ast.Node) {
		w.node(pkg, c, chain, selectDefault && isCommPart(n))
	})
}

// isCommPart reports nodes whose direct children keep select-default
// context (assignment/expression wrappers inside a CommClause comm).
func isCommPart(n ast.Node) bool {
	switch n.(type) {
	case *ast.AssignStmt, *ast.ExprStmt:
		return true
	}
	return false
}

// call checks one call site and descends into the callee when it is
// defined in the load unit.
func (w *walker) call(pkg *analysis.Package, call *ast.CallExpr, chain []*types.Func) {
	fn := analysis.Callee(pkg.Info, call)
	if fn == nil {
		return
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	if what, bad := forbiddenPkgs[path]; bad {
		w.flag(call.Pos(), fmt.Sprintf("calls %s.%s (%s)", path, fn.Name(), what), chain)
		return
	}
	for _, prefix := range forbiddenFuncs[path] {
		if strings.HasPrefix(fn.Name(), prefix) {
			w.flag(call.Pos(), fmt.Sprintf("calls %s.%s", path, fn.Name()), chain)
			return
		}
	}
	decl, ok := w.pass.Prog.Decls[fn]
	if !ok || w.visited[fn] {
		return
	}
	if _, cold := w.pass.Prog.Directive(decl, "coldpath"); cold {
		return
	}
	w.visited[fn] = true
	w.check(w.pass.Prog.DeclPkg[fn], decl, append(chain, fn))
}

// flag reports one forbidden operation, once per site per root.
func (w *walker) flag(pos token.Pos, what string, chain []*types.Func) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, "%s on the hot path of //orthrus:hotpath %s%s", what, w.root.FullName(), via(chain))
}

// children invokes fn for each direct child node of n, using
// ast.Inspect's traversal but stopping at depth one.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
