package lockorder_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "a", "clean")
}
