// Package lockorder enforces the repository's total lock order, the
// invariant PR 5 introduced with stripe (gap) locks: within a table,
// every record key sorts before every stripe key (bit 63 set), so any
// code path that acquires locks must take record keys before stripe
// keys, and declared-set acquisition loops must iterate keys in the
// globally sorted order (txn.SortOps).
//
// Two rules, both per function body:
//
//  1. Record-after-stripe: once a function acquires a stripe-classified
//     key (an expression built from StripeKey/StripeSpan/StripeFlag or
//     any constant with bit 63 set, tracked through local assignments),
//     any acquisition of a record-classified key later in source order
//     is flagged. A loop containing a stripe acquisition counts as
//     stripe-acquiring from the top of the loop, so a loop body that
//     takes both kinds is flagged regardless of intra-body order (the
//     iterations interleave them). The rule is deliberately
//     branch-insensitive — mutually exclusive branches still flag —
//     because a false negative here costs a deadlock in production and
//     a false positive costs one //orthrus:allow(lockorder) line.
//
//  2. Unsorted acquisition loop: a `for ... range x.Ops` loop that
//     acquires locks requires a preceding x.SortOps() call in the same
//     function — a declared set is only in the global order after
//     SortOps.
//
// An "acquisition" is any call to a function or method named Acquire or
// acquire taking exactly one uint64-typed argument (the lock key),
// which matches every acquisition site in this repository. Intentional
// exceptions — dynamic 2PL acquires lazily in touch order and delegates
// cycles to its deadlock handler — carry //orthrus:allow(lockorder)
// with that justification.
package lockorder

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions must follow the global order: record keys before bit-63 stripe keys, declared sets sorted",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// acq is one classified acquisition call site.
type acq struct {
	call   *ast.CallExpr
	stripe bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	taint := stripeTaint(info, fd.Body)

	var acqs []acq
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key := acquisitionKey(info, call); key != nil {
			acqs = append(acqs, acq{call: call, stripe: exprIsStripe(info, taint, key)})
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Rule 1: the function becomes "stripe-acquiring" at the earliest
	// stripe acquisition — hoisted to the top of any loop containing
	// one, since iterations re-execute it.
	stripeFrom := token.Pos(-1)
	for _, a := range acqs {
		if !a.stripe {
			continue
		}
		from := a.call.Pos()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if n.Pos() <= a.call.Pos() && a.call.End() <= n.End() && n.Pos() < from {
					from = n.Pos()
				}
			}
			return true
		})
		if stripeFrom == token.Pos(-1) || from < stripeFrom {
			stripeFrom = from
		}
	}
	if stripeFrom != token.Pos(-1) {
		for _, a := range acqs {
			if !a.stripe && a.call.Pos() > stripeFrom {
				pass.Reportf(a.call.Pos(),
					"record-key lock acquired after a stripe-key lock on the same path; the total lock order (record keys before bit-63 stripe keys) requires the reverse")
			}
		}
	}

	// Rule 2: range-over-Ops acquisition loops need a preceding
	// SortOps on the same receiver.
	checkOpsLoops(pass, fd, acqs)
}

func checkOpsLoops(pass *analysis.Pass, fd *ast.FuncDecl, acqs []acq) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(rng.X).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Ops" {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		acquires := false
		for _, a := range acqs {
			if rng.Pos() <= a.call.Pos() && a.call.End() <= rng.End() {
				acquires = true
				break
			}
		}
		if !acquires {
			return true
		}
		recv := info.ObjectOf(base)
		sorted := false
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || call.Pos() >= rng.Pos() {
				return true
			}
			cs, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || cs.Sel.Name != "SortOps" {
				return true
			}
			if id, ok := ast.Unparen(cs.X).(*ast.Ident); ok && info.ObjectOf(id) == recv && recv != nil {
				sorted = true
			}
			return true
		})
		if !sorted {
			pass.Reportf(rng.Pos(),
				"lock acquisition loop over %s.Ops without a preceding %s.SortOps(); declared sets must be acquired in the global sorted order", base.Name, base.Name)
		}
		return true
	})
}

// acquisitionKey returns the lock-key argument when call is an
// acquisition: a call to a function or method named Acquire/acquire
// with exactly one uint64-typed argument.
func acquisitionKey(info *types.Info, call *ast.CallExpr) ast.Expr {
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return nil
	}
	if name != "Acquire" && name != "acquire" {
		return nil
	}
	var key ast.Expr
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
			if key != nil {
				return nil // ambiguous: not the shape of a lock acquisition
			}
			key = arg
		}
	}
	return key
}

// stripeTaint computes, to a fixpoint, the local variables assigned
// (directly or transitively) from stripe-key expressions.
func stripeTaint(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	taint := make(map[types.Object]bool)
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			var lhs, rhs []ast.Expr
			switch s := n.(type) {
			case *ast.AssignStmt:
				lhs, rhs = s.Lhs, s.Rhs
			case *ast.ValueSpec:
				for _, name := range s.Names {
					lhs = append(lhs, name)
				}
				rhs = s.Values
			default:
				return true
			}
			// Whole-RHS granularity: StripeSpan returns two stripe keys,
			// so a tainted RHS taints every LHS variable.
			tainted := false
			for _, r := range rhs {
				if exprIsStripe(info, taint, r) {
					tainted = true
				}
			}
			if !tainted {
				return true
			}
			for _, l := range lhs {
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := info.ObjectOf(id); obj != nil && !taint[obj] {
					taint[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return taint
		}
	}
}

// exprIsStripe reports whether e is stripe-classified: it mentions
// StripeKey/StripeSpan/StripeFlag, evaluates (anywhere in its subtree)
// to a constant with bit 63 set, or reads a stripe-tainted local.
func exprIsStripe(info *types.Info, taint map[types.Object]bool, e ast.Expr) bool {
	stripe := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "StripeKey" || n.Name == "StripeSpan" || n.Name == "StripeFlag" {
				stripe = true
			}
			if obj := info.ObjectOf(n); obj != nil && taint[obj] {
				stripe = true
			}
		case ast.Expr:
			if tv, ok := info.Types[n]; ok && tv.Value != nil {
				if v, exact := constant.Uint64Val(constant.ToInt(tv.Value)); exact && v&(1<<63) != 0 {
					stripe = true
				}
			}
		}
		return !stripe
	})
	return stripe
}
