// Package a exercises the lockorder analyzer: the analyzer is
// name-based, so local stand-ins for the txn package's stripe helpers
// and the lock table's Acquire are enough to drive it.
package a

const StripeFlag uint64 = 1 << 63

func StripeKey(key uint64) uint64 { return StripeFlag | key>>6 }

func StripeSpan(lo, hi uint64) (first, last uint64) { return StripeKey(lo), StripeKey(hi - 1) }

type table struct{}

func (table) Acquire(key uint64, mode int) {}

type op struct {
	Key  uint64
	Mode int
}

type decl struct{ Ops []op }

func (*decl) SortOps() {}

// Rule 1: a record-key acquisition after a stripe-key acquisition.
func recordAfterStripe(tbl table, lo, hi uint64) {
	first, last := StripeSpan(lo, hi)
	for s := first; s <= last; s++ {
		tbl.Acquire(s, 0)
	}
	tbl.Acquire(lo, 0) // want `record-key lock acquired after a stripe-key lock`
}

// Rule 1, constant form: a literal with bit 63 set is a stripe key.
func recordAfterConstStripe(tbl table, key uint64) {
	tbl.Acquire(1<<63|42, 0)
	tbl.Acquire(key, 0) // want `record-key lock acquired after a stripe-key lock`
}

// Rule 1, loop hoisting: a loop body that takes both kinds is flagged
// even with the record acquisition textually first — iterations
// interleave them.
func mixedLoop(tbl table, keys []uint64) {
	for _, k := range keys {
		tbl.Acquire(k, 0) // want `record-key lock acquired after a stripe-key lock`
		tbl.Acquire(StripeKey(k), 0)
	}
}

// Rule 2: acquiring over a declared set without sorting it first.
func unsortedLoop(tbl table, t *decl) {
	for _, o := range t.Ops { // want `acquisition loop over t.Ops without a preceding t.SortOps`
		tbl.Acquire(o.Key, o.Mode)
	}
}

// A justified suppression keeps the diagnostic quiet.
func allowed(tbl table, lo, hi uint64) {
	tbl.Acquire(StripeKey(lo), 0)
	//orthrus:allow(lockorder) testdata: lazy acquisition, deadlock handler resolves inversions
	tbl.Acquire(lo, 0)
}

// A bare suppression is itself a diagnostic.
func bareAllow(tbl table, lo uint64) {
	tbl.Acquire(StripeKey(lo), 0)
	//orthrus:allow(lockorder)
	tbl.Acquire(lo, 0) // want `orthrus:allow\(lockorder\) requires a reason`
}
