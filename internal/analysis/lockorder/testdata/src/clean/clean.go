// Package clean holds code the lockorder analyzer must stay quiet on.
package clean

const StripeFlag uint64 = 1 << 63

func StripeKey(key uint64) uint64 { return StripeFlag | key>>6 }

func StripeSpan(lo, hi uint64) (first, last uint64) { return StripeKey(lo), StripeKey(hi - 1) }

type table struct{}

func (table) Acquire(key uint64, mode int) {}

type op struct {
	Key  uint64
	Mode int
}

type decl struct{ Ops []op }

func (*decl) SortOps() {}

// Records before stripes is the sanctioned order.
func recordsThenStripes(tbl table, lo, hi uint64) {
	tbl.Acquire(lo, 0)
	first, last := StripeSpan(lo, hi)
	for s := first; s <= last; s++ {
		tbl.Acquire(s, 0)
	}
}

// A sorted declared-set loop is the sanctioned acquisition loop.
func sortedLoop(tbl table, t *decl) {
	t.SortOps()
	for _, o := range t.Ops {
		tbl.Acquire(o.Key, o.Mode)
	}
}

// Stripe-only acquisition has nothing to order against.
func stripesOnly(tbl table, lo, hi uint64) {
	first, last := StripeSpan(lo, hi)
	for s := first; s <= last; s++ {
		tbl.Acquire(s, 0)
	}
}

// Two-uint64 calls named Acquire are not lock acquisitions.
type span struct{}

func (span) Acquire(lo, hi uint64) {}

func notAnAcquisition(s span, lo, hi uint64) {
	s.Acquire(StripeKey(lo), StripeKey(hi))
	s.Acquire(lo, hi)
}
