package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Packages are loaded the way a unitchecker would see them: the target
// packages are parsed and type-checked from source (so analyzers get
// full ASTs and type info), while their imports — the standard library
// and, in dependency order, earlier targets — resolve through gc export
// data produced by `go list -export`. Everything runs offline against
// the local toolchain; the module has no external dependencies and this
// loader adds none.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	GoFiles    []string
}

// goList runs `go list -e -export -deps -json` for patterns in dir and
// returns the packages in dependency order (dependencies first — the
// order go list guarantees, and the order source type-checking needs).
func goList(dir string, patterns ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,Module,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newImporter builds the two-level importer: source-checked target
// packages first, gc export data for everything else.
func newImporter(fset *token.FileSet, exports map[string]string, srcPkgs map[string]*types.Package) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	base := importer.ForCompiler(fset, "gc", lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if p, ok := srcPkgs[path]; ok {
			return p, nil
		}
		return base.Import(path)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// LoadPackages loads and type-checks the module packages matching
// patterns, resolving relative to dir (any directory inside the
// module). Standard-library dependencies come from export data; module
// packages are checked from source in dependency order.
func LoadPackages(dir string, patterns ...string) (*Program, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	srcPkgs := make(map[string]*types.Package)
	imp := newImporter(fset, exports, srcPkgs)
	prog := &Program{Fset: fset}
	for _, p := range pkgs {
		if p.Standard || p.Module == nil {
			continue
		}
		if p.Name == "" || len(p.GoFiles) == 0 {
			return nil, fmt.Errorf("analysis: package %s did not load (run `go build %s` for details)", p.ImportPath, p.ImportPath)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", p.ImportPath, err)
		}
		srcPkgs[p.ImportPath] = tpkg
		prog.Packages = append(prog.Packages, &Package{
			Path:  p.ImportPath,
			Types: tpkg,
			Info:  info,
			Files: files,
		})
	}
	prog.index()
	return prog, nil
}

// LoadDir loads a single loose package from every .go file directly
// under dir — the analysistest path: golden testdata directories are
// not part of the module's package graph, so they are parsed in place
// and their (standard library) imports resolve via export data listed
// from moduleDir.
func LoadDir(moduleDir, dir string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
		names = append(names, e.Name())
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Sort(&fileSorter{files, names})

	importSet := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			importSet[importPathOf(imp)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		pkgs, err := goList(moduleDir, patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newImporter(fset, exports, nil)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", dir, err)
	}
	prog := &Program{Fset: fset}
	prog.Packages = append(prog.Packages, &Package{
		Path:  files[0].Name.Name,
		Types: tpkg,
		Info:  info,
		Files: files,
	})
	prog.index()
	return prog, nil
}

func importPathOf(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	return p[1 : len(p)-1] // strip quotes
}

// fileSorter keeps parsed files in deterministic (file name) order.
type fileSorter struct {
	files []*ast.File
	names []string
}

func (s *fileSorter) Len() int           { return len(s.files) }
func (s *fileSorter) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *fileSorter) Swap(i, j int) {
	s.files[i], s.files[j] = s.files[j], s.files[i]
	s.names[i], s.names[j] = s.names[j], s.names[i]
}
