// Package atest is the golden-file test harness for orthrus-vet
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest
// (which this module cannot depend on): each file under
// testdata/src/<pkg> annotates the diagnostics it expects with
//
//	code() // want `regexp` `another regexp`
//
// comments. Run loads the package, applies the analyzer, and fails the
// test on any unexpected diagnostic or unmatched expectation — so every
// golden package asserts both that violations are caught and that clean
// code stays clean.
package atest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want((?:\\s+`[^`]*`)+)\\s*$")

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run applies the analyzer to each named package under dir/src and
// checks its diagnostics against the `// want` comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(dir, "src", pkg), a)
		})
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.LoadDir(".", dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.Contains(c.Text, "want `") {
							t.Errorf("%s: malformed want comment: %s",
								prog.Fset.Position(c.Pos()), c.Text)
						}
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, w := range splitWants(m[1]) {
						re, err := regexp.Compile(w)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, w, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re,
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		if !claim(wants, d.Pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation at the diagnostic's line
// whose regexp matches, and reports whether one existed.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// splitWants extracts the backquoted regexps from the tail of a want
// comment.
func splitWants(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '`')
		if i < 0 {
			return out
		}
		s = s[i+1:]
		j := strings.IndexByte(s, '`')
		if j < 0 {
			panic(fmt.Sprintf("atest: unterminated want regexp in %q", s))
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}
