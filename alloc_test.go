package repro_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// Hot-path allocation regression tests: a steady-state transfer
// transaction must perform zero heap allocations from Submit to the
// completion acknowledgment on every engine (WAL off), and a small
// bounded number with group-commit durability on. These tests pin the
// PR's pooling work — any new per-transaction allocation (a closure, a
// fresh plan slice, an unpooled wrapper) fails them immediately.

// allocSystems builds the four-engine lineup over a tiny account table.
func allocSystems(t testing.TB, wal *repro.WAL) []struct {
	rt  repro.System
	db  *repro.DB
	tbl int
} {
	t.Helper()
	const n, threads = 64, 2
	type entry = struct {
		rt  repro.System
		db  *repro.DB
		tbl int
	}
	var out []entry
	build := func(f func(db *repro.DB) repro.System) {
		db, tbl := newAccountDB(t, n, 1000)
		out = append(out, entry{f(db), db, tbl})
	}
	build(func(db *repro.DB) repro.System {
		return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2, Wal: wal})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads, Wal: wal})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads, Wal: wal})
	})
	build(func(db *repro.DB) repro.System {
		return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads, Wal: wal})
	})
	return out
}

// measureSubmitAllocs drives one transaction at a time through ses and
// returns the steady-state allocations per Submit→ack round trip. The
// warmup loop lets every pool, scratch slice and lock-table entry reach
// its high-water mark first; the explicit GC empties sync.Pool victim
// caches so a collection during measurement cannot manufacture refills.
func measureSubmitAllocs(ses repro.Session, src repro.Source) float64 {
	rng := rand.New(rand.NewSource(1))
	ch := make(chan struct{}, 1)
	done := func(bool) { ch <- struct{}{} }
	submitOne := func() {
		ses.Submit(src.Next(0, rng), done)
		<-ch
	}
	for i := 0; i < 500; i++ {
		submitOne()
	}
	runtime.GC()
	return testing.AllocsPerRun(200, submitOne)
}

// TestSubmitAllocsZero: with durability off, the Submit→ack hot path of
// every engine is allocation-free in steady state.
func TestSubmitAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts by design, allocation counts are not meaningful")
	}
	for _, e := range allocSystems(t, nil) {
		t.Run(e.rt.Name(), func(t *testing.T) {
			ses := e.rt.Start()
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			allocs := measureSubmitAllocs(ses, src)
			ses.Drain()
			ses.Close()
			if allocs != 0 {
				t.Errorf("%s: %.1f allocs per Submit→ack, want 0", e.rt.Name(), allocs)
			}
		})
	}
}

// TestSubmitAllocsWALBounded: group-commit durability may allocate (the
// flusher's timer machinery, device growth), but the per-transaction
// count must stay small and constant — a leak of one object per commit
// through the WAL path would show up here long before it shows up in a
// heap profile.
func TestSubmitAllocsWALBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts by design, allocation counts are not meaningful")
	}
	const bound = 16.0
	for _, e := range allocSystems(t, repro.NewWAL(repro.NewWALMemDevice(), repro.WALGroup(4, time.Millisecond))) {
		t.Run(e.rt.Name(), func(t *testing.T) {
			ses := e.rt.Start()
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			allocs := measureSubmitAllocs(ses, src)
			ses.Drain()
			ses.Close()
			if allocs > bound {
				t.Errorf("%s: %.1f allocs per durable Submit→ack, want <= %.0f", e.rt.Name(), allocs, bound)
			}
		})
	}
}

// TestSubmitAllocsWithCheckpointerBounded: a live fuzzy checkpointer —
// walking the table, sealing pages, committing manifests and truncating
// segments every few milliseconds while the measurement runs — must not
// add allocations to the Submit→ack hot path beyond the WAL bound. The
// checkpointer's own cold-path allocations (page copies into the store,
// manifest encoding) amortize across the measured ops and stay far under
// the bound; anything per-transaction would blow straight through it.
func TestSubmitAllocsWithCheckpointerBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode: sync.Pool drops Puts by design, allocation counts are not meaningful")
	}
	const bound = 16.0
	const n, threads = 64, 2
	type entry struct {
		rt  repro.System
		db  *repro.DB
		tbl int
	}
	var systems []entry
	build := func(f func(db *repro.DB, wal *repro.WAL, ck repro.CheckpointConfig) repro.System) {
		db, tbl := newAccountDB(t, n, 1000)
		wal := repro.NewWAL(repro.NewWALMemSegments(64<<10), repro.WALGroup(4, time.Millisecond))
		ck := repro.CheckpointConfig{Store: repro.NewMemCheckpointStore(), Interval: 5 * time.Millisecond}
		systems = append(systems, entry{f(db, wal, ck), db, tbl})
	}
	build(func(db *repro.DB, wal *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2, Wal: wal, Checkpoint: ck})
	})
	build(func(db *repro.DB, wal *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads, Wal: wal, Checkpoint: ck})
	})
	build(func(db *repro.DB, wal *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads, Wal: wal, Checkpoint: ck})
	})
	build(func(db *repro.DB, wal *repro.WAL, ck repro.CheckpointConfig) repro.System {
		return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads, Wal: wal, Checkpoint: ck})
	})
	for _, e := range systems {
		t.Run(e.rt.Name(), func(t *testing.T) {
			ses := e.rt.Start()
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			allocs := measureSubmitAllocs(ses, src)
			stats := ses.(repro.CheckpointedSession).CheckpointStats()
			ses.Drain()
			ses.Close()
			if stats.Checkpoints == 0 {
				t.Fatalf("%s: checkpointer never ran during the measurement", e.rt.Name())
			}
			if allocs > bound {
				t.Errorf("%s: %.1f allocs per Submit→ack with live checkpointer, want <= %.0f", e.rt.Name(), allocs, bound)
			}
		})
	}
}

// TestPoolReuseSafety proves the recycling protocol under the race
// detector: for every submission, the completion callback must fire
// strictly before Free (the engine's last-observer contract), and a
// recycled transaction must never reach Free twice for one life. Running
// many concurrent submitters under -race additionally checks that no
// engine structure still touches a transaction after handing it back to
// the pool — any such access races with the next life's generator writes.
func TestPoolReuseSafety(t *testing.T) {
	for _, e := range allocSystems(t, nil) {
		t.Run(e.rt.Name(), func(t *testing.T) {
			const submitters, perSubmitter = 4, 300
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			ses := e.rt.Start()

			var completions sync.WaitGroup
			completions.Add(submitters * perSubmitter)
			var ordering atomic.Int64 // completion-after-Free violations
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(s)))
					for i := 0; i < perSubmitter; i++ {
						tx := src.Next(s, rng)
						// Interpose on Free to assert the completion
						// callback observed this life first. The original
						// (pool-bound) Free is restored before recycling so
						// the interposer never survives into the next life.
						var fired atomic.Bool
						orig := tx.Free
						tx.Free = func() {
							if !fired.Load() {
								ordering.Add(1)
							}
							tx.Free = orig
							if orig != nil {
								orig()
							}
						}
						ses.Submit(tx, func(bool) {
							fired.Store(true)
							completions.Done()
						})
					}
				}(s)
			}
			wg.Wait()
			ses.Drain()
			completions.Wait()
			ses.Close()

			if n := ordering.Load(); n != 0 {
				t.Errorf("%s: %d transactions were freed before their completion callback fired", e.rt.Name(), n)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Errorf("%s: sum = %d, want %d (recycled transaction corrupted execution)", e.rt.Name(), got, 64*1000)
			}
		})
	}
}

// BenchmarkSubmitAllocs is the benchgate-tracked form of the zero-alloc
// guarantee: allocs/op must stay 0 (WAL off, transfer mix) on every
// engine. The CI gate compares allocs/op absolutely, so any regression
// fails the build even if ns/op improves.
func BenchmarkSubmitAllocs(b *testing.B) {
	for _, e := range allocSystems(b, nil) {
		b.Run(e.rt.Name(), func(b *testing.B) {
			ses := e.rt.Start()
			defer ses.Close()
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			rng := rand.New(rand.NewSource(1))
			ch := make(chan struct{}, 1)
			done := func(bool) { ch <- struct{}{} }
			for i := 0; i < 500; i++ {
				ses.Submit(src.Next(0, rng), done)
				<-ch
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ses.Submit(src.Next(0, rng), done)
				<-ch
			}
			b.StopTimer()
			ses.Drain()
		})
	}
}
