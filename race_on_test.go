//go:build race

package repro_test

// raceEnabled reports whether the race detector is active; see
// race_off_test.go.
const raceEnabled = true
