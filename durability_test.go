package repro_test

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// durableEngines builds every system with a group-commit WAL attached,
// each over a fresh 64-account database, returning the engine, its
// database/table, and the in-memory log device holding its redo log.
func durableEngines(t testing.TB, policy repro.SyncPolicy) []struct {
	eng repro.Engine
	db  *repro.DB
	tbl int
	dev *repro.WALMemDevice
	log *repro.WAL
} {
	t.Helper()
	const n, threads = 64, 4
	type entry = struct {
		eng repro.Engine
		db  *repro.DB
		tbl int
		dev *repro.WALMemDevice
		log *repro.WAL
	}
	var out []entry
	build := func(f func(db *repro.DB, log *repro.WAL) repro.Engine) {
		db, tbl := newAccountDB(t, n, 1000)
		dev := repro.NewWALMemDevice()
		log := repro.NewWAL(dev, policy)
		out = append(out, entry{f(db, log), db, tbl, dev, log})
	}
	build(func(db *repro.DB, log *repro.WAL) repro.Engine {
		return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2, Wal: log})
	})
	build(func(db *repro.DB, log *repro.WAL) repro.Engine {
		return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: threads, Wal: log})
	})
	build(func(db *repro.DB, log *repro.WAL) repro.Engine {
		return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: threads, Wal: log})
	})
	build(func(db *repro.DB, log *repro.WAL) repro.Engine {
		return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: threads, Wal: log})
	})
	return out
}

// Crash recovery on every engine: run contended transfers through a
// group-commit WAL, then "crash" by truncating the log image at
// arbitrary torn points and replay. At every torn point the rebuilt
// state must be a committed prefix of history — the transfer
// conservation sum holds exactly — and replaying the full log must
// reproduce the live database byte for byte, so no acknowledged
// transaction is lost.
func TestCrashRecoveryCommittedPrefixOnAllEngines(t *testing.T) {
	for _, e := range durableEngines(t, repro.WALGroup(32, 100*time.Microsecond)) {
		e := e
		t.Run(e.eng.Name(), func(t *testing.T) {
			src := &repro.Transfer{Table: e.tbl, NumRecords: 64}
			res := e.eng.Run(src, 100*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			if err := e.log.Close(); err != nil {
				t.Fatal(err)
			}
			if got := sumBalances(e.db, e.tbl, 64); got != 64*1000 {
				t.Fatalf("live sum = %d, want %d", got, 64*1000)
			}
			img := e.dev.Contents()
			if e.dev.SyncedLen() != len(img) {
				t.Fatalf("close left %d of %d bytes unsynced", e.dev.SyncedLen(), len(img))
			}

			// Arbitrary torn points, including mid-record cuts.
			rng := rand.New(rand.NewSource(42))
			cuts := []int{0, 1, len(img) / 3, len(img) / 2, len(img) - 1, len(img)}
			for i := 0; i < 8; i++ {
				cuts = append(cuts, rng.Intn(len(img)+1))
			}
			for _, cut := range cuts {
				rebuilt, tbl2 := newAccountDB(t, 64, 1000)
				st := repro.ReplayWAL(img[:cut], rebuilt)
				if got := sumBalances(rebuilt, tbl2, 64); got != 64*1000 {
					t.Fatalf("cut %d/%d: conservation broken: sum = %d (replay %+v)",
						cut, len(img), got, st)
				}
				if cut == len(img) {
					if st.Torn || uint64(st.Applied) != res.Totals.Committed {
						t.Fatalf("full replay applied %d of %d commits (torn=%v)",
							st.Applied, res.Totals.Committed, st.Torn)
					}
					for k := uint64(0); k < 64; k++ {
						if !bytes.Equal(rebuilt.Table(tbl2).Get(k), e.db.Table(e.tbl).Get(k)) {
							t.Fatalf("full replay diverges from live state at key %d", k)
						}
					}
				}
			}
		})
	}
}

// A crash mid-run loses no acknowledged transaction: snapshot the synced
// log prefix while the engine is still committing, replay it, and check
// that it contains at least every transaction acknowledged before the
// snapshot. Each transaction increments one counter, so the replayed
// counter sum counts the applied transactions exactly.
func TestMidRunCrashKeepsAcknowledgedTransactions(t *testing.T) {
	db, tbl := newAccountDB(t, 64, 0)
	dev := repro.NewWALMemDevice()
	log := repro.NewWAL(dev, repro.WALGroup(16, 100*time.Microsecond))
	eng := repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2, Wal: log})

	ses := eng.Start()
	var acked atomic.Int64
	const total = 4000
	var ackedBefore int64
	var img []byte
	for i := 0; i < total; i++ {
		k := uint64(i % 64)
		tx := &repro.Txn{Ops: []repro.Op{{Table: tbl, Key: k, Mode: repro.Write}}}
		tx.Logic = func(ctx repro.Ctx) error {
			rec, err := ctx.Write(tbl, k)
			if err != nil {
				return err
			}
			repro.AddI64(rec, 0, 1)
			return nil
		}
		ses.Submit(tx, func(bool) { acked.Add(1) })
		if i == total/2 {
			// The crash instant: everything acknowledged by now was
			// synced by an earlier flush, so it must survive in the
			// synced prefix captured after reading the counter.
			ackedBefore = acked.Load()
			img = dev.SyncedContents()
		}
	}
	ses.Drain()
	ses.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if ackedBefore == 0 {
		t.Skip("no transactions acknowledged by mid-run — machine too slow to observe the crash window")
	}

	rebuilt, tbl2 := newAccountDB(t, 64, 0)
	st := repro.ReplayWAL(img, rebuilt)
	if got := sumBalances(rebuilt, tbl2, 64); got < ackedBefore {
		t.Fatalf("replayed %d transactions, but %d were acknowledged before the crash (replay %+v)",
			got, ackedBefore, st)
	} else if got != int64(st.Applied) {
		t.Fatalf("counter sum %d != applied records %d", got, st.Applied)
	}
}

// Mixed read-only and write transactions through a group-commit WAL:
// read-only acknowledgments ride the frontier (or the inline
// durable-tail fast path) while write acknowledgments come from the
// flusher — the -race CI job runs this to pin down that the two paths
// never write the same worker's latency histogram concurrently.
func TestDurableMixedReadWriteWorkload(t *testing.T) {
	for _, e := range durableEngines(t, repro.WALGroup(16, 100*time.Microsecond)) {
		e := e
		t.Run(e.eng.Name(), func(t *testing.T) {
			// YCSB mix B: 95% of ops read, so ~60% of transactions are
			// fully read-only and take the frontier-waiter ack path while
			// the rest go through the flusher.
			src := repro.YCSBMixB(e.tbl, 64)
			res := e.eng.Run(src, 60*time.Millisecond)
			if res.Totals.Committed == 0 {
				t.Fatal("no commits")
			}
			if res.Totals.Latency.Count() != res.Totals.Committed {
				t.Fatalf("latency samples %d != commits %d", res.Totals.Latency.Count(), res.Totals.Committed)
			}
			if err := e.log.Close(); err != nil {
				t.Fatal(err)
			}
			if e.dev.SyncedLen() != e.dev.Len() {
				t.Fatal("close left unsynced bytes")
			}
		})
	}
}

// Acknowledged-equals-durable, end to end: when the session drains, the
// whole log is synced and replaying the synced image alone reproduces
// every acknowledged commit — on every engine and also under Async,
// where a clean drain (not a crash) is the no-loss guarantee.
func TestDrainMakesAcknowledgedWorkDurable(t *testing.T) {
	for _, policy := range []repro.SyncPolicy{
		repro.WALGroup(0, 0),
		repro.WALAsync(),
	} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			for _, e := range durableEngines(t, policy) {
				e := e
				t.Run(e.eng.Name(), func(t *testing.T) {
					src := &repro.Transfer{Table: e.tbl, NumRecords: 64, HotRecords: 8}
					res := e.eng.Run(src, 50*time.Millisecond)
					if res.Totals.Committed == 0 {
						t.Fatal("no commits")
					}
					// Engine.Run closes its session, which drains the log
					// tail; the synced image must already be complete.
					img := e.dev.SyncedContents()
					rebuilt, tbl2 := newAccountDB(t, 64, 1000)
					st := repro.ReplayWAL(img, rebuilt)
					if uint64(st.Applied) != res.Totals.Committed {
						t.Fatalf("synced image holds %d of %d commits", st.Applied, res.Totals.Committed)
					}
					if got := sumBalances(rebuilt, tbl2, 64); got != 64*1000 {
						t.Fatalf("sum = %d", got)
					}
					if err := e.log.Close(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}
