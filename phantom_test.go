package repro_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro"
)

// Phantom regression: concurrent inserts during range scans, on all four
// engines, under -race.
//
// Writers insert *pairs* of adjacent records carrying +v and -v in one
// transaction; scanners sum a range covering every pair through Ctx.Scan.
// Serializability demands each scan observe every pair entirely or not at
// all, so every committed scan must see sum == 0 and an even record
// count. The retired bypass path — iterating the growable table's storage
// directly, with no declared range — has no such guarantee: a scan can
// slip between the two inserts of one pair and observe a half-inserted
// transaction (a phantom), which is exactly what this test's assertion
// would catch. On the Ctx.Scan path the range's stripe locks (or, on
// Partitioned-store, the range's partition footprint) serialize scans
// against inserts, and the assertion must never fire.

const (
	phantomPairs    = 48 // pairs inserted per engine run
	phantomSpan     = 2 * phantomPairs
	phantomScanners = 2
	phantomScans    = 15 // scans per scanner goroutine
)

// phantomInsertTxn inserts the pair (2i, 2i+1) holding +v / -v, declaring
// the two keys as a Write range so planned engines fence the insert with
// stripe locks and Partitioned-store folds it into the partition set. A
// busy loop between the two inserts models per-record processing cost
// (like workload.YCSB.WorkPerOp) — it widens the half-inserted window so
// an unprotected scan reliably lands inside it, while the protected path
// must stay atomic regardless.
func phantomInsertTxn(tbl int, i int) *repro.Txn {
	k, v := uint64(2*i), int64(i+1)
	t := &repro.Txn{Ranges: []repro.RangeOp{{Table: tbl, Lo: k, Hi: k + 2, Mode: repro.Write}}}
	t.Logic = func(ctx repro.Ctx) error {
		var buf [16]byte
		repro.PutI64(buf[:], 0, v)
		if err := ctx.Insert(tbl, k, buf[:]); err != nil {
			return err
		}
		var sink uint64
		for j := 0; j < 20000; j++ {
			sink += uint64(j)
		}
		if sink == ^uint64(0) {
			return nil // defeat dead-code elimination
		}
		repro.PutI64(buf[:], 0, -v)
		return ctx.Insert(tbl, k+1, buf[:])
	}
	return t
}

// phantomScanTxn scans [0, phantomSpan) and counts a violation when the
// committed view is not pair-atomic. The record set of a growable table
// is deducible only by reading it, so the plan is OLLP reconnaissance:
// enumerate the present keys (validated against the gap version), declare
// them plus the covering range, and let a stale estimate surface as a
// miss-and-replan at execution.
func phantomScanTxn(db *repro.DB, tbl int, violations *atomic.Int64) *repro.Txn {
	t := &repro.Txn{}
	plan := func(t *repro.Txn) {
		t.Ops, t.Ranges = t.Ops[:0], t.Ranges[:0]
		tab := db.Table(tbl)
		for {
			v := tab.RangeVersion(0, phantomSpan)
			n := len(t.Ops)
			tab.Scan(0, phantomSpan, func(key uint64, _ []byte) bool {
				t.Ops = append(t.Ops, repro.Op{Table: tbl, Key: key, Mode: repro.Read})
				return true
			})
			if tab.RangeVersion(0, phantomSpan) == v {
				break
			}
			t.Ops = t.Ops[:n] // inserts raced the enumeration; redo
		}
		t.Ranges = append(t.Ranges, repro.RangeOp{Table: tbl, Lo: 0, Hi: phantomSpan, Mode: repro.Read})
	}
	plan(t)
	t.Replan = plan

	t.Logic = func(ctx repro.Ctx) error {
		var sum int64
		count := 0
		if err := ctx.Scan(tbl, 0, phantomSpan, func(_ uint64, rec []byte) error {
			sum += repro.GetI64(rec, 0)
			count++
			return nil
		}); err != nil {
			return err
		}
		if sum != 0 || count%2 != 0 {
			violations.Add(1)
		}
		return nil
	}
	return t
}

func TestPhantomSafeScansAllEngines(t *testing.T) {
	cases := []struct {
		name  string
		build func(db *repro.DB) repro.Runtime
	}{
		{"2pl-waitdie", func(db *repro.DB) repro.Runtime {
			return repro.NewTwoPL(repro.TwoPLConfig{DB: db, Handler: repro.WaitDie(), Threads: 4})
		}},
		{"dlfree", func(db *repro.DB) repro.Runtime {
			return repro.NewDeadlockFree(repro.DeadlockFreeConfig{DB: db, Threads: 4})
		}},
		{"partstore", func(db *repro.DB) repro.Runtime {
			return repro.NewPartitionedStore(repro.PartitionedStoreConfig{DB: db, Partitions: 4})
		}},
		{"orthrus", func(db *repro.DB) repro.Runtime {
			return repro.NewOrthrus(repro.OrthrusConfig{DB: db, CCThreads: 2, ExecThreads: 2})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db := repro.NewDB()
			tbl := db.Create(repro.Layout{
				Name: "ledger", NumRecords: phantomSpan, RecordSize: 16,
				Growable: true, Ordered: true,
			})
			eng := tc.build(db)
			ses := eng.Start()
			var violations atomic.Int64
			var wg sync.WaitGroup
			// Four writers, interleaved with scanners, each pair atomic.
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := w; i < phantomPairs; i += 4 {
						ses.Submit(phantomInsertTxn(tbl, i), nil)
					}
				}()
			}
			for sc := 0; sc < phantomScanners; sc++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < phantomScans; i++ {
						ses.Submit(phantomScanTxn(db, tbl, &violations), nil)
					}
				}()
			}
			wg.Wait()
			ses.Drain()
			ses.Close()

			if n := violations.Load(); n != 0 {
				t.Fatalf("%d scans observed a phantom (half-inserted pair)", n)
			}
			if got := db.Table(tbl).Len(); got != phantomSpan {
				t.Fatalf("table holds %d records, want %d", got, phantomSpan)
			}
			// Final sweep: the quiesced table must also conserve the sum.
			var sum int64
			db.Table(tbl).Scan(0, phantomSpan, func(_ uint64, rec []byte) bool {
				sum += repro.GetI64(rec, 0)
				return true
			})
			if sum != 0 {
				t.Fatalf("final sum = %d, want 0", sum)
			}
		})
	}
}
